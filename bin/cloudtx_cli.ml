(* cloudtx command-line front end.

     cloudtx run      -- run a workload under a scheme and print stats
     cloudtx table1   -- Table I: analytic vs measured complexity
     cloudtx trace    -- run one transaction and dump the message trace
     cloudtx sweep    -- the Section VI-B trade-off grid

   Example:
     dune exec bin/cloudtx_cli.exe -- run --scheme continuous --level global \
       --servers 6 --queries 8 --txns 50 --update-period 10 *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Transport = Cloudtx_sim.Transport
module Trace = Cloudtx_sim.Trace
module Latency = Cloudtx_sim.Latency
module Splitmix = Cloudtx_sim.Splitmix
module Scenario = Cloudtx_workload.Scenario
module Generator = Cloudtx_workload.Generator
module Churn = Cloudtx_workload.Churn
module Experiment = Cloudtx_workload.Experiment
module Table1 = Cloudtx_workload.Table1
module Table = Cloudtx_metrics.Table
module Sample_set = Cloudtx_metrics.Sample_set
module Running_stats = Cloudtx_metrics.Running_stats
module Complexity = Cloudtx_core.Complexity
module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry
module Export = Cloudtx_obs.Export
module Journal = Cloudtx_obs.Journal
module Journal_io = Cloudtx_core.Journal_io
module Audit = Cloudtx_core.Audit
module Certify = Cloudtx_core.Certify
module Dsg = Cloudtx_obs.Dsg
module Monitor = Cloudtx_obs.Monitor
module Slo = Cloudtx_obs.Slo
module Health = Cloudtx_core.Health
module Timeseries = Cloudtx_obs.Timeseries
module Report = Cloudtx_obs.Report
module Report_io = Cloudtx_core.Report_io
module Blame = Cloudtx_core.Blame
module Critical_path = Cloudtx_obs.Critical_path
module Json = Cloudtx_obs.Json
module Plan = Cloudtx_chaos.Plan
module Campaign = Cloudtx_chaos.Campaign
module Shrink = Cloudtx_chaos.Shrink
module Timeout_policy = Cloudtx_protocol.Timeout_policy
module Resilience = Cloudtx_core.Resilience

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)
(* ------------------------------------------------------------------ *)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable protocol debug logging.")

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let scheme_conv =
  let parse s =
    match Scheme.of_string s with
    | Some scheme -> Ok scheme
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown scheme %s (deferred|punctual|incremental|continuous)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.fprintf ppf "%s" (Scheme.name s))

let level_conv =
  let parse s =
    match Consistency.of_string s with
    | Some level -> Ok level
    | None -> Error (`Msg (Printf.sprintf "unknown level %s (view|global)" s))
  in
  Arg.conv (parse, fun ppf l -> Format.fprintf ppf "%s" (Consistency.name l))

let scheme_arg =
  Arg.(value & opt scheme_conv Scheme.Deferred & info [ "scheme" ] ~doc:"Proof scheme: deferred, punctual, incremental, continuous.")

let level_arg =
  Arg.(value & opt level_conv Consistency.View & info [ "level" ] ~doc:"Consistency level: view or global.")

let servers_arg =
  Arg.(value & opt int 4 & info [ "servers" ] ~doc:"Number of data servers.")

let queries_arg =
  Arg.(value & opt int 4 & info [ "queries" ] ~doc:"Queries per transaction.")

let txns_arg =
  Arg.(value & opt int 30 & info [ "txns" ] ~doc:"Transactions to run.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic simulation seed.")

let update_period_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "update-period" ]
        ~doc:"Publish a (semantically neutral) policy version bump every this many simulated ms.")

let write_ratio_arg =
  Arg.(value & opt float 0.3 & info [ "write-ratio" ] ~doc:"Probability a query writes.")

let zipf_arg =
  Arg.(value & opt float 0. & info [ "zipf" ] ~doc:"Key-access skew exponent (0 = uniform).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:"Write the span trace as Chrome trace_event JSON to $(docv) (open in chrome://tracing or Perfetto)."
        ~docv:"FILE")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ]
        ~doc:"Write the metrics registry snapshot as JSON to $(docv)." ~docv:"FILE")

let metrics_prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-prom" ]
        ~doc:
          "Write the metrics registry snapshot in Prometheus text exposition \
           format to $(docv)."
        ~docv:"FILE")

let journal_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-out" ]
        ~doc:
          "Record every protocol machine step (flight recorder) to $(docv) \
           in the $(b,--journal-format) encoding; replay and verify offline \
           with $(b,cloudtx audit)."
        ~docv:"FILE")

let journal_format_conv =
  let parse s =
    match Journal.format_of_string s with
    | Some f -> Ok f
    | None ->
      Error (`Msg (Printf.sprintf "unknown journal format %s (jsonl|bin)" s))
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%s" (Journal.format_name f))

let journal_format_arg =
  Arg.(
    value
    & opt journal_format_conv Journal.Jsonl
    & info [ "journal-format" ] ~docv:"FORMAT"
        ~doc:
          "Flight-recorder journal encoding: $(b,jsonl) (self-describing \
           text, one JSON record per line) or $(b,bin) (length-prefixed \
           checksummed binary frames; smaller and faster to record).  \
           $(b,cloudtx audit), $(b,certify) and $(b,watch) auto-detect \
           either; convert between them with $(b,cloudtx journal convert).")

let monitor_arg =
  Arg.(
    value & flag
    & info [ "monitor" ]
        ~doc:
          "Run the Watchtower health monitor live: evaluate the SLO rules \
           over the protocol event stream as it happens, printing alert \
           transitions and an end-of-run health summary.")

let alerts_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "alerts-out" ]
        ~doc:"Write every alert transition as a JSONL record to $(docv)."
        ~docv:"FILE")

let metrics_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "metrics-interval" ] ~docv:"MS"
        ~doc:
          "Aggregate a windowed time series live over the protocol event \
           stream: fixed $(docv)-wide windows of simulated time, each with \
           commit/abort throughput, per-phase latency sketch quantiles, \
           policy staleness and alert gauges.  Implies the in-memory flight \
           recorder.  Write the snapshot with $(b,--metrics-out); \
           $(b,cloudtx report) rebuilds the identical report from either \
           the snapshot or the journal.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the windowed time-series snapshot (JSONL: header, one \
           record per window, totals) to $(docv).  Window width comes from \
           $(b,--metrics-interval) (default 100 ms).  Feed it to \
           $(b,cloudtx report --metrics).")

(* The SLO rule thresholds, shared by run/trace --monitor, watch and
   health. *)
let rules_term =
  let open Slo in
  let mk stuck_ms staleness_versions staleness_ms abort_window abort_rate
      livelock_kills flap_window flap_transitions reject_window reject_count =
    {
      stuck_ms;
      staleness_versions;
      staleness_ms;
      abort_window;
      abort_rate;
      livelock_kills;
      flap_window;
      flap_transitions;
      reject_window;
      reject_count;
    }
  in
  Term.(
    const mk
    $ Arg.(
        value
        & opt float default.stuck_ms
        & info [ "stuck-ms" ]
            ~doc:
              "Fire $(b,stuck_txn) when an unfinished transaction's TM takes \
               no machine step for more than this many simulated ms.")
    $ Arg.(
        value
        & opt int default.staleness_versions
        & info [ "staleness-versions" ]
            ~doc:
              "Fire $(b,policy_staleness) when a replica lags the observed \
               master by more than this many versions.")
    $ Arg.(
        value
        & opt float default.staleness_ms
        & info [ "staleness-ms" ]
            ~doc:
              "Fire $(b,policy_staleness) when any nonzero replica lag \
               persists longer than this many simulated ms (default: \
               disabled).")
    $ Arg.(
        value
        & opt int default.abort_window
        & info [ "abort-window" ]
            ~doc:"Sliding window (finished transactions) for $(b,abort_storm).")
    $ Arg.(
        value
        & opt float default.abort_rate
        & info [ "abort-rate" ]
            ~doc:
              "Fire $(b,abort_storm) at or above this abort fraction over a \
               full window.")
    $ Arg.(
        value
        & opt int default.livelock_kills
        & info [ "livelock-kills" ]
            ~doc:
              "Fire $(b,livelock) when the same logical transaction dies as \
               a wait-die victim this many consecutive times.")
    $ Arg.(
        value
        & opt float default.flap_window
        & info [ "flap-window" ]
            ~doc:"Sliding window (simulated ms) for $(b,breaker_flap).")
    $ Arg.(
        value
        & opt int default.flap_transitions
        & info [ "flap-transitions" ]
            ~doc:
              "Fire $(b,breaker_flap) when one server's circuit breaker \
               changes state at least this many times within the window.")
    $ Arg.(
        value
        & opt float default.reject_window
        & info [ "reject-window" ]
            ~doc:"Sliding window (simulated ms) for $(b,admission_storm).")
    $ Arg.(
        value
        & opt int default.reject_count
        & info [ "reject-count" ]
            ~doc:
              "Fire $(b,admission_storm) at or above this many admission \
               rejections (bounded in-flight or breaker fail-fasts) within \
               the window."))

(* ------------------------------------------------------------------ *)
(* Observability plumbing                                              *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc =
    try open_out path
    with Sys_error msg ->
      Format.eprintf "cloudtx: cannot write %s: %s@."
        (if path = "" then "<empty path>" else path)
        msg;
      exit 1
  in
  output_string oc contents;
  if String.length contents > 0 && contents.[String.length contents - 1] <> '\n'
  then output_char oc '\n';
  close_out oc

(* Turn the sinks on before any transaction runs; spans and metrics only
   exist for what happens afterwards. *)
let enable_obs cluster ~trace_out ~metrics_json ~metrics_prom ~journal_out
    ~journal_format =
  let transport = Cluster.transport cluster in
  if trace_out <> None then ignore (Transport.enable_tracing transport);
  if metrics_json <> None || metrics_prom <> None then
    ignore (Transport.enable_metrics transport);
  Option.iter
    (fun path ->
      ignore (Transport.enable_journal ~format:journal_format ~path transport))
    journal_out

(* A monitor without --journal-out still needs the event stream, so it
   enables an in-memory journal — capped, so long runs cannot grow memory
   unboundedly (evictions land in the [journal.dropped] counter; the
   monitor taps records before eviction, so it misses nothing). *)
let monitor_buffer_cap = 4 * 1024 * 1024

let alerts_sink = function
  | None -> (None, fun () -> ())
  | Some path ->
    let oc =
      try open_out path
      with Sys_error msg ->
        Format.eprintf "cloudtx: cannot write %s: %s@." path msg;
        exit 1
    in
    output_string oc Slo.log_header;
    output_char oc '\n';
    let log line =
      output_string oc line;
      output_char oc '\n'
    in
    (Some log, fun () -> close_out oc)

(* One Health bridge per journal: the monitor and the windowed time
   series share one attach (the bridge feeds the monitor first, then
   the timeseries, per record); further consumers — the blame collector
   — register their own {!Cloudtx_obs.Journal.add_observer} tap. *)
type live_monitor = {
  lm_monitor : Monitor.t;
  lm_timeseries : Timeseries.t option;
  lm_chatty : bool;  (** print alert lines / the health summary *)
  lm_close : unit -> unit;
}

(* Call after {!enable_obs} (the monitor snapshots the transport's
   registry, and reuses a --journal-out journal when one exists). *)
let enable_monitor cluster ~monitor ~alerts_out ~rules ~journal_format
    ~metrics_interval ~metrics_out =
  let want_ts = metrics_interval <> None || metrics_out <> None in
  if (not monitor) && alerts_out = None && not want_ts then None
  else begin
    let transport = Cluster.transport cluster in
    let journal =
      Transport.enable_journal ~format:journal_format
        ~max_buffer_bytes:monitor_buffer_cap transport
    in
    let ts =
      if want_ts then
        Some (Transport.enable_timeseries ?width_ms:metrics_interval transport)
      else None
    in
    let log, close_log = alerts_sink alerts_out in
    let chatty = monitor || alerts_out <> None in
    let m =
      Monitor.create ~rules
        ~registry:(Transport.registry transport)
        ?log
        ~console:(if chatty then print_endline else ignore)
        ?notify:(Option.map Timeseries.note_alert ts)
        ()
    in
    ignore (Health.attach ?timeseries:ts journal m);
    Some { lm_monitor = m; lm_timeseries = ts; lm_chatty = chatty;
           lm_close = close_log }
  end

let monitor_summary (m : Monitor.t) =
  let open_alerts = Monitor.open_alerts m in
  Format.printf "health    : %d alert(s) fired, %d open@."
    (Monitor.fired_total m)
    (List.length open_alerts);
  List.iter
    (fun a -> Format.printf "  open: %s@." (Slo.console_line `Fire a))
    open_alerts;
  (match Monitor.staleness_peak m with
  | [] -> ()
  | peaks ->
    List.iter
      (fun (node, (versions, domain)) ->
        Format.printf "  staleness peak: %s lagged %d version(s) on %s@." node
          versions domain)
      peaks)

let finish_monitor ?metrics_out = function
  | None -> ()
  | Some lm ->
    if lm.lm_chatty then monitor_summary lm.lm_monitor;
    (match (metrics_out, lm.lm_timeseries) with
    | Some path, Some ts ->
      write_file path (Timeseries.to_jsonl ts);
      Format.printf "wrote %s (windowed metrics, %d window(s))@." path
        (List.length (Timeseries.cells ts))
    | _ -> ());
    lm.lm_close ()

let dump_obs cluster ~trace_out ~metrics_json ~metrics_prom ~journal_out =
  let transport = Cluster.transport cluster in
  Option.iter
    (fun path ->
      write_file path (Export.to_chrome (Transport.tracer transport));
      Format.printf "wrote %s (%d spans, Chrome trace_event JSON)@." path
        (Tracer.length (Transport.tracer transport)))
    trace_out;
  Option.iter
    (fun path ->
      write_file path (Registry.to_json (Transport.registry transport));
      Format.printf "wrote %s (metrics snapshot)@." path)
    metrics_json;
  Option.iter
    (fun path ->
      write_file path (Registry.to_prometheus (Transport.registry transport));
      Format.printf "wrote %s (metrics snapshot, Prometheus text format)@." path)
    metrics_prom;
  Option.iter
    (fun path ->
      let journal = Transport.journal transport in
      Journal.close journal;
      Format.printf "wrote %s (flight-recorder journal, %s, %d records)@." path
        (Journal.format_name (Journal.format journal))
        (Journal.length journal))
    journal_out

(* End-of-run summary off the registry: outcome counts, resource totals,
   phase percentiles, and the paper's worst-case analytic predictions for
   the same (scheme, level, n, u) — the measured means must sit at or
   below them (Table I is a worst case; see also `cloudtx table1`). *)
let obs_summary reg ~scheme ~level ~servers ~queries ~txns =
  if Registry.enabled reg then begin
    let labels =
      [ ("scheme", Scheme.name scheme); ("consistency", Consistency.name level) ]
    in
    let commits = Registry.counter reg "txn_total" (("outcome", "commit") :: labels) in
    let aborts = Registry.counter reg "txn_total" (("outcome", "abort") :: labels) in
    let messages = Registry.counter_total reg "messages_total" in
    (* Protocol accounting, same filter as Experiment/Table1: query
       execution traffic is not part of Table I's message complexity. *)
    let protocol_messages =
      List.fold_left
        (fun acc label -> acc + Registry.counter reg "messages_total" [ ("type", label) ])
        0 Cloudtx_core.Message.protocol_labels
    in
    let proofs = Registry.counter_total reg "proofs_total" in
    let forces = Registry.counter_total reg "log_force_total" in
    Format.printf "observability summary@.";
    Format.printf "  txns      : %d commit / %d abort@." commits aborts;
    Format.printf
      "  totals    : %d messages (%d protocol), %d proofs, %d forced log writes@."
      messages protocol_messages proofs forces;
    let phase_rows =
      List.filter_map
        (fun (label, metric) ->
          match Registry.histogram reg metric labels with
          | None -> None
          | Some h ->
            Some
              [
                label;
                string_of_int (Cloudtx_obs.Histogram.count h);
                Printf.sprintf "%.2f" (Cloudtx_obs.Histogram.percentile h 50.);
                Printf.sprintf "%.2f" (Cloudtx_obs.Histogram.percentile h 95.);
                Printf.sprintf "%.2f" (Cloudtx_obs.Histogram.percentile h 99.);
              ])
        [
          ("execute", "phase_execute_ms");
          ("commit", "phase_commit_ms");
          ("decide", "phase_decide_ms");
          ("end-to-end", "txn_latency_ms");
        ]
    in
    if phase_rows <> [] then
      Table.print
        ~title:
          (Printf.sprintf "phase latency (ms), %s/%s" (Scheme.name scheme)
             (Consistency.name level))
        ~headers:[ "phase"; "count"; "p50"; "p95"; "p99" ]
        phase_rows;
    (* Worst case assumes every query lands on a distinct server. *)
    let n = min servers queries and u = queries in
    let analytic_msgs = Complexity.messages scheme level ~n ~u ~r:1 in
    let analytic_proofs = Complexity.proofs scheme level ~n ~u ~r:1 in
    Format.printf
      "  analytic  : <= %d msgs/txn, <= %d proofs/txn at n=%d u=%d r=1@."
      analytic_msgs analytic_proofs n u;
    Format.printf "  Table I   : %s msgs, %s proofs (worst-case r)@."
      (Complexity.formula scheme level `Messages)
      (Complexity.formula scheme level `Proofs);
    if txns > 0 then
      Format.printf "  measured  : %.1f protocol msgs/txn, %.1f proofs/txn@."
        (float_of_int protocol_messages /. float_of_int txns)
        (float_of_int proofs /. float_of_int txns)
  end

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd verbose scheme level servers queries txns seed update_period
    write_ratio zipf trace_out metrics_json metrics_prom journal_out
    journal_format monitor alerts_out metrics_interval metrics_out rules =
  setup_logs verbose;
  let scenario =
    Scenario.retail ~seed:(Int64.of_int seed) ~n_servers:servers ~n_subjects:4 ()
  in
  enable_obs scenario.Scenario.cluster ~trace_out ~metrics_json ~metrics_prom
    ~journal_out ~journal_format;
  let mon =
    enable_monitor scenario.Scenario.cluster ~monitor ~alerts_out ~rules
      ~journal_format ~metrics_interval ~metrics_out
  in
  (match update_period with
  | Some period when period > 0. ->
    Churn.policy_refresh scenario ~period ~propagation:(0.5, 8.) ~count:5000
  | Some _ | None -> ());
  let rng = Splitmix.create (Int64.of_int (seed + 1)) in
  let params =
    { Generator.default with queries_per_txn = queries; write_ratio; zipf_s = zipf }
  in
  let stats =
    Experiment.run_sequential scenario (Manager.config scheme level) ~n:txns
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  Format.printf "scheme=%s level=%s servers=%d queries=%d txns=%d@."
    (Scheme.name scheme) (Consistency.name level) servers queries txns;
  Format.printf "  committed : %d (%.0f%%)@." stats.Experiment.committed
    (100. *. Experiment.commit_ratio stats);
  Format.printf "  aborted   : %d@." stats.Experiment.aborted;
  if stats.Experiment.aborted > 0 then begin
    let reasons = Hashtbl.create 4 in
    List.iter
      (fun (o : Outcome.t) ->
        if not o.Outcome.committed then begin
          let key = Outcome.reason_name o.Outcome.reason in
          Hashtbl.replace reasons key (1 + Option.value ~default:0 (Hashtbl.find_opt reasons key))
        end)
      stats.Experiment.outcomes;
    Hashtbl.iter (fun k v -> Format.printf "    %-22s %d@." k v) reasons
  end;
  Format.printf "  latency   : mean %.2fms  p50 %.2f  p95 %.2f  max %.2f@."
    (Sample_set.mean stats.Experiment.latency_ms)
    (Sample_set.median stats.Experiment.latency_ms)
    (Sample_set.percentile stats.Experiment.latency_ms 95.)
    (Sample_set.max stats.Experiment.latency_ms);
  Format.printf "  proofs    : mean %.1f per txn@."
    (Running_stats.mean stats.Experiment.proofs);
  Format.printf "  messages  : mean %.1f per txn (protocol accounting)@."
    (Running_stats.mean stats.Experiment.protocol_messages);
  obs_summary
    (Transport.registry (Cluster.transport scenario.Scenario.cluster))
    ~scheme ~level ~servers ~queries ~txns;
  finish_monitor ?metrics_out mon;
  dump_obs scenario.Scenario.cluster ~trace_out ~metrics_json ~metrics_prom
    ~journal_out

let run_term =
  Term.(
    const run_cmd $ verbose_arg $ scheme_arg $ level_arg $ servers_arg
    $ queries_arg $ txns_arg $ seed_arg $ update_period_arg $ write_ratio_arg
    $ zipf_arg $ trace_out_arg $ metrics_json_arg $ metrics_prom_arg
    $ journal_out_arg $ journal_format_arg $ monitor_arg $ alerts_out_arg
    $ metrics_interval_arg $ metrics_out_arg $ rules_term)

(* ------------------------------------------------------------------ *)
(* table1                                                              *)
(* ------------------------------------------------------------------ *)

let table1_cmd n u =
  Table.print
    ~title:(Printf.sprintf "Table I (n=%d, u=%d): analytic vs measured" n u)
    ~headers:
      [
        "scheme"; "level"; "staleness"; "msgs formula"; "analytic"; "measured";
        "proofs formula"; "analytic"; "measured";
      ]
    (Cloudtx_workload.Table1.matrix_rows ~n ~u)

let table1_term =
  Term.(
    const table1_cmd
    $ Arg.(value & opt int 4 & info [ "n" ] ~doc:"Participants.")
    $ Arg.(value & opt int 4 & info [ "u" ] ~doc:"Queries."))

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd verbose scheme level servers queries format trace_out metrics_json
    metrics_prom journal_out journal_format monitor alerts_out metrics_interval
    metrics_out rules =
  setup_logs verbose;
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:servers
      ~n_subjects:1 ()
  in
  let cluster = scenario.Scenario.cluster in
  enable_obs cluster ~trace_out ~metrics_json ~metrics_prom ~journal_out
    ~journal_format;
  let mon =
    enable_monitor cluster ~monitor ~alerts_out ~rules ~journal_format
      ~metrics_interval ~metrics_out
  in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries ()
  in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  let trace = Transport.trace (Cluster.transport cluster) in
  (match format with
  | "text" ->
    Format.printf "%a@.@." Outcome.pp outcome;
    print_string (Trace.to_string trace)
  | "mermaid" -> print_string (Trace.to_mermaid trace)
  | "csv" -> print_string (Trace.to_csv trace)
  | "jsonl" -> print_string (Trace.to_jsonl trace)
  | other ->
    Printf.eprintf "unknown format %s (text|mermaid|csv|jsonl)\n" other;
    exit 2);
  finish_monitor ?metrics_out mon;
  dump_obs cluster ~trace_out ~metrics_json ~metrics_prom ~journal_out

let format_arg =
  Arg.(
    value
    & opt string "text"
    & info [ "format" ] ~doc:"Trace output format: text, mermaid, csv or jsonl.")

let trace_term =
  Term.(
    const trace_cmd $ verbose_arg $ scheme_arg $ level_arg $ servers_arg
    $ queries_arg $ format_arg $ trace_out_arg $ metrics_json_arg
    $ metrics_prom_arg $ journal_out_arg $ journal_format_arg $ monitor_arg
    $ alerts_out_arg $ metrics_interval_arg $ metrics_out_arg $ rules_term)

(* ------------------------------------------------------------------ *)
(* audit                                                               *)
(* ------------------------------------------------------------------ *)

let audit_cmd path =
  match Audit.of_file path with
  | Ok report ->
    Format.printf "%s: journal verified, zero divergences@." path;
    Format.printf "  %s@." (Audit.report_to_string report)
  | Error why ->
    Format.eprintf "%s: AUDIT FAILED@.  %s@." path why;
    exit 1

let audit_term =
  Term.(
    const audit_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Flight-recorder journal written by $(b,--journal-out) (JSONL \
               or binary, auto-detected); replayed through fresh protocol \
               machines and checked for conformance, atomic commitment \
               (AC1-AC3), prepare-before-commit and trusted-transaction \
               soundness."))

(* ------------------------------------------------------------------ *)
(* certify: journal-driven serializability certification               *)
(* ------------------------------------------------------------------ *)

let certify_cmd path dot_out json_out =
  match Certify.of_file path with
  | Error why ->
    Format.eprintf "%s: CERTIFY UNREADABLE@.  %s@." path why;
    exit 2
  | Ok report ->
    let export () =
      let dsg = Certify.to_dsg report in
      Option.iter
        (fun p ->
          write_file p (Dsg.to_dot ~name:"history" dsg);
          Format.printf "  wrote %s (DSG, Graphviz DOT)@." p)
        dot_out;
      Option.iter
        (fun p ->
          write_file p (Dsg.to_json dsg);
          Format.printf "  wrote %s (DSG, JSON)@." p)
        json_out
    in
    (match report.Certify.verdict with
    | Certify.Serializable _ ->
      Format.printf "%s: history certified@.  %s@." path
        (Certify.summary report);
      export ()
    | Certify.Anomalous a ->
      Format.printf "%s: NOT SERIALIZABLE@.  %s@.  %s@." path
        (Certify.summary report)
        (Certify.describe_anomaly a);
      export ();
      exit 1)

let certify_term =
  Term.(
    const certify_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Flight-recorder journal written by $(b,--journal-out) (JSONL \
               or binary, auto-detected); the committed transactions' \
               read/write history is extracted and checked for \
               serializability.  Exit 0: certified, with a witness serial \
               order; exit 1: a named anomaly with journal seq evidence; \
               exit 2: unreadable journal.")
    $ Arg.(
        value & opt (some string) None
        & info [ "dot" ] ~docv:"FILE"
            ~doc:
              "Write the direct serialization graph as Graphviz DOT \
               (anomaly cycles highlighted in red).")
    $ Arg.(
        value & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the direct serialization graph as JSON."))

(* ------------------------------------------------------------------ *)
(* watch                                                               *)
(* ------------------------------------------------------------------ *)

let watch_cmd path rules alerts_out =
  let log, close_log = alerts_sink alerts_out in
  let monitor = Monitor.create ~rules ?log ~console:print_endline () in
  match Health.of_file path monitor with
  | Error why ->
    Format.eprintf "%s: cannot watch journal@.  %s@." path why;
    exit 2
  | Ok records ->
    let open_alerts = Monitor.open_alerts monitor in
    Format.printf "%s: %d record(s) replayed, %d alert(s) fired, %d open@."
      path records
      (Monitor.fired_total monitor)
      (List.length open_alerts);
    monitor_summary monitor;
    close_log ();
    if Monitor.unresolved_critical monitor > 0 then exit 1

let watch_term =
  Term.(
    const watch_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Flight-recorder journal written by $(b,--journal-out) (JSONL \
               or binary, auto-detected); replayed through the Watchtower \
               health monitor in journal order, streaming alert transitions \
               as they fire.  Exits non-zero when critical alerts remain \
               unresolved at the end of the journal.")
    $ rules_term $ alerts_out_arg)

(* ------------------------------------------------------------------ *)
(* report: journal / metrics snapshot -> flight-deck report            *)
(* ------------------------------------------------------------------ *)

let report_cmd journal metrics alerts window rules json_out md_out =
  let offline =
    Option.map
      (fun path ->
        match Report_io.of_journal ~rules ?width_ms:window path with
        | Ok pair -> pair
        | Error why ->
          Format.eprintf "%s: cannot build report@.  %s@." path why;
          exit 2)
      journal
  in
  let live =
    Option.map
      (fun path ->
        match Report_io.of_snapshot_file path with
        | Ok r -> r
        | Error why ->
          Format.eprintf "%s: cannot parse metrics snapshot@.  %s@." path why;
          exit 2)
      metrics
  in
  let report, monitor =
    match (offline, live) with
    | None, None ->
      Format.eprintf
        "cloudtx report: need a JOURNAL argument, --metrics SNAPSHOT, or both@.";
      exit 2
    | Some (r, m), None -> (r, Some m)
    | None, Some r -> (r, None)
    | Some (r_journal, m), Some r_snapshot ->
      (* Both inputs: the consistency gate.  The live snapshot and the
         offline replay must render byte-identical JSON — same windows,
         same counts, same sketch quantiles — or the flight deck cannot
         be trusted. *)
      let a = Report.to_json r_journal and b = Report.to_json r_snapshot in
      if not (String.equal a b) then begin
        Format.eprintf
          "report: online/offline DIVERGENCE@.  journal replay and metrics \
           snapshot disagree (%d vs %d window(s))@."
          (List.length r_journal.Report.windows)
          (List.length r_snapshot.Report.windows);
        exit 2
      end;
      Format.printf "online/offline reports agree (%d window(s))@."
        (List.length r_journal.Report.windows);
      (r_journal, Some m)
  in
  let alert_lines =
    match alerts with
    | Some path -> (
      match Report_io.alert_lines_of_file path with
      | Ok lines -> lines
      | Error why ->
        Format.eprintf "%s: cannot parse alerts file@.  %s@." path why;
        exit 2)
    | None -> (
      match monitor with
      | Some m -> Report_io.alert_lines_of_monitor m
      | None -> [])
  in
  (* The blame decomposition (DESIGN §9) rides on the markdown view
     only, so the JSON byte-identity gate above stays a pure function
     of the windowed series. *)
  let blame_lines =
    match journal with
    | None -> []
    | Some path -> (
      match Blame.of_file path with
      | Ok b -> Blame.to_markdown_lines b
      | Error why ->
        Format.eprintf "%s: cannot build blame section@.  %s@." path why;
        exit 2)
  in
  let json () = Report.to_json report in
  let md () = Report.to_markdown ~alert_lines ~blame_lines report in
  Option.iter
    (fun path ->
      write_file path (json ());
      Format.printf "wrote %s (report, JSON)@." path)
    json_out;
  Option.iter
    (fun path ->
      write_file path (md ());
      Format.printf "wrote %s (report, markdown)@." path)
    md_out;
  if json_out = None && md_out = None then print_string (md ())

let report_term =
  Term.(
    const report_cmd
    $ Arg.(
        value
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Flight-recorder journal written by $(b,--journal-out) (JSONL \
               or binary, auto-detected); replayed through the Watchtower \
               and the windowed time series to rebuild the report offline.")
    $ Arg.(
        value
        & opt (some file) None
        & info [ "metrics" ] ~docv:"SNAPSHOT"
            ~doc:
              "Windowed metrics snapshot written by $(b,--metrics-out); the \
               live path's artifact.  With both $(i,JOURNAL) and \
               $(b,--metrics), the two reports must render byte-identical \
               JSON — exit 2 on divergence.")
    $ Arg.(
        value
        & opt (some file) None
        & info [ "alerts" ] ~docv:"FILE"
            ~doc:
              "Alert-transition JSONL written by $(b,--alerts-out); rendered \
               as the markdown report's alert timeline.  Default: the \
               journal replay's own alert transitions, when a journal is \
               given.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "window" ] ~docv:"MS"
            ~doc:
              "Window width for journal replay (default 100 ms).  Ignored \
               for $(b,--metrics) snapshots, which carry their own width — \
               when comparing both, this must match the snapshot's width or \
               the reports diverge.")
    $ rules_term
    $ Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the report as JSON to $(docv).")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "md" ] ~docv:"FILE"
            ~doc:
              "Write the report as markdown to $(docv).  With neither \
               $(b,--json) nor $(b,--md), markdown goes to stdout."))

(* ------------------------------------------------------------------ *)
(* explain / blame: the latency blame engine (DESIGN §9)               *)
(* ------------------------------------------------------------------ *)

(* Exit-code convention (documented once in README): 0 = ok, 1 =
   analysis violation (a timeline fails to cover the end-to-end latency
   within the documented slack, or the requested transaction is
   missing), 2 = unreadable/undecodable journal — the error names the
   first bad frame or line. *)

let check_coverage what b =
  match Blame.uncovered b with
  | [] -> ()
  | bad ->
    let worst = List.hd bad in
    Format.eprintf
      "%s: COVERAGE VIOLATION@.  %d timeline(s) fail to cover end-to-end \
       latency; worst: txn %s slack %.9f ms (bound %.9f ms)@."
      what (List.length bad) worst.Critical_path.txn
      (Critical_path.coverage_slack_ms worst)
      (Critical_path.slack_bound_ms worst);
    exit 1

let explain_cmd path txn json =
  match Blame.of_file ~keep_timelines:true path with
  | Error why ->
    Format.eprintf "%s: cannot explain journal@.  %s@." path why;
    exit 2
  | Ok b ->
    let tl =
      match txn with
      | Some id -> (
        match Blame.find b ~txn:id with
        | Some tl -> tl
        | None ->
          Format.eprintf "%s: transaction %S not found (%d finished)@." path
            id (Blame.finished b);
          exit 1)
      | None -> (
        match Blame.slowest b with
        | Some tl -> tl
        | None ->
          Format.eprintf "%s: no finished transactions to explain@." path;
          exit 1)
    in
    if json then print_endline (Critical_path.timeline_to_json tl)
    else List.iter print_endline (Critical_path.timeline_to_text tl);
    check_coverage "explain" b

let explain_term =
  Term.(
    const explain_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Flight-recorder journal written by $(b,--journal-out) (JSONL \
               or binary, auto-detected); replayed into per-transaction \
               critical-path timelines.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "txn" ] ~docv:"ID"
            ~doc:
              "Transaction to explain.  Default: the slowest finished \
               transaction in the journal.")
    $ Arg.(
        value & flag
        & info [ "json" ]
            ~doc:"Print the timeline as JSON instead of the text rendering."))

let blame_cmd path top json_out md_out =
  match Blame.of_file ~top_k:top path with
  | Error why ->
    Format.eprintf "%s: cannot build blame profile@.  %s@." path why;
    exit 2
  | Ok b ->
    Option.iter
      (fun p ->
        write_file p (Blame.to_json b);
        Format.printf "wrote %s (blame, JSON)@." p)
      json_out;
    let md () = String.concat "\n" (Blame.to_markdown_lines b) ^ "\n" in
    Option.iter
      (fun p ->
        write_file p (md ());
        Format.printf "wrote %s (blame, markdown)@." p)
      md_out;
    if json_out = None && md_out = None then print_string (md ());
    check_coverage "blame" b

let blame_term =
  Term.(
    const blame_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Flight-recorder journal written by $(b,--journal-out) (JSONL \
               or binary, auto-detected); aggregated into per-cell blame \
               tables (mean/p50/p99 time-in-segment) and the top-k slowest \
               transactions.")
    $ Arg.(
        value & opt int 5
        & info [ "top" ] ~docv:"K"
            ~doc:"Slowest transactions to keep with full timelines.")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:"Write the blame profile as JSON to $(docv).")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "md" ] ~docv:"FILE"
            ~doc:
              "Write the blame profile as markdown to $(docv).  With \
               neither $(b,--json) nor $(b,--md), markdown goes to \
               stdout."))

(* ------------------------------------------------------------------ *)
(* health                                                              *)
(* ------------------------------------------------------------------ *)

let health_cmd verbose servers queries txns seed update_period rules alerts_out
    metrics_prom json_out =
  setup_logs verbose;
  let scenario =
    Scenario.retail ~seed:(Int64.of_int seed) ~n_servers:servers ~n_subjects:4 ()
  in
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let registry = Transport.enable_metrics transport in
  let journal =
    Transport.enable_journal ~max_buffer_bytes:monitor_buffer_cap transport
  in
  let log, close_log = alerts_sink alerts_out in
  let monitor =
    Monitor.create ~rules ~registry ?log ~console:print_endline ()
  in
  ignore (Health.attach journal monitor);
  (match update_period with
  | Some period when period > 0. ->
    Churn.policy_refresh scenario ~period ~propagation:(0.5, 8.) ~count:5000
  | Some _ | None -> ());
  let rng = Splitmix.create (Int64.of_int (seed + 1)) in
  let params = { Generator.default with queries_per_txn = queries } in
  (* One scenario, all eight scheme x level cells, so the snapshot covers
     the full grid off a single registry and a single monitor. *)
  List.iter
    (fun scheme ->
      List.iter
        (fun level ->
          let cell =
            Printf.sprintf "%s-%s" (Scheme.name scheme) (Consistency.name level)
          in
          ignore
            (Experiment.run_sequential scenario (Manager.config scheme level)
               ~n:txns (fun ~i ->
                 Generator.generate scenario rng params
                   ~id:(Printf.sprintf "%s-t%d" cell i))))
        [ Consistency.View; Consistency.Global ])
    Scheme.all;
  (* Per-cell phase percentiles (Section VI-B: the scheme choice follows
     from exactly these distributions).  One numeric row per cell x phase
     feeds both the console table and --json. *)
  let phase_cells =
    List.concat_map
      (fun scheme ->
        List.concat_map
          (fun level ->
            let labels =
              [
                ("scheme", Scheme.name scheme);
                ("consistency", Consistency.name level);
              ]
            in
            List.filter_map
              (fun (phase, metric) ->
                match Registry.histogram registry metric labels with
                | None -> None
                | Some h ->
                  Some
                    ( Scheme.name scheme,
                      Consistency.name level,
                      phase,
                      Cloudtx_obs.Histogram.count h,
                      Cloudtx_obs.Histogram.percentile h 50.,
                      Cloudtx_obs.Histogram.percentile h 99. ))
              [
                ("execute", "phase_execute_ms");
                ("commit", "phase_commit_ms");
                ("decide", "phase_decide_ms");
                ("end-to-end", "txn_latency_ms");
              ])
          [ Consistency.View; Consistency.Global ])
      Scheme.all
  in
  let phase_rows =
    List.map
      (fun (scheme, level, phase, count, p50, p99) ->
        [
          scheme; level; phase;
          string_of_int count;
          Printf.sprintf "%.2f" p50;
          Printf.sprintf "%.2f" p99;
        ])
      phase_cells
  in
  Table.print
    ~title:
      (Printf.sprintf "per-phase latency (ms), %d txns/cell, u=%d, n=%d" txns
         queries servers)
    ~headers:[ "scheme"; "level"; "phase"; "count"; "p50"; "p99" ]
    phase_rows;
  Format.printf "per-node health@.";
  let peaks = Monitor.staleness_peak monitor in
  let nodes =
    List.map Cloudtx_core.Participant.name (Cluster.participants cluster)
  in
  List.iter
    (fun server ->
      match List.assoc_opt server peaks with
      | Some (versions, domain) ->
        Format.printf "  %-12s worst staleness %d version(s) on %s@." server
          versions domain
      | None -> Format.printf "  %-12s worst staleness 0 versions@." server)
    nodes;
  (* Certify the whole grid's history off the capped in-memory journal:
     the snapshot's fourth line of defence after metrics/staleness/alerts. *)
  let certified =
    Result.bind
      (Journal_io.of_contents (Journal.to_string journal))
      (fun loaded -> Certify.run ~lines:loaded.Journal_io.lines)
  in
  (match certified with
  | Ok report -> Format.printf "certify   : %s@." (Certify.summary report)
  | Error why -> Format.printf "certify   : unreadable (%s)@." why);
  let open_alerts = Monitor.open_alerts monitor in
  Format.printf "alerts    : %d fired, %d open@."
    (Monitor.fired_total monitor)
    (List.length open_alerts);
  List.iter
    (fun a -> Format.printf "  open: %s@." (Slo.console_line `Fire a))
    open_alerts;
  Option.iter
    (fun path ->
      write_file path (Registry.to_prometheus registry);
      Format.printf "wrote %s (metrics snapshot, Prometheus text format)@." path)
    metrics_prom;
  (* --json: the same snapshot, machine-readable — every console row has
     a field here, so CI can gate on the numbers it reads. *)
  Option.iter
    (fun path ->
      let phases =
        phase_cells
        |> List.map (fun (scheme, level, phase, count, p50, p99) ->
               Json.obj
                 [
                   ("scheme", Json.quote scheme);
                   ("level", Json.quote level);
                   ("phase", Json.quote phase);
                   ("count", string_of_int count);
                   ("p50", Json.number p50);
                   ("p99", Json.number p99);
                 ])
        |> String.concat ","
      in
      let staleness =
        nodes
        |> List.map (fun server ->
               let versions, domain =
                 match List.assoc_opt server peaks with
                 | Some (versions, domain) -> (versions, Json.quote domain)
                 | None -> (0, "null")
               in
               Json.obj
                 [
                   ("node", Json.quote server);
                   ("versions", string_of_int versions);
                   ("domain", domain);
                 ])
        |> String.concat ","
      in
      let certify =
        match certified with
        | Ok report ->
          Json.obj
            [
              ("ok", "true"); ("summary", Json.quote (Certify.summary report));
            ]
        | Error why ->
          Json.obj [ ("ok", "false"); ("summary", Json.quote why) ]
      in
      let alerts =
        Json.obj
          [
            ("fired", string_of_int (Monitor.fired_total monitor));
            ( "open",
              "["
              ^ String.concat ","
                  (List.map (fun a -> Slo.log_line `Fire a) open_alerts)
              ^ "]" );
          ]
      in
      let doc =
        Json.obj
          [
            ("health", Json.quote "cloudtx");
            ("version", "1");
            ("servers", string_of_int servers);
            ("queries", string_of_int queries);
            ("txns_per_cell", string_of_int txns);
            ("phases", "[" ^ phases ^ "]");
            ("staleness", "[" ^ staleness ^ "]");
            ("certify", certify);
            ("alerts", alerts);
          ]
      in
      write_file path doc;
      Format.printf "wrote %s (health snapshot, JSON)@." path)
    json_out;
  close_log ();
  if Monitor.unresolved_critical monitor > 0 then exit 1

let health_term =
  Term.(
    const health_cmd $ verbose_arg $ servers_arg $ queries_arg
    $ Arg.(value & opt int 10 & info [ "txns" ] ~doc:"Transactions per cell.")
    $ seed_arg $ update_period_arg $ rules_term $ alerts_out_arg
    $ metrics_prom_arg
    $ Arg.(
        value
        & opt (some string) None
        & info [ "json" ] ~docv:"FILE"
            ~doc:
              "Write the health snapshot as a JSON document to $(docv): the \
               per-cell phase percentiles, per-node staleness peaks, the \
               certify verdict and the alert summary — every console row, \
               machine-readable."))

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_cmd level txns =
  List.iter
    (fun (label, queries, period) ->
      let rows =
        List.map
          (fun scheme ->
            let scenario = Scenario.retail ~seed:11L ~n_servers:6 ~n_subjects:4 () in
            (match period with
            | Some p -> Churn.policy_refresh scenario ~period:p ~propagation:(0.5, 8.) ~count:5000
            | None -> ());
            let rng = Splitmix.create 77L in
            let params =
              { Generator.default with queries_per_txn = queries; write_ratio = 0.3 }
            in
            let stats =
              Experiment.run_sequential scenario (Manager.config scheme level)
                ~n:txns
                (fun ~i ->
                  Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
            in
            [
              Scheme.name scheme;
              Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio stats);
              Printf.sprintf "%.2f" (Sample_set.mean stats.Experiment.latency_ms);
              Printf.sprintf "%.1f" (Running_stats.mean stats.Experiment.proofs);
              Printf.sprintf "%.1f" (Running_stats.mean stats.Experiment.protocol_messages);
            ])
          Scheme.all
      in
      Table.print
        ~title:
          (Printf.sprintf "%s (u=%d, update period %s, %s consistency)" label
             queries
             (match period with Some p -> Printf.sprintf "%.0fms" p | None -> "none")
             (Consistency.name level))
        ~headers:[ "scheme"; "commit"; "lat ms"; "proofs"; "messages" ]
        rows)
    [
      ("short txns / rare updates", 3, Some 400.);
      ("long txns / rare updates", 10, Some 400.);
      ("short txns / frequent updates", 3, Some 8.);
      ("long txns / frequent updates", 10, Some 8.);
    ]

let sweep_term = Term.(const sweep_cmd $ level_arg $ txns_arg)

(* ------------------------------------------------------------------ *)
(* bank                                                                *)
(* ------------------------------------------------------------------ *)

let bank_cmd scheme level txns overdraft seed =
  let module Banking = Cloudtx_workload.Banking in
  let bank = Banking.build ~seed:(Int64.of_int seed) () in
  let rng = Splitmix.create (Int64.of_int (seed + 1)) in
  let committed = ref 0 in
  let integrity = ref 0 and proof = ref 0 and other = ref 0 in
  let before = Banking.total_funds bank in
  for i = 1 to txns do
    let txn =
      Banking.random_transfer bank rng ~id:(Printf.sprintf "t%d" i)
        ~overdraft_ratio:overdraft
    in
    let o =
      Manager.run_one bank.Banking.cluster (Manager.config scheme level) txn
    in
    if o.Outcome.committed then incr committed
    else
      match o.Outcome.reason with
      | Outcome.Integrity_violation -> incr integrity
      | Outcome.Proof_failure -> incr proof
      | _ -> incr other
  done;
  Format.printf "banking: %d transfers under %s/%s@." txns (Scheme.name scheme)
    (Consistency.name level);
  Format.printf "  committed            : %d@." !committed;
  Format.printf "  integrity aborts     : %d (overdrafts)@." !integrity;
  Format.printf "  authorization aborts : %d@." !proof;
  Format.printf "  other aborts         : %d@." !other;
  Format.printf "  funds: %d -> %d (%s)@." before (Banking.total_funds bank)
    (if before = Banking.total_funds bank then "conserved" else "VIOLATED!")

let bank_term =
  Term.(
    const bank_cmd $ scheme_arg $ level_arg
    $ Arg.(value & opt int 50 & info [ "txns" ] ~doc:"Transfers to run.")
    $ Arg.(value & opt float 0.25 & info [ "overdraft" ] ~doc:"Overdraft probability.")
    $ seed_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

(* Parse "pred(a,b,c)" into a ground fact. *)
let parse_fact s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
    let pred = String.sub s 0 i in
    let inner = String.sub s (i + 1) (String.length s - i - 2) in
    let args =
      List.map String.trim (String.split_on_char ',' inner)
      |> List.filter (fun a -> a <> "")
    in
    Cloudtx_policy.Rule.fact pred args
  | _ -> failwith (Printf.sprintf "bad fact %S (expected pred(a,b))" s)

let analyze_cmd old_file new_file subjects actions items facts =
  let module Codec = Cloudtx_policy.Codec in
  let module Analysis = Cloudtx_policy.Analysis in
  let read_policy path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    (* .json files use the wire codec; anything else is Datalog text. *)
    let result =
      if Filename.check_suffix path ".json" then Codec.policy_of_string contents
      else
        Result.map
          (fun rules -> Cloudtx_policy.Policy.create ~domain:(Filename.basename path) rules)
          (Cloudtx_policy.Datalog.parse_program contents)
    in
    match result with
    | Ok p -> p
    | Error m ->
      Printf.eprintf "%s: %s\n" path m;
      exit 1
  in
  let old_p = read_policy old_file and new_p = read_policy new_file in
  let split arg = String.split_on_char ',' arg |> List.filter (fun s -> s <> "") in
  let base_facts = List.map parse_fact facts in
  let probes =
    Analysis.probe_space ~subjects:(split subjects) ~actions:(split actions)
      ~items:(split items)
      ~facts_for:(fun _ -> base_facts)
  in
  Format.printf "%s v%d  ->  %s v%d over %d probes@." old_p.Cloudtx_policy.Policy.domain
    old_p.Cloudtx_policy.Policy.version new_p.Cloudtx_policy.Policy.domain
    new_p.Cloudtx_policy.Policy.version (List.length probes);
  match Analysis.compare_policies ~probes old_p new_p with
  | Analysis.Equivalent -> Format.printf "verdict: EQUIVALENT (pure refresh)@."
  | Analysis.Tightened lost ->
    Format.printf "verdict: TIGHTENED — %d access(es) lost:@." (List.length lost);
    List.iter (fun p -> Format.printf "  - %a@." Analysis.pp_probe p) lost
  | Analysis.Relaxed gained ->
    Format.printf "verdict: RELAXED — %d access(es) gained:@." (List.length gained);
    List.iter (fun p -> Format.printf "  + %a@." Analysis.pp_probe p) gained
  | Analysis.Mixed { lost; gained } ->
    Format.printf "verdict: MIXED@.";
    List.iter (fun p -> Format.printf "  - %a@." Analysis.pp_probe p) lost;
    List.iter (fun p -> Format.printf "  + %a@." Analysis.pp_probe p) gained

let analyze_term =
  Term.(
    const analyze_cmd
    $ Arg.(required & opt (some file) None & info [ "old" ] ~doc:"Old policy JSON file.")
    $ Arg.(required & opt (some file) None & info [ "new" ] ~doc:"New policy JSON file.")
    $ Arg.(value & opt string "bob" & info [ "subjects" ] ~doc:"Comma-separated probe subjects.")
    $ Arg.(value & opt string "read,write" & info [ "actions" ] ~doc:"Comma-separated probe actions.")
    $ Arg.(value & opt string "db1" & info [ "items" ] ~doc:"Comma-separated probe items.")
    $ Arg.(value & opt_all string [] & info [ "fact" ] ~doc:"Ground fact pred(a,b) available to every probe; repeatable."))

(* ------------------------------------------------------------------ *)
(* check                                                               *)
(* ------------------------------------------------------------------ *)

let check_cmd path =
  let module Datalog = Cloudtx_policy.Datalog in
  let module Infer = Cloudtx_policy.Infer in
  let module Rule = Cloudtx_policy.Rule in
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Datalog.parse_program contents with
  | Error m ->
    Printf.eprintf "%s: %s\n" path m;
    exit 1
  | Ok rules ->
    Format.printf "%s: %d rule(s) parsed@." path (List.length rules);
    (* Stratification check (negation cycles surface at saturation). *)
    (try
       ignore (Infer.saturate ~rules ~facts:[]);
       Format.printf "  stratification : ok@."
     with Invalid_argument m ->
       Format.printf "  stratification : FAILED (%s)@." m;
       exit 1);
    (* Predicates derived vs consumed: flag body predicates that nothing
       derives and no convention provides (likely typos). *)
    let heads =
      List.sort_uniq String.compare
        (List.map (fun (r : Rule.t) -> r.Rule.head.Rule.pred) rules)
    in
    let provided =
      heads
      @ [ "req_subject"; "req_action"; "req_item"; "capability" ]
    in
    let consumed =
      List.sort_uniq String.compare
        (List.concat_map
           (fun (r : Rule.t) ->
             List.map
               (fun (a : Rule.atom) -> a.Rule.pred)
               (Rule.positive_body r @ Rule.negative_body r))
           rules)
    in
    let external_preds =
      List.filter (fun p -> not (List.mem p provided)) consumed
    in
    Format.printf "  head predicates: %s@." (String.concat ", " heads);
    if external_preds <> [] then
      Format.printf
        "  credential/context facts expected for: %s@."
        (String.concat ", " external_preds);
    if not (List.mem "permit" heads) then
      Format.printf
        "  warning: no rule derives permit/3 — this policy grants nothing@."

let check_term =
  Term.(
    const check_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"POLICY.dl" ~doc:"Datalog policy file to validate."))

(* ------------------------------------------------------------------ *)
(* export                                                              *)
(* ------------------------------------------------------------------ *)

let export_cmd domain out_file =
  (* Write the retail scenario's current policy as JSON — a starting point
     for editing + `analyze`. *)
  let module Codec = Cloudtx_policy.Codec in
  let scenario = Scenario.retail () in
  ignore domain;
  let master = Cluster.master scenario.Scenario.cluster in
  let policy =
    match Cloudtx_core.Master.admin master ~domain:"retail" with
    | Some admin -> Cloudtx_policy.Admin.latest admin
    | None -> failwith "no retail domain"
  in
  let oc = open_out out_file in
  output_string oc (Codec.policy_to_string policy);
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." out_file

let export_term =
  Term.(
    const export_cmd
    $ Arg.(value & opt string "retail" & info [ "domain" ] ~doc:"Domain to export.")
    $ Arg.(value & opt string "policy.json" & info [ "out" ] ~doc:"Output file."))

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let cell_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Campaign.cell_of_string s) in
  let print fmt c = Format.pp_print_string fmt (Campaign.cell_name c) in
  Arg.conv (parse, print)

let write_lines path lines =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    lines;
  close_out oc

let journal_file dir (cell : Campaign.cell) (plan : Plan.t) ~suffix =
  Printf.sprintf "%s/%s-seed%Ld%s.jsonl" dir
    (String.map (function ':' -> '-' | c -> c) (Campaign.cell_name cell))
    plan.Plan.seed suffix

let report_case dir shrink certify journal_format explain_worst ~policy
    ~resilience (case : Campaign.case) =
  let cell = case.Campaign.cell and plan = case.Campaign.plan in
  Format.printf "VIOLATION %s seed=%Ld@.  %s@.  plan: %s@."
    (Campaign.cell_name cell) plan.Plan.seed case.Campaign.failure.Campaign.what
    (Plan.to_string plan);
  Option.iter
    (fun dir ->
      let path = journal_file dir cell plan ~suffix:"" in
      write_lines path case.Campaign.failure.Campaign.journal;
      Format.printf "  journal: %s@." path)
    dir;
  (* Attach the slowest transaction's critical-path timeline to the
     verdict — a pure function of the captured journal lines, so the
     sweep's output stays bit-reproducible. *)
  if explain_worst then begin
    match Blame.of_lines case.Campaign.failure.Campaign.journal with
    | Error why -> Format.printf "  explain-worst: journal unreadable (%s)@." why
    | Ok b -> (
      match Blame.slowest b with
      | None -> Format.printf "  explain-worst: no finished transaction@."
      | Some tl ->
        List.iter
          (fun l -> Format.printf "  %s@." l)
          (Critical_path.timeline_to_text tl))
  end;
  if shrink then begin
    let dedup = false in
    (* A violation under hardened delivery would also shrink, but in
       practice failures come from the --no-dedup escape hatch; replaying
       candidates must use the same delivery mode that failed. *)
    let fails p =
      match
        Campaign.run_plan ~dedup ~certify ~journal_format ~policy ?resilience
          cell p
      with
      | Ok () -> None
      | Error f -> Some f.Campaign.what
    in
    match Shrink.minimize ~fails plan with
    | None -> Format.printf "  shrink: plan no longer fails under replay@."
    | Some (minimal, what) ->
      Format.printf "  shrunk to %d op(s): %s@.  minimal failure: %s@."
        (List.length minimal.Plan.ops)
        (Plan.to_string minimal) what;
      Option.iter
        (fun dir ->
          match
            Campaign.run_plan ~dedup ~certify ~journal_format ~policy
              ?resilience cell minimal
          with
          | Error f ->
            let path = journal_file dir cell minimal ~suffix:"-min" in
            write_lines path f.Campaign.journal;
            Format.printf "  minimal journal: %s@." path
          | Ok () -> ())
        dir
  end

let chaos_cmd seeds base_seed cell plan_file shrink journal_dir no_dedup
    certify journal_format journal_out metrics_interval metrics_out
    explain_worst horizon policy with_resilience =
  let dedup = not no_dedup in
  let resilience =
    if with_resilience then Some (Resilience.config ()) else None
  in
  let cells = match cell with Some c -> [ c ] | None -> Campaign.all_cells in
  Option.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    journal_dir;
  let failures =
    match plan_file with
    | Some path -> (
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Plan.of_string data with
      | Error why ->
        Format.eprintf "%s: bad plan: %s@." path why;
        exit 2
      | Ok plan ->
        List.filter_map
          (fun cell ->
            match
              Campaign.run_plan ~dedup ~certify ~journal_format
                ?journal_path:journal_out ?metrics_path:metrics_out
                ?metrics_width_ms:metrics_interval ~policy ?resilience cell
                plan
            with
            | Ok () ->
              Format.printf "ok %s seed=%Ld@." (Campaign.cell_name cell)
                plan.Plan.seed;
              None
            | Error failure -> Some { Campaign.cell; plan; failure })
          cells)
    | None ->
      let verdict =
        Campaign.run ~dedup ~certify ~journal_format ?journal_path:journal_out
          ?metrics_path:metrics_out ?metrics_width_ms:metrics_interval ~policy
          ?resilience ?horizon ~cells ~base_seed ~plans:seeds ()
      in
      Format.printf "%d plan(s) x %d cell(s) = %d run(s), %d violation(s)@."
        seeds (List.length cells) verdict.Campaign.plans_run
        (List.length verdict.Campaign.failures);
      verdict.Campaign.failures
  in
  List.iter
    (report_case journal_dir shrink certify journal_format explain_worst
       ~policy ~resilience)
    failures;
  if failures <> [] then exit 1

let chaos_term =
  Term.(
    const chaos_cmd
    $ Arg.(
        value & opt int 24
        & info [ "seeds" ] ~docv:"N"
            ~doc:"Number of seeded random fault plans to sweep.")
    $ Arg.(
        value & opt int64 1000L
        & info [ "base-seed" ] ~docv:"SEED"
            ~doc:
              "First plan seed; plan $(i,i) uses SEED+$(i,i).  The seed \
               drives both plan generation and the simulated run, so a \
               campaign's verdict is a pure function of its arguments.")
    $ Arg.(
        value & opt (some cell_conv) None
        & info [ "cell" ] ~docv:"SCHEME:LEVEL"
            ~doc:
              "Restrict the campaign to one scheme x level cell, e.g. \
               $(b,continuous:global).  Default: all 8 cells.")
    $ Arg.(
        value & opt (some file) None
        & info [ "plan" ] ~docv:"PLAN.json"
            ~doc:
              "Run this explicit fault plan (as printed on a violation) \
               instead of generating random ones.")
    $ Arg.(
        value & flag
        & info [ "shrink" ]
            ~doc:
              "Greedily minimize each failing plan and print the minimal \
               counterexample.")
    $ Arg.(
        value & opt (some string) None
        & info [ "journal-dir" ] ~docv:"DIR"
            ~doc:
              "Write each failing run's flight-recorder journal under DIR \
               (replayable via $(b,cloudtx audit) and $(b,cloudtx watch)).")
    $ Arg.(
        value & flag
        & info [ "no-dedup" ]
            ~doc:
              "Disable driver-side idempotent delivery (the wire-seq dedup \
               layer).  Duplication faults then reach the protocol machines \
               — the escape hatch used to demonstrate what hardened \
               delivery prevents.")
    $ Arg.(
        value & flag
        & info [ "certify" ]
            ~doc:
              "Add a fourth assertion layer after liveness, safety and \
               audit: every run's journal must certify serializable \
               ($(b,cloudtx certify) over the same history).  Verdicts \
               stay bit-reproducible — the check is a pure function of the \
               journal.")
    $ journal_format_arg
    $ Arg.(
        value
        & opt (some string) None
        & info [ "journal-out" ] ~docv:"FILE"
            ~doc:
              "Write every run's flight-recorder journal through to $(docv) \
               whatever the verdict (each run overwrites it — pair with \
               $(b,--seeds 1) and $(b,--cell) for a single run's artifact, \
               e.g. to feed $(b,cloudtx report)).")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "metrics-interval" ] ~docv:"MS"
            ~doc:
              "Window width for $(b,--metrics-out) (default 100 ms of \
               simulated time).")
    $ Arg.(
        value
        & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE"
            ~doc:
              "Aggregate a windowed time series live over each run and \
               write the snapshot JSONL to $(docv) whatever the verdict \
               (each run overwrites it; see $(b,--journal-out)).  Feed it \
               to $(b,cloudtx report --metrics).")
    $ Arg.(
        value & flag
        & info [ "explain-worst" ]
            ~doc:
              "Attach the slowest transaction's critical-path timeline (see \
               $(b,cloudtx explain)) to each failing cell's verdict, \
               reconstructed from the captured journal — bit-reproducible \
               like the rest of the sweep.")
    $ Arg.(
        value
        & opt (some float) None
        & info [ "horizon" ] ~docv:"MS"
            ~doc:
              "Fault horizon for generated plans in simulated ms (default \
               100).  Every window scales with it: fault start times land \
               in [0, 0.6*MS), holds in [0.03*MS, 0.25*MS), and the \
               gray-fault extra delays proportionally.  Explicit \
               $(b,--plan) files carry their own horizon (plan grammar \
               v2).")
    $ Arg.(
        value
        & opt (enum [ ("fixed", Timeout_policy.Fixed); ("adaptive", Timeout_policy.adaptive ()) ]) Timeout_policy.Fixed
        & info [ "policy" ] ~docv:"POLICY"
            ~doc:
              "TM timeout policy: $(b,fixed) (the paper's constants; \
               journals stay byte-identical to pre-policy captures) or \
               $(b,adaptive) (per-peer RTT estimation, exponential backoff \
               with deterministic jitter, capped vote/retry budgets).  \
               Under $(b,adaptive) the campaign adds a graceful-degradation \
               layer: no TM may exceed its decision-retry budget.")
    $ Arg.(
        value & flag
        & info [ "resilience" ]
            ~doc:
              "Arm per-server circuit breakers and admission control on \
               every submit (defaults: 3 strikes to open, 200 ms cooldown). \
               Adds a post-heal probe layer: after the faults heal and one \
               cooldown passes, a probe transaction must complete cleanly, \
               every breaker must re-close, and nothing may be left in \
               flight."))

(* ------------------------------------------------------------------ *)
(* journal: format tooling (cat / convert)                             *)
(* ------------------------------------------------------------------ *)

let read_raw path =
  try
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    contents
  with Sys_error msg ->
    Format.eprintf "cloudtx: cannot read %s: %s@." path msg;
    exit 2

(* write_file appends a trailing newline when missing — fine for text,
   corrupting for binary frames, so raw journal output bypasses it. *)
let write_raw path contents =
  let oc =
    try open_out_bin path
    with Sys_error msg ->
      Format.eprintf "cloudtx: cannot write %s: %s@." path msg;
      exit 2
  in
  output_string oc contents;
  close_out oc

let journal_cat_cmd path =
  match Journal_io.of_file path with
  | Error why ->
    Format.eprintf "%s: unreadable journal@.  %s@." path why;
    exit 2
  | Ok loaded ->
    List.iter print_endline loaded.Journal_io.lines;
    if loaded.Journal_io.torn_bytes > 0 then
      Format.eprintf "%s: ignored %d byte(s) of torn trailing frame@." path
        loaded.Journal_io.torn_bytes

let journal_cat_term =
  Term.(
    const journal_cat_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOURNAL"
            ~doc:
              "Journal in either format; its canonical JSONL lines are \
               printed to stdout.  Exit 2 on an unreadable journal, naming \
               the first bad frame."))

let journal_convert_cmd in_path out_path to_ =
  let contents = read_raw in_path in
  let detected =
    if Journal.is_binary contents then Journal.Binary else Journal.Jsonl
  in
  let to_ =
    (* Default target: the other format. *)
    match to_ with
    | Some f -> f
    | None -> ( match detected with Journal.Jsonl -> Journal.Binary | Journal.Binary -> Journal.Jsonl)
  in
  match Journal_io.convert ~to_ contents with
  | Error why ->
    Format.eprintf "%s: cannot convert@.  %s@." in_path why;
    exit 2
  | Ok converted ->
    write_raw out_path converted;
    Format.printf "wrote %s (%s -> %s, %d bytes)@." out_path
      (Journal.format_name detected) (Journal.format_name to_)
      (String.length converted)

let journal_convert_term =
  Term.(
    const journal_convert_cmd
    $ Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"IN" ~doc:"Input journal (format auto-detected).")
    $ Arg.(
        required
        & pos 1 (some string) None
        & info [] ~docv:"OUT" ~doc:"Output journal path.")
    $ Arg.(
        value
        & opt (some journal_format_conv) None
        & info [ "to" ] ~docv:"FORMAT"
            ~doc:
              "Target encoding, $(b,jsonl) or $(b,bin).  Default: the \
               opposite of the input's detected format.  Conversion \
               round-trips byte-exactly on current-version journals; \
               audit/certify verdicts are identical on either encoding."))

let journal_cmd =
  Cmd.group
    (Cmd.info "journal"
       ~doc:
         "Flight-recorder journal tooling: decode either encoding to \
          canonical JSONL ($(b,cat)) or re-encode between JSONL and binary \
          ($(b,convert)).")
    [
      Cmd.v
        (Cmd.info "cat"
           ~doc:
             "Decode a journal (JSONL or binary, auto-detected) to \
              human-readable canonical JSONL on stdout.")
        journal_cat_term;
      Cmd.v
        (Cmd.info "convert"
           ~doc:"Re-encode a journal between the JSONL and binary formats.")
        journal_convert_term;
    ]

(* ------------------------------------------------------------------ *)

let cmds =
  [
    Cmd.v (Cmd.info "run" ~doc:"Run a workload and print aggregate statistics.") run_term;
    Cmd.v (Cmd.info "table1" ~doc:"Reproduce Table I: analytic vs measured complexity.") table1_term;
    Cmd.v (Cmd.info "trace" ~doc:"Run one transaction and dump the full message trace.") trace_term;
    Cmd.v (Cmd.info "audit" ~doc:"Replay a flight-recorder journal and verify it offline.") audit_term;
    Cmd.v
      (Cmd.info "certify"
         ~doc:
           "Check a flight-recorder journal's committed history for \
            serializability: emit a witness serial order or a named anomaly \
            cycle with journal seq evidence.")
      certify_term;
    Cmd.v (Cmd.info "watch" ~doc:"Replay a flight-recorder journal through the Watchtower health monitor.") watch_term;
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Build the flight-deck report (throughput curve, per-phase \
            quantiles per window, staleness trajectory, alert timeline, \
            saturation knee) from a journal, a --metrics-out snapshot, or \
            both — with both, the online and offline reports must agree \
            byte-for-byte.")
      report_term;
    Cmd.v
      (Cmd.info "explain"
         ~doc:
           "Reconstruct one transaction's critical-path timeline from a \
            flight-recorder journal: every wall-clock segment (policy \
            fetches, 2PV/2PVC rounds, lock waits, stalls, decision \
            propagation) blamed on its causal step, summing to the \
            end-to-end latency.")
      explain_term;
    Cmd.v
      (Cmd.info "blame"
         ~doc:
           "Aggregate per-transaction critical paths from a flight-recorder \
            journal into blame tables: mean/p50/p99 time-in-segment per \
            scheme x level cell, plus the slowest transactions with their \
            dominant segments.")
      blame_term;
    journal_cmd;
    Cmd.v (Cmd.info "health" ~doc:"Run the full scheme x level grid and print a health snapshot.") health_term;
    Cmd.v (Cmd.info "sweep" ~doc:"Section VI-B trade-off grid.") sweep_term;
    Cmd.v (Cmd.info "bank" ~doc:"Random funds transfers over the banking scenario.") bank_term;
    Cmd.v (Cmd.info "analyze" ~doc:"Semantic diff of two policy files (JSON or Datalog).") analyze_term;
    Cmd.v (Cmd.info "check" ~doc:"Parse and validate a Datalog policy file.") check_term;
    Cmd.v (Cmd.info "export" ~doc:"Export a scenario policy as JSON.") export_term;
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Deterministic fault campaign: seeded random fault plans across \
            the scheme x level grid, asserting safety and liveness at every \
            terminal state.")
      chaos_term;
  ]

let () =
  let doc = "policy- and data-consistent cloud transactions (2PV / 2PVC)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "cloudtx" ~doc) cmds))
