(* The binary flight-recorder format: frame round-trips, corruption
   handling (torn tail tolerated, checksum damage rejected by seq), and
   cross-format equivalence — the audit and certify verdicts must not
   depend on which encoding the journal was recorded in. *)

module Journal = Cloudtx_obs.Journal
module Wbuf = Cloudtx_obs.Wbuf
module Journal_io = Cloudtx_core.Journal_io
module Audit = Cloudtx_core.Audit
module Certify = Cloudtx_core.Certify
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Cluster = Cloudtx_core.Cluster
module Codec_bin = Cloudtx_protocol.Codec_bin
module Transport = Cloudtx_sim.Transport
module Splitmix = Cloudtx_sim.Splitmix
module Scenario = Cloudtx_workload.Scenario
module Generator = Cloudtx_workload.Generator
module Experiment = Cloudtx_workload.Experiment

(* One protocol run recorded natively in [format]; the journal bytes. *)
let record_cell ?(txns = 4) ~format scheme level =
  let scenario = Scenario.retail ~seed:91L ~n_servers:3 ~n_subjects:3 () in
  let transport = Cluster.transport scenario.Scenario.cluster in
  let journal = Transport.enable_journal ~format transport in
  let rng = Splitmix.create 17L in
  let params = { Generator.default with queries_per_txn = 3; write_ratio = 0.5 } in
  ignore
    (Experiment.run_sequential scenario (Manager.config scheme level) ~n:txns
       (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i)));
  Journal.to_string journal

let decode_ok contents =
  match Journal.decode_binary contents with
  | Ok d -> d
  | Error why -> Alcotest.failf "decode_binary failed: %s" why

(* ------------------------------------------------------------------ *)
(* Frame round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Journal.binary_header ~version:Journal.format_version);
  let payloads = [ ""; "x"; String.make 200 '\xff'; "{\"k\":1}" ] in
  List.iteri
    (fun i payload ->
      Journal.encode_frame buf ~seq:(i + 1)
        ~time_ms:(float_of_int i *. 0.5)
        ~node:(Printf.sprintf "node-%d" i)
        ~dir:(if i mod 2 = 0 then "input" else "action")
        ~emit:(fun w -> Wbuf.str w payload))
    payloads;
  let d = decode_ok (Buffer.contents buf) in
  Alcotest.(check int) "version" Journal.format_version d.Journal.version;
  Alcotest.(check int) "no torn tail" 0 d.Journal.torn_bytes;
  Alcotest.(check int) "all frames back" (List.length payloads)
    (List.length d.Journal.frames);
  List.iteri
    (fun i (f : Journal.frame) ->
      Alcotest.(check int) "seq" (i + 1) f.Journal.seq;
      Alcotest.(check (float 0.)) "time" (float_of_int i *. 0.5) f.Journal.time_ms;
      Alcotest.(check string) "node" (Printf.sprintf "node-%d" i) f.Journal.node;
      Alcotest.(check string) "dir"
        (if i mod 2 = 0 then "input" else "action")
        f.Journal.dir;
      Alcotest.(check string) "payload" (List.nth payloads i) f.Journal.payload)
    d.Journal.frames

(* Every payload a real run records survives the typed codec
   round-trip byte-exactly. *)
let test_payload_roundtrip_corpus () =
  let contents = record_cell ~format:Journal.Binary Scheme.Continuous Consistency.Global in
  let d = decode_ok contents in
  Alcotest.(check bool) "corpus is non-trivial" true
    (List.length d.Journal.frames > 50);
  List.iter
    (fun (f : Journal.frame) ->
      match Codec_bin.payload_of_string f.Journal.payload with
      | Error why -> Alcotest.failf "seq %d undecodable: %s" f.Journal.seq why
      | Ok p ->
        Alcotest.(check string)
          (Printf.sprintf "seq %d re-encodes byte-exactly" f.Journal.seq)
          f.Journal.payload
          (Codec_bin.payload_to_string p))
    d.Journal.frames

(* ------------------------------------------------------------------ *)
(* Corruption                                                          *)
(* ------------------------------------------------------------------ *)

let test_torn_tail_tolerated () =
  let contents = record_cell ~format:Journal.Binary Scheme.Deferred Consistency.View in
  let full = decode_ok contents in
  let n = List.length full.Journal.frames in
  (* Chop into the final frame's checksum: the longest valid prefix is
     everything before it. *)
  let torn = String.sub contents 0 (String.length contents - 2) in
  let d = decode_ok torn in
  Alcotest.(check int) "one frame lost" (n - 1) (List.length d.Journal.frames);
  Alcotest.(check bool) "torn bytes reported" true (d.Journal.torn_bytes > 0);
  (* The loader tolerates the same damage and still audits clean up to
     the tear. *)
  match Journal_io.of_contents torn with
  | Error why -> Alcotest.failf "loader rejected a torn tail: %s" why
  | Ok loaded ->
    Alcotest.(check int) "loader reports the tear" d.Journal.torn_bytes
      loaded.Journal_io.torn_bytes

let test_checksum_damage_named () =
  let contents = record_cell ~format:Journal.Binary Scheme.Deferred Consistency.View in
  (* Walk the frame chain to the third frame and flip one byte in the
     middle of its body. *)
  let header_len = String.length (Journal.binary_header ~version:Journal.format_version) in
  let u32_at s pos =
    Char.code s.[pos]
    lor (Char.code s.[pos + 1] lsl 8)
    lor (Char.code s.[pos + 2] lsl 16)
    lor (Char.code s.[pos + 3] lsl 24)
  in
  let pos = ref header_len in
  for _ = 1 to 2 do
    pos := !pos + 4 + u32_at contents !pos + 4
  done;
  let body_mid = !pos + 4 + (u32_at contents !pos / 2) in
  let damaged = Bytes.of_string contents in
  Bytes.set damaged body_mid
    (Char.chr (Char.code (Bytes.get damaged body_mid) lxor 0x10));
  let damaged = Bytes.to_string damaged in
  let expect_error contents =
    match Journal.decode_binary contents with
    | Ok _ -> Alcotest.fail "checksum damage went undetected"
    | Error why ->
      let contains sub =
        let n = String.length why and m = String.length sub in
        let rec go i =
          i + m <= n && (String.equal (String.sub why i m) sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error names the mismatch (%s)" why)
        true (contains "checksum mismatch");
      Alcotest.(check bool)
        (Printf.sprintf "error names the seq (%s)" why)
        true (contains "seq 3")
  in
  expect_error damaged;
  (* The loader refuses it too — damage must not silently truncate. *)
  (match Journal_io.of_contents damaged with
  | Ok _ -> Alcotest.fail "loader accepted checksum damage"
  | Error _ -> ())

(* Single-bit flips anywhere in a frame body are always caught — the
   word-wise FNV-1a variant must not trade detection for speed. *)
let test_single_bit_flips_caught () =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Journal.binary_header ~version:Journal.format_version);
  Journal.encode_frame buf ~seq:1 ~time_ms:2.5 ~node:"nd" ~dir:"input"
    ~emit:(fun w -> Wbuf.str w "payload-bytes!");
  let clean = Buffer.contents buf in
  let header_len = String.length (Journal.binary_header ~version:Journal.format_version) in
  let body_start = header_len + 4 in
  let body_len = String.length clean - body_start - 4 in
  for byte_i = 0 to body_len - 1 do
    for bit = 0 to 7 do
      let damaged = Bytes.of_string clean in
      let p = body_start + byte_i in
      Bytes.set damaged p (Char.chr (Char.code clean.[p] lxor (1 lsl bit)));
      match Journal.decode_binary (Bytes.to_string damaged) with
      | Error _ -> ()
      | Ok d ->
        (* A flip in the body's own length-describing region can only
           escape as a tear, never as a silently different record. *)
        if d.Journal.torn_bytes = 0 && List.length d.Journal.frames = 1 then
          Alcotest.failf "flip of byte %d bit %d went undetected" byte_i bit
    done
  done

(* ------------------------------------------------------------------ *)
(* Cross-format equivalence                                            *)
(* ------------------------------------------------------------------ *)

(* All eight (scheme, level) cells: a natively-binary journal converts
   to JSONL and back byte-exactly, and audit + certify reach identical
   verdicts on both encodings. *)
let test_cross_format_equivalence () =
  List.iter
    (fun scheme ->
      List.iter
        (fun level ->
          let cell = Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level) in
          let bin = record_cell ~format:Journal.Binary scheme level in
          let jsonl =
            match Journal_io.convert ~to_:Journal.Jsonl bin with
            | Ok s -> s
            | Error why -> Alcotest.failf "%s: bin->jsonl failed: %s" cell why
          in
          (match Journal_io.convert ~to_:Journal.Binary jsonl with
          | Ok back ->
            Alcotest.(check bool)
              (cell ^ ": jsonl->bin reproduces the native bytes")
              true (String.equal back bin)
          | Error why -> Alcotest.failf "%s: jsonl->bin failed: %s" cell why);
          let lines contents =
            match Journal_io.of_contents contents with
            | Ok t -> t.Journal_io.lines
            | Error why -> Alcotest.failf "%s: load failed: %s" cell why
          in
          let bin_lines = lines bin and jsonl_lines = lines jsonl in
          Alcotest.(check (list string))
            (cell ^ ": canonical lines identical")
            jsonl_lines bin_lines;
          (match (Audit.run ~lines:bin_lines, Audit.run ~lines:jsonl_lines) with
          | Ok a, Ok b ->
            Alcotest.(check bool) (cell ^ ": audit reports identical") true (a = b)
          | Error why, _ | _, Error why ->
            Alcotest.failf "%s: audit failed: %s" cell why);
          match (Certify.run ~lines:bin_lines, Certify.run ~lines:jsonl_lines) with
          | Ok a, Ok b ->
            Alcotest.(check string)
              (cell ^ ": certify verdicts identical")
              (Certify.summary a) (Certify.summary b);
            Alcotest.(check bool) (cell ^ ": certify reports identical") true (a = b)
          | Error why, _ | _, Error why ->
            Alcotest.failf "%s: certify failed: %s" cell why)
        [ Consistency.View; Consistency.Global ])
    Scheme.all

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "journal_bin"
    [
      ( "frames",
        [
          Alcotest.test_case "envelope round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "payload codec round-trip over a live corpus"
            `Quick test_payload_roundtrip_corpus;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail_tolerated;
          Alcotest.test_case "checksum damage rejected by seq" `Quick
            test_checksum_damage_named;
          Alcotest.test_case "every single-bit flip caught" `Quick
            test_single_bit_flips_caught;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "all cells, both formats, same verdicts" `Quick
            test_cross_format_equivalence;
        ] );
    ]
