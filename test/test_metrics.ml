(* Unit and property tests for cloudtx_metrics. *)

module Counter = Cloudtx_metrics.Counter
module Running_stats = Cloudtx_metrics.Running_stats
module Sample_set = Cloudtx_metrics.Sample_set
module Table = Cloudtx_metrics.Table
module Timeline = Cloudtx_metrics.Timeline

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------------------------------------------ *)
(* Counter                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_basic () =
  let c = Counter.create () in
  Alcotest.(check int) "missing is zero" 0 (Counter.get c "x");
  Counter.incr c "x";
  Counter.incr c "x";
  Counter.add c "y" 5;
  Alcotest.(check int) "x" 2 (Counter.get c "x");
  Alcotest.(check int) "y" 5 (Counter.get c "y");
  Counter.add c "y" (-2);
  Alcotest.(check int) "y after negative add" 3 (Counter.get c "y")

let test_counter_reset_and_list () =
  let c = Counter.create () in
  Counter.add c "b" 2;
  Counter.add c "a" 1;
  Alcotest.(check (list (pair string int)))
    "sorted list"
    [ ("a", 1); ("b", 2) ]
    (Counter.to_list c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c "b")

let test_counter_merge () =
  let a = Counter.create () and b = Counter.create () in
  Counter.add a "x" 1;
  Counter.add a "y" 2;
  Counter.add b "y" 3;
  Counter.add b "z" 4;
  let m = Counter.merge a b in
  Alcotest.(check (list (pair string int)))
    "merged" [ ("x", 1); ("y", 5); ("z", 4) ] (Counter.to_list m)

(* ------------------------------------------------------------------ *)
(* Running_stats                                                       *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  let s = Running_stats.create () in
  Alcotest.(check int) "count" 0 (Running_stats.count s);
  Alcotest.(check (float 0.)) "mean" 0. (Running_stats.mean s);
  Alcotest.(check (float 0.)) "variance" 0. (Running_stats.variance s)

let test_stats_known_values () =
  let s = Running_stats.create () in
  List.iter (Running_stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Running_stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Running_stats.mean s);
  (* Sample variance of that classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Running_stats.variance s);
  Alcotest.(check (float 1e-9)) "min" 2. (Running_stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9. (Running_stats.max s);
  Alcotest.(check (float 1e-9)) "total" 40. (Running_stats.total s)

let test_stats_merge_matches_concat () =
  let xs = [ 1.; 2.; 3. ] and ys = [ 10.; 20. ] in
  let a = Running_stats.create () and b = Running_stats.create () in
  List.iter (Running_stats.add a) xs;
  List.iter (Running_stats.add b) ys;
  let m = Running_stats.merge a b in
  let all = Running_stats.create () in
  List.iter (Running_stats.add all) (xs @ ys);
  Alcotest.(check int) "count" (Running_stats.count all) (Running_stats.count m);
  Alcotest.(check bool) "mean" true
    (close (Running_stats.mean all) (Running_stats.mean m));
  Alcotest.(check bool) "variance" true
    (close (Running_stats.variance all) (Running_stats.variance m))

let prop_stats_mean =
  QCheck.Test.make ~name:"running mean equals list mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Running_stats.create () in
      List.iter (Running_stats.add s) xs;
      let expected =
        List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
      in
      Float.abs (Running_stats.mean s -. expected) <= 1e-6)

(* ------------------------------------------------------------------ *)
(* Sample_set                                                          *)
(* ------------------------------------------------------------------ *)

let test_percentiles () =
  let s = Sample_set.create () in
  List.iter (Sample_set.add s) [ 15.; 20.; 35.; 40.; 50. ];
  Alcotest.(check (float 1e-9)) "median" 35. (Sample_set.median s);
  Alcotest.(check (float 1e-9)) "p0" 15. (Sample_set.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 50. (Sample_set.percentile s 100.);
  Alcotest.(check (float 1e-9)) "p25" 20. (Sample_set.percentile s 25.)

let test_percentile_errors () =
  let s = Sample_set.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Sample_set.percentile: empty")
    (fun () -> ignore (Sample_set.percentile s 50.));
  Sample_set.add s 1.;
  Alcotest.check_raises "range"
    (Invalid_argument "Sample_set.percentile: out of range") (fun () ->
      ignore (Sample_set.percentile s 101.))

let test_sample_growth () =
  let s = Sample_set.create () in
  for i = 1 to 1000 do
    Sample_set.add s (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Sample_set.count s);
  Alcotest.(check (float 1e-9)) "mean" 500.5 (Sample_set.mean s);
  Alcotest.(check (float 1e-9)) "min" 1. (Sample_set.min s);
  Alcotest.(check (float 1e-9)) "max" 1000. (Sample_set.max s)

let test_negative_samples () =
  (* Regression: sorting used polymorphic compare on a float array and
     min/max re-scanned the samples; negative and unsorted inputs must
     order correctly under Float.compare. *)
  let s = Sample_set.create () in
  List.iter (Sample_set.add s) [ 3.; -5.; 1.5; -2.; 0. ];
  Alcotest.(check (float 1e-9)) "min" (-5.) (Sample_set.min s);
  Alcotest.(check (float 1e-9)) "max" 3. (Sample_set.max s);
  Alcotest.(check (float 1e-9)) "median" 0. (Sample_set.median s);
  Alcotest.(check (float 1e-9)) "p0" (-5.) (Sample_set.percentile s 0.)

let test_running_min_max () =
  (* Regression: min/max are maintained incrementally; interleaved adds
     must never lose an extreme. *)
  let s = Sample_set.create () in
  for i = 0 to 99 do
    Sample_set.add s (if i mod 2 = 0 then float_of_int i else -.float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "min" (-99.) (Sample_set.min s);
  Alcotest.(check (float 1e-9)) "max" 98. (Sample_set.max s);
  Sample_set.add s 1000.;
  Sample_set.add s (-1000.);
  Alcotest.(check (float 1e-9)) "max updates" 1000. (Sample_set.max s);
  Alcotest.(check (float 1e-9)) "min updates" (-1000.) (Sample_set.min s)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile stays within [min, max]" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_range (-100.) 100.))
        (float_range 0. 100.))
    (fun (xs, p) ->
      let s = Sample_set.create () in
      List.iter (Sample_set.add s) xs;
      let v = Sample_set.percentile s p in
      v >= Sample_set.min s -. 1e-9 && v <= Sample_set.max s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Table and Timeline                                                  *)
(* ------------------------------------------------------------------ *)

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let out =
    Table.render ~headers:[ "name"; "value" ]
      [ [ "alpha"; "1" ]; [ "b"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: _ ->
    Alcotest.(check bool) "header contains name" true
      (String.length header >= String.length "name  value")
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "mentions alpha" true (contains_sub out "alpha");
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Table.render ~headers:[ "a"; "b" ] [ [ "x" ] ]))

let test_table_alignment () =
  let out =
    Table.render
      ~aligns:[ Table.Left; Table.Right ]
      ~headers:[ "k"; "v" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  (* Right-aligned "1" under "22" means the 1 is preceded by a space. *)
  Alcotest.(check bool) "right alignment pads" true
    (String.length out > 0)

let test_timeline_markers () =
  let rows =
    [
      { Timeline.label = "s1"; events = [ (0., `Query); (10., `Proof) ] };
      { Timeline.label = "s2"; events = [ (5., `Sync) ] };
    ]
  in
  let out = Timeline.render ~width:21 ~t_start:0. ~t_end:10. rows in
  Alcotest.(check bool) "has query marker" true (String.contains out '*');
  Alcotest.(check bool) "has proof marker" true (String.contains out '!');
  Alcotest.(check bool) "has sync marker" true (String.contains out '|')

let test_timeline_proof_wins () =
  (* A query and proof in the same cell render as the proof. *)
  let rows = [ { Timeline.label = "s"; events = [ (5., `Query); (5., `Proof) ] } ] in
  let out = Timeline.render ~width:10 ~t_start:0. ~t_end:10. rows in
  Alcotest.(check bool) "proof visible" true (String.contains out '!');
  Alcotest.(check bool) "query hidden" false (String.contains out '*')

let test_timeline_errors () =
  Alcotest.check_raises "empty interval"
    (Invalid_argument "Timeline.render: empty interval") (fun () ->
      ignore (Timeline.render ~width:20 ~t_start:1. ~t_end:1. []));
  Alcotest.check_raises "narrow"
    (Invalid_argument "Timeline.render: width too small") (fun () ->
      ignore (Timeline.render ~width:5 ~t_start:0. ~t_end:1. []))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "metrics"
    [
      ( "counter",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "reset and list" `Quick test_counter_reset_and_list;
          Alcotest.test_case "merge" `Quick test_counter_merge;
        ] );
      ( "running_stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "known values" `Quick test_stats_known_values;
          Alcotest.test_case "merge matches concat" `Quick
            test_stats_merge_matches_concat;
          qc prop_stats_mean;
        ] );
      ( "sample_set",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          Alcotest.test_case "errors" `Quick test_percentile_errors;
          Alcotest.test_case "growth" `Quick test_sample_growth;
          Alcotest.test_case "negative samples" `Quick test_negative_samples;
          Alcotest.test_case "running min max" `Quick test_running_min_max;
          qc prop_percentile_bounded;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "timeline markers" `Quick test_timeline_markers;
          Alcotest.test_case "timeline proof precedence" `Quick
            test_timeline_proof_wins;
          Alcotest.test_case "timeline errors" `Quick test_timeline_errors;
        ] );
    ]
