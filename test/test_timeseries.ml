(* Tests for the windowed time series and the flight-deck report:
   window-assignment semantics, sketch accuracy against exact
   percentiles, and — the load-bearing property — online/offline
   agreement: the report built live through the journal observer equals
   the one rebuilt by replaying the journal file, byte for byte, for
   every scheme x level cell. *)

module Sketch = Cloudtx_obs.Sketch
module Timeseries = Cloudtx_obs.Timeseries
module Report = Cloudtx_obs.Report
module Monitor = Cloudtx_obs.Monitor
module Slo = Cloudtx_obs.Slo
module Journal = Cloudtx_obs.Journal
module Health = Cloudtx_core.Health
module Report_io = Cloudtx_core.Report_io
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Scenario = Cloudtx_workload.Scenario
module Transport = Cloudtx_sim.Transport
module Sample_set = Cloudtx_metrics.Sample_set

(* ------------------------------------------------------------------ *)
(* Sketch vs exact percentiles                                         *)
(* ------------------------------------------------------------------ *)

let sketch_of values =
  let s = Sketch.create () in
  List.iter (Sketch.observe s) values;
  s

let exact_of values =
  let e = Sample_set.create () in
  List.iter (Sample_set.add e) values;
  e

let check_within_bound what values p =
  let s = sketch_of values and e = exact_of values in
  let got = Sketch.percentile s p and want = Sample_set.percentile e p in
  let eb = Sketch.error_bound s in
  if Float.abs (got -. want) > (eb *. Float.abs want) +. 1e-9 then
    Alcotest.failf "%s: p%.1f sketch %.6f vs exact %.6f exceeds bound %.4f"
      what p got want eb

let test_sketch_error_bound_units () =
  let cases =
    [
      ("singleton", [ 42. ]);
      ("two", [ 1.; 1000. ]);
      ("uniform", List.init 500 (fun i -> float_of_int (i + 1)));
      ("powers of two", List.init 20 (fun i -> Float.ldexp 1. i));
      ("tiny", List.init 50 (fun i -> 1e-4 *. float_of_int (i + 1)));
      ("mixed magnitudes", [ 0.001; 0.5; 3.; 700.; 1e6 ]);
    ]
  in
  List.iter
    (fun (what, values) ->
      List.iter (check_within_bound what values) [ 0.; 50.; 90.; 99.; 100. ])
    cases

let test_sketch_error_bound_property =
  QCheck.Test.make ~count:200 ~name:"sketch quantiles within error bound"
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (make Gen.(float_range 1e-3 1e6)))
        (make Gen.(float_range 0. 100.)))
    (fun (values, p) ->
      let s = sketch_of values and e = exact_of values in
      let got = Sketch.percentile s p and want = Sample_set.percentile e p in
      Float.abs (got -. want) <= (Sketch.error_bound s *. Float.abs want) +. 1e-9)

let test_sketch_merge_exact () =
  let a = List.init 100 (fun i -> float_of_int (i + 1))
  and b = List.init 57 (fun i -> 3.7 *. float_of_int (i + 1)) in
  let merged = sketch_of a in
  Sketch.merge_into merged (sketch_of b);
  let whole = sketch_of (a @ b) in
  Alcotest.(check int) "count" (Sketch.count whole) (Sketch.count merged);
  Alcotest.(check (float 1e-9)) "sum" (Sketch.sum whole) (Sketch.sum merged);
  Alcotest.(check (list (pair (float 0.) int)))
    "bins identical" (Sketch.bins whole) (Sketch.bins merged);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "p%.0f" p)
        (Sketch.percentile whole p) (Sketch.percentile merged p))
    [ 0.; 50.; 99.; 100. ]

let test_sketch_merge_sub_bits_mismatch () =
  let a = Sketch.create ~sub_bits:5 () and b = Sketch.create ~sub_bits:6 () in
  Alcotest.check_raises "sub_bits must match"
    (Invalid_argument "Sketch.merge_into: sub_bits differ") (fun () ->
      Sketch.merge_into a b)

let test_sketch_zero_and_memory () =
  let s = Sketch.create () in
  List.iter (Sketch.observe s) [ -3.; 0.; Float.nan; 5. ];
  Alcotest.(check int) "all counted" 4 (Sketch.count s);
  Alcotest.(check (float 0.)) "p0 is the zero bin" 0. (Sketch.percentile s 0.);
  Alcotest.(check (float 0.)) "max tracked exactly" 5. (Sketch.max s);
  (* Bounded memory: more observations over the same range must not grow
     the footprint. *)
  let bounded = Sketch.create () in
  List.iter (Sketch.observe bounded) (List.init 100 (fun i -> float_of_int (i + 1)));
  let before = Sketch.memory_words bounded in
  List.iter (Sketch.observe bounded) (List.init 10_000 (fun i -> float_of_int ((i mod 100) + 1)));
  Alcotest.(check int) "memory flat over same range" before
    (Sketch.memory_words bounded)

(* ------------------------------------------------------------------ *)
(* Window semantics                                                    *)
(* ------------------------------------------------------------------ *)

let begin_ev txn = Monitor.Txn_begin { txn; node = "tm"; scheme = "s"; level = "l" }
let end_ev txn = Monitor.Txn_end { txn; committed = true; reason = ""; killed = false }

let test_edge_observation_starts_window () =
  let ts = Timeseries.create ~width_ms:100. () in
  Timeseries.observe ts ~seq:1 ~time_ms:99.999 (begin_ev "a");
  Timeseries.observe ts ~seq:2 ~time_ms:100. (begin_ev "b");
  match Timeseries.cells ts with
  | [ w0; w1 ] ->
    Alcotest.(check int) "99.999 in window 0" 1 w0.Timeseries.begun;
    Alcotest.(check int) "edge observation in the window it starts" 1
      w1.Timeseries.begun;
    Alcotest.(check (float 0.)) "window 1 starts at 100" 100.
      w1.Timeseries.start_ms
  | cells -> Alcotest.failf "expected 2 windows, got %d" (List.length cells)

let test_empty_windows_rendered () =
  let ts = Timeseries.create ~width_ms:100. () in
  Timeseries.observe ts ~seq:1 ~time_ms:10. (begin_ev "a");
  Timeseries.observe ts ~seq:2 ~time_ms:350. (end_ev "a");
  let cells = Timeseries.cells ts in
  Alcotest.(check int) "dense to the max index" 4 (List.length cells);
  List.iteri
    (fun i (c : Timeseries.cell) ->
      Alcotest.(check int) "indices dense" i c.Timeseries.index)
    cells;
  let middle = List.nth cells 1 in
  Alcotest.(check int) "gap window all zero" 0
    (middle.Timeseries.begun + middle.Timeseries.commits
   + middle.Timeseries.aborts)

let test_out_of_order_time () =
  let ts = Timeseries.create ~width_ms:100. () in
  Timeseries.observe ts ~seq:5 ~time_ms:250. (begin_ev "late");
  Timeseries.observe ts ~seq:6 ~time_ms:50. (begin_ev "early");
  let cells = Timeseries.cells ts in
  Alcotest.(check int) "three windows" 3 (List.length cells);
  Alcotest.(check int) "early landed in window 0" 1
    (List.nth cells 0).Timeseries.begun;
  Alcotest.(check int) "late landed in window 2" 1
    (List.nth cells 2).Timeseries.begun;
  (* Negative time clamps to window 0 rather than crashing. *)
  Timeseries.observe ts ~seq:7 ~time_ms:(-3.) (begin_ev "clamped");
  Alcotest.(check int) "negative time clamps into window 0" 2
    (List.nth (Timeseries.cells ts) 0).Timeseries.begun

let mk_alert ~fired_at ~resolved_at =
  {
    Slo.id = 1;
    rule = "stuck_txn";
    severity = Slo.Critical;
    subject = "t1";
    node = "tm-t1";
    first_seq = 1;
    last_seq = 2;
    fired_at;
    detail = "test";
    resolved_at;
  }

let test_alert_gauges_cumulative () =
  let ts = Timeseries.create ~width_ms:100. () in
  Timeseries.observe ts ~seq:1 ~time_ms:250. (begin_ev "pad");
  let a = mk_alert ~fired_at:10. ~resolved_at:None in
  Timeseries.note_alert ts `Fire a;
  a.Slo.resolved_at <- Some 230.;
  Timeseries.note_alert ts `Resolve a;
  match Timeseries.cells ts with
  | [ w0; w1; w2 ] ->
    Alcotest.(check int) "fired in window 0" 1 w0.Timeseries.alerts_fired;
    Alcotest.(check int) "open at end of window 0" 1 w0.Timeseries.alerts_open;
    Alcotest.(check int) "still open through window 1" 1
      w1.Timeseries.alerts_open;
    Alcotest.(check int) "resolved in window 2" 1 w2.Timeseries.alerts_resolved;
    Alcotest.(check int) "closed at end of window 2" 0
      w2.Timeseries.alerts_open
  | cells -> Alcotest.failf "expected 3 windows, got %d" (List.length cells)

let test_latency_feeds_phase_sketches () =
  let ts = Timeseries.create ~width_ms:100. () in
  Timeseries.observe ts ~seq:1 ~time_ms:20.
    (Monitor.Txn_latency
       {
         txn = "t1";
         total_ms = 10.;
         execute_ms = Some 6.;
         commit_ms = Some 3.;
         decide_ms = Some 1.;
       });
  let w = List.hd (Timeseries.cells ts) in
  let phase name = List.assoc name w.Timeseries.phases in
  Alcotest.(check int) "total count" 1 (phase "total").Timeseries.count;
  (* Sketch quantiles report bin midpoints: within the relative error
     bound of the exact value, not equal to it. *)
  Alcotest.(check (float 0.1)) "execute p50" 6. (phase "execute").Timeseries.p50;
  Alcotest.(check (float 0.01)) "commit max" 3. (phase "commit").Timeseries.max;
  let t = Timeseries.totals ts in
  Alcotest.(check int) "totals merged" 1
    (List.assoc "total" t.Timeseries.phases).Timeseries.count

(* ------------------------------------------------------------------ *)
(* Knee detection                                                      *)
(* ------------------------------------------------------------------ *)

let mk_window ~index ~commits ~p99 =
  {
    Report.index;
    start_ms = 100. *. float_of_int index;
    begun = commits;
    commits;
    aborts = 0;
    killed = 0;
    staleness = 0;
    alerts_fired = 0;
    alerts_resolved = 0;
    alerts_open = 0;
    phases =
      [ ("total", { Report.count = commits; p50 = p99; p99; p999 = p99; max = p99 }) ];
  }

let mk_totals commits =
  {
    Report.begun = commits;
    commits;
    aborts = 0;
    killed = 0;
    staleness = 0;
    alerts_fired = 0;
    alerts_resolved = 0;
    alerts_open = 0;
    phases = [];
  }

let test_knee_detected () =
  (* Latency jumps 2x while throughput stays flat: the saturation
     signature. *)
  let windows =
    [
      mk_window ~index:0 ~commits:10 ~p99:10.;
      mk_window ~index:1 ~commits:10 ~p99:11.;
      mk_window ~index:2 ~commits:10 ~p99:22.;
    ]
  in
  let r = Report.make ~width_ms:100. ~windows ~totals:(mk_totals 30) in
  Alcotest.(check (option int)) "knee at window 2" (Some 2) r.Report.knee

let test_knee_absent_when_throughput_grows () =
  (* Latency rises but throughput rises with it: load growth, not
     saturation. *)
  let windows =
    [
      mk_window ~index:0 ~commits:10 ~p99:10.;
      mk_window ~index:1 ~commits:20 ~p99:22.;
      mk_window ~index:2 ~commits:40 ~p99:50.;
    ]
  in
  let r = Report.make ~width_ms:100. ~windows ~totals:(mk_totals 70) in
  Alcotest.(check (option int)) "no knee" None r.Report.knee

(* ------------------------------------------------------------------ *)
(* Online = offline, all 8 cells                                       *)
(* ------------------------------------------------------------------ *)

let all_cells =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level)) [ Consistency.View; Consistency.Global ])
    Scheme.all

(* The [run --metrics-interval] wiring, minus the CLI: one journal, one
   Health bridge feeding a monitor and the fabric's timeseries. *)
let run_cell scheme level =
  let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let journal = Transport.enable_journal transport in
  let ts = Transport.enable_timeseries ~width_ms:20. transport in
  let monitor = Monitor.create ~notify:(Timeseries.note_alert ts) () in
  ignore (Health.attach ~timeseries:ts journal monitor);
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
  in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  (journal, ts, outcome)

let with_temp_journal contents f =
  let path = Filename.temp_file "cloudtx_timeseries" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_online_equals_offline_all_cells () =
  List.iter
    (fun (scheme, level) ->
      let what =
        Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
      in
      let journal, ts, outcome = run_cell scheme level in
      Alcotest.(check bool) (what ^ ": committed") true outcome.Outcome.committed;
      let live = Report.to_json (Report.of_timeseries ts) in
      (* Offline: replay the journal file through a fresh bridge. *)
      let offline =
        with_temp_journal (Journal.to_string journal) (fun path ->
            match Report_io.of_journal ~width_ms:20. path with
            | Ok (r, _monitor) -> Report.to_json r
            | Error why -> Alcotest.failf "%s: offline replay failed: %s" what why)
      in
      Alcotest.(check string) (what ^ ": online = offline report JSON") live
        offline;
      (* Live snapshot artifact: parsing --metrics-out JSONL rebuilds the
         same report too. *)
      match Report_io.of_snapshot (Timeseries.to_jsonl ts) with
      | Error why -> Alcotest.failf "%s: snapshot rejected: %s" what why
      | Ok r ->
        Alcotest.(check string)
          (what ^ ": snapshot round-trips to the same JSON")
          live (Report.to_json r))
    all_cells

let test_snapshot_rejects_garbage () =
  (match Report_io.of_snapshot "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty snapshot accepted");
  (match Report_io.of_snapshot {|{"metrics":"cloudtx","version":1,"width_ms":100}|} with
  | Error why ->
    Alcotest.(check bool) "names the missing totals" true
      (String.length why > 0)
  | Ok _ -> Alcotest.fail "headerless body accepted");
  match
    Report_io.of_snapshot
      {|{"metrics":"cloudtx","version":999,"width_ms":100}
{"totals":{}}|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted"

let () =
  Alcotest.run "timeseries"
    [
      ( "sketch",
        [
          Alcotest.test_case "error bound units" `Quick
            test_sketch_error_bound_units;
          QCheck_alcotest.to_alcotest test_sketch_error_bound_property;
          Alcotest.test_case "merge is exact" `Quick test_sketch_merge_exact;
          Alcotest.test_case "merge rejects sub_bits mismatch" `Quick
            test_sketch_merge_sub_bits_mismatch;
          Alcotest.test_case "zero bin and bounded memory" `Quick
            test_sketch_zero_and_memory;
        ] );
      ( "windows",
        [
          Alcotest.test_case "edge observation starts its window" `Quick
            test_edge_observation_starts_window;
          Alcotest.test_case "empty windows rendered" `Quick
            test_empty_windows_rendered;
          Alcotest.test_case "out-of-order and negative time" `Quick
            test_out_of_order_time;
          Alcotest.test_case "alert gauges cumulative" `Quick
            test_alert_gauges_cumulative;
          Alcotest.test_case "latency feeds phase sketches" `Quick
            test_latency_feeds_phase_sketches;
        ] );
      ( "report",
        [
          Alcotest.test_case "knee detected" `Quick test_knee_detected;
          Alcotest.test_case "knee absent under load growth" `Quick
            test_knee_absent_when_throughput_grows;
          Alcotest.test_case "snapshot rejects garbage" `Quick
            test_snapshot_rejects_garbage;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "online = offline, all 8 cells" `Quick
            test_online_equals_offline_all_cells;
        ] );
    ]
