(* Tests for the workload library: Zipf sampling, scenario construction,
   transaction generation, churn processes and the experiment harness. *)

module Zipf = Cloudtx_workload.Zipf
module Scenario = Cloudtx_workload.Scenario
module Generator = Cloudtx_workload.Generator
module Churn = Cloudtx_workload.Churn
module Experiment = Cloudtx_workload.Experiment
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Master = Cloudtx_core.Master
module Splitmix = Cloudtx_sim.Splitmix
module Transaction = Cloudtx_txn.Transaction
module Query = Cloudtx_txn.Query
module Sample_set = Cloudtx_metrics.Sample_set
module Running_stats = Cloudtx_metrics.Running_stats

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~s:0. in
  let rng = Splitmix.create 5L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d near uniform" i)
        true
        (c > 700 && c < 1300))
    counts

let test_zipf_skewed () =
  let z = Zipf.create ~n:10 ~s:1.2 in
  let rng = Splitmix.create 5L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 dominates" true (counts.(0) > counts.(9) * 5);
  Alcotest.(check bool) "monotone-ish head" true (counts.(0) > counts.(1))

let test_zipf_guards () =
  Alcotest.check_raises "n" (Invalid_argument "Zipf.create: n must be positive")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.));
  Alcotest.check_raises "s" (Invalid_argument "Zipf.create: s must be nonnegative")
    (fun () -> ignore (Zipf.create ~n:3 ~s:(-1.)))

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample in range" ~count:200
    QCheck.(pair (int_range 1 50) (float_range 0. 3.))
    (fun (n, s) ->
      let z = Zipf.create ~n ~s in
      let rng = Splitmix.create 9L in
      let i = Zipf.sample z rng in
      i >= 0 && i < n)

(* ------------------------------------------------------------------ *)
(* Scenario / Generator                                                *)
(* ------------------------------------------------------------------ *)

let test_scenario_shape () =
  let s = Scenario.retail ~n_servers:3 ~items_per_server:5 ~n_subjects:2 () in
  Alcotest.(check int) "servers" 3 (List.length s.Scenario.servers);
  Alcotest.(check int) "subjects" 2 (List.length s.Scenario.subjects);
  Alcotest.(check int) "keys per server" 5
    (List.length (s.Scenario.keys_of "server-1"));
  Alcotest.(check int) "credentials per subject" 1
    (List.length (s.Scenario.credentials_of "clerk-1"));
  Alcotest.check_raises "unknown subject"
    (Invalid_argument "Scenario: unknown subject ghost") (fun () ->
      ignore (s.Scenario.credentials_of "ghost"))

let test_spread_transaction_shape () =
  let s = Scenario.retail ~n_servers:4 () in
  let t = Scenario.spread_transaction s ~id:"t" ~subject:"clerk-1" ~queries:4 () in
  Alcotest.(check int) "four queries" 4 (Transaction.query_count t);
  Alcotest.(check (list string)) "distinct servers"
    [ "server-1"; "server-2"; "server-3"; "server-4" ]
    (Transaction.participants t);
  (* More queries than servers wrap around. *)
  let t6 = Scenario.spread_transaction s ~id:"t6" ~subject:"clerk-1" ~queries:6 () in
  Alcotest.(check int) "still 4 participants" 4
    (List.length (Transaction.participants t6))

let test_generator_validity () =
  let s = Scenario.retail ~n_servers:3 ~n_subjects:2 () in
  let rng = Splitmix.create 21L in
  let params = { Generator.default with queries_per_txn = 5; write_ratio = 0.5 } in
  for i = 1 to 20 do
    let t = Generator.generate s rng params ~id:(Printf.sprintf "g%d" i) in
    Alcotest.(check int) "query count" 5 (Transaction.query_count t);
    Alcotest.(check bool) "known subject" true
      (List.mem t.Transaction.subject s.Scenario.subjects);
    List.iter
      (fun (q : Query.t) ->
        Alcotest.(check bool) "keys hosted by the query's server" true
          (List.for_all
             (fun item -> List.mem item (s.Scenario.keys_of q.Query.server))
             (Query.items q)))
      t.Transaction.queries
  done

let test_arrival_times () =
  let rng = Splitmix.create 3L in
  let times = Generator.arrival_times rng ~rate:0.1 ~horizon:1000. in
  Alcotest.(check bool) "nonempty" true (List.length times > 50);
  Alcotest.(check bool) "ascending in horizon" true
    (let rec ok = function
       | a :: (b :: _ as rest) -> a < b && ok rest
       | [ x ] -> x < 1000.
       | [] -> true
     in
     ok times)

(* ------------------------------------------------------------------ *)
(* Churn                                                               *)
(* ------------------------------------------------------------------ *)

let test_policy_refresh_publishes () =
  let s = Scenario.retail () in
  Churn.policy_refresh s ~period:10. ~propagation:(0., 0.) ~count:3;
  ignore (Cluster.run s.Scenario.cluster);
  Alcotest.(check (option int)) "master at v4" (Some 4)
    (Master.latest (Cluster.master s.Scenario.cluster) ~domain:"retail")

let test_tighten_at () =
  let s = Scenario.retail () in
  Churn.tighten_at s ~time:5. ~propagation:(0., 0.);
  ignore (Cluster.run s.Scenario.cluster);
  Alcotest.(check (option int)) "master bumped" (Some 2)
    (Master.latest (Cluster.master s.Scenario.cluster) ~domain:"retail")

let test_revoke_at () =
  let s = Scenario.retail () in
  Churn.revoke_at s ~subject:"clerk-1" ~time:5.;
  ignore (Cluster.run s.Scenario.cluster);
  let cred = List.hd (s.Scenario.credentials_of "clerk-1") in
  Alcotest.(check bool) "revoked after" true
    (match
       Cloudtx_policy.Ca.status s.Scenario.ca cred.Cloudtx_policy.Credential.id
         ~at:10.
     with
    | Cloudtx_policy.Ca.Revoked _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Experiment harness                                                  *)
(* ------------------------------------------------------------------ *)

let test_run_sequential_stats () =
  let s = Scenario.retail ~n_servers:3 ~n_subjects:2 () in
  let rng = Splitmix.create 17L in
  let params = { Generator.default with queries_per_txn = 3 } in
  let stats =
    Experiment.run_sequential s
      (Manager.config Scheme.Deferred Consistency.View)
      ~n:10
      (fun ~i -> Generator.generate s rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check int) "ten outcomes" 10 (List.length stats.Experiment.outcomes);
  Alcotest.(check int) "all committed (no churn)" 10 stats.Experiment.committed;
  Alcotest.(check (float 1e-9)) "commit ratio" 1. (Experiment.commit_ratio stats);
  Alcotest.(check int) "latency samples" 10
    (Sample_set.count stats.Experiment.latency_ms);
  Alcotest.(check bool) "positive latency" true
    (Sample_set.min stats.Experiment.latency_ms > 0.);
  (* Deferred, no churn: u proofs per transaction. *)
  Alcotest.(check (float 1e-9)) "u proofs each" 3.
    (Running_stats.mean stats.Experiment.proofs);
  Alcotest.(check bool) "messages tracked" true
    (Running_stats.mean stats.Experiment.protocol_messages > 0.)

let test_run_open_concurrent () =
  let s = Scenario.retail ~n_servers:3 ~n_subjects:3 () in
  let rng = Splitmix.create 31L in
  let params =
    { Generator.default with queries_per_txn = 2; write_ratio = 1.; zipf_s = 1.5 }
  in
  let arrivals = List.init 12 (fun i -> float_of_int i *. 0.4) in
  let stats =
    Experiment.run_open s
      (Manager.config Scheme.Deferred Consistency.View)
      ~arrivals
      (fun ~i -> Generator.generate s rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check int) "all finished" 12
    (stats.Experiment.committed + stats.Experiment.aborted);
  (* Hot keys under concurrency: wait-die may abort some, but the system
     always makes progress. *)
  Alcotest.(check bool) "progress" true (stats.Experiment.committed >= 1);
  List.iter
    (fun (o : Outcome.t) ->
      if not o.Outcome.committed then
        Alcotest.(check string) "aborts are wait-die" "wait-die"
          (Outcome.reason_name o.Outcome.reason))
    stats.Experiment.outcomes

let test_run_closed () =
  let s = Scenario.retail ~seed:9L ~n_servers:3 ~n_subjects:3 () in
  let rng = Splitmix.create 13L in
  let params = { Generator.default with queries_per_txn = 2; write_ratio = 0.2 } in
  let stats, tps =
    Experiment.run_closed s
      (Manager.config Scheme.Deferred Consistency.View)
      ~clients:4 ~total:25
      (fun ~i -> Generator.generate s rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check int) "all complete" 25
    (stats.Experiment.committed + stats.Experiment.aborted);
  Alcotest.(check bool) "throughput positive" true (tps > 0.);
  (* Four clients in flight: the run must be faster than a serial one. *)
  let _, tps1 =
    let s = Scenario.retail ~seed:9L ~n_servers:3 ~n_subjects:3 () in
    let rng = Splitmix.create 13L in
    Experiment.run_closed s
      (Manager.config Scheme.Deferred Consistency.View)
      ~clients:1 ~total:25
      (fun ~i -> Generator.generate s rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check bool)
    (Printf.sprintf "parallel beats serial (%.0f vs %.0f)" tps tps1)
    true (tps > tps1)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          Alcotest.test_case "skewed" `Quick test_zipf_skewed;
          Alcotest.test_case "guards" `Quick test_zipf_guards;
          qc prop_zipf_in_range;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "shape" `Quick test_scenario_shape;
          Alcotest.test_case "spread transaction" `Quick
            test_spread_transaction_shape;
          Alcotest.test_case "generator validity" `Quick test_generator_validity;
          Alcotest.test_case "arrival times" `Quick test_arrival_times;
        ] );
      ( "churn",
        [
          Alcotest.test_case "policy refresh" `Quick test_policy_refresh_publishes;
          Alcotest.test_case "tighten" `Quick test_tighten_at;
          Alcotest.test_case "revoke" `Quick test_revoke_at;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "sequential stats" `Quick test_run_sequential_stats;
          Alcotest.test_case "open concurrent" `Quick test_run_open_concurrent;
          Alcotest.test_case "closed loop" `Quick test_run_closed;
        ] );
    ]
