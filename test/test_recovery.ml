(* Failure-injection tests: participant crashes around the 2PVC voting
   and decision phases, WAL-driven recovery, in-doubt resolution via
   decision retransmission and the Inquiry termination protocol.

   All timing uses Constant 1ms latency, making event times exact:
   query i completes at 2i ms; with 3 queries the commit request arrives
   at 7ms, commit replies at 8ms, decisions at 9ms, acks at 10ms. *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Participant = Cloudtx_core.Participant
module Transport = Cloudtx_sim.Transport
module Latency = Cloudtx_sim.Latency
module Scenario = Cloudtx_workload.Scenario
module Server = Cloudtx_store.Server
module Value = Cloudtx_store.Value
module Wal = Cloudtx_store.Wal

let scenario () =
  Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()

let txn_of scenario =
  Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()

let at scenario ~time f =
  Transport.at (Cluster.transport scenario.Scenario.cluster) ~delay:time f

(* ------------------------------------------------------------------ *)

let test_randomized_crash_schedules () =
  (* Fuzz the failure window: one random participant crashes at a random
     instant in [0, 12] ms (anywhere from before the first query to after
     the decision) and recovers 10 ms later. With the watchdog, decision
     retransmission and the Inquiry protocol in place, every run must
     (a) terminate, and (b) end with every surviving WAL consistent with
     the TM's decision. *)
  let module Splitmix = Cloudtx_sim.Splitmix in
  let rng = Splitmix.create 2024L in
  for trial = 1 to 120 do
    let s = scenario () in
    let cluster = s.Scenario.cluster in
    let victim =
      List.nth s.Scenario.servers (Splitmix.int rng (List.length s.Scenario.servers))
    in
    let crash_at = Splitmix.uniform rng ~lo:0.1 ~hi:12. in
    at s ~time:crash_at (fun () ->
        Participant.crash (Cluster.participant cluster victim));
    at s ~time:(crash_at +. 10.) (fun () ->
        Participant.recover (Cluster.participant cluster victim));
    let config =
      Manager.config ~vote_timeout:40. ~decision_retry:7. Scheme.Deferred
        Consistency.View
    in
    let result = ref None in
    Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
    ignore (Cluster.run cluster);
    match !result with
    | None ->
      Alcotest.failf "trial %d (victim %s at %.2fms): transaction hung" trial
        victim crash_at
    | Some o ->
      (* Agreement: no server's WAL may contradict the decision. *)
      List.iter
        (fun name ->
          let server = Participant.server (Cluster.participant cluster name) in
          match (Wal.recover_txn (Server.wal server) ~txn:"t1", o.Outcome.committed) with
          | (`Committed _ | `Finished), true | (`Aborted | `No_trace | `Active | `Finished), false ->
            ()
          | (`Aborted | `No_trace | `Active), true ->
            (* A server that never saw the commit is fine only if it also
               never prepared... `Finished after commit covered above;
               No_trace/Active mean the crash predated its involvement —
               but then the TM could not have committed (its vote was
               needed). *)
            Alcotest.failf "trial %d: %s missed a commit" trial name
          | (`Committed _), false ->
            Alcotest.failf "trial %d: %s committed an aborted transaction" trial name
          | `Prepared _, _ ->
            Alcotest.failf "trial %d: %s left in doubt" trial name)
        s.Scenario.servers
  done

let test_crash_after_prepare_decision_retransmitted () =
  (* server-2 crashes right after voting YES (8.5ms) and recovers at
     20ms.  The TM's decision retransmission finishes the commit; the
     recovered server replays its forced prepare record and applies. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  at s ~time:8.5 (fun () -> Participant.crash (Cluster.participant cluster "server-2"));
  at s ~time:20. (fun () -> Participant.recover (Cluster.participant cluster "server-2"));
  let config =
    Manager.config ~decision_retry:5. Scheme.Deferred Consistency.View
  in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  (match !result with
  | Some o ->
    Alcotest.(check bool) "committed" true o.Outcome.committed
  | None -> Alcotest.fail "transaction never finished");
  (* The crashed server applied the write after recovery. *)
  let server = Participant.server (Cluster.participant cluster "server-2") in
  Alcotest.(check bool) "write applied on recovered server" true
    (Server.get server "s2-k2" <> Some (Value.Int 100))

let test_crash_after_prepare_inquiry_resolves () =
  (* Same crash, but no retransmission: the run quiesces with the TM
     stuck in the decision phase.  When the participant recovers, its WAL
     shows the in-doubt transaction; the Inquiry to the TM obtains the
     decision and completes the protocol. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  at s ~time:8.5 (fun () -> Participant.crash (Cluster.participant cluster "server-2"));
  let config = Manager.config Scheme.Deferred Consistency.View in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  Alcotest.(check bool) "stuck while participant down" true (!result = None);
  (* Recovery: replay WAL, find the in-doubt txn, ask the TM. *)
  Participant.recover (Cluster.participant cluster "server-2");
  ignore (Cluster.run cluster);
  (match !result with
  | Some o -> Alcotest.(check bool) "committed after inquiry" true o.Outcome.committed
  | None -> Alcotest.fail "inquiry did not resolve the transaction");
  let server = Participant.server (Cluster.participant cluster "server-2") in
  Alcotest.(check bool) "write applied" true
    (Server.get server "s2-k2" <> Some (Value.Int 100))

let test_crash_before_vote_timeout_aborts () =
  (* server-2 crashes before the commit request reaches it (6.5ms): the
     voting round cannot complete, the TM's vote timeout fires and the
     transaction aborts everywhere that is still alive. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  at s ~time:6.5 (fun () -> Participant.crash (Cluster.participant cluster "server-2"));
  (* Recover later so abort decisions can be acknowledged. *)
  at s ~time:60. (fun () -> Participant.recover (Cluster.participant cluster "server-2"));
  let config =
    Manager.config ~vote_timeout:25. ~decision_retry:10. Scheme.Deferred
      Consistency.View
  in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  (match !result with
  | Some o ->
    Alcotest.(check bool) "aborted" false o.Outcome.committed;
    Alcotest.(check string) "timed out" "timed-out"
      (Outcome.reason_name o.Outcome.reason)
  | None -> Alcotest.fail "vote timeout did not fire");
  (* No server applied anything. *)
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant cluster name) in
      let k2 = List.nth (s.Scenario.keys_of name) 1 in
      Alcotest.(check bool)
        (Printf.sprintf "%s unchanged" name)
        true
        (Server.get server k2 = Some (Value.Int 100)))
    s.Scenario.servers

let test_agreement_under_crash () =
  (* Whatever the failure pattern, no participant applies commit while
     another applies abort for the same transaction (atomicity). Here the
     crash happens between the two decision deliveries. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  (* Decisions arrive at 9ms; crash server-3 at 8.9ms so it misses its
     decision while the others commit. *)
  at s ~time:8.9 (fun () -> Participant.crash (Cluster.participant cluster "server-3"));
  at s ~time:30. (fun () -> Participant.recover (Cluster.participant cluster "server-3"));
  let config =
    Manager.config ~decision_retry:5. Scheme.Deferred Consistency.View
  in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  let committed =
    match !result with
    | Some o -> o.Outcome.committed
    | None -> Alcotest.fail "never finished"
  in
  Alcotest.(check bool) "committed" true committed;
  (* Every participant's WAL ends with the same decision. *)
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant cluster name) in
      match Wal.recover_txn (Server.wal server) ~txn:"t1" with
      | `Committed _ | `Finished ->
        (* Finished after a commit decision: check data applied. *)
        let k2 = List.nth (s.Scenario.keys_of name) 1 in
        Alcotest.(check bool)
          (Printf.sprintf "%s applied" name)
          true
          (Server.get server k2 <> Some (Value.Int 100))
      | `Aborted -> Alcotest.failf "%s aborted a committed transaction" name
      | `Prepared _ | `Active | `No_trace ->
        Alcotest.failf "%s left in doubt" name)
    s.Scenario.servers

let test_crash_during_execution_times_out () =
  (* server-2 dies before it ever receives its query (its Execute arrives
     at 3ms): the watchdog aborts the transaction and server-1 releases
     the locks of the partial execution. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  at s ~time:2.5 (fun () -> Participant.crash (Cluster.participant cluster "server-2"));
  (* Recover later so the abort decision can be acknowledged. *)
  at s ~time:60. (fun () -> Participant.recover (Cluster.participant cluster "server-2"));
  let config =
    Manager.config ~vote_timeout:25. ~decision_retry:10. Scheme.Deferred
      Consistency.View
  in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  (match !result with
  | Some o ->
    Alcotest.(check bool) "aborted" false o.Outcome.committed;
    Alcotest.(check string) "timed out" "timed-out"
      (Outcome.reason_name o.Outcome.reason)
  | None -> Alcotest.fail "execution-phase hang was not detected");
  let server1 = Participant.server (Cluster.participant cluster "server-1") in
  Alcotest.(check (list string)) "server-1 locks released" []
    (Cloudtx_store.Lock_manager.held_by (Server.locks server1) ~txn:"t1")

let test_crash_during_continuous_2pv_times_out () =
  (* Continuous runs a 2PV after every query. server-1 answers its own
     query and the first 2PV, then dies; q2's 2PV over {server-1,
     server-2} can never complete, and the watchdog fires. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  at s ~time:4.5 (fun () -> Participant.crash (Cluster.participant cluster "server-1"));
  at s ~time:80. (fun () -> Participant.recover (Cluster.participant cluster "server-1"));
  let config =
    Manager.config ~vote_timeout:25. ~decision_retry:10. Scheme.Continuous
      Consistency.View
  in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  match !result with
  | Some o ->
    Alcotest.(check bool) "aborted" false o.Outcome.committed;
    Alcotest.(check string) "timed out" "timed-out"
      (Outcome.reason_name o.Outcome.reason)
  | None -> Alcotest.fail "per-query 2PV hang was not detected"

let test_master_crash_times_out_global () =
  (* The master dies before the commit-phase version fetch: with a vote
     timeout configured, the global-consistency transaction aborts instead
     of hanging; view consistency is unaffected by the same failure. *)
  let run level =
    let s = scenario () in
    let cluster = s.Scenario.cluster in
    at s ~time:5. (fun () -> Transport.crash (Cluster.transport cluster) "master");
    let config =
      Manager.config ~vote_timeout:30. Scheme.Deferred level
    in
    let result = ref None in
    Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
    ignore (Cluster.run cluster);
    !result
  in
  (match run Consistency.Global with
  | Some o ->
    Alcotest.(check bool) "global aborted" false o.Outcome.committed;
    Alcotest.(check string) "timed out" "timed-out"
      (Outcome.reason_name o.Outcome.reason)
  | None -> Alcotest.fail "global transaction hung on the dead master");
  match run Consistency.View with
  | Some o -> Alcotest.(check bool) "view commits" true o.Outcome.committed
  | None -> Alcotest.fail "view transaction should not touch the master"

let test_forced_log_counts_2pvc () =
  (* 2PVC inherits 2PC's log complexity: each participant forces
     prepared + decision (2n), and the TM's decision force is traced. *)
  let s = scenario () in
  let cluster = s.Scenario.cluster in
  let config = Manager.config Scheme.Deferred Consistency.View in
  let result = ref None in
  Manager.submit cluster config (txn_of s) ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  Alcotest.(check bool) "committed" true
    (match !result with Some o -> o.Outcome.committed | None -> false);
  let participant_forces =
    List.fold_left
      (fun acc name ->
        let server = Participant.server (Cluster.participant cluster name) in
        acc + Wal.force_count (Server.wal server))
      0 s.Scenario.servers
  in
  Alcotest.(check int) "participants force 2n" 6 participant_forces;
  let tm_forces =
    Cloudtx_metrics.Counter.get
      (Transport.counters (Cluster.transport cluster))
      "log_force:tm"
  in
  Alcotest.(check int) "TM forces its decision" 1 tm_forces

let () =
  Alcotest.run "recovery"
    [
      ( "crashes",
        [
          Alcotest.test_case "randomized crash schedules" `Slow
            test_randomized_crash_schedules;
          Alcotest.test_case "decision retransmission" `Quick
            test_crash_after_prepare_decision_retransmitted;
          Alcotest.test_case "inquiry resolves in-doubt" `Quick
            test_crash_after_prepare_inquiry_resolves;
          Alcotest.test_case "vote timeout aborts" `Quick
            test_crash_before_vote_timeout_aborts;
          Alcotest.test_case "agreement under crash" `Quick
            test_agreement_under_crash;
          Alcotest.test_case "master crash times out global" `Quick
            test_master_crash_times_out_global;
          Alcotest.test_case "execution-phase crash times out" `Quick
            test_crash_during_execution_times_out;
          Alcotest.test_case "continuous 2PV crash times out" `Quick
            test_crash_during_continuous_2pv_times_out;
        ] );
      ( "logging",
        [
          Alcotest.test_case "2PVC log complexity 2n+1" `Quick
            test_forced_log_counts_2pvc;
        ] );
    ]
