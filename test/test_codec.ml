(* Tests for the JSON wire format: parser, round trips for rules /
   policies / credentials, signature preservation across the wire, and
   rejection of malformed or non-well-formed inputs. *)

module Json = Cloudtx_policy.Json
module Codec = Cloudtx_policy.Codec
module Rule = Cloudtx_policy.Rule
module Policy = Cloudtx_policy.Policy
module Credential = Cloudtx_policy.Credential
module Ca = Cloudtx_policy.Ca

let ok = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m

(* Replace the first occurrence of [needle] in [haystack]. *)
let replace haystack needle replacement =
  let nh = String.length haystack and nn = String.length needle in
  let rec find i =
    if i + nn > nh then None
    else if String.sub haystack i nn = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found" needle
  | Some i ->
    String.sub haystack 0 i ^ replacement
    ^ String.sub haystack (i + nn) (nh - i - nn)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_values () =
  let cases =
    [
      "null";
      "true";
      "false";
      "0";
      "-42";
      "[]";
      "{}";
      {|"hello"|};
      {|{"a":[1,2,3],"b":{"c":"d"}}|};
    ]
  in
  List.iter
    (fun s ->
      let v = ok (Json.parse s) in
      Alcotest.(check string) ("roundtrip " ^ s) s (Json.to_string v))
    cases

let test_json_string_escapes () =
  let v = Json.String "line\nquote\"back\\slash\ttab" in
  let rendered = Json.to_string v in
  Alcotest.(check bool) "same value back" true (ok (Json.parse rendered) = v)

let test_json_whitespace_tolerated () =
  let v = ok (Json.parse "  { \"a\" : [ 1 , 2 ] }  ") in
  Alcotest.(check bool) "parsed" true
    (v = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Int 2 ]) ])

let test_json_malformed () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\"}";
      "\"unterminated";
      "tru";
      "1 2";
      "{\"a\":1,}";
    ]

let prop_json_string_roundtrip =
  QCheck.Test.make ~name:"json string roundtrip" ~count:300
    QCheck.(string_gen Gen.(char_range ' ' '~'))
    (fun s ->
      match Json.parse (Json.to_string (Json.String s)) with
      | Ok (Json.String s') -> String.equal s s'
      | Ok _ | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Rules and policies                                                  *)
(* ------------------------------------------------------------------ *)

let sample_rule =
  Rule.rule
    (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
    [
      Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ];
      Rule.atom "req_action" [ Rule.v "a" ];
      Rule.atom "req_item" [ Rule.v "i" ];
    ]

let test_rule_roundtrip () =
  let back = ok (Codec.rule_of_json (Codec.rule_to_json sample_rule)) in
  Alcotest.(check string) "same rule" (Rule.to_string sample_rule)
    (Rule.to_string back)

let test_rule_range_restriction_on_decode () =
  (* A wire rule with an unbound head variable must be rejected. *)
  let bad =
    Json.Obj
      [
        ( "head",
          Json.Obj
            [
              ("pred", Json.String "p");
              ("args", Json.List [ Json.Obj [ ("v", Json.String "x") ] ]);
            ] );
        ("body", Json.List []);
      ]
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Codec.rule_of_json bad))

let test_negated_rule_roundtrip () =
  let r =
    Rule.rule_literals
      (Rule.atom "permit" [ Rule.v "s" ])
      [
        Rule.Pos (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ]);
        Rule.Neg (Rule.atom "suspended" [ Rule.v "s" ]);
      ]
  in
  let back = ok (Codec.rule_of_json (Codec.rule_to_json r)) in
  Alcotest.(check string) "same rule" (Rule.to_string r) (Rule.to_string back);
  Alcotest.(check int) "negation survives" 1
    (List.length (Rule.negative_body back))

let test_policy_roundtrip () =
  let p =
    Policy.amend
      (Policy.create ~accept_capabilities:false ~domain:"retail" [ sample_rule ])
      [ sample_rule ]
  in
  let back = ok (Codec.policy_of_string (Codec.policy_to_string p)) in
  Alcotest.(check string) "domain" p.Policy.domain back.Policy.domain;
  Alcotest.(check int) "version survives" p.Policy.version back.Policy.version;
  Alcotest.(check bool) "flag" p.Policy.accept_capabilities
    back.Policy.accept_capabilities;
  Alcotest.(check int) "rules" (List.length p.Policy.rules)
    (List.length back.Policy.rules);
  (* The decoded policy behaves identically. *)
  let facts =
    [
      Rule.fact "role" [ "bob"; "clerk" ];
      Rule.fact "req_action" [ "read" ];
      Rule.fact "req_item" [ "x" ];
    ]
  in
  Alcotest.(check bool) "same decision" true
    (Policy.permits p ~facts ~subject:"bob" ~action:"read" ~item:"x"
    = Policy.permits back ~facts ~subject:"bob" ~action:"read" ~item:"x")

let test_policy_bad_version () =
  let p = Policy.create ~domain:"d" [] in
  let wire = Codec.policy_to_string p in
  let broken = replace wire "\"version\":1" "\"version\":0" in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Codec.policy_of_string broken))

(* ------------------------------------------------------------------ *)
(* Credentials                                                         *)
(* ------------------------------------------------------------------ *)

let sample_credential () =
  let ca = Ca.create "corp" in
  Ca.issue ca ~id:"bob-role" ~subject:"bob"
    ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
    ~now:3.5 ~ttl:100.

let test_credential_roundtrip () =
  let c = sample_credential () in
  let back = ok (Codec.credential_of_string (Codec.credential_to_string c)) in
  Alcotest.(check string) "id" c.Credential.id back.Credential.id;
  Alcotest.(check string) "subject" c.Credential.subject back.Credential.subject;
  Alcotest.(check (float 0.)) "issued_at" c.Credential.issued_at
    back.Credential.issued_at;
  Alcotest.(check bool) "signature still valid" true
    (Credential.signature_valid back);
  Alcotest.(check bool) "syntactic check passes" true
    (Credential.syntactically_valid back ~at:10. = Ok ())

let test_credential_access_kind_roundtrip () =
  let c =
    Credential.make ~id:"cap" ~subject:"bob" ~issuer:"server-1"
      ~kind:(Credential.Access { action = "read"; item = "db1" })
      ~facts:[] ~issued_at:0. ~expires_at:9.
  in
  let back = ok (Codec.credential_of_string (Codec.credential_to_string c)) in
  Alcotest.(check bool) "kind survives" true
    (match back.Credential.kind with
    | Credential.Access { action = "read"; item = "db1" } -> true
    | _ -> false);
  Alcotest.(check bool) "signature valid" true (Credential.signature_valid back)

let test_tampering_in_transit_detected () =
  (* Change the subject on the wire: the transported signature no longer
     matches, exactly like forgery at rest. *)
  let c = sample_credential () in
  let wire = Codec.credential_to_string c in
  let tampered = replace wire "\"subject\":\"bob\"" "\"subject\":\"eve\"" in
  let back = ok (Codec.credential_of_string tampered) in
  Alcotest.(check bool) "tampering detected" false (Credential.signature_valid back);
  Alcotest.(check bool) "syntactic check fails" true
    (Credential.syntactically_valid back ~at:10.
    = Error Credential.Bad_signature)

let test_credential_malformed () =
  List.iter
    (fun s ->
      match Codec.credential_of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [
      "";
      "{}";
      {|{"id":"x"}|};
      (* Non-ground fact. *)
      {|{"id":"x","subject":"s","issuer":"i","kind":{"kind":"attribute"},"facts":[{"pred":"p","args":[{"v":"z"}]}],"issued_at":0,"expires_at":1,"signature":"s"}|};
      (* Empty validity interval. *)
      {|{"id":"x","subject":"s","issuer":"i","kind":{"kind":"attribute"},"facts":[],"issued_at":5,"expires_at":5,"signature":"s"}|};
    ]

let prop_rule_roundtrip =
  (* Random well-formed rules survive the wire. *)
  let gen_rule =
    QCheck.Gen.(
      let var = map (fun i -> Rule.v (Printf.sprintf "x%d" i)) (0 -- 3) in
      let const = map (fun i -> Rule.c (Printf.sprintf "k%d" i)) (0 -- 5) in
      let body_atom =
        map2
          (fun p args -> Rule.atom (Printf.sprintf "p%d" p) args)
          (0 -- 3)
          (list_size (1 -- 3) (oneof [ var; const ]))
      in
      let* body = list_size (1 -- 4) body_atom in
      (* Head uses only variables that occur in the body (range
         restriction) plus constants. *)
      let body_vars =
        List.concat_map
          (fun (a : Rule.atom) ->
            List.filter_map
              (function Rule.Var x -> Some (Rule.v x) | Rule.Const _ -> None)
              a.Rule.args)
          body
      in
      let head_term =
        if body_vars = [] then const else oneof [ oneofl body_vars; const ]
      in
      let* head_args = list_size (1 -- 3) head_term in
      return (Rule.rule (Rule.atom "head" head_args) body))
  in
  QCheck.Test.make ~name:"rule wire roundtrip" ~count:200 (QCheck.make gen_rule)
    (fun r ->
      match Codec.rule_of_json (Codec.rule_to_json r) with
      | Ok back -> String.equal (Rule.to_string r) (Rule.to_string back)
      | Error _ -> false)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "codec"
    [
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "whitespace" `Quick test_json_whitespace_tolerated;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
          qc prop_json_string_roundtrip;
        ] );
      ( "rules",
        [
          Alcotest.test_case "roundtrip" `Quick test_rule_roundtrip;
          Alcotest.test_case "range restriction on decode" `Quick
            test_rule_range_restriction_on_decode;
          Alcotest.test_case "negated rule roundtrip" `Quick
            test_negated_rule_roundtrip;
          qc prop_rule_roundtrip;
        ] );
      ( "policies",
        [
          Alcotest.test_case "roundtrip" `Quick test_policy_roundtrip;
          Alcotest.test_case "bad version rejected" `Quick test_policy_bad_version;
        ] );
      ( "credentials",
        [
          Alcotest.test_case "roundtrip" `Quick test_credential_roundtrip;
          Alcotest.test_case "access kind" `Quick
            test_credential_access_kind_roundtrip;
          Alcotest.test_case "tampering detected" `Quick
            test_tampering_in_transit_detected;
          Alcotest.test_case "malformed rejected" `Quick test_credential_malformed;
        ] );
    ]
