(* Integration tests: the full simulated cluster running 2PV/2PVC under
   every scheme and consistency level — clean commits, Table I complexity,
   staleness, credential revocation, integrity violations, contention, and
   the soundness obligation that every committed transaction satisfies its
   scheme's trusted-transaction definition. *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Complexity = Cloudtx_core.Complexity
module Outcome = Cloudtx_core.Outcome
module Message = Cloudtx_core.Message
module Trusted = Cloudtx_core.Trusted
module Master = Cloudtx_core.Master
module Participant = Cloudtx_core.Participant
module Counter = Cloudtx_metrics.Counter
module Transport = Cloudtx_sim.Transport
module Latency = Cloudtx_sim.Latency
module Splitmix = Cloudtx_sim.Splitmix
module Scenario = Cloudtx_workload.Scenario
module Churn = Cloudtx_workload.Churn
module Generator = Cloudtx_workload.Generator
module Experiment = Cloudtx_workload.Experiment
module Server = Cloudtx_store.Server
module Value = Cloudtx_store.Value
module Ca = Cloudtx_policy.Ca

let all_combos =
  List.concat_map
    (fun s -> [ (s, Consistency.View); (s, Consistency.Global) ])
    Scheme.all

let protocol_messages counters =
  List.fold_left
    (fun acc label -> acc + Counter.get counters ("msg:" ^ label))
    0 Message.protocol_labels

let latest_of scenario domain =
  Master.latest (Cluster.master scenario.Scenario.cluster) ~domain

(* ------------------------------------------------------------------ *)
(* Clean runs                                                          *)
(* ------------------------------------------------------------------ *)

let test_all_combos_commit () =
  List.iter
    (fun (scheme, level) ->
      let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
      let txn =
        Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
          ~queries:4 ()
      in
      let outcome =
        Manager.run_one scenario.Scenario.cluster
          (Manager.config scheme level)
          txn
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s commits" (Scheme.name scheme)
           (Consistency.name level))
        true outcome.Outcome.committed;
      (* Soundness: the committed run satisfies its own definition. *)
      match
        Trusted.check scheme ~level ~latest:(latest_of scenario)
          outcome.Outcome.view
      with
      | Ok () -> ()
      | Error why ->
        Alcotest.failf "%s/%s committed but untrusted: %s" (Scheme.name scheme)
          (Consistency.name level) why)
    all_combos

let test_committed_writes_visible () =
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant scenario.Scenario.cluster name) in
      let k2 = List.nth (scenario.Scenario.keys_of name) 1 in
      match Server.get server k2 with
      | Some (Value.Int v) ->
        Alcotest.(check bool) "write applied" true (v < 100)
      | _ -> Alcotest.fail "missing value")
    scenario.Scenario.servers

(* ------------------------------------------------------------------ *)
(* Table I: measured vs analytic                                       *)
(* ------------------------------------------------------------------ *)

type staleness = Fresh | View_worst | Global_worst

let run_complexity_case ?(n_servers = 4) ?(queries = 4) scheme level staleness =
  let scenario = Scenario.retail ~n_servers ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  (match staleness with
  | Fresh -> ()
  | View_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
         (Scenario.clerk_rules_refreshed ()))
  | Global_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun _ -> infinity))
         (Scenario.clerk_rules_refreshed ())));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries ()
  in
  let counters = Transport.counters (Cluster.transport cluster) in
  let before = protocol_messages counters in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  let after = protocol_messages counters in
  (outcome, after - before)

let test_table1_fresh_exact () =
  (* With no churn every cell matches the closed form at r = 1 exactly. *)
  List.iter
    (fun (scheme, level) ->
      let outcome, msgs = run_complexity_case scheme level Fresh in
      Alcotest.(check bool) "committed" true outcome.Outcome.committed;
      let expect_m = Complexity.messages scheme level ~n:4 ~u:4 ~r:1 in
      let expect_p = Complexity.proofs scheme level ~n:4 ~u:4 ~r:1 in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s messages" (Scheme.name scheme) (Consistency.name level))
        expect_m msgs;
      Alcotest.(check int)
        (Printf.sprintf "%s/%s proofs" (Scheme.name scheme) (Consistency.name level))
        expect_p outcome.Outcome.proofs_evaluated)
    all_combos

let test_table1_global_worst_exact () =
  (* Master ahead of every participant: Deferred/Punctual need the extra
     round, and measured counts equal Table I at r = 2 exactly. *)
  List.iter
    (fun scheme ->
      let outcome, msgs = run_complexity_case scheme Consistency.Global Global_worst in
      Alcotest.(check bool) "committed" true outcome.Outcome.committed;
      Alcotest.(check int) "two rounds" 2 outcome.Outcome.commit_rounds;
      Alcotest.(check int)
        (Printf.sprintf "%s messages" (Scheme.name scheme))
        (Complexity.messages scheme Consistency.Global ~n:4 ~u:4 ~r:2)
        msgs;
      Alcotest.(check int)
        (Printf.sprintf "%s proofs" (Scheme.name scheme))
        (Complexity.proofs scheme Consistency.Global ~n:4 ~u:4 ~r:2)
        outcome.Outcome.proofs_evaluated)
    [ Scheme.Deferred; Scheme.Punctual ]

let test_table1_view_worst_bounds () =
  (* Under view consistency the paper's 2n + 4n bound assumes all n are
     re-polled; at least one participant already holds the freshest
     version, so measured = bound - 2 and proofs hit 2u - 1 exactly. *)
  List.iter
    (fun scheme ->
      let outcome, msgs = run_complexity_case scheme Consistency.View View_worst in
      Alcotest.(check bool) "committed" true outcome.Outcome.committed;
      Alcotest.(check int) "two rounds" 2 outcome.Outcome.commit_rounds;
      let bound = Complexity.messages scheme Consistency.View ~n:4 ~u:4 ~r:2 in
      Alcotest.(check int)
        (Printf.sprintf "%s bound - 2" (Scheme.name scheme))
        (bound - 2) msgs;
      Alcotest.(check int)
        (Printf.sprintf "%s proofs exact" (Scheme.name scheme))
        (Complexity.proofs scheme Consistency.View ~n:4 ~u:4 ~r:2)
        outcome.Outcome.proofs_evaluated)
    [ Scheme.Deferred; Scheme.Punctual ]

let test_table1_fresh_exact_across_sizes () =
  (* The r = 1 closed forms hold for every cell across sizes. With
     [n_servers] servers and a [u]-query spread transaction, the
     participant count — Table I's n — is min(n_servers, u): more queries
     than servers wrap around (several queries per participant), and
     fewer leave some servers out of the transaction entirely. *)
  List.iter
    (fun n_servers ->
      List.iter
        (fun u ->
          let n = min n_servers u in
          List.iter
            (fun (scheme, level) ->
              let outcome, msgs =
                run_complexity_case ~n_servers ~queries:u scheme level Fresh
              in
              Alcotest.(check bool) "committed" true outcome.Outcome.committed;
              let expect_m = Complexity.messages scheme level ~n ~u ~r:1 in
              (* Table I prices Continuous's per-query 2PVs at i
                 participants for query i — exact while every query sits
                 on its own server (u <= n), an upper bound once queries
                 revisit servers. *)
              if scheme = Scheme.Continuous && u > n then
                Alcotest.(check bool)
                  (Printf.sprintf "%s/%s servers=%d u=%d messages <= bound"
                     (Scheme.name scheme) (Consistency.name level) n_servers u)
                  true (msgs <= expect_m)
              else
                Alcotest.(check int)
                  (Printf.sprintf "%s/%s servers=%d u=%d messages"
                     (Scheme.name scheme) (Consistency.name level) n_servers u)
                  expect_m msgs;
              Alcotest.(check int)
                (Printf.sprintf "%s/%s servers=%d u=%d proofs"
                   (Scheme.name scheme) (Consistency.name level) n_servers u)
                (Complexity.proofs scheme level ~n ~u ~r:1)
                outcome.Outcome.proofs_evaluated)
            all_combos)
        [ 2; 3; 5; 7 ])
    [ 2; 3; 6 ]

(* ------------------------------------------------------------------ *)
(* Policy staleness and tightening                                     *)
(* ------------------------------------------------------------------ *)

let test_deferred_catches_tightened_policy () =
  (* The policy is tightened (clerks may no longer write) and fully
     propagated before commit: 2PVC's validation evaluates FALSE. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  ignore
    (Cluster.publish scenario.Scenario.cluster ~domain:"retail" ~delay:`Now
       Scenario.senior_write_rules);
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "reason" "proof-failure"
    (Outcome.reason_name outcome.Outcome.reason);
  (* Nothing was applied anywhere. *)
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant scenario.Scenario.cluster name) in
      let k2 = List.nth (scenario.Scenario.keys_of name) 1 in
      Alcotest.(check bool) "unchanged" true (Server.get server k2 = Some (Value.Int 100)))
    scenario.Scenario.servers

let test_punctual_aborts_early () =
  (* Punctual detects the denial at the first query: exactly one proof is
     evaluated, far less work than Deferred's commit-time discovery. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  ignore
    (Cluster.publish scenario.Scenario.cluster ~domain:"retail" ~delay:`Now
       Scenario.senior_write_rules);
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Punctual Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "reason" "proof-failure"
    (Outcome.reason_name outcome.Outcome.reason);
  Alcotest.(check int) "only one proof" 1 outcome.Outcome.proofs_evaluated

let test_incremental_aborts_on_version_skew () =
  (* A version bump lands on server-1 only, mid-deployment: Incremental
     Punctual's per-query check sees v2 then v1 and aborts. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  ignore
    (Cluster.publish scenario.Scenario.cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
       (Scenario.clerk_rules_refreshed ()));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Incremental_punctual Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "reason" "version-inconsistency"
    (Outcome.reason_name outcome.Outcome.reason)

let test_incremental_global_rejects_stale_server () =
  (* Under global consistency the master is ahead of every server, so the
     very first query's version check fails. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  ignore
    (Cluster.publish scenario.Scenario.cluster ~domain:"retail"
       ~delay:(`Fixed (fun _ -> infinity))
       (Scenario.clerk_rules_refreshed ()));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Incremental_punctual Consistency.Global)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "reason" "version-inconsistency"
    (Outcome.reason_name outcome.Outcome.reason)

let test_continuous_repairs_instead_of_aborting () =
  (* Same skew as the Incremental test, but Continuous pushes the fresh
     version to stale servers via 2PV Update messages and commits. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  ignore
    (Cluster.publish scenario.Scenario.cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
       (Scenario.clerk_rules_refreshed ()));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Continuous Consistency.View)
      txn
  in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  (* The repair re-evaluated more proofs than the churn-free u(u+1)/2. *)
  Alcotest.(check bool) "extra proofs from updates" true
    (outcome.Outcome.proofs_evaluated
    > Complexity.proofs Scheme.Continuous Consistency.View ~n:3 ~u:3 ~r:1);
  (* Every server ended on the fresh version. *)
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant scenario.Scenario.cluster name) in
      Alcotest.(check (option int)) "replica updated" (Some 2)
        (Cloudtx_policy.Replica.version (Server.replica server) ~domain:"retail"))
    scenario.Scenario.servers

let test_suspension_caught_under_global () =
  (* A suspension (negation-based policy exception) published only at the
     master: global consistency pulls the new version at commit and the
     suspended clerk's transaction aborts; an unaffected clerk commits
     under the same policy version. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:2 () in
  let cluster = scenario.Scenario.cluster in
  ignore
    (Cluster.publish cluster ~domain:"retail"
       ~delay:(`Fixed (fun _ -> infinity))
       (Scenario.suspend_rules ~subject:"clerk-1"));
  let run subject id =
    Manager.run_one cluster
      (Manager.config Scheme.Deferred Consistency.Global)
      (Scenario.spread_transaction scenario ~id ~subject ~queries:3 ())
  in
  let o1 = run "clerk-1" "t1" in
  Alcotest.(check bool) "suspended clerk aborted" false o1.Outcome.committed;
  Alcotest.(check string) "proof failure" "proof-failure"
    (Outcome.reason_name o1.Outcome.reason);
  let o2 = run "clerk-2" "t2" in
  Alcotest.(check bool) "other clerk commits" true o2.Outcome.committed

(* ------------------------------------------------------------------ *)
(* Credential revocation (the Bob anomaly, Figure 1)                   *)
(* ------------------------------------------------------------------ *)

(* Deterministic timing: Constant 1ms latency means queries complete at
   2, 4, 6ms and commit-time proofs evaluate at 7ms. *)
let revocation_scenario () =
  Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()

let test_deferred_catches_revocation () =
  let scenario = revocation_scenario () in
  Churn.revoke_at scenario ~subject:"clerk-1" ~time:6.5;
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "revocation aborts at commit" false
    outcome.Outcome.committed;
  Alcotest.(check string) "reason" "proof-failure"
    (Outcome.reason_name outcome.Outcome.reason)

let test_incremental_misses_late_revocation () =
  (* Incremental Punctual does not re-validate at commit: a revocation
     after the last query's proof slips through. The transaction is still
     "trusted" per Definition 8 — the paper's point that the schemes give
     different guarantees, and why Continuous exists. *)
  let scenario = revocation_scenario () in
  Churn.revoke_at scenario ~subject:"clerk-1" ~time:6.5;
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Incremental_punctual Consistency.View)
      txn
  in
  Alcotest.(check bool) "commits despite revocation" true outcome.Outcome.committed

let test_continuous_catches_mid_transaction_revocation () =
  (* Revoke between q1 and q2: Continuous re-evaluates q1's proof during
     q2's 2PV and aborts. *)
  let scenario = revocation_scenario () in
  Churn.revoke_at scenario ~subject:"clerk-1" ~time:2.5;
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Continuous Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "reason" "proof-failure"
    (Outcome.reason_name outcome.Outcome.reason)

let test_expiry_mid_transaction () =
  (* A credential that expires between execution and commit: syntactic
     validity fails at commit-time re-validation (Deferred), while
     Incremental Punctual — no commit validation — lets it slip. Constant
     1ms links put execution proofs at 1-5ms and commit proofs at 7ms. *)
  let module Ca = Cloudtx_policy.Ca in
  let module Rule = Cloudtx_policy.Rule in
  let run scheme =
    let scenario =
      Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()
    in
    let short_lived =
      Ca.issue scenario.Scenario.ca ~id:"ephemeral" ~subject:"clerk-1"
        ~facts:[ Rule.fact "role" [ "clerk-1"; "clerk" ] ]
        ~now:0. ~ttl:6.5
    in
    let txn =
      Cloudtx_txn.Transaction.make ~id:"t1" ~subject:"clerk-1"
        ~credentials:[ short_lived ]
        (Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
           ~queries:3 ())
          .Cloudtx_txn.Transaction.queries
    in
    Manager.run_one scenario.Scenario.cluster
      (Manager.config scheme Consistency.View)
      txn
  in
  let deferred = run Scheme.Deferred in
  Alcotest.(check bool) "deferred catches expiry" false deferred.Outcome.committed;
  Alcotest.(check string) "proof failure" "proof-failure"
    (Outcome.reason_name deferred.Outcome.reason);
  let incremental = run Scheme.Incremental_punctual in
  Alcotest.(check bool) "incremental misses late expiry" true
    incremental.Outcome.committed

let test_outcome_invariant_under_timing () =
  (* With no churn, the protocol outcome must not depend on network
     timing: fifty different latency seeds give identical decisions,
     proof counts and rounds. *)
  List.iter
    (fun (scheme, level) ->
      let reference = ref None in
      for seed = 1 to 50 do
        let scenario =
          Scenario.retail ~seed:(Int64.of_int seed) ~n_servers:4 ~n_subjects:1 ()
        in
        let txn =
          Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
            ~queries:4 ()
        in
        let o =
          Manager.run_one scenario.Scenario.cluster
            (Manager.config scheme level) txn
        in
        let fingerprint =
          (o.Outcome.committed, o.Outcome.proofs_evaluated, o.Outcome.commit_rounds)
        in
        match !reference with
        | None -> reference := Some fingerprint
        | Some expected ->
          if fingerprint <> expected then
            Alcotest.failf "%s/%s: outcome varies with timing (seed %d)"
              (Scheme.name scheme) (Consistency.name level) seed
      done)
    all_combos

(* ------------------------------------------------------------------ *)
(* Data integrity and contention                                       *)
(* ------------------------------------------------------------------ *)

let test_integrity_violation_aborts () =
  (* Drive a balance negative: the non-negativity constraint makes the
     participant vote NO, and 2PVC aborts before policy validation. *)
  let scenario = Scenario.retail ~n_servers:2 ~n_subjects:1 () in
  let q =
    Cloudtx_txn.Query.make ~id:"t1-q1" ~server:"server-1"
      ~writes:[ ("s1-k1", Value.Set (Value.Int (-5))) ]
      ()
  in
  let txn =
    Cloudtx_txn.Transaction.make ~id:"t1" ~subject:"clerk-1"
      ~credentials:(scenario.Scenario.credentials_of "clerk-1")
      [ q ]
  in
  let outcome =
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "reason" "integrity-violation"
    (Outcome.reason_name outcome.Outcome.reason);
  let server = Participant.server (Cluster.participant scenario.Scenario.cluster "server-1") in
  Alcotest.(check bool) "value unchanged" true
    (Server.get server "s1-k1" = Some (Value.Int 100))

let test_contention_wait_die_progress () =
  (* Two transactions fighting over the same key, submitted together: at
     least one commits; if both finish, locks guaranteed serial order. *)
  let scenario = Scenario.retail ~n_servers:2 ~n_subjects:2 () in
  let make_txn id subject value =
    let q =
      Cloudtx_txn.Query.make ~id:(id ^ "-q1") ~server:"server-1"
        ~writes:[ ("s1-k1", Value.Set (Value.Int value)) ]
        ()
    in
    Cloudtx_txn.Transaction.make ~id ~subject
      ~credentials:(scenario.Scenario.credentials_of subject)
      [ q ]
  in
  let cluster = scenario.Scenario.cluster in
  let config = Manager.config Scheme.Deferred Consistency.View in
  let results = ref [] in
  Manager.submit cluster config (make_txn "ta" "clerk-1" 11) ~on_done:(fun o ->
      results := o :: !results);
  Manager.submit cluster config (make_txn "tb" "clerk-2" 22) ~on_done:(fun o ->
      results := o :: !results);
  ignore (Cluster.run cluster);
  Alcotest.(check int) "both finished" 2 (List.length !results);
  let committed = List.filter (fun o -> o.Outcome.committed) !results in
  Alcotest.(check bool) "at least one committed" true (List.length committed >= 1);
  (* The key holds the value of some committed transaction. *)
  let server = Participant.server (Cluster.participant cluster "server-1") in
  match Server.get server "s1-k1" with
  | Some (Value.Int v) ->
    Alcotest.(check bool) "final value from a committed txn" true
      (List.exists
         (fun o ->
           o.Outcome.committed
           && ((o.Outcome.txn = "ta" && v = 11) || (o.Outcome.txn = "tb" && v = 22)))
         !results)
  | _ -> Alcotest.fail "missing value"

(* ------------------------------------------------------------------ *)
(* Randomized soundness sweep                                          *)
(* ------------------------------------------------------------------ *)

let test_global_soundness_synchronous_replication () =
  (* Under global consistency with instantaneous propagation (replicas
     never lag the master), every committed transaction must satisfy the
     psi-trusted check against the master's latest versions. *)
  List.iter
    (fun scheme ->
      let scenario = Scenario.retail ~seed:55L ~n_servers:4 ~n_subjects:3 () in
      (* Version churn whose propagation is immediate. *)
      let cluster = scenario.Scenario.cluster in
      List.iter
        (fun delay ->
          Transport.at (Cluster.transport cluster) ~delay (fun () ->
              ignore
                (Cluster.publish cluster ~domain:"retail" ~delay:`Now
                   (Scenario.clerk_rules_refreshed ()))))
        [ 30.; 60.; 90. ];
      let rng = Splitmix.create 321L in
      let params = { Generator.default with queries_per_txn = 3 } in
      let engine = Transport.engine (Cluster.transport cluster) in
      let committed = ref 0 in
      (* Drive transactions one at a time and audit each at its own commit
         instant — the master keeps moving afterwards, so a retrospective
         check would be vacuously wrong. *)
      let audited = ref 0 in
      for i = 0 to 11 do
        let txn = Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i) in
        let before = latest_of scenario "retail" in
        let result = ref None in
        Manager.submit cluster (Manager.config scheme Consistency.Global) txn
          ~on_done:(fun o -> result := Some o);
        while !result = None && Cloudtx_sim.Engine.step engine do
          ()
        done;
        match !result with
        | None -> Alcotest.failf "%s never completed" txn.Cloudtx_txn.Transaction.id
        | Some o ->
          if o.Outcome.committed then begin
            incr committed;
            (* Definition 3's ver(P) is the master's version *at each
               evaluation instant* — a moving target. The audit below uses
               a single snapshot, so it is exact only for transactions
               during which the master did not move; skip the others
               (their instant-indexed consistency is what the protocol
               itself enforced online). *)
            if latest_of scenario "retail" = before then begin
              incr audited;
              match
                Trusted.check scheme ~level:Consistency.Global
                  ~latest:(latest_of scenario) o.Outcome.view
              with
              | Ok () -> ()
              | Error why ->
                Alcotest.failf "%s committed psi-untrusted txn %s: %s"
                  (Scheme.name scheme) o.Outcome.txn why
            end
          end
      done;
      Alcotest.(check bool) "audited several" true (!audited >= 5);
      Alcotest.(check bool) "commits happened" true (!committed > 0))
    Scheme.all

let test_random_workload_soundness () =
  (* Random transactions under churn, every scheme, view consistency:
     whatever commits must pass its trusted-transaction check. *)
  List.iter
    (fun scheme ->
      let scenario =
        Scenario.retail ~seed:99L ~n_servers:4 ~n_subjects:3 ()
      in
      Churn.policy_refresh scenario ~period:20. ~propagation:(0., 15.) ~count:10;
      let rng = Splitmix.create 123L in
      let params = { Generator.default with queries_per_txn = 3 } in
      let stats =
        Experiment.run_sequential scenario
          (Manager.config scheme Consistency.View)
          ~n:15
          (fun ~i ->
            Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
      in
      Alcotest.(check int) "all finished" 15
        (stats.Experiment.committed + stats.Experiment.aborted);
      List.iter
        (fun (o : Outcome.t) ->
          if o.Outcome.committed then
            match
              Trusted.check scheme ~level:Consistency.View
                ~latest:(latest_of scenario) o.Outcome.view
            with
            | Ok () -> ()
            | Error why ->
              Alcotest.failf "%s committed untrusted txn %s: %s"
                (Scheme.name scheme) o.Outcome.txn why)
        stats.Experiment.outcomes)
    Scheme.all

let () =
  Alcotest.run "protocol"
    [
      ( "clean runs",
        [
          Alcotest.test_case "all combos commit + trusted" `Quick
            test_all_combos_commit;
          Alcotest.test_case "writes visible after commit" `Quick
            test_committed_writes_visible;
        ] );
      ( "table1",
        [
          Alcotest.test_case "fresh runs match r=1 exactly" `Quick
            test_table1_fresh_exact;
          Alcotest.test_case "global worst case matches r=2 exactly" `Quick
            test_table1_global_worst_exact;
          Alcotest.test_case "view worst case: bound - 2, proofs exact" `Quick
            test_table1_view_worst_bounds;
          Alcotest.test_case "fresh exactness across sizes" `Slow
            test_table1_fresh_exact_across_sizes;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "deferred catches tightening" `Quick
            test_deferred_catches_tightened_policy;
          Alcotest.test_case "punctual aborts early" `Quick
            test_punctual_aborts_early;
          Alcotest.test_case "incremental aborts on skew" `Quick
            test_incremental_aborts_on_version_skew;
          Alcotest.test_case "incremental global rejects stale" `Quick
            test_incremental_global_rejects_stale_server;
          Alcotest.test_case "continuous repairs and commits" `Quick
            test_continuous_repairs_instead_of_aborting;
          Alcotest.test_case "suspension caught under global" `Quick
            test_suspension_caught_under_global;
        ] );
      ( "revocation",
        [
          Alcotest.test_case "deferred catches at commit" `Quick
            test_deferred_catches_revocation;
          Alcotest.test_case "incremental misses late revocation" `Quick
            test_incremental_misses_late_revocation;
          Alcotest.test_case "continuous catches mid-transaction" `Quick
            test_continuous_catches_mid_transaction_revocation;
          Alcotest.test_case "expiry mid-transaction" `Quick
            test_expiry_mid_transaction;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "outcome invariant under timing" `Slow
            test_outcome_invariant_under_timing;
        ] );
      ( "data",
        [
          Alcotest.test_case "integrity violation aborts" `Quick
            test_integrity_violation_aborts;
          Alcotest.test_case "wait-die progress under contention" `Quick
            test_contention_wait_die_progress;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "random workloads, committed implies trusted"
            `Slow test_random_workload_soundness;
          Alcotest.test_case "global soundness, synchronous replication"
            `Slow test_global_soundness_synchronous_replication;
        ] );
    ]
