(* Exhaustive decode ∘ encode = id over the flight-recorder codec.

   One sample (or several, covering the edge payloads: empty lists, [None]
   options, r > 1 version vectors, no-vote, every failure kind) per
   constructor of every type {!Cloudtx_protocol.Codec} encodes.  Equality
   is the codec's own contract: canonical rendered strings — policies and
   credentials decode through [of_wire], so structural equality would be
   too strong (signatures are carried, closures rebuilt). *)

module Codec = Cloudtx_protocol.Codec
module Message = Cloudtx_protocol.Message
module Tm = Cloudtx_protocol.Tm_machine
module Ps = Cloudtx_protocol.Ps_machine
module Scheme = Cloudtx_protocol.Scheme
module Consistency = Cloudtx_protocol.Consistency
module Outcome = Cloudtx_protocol.Outcome
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Tpc = Cloudtx_txn.Tpc
module Value = Cloudtx_store.Value
module Policy = Cloudtx_policy.Policy
module Credential = Cloudtx_policy.Credential
module Proof = Cloudtx_policy.Proof
module Rule = Cloudtx_policy.Rule

let rt (type a) what (enc : a -> Codec.Json.t)
    (dec : Codec.Json.t -> (a, string) result) (v : a) =
  let rendered = Codec.to_string (enc v) in
  match dec (enc v) with
  | Error e -> Alcotest.failf "%s: decode failed: %s\n  on %s" what e rendered
  | Ok v' ->
      Alcotest.(check string) (what ^ " round-trips") rendered
        (Codec.to_string (enc v'))

(* --- sample data ------------------------------------------------------ *)

let cred_attr =
  Credential.make ~id:"c-role" ~subject:"bob" ~issuer:"ca.example"
    ~kind:Credential.Attribute
    ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
    ~issued_at:0. ~expires_at:500.

let cred_access =
  Credential.make ~id:"c-cap" ~subject:"bob" ~issuer:"server-1"
    ~kind:(Credential.Access { action = "read"; item = "acct:7" })
    ~facts:[] ~issued_at:1.5 ~expires_at:2.5

let q_read = Query.make ~id:"q0" ~server:"server-1" ~reads:[ "a"; "b" ] ()
let q_empty = Query.make ~id:"q-empty" ~server:"server-2" ()

let q_write =
  Query.make ~id:"q1" ~server:"server-2" ~reads:[ "a" ]
    ~writes:
      [
        ("a", Value.Set (Value.Int (-3)));
        ("b", Value.Set (Value.Text "weird \"json\"\n"));
        ("c", Value.Add 42);
      ]
    ~action:"deposit" ()

let queries = [ q_read; q_empty; q_write ]

let txn =
  Transaction.make ~id:"t7" ~subject:"bob"
    ~credentials:[ cred_attr; cred_access ]
    [ q_read; q_write ]

let txn_bare = Transaction.make ~id:"t8" ~subject:"eve" [ q_empty ]

let policy_v1 =
  Policy.create ~domain:"accounts"
    [
      Rule.rule
        (Policy.goal ~subject:"S" ~action:"A" ~item:"I")
        [ Rule.atom "role" [ Rule.v "S"; Rule.c "clerk" ] ];
    ]

(* r > 1: an amended policy carries a bumped version number. *)
let policy_v2 = Policy.amend ~accept_capabilities:true policy_v1 []

let proof_ok =
  {
    Proof.query_id = "q1";
    server = "server-2";
    domain = "accounts";
    policy_version = 2;
    evaluated_at = 12.25;
    credential_ids = [ "c-role"; "c-cap" ];
    request = { Proof.subject = "bob"; action = "deposit"; items = [ "a"; "b"; "c" ] };
    result = true;
    failures = [];
  }

let proof_failed =
  {
    proof_ok with
    Proof.result = false;
    credential_ids = [];
    request = { Proof.subject = "eve"; action = "read"; items = [] };
    failures =
      [
        Proof.Syntactic ("c-role", Credential.Not_yet_valid);
        Proof.Syntactic ("c-role", Credential.Expired);
        Proof.Syntactic ("c-role", Credential.Bad_signature);
        Proof.Revoked "c-cap";
        Proof.Untrusted_issuer "c-cap";
        Proof.Denied "acct:7";
      ];
  }

let proofs = [ proof_ok; proof_failed ]

let messages =
  [
    Message.Execute
      {
        txn = "t7";
        ts = 3.5;
        query = q_write;
        subject = "bob";
        credentials = [ cred_attr; cred_access ];
        evaluate_proof = true;
        snapshot = false;
      };
    Message.Execute
      {
        txn = "t8";
        ts = 0.;
        query = q_empty;
        subject = "eve";
        credentials = [];
        evaluate_proof = false;
        snapshot = true;
      };
    Message.Execute_reply
      {
        txn = "t7";
        query_id = "q1";
        outcome =
          Message.Executed
            {
              reads = [ ("a", Some (Value.Int 1)); ("b", None) ];
              proof = Some proof_ok;
            };
      };
    Message.Execute_reply
      {
        txn = "t8";
        query_id = "q-empty";
        outcome = Message.Executed { reads = []; proof = None };
      };
    Message.Execute_reply { txn = "t7"; query_id = "q1"; outcome = Message.Exec_die };
    Message.Validate_request { txn = "t7"; round = 1 };
    Message.Validate_reply
      { txn = "t7"; round = 2; proofs; policies = [ policy_v1; policy_v2 ] };
    Message.Validate_reply { txn = "t8"; round = 1; proofs = []; policies = [] };
    Message.Commit_request
      { txn = "t7"; round = 3; validate = true; allow_read_only = false; expected = 2 };
    Message.Commit_request
      { txn = "t8"; round = 1; validate = false; allow_read_only = true; expected = 0 };
    Message.Commit_reply
      {
        txn = "t7";
        round = 3;
        integrity = true;
        read_only = false;
        proofs = [ proof_failed ];
        policies = [ policy_v2 ];
      };
    Message.Commit_reply
      {
        txn = "t8";
        round = 1;
        integrity = false;
        read_only = true;
        proofs = [];
        policies = [];
      };
    Message.Policy_update
      { txn = "t7"; round = 2; policies = [ policy_v2 ]; reply_with = `Validate };
    Message.Policy_update
      { txn = "t7"; round = 3; policies = []; reply_with = `Commit };
    Message.Decision { txn = "t7"; commit = true };
    Message.Decision { txn = "t7"; commit = false };
    Message.Decision_ack { txn = "t7" };
    Message.Master_version_request { txn = "t7" };
    Message.Master_version_reply
      { txn = "t7"; policies = [ policy_v1; policy_v2 ] };
    Message.Propagate_policy { policy = policy_v2 };
    Message.Inquiry { txn = "t7" };
  ]

let configs =
  List.concat_map
    (fun scheme ->
      List.map
        (fun level -> Tm.config scheme level)
        [ Consistency.View; Consistency.Global ])
    [
      Scheme.Deferred;
      Scheme.Punctual;
      Scheme.Incremental_punctual;
      Scheme.Continuous;
    ]
  @ [
      Tm.config ~master_mode:`Once ~max_rounds:7 ~vote_timeout:12.5
        ~decision_retry:3.25 ~read_only_optimization:true ~snapshot_reads:true
        Scheme.Deferred Consistency.Global;
    ]

let reasons =
  [
    Outcome.Committed;
    Outcome.Integrity_violation;
    Outcome.Proof_failure;
    Outcome.Version_inconsistency;
    Outcome.Wait_die;
    Outcome.Rounds_exhausted;
    Outcome.Timed_out;
  ]

let obs_samples =
  [
    Tm.Query_open { index = 0; server = "server-1" };
    Tm.Query_close { outcome = "executed" };
    Tm.Round_open
      { parent = `Txn; span_name = "2pv.round"; round = 1; query = Some 2 };
    Tm.Round_open
      { parent = `Phase; span_name = "2pvc.validate"; round = 4; query = None };
    Tm.Round_close { resolution = Some "all-true" };
    Tm.Round_close { resolution = None };
    Tm.Phase_open { span_name = "2pvc.prepare"; reason = None };
    Tm.Phase_open { span_name = "2pvc.abort"; reason = Some "proof-failure" };
    Tm.Phase_close;
    Tm.Txn_close { outcome = "abort"; reason = "wait-die" };
  ]

let tm_inputs =
  List.map (fun msg -> Tm.Deliver { src = "server-1"; msg }) messages
  @ [ Tm.Watchdog_fired { epoch = 3 }; Tm.Retry_fired ]

let tm_actions =
  List.map (fun msg -> Tm.Send { dst = "master"; msg }) messages
  @ List.map (fun o -> Tm.Obs o) obs_samples
  @ List.map
      (fun reason -> Tm.Finish { committed = reason = Outcome.Committed; reason; commit_rounds = 2 })
      reasons
  @ [
      Tm.Arm_watchdog { epoch = 1; delay = 40. };
      Tm.Arm_retry { delay = 0.5 };
      Tm.Force_log;
      Tm.Mark "decision_logged";
    ]

let conts =
  [
    Ps.To_execute_reply
      {
        reply_to = "tm-t7";
        query_id = "q1";
        reads = [ ("a", Some (Value.Text "")); ("b", None) ];
      };
    Ps.To_execute_reply { reply_to = "tm-t8"; query_id = "q-empty"; reads = [] };
    Ps.To_validate_reply { reply_to = "tm-t7"; round = 2 };
    Ps.To_commit_reply { reply_to = "tm-t7"; round = 1 };
    Ps.To_update_reply { reply_to = "tm-t7"; round = 3; reply_with = `Validate };
    Ps.To_update_reply { reply_to = "tm-t7"; round = 3; reply_with = `Commit };
    Ps.To_read_only_reply { reply_to = "tm-t8"; round = 1; vote = false };
  ]

let ps_inputs =
  List.map (fun msg -> Ps.Deliver { src = "tm-t7"; msg }) messages
  @ List.map
      (fun result ->
        Ps.Exec_result
          { txn = "t7"; query = q_write; evaluate = true; reply_to = "tm-t7"; result })
      [ Ps.Executed [ ("a", Some (Value.Int 0)) ]; Ps.Executed []; Ps.Blocked; Ps.Die ]
  @ List.map
      (fun cont ->
        Ps.Evaluated { txn = "t7"; proofs; policies = [ policy_v1 ]; cont })
      conts
  @ [
      Ps.Evaluated { txn = "t8"; proofs = []; policies = []; cont = List.hd conts };
      Ps.Recovered { decided = []; in_doubt = [] };
      Ps.Recovered
        {
          decided = [ "t5"; "t6" ];
          in_doubt = [ ("t7", true, [ "a"; "b" ]); ("t8", false, []) ];
        };
      Ps.Prepared { txn = "t7"; vote = true };
      Ps.Prepared { txn = "t7"; vote = false };
      Ps.Read_only_result
        { txn = "t8"; reply_to = "tm-t8"; round = 1; read_only = true; integrity_ok = false };
      Ps.Release
        {
          by = Some "t7";
          release =
            {
              Cloudtx_store.Lock_manager.granted =
                [
                  ("t8", "a", Cloudtx_store.Lock_manager.Shared);
                  ("t9", "b", Cloudtx_store.Lock_manager.Exclusive);
                ];
              killed = [ ("t10", "a") ];
            };
        };
      Ps.Release
        { by = None; release = { Cloudtx_store.Lock_manager.granted = []; killed = [] } };
    ]

let ps_actions =
  List.map
    (fun msg ->
      Ps.Send { dst = "tm-t7"; msg; after_proofs = 2; credentials = [ cred_attr ] })
    messages
  @ List.map
      (fun cont ->
        Ps.Eval
          {
            txn = "t7";
            subject = "bob";
            credentials = [ cred_attr; cred_access ];
            queries;
            with_proofs = true;
            with_policies = false;
            cont;
          })
      conts
  @ [
      Ps.Send
        { dst = "tm-t8"; msg = List.hd messages; after_proofs = 0; credentials = [] };
      Ps.Begin_work { txn = "t7"; ts = 1.25 };
      Ps.Exec
        {
          txn = "t7";
          ts = 1.25;
          query = q_read;
          evaluate = false;
          reply_to = "tm-t7";
          snapshot = true;
        };
      Ps.Eval
        {
          txn = "t8";
          subject = "eve";
          credentials = [];
          queries = [];
          with_proofs = false;
          with_policies = true;
          cont = List.hd conts;
        };
      Ps.Check_read_only { txn = "t8"; reply_to = "tm-t8"; round = 1 };
      (* r > 1 version vector: several domains at different versions. *)
      Ps.Prepare
        {
          txn = "t7";
          proof_truth = true;
          policy_versions = [ ("accounts", 2); ("inventory", 7); ("hr", 1) ];
        };
      Ps.Prepare { txn = "t8"; proof_truth = false; policy_versions = [] };
      Ps.Apply
        {
          txn = "t7";
          commit = true;
          forced = true;
          writes = [ ("a", 1); ("b", 3) ];
        };
      Ps.Apply { txn = "t7"; commit = true; forced = false; writes = [] };
      Ps.Apply { txn = "t7"; commit = false; forced = false; writes = [] };
      Ps.Forget { txn = "t8" };
      Ps.Install { policies = [ policy_v1; policy_v2 ]; announce = true };
      Ps.Install { policies = []; announce = false };
      Ps.Wait_open { txn = "t7"; query_id = "q1" };
      Ps.Wait_close { txn = "t7"; outcome = "granted"; killed_by = None };
      Ps.Wait_close { txn = "t7"; outcome = "die"; killed_by = Some "t3" };
      Ps.Mark "policy_installed";
    ]

(* --- tests ------------------------------------------------------------ *)

let iter what enc dec vs =
  List.iteri (fun i v -> rt (Printf.sprintf "%s[%d]" what i) enc dec v) vs

let test_carried_data () =
  iter "value" Codec.value_to_json Codec.value_of_json
    [ Value.Int 0; Value.Int (-3); Value.Text ""; Value.Text "a\"b\\c\n" ];
  iter "query" Codec.query_to_json Codec.query_of_json queries;
  iter "transaction" Codec.transaction_to_json Codec.transaction_of_json
    [ txn; txn_bare ];
  iter "proof" Codec.proof_to_json Codec.proof_of_json proofs

let test_messages () =
  iter "message" Codec.message_to_json Codec.message_of_json messages

let test_config_variant () =
  iter "config" Codec.config_to_json Codec.config_of_json configs;
  iter "variant" Codec.variant_to_json Codec.variant_of_json
    [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]

let test_tm () =
  iter "tm_input" Codec.tm_input_to_json Codec.tm_input_of_json tm_inputs;
  iter "tm_action" Codec.tm_action_to_json Codec.tm_action_of_json tm_actions

let test_ps () =
  iter "ps_input" Codec.ps_input_to_json Codec.ps_input_of_json ps_inputs;
  iter "ps_action" Codec.ps_action_to_json Codec.ps_action_of_json ps_actions

let test_rejects_malformed () =
  let bad = Codec.Json.String "nope" in
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: decoded a bare string" what
  in
  expect_error "message" (Codec.message_of_json bad);
  expect_error "tm_input" (Codec.tm_input_of_json bad);
  expect_error "tm_action" (Codec.tm_action_of_json bad);
  expect_error "ps_input" (Codec.ps_input_of_json bad);
  expect_error "ps_action" (Codec.ps_action_of_json bad);
  expect_error "config" (Codec.config_of_json bad);
  (* Unknown tag names must be rejected, not mapped to a default. *)
  expect_error "unknown tag"
    (Codec.message_of_json
       (Codec.Json.Obj [ ("t", Codec.Json.String "warp-core-breach") ]))

let () =
  Alcotest.run "protocol codec"
    [
      ( "round-trip",
        [
          Alcotest.test_case "carried data" `Quick test_carried_data;
          Alcotest.test_case "messages" `Quick test_messages;
          Alcotest.test_case "config and variant" `Quick test_config_variant;
          Alcotest.test_case "tm inputs and actions" `Quick test_tm;
          Alcotest.test_case "ps inputs and actions" `Quick test_ps;
        ] );
      ( "robustness",
        [ Alcotest.test_case "malformed rejected" `Quick test_rejects_malformed ] );
    ]
