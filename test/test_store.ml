(* Unit and property tests for the store: values, locks (wait-die),
   integrity constraints, WAL and the data server. *)

module Value = Cloudtx_store.Value
module Lock_manager = Cloudtx_store.Lock_manager
module Integrity = Cloudtx_store.Integrity
module Wal = Cloudtx_store.Wal
module Server = Cloudtx_store.Server

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value () =
  Alcotest.(check bool) "int equal" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "kind differs" false
    (Value.equal (Value.Int 3) (Value.Text "3"));
  Alcotest.(check (option int)) "as_int" (Some 3) (Value.as_int (Value.Int 3));
  Alcotest.(check (option int)) "text as_int" None (Value.as_int (Value.Text "x"));
  Alcotest.(check string) "to_string" "3" (Value.to_string (Value.Int 3))

(* ------------------------------------------------------------------ *)
(* Lock manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_shared_compatible () =
  let lm = Lock_manager.create () in
  Alcotest.(check bool) "t1 S" true
    (Lock_manager.acquire lm ~txn:"t1" ~ts:1. ~key:"k" Lock_manager.Shared
    = Lock_manager.Granted);
  Alcotest.(check bool) "t2 S" true
    (Lock_manager.acquire lm ~txn:"t2" ~ts:2. ~key:"k" Lock_manager.Shared
    = Lock_manager.Granted);
  Alcotest.(check int) "two holders" 2 (List.length (Lock_manager.holders lm ~key:"k"))

let test_wait_die () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:"holder" ~ts:5. ~key:"k" Lock_manager.Exclusive);
  (* Older requester (smaller ts) waits. *)
  Alcotest.(check bool) "older waits" true
    (Lock_manager.acquire lm ~txn:"old" ~ts:1. ~key:"k" Lock_manager.Shared
    = Lock_manager.Queued);
  (* Younger requester dies. *)
  Alcotest.(check bool) "younger dies" true
    (Lock_manager.acquire lm ~txn:"young" ~ts:9. ~key:"k" Lock_manager.Shared
    = Lock_manager.Die);
  Alcotest.(check (list string)) "queue" [ "old" ] (Lock_manager.waiters lm ~key:"k")

let test_release_promotes () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:"holder" ~ts:5. ~key:"k" Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~txn:"old" ~ts:1. ~key:"k" Lock_manager.Exclusive);
  let release = Lock_manager.release_all lm ~txn:"holder" in
  Alcotest.(check int) "one promotion" 1 (List.length release.Lock_manager.granted);
  Alcotest.(check int) "no kills" 0 (List.length release.Lock_manager.killed);
  (match release.Lock_manager.granted with
  | [ (txn, key, mode) ] ->
    Alcotest.(check string) "who" "old" txn;
    Alcotest.(check string) "key" "k" key;
    Alcotest.(check bool) "mode" true (mode = Lock_manager.Exclusive)
  | _ -> Alcotest.fail "expected one promotion");
  Alcotest.(check (list (pair string Alcotest.reject))) "holder gone" []
    (List.map (fun (t, _) -> (t, ())) (Lock_manager.holders lm ~key:"k") |> List.filter (fun (t, _) -> t = "holder"))

let test_reacquire_idempotent () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:"t" ~ts:1. ~key:"k" Lock_manager.Shared);
  Alcotest.(check bool) "re-acquire S" true
    (Lock_manager.acquire lm ~txn:"t" ~ts:1. ~key:"k" Lock_manager.Shared
    = Lock_manager.Granted);
  Alcotest.(check int) "still one holder" 1
    (List.length (Lock_manager.holders lm ~key:"k"))

let test_upgrade () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:"t" ~ts:1. ~key:"k" Lock_manager.Shared);
  Alcotest.(check bool) "sole holder upgrades" true
    (Lock_manager.acquire lm ~txn:"t" ~ts:1. ~key:"k" Lock_manager.Exclusive
    = Lock_manager.Granted);
  (* With another Shared holder, an older upgrader queues. *)
  let lm2 = Lock_manager.create () in
  ignore (Lock_manager.acquire lm2 ~txn:"a" ~ts:1. ~key:"k" Lock_manager.Shared);
  ignore (Lock_manager.acquire lm2 ~txn:"b" ~ts:2. ~key:"k" Lock_manager.Shared);
  Alcotest.(check bool) "upgrade blocked" true
    (Lock_manager.acquire lm2 ~txn:"a" ~ts:1. ~key:"k" Lock_manager.Exclusive
    = Lock_manager.Queued);
  (* Releasing b grants a's queued upgrade. *)
  let release = Lock_manager.release_all lm2 ~txn:"b" in
  Alcotest.(check bool) "upgrade granted on release" true
    (List.exists
       (fun (t, _, m) -> t = "a" && m = Lock_manager.Exclusive)
       release.Lock_manager.granted)

let test_promotion_reapplies_wait_die () =
  (* holder young(10) on k; old(1) and mid(5) queue (both older than 10).
     When young releases, old becomes the holder; mid is now YOUNGER than
     the holder — keeping it queued would be a young-waits-for-old edge
     (the distributed-deadlock hole), so it must die at promotion. *)
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:"young" ~ts:10. ~key:"k" Lock_manager.Exclusive);
  Alcotest.(check bool) "old queues" true
    (Lock_manager.acquire lm ~txn:"old" ~ts:1. ~key:"k" Lock_manager.Exclusive
    = Lock_manager.Queued);
  Alcotest.(check bool) "mid queues" true
    (Lock_manager.acquire lm ~txn:"mid" ~ts:5. ~key:"k" Lock_manager.Exclusive
    = Lock_manager.Queued);
  let release = Lock_manager.release_all lm ~txn:"young" in
  Alcotest.(check bool) "old granted" true
    (List.exists (fun (t, _, _) -> t = "old") release.Lock_manager.granted);
  Alcotest.(check bool) "mid killed" true
    (List.exists (fun (t, _) -> t = "mid") release.Lock_manager.killed);
  Alcotest.(check (list string)) "queue empty" [] (Lock_manager.waiters lm ~key:"k")

let test_held_by_and_clear () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~txn:"t" ~ts:1. ~key:"a" Lock_manager.Shared);
  ignore (Lock_manager.acquire lm ~txn:"t" ~ts:1. ~key:"b" Lock_manager.Exclusive);
  Alcotest.(check (list string)) "held" [ "a"; "b" ] (Lock_manager.held_by lm ~txn:"t");
  Lock_manager.clear lm;
  Alcotest.(check (list string)) "cleared" [] (Lock_manager.held_by lm ~txn:"t")

let prop_wait_die_no_deadlock =
  (* Random lock workloads: every request resolves to Granted/Queued/Die,
     and a queued transaction is always strictly older than some holder,
     so the waits-for relation only points old->young: no cycles. *)
  QCheck.Test.make ~name:"wait-die admits no old->young waits" ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 40)
        (triple (int_range 0 5) (int_range 0 4) bool))
    (fun ops ->
      let lm = Lock_manager.create () in
      List.for_all
        (fun (txn_i, key_i, exclusive) ->
          let txn = Printf.sprintf "t%d" txn_i in
          let ts = float_of_int txn_i in
          let key = Printf.sprintf "k%d" key_i in
          let mode =
            if exclusive then Lock_manager.Exclusive else Lock_manager.Shared
          in
          match Lock_manager.acquire lm ~txn ~ts ~key mode with
          | Lock_manager.Granted | Lock_manager.Die -> true
          | Lock_manager.Queued ->
            (* Queued implies strictly older than every conflicting holder. *)
            List.for_all
              (fun (holder, _) ->
                String.equal holder txn
                || ts < float_of_string (String.sub holder 1 (String.length holder - 1)))
              (Lock_manager.holders lm ~key))
        ops)

(* ------------------------------------------------------------------ *)
(* Integrity                                                           *)
(* ------------------------------------------------------------------ *)

let lookup_of assoc key = List.assoc_opt key assoc

let test_integrity_combinators () =
  let state = [ ("a", Value.Int 5); ("b", Value.Int (-1)); ("t", Value.Text "x") ] in
  let lookup = lookup_of state in
  Alcotest.(check (list string)) "non_negative ok" []
    (Integrity.check_all [ Integrity.non_negative "a" ] lookup);
  Alcotest.(check int) "non_negative violated" 1
    (List.length (Integrity.check_all [ Integrity.non_negative "b" ] lookup));
  Alcotest.(check int) "missing key violates" 1
    (List.length (Integrity.check_all [ Integrity.non_negative "zz" ] lookup));
  Alcotest.(check int) "text violates numeric" 1
    (List.length (Integrity.check_all [ Integrity.non_negative "t" ] lookup));
  Alcotest.(check (list string)) "range ok" []
    (Integrity.check_all [ Integrity.range "a" ~lo:0 ~hi:10 ] lookup);
  Alcotest.(check int) "range violated" 1
    (List.length (Integrity.check_all [ Integrity.range "a" ~lo:6 ~hi:10 ] lookup))

let test_integrity_sums () =
  let state = [ ("a", Value.Int 30); ("b", Value.Int 70) ] in
  let lookup = lookup_of state in
  Alcotest.(check (list string)) "sum_at_most ok" []
    (Integrity.check_all [ Integrity.sum_at_most [ "a"; "b" ] ~bound:100 ] lookup);
  Alcotest.(check int) "sum_at_most violated" 1
    (List.length
       (Integrity.check_all [ Integrity.sum_at_most [ "a"; "b" ] ~bound:99 ] lookup));
  Alcotest.(check (list string)) "sum_preserved ok" []
    (Integrity.check_all [ Integrity.sum_preserved [ "a"; "b" ] ~total:100 ] lookup);
  Alcotest.(check int) "sum_preserved violated" 1
    (List.length
       (Integrity.check_all
          [ Integrity.sum_preserved [ "a"; "b" ] ~total:10 ]
          lookup))

(* ------------------------------------------------------------------ *)
(* WAL                                                                 *)
(* ------------------------------------------------------------------ *)

let test_wal_basics () =
  let wal = Wal.create () in
  let l0 = Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "t" }) in
  let l1 =
    Wal.append wal ~time:1. ~forced:true
      (Wal.Prepared
         {
           txn = "t";
           writes = [ ("k", Value.Int 1) ];
           integrity_vote = true;
           proof_truth = true;
           policy_versions = [ ("retail", 3) ];
         })
  in
  Alcotest.(check int) "lsns" 1 (l1 - l0);
  Alcotest.(check int) "forced count" 1 (Wal.force_count wal);
  Alcotest.(check int) "length" 2 (Wal.length wal)

let test_wal_recover_states () =
  let wal = Wal.create () in
  let prepared txn =
    Wal.Prepared
      {
        txn;
        writes = [ (txn ^ "-k", Value.Int 7) ];
        integrity_vote = true;
        proof_truth = true;
        policy_versions = [];
      }
  in
  ignore (Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "active" }));
  ignore (Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "doubt" }));
  ignore (Wal.append wal ~time:1. ~forced:true (prepared "doubt"));
  ignore (Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "done" }));
  ignore (Wal.append wal ~time:1. ~forced:true (prepared "done"));
  ignore (Wal.append wal ~time:2. ~forced:true (Wal.Decision { txn = "done"; commit = true }));
  ignore (Wal.append wal ~time:3. ~forced:false (Wal.End_txn { txn = "done" }));
  Alcotest.(check bool) "no trace" true (Wal.recover_txn wal ~txn:"ghost" = `No_trace);
  Alcotest.(check bool) "active" true (Wal.recover_txn wal ~txn:"active" = `Active);
  (match Wal.recover_txn wal ~txn:"doubt" with
  | `Prepared (writes, _) ->
    Alcotest.(check int) "in-doubt writes" 1 (List.length writes)
  | _ -> Alcotest.fail "expected Prepared");
  Alcotest.(check bool) "finished" true (Wal.recover_txn wal ~txn:"done" = `Finished)

let test_wal_serialize_round_trip () =
  let wal = Wal.create () in
  ignore (Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "t" }));
  ignore
    (Wal.append wal ~time:1. ~forced:true
       (Wal.Prepared
          {
            txn = "t";
            writes = [ ("k", Value.Int 1); ("s", Value.Text "v") ];
            integrity_vote = true;
            proof_truth = false;
            policy_versions = [ ("retail", 3) ];
          }));
  ignore
    (Wal.append wal ~time:2. ~forced:true (Wal.Decision { txn = "t"; commit = true }));
  ignore (Wal.append wal ~time:3. ~forced:false (Wal.End_txn { txn = "t" }));
  let loaded, dropped = Wal.load (Wal.serialize wal) in
  Alcotest.(check int) "nothing dropped" 0 dropped;
  Alcotest.(check int) "length preserved" (Wal.length wal) (Wal.length loaded);
  Alcotest.(check int) "forces preserved" (Wal.force_count wal)
    (Wal.force_count loaded);
  Alcotest.(check bool) "same analysis" true
    (Wal.recover_txn wal ~txn:"t" = Wal.recover_txn loaded ~txn:"t");
  Alcotest.(check string) "stable rendering" (Wal.serialize wal)
    (Wal.serialize loaded)

let test_wal_torn_tail () =
  let wal = Wal.create () in
  ignore (Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "t" }));
  ignore
    (Wal.append wal ~time:1. ~forced:true
       (Wal.Prepared
          {
            txn = "t";
            writes = [ ("k", Value.Int 1) ];
            integrity_vote = true;
            proof_truth = true;
            policy_versions = [];
          }));
  ignore
    (Wal.append wal ~time:2. ~forced:true (Wal.Decision { txn = "t"; commit = true }));
  let data = Wal.serialize wal in
  (* Tear the final record mid-line, as a crash during the write would. *)
  let cut = String.length data - (String.length data / 4) in
  let torn = String.sub data 0 cut in
  let loaded, dropped = Wal.load torn in
  Alcotest.(check int) "torn line dropped" 1 dropped;
  Alcotest.(check int) "valid prefix kept" 2 (Wal.length loaded);
  Alcotest.(check bool) "analysis falls back to in-doubt" true
    (match Wal.recover_txn loaded ~txn:"t" with `Prepared _ -> true | _ -> false);
  (* A corrupted byte inside the tail line is also caught by the checksum. *)
  let flipped = Bytes.of_string data in
  Bytes.set flipped (String.length data - 10) '#';
  let loaded, dropped = Wal.load (Bytes.to_string flipped) in
  Alcotest.(check int) "corrupt line dropped" 1 dropped;
  Alcotest.(check int) "prefix before corruption kept" 2 (Wal.length loaded)

let test_wal_truncate () =
  let wal = Wal.create () in
  ignore (Wal.append wal ~time:0. ~forced:true (Wal.Begin_txn { txn = "a" }));
  let keep = Wal.append wal ~time:1. ~forced:true (Wal.Decision { txn = "a"; commit = true }) in
  ignore (Wal.append wal ~time:2. ~forced:false (Wal.End_txn { txn = "a" }));
  Wal.truncate_after wal keep;
  Alcotest.(check int) "tail dropped" 2 (Wal.length wal);
  Alcotest.(check bool) "state now committed" true
    (match Wal.recover_txn wal ~txn:"a" with `Committed _ -> true | _ -> false)

let test_wal_checkpoint_truncation () =
  let wal = Wal.create () in
  let prepared txn =
    Wal.Prepared
      {
        txn;
        writes = [ (txn ^ "-k", Value.Int 1) ];
        integrity_vote = true;
        proof_truth = true;
        policy_versions = [];
      }
  in
  (* A finished transaction and an in-doubt one, then a checkpoint. *)
  ignore (Wal.append wal ~time:0. ~forced:false (Wal.Begin_txn { txn = "done" }));
  ignore (Wal.append wal ~time:1. ~forced:true (prepared "done"));
  ignore (Wal.append wal ~time:2. ~forced:true (Wal.Decision { txn = "done"; commit = true }));
  ignore (Wal.append wal ~time:3. ~forced:false (Wal.End_txn { txn = "done" }));
  ignore (Wal.append wal ~time:4. ~forced:false (Wal.Begin_txn { txn = "doubt" }));
  ignore (Wal.append wal ~time:5. ~forced:true (prepared "doubt"));
  ignore (Wal.checkpoint wal ~time:6. ~active:[ "doubt" ]);
  let reclaimed = Wal.truncate_to_checkpoint wal in
  (* The four "done" records go; "doubt"'s two stay. *)
  Alcotest.(check int) "reclaimed" 4 reclaimed;
  Alcotest.(check bool) "done presumed" true (Wal.recover_txn wal ~txn:"done" = `No_trace);
  Alcotest.(check bool) "doubt still recoverable" true
    (match Wal.recover_txn wal ~txn:"doubt" with `Prepared _ -> true | _ -> false);
  (* No checkpoint: no-op. *)
  Alcotest.(check int) "no checkpoint" 0 (Wal.truncate_to_checkpoint (Wal.create ()))

let test_server_checkpoint () =
  let s =
    Server.create ~name:"s" ~items:[ ("x", Value.Int 1); ("y", Value.Int 2) ] ()
  in
  (* Finish one transaction, leave another open, checkpoint. *)
  Server.begin_work s ~txn:"t1" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"t1" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 9)) ]);
  ignore (Server.prepare s ~txn:"t1" ~time:1. ~proof_truth:true ~policy_versions:[]);
  ignore (Server.commit s ~txn:"t1" ~time:2.);
  Server.finish s ~txn:"t1" ~time:3.;
  Server.begin_work s ~txn:"t2" ~ts:2. ~time:4.;
  ignore (Server.execute s ~txn:"t2" ~reads:[] ~writes:[ ("y", Value.Set (Value.Int 8)) ]);
  ignore (Server.prepare s ~txn:"t2" ~time:5. ~proof_truth:true ~policy_versions:[]);
  let reclaimed = Server.checkpoint s ~time:6. in
  Alcotest.(check bool) "reclaimed t1's records" true (reclaimed >= 4);
  (* Crash + recover: the open transaction is still in doubt, data
     survives. *)
  Server.crash s;
  let in_doubt = Server.recover s ~time:7. in
  Alcotest.(check (list string)) "t2 in doubt" [ "t2" ] in_doubt;
  Alcotest.(check bool) "committed data intact" true
    (Server.get s "x" = Some (Value.Int 9));
  ignore (Server.commit s ~txn:"t2" ~time:8.);
  Alcotest.(check bool) "t2 applied after recovery" true
    (Server.get s "y" = Some (Value.Int 8))

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

let make_server ?(constraints = []) () =
  Server.create ~name:"s1" ~constraints
    ~items:[ ("x", Value.Int 100); ("y", Value.Int 50) ]
    ()

let test_server_execute_and_overlay () =
  let s = make_server () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  (match
     Server.execute s ~txn:"t" ~reads:[ "x" ] ~writes:[ ("y", Value.Set (Value.Int 7)) ]
   with
  | Server.Executed reads ->
    Alcotest.(check bool) "read committed x" true
      (List.assoc "x" reads = Some (Value.Int 100))
  | _ -> Alcotest.fail "expected Executed");
  (* Overlay sees the buffered write; committed state does not. *)
  Alcotest.(check bool) "overlay y" true
    (Server.overlay s ~txn:"t" "y" = Some (Value.Int 7));
  Alcotest.(check bool) "committed y unchanged" true
    (Server.get s "y" = Some (Value.Int 50))

let test_server_unhosted_key () =
  let s = make_server () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  Alcotest.check_raises "unhosted"
    (Invalid_argument "Server s1 does not host data item zz") (fun () ->
      ignore (Server.execute s ~txn:"t" ~reads:[ "zz" ] ~writes:[]))

let test_server_integrity_vote () =
  let s = make_server ~constraints:[ Integrity.non_negative "x" ] () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"t" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int (-5))) ]);
  Alcotest.(check int) "violation detected" 1
    (List.length (Server.integrity_violations s ~txn:"t"));
  let vote = Server.prepare s ~txn:"t" ~time:1. ~proof_truth:true ~policy_versions:[] in
  Alcotest.(check bool) "votes NO" false vote;
  Alcotest.(check int) "prepare forced" 1 (Wal.force_count (Server.wal s))

let test_server_commit_applies () =
  let s = make_server () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"t" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 1)) ]);
  ignore (Server.prepare s ~txn:"t" ~time:1. ~proof_truth:true ~policy_versions:[]);
  ignore (Server.commit s ~txn:"t" ~time:2.);
  Server.finish s ~txn:"t" ~time:3.;
  Alcotest.(check bool) "applied" true (Server.get s "x" = Some (Value.Int 1));
  (* prepared + decision forced = 2. *)
  Alcotest.(check int) "forced writes" 2 (Wal.force_count (Server.wal s));
  Alcotest.(check (list string)) "locks released" []
    (Lock_manager.held_by (Server.locks s) ~txn:"t")

let test_server_abort_drops () =
  let s = make_server () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"t" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 1)) ]);
  ignore (Server.abort s ~txn:"t" ~time:1.);
  Alcotest.(check bool) "unchanged" true (Server.get s "x" = Some (Value.Int 100))

let test_server_lock_conflict_and_promotion () =
  let s = make_server () in
  Server.begin_work s ~txn:"young" ~ts:10. ~time:0.;
  Server.begin_work s ~txn:"old" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"young" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 1)) ]);
  (* Older conflicting writer queues. *)
  (match Server.execute s ~txn:"old" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 2)) ] with
  | Server.Blocked -> ()
  | _ -> Alcotest.fail "expected Blocked");
  (* Younger third transaction dies. *)
  Server.begin_work s ~txn:"younger" ~ts:20. ~time:0.;
  (match Server.execute s ~txn:"younger" ~reads:[ "x" ] ~writes:[] with
  | Server.Die -> ()
  | _ -> Alcotest.fail "expected Die");
  (* Committing the young holder promotes the old waiter. *)
  let release = Server.commit s ~txn:"young" ~time:1. in
  Alcotest.(check bool) "old promoted" true
    (List.exists
       (fun (t, k, _) -> t = "old" && k = "x")
       release.Lock_manager.granted);
  (match Server.execute s ~txn:"old" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 2)) ] with
  | Server.Executed _ -> ()
  | _ -> Alcotest.fail "expected Executed after promotion")

let test_snapshot_reads_time_travel () =
  let s = make_server () in
  let commit_value txn time v =
    Server.begin_work s ~txn ~ts:time ~time;
    ignore (Server.execute s ~txn ~reads:[] ~writes:[ ("x", Value.Set (Value.Int v)) ]);
    ignore (Server.prepare s ~txn ~time ~proof_truth:true ~policy_versions:[]);
    ignore (Server.commit s ~txn ~time)
  in
  commit_value "t1" 10. 111;
  commit_value "t2" 20. 222;
  Alcotest.(check (option (of_pp Value.pp))) "opening value" (Some (Value.Int 100))
    (Server.read_asof s "x" ~ts:5.);
  Alcotest.(check (option (of_pp Value.pp))) "after t1" (Some (Value.Int 111))
    (Server.read_asof s "x" ~ts:15.);
  Alcotest.(check (option (of_pp Value.pp))) "after t2" (Some (Value.Int 222))
    (Server.read_asof s "x" ~ts:25.);
  Alcotest.(check (option (of_pp Value.pp))) "current agrees" (Some (Value.Int 222))
    (Server.get s "x")

let test_snapshot_reads_take_no_locks () =
  let s = make_server () in
  (* A writer holds X on x. *)
  Server.begin_work s ~txn:"w" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"w" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 7)) ]);
  (* A snapshot read of x neither blocks nor registers in the lock table,
     and sees the pre-write committed value. *)
  let reads = Server.execute_snapshot s ~reads:[ "x" ] ~ts:0.5 in
  Alcotest.(check bool) "sees committed value" true
    (List.assoc "x" reads = Some (Value.Int 100));
  Alcotest.(check int) "only the writer holds locks" 1
    (List.length (Lock_manager.holders (Server.locks s) ~key:"x"));
  Alcotest.check_raises "unhosted"
    (Invalid_argument "Server s1 does not host data item zz") (fun () ->
      ignore (Server.execute_snapshot s ~reads:[ "zz" ] ~ts:1.))

let test_vacuum_prunes_history () =
  let s = make_server () in
  let commit_value txn time v =
    Server.begin_work s ~txn ~ts:time ~time;
    ignore (Server.execute s ~txn ~reads:[] ~writes:[ ("x", Value.Set (Value.Int v)) ]);
    ignore (Server.prepare s ~txn ~time ~proof_truth:true ~policy_versions:[]);
    ignore (Server.commit s ~txn ~time)
  in
  commit_value "t1" 10. 1;
  commit_value "t2" 20. 2;
  commit_value "t3" 30. 3;
  (* Horizon 25: the opening version and t1's are reclaimable; t2's must
     survive because it serves reads exactly at the horizon. *)
  let reclaimed = Server.vacuum s ~before:25. in
  Alcotest.(check int) "two versions reclaimed" 2 reclaimed;
  Alcotest.(check (option (of_pp Value.pp))) "horizon read survives"
    (Some (Value.Int 2))
    (Server.read_asof s "x" ~ts:25.);
  Alcotest.(check (option (of_pp Value.pp))) "newest intact" (Some (Value.Int 3))
    (Server.read_asof s "x" ~ts:40.);
  Alcotest.(check int) "idempotent" 0 (Server.vacuum s ~before:25.)

let test_server_crash_recovery_in_doubt () =
  let s = make_server () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"t" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 42)) ]);
  ignore (Server.prepare s ~txn:"t" ~time:1. ~proof_truth:true ~policy_versions:[ ("d", 2) ]);
  Server.crash s;
  let in_doubt = Server.recover s ~time:2. in
  Alcotest.(check (list string)) "in doubt" [ "t" ] in_doubt;
  (* The in-doubt transaction holds its write locks again. *)
  Alcotest.(check bool) "x locked" true
    (List.exists (fun (t, _) -> t = "t") (Lock_manager.holders (Server.locks s) ~key:"x"));
  (* Deciding commit after recovery applies the workspace. *)
  ignore (Server.commit s ~txn:"t" ~time:3.);
  Alcotest.(check bool) "recovered commit applied" true
    (Server.get s "x" = Some (Value.Int 42))

let test_server_crash_loses_unforced_tail () =
  let s = make_server () in
  Server.begin_work s ~txn:"t" ~ts:1. ~time:0.;
  ignore (Server.execute s ~txn:"t" ~reads:[] ~writes:[ ("x", Value.Set (Value.Int 1)) ]);
  ignore (Server.prepare s ~txn:"t" ~time:1. ~proof_truth:true ~policy_versions:[]);
  (* Unforced end record after the forced prepare is lost by the crash. *)
  Server.finish s ~txn:"t" ~time:2.;
  Server.crash s;
  Alcotest.(check bool) "tail lost: txn back in doubt" true
    (match Wal.recover_txn (Server.wal s) ~txn:"t" with
    | `Prepared _ -> true
    | _ -> false)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "store"
    [
      ("value", [ Alcotest.test_case "basics" `Quick test_value ]);
      ( "locks",
        [
          Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
          Alcotest.test_case "wait-die" `Quick test_wait_die;
          Alcotest.test_case "release promotes" `Quick test_release_promotes;
          Alcotest.test_case "re-acquire idempotent" `Quick
            test_reacquire_idempotent;
          Alcotest.test_case "upgrade" `Quick test_upgrade;
          Alcotest.test_case "promotion re-applies wait-die" `Quick
            test_promotion_reapplies_wait_die;
          Alcotest.test_case "held_by and clear" `Quick test_held_by_and_clear;
          qc prop_wait_die_no_deadlock;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "combinators" `Quick test_integrity_combinators;
          Alcotest.test_case "sums" `Quick test_integrity_sums;
        ] );
      ( "wal",
        [
          Alcotest.test_case "basics" `Quick test_wal_basics;
          Alcotest.test_case "recover states" `Quick test_wal_recover_states;
          Alcotest.test_case "serialize round trip" `Quick
            test_wal_serialize_round_trip;
          Alcotest.test_case "torn tail recovery" `Quick test_wal_torn_tail;
          Alcotest.test_case "truncate" `Quick test_wal_truncate;
          Alcotest.test_case "checkpoint truncation" `Quick
            test_wal_checkpoint_truncation;
          Alcotest.test_case "server checkpoint" `Quick test_server_checkpoint;
        ] );
      ( "server",
        [
          Alcotest.test_case "execute and overlay" `Quick
            test_server_execute_and_overlay;
          Alcotest.test_case "unhosted key" `Quick test_server_unhosted_key;
          Alcotest.test_case "integrity vote" `Quick test_server_integrity_vote;
          Alcotest.test_case "commit applies" `Quick test_server_commit_applies;
          Alcotest.test_case "abort drops" `Quick test_server_abort_drops;
          Alcotest.test_case "conflict and promotion" `Quick
            test_server_lock_conflict_and_promotion;
          Alcotest.test_case "snapshot time travel" `Quick
            test_snapshot_reads_time_travel;
          Alcotest.test_case "snapshot reads take no locks" `Quick
            test_snapshot_reads_take_no_locks;
          Alcotest.test_case "vacuum prunes history" `Quick
            test_vacuum_prunes_history;
          Alcotest.test_case "crash recovery in doubt" `Quick
            test_server_crash_recovery_in_doubt;
          Alcotest.test_case "crash loses unforced tail" `Quick
            test_server_crash_loses_unforced_tail;
        ] );
    ]
