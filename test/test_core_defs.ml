(* Unit and property tests for the core definitional modules:
   consistency predicates, views, schemes, Table I formulas, the shared
   validation-round logic, and the trusted-transaction checks. *)

module Consistency = Cloudtx_core.Consistency
module View = Cloudtx_core.View
module Scheme = Cloudtx_core.Scheme
module Complexity = Cloudtx_core.Complexity
module Validation = Cloudtx_core.Validation
module Trusted = Cloudtx_core.Trusted
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Rule = Cloudtx_policy.Rule

(* Hand-built proof records. *)
let proof ?(result = true) ?(domain = "d") ~query ~server ~version ~at () =
  {
    Proof.query_id = query;
    server;
    domain;
    policy_version = version;
    evaluated_at = at;
    credential_ids = [];
    request = { Proof.subject = "bob"; action = "read"; items = [ "x" ] };
    result;
    failures = (if result then [] else [ Proof.Denied "x" ]);
  }

(* ------------------------------------------------------------------ *)
(* Consistency                                                         *)
(* ------------------------------------------------------------------ *)

let test_phi () =
  let p1 = proof ~query:"q1" ~server:"s1" ~version:3 ~at:1. () in
  let p2 = proof ~query:"q2" ~server:"s2" ~version:3 ~at:2. () in
  let p3 = proof ~query:"q3" ~server:"s3" ~version:4 ~at:3. () in
  Alcotest.(check bool) "same versions" true (Consistency.phi_consistent [ p1; p2 ]);
  Alcotest.(check bool) "mixed versions" false
    (Consistency.phi_consistent [ p1; p2; p3 ]);
  Alcotest.(check bool) "empty is consistent" true (Consistency.phi_consistent [])

let test_phi_multi_domain () =
  (* Versions are compared per administrative domain. *)
  let p1 = proof ~domain:"d1" ~query:"q1" ~server:"s1" ~version:1 ~at:1. () in
  let p2 = proof ~domain:"d2" ~query:"q2" ~server:"s2" ~version:9 ~at:2. () in
  Alcotest.(check bool) "independent domains" true
    (Consistency.phi_consistent [ p1; p2 ])

let test_psi () =
  let latest = function "d" -> Some 5 | _ -> None in
  let fresh = proof ~query:"q1" ~server:"s1" ~version:5 ~at:1. () in
  let stale = proof ~query:"q2" ~server:"s2" ~version:4 ~at:2. () in
  Alcotest.(check bool) "matches master" true (Consistency.psi_consistent ~latest [ fresh ]);
  Alcotest.(check bool) "stale rejected" false
    (Consistency.psi_consistent ~latest [ fresh; stale ]);
  let unknown = proof ~domain:"other" ~query:"q3" ~server:"s3" ~version:1 ~at:3. () in
  Alcotest.(check bool) "unknown domain rejected" false
    (Consistency.psi_consistent ~latest [ unknown ])

let test_psi_stronger_than_phi () =
  (* phi holds on agreement even when everyone is stale; psi does not. *)
  let latest = function _ -> Some 9 in
  let p1 = proof ~query:"q1" ~server:"s1" ~version:2 ~at:1. () in
  let p2 = proof ~query:"q2" ~server:"s2" ~version:2 ~at:2. () in
  Alcotest.(check bool) "phi ok" true (Consistency.phi_consistent [ p1; p2 ]);
  Alcotest.(check bool) "psi fails" false
    (Consistency.psi_consistent ~latest [ p1; p2 ])

(* ------------------------------------------------------------------ *)
(* View                                                                *)
(* ------------------------------------------------------------------ *)

let test_view_instance_and_current () =
  let v = View.create ~txn:"t" in
  let e1 = proof ~query:"q1" ~server:"s1" ~version:1 ~at:1. () in
  let e2 = proof ~query:"q2" ~server:"s2" ~version:1 ~at:2. () in
  let e1' = proof ~query:"q1" ~server:"s1" ~version:2 ~at:3. () in
  View.add v ~instant:1 e1;
  View.add v ~instant:2 e2;
  View.add v ~instant:3 e1';
  Alcotest.(check int) "all evaluations" 3 (View.evaluations v);
  Alcotest.(check int) "instance at t=2" 2 (List.length (View.instance v ~at:2.));
  (* current: latest per query, q1 at version 2. *)
  let current = View.current v in
  Alcotest.(check int) "current size" 2 (List.length current);
  Alcotest.(check bool) "q1 superseded" true
    (List.exists
       (fun (p : Proof.t) -> p.Proof.query_id = "q1" && p.Proof.policy_version = 2)
       current);
  Alcotest.(check bool) "all true" true (View.all_true v)

let test_view_all_true_respects_current () =
  (* A query whose failed first evaluation is superseded by a passing
     re-evaluation counts as true. *)
  let v = View.create ~txn:"t" in
  View.add v ~instant:1 (proof ~result:false ~query:"q1" ~server:"s1" ~version:1 ~at:1. ());
  View.add v ~instant:2 (proof ~result:true ~query:"q1" ~server:"s1" ~version:2 ~at:2. ());
  Alcotest.(check bool) "latest wins" true (View.all_true v)

(* ------------------------------------------------------------------ *)
(* Scheme metadata                                                     *)
(* ------------------------------------------------------------------ *)

let test_scheme_metadata () =
  Alcotest.(check int) "four schemes" 4 (List.length Scheme.all);
  Alcotest.(check bool) "roundtrip names" true
    (List.for_all
       (fun s -> Scheme.of_string (Scheme.name s) = Some s)
       Scheme.all);
  Alcotest.(check bool) "punctual executes proofs" true
    (Scheme.proofs_during_execution Scheme.Punctual);
  Alcotest.(check bool) "continuous defers to 2PV" false
    (Scheme.proofs_during_execution Scheme.Continuous);
  Alcotest.(check bool) "incremental checks versions" true
    (Scheme.per_query_version_check Scheme.Incremental_punctual);
  Alcotest.(check bool) "continuous validates per query" true
    (Scheme.per_query_validation Scheme.Continuous);
  Alcotest.(check bool) "deferred validates at commit" true
    (Scheme.validates_at_commit Scheme.Deferred Consistency.View);
  Alcotest.(check bool) "incremental skips commit validation" false
    (Scheme.validates_at_commit Scheme.Incremental_punctual Consistency.Global);
  Alcotest.(check bool) "continuous view skips" false
    (Scheme.validates_at_commit Scheme.Continuous Consistency.View);
  Alcotest.(check bool) "continuous global validates" true
    (Scheme.validates_at_commit Scheme.Continuous Consistency.Global)

(* ------------------------------------------------------------------ *)
(* Table I formulas                                                    *)
(* ------------------------------------------------------------------ *)

let test_table1_values () =
  (* Spot-check every cell at n=4, u=4, r=2 against hand-computed
     values from the paper's Table I. *)
  let n = 4 and u = 4 and r = 2 in
  let m s l = Complexity.messages s l ~n ~u ~r in
  let p s l = Complexity.proofs s l ~n ~u ~r in
  Alcotest.(check int) "deferred view msgs (2n+4n)" 24 (m Scheme.Deferred Consistency.View);
  Alcotest.(check int) "deferred global msgs" 26 (m Scheme.Deferred Consistency.Global);
  Alcotest.(check int) "incremental view msgs (4n)" 16
    (m Scheme.Incremental_punctual Consistency.View);
  Alcotest.(check int) "incremental global msgs (4n+u)" 20
    (m Scheme.Incremental_punctual Consistency.Global);
  Alcotest.(check int) "continuous view msgs (u(u+1)+4n)" 36
    (m Scheme.Continuous Consistency.View);
  (* u(u+1) + u + 2n + 2nr + r = 20 + 4 + 8 + 16 + 2. *)
  Alcotest.(check int) "continuous global msgs" 50
    (m Scheme.Continuous Consistency.Global);
  Alcotest.(check int) "deferred view proofs (2u-1)" 7 (p Scheme.Deferred Consistency.View);
  Alcotest.(check int) "deferred global proofs (ur)" 8
    (p Scheme.Deferred Consistency.Global);
  Alcotest.(check int) "punctual view proofs (3u-1)" 11
    (p Scheme.Punctual Consistency.View);
  Alcotest.(check int) "punctual global proofs (u+ur)" 12
    (p Scheme.Punctual Consistency.Global);
  Alcotest.(check int) "incremental proofs (u)" 4
    (p Scheme.Incremental_punctual Consistency.View);
  Alcotest.(check int) "continuous view proofs (u(u+1)/2)" 10
    (p Scheme.Continuous Consistency.View);
  Alcotest.(check int) "continuous global proofs" 18
    (p Scheme.Continuous Consistency.Global)

let test_table1_guards () =
  Alcotest.check_raises "view r bound"
    (Invalid_argument "Complexity: r=3 exceeds the view-consistency bound 2")
    (fun () ->
      ignore (Complexity.messages Scheme.Deferred Consistency.View ~n:1 ~u:1 ~r:3));
  Alcotest.check_raises "bad n" (Invalid_argument "Complexity: n must be positive")
    (fun () ->
      ignore (Complexity.messages Scheme.Deferred Consistency.View ~n:0 ~u:1 ~r:1));
  Alcotest.(check bool) "rounds bound" true
    (Complexity.rounds_bound Consistency.View = Some 2
    && Complexity.rounds_bound Consistency.Global = None)

let prop_global_messages_monotone_in_r =
  QCheck.Test.make ~name:"global message cost grows with rounds" ~count:100
    QCheck.(triple (int_range 1 20) (int_range 1 20) (int_range 1 10))
    (fun (n, u, r) ->
      List.for_all
        (fun scheme ->
          Complexity.messages scheme Consistency.Global ~n ~u ~r
          <= Complexity.messages scheme Consistency.Global ~n ~u ~r:(r + 1))
        Scheme.all)

let prop_proof_ordering_view =
  (* At r=2, the permissiveness ordering of proof costs from the paper:
     incremental <= deferred <= punctual, and continuous dominates all
     for u >= 5 (its quadratic term takes over). *)
  QCheck.Test.make ~name:"proof cost ordering (view)" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 5 30))
    (fun (n, u) ->
      let p s = Complexity.proofs s Consistency.View ~n ~u ~r:2 in
      p Scheme.Incremental_punctual <= p Scheme.Deferred
      && p Scheme.Deferred <= p Scheme.Punctual
      && p Scheme.Punctual <= p Scheme.Continuous)

(* ------------------------------------------------------------------ *)
(* Validation round logic                                              *)
(* ------------------------------------------------------------------ *)

let policy ~domain ~version =
  (* Build a policy at an arbitrary version through repeated amendment. *)
  let rec bump p = if p.Policy.version >= version then p else bump (Policy.amend p []) in
  bump (Policy.create ~domain [])

let test_validation_single_round_commit () =
  let v = Validation.create ~participants:[ "a"; "b" ] ~with_integrity:true () in
  Alcotest.(check (list string)) "awaiting all" [ "a"; "b" ] (Validation.awaiting v);
  let d3 = policy ~domain:"d" ~version:3 in
  Alcotest.(check bool) "wait" true
    (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[] ~policies:[ d3 ]
    = `Wait);
  Alcotest.(check bool) "complete" true
    (Validation.add_reply v ~from:"b" ~integrity:true ~proofs:[] ~policies:[ d3 ]
    = `Round_complete);
  Alcotest.(check bool) "all consistent true" true
    (Validation.resolve v = Validation.All_consistent_true)

let test_validation_integrity_abort () =
  let v = Validation.create ~participants:[ "a"; "b" ] ~with_integrity:true () in
  let d1 = policy ~domain:"d" ~version:1 in
  ignore (Validation.add_reply v ~from:"a" ~integrity:false ~proofs:[] ~policies:[ d1 ]);
  ignore (Validation.add_reply v ~from:"b" ~integrity:true ~proofs:[] ~policies:[ d1 ]);
  Alcotest.(check bool) "abort integrity" true
    (Validation.resolve v = Validation.Abort_integrity)

let test_validation_proof_abort () =
  let v = Validation.create ~participants:[ "a" ] ~with_integrity:true () in
  let d1 = policy ~domain:"d" ~version:1 in
  let bad = proof ~result:false ~query:"q" ~server:"a" ~version:1 ~at:1. () in
  ignore (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[ bad ] ~policies:[ d1 ]);
  Alcotest.(check bool) "abort proof" true
    (Validation.resolve v = Validation.Abort_proof)

let test_validation_update_round () =
  let v = Validation.create ~participants:[ "a"; "b"; "c" ] ~with_integrity:false () in
  let d2 = policy ~domain:"d" ~version:2 in
  let d1 = policy ~domain:"d" ~version:1 in
  ignore (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[] ~policies:[ d2 ]);
  ignore (Validation.add_reply v ~from:"b" ~integrity:true ~proofs:[] ~policies:[ d1 ]);
  ignore (Validation.add_reply v ~from:"c" ~integrity:true ~proofs:[] ~policies:[ d1 ]);
  (match Validation.resolve v with
  | Validation.Need_update updates ->
    Alcotest.(check (list string)) "stale participants" [ "b"; "c" ]
      (List.map fst updates |> List.sort String.compare);
    List.iter
      (fun (_, fresh) ->
        Alcotest.(check int) "fresh version shipped" 2
          (List.hd fresh).Policy.version)
      updates
  | _ -> Alcotest.fail "expected Need_update");
  Alcotest.(check int) "round advanced" 2 (Validation.round v);
  Alcotest.(check (list string)) "awaiting only stale" [ "b"; "c" ]
    (Validation.awaiting v);
  (* Updated participants reply with the fresh version; converge. *)
  ignore (Validation.add_reply v ~from:"b" ~integrity:true ~proofs:[] ~policies:[ d2 ]);
  ignore (Validation.add_reply v ~from:"c" ~integrity:true ~proofs:[] ~policies:[ d2 ]);
  Alcotest.(check bool) "converged" true
    (Validation.resolve v = Validation.All_consistent_true)

let test_validation_master_target () =
  (* Global consistency: the master's version forces updates even when
     participants agree among themselves. *)
  let v = Validation.create ~participants:[ "a" ] ~with_integrity:false () in
  Validation.add_master v [ policy ~domain:"d" ~version:5 ];
  ignore
    (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[]
       ~policies:[ policy ~domain:"d" ~version:3 ]);
  match Validation.resolve v with
  | Validation.Need_update [ ("a", [ fresh ]) ] ->
    Alcotest.(check int) "master version" 5 fresh.Policy.version
  | _ -> Alcotest.fail "expected update to master version"

let test_validation_guards () =
  let v = Validation.create ~participants:[ "a" ] ~with_integrity:false () in
  Alcotest.check_raises "unexpected sender"
    (Invalid_argument "Validation.add_reply: unexpected reply from z") (fun () ->
      ignore (Validation.add_reply v ~from:"z" ~integrity:true ~proofs:[] ~policies:[]));
  Alcotest.check_raises "premature resolve"
    (Invalid_argument "Validation.resolve: still awaiting a") (fun () ->
      ignore (Validation.resolve v));
  ignore (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[] ~policies:[]);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Validation.add_reply: duplicate reply from a") (fun () ->
      ignore (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[] ~policies:[]))

let test_validation_sticky_integrity () =
  (* A NO vote in round 1 keeps aborting even after an update round. *)
  let v = Validation.create ~participants:[ "a"; "b" ] ~with_integrity:true () in
  let d2 = policy ~domain:"d" ~version:2 in
  let d1 = policy ~domain:"d" ~version:1 in
  ignore (Validation.add_reply v ~from:"a" ~integrity:true ~proofs:[] ~policies:[ d2 ]);
  ignore (Validation.add_reply v ~from:"b" ~integrity:false ~proofs:[] ~policies:[ d1 ]);
  Alcotest.(check bool) "abort immediately" true
    (Validation.resolve v = Validation.Abort_integrity)

(* ------------------------------------------------------------------ *)
(* Trusted-transaction checks                                          *)
(* ------------------------------------------------------------------ *)

let latest_none _ = None
let latest v _ = Some v

let test_trusted_basic () =
  let view = View.create ~txn:"t" in
  View.add view ~instant:1 (proof ~query:"q1" ~server:"s1" ~version:2 ~at:1. ());
  View.add view ~instant:2 (proof ~query:"q2" ~server:"s2" ~version:2 ~at:2. ());
  Alcotest.(check bool) "trusted under view" true
    (Trusted.trusted ~level:Consistency.View ~latest:latest_none view);
  Alcotest.(check bool) "trusted under global v2" true
    (Trusted.trusted ~level:Consistency.Global ~latest:(latest 2) view);
  Alcotest.(check bool) "untrusted under global v3" false
    (Trusted.trusted ~level:Consistency.Global ~latest:(latest 3) view);
  Alcotest.(check bool) "empty view untrusted" false
    (Trusted.trusted ~level:Consistency.View ~latest:latest_none
       (View.create ~txn:"e"))

let test_check_deferred () =
  let view = View.create ~txn:"t" in
  View.add view ~instant:1 (proof ~query:"q1" ~server:"s1" ~version:1 ~at:1. ());
  View.add view ~instant:2 (proof ~query:"q2" ~server:"s2" ~version:1 ~at:2. ());
  Alcotest.(check bool) "ok" true
    (Trusted.check Scheme.Deferred ~level:Consistency.View ~latest:latest_none view
    = Ok ());
  View.add view ~instant:3 (proof ~query:"q3" ~server:"s3" ~version:2 ~at:3. ());
  Alcotest.(check bool) "version mix rejected" true
    (Result.is_error
       (Trusted.check Scheme.Deferred ~level:Consistency.View ~latest:latest_none view))

let test_check_punctual_first_eval () =
  let view = View.create ~txn:"t" in
  (* First evaluation of q1 FALSE, later re-evaluation TRUE: Def 6 requires
     eval at the query's own time, so punctual must reject. *)
  View.add view ~instant:1 (proof ~result:false ~query:"q1" ~server:"s1" ~version:1 ~at:1. ());
  View.add view ~instant:2 (proof ~result:true ~query:"q1" ~server:"s1" ~version:1 ~at:5. ());
  Alcotest.(check bool) "deferred accepts (final proof true)" true
    (Trusted.check Scheme.Deferred ~level:Consistency.View ~latest:latest_none view
    = Ok ());
  Alcotest.(check bool) "punctual rejects" true
    (Result.is_error
       (Trusted.check Scheme.Punctual ~level:Consistency.View ~latest:latest_none view))

let test_check_incremental_instances () =
  let view = View.create ~txn:"t" in
  View.add view ~instant:1 (proof ~query:"q1" ~server:"s1" ~version:1 ~at:1. ());
  (* Version changes mid-execution without re-evaluating q1: instance at
     t=2 is phi-inconsistent. *)
  View.add view ~instant:2 (proof ~query:"q2" ~server:"s2" ~version:2 ~at:2. ());
  Alcotest.(check bool) "incremental rejects" true
    (Result.is_error
       (Trusted.check Scheme.Incremental_punctual ~level:Consistency.View
          ~latest:latest_none view));
  (* Continuous repairs by re-evaluating q1 at version 2: every instance
     after the repair is consistent... but the instant t=2 itself was
     inconsistent, so Continuous requires the repair to be recorded at the
     same instant. *)
  let repaired = View.create ~txn:"t2" in
  View.add repaired ~instant:1 (proof ~query:"q1" ~server:"s1" ~version:1 ~at:1. ());
  View.add repaired ~instant:2 (proof ~query:"q1" ~server:"s1" ~version:2 ~at:2. ());
  View.add repaired ~instant:2 (proof ~query:"q2" ~server:"s2" ~version:2 ~at:2. ());
  Alcotest.(check bool) "continuous accepts repaired" true
    (Trusted.check Scheme.Continuous ~level:Consistency.View ~latest:latest_none
       repaired
    = Ok ())

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "core_defs"
    [
      ( "consistency",
        [
          Alcotest.test_case "phi" `Quick test_phi;
          Alcotest.test_case "phi multi-domain" `Quick test_phi_multi_domain;
          Alcotest.test_case "psi" `Quick test_psi;
          Alcotest.test_case "psi stronger than phi" `Quick
            test_psi_stronger_than_phi;
        ] );
      ( "view",
        [
          Alcotest.test_case "instance and current" `Quick
            test_view_instance_and_current;
          Alcotest.test_case "all_true uses latest" `Quick
            test_view_all_true_respects_current;
        ] );
      ("scheme", [ Alcotest.test_case "metadata" `Quick test_scheme_metadata ]);
      ( "complexity",
        [
          Alcotest.test_case "Table I values" `Quick test_table1_values;
          Alcotest.test_case "guards" `Quick test_table1_guards;
          qc prop_global_messages_monotone_in_r;
          qc prop_proof_ordering_view;
        ] );
      ( "validation",
        [
          Alcotest.test_case "single round commit" `Quick
            test_validation_single_round_commit;
          Alcotest.test_case "integrity abort" `Quick test_validation_integrity_abort;
          Alcotest.test_case "proof abort" `Quick test_validation_proof_abort;
          Alcotest.test_case "update round" `Quick test_validation_update_round;
          Alcotest.test_case "master target" `Quick test_validation_master_target;
          Alcotest.test_case "guards" `Quick test_validation_guards;
          Alcotest.test_case "sticky integrity" `Quick
            test_validation_sticky_integrity;
        ] );
      ( "trusted",
        [
          Alcotest.test_case "definition 4" `Quick test_trusted_basic;
          Alcotest.test_case "deferred check" `Quick test_check_deferred;
          Alcotest.test_case "punctual first-eval" `Quick
            test_check_punctual_first_eval;
          Alcotest.test_case "instance checks" `Quick
            test_check_incremental_instances;
        ] );
    ]
