(* Watchtower: the streaming health engine (lib/obs/monitor + slo) and
   its journal bridge (lib/core/health).

   Three angles:
   - unit rule checks: each injected unhealthy scenario (stuck
     transaction, staleness breach, abort storm, livelock, vote anomaly)
     fires exactly the expected alert, with evidence, and resolves when
     health returns;
   - a clean run of every scheme x consistency-level cell fires nothing,
     live and replayed, and the live [--monitor] path sees exactly what
     an offline [watch] replay of the same journal sees;
   - tampered and stalled journals replayed offline fire the matching
     alert naming the transaction and the journal evidence range. *)

module Monitor = Cloudtx_obs.Monitor
module Slo = Cloudtx_obs.Slo
module Journal = Cloudtx_obs.Journal
module Registry = Cloudtx_obs.Registry
module Health = Cloudtx_core.Health
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Scenario = Cloudtx_workload.Scenario
module Transport = Cloudtx_sim.Transport

(* Every rule off except what the test under hand switches on. *)
let quiet =
  {
    Slo.stuck_ms = infinity;
    staleness_versions = max_int;
    staleness_ms = infinity;
    abort_window = 0;
    abort_rate = 1.1;
    livelock_kills = max_int;
    flap_window = infinity;
    flap_transitions = max_int;
    reject_window = infinity;
    reject_count = max_int;
  }

let alert_shape what ?(open_ = false) ~rule ~severity ~subject m =
  match Monitor.alerts m with
  | [ a ] ->
    Alcotest.(check string) (what ^ ": rule") rule a.Slo.rule;
    Alcotest.(check string)
      (what ^ ": severity") (Slo.severity_name severity)
      (Slo.severity_name a.Slo.severity);
    Alcotest.(check string) (what ^ ": subject") subject a.Slo.subject;
    Alcotest.(check bool) (what ^ ": open") open_ (Slo.is_open a);
    Alcotest.(check bool)
      (what ^ ": evidence range ordered") true
      (a.Slo.first_seq <= a.Slo.last_seq && a.Slo.first_seq > 0);
    a
  | alerts ->
    Alcotest.failf "%s: expected exactly one alert, got %d" what
      (List.length alerts)

(* --- unit rule checks ------------------------------------------------- *)

let test_stuck_txn () =
  let m = Monitor.create ~rules:{ quiet with Slo.stuck_ms = 100. } () in
  Monitor.observe m ~seq:1 ~time_ms:0.
    (Monitor.Txn_begin
       { txn = "t1"; node = "tm-t1"; scheme = "deferred"; level = "view" });
  Monitor.observe m ~seq:2 ~time_ms:50. (Monitor.Txn_step { txn = "t1" });
  Monitor.observe m ~seq:3 ~time_ms:120. (Monitor.Activity { node = "other" });
  Alcotest.(check int) "within deadline: nothing fires" 0 (Monitor.fired_total m);
  Monitor.observe m ~seq:4 ~time_ms:200. (Monitor.Activity { node = "other" });
  let a =
    alert_shape "stuck" ~open_:true ~rule:"stuck_txn" ~severity:Slo.Critical
      ~subject:"t1" m
  in
  Alcotest.(check string) "stuck: node" "tm-t1" a.Slo.node;
  Alcotest.(check int) "stuck: unresolved critical" 1
    (Monitor.unresolved_critical m);
  (* The machine stepping again is the recovery. *)
  Monitor.observe m ~seq:5 ~time_ms:210. (Monitor.Txn_step { txn = "t1" });
  ignore
    (alert_shape "stuck resolved" ~rule:"stuck_txn" ~severity:Slo.Critical
       ~subject:"t1" m);
  Alcotest.(check int) "stuck: no more critical" 0 (Monitor.unresolved_critical m)

let test_stuck_resolves_on_finish () =
  let m = Monitor.create ~rules:{ quiet with Slo.stuck_ms = 100. } () in
  Monitor.observe m ~seq:1 ~time_ms:0.
    (Monitor.Txn_begin
       { txn = "t1"; node = "tm-t1"; scheme = "deferred"; level = "view" });
  Monitor.observe m ~seq:2 ~time_ms:500. (Monitor.Activity { node = "other" });
  Monitor.observe m ~seq:3 ~time_ms:510.
    (Monitor.Txn_end
       { txn = "t1"; committed = true; reason = "committed"; killed = false });
  ignore
    (alert_shape "stuck-finish" ~rule:"stuck_txn" ~severity:Slo.Critical
       ~subject:"t1" m);
  Alcotest.(check (list string)) "no open transactions" [] (Monitor.open_txns m)

let test_staleness_versions () =
  let m = Monitor.create ~rules:{ quiet with Slo.staleness_versions = 2 } () in
  Monitor.observe m ~seq:1 ~time_ms:0.
    (Monitor.Replica_version { node = "server-1"; domain = "retail"; version = 1 });
  Monitor.observe m ~seq:2 ~time_ms:1.
    (Monitor.Master_version { domain = "retail"; version = 3 });
  Alcotest.(check int) "lag 2 is within bound" 0 (Monitor.fired_total m);
  Monitor.observe m ~seq:3 ~time_ms:2.
    (Monitor.Master_version { domain = "retail"; version = 4 });
  ignore
    (alert_shape "staleness" ~open_:true ~rule:"policy_staleness"
       ~severity:Slo.Warning ~subject:"server-1/retail" m);
  Alcotest.(check (list (pair string (pair int string))))
    "peak lag tracks the worst skew"
    [ ("server-1", (3, "retail")) ]
    (Monitor.staleness_peak m);
  (* Catching up resolves. *)
  Monitor.observe m ~seq:4 ~time_ms:3.
    (Monitor.Replica_version { node = "server-1"; domain = "retail"; version = 4 });
  ignore
    (alert_shape "staleness resolved" ~rule:"policy_staleness"
       ~severity:Slo.Warning ~subject:"server-1/retail" m);
  Alcotest.(check int) "still only one alert ever" 1 (Monitor.fired_total m)

let test_staleness_timed () =
  let m = Monitor.create ~rules:{ quiet with Slo.staleness_ms = 100. } () in
  Monitor.observe m ~seq:1 ~time_ms:0.
    (Monitor.Replica_version { node = "server-2"; domain = "retail"; version = 1 });
  Monitor.observe m ~seq:2 ~time_ms:0.
    (Monitor.Master_version { domain = "retail"; version = 2 });
  Monitor.observe m ~seq:3 ~time_ms:90. (Monitor.Activity { node = "other" });
  Alcotest.(check int) "lag younger than bound" 0 (Monitor.fired_total m);
  Monitor.observe m ~seq:4 ~time_ms:200. (Monitor.Activity { node = "other" });
  ignore
    (alert_shape "timed staleness" ~open_:true ~rule:"policy_staleness"
       ~severity:Slo.Warning ~subject:"server-2/retail" m)

let finish m seq ~txn ~committed ~killed =
  Monitor.observe m ~seq ~time_ms:(float_of_int seq)
    (Monitor.Txn_end
       {
         txn;
         committed;
         reason = (if killed then "wait_die" else "policy");
         killed;
       })

let test_abort_storm () =
  let m =
    Monitor.create
      ~rules:{ quiet with Slo.abort_window = 4; abort_rate = 0.5 }
      ()
  in
  finish m 1 ~txn:"t1" ~committed:false ~killed:false;
  finish m 2 ~txn:"t2" ~committed:false ~killed:false;
  finish m 3 ~txn:"t3" ~committed:false ~killed:false;
  Alcotest.(check int) "window not yet full" 0 (Monitor.fired_total m);
  finish m 4 ~txn:"t4" ~committed:false ~killed:false;
  ignore
    (alert_shape "abort storm" ~open_:true ~rule:"abort_storm"
       ~severity:Slo.Critical ~subject:"cluster" m);
  (* Commits wash the aborts out of the window. *)
  finish m 5 ~txn:"t5" ~committed:true ~killed:false;
  finish m 6 ~txn:"t6" ~committed:true ~killed:false;
  finish m 7 ~txn:"t7" ~committed:true ~killed:false;
  ignore
    (alert_shape "abort storm resolved" ~rule:"abort_storm"
       ~severity:Slo.Critical ~subject:"cluster" m)

let test_livelock () =
  let m = Monitor.create ~rules:{ quiet with Slo.livelock_kills = 3 } () in
  finish m 1 ~txn:"t7" ~committed:false ~killed:true;
  finish m 2 ~txn:"t7-r1" ~committed:false ~killed:true;
  Alcotest.(check int) "two kills is not livelock" 0 (Monitor.fired_total m);
  finish m 3 ~txn:"t7-r2" ~committed:false ~killed:true;
  (* Subject is the logical transaction, restart suffix stripped. *)
  ignore
    (alert_shape "livelock" ~open_:true ~rule:"livelock" ~severity:Slo.Warning
       ~subject:"t7" m);
  finish m 4 ~txn:"t7-r3" ~committed:true ~killed:false;
  ignore
    (alert_shape "livelock resolved" ~rule:"livelock" ~severity:Slo.Warning
       ~subject:"t7" m)

let test_livelock_interrupted_by_other_abort () =
  let m = Monitor.create ~rules:{ quiet with Slo.livelock_kills = 2 } () in
  finish m 1 ~txn:"t7" ~committed:false ~killed:true;
  (* A non-wait-die abort of the same logical txn breaks the streak. *)
  finish m 2 ~txn:"t7-r1" ~committed:false ~killed:false;
  finish m 3 ~txn:"t7-r2" ~committed:false ~killed:true;
  Alcotest.(check int) "streak was reset" 0 (Monitor.fired_total m)

let test_vote_anomaly () =
  let m = Monitor.create ~rules:quiet () in
  Monitor.observe m ~seq:1 ~time_ms:0.
    (Monitor.Txn_begin
       { txn = "t1"; node = "tm-t1"; scheme = "deferred"; level = "view" });
  Monitor.observe m ~seq:7 ~time_ms:1.
    (Monitor.Vote { txn = "t1"; node = "server-1"; vote = true });
  Monitor.observe m ~seq:9 ~time_ms:2.
    (Monitor.Proof_result
       {
         txn = "t1";
         node = "server-1";
         domain = "retail";
         version = 1;
         result = true;
       });
  Alcotest.(check int) "passing proof after YES is fine" 0 (Monitor.fired_total m);
  Monitor.observe m ~seq:12 ~time_ms:3.
    (Monitor.Proof_result
       {
         txn = "t1";
         node = "server-1";
         domain = "retail";
         version = 1;
         result = false;
       });
  let a =
    alert_shape "vote anomaly" ~open_:true ~rule:"vote_anomaly"
      ~severity:Slo.Critical ~subject:"t1" m
  in
  Alcotest.(check string) "names the lying participant" "server-1" a.Slo.node;
  Alcotest.(check int) "evidence is the failing proof" 12 a.Slo.first_seq;
  (* An abort contains the anomaly... *)
  finish m 13 ~txn:"t1" ~committed:false ~killed:false;
  Alcotest.(check bool) "abort resolves it" false (Slo.is_open a)

let test_vote_anomaly_no_vote_no_alert () =
  let m = Monitor.create ~rules:quiet () in
  (* A failing proof with no YES vote on record is a normal abort path. *)
  Monitor.observe m ~seq:2 ~time_ms:1.
    (Monitor.Proof_result
       {
         txn = "t1";
         node = "server-1";
         domain = "retail";
         version = 1;
         result = false;
       });
  Alcotest.(check int) "nothing fires" 0 (Monitor.fired_total m)

(* --- sinks ------------------------------------------------------------ *)

let test_sinks () =
  let registry = Registry.create () in
  let logged = ref [] and printed = ref [] in
  let m =
    Monitor.create
      ~rules:{ quiet with Slo.stuck_ms = 100. }
      ~registry
      ~log:(fun l -> logged := l :: !logged)
      ~console:(fun l -> printed := l :: !printed)
      ()
  in
  Monitor.observe m ~seq:1 ~time_ms:0.
    (Monitor.Txn_begin
       { txn = "t1"; node = "tm-t1"; scheme = "deferred"; level = "view" });
  Monitor.observe m ~seq:2 ~time_ms:500. (Monitor.Activity { node = "x" });
  Alcotest.(check int) "counter: fired once" 1
    (Registry.counter registry "alerts_total"
       [ ("rule", "stuck_txn"); ("severity", "critical") ]);
  Alcotest.(check (option (float 0.))) "gauge: one active" (Some 1.)
    (Registry.gauge registry "alerts_active" [ ("rule", "stuck_txn") ]);
  Monitor.observe m ~seq:3 ~time_ms:510. (Monitor.Txn_step { txn = "t1" });
  Alcotest.(check (option (float 0.))) "gauge: back to zero" (Some 0.)
    (Registry.gauge registry "alerts_active" [ ("rule", "stuck_txn") ]);
  (match List.rev !logged with
  | [ fire_line; resolve_line ] ->
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i =
        i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "log: fire record" true
      (contains fire_line {|"event":"fire"|}
      && contains fire_line {|"rule":"stuck_txn"|});
    Alcotest.(check bool) "log: resolve record" true
      (contains resolve_line {|"event":"resolve"|})
  | lines -> Alcotest.failf "expected 2 alert-log lines, got %d" (List.length lines));
  Alcotest.(check int) "console: one line per transition" 2
    (List.length !printed)

(* --- full-protocol runs ----------------------------------------------- *)

let all_cells =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level)) [ Consistency.View; Consistency.Global ])
    Scheme.all

(* One worst-case-free cell with the journal live and a monitor tapped in
   — the [run --monitor] wiring, minus the CLI. *)
let run_cell scheme level =
  let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let journal = Transport.enable_journal transport in
  let monitor = Monitor.create () in
  let health = Health.attach journal monitor in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
  in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  (journal, monitor, health, outcome)

let with_temp_journal contents f =
  let path = Filename.temp_file "cloudtx_monitor" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let replay_file what contents monitor =
  with_temp_journal contents (fun path ->
      match Health.of_file path monitor with
      | Ok n -> n
      | Error e -> Alcotest.failf "%s: replay rejected the journal: %s" what e)

let test_clean_cells_fire_nothing () =
  List.iter
    (fun (scheme, level) ->
      let what =
        Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
      in
      let journal, live, health, outcome = run_cell scheme level in
      Alcotest.(check bool) (what ^ ": committed") true outcome.Outcome.committed;
      Alcotest.(check int) (what ^ ": live monitor is silent") 0
        (Monitor.fired_total live);
      Alcotest.(check int) (what ^ ": every record decoded") 0
        (Health.decode_errors health);
      Alcotest.(check (list string)) (what ^ ": no open transactions") []
        (Monitor.open_txns live);
      (* The offline replay of the same journal must agree with the live
         tap, alert for alert and peak for peak. *)
      let offline = Monitor.create () in
      let fed = replay_file what (Journal.to_string journal) offline in
      Alcotest.(check int) (what ^ ": replay fed every record")
        (Journal.length journal) fed;
      Alcotest.(check int) (what ^ ": offline monitor is silent") 0
        (Monitor.fired_total offline);
      Alcotest.(check (list (pair string (pair int string))))
        (what ^ ": live and offline staleness peaks agree")
        (Monitor.staleness_peak live)
        (Monitor.staleness_peak offline))
    all_cells

(* --- tampered and stalled journals ------------------------------------ *)

let lines_of journal =
  String.split_on_char '\n' (Journal.to_string journal)
  |> List.filter (fun l -> not (String.equal l ""))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let replace_once line ~old_sub ~new_sub =
  let n = String.length line and m = String.length old_sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub line i m) old_sub then
      Some (String.sub line 0 i ^ new_sub ^ String.sub line (i + m) (n - i - m))
    else go (i + 1)
  in
  go 0

let baseline = lazy (lines_of (let j, _, _, _ = run_cell Scheme.Deferred Consistency.View in j))

let test_watch_flags_tampered_vote () =
  let lines = Lazy.force baseline in
  (* Flip one proof the TM received in a commit-round reply to FALSE: the
     journal now shows a participant that voted YES whose proof failed. *)
  let flipped = ref false in
  let tampered =
    List.map
      (fun l ->
        if
          (not !flipped)
          && contains l {|"node":"tm-t1"|}
          && contains l {|"dir":"input"|}
          && contains l {|"t":"commit-reply"|}
        then
          match replace_once l ~old_sub:{|"result":true|} ~new_sub:{|"result":false|} with
          | Some l' ->
            flipped := true;
            l'
          | None -> l
        else l)
      lines
  in
  Alcotest.(check bool) "found a commit-round proof to flip" true !flipped;
  let m = Monitor.create () in
  ignore (replay_file "tampered vote" (String.concat "\n" tampered ^ "\n") m);
  let a =
    alert_shape "tampered vote" ~open_:true ~rule:"vote_anomaly"
      ~severity:Slo.Critical ~subject:"t1" m
  in
  Alcotest.(check bool) "evidence names a journal seq" true (a.Slo.first_seq > 1);
  (* ...which is exactly what makes [watch] exit non-zero. *)
  Alcotest.(check int) "unresolved critical" 1 (Monitor.unresolved_critical m)

let test_watch_flags_stalled_journal () =
  let lines = Lazy.force baseline in
  (* Cut the journal right after the TM comes up, then splice in later
     activity from elsewhere in the cluster: the transaction began, the
     clock moved on, and its machine never stepped again. *)
  let rec keep_until_create acc = function
    | [] -> Alcotest.fail "baseline journal has no TM create record"
    | l :: rest ->
      if contains l {|"node":"tm-t1"|} && contains l {|"dir":"create"|} then
        List.rev (l :: acc)
      else keep_until_create (l :: acc) rest
  in
  let prefix = keep_until_create [] lines in
  let ghost i =
    Printf.sprintf
      {|{"seq":%d,"time_ms":%d.0,"node":"server-9","dir":"input","payload":{}}|}
      (9000 + i)
      (4000 + (1000 * i))
  in
  let stalled = prefix @ List.map ghost [ 1; 2; 3 ] in
  let m = Monitor.create () in
  ignore (replay_file "stalled journal" (String.concat "\n" stalled ^ "\n") m);
  let a =
    alert_shape "stalled journal" ~open_:true ~rule:"stuck_txn"
      ~severity:Slo.Critical ~subject:"t1" m
  in
  Alcotest.(check string) "names the stuck TM" "tm-t1" a.Slo.node;
  Alcotest.(check (list string)) "transaction still open" [ "t1" ]
    (Monitor.open_txns m);
  Alcotest.(check int) "unresolved critical" 1 (Monitor.unresolved_critical m)

let () =
  Alcotest.run "monitor"
    [
      ( "rules",
        [
          Alcotest.test_case "stuck transaction fires and resolves" `Quick
            test_stuck_txn;
          Alcotest.test_case "finishing resolves a stuck alert" `Quick
            test_stuck_resolves_on_finish;
          Alcotest.test_case "staleness by versions" `Quick
            test_staleness_versions;
          Alcotest.test_case "staleness by time" `Quick test_staleness_timed;
          Alcotest.test_case "abort storm over the window" `Quick
            test_abort_storm;
          Alcotest.test_case "wait-die livelock" `Quick test_livelock;
          Alcotest.test_case "livelock streak resets" `Quick
            test_livelock_interrupted_by_other_abort;
          Alcotest.test_case "vote anomaly" `Quick test_vote_anomaly;
          Alcotest.test_case "failing proof without a vote is quiet" `Quick
            test_vote_anomaly_no_vote_no_alert;
        ] );
      ( "sinks",
        [ Alcotest.test_case "registry, log and console" `Quick test_sinks ] );
      ( "replay",
        [
          Alcotest.test_case "every clean cell is silent, live = offline"
            `Quick test_clean_cells_fire_nothing;
          Alcotest.test_case "tampered vote fires vote_anomaly" `Quick
            test_watch_flags_tampered_vote;
          Alcotest.test_case "stalled journal fires stuck_txn" `Quick
            test_watch_flags_stalled_journal;
        ] );
    ]
