(* Tests for the Datalog concrete syntax: parsing, printing, round trips,
   error positions, and agreement with the inference engine. *)

module Datalog = Cloudtx_policy.Datalog
module Rule = Cloudtx_policy.Rule
module Infer = Cloudtx_policy.Infer
module Policy = Cloudtx_policy.Policy

let ok = function Ok v -> v | Error m -> Alcotest.failf "parse error: %s" m

let test_parse_fact () =
  let r = ok (Datalog.parse_rule "role(bob, clerk).") in
  Alcotest.(check string) "printed" "role(bob, clerk)." (Rule.to_string r);
  Alcotest.(check bool) "ground" true (Rule.is_ground r.Rule.head);
  Alcotest.(check int) "no body" 0 (List.length r.Rule.body)

let test_parse_rule_with_vars () =
  let r = ok (Datalog.parse_rule "permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I).") in
  Alcotest.(check string) "printed"
    "permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I)."
    (Rule.to_string r);
  Alcotest.(check int) "three body literals" 3 (List.length r.Rule.body)

let test_parse_negation () =
  let r = ok (Datalog.parse_rule "permit(S) :- role(S, clerk), not suspended(S).") in
  Alcotest.(check int) "one negated" 1 (List.length (Rule.negative_body r));
  Alcotest.(check string) "printed"
    "permit(S) :- role(S, clerk), not suspended(S)." (Rule.to_string r)

let test_parse_program_with_comments () =
  let program =
    {|% the CompuMe policy
permit(S, read, I) :- role(S, sales_rep),   % who they are
                      assigned(S, R), region_of(I, R),
                      located(S, R).
region_of(customer-recs, east).  % data placement
region_of("Inventory Records", east).
|}
  in
  let rules = ok (Datalog.parse_program program) in
  Alcotest.(check int) "three rules" 3 (List.length rules);
  (* The quoted constant survives verbatim. *)
  let last = List.nth rules 2 in
  Alcotest.(check bool) "quoted constant" true
    (match last.Rule.head.Rule.args with
    | [ Rule.Const "Inventory Records"; Rule.Const "east" ] -> true
    | _ -> false)

let test_errors_with_positions () =
  List.iter
    (fun (src, fragment) ->
      match Datalog.parse_rule src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error m ->
        let contains s sub =
          let n = String.length s and k = String.length sub in
          let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" src fragment m)
          true (contains m fragment))
    [
      ("permit(S)", "unexpected end of input");
      ("permit(S) : role(S).", "expected ':-'");
      ("permit(S) :- role(S),.", "expected a");
      ("permit(", "unexpected end of input");
      ("permit(X) :- role(Y).", "head variable x not bound");
      ("permit() :- role(S).", "expected a term");
      ("\"unclosed", "unterminated quoted constant");
    ]

let test_unstratified_text_rejected_at_saturation () =
  let rules = ok (Datalog.parse_program "p(X) :- base(X), not p(X).\nbase(a).") in
  Alcotest.check_raises "negation cycle"
    (Invalid_argument "Infer: rules are not stratifiable (negation cycle)")
    (fun () -> ignore (Infer.saturate ~rules ~facts:[]))

let test_parsed_policy_behaves () =
  (* Parse a full policy and evaluate it through the normal machinery. *)
  let rules =
    ok
      (Datalog.parse_program
         {|permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I),
                             not suspended(S).
           suspended(amy).|})
  in
  let policy = Policy.create ~domain:"d" rules in
  let facts subject =
    [
      Rule.fact "role" [ subject; "clerk" ];
      Rule.fact "req_action" [ "read" ];
      Rule.fact "req_item" [ "x" ];
    ]
  in
  Alcotest.(check bool) "bob in" true
    (Policy.permits policy ~facts:(facts "bob") ~subject:"bob" ~action:"read" ~item:"x");
  Alcotest.(check bool) "amy out" false
    (Policy.permits policy ~facts:(facts "amy") ~subject:"amy" ~action:"read" ~item:"x")

let prop_print_parse_roundtrip =
  (* Random well-formed rules print to text that parses back to the same
     rule (structurally, via printing again). *)
  let gen_rule =
    QCheck.Gen.(
      let var = map (fun i -> Rule.v (Printf.sprintf "x%d" i)) (0 -- 3) in
      let const =
        oneof
          [
            map (fun i -> Rule.c (Printf.sprintf "k%d" i)) (0 -- 5);
            (* Constants that require quoting. *)
            oneofl [ Rule.c "Upper Case"; Rule.c ""; Rule.c "not"; Rule.c "a,b" ];
          ]
      in
      let atom name_bound =
        map2
          (fun p args -> Rule.atom (Printf.sprintf "p%d" p) args)
          (0 -- name_bound)
          (list_size (1 -- 3) (oneof [ var; const ]))
      in
      let* body_pos = list_size (1 -- 3) (atom 3) in
      let body_vars =
        List.concat_map
          (fun (a : Rule.atom) ->
            List.filter_map
              (function Rule.Var x -> Some x | Rule.Const _ -> None)
              a.Rule.args)
          body_pos
      in
      let bound_var =
        if body_vars = [] then const else map Rule.v (oneofl body_vars)
      in
      let* neg = list_size (0 -- 2) (atom 3) in
      (* Make negated atoms safe: replace their variables with bound ones. *)
      let* neg =
        flatten_l
          (List.map
             (fun (a : Rule.atom) ->
               let* args =
                 flatten_l
                   (List.map
                      (function
                        | Rule.Var _ -> bound_var
                        | Rule.Const _ as t -> return t)
                      a.Rule.args)
               in
               return { a with Rule.args })
             neg)
      in
      let* head_args = list_size (1 -- 3) (oneof [ bound_var; const ]) in
      return
        (Rule.rule_literals (Rule.atom "head" head_args)
           (List.map (fun a -> Rule.Pos a) body_pos
           @ List.map (fun a -> Rule.Neg a) neg)))
  in
  QCheck.Test.make ~name:"datalog print/parse roundtrip" ~count:300
    (QCheck.make gen_rule)
    (fun r ->
      let text = Rule.to_string r in
      match Datalog.parse_rule text with
      | Ok back -> String.equal text (Rule.to_string back)
      | Error _ -> false)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "datalog"
    [
      ( "parse",
        [
          Alcotest.test_case "fact" `Quick test_parse_fact;
          Alcotest.test_case "rule with vars" `Quick test_parse_rule_with_vars;
          Alcotest.test_case "negation" `Quick test_parse_negation;
          Alcotest.test_case "program with comments" `Quick
            test_parse_program_with_comments;
          Alcotest.test_case "errors carry positions" `Quick
            test_errors_with_positions;
          Alcotest.test_case "unstratified rejected" `Quick
            test_unstratified_text_rejected_at_saturation;
          Alcotest.test_case "parsed policy behaves" `Quick
            test_parsed_policy_behaves;
          qc prop_print_parse_roundtrip;
        ] );
    ]
