(* Offline replay auditor over flight-recorder journals.

   Three angles:
   - clean journals from every scheme x consistency-level cell audit with
     zero divergences;
   - the auditor's recomputed Table I counts equal both the live metric
     counters and the paper's closed forms;
   - each tampering kind (dropped record, reordered delivery, flipped
     vote, stale policy version) is rejected with a diagnostic naming the
     first divergent seq. *)

module Audit = Cloudtx_core.Audit
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Complexity = Cloudtx_core.Complexity
module Outcome = Cloudtx_core.Outcome
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Scenario = Cloudtx_workload.Scenario
module Table1 = Cloudtx_workload.Table1
module Transport = Cloudtx_sim.Transport
module Journal = Cloudtx_obs.Journal
module Registry = Cloudtx_obs.Registry

let all_cells =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level)) [ Consistency.View; Consistency.Global ])
    Scheme.all

let cell_name scheme level =
  Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)

let lines_of journal =
  String.split_on_char '\n' (Journal.to_string journal)
  |> List.filter (fun l -> not (String.equal l ""))

(* A Table1-style single-transaction worst-case run with the flight
   recorder and the metric registry both live. *)
let run_cell ?(n_servers = 4) ?(queries = 4) scheme level staleness =
  let scenario = Scenario.retail ~n_servers ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let journal = Transport.enable_journal transport in
  let registry = Transport.enable_metrics transport in
  (match staleness with
  | Table1.Fresh -> ()
  | Table1.View_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
         (Scenario.clerk_rules_refreshed ()))
  | Table1.Global_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun _ -> infinity))
         (Scenario.clerk_rules_refreshed ())));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries ()
  in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  (lines_of journal, outcome, registry, Transport.counters transport)

let audit_ok what lines =
  match Audit.run ~lines with
  | Ok report -> report
  | Error e -> Alcotest.failf "%s: audit rejected a clean journal: %s" what e

(* --- clean journals --------------------------------------------------- *)

let test_every_cell_audits_clean () =
  List.iter
    (fun (scheme, level) ->
      let what = cell_name scheme level in
      let lines, outcome, _, _ =
        run_cell scheme level (Table1.worst_for scheme level)
      in
      let report = audit_ok what lines in
      Alcotest.(check int) (what ^ ": transactions") 1 report.Audit.transactions;
      Alcotest.(check int)
        (what ^ ": commits")
        (if outcome.Outcome.committed then 1 else 0)
        report.Audit.commits;
      Alcotest.(check bool) (what ^ ": committed") true outcome.Outcome.committed)
    all_cells

(* --- Table I accounting ----------------------------------------------- *)

let test_counts_match_registry_and_closed_forms () =
  let n = 4 and u = 4 in
  List.iter
    (fun (scheme, level) ->
      let what = cell_name scheme level in
      let staleness = Table1.worst_for scheme level in
      let lines, outcome, registry, counters =
        run_cell ~n_servers:n ~queries:u scheme level staleness
      in
      let report = audit_ok what lines in
      (* Recomputed from the journal alone = live transport counters. *)
      Alcotest.(check int)
        (what ^ ": protocol messages, journal vs counters")
        (Table1.protocol_messages counters)
        report.Audit.protocol_messages;
      Alcotest.(check int)
        (what ^ ": proofs, journal vs registry")
        (Registry.counter_total registry "proofs_total")
        report.Audit.proofs;
      Alcotest.(check int)
        (what ^ ": forced logs, journal vs registry")
        (Registry.counter_total registry "log_force_total")
        report.Audit.forced_logs;
      (* ...and = the paper's closed forms (proofs are exact; the bench
         documents measured messages under-shooting the message form by 2
         in view-worst cells, so only proofs are asserted here). *)
      let r = max 1 outcome.Outcome.commit_rounds in
      Alcotest.(check int)
        (what ^ ": proofs, journal vs closed form")
        (Complexity.proofs scheme level ~n ~u ~r)
        report.Audit.proofs;
      Alcotest.(check int)
        (what ^ ": proofs, journal vs outcome")
        outcome.Outcome.proofs_evaluated report.Audit.proofs)
    all_cells

(* --- tampering -------------------------------------------------------- *)

let index_of_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some i
    else go (i + 1)
  in
  go 0

let contains s sub = Option.is_some (index_of_sub s sub)

let replace_once line ~old_sub ~new_sub =
  match index_of_sub line old_sub with
  | None -> None
  | Some i ->
      Some
        (String.sub line 0 i ^ new_sub
        ^ String.sub line
            (i + String.length old_sub)
            (String.length line - i - String.length old_sub))

(* [{"seq":..,...,"payload":<p>}] -> (prefix incl. ["payload":], <p> sans
   the final brace). *)
let split_payload line =
  match index_of_sub line "\"payload\":" with
  | None -> Alcotest.failf "record has no payload: %s" line
  | Some i ->
      let cut = i + String.length "\"payload\":" in
      ( String.sub line 0 cut,
        String.sub line cut (String.length line - cut - 1) )

let baseline =
  lazy
    (let lines, _, _, _ =
       run_cell Scheme.Deferred Consistency.Global Table1.Fresh
     in
     lines)

let expect_rejected what lines =
  match Audit.run ~lines with
  | Ok _ -> Alcotest.failf "%s: tampered journal passed the audit" what
  | Error e ->
      if not (contains e "seq") then
        Alcotest.failf "%s: diagnostic does not name the divergent seq: %s" what e

let test_dropped_record () =
  let lines = Lazy.force baseline in
  let drop = List.length lines / 2 in
  let tampered = List.filteri (fun i _ -> i <> drop) lines in
  expect_rejected "dropped record" tampered

let test_reordered_delivery () =
  let lines = Lazy.force baseline in
  (* Swap the payloads of two TM deliveries carrying different message
     kinds (an execute reply and a commit-round reply), keeping seq and
     timestamps intact — a reordering no seq check can see. *)
  let is_tm_deliver tag l =
    contains l "\"node\":\"tm-t1\""
    && contains l "\"dir\":\"input\""
    && contains l "{\"t\":\"deliver\""
    && contains l ("\"msg\":{\"t\":\"" ^ tag ^ "\"")
  in
  let indexed = List.mapi (fun i l -> (i, l)) lines in
  let find tag =
    match List.find_opt (fun (_, l) -> is_tm_deliver tag l) indexed with
    | Some hit -> hit
    | None -> Alcotest.failf "baseline journal has no TM %s delivery" tag
  in
  let i, li = find "execute-reply" and j, lj = find "commit-reply" in
  let pi, payload_i = split_payload li and pj, payload_j = split_payload lj in
  let tampered =
    List.mapi
      (fun k l ->
        if k = i then pi ^ payload_j ^ "}"
        else if k = j then pj ^ payload_i ^ "}"
        else l)
      lines
  in
  expect_rejected "reordered delivery" tampered

let test_flipped_vote () =
  let lines = Lazy.force baseline in
  let flipped = ref false in
  let tampered =
    List.map
      (fun l ->
        if
          (not !flipped)
          && contains l "\"dir\":\"input\""
          && contains l "{\"t\":\"prepared\""
        then
          match replace_once l ~old_sub:"\"vote\":true" ~new_sub:"\"vote\":false" with
          | Some l' ->
              flipped := true;
              l'
          | None -> l
        else l)
      lines
  in
  Alcotest.(check bool) "found a YES vote to flip" true !flipped;
  expect_rejected "flipped vote" tampered

let test_stale_version () =
  let lines = Lazy.force baseline in
  (* Age the policy copy a participant reports in its first commit-round
     reply: the replayed TM sees a version skew the live one never saw. *)
  let bumped = ref false in
  let tampered =
    List.map
      (fun l ->
        if
          (not !bumped)
          && contains l "\"dir\":\"input\""
          && contains l "\"t\":\"commit-reply\""
        then
          match replace_once l ~old_sub:"\"version\":1" ~new_sub:"\"version\":9" with
          | Some l' ->
              bumped := true;
              l'
          | None -> l
        else l)
      lines
  in
  Alcotest.(check bool) "found a policy version to bump" true !bumped;
  expect_rejected "stale version" tampered

let test_truncated_journal () =
  let lines = Lazy.force baseline in
  (* Cut right before the last action record, so the replayed machine's
     final emissions go unmatched (a tail cut leaves no seq gap to trip
     on — only the pending-action check catches it). *)
  let last_action =
    List.fold_left
      (fun (i, last) l ->
        (i + 1, if contains l "\"dir\":\"action\"" then i else last))
      (0, -1) lines
    |> snd
  in
  Alcotest.(check bool) "journal has an action record" true (last_action >= 0);
  let tampered = List.filteri (fun i _ -> i < last_action) lines in
  expect_rejected "truncated journal" tampered

(* --- format compatibility --------------------------------------------- *)

(* Journals recorded before codec v3 lack the Apply write stamps; the
   auditor must render replayed actions as that version encoded them and
   still byte-match.  Downgrade a fresh journal: v2 header, Apply action
   payloads re-encoded without the writes field. *)
let test_v2_journal_still_audits () =
  let module Json = Cloudtx_policy.Json in
  let module Codec = Cloudtx_protocol.Codec in
  let module Ps = Cloudtx_protocol.Ps_machine in
  let lines, _, _, _ =
    run_cell Scheme.Deferred Consistency.Global Table1.Global_worst
  in
  let v3_report = audit_ok "v3 original" lines in
  let downgraded =
    match lines with
    | [] -> []
    | _header :: records ->
      {|{"journal":"cloudtx","version":2}|}
      :: List.map
           (fun line ->
             match Json.parse line with
             | Error _ -> line
             | Ok j -> (
               let get name =
                 match Json.member name j with Ok v -> v | Error _ -> Json.Null
               in
               match (Json.to_str (get "dir"), Json.member "payload" j) with
               | Ok "action", Ok payload -> (
                 match Codec.ps_action_of_json payload with
                 | Ok (Ps.Apply _ as a) ->
                   Json.to_string
                     (Json.Obj
                        [
                          ("seq", get "seq");
                          ("time_ms", get "time_ms");
                          ("node", get "node");
                          ("dir", get "dir");
                          ("payload", Codec.ps_action_to_json_at ~version:2 a);
                        ])
                 | _ -> line)
               | _ -> line))
           records
  in
  let stamped l = contains l "\"t\":\"apply\"" && contains l "\"writes\"" in
  Alcotest.(check bool) "journal carried write stamps" true
    (List.exists stamped lines);
  Alcotest.(check bool) "downgrade removed them" true
    (not (List.exists stamped downgraded));
  let v2_report = audit_ok "v2 downgraded" downgraded in
  Alcotest.(check int) "same record count" v3_report.Audit.records
    v2_report.Audit.records;
  Alcotest.(check int) "same commits" v3_report.Audit.commits
    v2_report.Audit.commits

let () =
  Alcotest.run "audit"
    [
      ( "replay",
        [
          Alcotest.test_case "every cell audits clean" `Quick
            test_every_cell_audits_clean;
          Alcotest.test_case "counts match registry and closed forms" `Quick
            test_counts_match_registry_and_closed_forms;
        ] );
      ( "tampering",
        [
          Alcotest.test_case "dropped record" `Quick test_dropped_record;
          Alcotest.test_case "reordered delivery" `Quick test_reordered_delivery;
          Alcotest.test_case "flipped vote" `Quick test_flipped_vote;
          Alcotest.test_case "stale version" `Quick test_stale_version;
          Alcotest.test_case "truncated journal" `Quick test_truncated_journal;
        ] );
      ( "compat",
        [
          Alcotest.test_case "v2 journal still audits" `Quick
            test_v2_journal_still_audits;
        ] );
    ]
