(* Banking scenario tests: funds transfers over 2PVC with real integrity
   constraints (overdrafts), owner/teller/auditor authorization, and the
   global funds-conservation invariant. *)

module Banking = Cloudtx_workload.Banking
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Trusted = Cloudtx_core.Trusted
module Master = Cloudtx_core.Master
module Cluster = Cloudtx_core.Cluster
module Splitmix = Cloudtx_sim.Splitmix
module Server = Cloudtx_store.Server
module Value = Cloudtx_store.Value

let config = Manager.config Scheme.Punctual Consistency.View

let test_intra_branch_transfer () =
  let bank = Banking.build () in
  let before = Banking.total_funds bank in
  let txn =
    Banking.transfer bank ~id:"t1" ~by:"cust-1" ~from_acct:"acct-1-1"
      ~to_acct:"acct-1-2" ~amount:30
  in
  let o = Manager.run_one bank.Banking.cluster config txn in
  Alcotest.(check bool) "committed" true o.Outcome.committed;
  Alcotest.(check (option int)) "debited" (Some 70) (Banking.balance bank "acct-1-1");
  Alcotest.(check (option int)) "credited" (Some 130) (Banking.balance bank "acct-1-2");
  Alcotest.(check int) "conserved" before (Banking.total_funds bank)

let test_cross_branch_transfer () =
  let bank = Banking.build () in
  let before = Banking.total_funds bank in
  let txn =
    Banking.transfer bank ~id:"t1" ~by:"cust-1" ~from_acct:"acct-1-1"
      ~to_acct:"acct-2-1" ~amount:45
  in
  let o = Manager.run_one bank.Banking.cluster config txn in
  Alcotest.(check bool) "committed" true o.Outcome.committed;
  Alcotest.(check (option int)) "debited" (Some 55) (Banking.balance bank "acct-1-1");
  Alcotest.(check (option int)) "credited" (Some 145) (Banking.balance bank "acct-2-1");
  Alcotest.(check int) "conserved" before (Banking.total_funds bank)

let test_overdraft_aborts () =
  let bank = Banking.build () in
  let txn =
    Banking.transfer bank ~id:"t1" ~by:"cust-1" ~from_acct:"acct-1-1"
      ~to_acct:"acct-2-1" ~amount:5000
  in
  let o = Manager.run_one bank.Banking.cluster config txn in
  Alcotest.(check bool) "aborted" false o.Outcome.committed;
  Alcotest.(check string) "integrity violation" "integrity-violation"
    (Outcome.reason_name o.Outcome.reason);
  (* Neither side of the transfer happened — no partial credit. *)
  Alcotest.(check (option int)) "source intact" (Some 100)
    (Banking.balance bank "acct-1-1");
  Alcotest.(check (option int)) "sink intact" (Some 100)
    (Banking.balance bank "acct-2-1")

let test_customer_cannot_move_others_money () =
  let bank = Banking.build () in
  (* acct-1-2 belongs to cust-2 (j=2 -> cust-2). *)
  Alcotest.(check string) "ownership" "cust-2" (bank.Banking.owner_of "acct-1-2");
  let txn =
    Banking.transfer bank ~id:"t1" ~by:"cust-1" ~from_acct:"acct-1-2"
      ~to_acct:"acct-1-1" ~amount:10
  in
  let o = Manager.run_one bank.Banking.cluster config txn in
  Alcotest.(check bool) "aborted" false o.Outcome.committed;
  Alcotest.(check string) "proof failure" "proof-failure"
    (Outcome.reason_name o.Outcome.reason);
  Alcotest.(check (option int)) "victim intact" (Some 100)
    (Banking.balance bank "acct-1-2")

let test_teller_can_move_any_money () =
  let bank = Banking.build () in
  let txn =
    Banking.transfer bank ~id:"t1" ~by:"teller-1" ~from_acct:"acct-1-2"
      ~to_acct:"acct-3-1" ~amount:25
  in
  let o = Manager.run_one bank.Banking.cluster config txn in
  Alcotest.(check bool) "committed" true o.Outcome.committed;
  Alcotest.(check (option int)) "moved" (Some 75) (Banking.balance bank "acct-1-2")

let test_auditor_reads_but_cannot_write () =
  let bank = Banking.build () in
  let audit = Banking.audit bank ~id:"t1" ~by:"auditor-1" ~branch:"branch-2" in
  let o1 = Manager.run_one bank.Banking.cluster config audit in
  Alcotest.(check bool) "audit commits" true o1.Outcome.committed;
  let theft =
    Banking.transfer bank ~id:"t2" ~by:"auditor-1" ~from_acct:"acct-1-1"
      ~to_acct:"acct-1-2" ~amount:10
  in
  let o2 = Manager.run_one bank.Banking.cluster config theft in
  Alcotest.(check bool) "transfer denied" false o2.Outcome.committed;
  Alcotest.(check string) "proof failure" "proof-failure"
    (Outcome.reason_name o2.Outcome.reason)

let test_incremental_updates_compose () =
  (* Two committed transfers through the same account apply cumulatively. *)
  let bank = Banking.build () in
  let run id from_acct to_acct amount =
    let txn = Banking.transfer bank ~id ~by:"teller-1" ~from_acct ~to_acct ~amount in
    (Manager.run_one bank.Banking.cluster config txn).Outcome.committed
  in
  Alcotest.(check bool) "t1" true (run "t1" "acct-1-1" "acct-1-2" 10);
  Alcotest.(check bool) "t2" true (run "t2" "acct-1-3" "acct-1-2" 5);
  Alcotest.(check (option int)) "cumulative credit" (Some 115)
    (Banking.balance bank "acct-1-2")

let test_random_workload_conservation () =
  (* Random transfers with deliberate overdrafts under every scheme:
     whatever commits or aborts, total funds never change and committed
     transactions satisfy their trusted-transaction definition. *)
  List.iter
    (fun scheme ->
      let bank = Banking.build ~n_branches:3 ~accounts_per_branch:4 () in
      let before = Banking.total_funds bank in
      let rng = Splitmix.create 77L in
      let committed = ref 0 and integrity_aborts = ref 0 in
      for i = 1 to 30 do
        let txn =
          Banking.random_transfer bank rng ~id:(Printf.sprintf "t%d" i)
            ~overdraft_ratio:0.3
        in
        let o =
          Manager.run_one bank.Banking.cluster
            (Manager.config scheme Consistency.View)
            txn
        in
        if o.Outcome.committed then begin
          incr committed;
          match
            Trusted.check scheme ~level:Consistency.View
              ~latest:(fun d -> Master.latest (Cluster.master bank.Banking.cluster) ~domain:d)
              o.Outcome.view
          with
          | Ok () -> ()
          | Error why -> Alcotest.failf "%s untrusted commit: %s" (Scheme.name scheme) why
        end
        else if o.Outcome.reason = Outcome.Integrity_violation then
          incr integrity_aborts
      done;
      Alcotest.(check int)
        (Scheme.name scheme ^ " conserves funds")
        before (Banking.total_funds bank);
      Alcotest.(check bool) "some committed" true (!committed > 0);
      Alcotest.(check bool) "some integrity aborts" true (!integrity_aborts > 0))
    Scheme.all

let () =
  Alcotest.run "banking"
    [
      ( "transfers",
        [
          Alcotest.test_case "intra-branch" `Quick test_intra_branch_transfer;
          Alcotest.test_case "cross-branch" `Quick test_cross_branch_transfer;
          Alcotest.test_case "overdraft aborts" `Quick test_overdraft_aborts;
          Alcotest.test_case "increments compose" `Quick
            test_incremental_updates_compose;
        ] );
      ( "authorization",
        [
          Alcotest.test_case "customer cannot move others' money" `Quick
            test_customer_cannot_move_others_money;
          Alcotest.test_case "teller can move any money" `Quick
            test_teller_can_move_any_money;
          Alcotest.test_case "auditor read-only" `Quick
            test_auditor_reads_but_cannot_write;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "random workload conserves funds" `Slow
            test_random_workload_conservation;
        ] );
    ]
