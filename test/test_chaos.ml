(* Chaos campaign engine: deterministic fault plans, hardened delivery,
   counterexample shrinking.

   The clean-campaign test is the core robustness claim: random fault
   plans across every scheme x level cell end in safe, live terminal
   states.  The dedup-off tests demonstrate the failure mode idempotent
   delivery prevents, and that the shrinker reduces it to a minimal plan
   whose captured journal the offline auditor rejects. *)

module Plan = Cloudtx_chaos.Plan
module Campaign = Cloudtx_chaos.Campaign
module Shrink = Cloudtx_chaos.Shrink
module Audit = Cloudtx_core.Audit
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency

let describe (c : Campaign.case) =
  Printf.sprintf "%s seed=%Ld: %s"
    (Campaign.cell_name c.Campaign.cell)
    c.Campaign.plan.Plan.seed c.Campaign.failure.Campaign.what

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)
(* ------------------------------------------------------------------ *)

let test_plan_generation_deterministic () =
  let a = Plan.random ~seed:99L () and b = Plan.random ~seed:99L () in
  Alcotest.(check string) "same seed, same plan" (Plan.to_string a)
    (Plan.to_string b);
  let c = Plan.random ~seed:100L () in
  Alcotest.(check bool) "different seed, different plan" true
    (not (String.equal (Plan.to_string a) (Plan.to_string c)))

let test_plan_json_round_trip () =
  for i = 0 to 19 do
    let plan = Plan.random ~seed:(Int64.of_int (500 + i)) () in
    match Plan.of_string (Plan.to_string plan) with
    | Ok back ->
      Alcotest.(check string) "round trip" (Plan.to_string plan)
        (Plan.to_string back)
    | Error e -> Alcotest.fail e
  done

let test_plan_faults_bounded () =
  for i = 0 to 49 do
    let plan = Plan.random ~seed:(Int64.of_int (900 + i)) () in
    Alcotest.(check bool) "1-4 ops" true
      (let n = List.length plan.Plan.ops in
       n >= 1 && n <= 4);
    List.iter
      (fun op ->
        Alcotest.(check bool) "fault ends before horizon + max hold" true
          (Plan.op_end op < Plan.fault_horizon))
      plan.Plan.ops
  done

(* ------------------------------------------------------------------ *)
(* Clean campaign                                                      *)
(* ------------------------------------------------------------------ *)

let run_clean () = Campaign.run ~base_seed:4242L ~plans:4 ()

let test_campaign_clean () =
  let verdict = run_clean () in
  Alcotest.(check int) "all cells x plans ran" (8 * 4) verdict.Campaign.plans_run;
  match verdict.Campaign.failures with
  | [] -> ()
  | c :: _ ->
    Alcotest.fail
      (Printf.sprintf "%d violation(s); first: %s"
         (List.length verdict.Campaign.failures)
         (describe c))

let test_campaign_deterministic () =
  let summarize (v : Campaign.verdict) =
    String.concat "\n" (List.map describe v.Campaign.failures)
  in
  Alcotest.(check string) "same seeds, same verdicts" (summarize (run_clean ()))
    (summarize (run_clean ()))

(* ------------------------------------------------------------------ *)
(* Dedup escape hatch and shrinking                                    *)
(* ------------------------------------------------------------------ *)

(* The cell with the most voting rounds, where a duplicated reply is most
   likely to poison the TM's vote collection. *)
let fragile_cell =
  { Campaign.scheme = Scheme.Continuous; level = Consistency.Global }

(* Deterministically find a failing seed with dedup disabled.  Dedup ON
   must keep the very same plans clean — that contrast is the point. *)
let find_failure () =
  let rec scan seed limit =
    if seed >= limit then
      Alcotest.fail "no dedup-off failure found in the seed range"
    else
      let plan = Plan.random ~seed:(Int64.of_int seed) () in
      match Campaign.run_plan ~dedup:false fragile_cell plan with
      | Error failure -> (plan, failure)
      | Ok () -> scan (seed + 1) limit
  in
  scan 7000 7160

let test_dedup_off_finds_violation () =
  let plan, failure = find_failure () in
  (match Campaign.run_plan fragile_cell plan with
  | Ok () -> ()
  | Error f ->
    Alcotest.fail
      (Printf.sprintf "dedup on must survive the same plan, got: %s"
         f.Campaign.what));
  Alcotest.(check bool) "journal captured" true
    (List.length failure.Campaign.journal > 1)

let test_shrink_to_minimal_plan () =
  let shrink () =
    let plan, _ = find_failure () in
    let fails p =
      match Campaign.run_plan ~dedup:false fragile_cell p with
      | Ok () -> None
      | Error f -> Some f.Campaign.what
    in
    match Shrink.minimize ~fails plan with
    | None -> Alcotest.fail "plan stopped failing under replay"
    | Some (minimal, what) -> (minimal, what)
  in
  let minimal, what = shrink () in
  Alcotest.(check bool)
    (Printf.sprintf "minimal plan has <= 3 ops (%s)" (Plan.to_string minimal))
    true
    (List.length minimal.Plan.ops <= 3);
  Alcotest.(check bool) "still a delivery failure" true (String.length what > 0);
  (* Determinism: the whole find + shrink pipeline replays identically. *)
  let minimal', what' = shrink () in
  Alcotest.(check string) "same minimal plan" (Plan.to_string minimal)
    (Plan.to_string minimal');
  Alcotest.(check string) "same diagnosis" what what'

let test_shrunk_journal_rejected_by_audit () =
  let plan, _ = find_failure () in
  let fails p =
    match Campaign.run_plan ~dedup:false fragile_cell p with
    | Ok () -> None
    | Error f -> Some f.Campaign.what
  in
  let minimal =
    match Shrink.minimize ~fails plan with
    | Some (m, _) -> m
    | None -> Alcotest.fail "plan stopped failing under replay"
  in
  match Campaign.run_plan ~dedup:false fragile_cell minimal with
  | Ok () -> Alcotest.fail "minimal plan no longer fails"
  | Error failure -> (
    match Audit.run ~lines:failure.Campaign.journal with
    | Ok _ -> Alcotest.fail "audit accepted the journal of a poisoned run"
    | Error why ->
      Alcotest.(check bool)
        (Printf.sprintf "audit names the divergent seq (%s)" why)
        true
        (String.length why >= 4 && String.equal (String.sub why 0 4) "seq "))

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "generation deterministic" `Quick
            test_plan_generation_deterministic;
          Alcotest.test_case "json round trip" `Quick test_plan_json_round_trip;
          Alcotest.test_case "faults bounded" `Quick test_plan_faults_bounded;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean across the grid" `Slow test_campaign_clean;
          Alcotest.test_case "deterministic verdicts" `Slow
            test_campaign_deterministic;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "dedup off finds a violation" `Slow
            test_dedup_off_finds_violation;
          Alcotest.test_case "shrinks to a minimal plan" `Slow
            test_shrink_to_minimal_plan;
          Alcotest.test_case "audit rejects the captured journal" `Slow
            test_shrunk_journal_rejected_by_audit;
        ] );
    ]
