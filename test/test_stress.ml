(* Liveness under load: heavy contention, policy churn and mixed schemes
   running concurrently on one cluster. Every transaction must terminate
   (wait-die admits no deadlock, blocked queries are retried on lock
   promotions), and the cluster must end quiescent with no leaked locks or
   workspaces. Plus parser fuzzing for the wire codec. *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Participant = Cloudtx_core.Participant
module Transport = Cloudtx_sim.Transport
module Splitmix = Cloudtx_sim.Splitmix
module Scenario = Cloudtx_workload.Scenario
module Generator = Cloudtx_workload.Generator
module Churn = Cloudtx_workload.Churn
module Experiment = Cloudtx_workload.Experiment
module Server = Cloudtx_store.Server
module Lock_manager = Cloudtx_store.Lock_manager
module Json = Cloudtx_policy.Json

let assert_no_leaks scenario outcomes =
  List.iter
    (fun name ->
      let server =
        Participant.server (Cluster.participant scenario.Scenario.cluster name)
      in
      List.iter
        (fun (o : Outcome.t) ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s holds no locks for %s" name o.Outcome.txn)
            []
            (Lock_manager.held_by (Server.locks server) ~txn:o.Outcome.txn))
        outcomes)
    scenario.Scenario.servers

let test_hot_key_storm () =
  (* 100 all-write transactions hammering a tiny key space, arriving
     nearly simultaneously. *)
  let scenario =
    Scenario.retail ~seed:5L ~n_servers:2 ~items_per_server:2 ~n_subjects:4 ()
  in
  let rng = Splitmix.create 11L in
  let params =
    { Generator.default with queries_per_txn = 2; write_ratio = 1.; zipf_s = 3. }
  in
  let arrivals = List.init 100 (fun i -> float_of_int i *. 0.2) in
  let stats =
    Experiment.run_open scenario
      (Manager.config Scheme.Deferred Consistency.View)
      ~arrivals
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check int) "every transaction terminated" 100
    (stats.Experiment.committed + stats.Experiment.aborted);
  (* Under a 3.0-skew all-write storm on four keys, wait-die kills most of
     the load — the point is that everything terminates and the survivors
     commit cleanly. *)
  Alcotest.(check bool) "some committed" true (stats.Experiment.committed > 0);
  List.iter
    (fun (o : Outcome.t) ->
      if not o.Outcome.committed then
        Alcotest.(check string) "aborts are wait-die" "wait-die"
          (Outcome.reason_name o.Outcome.reason))
    stats.Experiment.outcomes;
  assert_no_leaks scenario stats.Experiment.outcomes

let test_restarts_recover_wait_die_victims () =
  (* The same storm with wait-die aging: victims resubmit with their
     original timestamp, grow relatively older, and eventually win. *)
  let run ~max_restarts =
    let scenario =
      Scenario.retail ~seed:5L ~n_servers:2 ~items_per_server:2 ~n_subjects:4 ()
    in
    let rng = Splitmix.create 11L in
    let params =
      { Generator.default with queries_per_txn = 2; write_ratio = 1.; zipf_s = 3. }
    in
    let arrivals = List.init 60 (fun i -> float_of_int i *. 0.4) in
    Experiment.run_open ~max_restarts scenario
      (Manager.config Scheme.Deferred Consistency.View)
      ~arrivals
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  let base = run ~max_restarts:0 in
  let aged = run ~max_restarts:25 in
  Alcotest.(check int) "all base txns finish" 60
    (base.Experiment.committed + base.Experiment.aborted);
  Alcotest.(check int) "all aged txns finish" 60
    (aged.Experiment.committed + aged.Experiment.aborted);
  Alcotest.(check bool) "restarts happened" true (aged.Experiment.restarts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "aging raises commits (%d -> %d)" base.Experiment.committed
       aged.Experiment.committed)
    true
    (aged.Experiment.committed > base.Experiment.committed)

let test_mixed_schemes_concurrently () =
  (* Different TMs run different schemes against the same servers while
     the policy churns — the paper's "strategic choice made independently
     by each application". *)
  let scenario = Scenario.retail ~seed:8L ~n_servers:4 ~n_subjects:4 () in
  Churn.policy_refresh scenario ~period:6. ~propagation:(0.5, 5.) ~count:200;
  let cluster = scenario.Scenario.cluster in
  let rng = Splitmix.create 21L in
  let params = { Generator.default with queries_per_txn = 3; write_ratio = 0.4 } in
  let results = ref [] in
  let schemes = Array.of_list Scheme.all in
  List.iteri
    (fun i at ->
      Transport.at (Cluster.transport cluster) ~delay:at (fun () ->
          let scheme = schemes.(i mod Array.length schemes) in
          let txn = Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i) in
          Manager.submit cluster
            (Manager.config scheme Consistency.View)
            txn
            ~on_done:(fun o -> results := o :: !results)))
    (List.init 60 (fun i -> float_of_int i *. 1.1));
  ignore (Cluster.run cluster);
  Alcotest.(check int) "all finished" 60 (List.length !results);
  assert_no_leaks scenario !results;
  (* Committed data items hold plausible values; committed transactions of
     every scheme appear. *)
  let committed_schemes =
    List.sort_uniq compare
      (List.filter_map
         (fun (o : Outcome.t) ->
           if o.Outcome.committed then Some (Scheme.name o.Outcome.scheme) else None)
         !results)
  in
  Alcotest.(check bool) "several schemes committed" true
    (List.length committed_schemes >= 3)

let test_sequential_volume () =
  (* A long sequential run with churn: deterministic, no drift, stable
     memory of the counters (smoke-level throughput check). *)
  let scenario = Scenario.retail ~seed:13L ~n_servers:5 ~n_subjects:4 () in
  Churn.policy_refresh scenario ~period:25. ~propagation:(0.5, 10.) ~count:500;
  let rng = Splitmix.create 31L in
  let params = { Generator.default with queries_per_txn = 4 } in
  let stats =
    Experiment.run_sequential scenario
      (Manager.config Scheme.Punctual Consistency.Global)
      ~n:200
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check int) "200 transactions" 200
    (stats.Experiment.committed + stats.Experiment.aborted);
  Alcotest.(check bool) "high commit ratio" true
    (Experiment.commit_ratio stats > 0.9)

let test_outcomes_agree_with_wals () =
  (* After a contended mixed run, the TM-side outcomes and the server-side
     write-ahead logs must tell the same story:
     - a committed transaction has a commit decision in the WAL of every
       server it wrote at, and no abort decisions anywhere;
     - an aborted transaction has no commit decision anywhere;
     - replaying each WAL's prepared-writes in decision order reproduces
       the server's final committed state exactly. *)
  let module Wal = Cloudtx_store.Wal in
  let module Value = Cloudtx_store.Value in
  let scenario = Scenario.retail ~seed:77L ~n_servers:3 ~items_per_server:3 ~n_subjects:4 () in
  let rng = Splitmix.create 41L in
  let params =
    { Generator.default with queries_per_txn = 3; write_ratio = 0.7; zipf_s = 1.5 }
  in
  let arrivals = List.init 50 (fun i -> float_of_int i *. 0.7) in
  let stats =
    Experiment.run_open scenario
      (Manager.config Scheme.Punctual Consistency.View)
      ~arrivals
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  Alcotest.(check int) "all finished" 50
    (stats.Experiment.committed + stats.Experiment.aborted);
  let committed_ids =
    List.filter_map
      (fun (o : Outcome.t) -> if o.Outcome.committed then Some o.Outcome.txn else None)
      stats.Experiment.outcomes
  in
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant scenario.Scenario.cluster name) in
      let wal = Server.wal server in
      (* Replay: prepared writes applied at commit decisions, in order. *)
      let state = Hashtbl.create 16 in
      List.iter
        (fun k ->
          match Server.read_asof server k ~ts:0. with
          | Some v -> Hashtbl.replace state k v
          | None -> ())
        (Server.keys server);
      let prepared = Hashtbl.create 16 in
      List.iter
        (fun (e : Wal.entry) ->
          match e.Wal.record with
          | Wal.Prepared { txn; writes; _ } -> Hashtbl.replace prepared txn writes
          | Wal.Decision { txn; commit = true } ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: commit decision for %s matches TM" name txn)
              true
              (List.mem txn committed_ids);
            List.iter
              (fun (k, v) -> Hashtbl.replace state k v)
              (Option.value ~default:[] (Hashtbl.find_opt prepared txn))
          | Wal.Decision { txn; commit = false } ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: abort decision for %s matches TM" name txn)
              false
              (List.mem txn committed_ids)
          | Wal.Begin_txn _ | Wal.End_txn _ | Wal.Checkpoint _ -> ())
        (Wal.entries wal);
      (* Replayed state equals the server's committed state. *)
      List.iter
        (fun k ->
          let replayed = Hashtbl.find_opt state k in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s replay matches" name k)
            true
            (replayed = Server.get server k))
        (Server.keys server))
    scenario.Scenario.servers

let prop_json_fuzz =
  (* Arbitrary bytes never crash the parser: it returns Ok or Error. *)
  QCheck.Test.make ~name:"json parser total on garbage" ~count:1000
    QCheck.(string_gen Gen.(char_range '\000' '\255'))
    (fun s ->
      match Json.parse s with Ok _ -> true | Error _ -> true)

let prop_json_nest_fuzz =
  (* Deeply nested syntax-shaped garbage. *)
  QCheck.Test.make ~name:"json parser total on brackety garbage" ~count:500
    QCheck.(string_gen Gen.(oneofl [ '{'; '}'; '['; ']'; '"'; ','; ':'; 'a'; '1' ]))
    (fun s ->
      match Json.parse s with Ok _ -> true | Error _ -> true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stress"
    [
      ( "liveness",
        [
          Alcotest.test_case "hot-key storm" `Slow test_hot_key_storm;
          Alcotest.test_case "wait-die aging via restarts" `Slow
            test_restarts_recover_wait_die_victims;
          Alcotest.test_case "mixed schemes concurrently" `Slow
            test_mixed_schemes_concurrently;
          Alcotest.test_case "sequential volume" `Slow test_sequential_volume;
          Alcotest.test_case "outcomes agree with WALs" `Slow
            test_outcomes_agree_with_wals;
        ] );
      ("fuzz", [ qc prop_json_fuzz; qc prop_json_nest_fuzz ]);
    ]
