(* Unit tests for cloudtx_obs: span tracing, the metrics registry, the
   log2 histogram and the Chrome/JSONL exporters.  Exported JSON is
   validated with the policy wire codec's parser, which is a full JSON
   reader. *)

module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry
module Histogram = Cloudtx_obs.Histogram
module Export = Cloudtx_obs.Export
module Obs_json = Cloudtx_obs.Json
module Json = Cloudtx_policy.Json

(* A hand-cranked clock makes span timestamps deterministic. *)
let make_tracer () =
  let now = ref 0. in
  let t = Tracer.create ~clock:(fun () -> !now) () in
  (t, now)

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let t, now = make_tracer () in
  let root = Tracer.start t ~track:"tm" "txn" in
  now := 1.;
  let child = Tracer.start t ~parent:root ~track:"tm" "query" in
  now := 3.;
  Tracer.finish t child;
  now := 5.;
  Tracer.finish t ~attrs:[ ("outcome", "commit") ] root;
  match Tracer.spans t with
  | [ r; c ] ->
    Alcotest.(check string) "root name" "txn" r.Tracer.name;
    Alcotest.(check int) "root has no parent" Tracer.no_span r.Tracer.parent;
    Alcotest.(check int) "child links to root" root c.Tracer.parent;
    Alcotest.(check (float 0.)) "root start" 0. r.Tracer.start;
    Alcotest.(check (float 0.)) "root finish" 5. r.Tracer.finish;
    Alcotest.(check (float 0.)) "child start" 1. c.Tracer.start;
    Alcotest.(check (float 0.)) "child finish" 3. c.Tracer.finish;
    Alcotest.(check (list (pair string string)))
      "finish attrs" [ ("outcome", "commit") ] r.Tracer.attrs
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_ordering () =
  let t, now = make_tracer () in
  now := 2.;
  let b = Tracer.start t "b" in
  now := 1.;
  let a = Tracer.start t "a" in
  Tracer.finish t a;
  Tracer.finish t b;
  Alcotest.(check (list string))
    "sorted by start time" [ "a"; "b" ]
    (List.map (fun s -> s.Tracer.name) (Tracer.spans t));
  (* Same start: creation (id) order breaks the tie. *)
  let t, _now = make_tracer () in
  ignore (Tracer.start t "first");
  ignore (Tracer.start t "second");
  Alcotest.(check (list string))
    "ties by id" [ "first"; "second" ]
    (List.map (fun s -> s.Tracer.name) (Tracer.spans t))

let test_finish_idempotent () =
  let t, now = make_tracer () in
  let s = Tracer.start t "x" in
  now := 2.;
  Tracer.finish t s;
  now := 9.;
  Tracer.finish t s;
  (* second finish ignored *)
  Tracer.finish t 424242;
  (* unknown id ignored *)
  let span = List.hd (Tracer.spans t) in
  Alcotest.(check (float 0.)) "first finish wins" 2. span.Tracer.finish

let test_instant_and_open () =
  let t, now = make_tracer () in
  let s = Tracer.start t "open-span" in
  ignore s;
  now := 4.;
  Tracer.instant t ~track:"net" ~attrs:[ ("dst", "p1") ] "send";
  Alcotest.(check int) "two spans" 2 (Tracer.length t);
  let by_name name = List.find (fun x -> x.Tracer.name = name) (Tracer.spans t) in
  Alcotest.(check bool) "instant flagged" true (by_name "send").Tracer.instant;
  Alcotest.(check bool)
    "open span has nan finish" true
    (Float.is_nan (by_name "open-span").Tracer.finish)

let test_disabled_tracer () =
  Alcotest.(check bool) "noop disabled" false (Tracer.enabled Tracer.noop);
  let id = Tracer.start Tracer.noop ~track:"x" "txn" in
  Alcotest.(check int) "start yields no_span" Tracer.no_span id;
  Tracer.set_attr Tracer.noop id "k" "v";
  Tracer.finish Tracer.noop id;
  Tracer.instant Tracer.noop "i";
  Alcotest.(check int) "nothing recorded" 0 (Tracer.length Tracer.noop)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_label_canonicalization () =
  let r = Registry.create () in
  Registry.incr r "msgs" [ ("b", "2"); ("a", "1") ];
  Registry.incr r "msgs" [ ("a", "1"); ("b", "2") ];
  Alcotest.(check int)
    "order-insensitive identity" 2
    (Registry.counter r "msgs" [ ("b", "2"); ("a", "1") ]);
  Registry.incr r "msgs" [ ("a", "1") ];
  Alcotest.(check int) "different set is a new series" 1
    (Registry.counter r "msgs" [ ("a", "1") ]);
  Alcotest.(check int) "total sums label sets" 3 (Registry.counter_total r "msgs")

let test_registry_cells () =
  let r = Registry.create () in
  Registry.set_gauge r "depth" [] 3.5;
  Registry.set_gauge r "depth" [] 1.5;
  Alcotest.(check (option (float 0.))) "gauge overwrites" (Some 1.5)
    (Registry.gauge r "depth" []);
  Registry.observe r "lat" [ ("s", "a") ] 10.;
  Registry.observe r "lat" [ ("s", "a") ] 30.;
  (match Registry.histogram r "lat" [ ("s", "a") ] with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 2 (Histogram.count h);
    Alcotest.(check (float 1e-9)) "mean" 20. (Histogram.mean h);
    Alcotest.(check (float 0.)) "exact running sum" 40. (Histogram.sum h));
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Registry: depth is a gauge, not a counter") (fun () ->
      Registry.incr r "depth" [])

let test_registry_series_sorted () =
  let r = Registry.create () in
  Registry.incr r "z" [];
  Registry.incr r "a" [ ("k", "2") ];
  Registry.incr r "a" [ ("k", "1") ];
  Alcotest.(check (list string))
    "sorted by name then labels" [ "a/k=1"; "a/k=2"; "z/" ]
    (List.map
       (fun (name, labels, _) ->
         name ^ "/" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels))
       (Registry.series r))

let test_disabled_registry () =
  Alcotest.(check bool) "noop disabled" false (Registry.enabled Registry.noop);
  Registry.incr Registry.noop "c" [];
  Registry.set_gauge Registry.noop "g" [] 1.;
  Registry.observe Registry.noop "h" [] 1.;
  Alcotest.(check int) "no cells" 0 (List.length (Registry.series Registry.noop));
  Alcotest.(check int) "counter reads zero" 0 (Registry.counter Registry.noop "c" [])

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucket_boundaries () =
  let h = Histogram.create () in
  (* Exact powers of two sit on bucket boundaries; each must land in the
     bucket whose upper bound equals the value. *)
  List.iter (Histogram.observe h) [ 0.5; 1.; 2.; 4. ];
  Alcotest.(check (list (pair (float 1e-12) int)))
    "one per boundary bucket"
    [ (0.5, 1); (1., 1); (2., 1); (4., 1) ]
    (Histogram.buckets h);
  (* Just above a boundary moves up one bucket. *)
  let h2 = Histogram.create () in
  Histogram.observe h2 2.0001;
  Alcotest.(check (list (pair (float 1e-12) int)))
    "above boundary" [ (4., 1) ] (Histogram.buckets h2)

let test_histogram_percentiles_exact () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i)
  done;
  (* Percentiles come from the exact sample store (linear interpolation
     over n-1 intervals), not from bucket edges. *)
  Alcotest.(check (float 1e-9)) "p50" 50.5 (Histogram.percentile h 50.);
  Alcotest.(check (float 1e-9)) "p95" 95.05 (Histogram.percentile h 95.);
  Alcotest.(check (float 1e-9)) "p99" 99.01 (Histogram.percentile h 99.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Histogram.percentile h 100.);
  Alcotest.(check (float 1e-9)) "min" 1. (Histogram.min h);
  Alcotest.(check (float 1e-9)) "max" 100. (Histogram.max h)

let test_histogram_extremes () =
  let h = Histogram.create () in
  Histogram.observe h 0.;
  Histogram.observe h (-5.);
  Histogram.observe h 1e30;
  Alcotest.(check int) "count" 3 (Histogram.count h);
  (* 0 and -5 share the lowest bucket; 1e30 gets its own. *)
  Alcotest.(check int) "two buckets" 2 (List.length (Histogram.buckets h));
  Alcotest.(check (float 0.)) "min tracks negatives" (-5.) (Histogram.min h)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let sample_tracer () =
  let t, now = make_tracer () in
  let root = Tracer.start t ~track:"tm" "txn" in
  Tracer.set_attr t root "scheme" "deferred";
  now := 1.5;
  let q = Tracer.start t ~parent:root ~track:"tm" "query" in
  now := 2.25;
  Tracer.instant t ~track:"server-1" ~attrs:[ ("record", "prepared") ] "wal.force";
  now := 3.;
  Tracer.finish t q;
  now := 4.;
  Tracer.finish t root;
  (* One deliberately open span, and a name needing JSON escaping. *)
  ignore (Tracer.start t ~track:"tm" "odd \"name\"\n");
  t

let test_chrome_export_well_formed () =
  let t = sample_tracer () in
  let rendered = Export.to_chrome t in
  match Json.parse rendered with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok doc ->
    let events =
      match Json.(member "traceEvents" doc) with
      | Ok (Json.List l) -> l
      | _ -> Alcotest.fail "traceEvents missing"
    in
    (* 4 spans (one open, one instant) + thread_name metadata per track. *)
    let phase e =
      match Json.(member "ph" e) with Ok (Json.String s) -> s | _ -> "?"
    in
    let count p = List.length (List.filter (fun e -> phase e = p) events) in
    Alcotest.(check int) "complete spans" 3 (count "X");
    Alcotest.(check int) "instants" 1 (count "i");
    Alcotest.(check int) "track metadata" 2 (count "M");
    (* Timestamps are microseconds: the query span starts at 1.5ms. *)
    let query_ts =
      List.find_map
        (fun e ->
          match (Json.member "name" e, Json.member "ts" e) with
          | Ok (Json.String "query"), Ok (Json.Int ts) -> Some ts
          | _ -> None)
        events
    in
    Alcotest.(check (option int)) "ts in us" (Some 1500) query_ts

let test_jsonl_export () =
  let t = sample_tracer () in
  let lines =
    Export.to_jsonl t |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per span" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "jsonl line does not parse: %s (%s)" e line
      | Ok _ -> ())
    lines;
  (* The open span must carry a null end_ms. *)
  let has_null_end =
    List.exists
      (fun line ->
        match Json.parse line with
        | Ok doc -> Json.member "end_ms" doc = Ok Json.Null
        | Error _ -> false)
      lines
  in
  Alcotest.(check bool) "open span end_ms is null" true has_null_end

let test_sim_trace_jsonl () =
  let trace = Cloudtx_sim.Trace.create () in
  Cloudtx_sim.Trace.record trace ~time:1.
    (Cloudtx_sim.Trace.Send { src = "a"; dst = "b"; label = "m \"x\"" });
  Cloudtx_sim.Trace.record trace ~time:2.
    (Cloudtx_sim.Trace.Mark { node = "a"; label = "sync" });
  let lines =
    Cloudtx_sim.Trace.to_jsonl trace
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "trace jsonl does not parse: %s (%s)" e line
      | Ok _ -> ())
    lines

let test_registry_json () =
  let r = Registry.create () in
  Registry.incr r "txn_total" [ ("outcome", "commit") ];
  Registry.set_gauge r "depth" [] 2.;
  Registry.observe r "lat \"ms\"" [ ("s", "a") ] 3.;
  match Json.parse (Registry.to_json r) with
  | Error e -> Alcotest.failf "metrics json does not parse: %s" e
  | Ok (Json.List series) ->
    Alcotest.(check int) "three series" 3 (List.length series)
  | Ok _ -> Alcotest.fail "expected a JSON array"

let test_json_number_rendering () =
  Alcotest.(check string) "integral floats stay short" "42" (Obs_json.number 42.);
  Alcotest.(check string) "nan is null" "null" (Obs_json.number Float.nan);
  Alcotest.(check string) "inf is null" "null" (Obs_json.number Float.infinity);
  Alcotest.(check string) "escaping" "\"a\\\"b\\n\"" (Obs_json.quote "a\"b\n")

let test_prometheus_export () =
  let r = Registry.create () in
  Registry.incr r "txn_total" [ ("outcome", "commit") ];
  Registry.set_gauge r "sim.pending_events" [] 3.;
  Registry.observe r "lat" [ ("s", "a\"b") ] 0.5;
  Registry.observe r "lat" [ ("s", "a\"b") ] 3.;
  let expected =
    String.concat "\n"
      [
        (* Histograms render cumulative buckets, +Inf, _sum and _count;
           label values are escaped, metric names sanitised to the
           Prometheus charset, HELP emitted for the known vocabulary. *)
        "# TYPE lat histogram";
        "lat_bucket{s=\"a\\\"b\",le=\"0.5\"} 1";
        "lat_bucket{s=\"a\\\"b\",le=\"4\"} 2";
        "lat_bucket{s=\"a\\\"b\",le=\"+Inf\"} 2";
        "lat_sum{s=\"a\\\"b\"} 3.5";
        "lat_count{s=\"a\\\"b\"} 2";
        "# HELP sim_pending_events Discrete-event engine queue depth.";
        "# TYPE sim_pending_events gauge";
        "sim_pending_events 3";
        "# HELP txn_total Finished transactions, by outcome, scheme and consistency.";
        "# TYPE txn_total counter";
        "txn_total{outcome=\"commit\"} 1";
        "";
      ]
  in
  Alcotest.(check string) "text exposition format" expected
    (Registry.to_prometheus r)

let test_prometheus_empty_histogram_sum () =
  let r = Registry.create () in
  Registry.set_gauge r "g" [] 0.25;
  Alcotest.(check string) "non-integral gauge" "# TYPE g gauge\ng 0.25\n"
    (Registry.to_prometheus r);
  Alcotest.(check string) "empty registry" "" (Registry.to_prometheus (Registry.create ()))

(* Whatever the backend, the Prometheus rendering must be internally
   consistent: cumulative non-decreasing _bucket series, +Inf == _count,
   and _sum the exact running sum (both backends track it exactly). *)
let test_prometheus_backend_consistency () =
  List.iter
    (fun backend ->
      let what =
        match backend with
        | Histogram.Exact -> "exact"
        | Histogram.Sketch -> "sketch"
      in
      let r = Registry.create ~histogram:backend () in
      let values = List.init 200 (fun i -> 0.25 *. float_of_int (i + 1)) in
      List.iter (Registry.observe r "lat" []) values;
      let lines =
        Registry.to_prometheus r |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "" && l.[0] <> '#')
      in
      let value_of line =
        match String.rindex_opt line ' ' with
        | Some i ->
          String.sub line (i + 1) (String.length line - i - 1)
          |> float_of_string
        | None -> Alcotest.failf "%s: unparsable line %s" what line
      in
      let starts p l = String.length l >= String.length p
                       && String.sub l 0 (String.length p) = p in
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i =
          i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
        in
        go 0
      in
      let buckets = List.filter (starts "lat_bucket") lines in
      Alcotest.(check bool) (what ^ ": has buckets") true (buckets <> []);
      let counts = List.map value_of buckets in
      ignore
        (List.fold_left
           (fun prev c ->
             if c < prev then
               Alcotest.failf "%s: cumulative buckets decreased" what;
             c)
           0. counts);
      let count = value_of (List.find (starts "lat_count") lines) in
      let sum = value_of (List.find (starts "lat_sum") lines) in
      let inf =
        List.find (fun l -> starts "lat_bucket" l && contains l "+Inf") lines
        |> value_of
      in
      Alcotest.(check (float 0.)) (what ^ ": +Inf bucket = count") count inf;
      Alcotest.(check (float 0.))
        (what ^ ": every observation below some finite bucket")
        count
        (List.nth counts (List.length counts - 2));
      Alcotest.(check (float 1e-6)) (what ^ ": sum exact")
        (List.fold_left ( +. ) 0. values)
        sum;
      Alcotest.(check int) (what ^ ": count") (List.length values)
        (int_of_float count))
    [ Histogram.Exact; Histogram.Sketch ]

(* The sketch backend answers the same questions as the exact one, at
   bounded memory. *)
let test_histogram_sketch_backend () =
  let h = Histogram.create ~backend:Histogram.Sketch () in
  let values = List.init 1000 (fun i -> float_of_int (i + 1)) in
  List.iter (Histogram.observe h) values;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum exact" 500_500. (Histogram.sum h);
  Alcotest.(check (float 0.)) "max exact" 1000. (Histogram.max h);
  let p50 = Histogram.percentile h 50. in
  Alcotest.(check bool) "p50 within sketch bound" true
    (Float.abs (p50 -. 500.5) <= 500.5 /. 64.);
  Alcotest.(check bool) "samples absent" true (Histogram.samples h = None);
  Alcotest.(check bool) "sketch exposed" true (Histogram.sketch h <> None);
  (* Bounded retention vs the exact backend's linear growth. *)
  let words_at n =
    let h = Histogram.create ~backend:Histogram.Sketch () in
    for i = 1 to n do
      Histogram.observe h (float_of_int (i mod 1000) +. 0.5)
    done;
    Histogram.retained_words h
  in
  Alcotest.(check int) "retention flat from 10k to 50k" (words_at 10_000)
    (words_at 50_000);
  let exact = Histogram.create () in
  List.iter (Histogram.observe exact) values;
  Alcotest.(check bool) "exact backend retains every sample" true
    (Histogram.retained_words exact > 1000)

(* ------------------------------------------------------------------ *)
(* Wiring: simulator clock feeds spans                                 *)
(* ------------------------------------------------------------------ *)

let test_transport_tracing () =
  let transport =
    Cloudtx_sim.Transport.create
      ~latency:(Cloudtx_sim.Latency.Constant 2.) ~label_of:(fun l -> l) ()
  in
  Alcotest.(check bool) "off by default" false
    (Tracer.enabled (Cloudtx_sim.Transport.tracer transport));
  let tracer = Cloudtx_sim.Transport.enable_tracing transport in
  let tracer' = Cloudtx_sim.Transport.enable_tracing transport in
  Alcotest.(check bool) "enable is idempotent" true (tracer == tracer');
  Cloudtx_sim.Transport.register transport "b" (fun ~src:_ _ -> ());
  Cloudtx_sim.Transport.send transport ~src:"a" ~dst:"b" "hello";
  ignore (Cloudtx_sim.Transport.run transport);
  let names = List.map (fun s -> (s.Tracer.name, s.Tracer.start)) (Tracer.spans tracer) in
  Alcotest.(check bool) "send instant at t=0" true (List.mem ("send", 0.) names);
  Alcotest.(check bool) "recv instant at sim time 2" true (List.mem ("recv", 2.) names)

(* ------------------------------------------------------------------ *)
(* Wiring: staleness gauges and wait-die span links                    *)
(* ------------------------------------------------------------------ *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Transport = Cloudtx_sim.Transport
module Latency = Cloudtx_sim.Latency
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Value = Cloudtx_store.Value

let test_policy_staleness_gauges () =
  (* One publication, propagated to s1 immediately and never to s2: the
     master-version gauge records the new version, the per-server
     staleness gauge resets to 0 where the propagation lands and keeps
     the lag where it does not. *)
  let cluster =
    Cluster.create
      ~servers:
        [
          Cluster.server_spec ~name:"s1" ~items:[ ("k", Value.Int 0) ] ();
          Cluster.server_spec ~name:"s2" ~items:[ ("j", Value.Int 0) ] ();
        ]
      ~domains:[ ("d", []) ] ()
  in
  let reg = Transport.enable_metrics (Cluster.transport cluster) in
  ignore
    (Cluster.publish cluster ~domain:"d"
       ~delay:(`Fixed (fun name -> if name = "s1" then 0. else Float.infinity))
       []);
  ignore (Cluster.run cluster);
  Alcotest.(check (option (float 0.)))
    "master version" (Some 2.)
    (Registry.gauge reg "policy_master_version" [ ("domain", "d") ]);
  Alcotest.(check (option (float 0.)))
    "updated replica is current" (Some 0.)
    (Registry.gauge reg "policy_staleness" [ ("server", "s1"); ("domain", "d") ]);
  Alcotest.(check (option (float 0.)))
    "unreached replica trails by one" (Some 1.)
    (Registry.gauge reg "policy_staleness" [ ("server", "s2"); ("domain", "d") ])

let test_wait_die_kill_links_spans () =
  (* Three transactions contend on key [k]: [y] (youngest) grabs it while
     the two older ones are busy on server-2, so both park behind it.
     When [y] releases, the oldest waiter is promoted and the other —
     younger than the new holder — is killed by wait-die.  Its
     [lock.wait] span must close with outcome "die" and a [killed_by]
     attribute linking it to the releasing transaction's [txn] span. *)
  let cluster =
    Cluster.create
      ~latency:(Latency.Constant 1.)
      ~servers:
        [
          Cluster.server_spec ~name:"server-1" ~items:[ ("k", Value.Int 0) ] ();
          Cluster.server_spec ~name:"server-2"
            ~items:[ ("j1", Value.Int 0); ("j2", Value.Int 0) ]
            ();
        ]
      ~domains:[ ("d", []) ] ()
  in
  let transport = Cluster.transport cluster in
  let tracer = Transport.enable_tracing transport in
  let config =
    Manager.config Cloudtx_core.Scheme.Deferred Cloudtx_core.Consistency.View
  in
  let two_step id warmup =
    Transaction.make ~id ~subject:"s"
      [
        Query.make ~id:(id ^ "-q1") ~server:"server-2"
          ~writes:[ (warmup, Value.Set (Value.Int 1)) ]
          ();
        Query.make ~id:(id ^ "-q2") ~server:"server-1"
          ~writes:[ ("k", Value.Set (Value.Int 2)) ]
          ();
      ]
  in
  let direct id =
    Transaction.make ~id ~subject:"s"
      [
        Query.make ~id:(id ^ "-q1") ~server:"server-1"
          ~writes:[ ("k", Value.Set (Value.Int 3)) ]
          ();
      ]
  in
  let submit delay txn =
    Transport.at transport ~delay (fun () ->
        Manager.submit cluster config txn ~on_done:(fun _ -> ()))
  in
  submit 0. (two_step "o1" "j1");
  submit 0.3 (two_step "o2" "j2");
  submit 0.9 (direct "y");
  ignore (Cluster.run cluster);
  let spans = Tracer.spans tracer in
  let killed =
    List.filter
      (fun s ->
        s.Tracer.name = "lock.wait"
        && List.assoc_opt "outcome" s.Tracer.attrs = Some "die")
      spans
  in
  Alcotest.(check bool) "a parked waiter was killed" true (killed <> []);
  List.iter
    (fun s ->
      match List.assoc_opt "killed_by" s.Tracer.attrs with
      | None -> Alcotest.fail "killed lock.wait span lacks killed_by"
      | Some killer ->
        Alcotest.(check string) "killed by the releasing transaction" "y" killer;
        Alcotest.(check bool) "killer has a txn span" true
          (List.exists
             (fun t ->
               t.Tracer.name = "txn"
               && List.assoc_opt "txn" t.Tracer.attrs = Some killer)
             spans))
    killed;
  (* The Chrome export draws the same link as a flow-event pair. *)
  match Json.parse (Export.to_chrome tracer) with
  | Error e -> Alcotest.failf "chrome export does not parse: %s" e
  | Ok doc ->
    let events =
      match Json.(member "traceEvents" doc) with
      | Ok (Json.List l) -> l
      | _ -> Alcotest.fail "traceEvents missing"
    in
    let flows ph =
      List.filter_map
        (fun e ->
          match (Json.member "name" e, Json.member "ph" e, Json.member "id" e)
          with
          | Ok (Json.String "killed_by"), Ok (Json.String p), Ok id when p = ph
            ->
            Some id
          | _ -> None)
        events
    in
    let starts = flows "s" and finishes = flows "f" in
    Alcotest.(check int)
      "one flow start per kill" (List.length killed) (List.length starts);
    Alcotest.(check bool) "flow ids pair up" true
      (List.sort compare starts = List.sort compare finishes)

(* ------------------------------------------------------------------ *)
(* Journal buffer cap                                                  *)
(* ------------------------------------------------------------------ *)

module Journal = Cloudtx_obs.Journal

let test_journal_buffer_cap () =
  let journal = Journal.create ~clock:(fun () -> 0.) ~max_buffer_bytes:512 () in
  let observed = ref 0 and last_seq = ref 0 and drop_calls = ref 0 in
  Journal.add_observer journal (fun ~seq ~time_ms:_ ~node:_ ~dir:_ ~payload:_ ->
      incr observed;
      last_seq := seq);
  Journal.set_on_drop journal (fun n -> drop_calls := !drop_calls + n);
  for i = 1 to 100 do
    Journal.record journal ~node:"n" ~dir:"input"
      ~payload:(Printf.sprintf {|{"i":%d}|} i)
  done;
  Alcotest.(check int) "every record was appended" 100 (Journal.length journal);
  Alcotest.(check bool) "the cap evicted records" true (Journal.dropped journal > 0);
  Alcotest.(check int) "on_drop accounts for every eviction"
    (Journal.dropped journal) !drop_calls;
  (* Eviction never touches the observer stream... *)
  Alcotest.(check int) "observer saw every record" 100 !observed;
  Alcotest.(check int) "in order" 100 !last_seq;
  (* ...only the in-memory buffer: the oldest records are gone, the
     newest and the header survive, and the seq gap is visible. *)
  let dump = Journal.to_string journal in
  let lines =
    String.split_on_char '\n' dump |> List.filter (fun l -> l <> "")
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header survives" true
    (contains (List.hd lines) {|"journal":"cloudtx"|});
  Alcotest.(check bool) "oldest record evicted" false (contains dump {|"seq":1,|});
  Alcotest.(check bool) "newest record kept" true (contains dump {|"seq":100,|});
  Alcotest.(check int) "buffer holds what the cap allows"
    (100 - Journal.dropped journal)
    (List.length lines - 1)

let test_journal_cap_never_affects_file () =
  let path = Filename.temp_file "cloudtx_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let journal =
        Journal.create ~clock:(fun () -> 0.) ~max_buffer_bytes:256 ~path ()
      in
      for i = 1 to 50 do
        Journal.record journal ~node:"n" ~dir:"input"
          ~payload:(Printf.sprintf {|{"i":%d}|} i)
      done;
      Journal.close journal;
      Alcotest.(check bool) "records were evicted in memory" true
        (Journal.dropped journal > 0);
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int) "write-through file keeps every line" 51 !n)

let test_binary_cap_charges_encoded_bytes () =
  (* The byte cap charges the actual encoded frame bytes, so eviction
     must leave exactly the maximal suffix of frames whose encoded
     sizes fit the cap. *)
  let cap = 600 in
  let journal =
    Journal.create ~clock:(fun () -> 0.) ~format:Journal.Binary
      ~max_buffer_bytes:cap ()
  in
  let payload i = String.make ((i mod 17) + 3) 'x' in
  for i = 1 to 100 do
    Journal.record journal ~node:"n" ~dir:"input" ~payload:(payload i)
  done;
  Alcotest.(check bool) "the cap evicted frames" true (Journal.dropped journal > 0);
  (* Re-encode every record standalone to learn its exact frame size,
     then compute the expected survivor suffix. *)
  let size i =
    let buf = Buffer.create 64 in
    Journal.encode_frame buf ~seq:i ~time_ms:0. ~node:"n" ~dir:"input"
      ~emit:(fun w -> Cloudtx_obs.Wbuf.str w (payload i));
    Buffer.length buf
  in
  let expected_dropped = ref 0 and total = ref 0 in
  for i = 100 downto 1 do
    total := !total + size i;
    if !total > cap && !expected_dropped = 0 then expected_dropped := i
  done;
  Alcotest.(check int) "dropped is exact for encoded bytes" !expected_dropped
    (Journal.dropped journal);
  let dump = Journal.to_string journal in
  (match Journal.decode_binary dump with
  | Error why -> Alcotest.failf "buffered journal undecodable: %s" why
  | Ok d ->
    Alcotest.(check int) "survivors are the contiguous tail"
      (!expected_dropped + 1)
      (List.hd d.Journal.frames).Journal.seq;
    let buffered =
      String.length dump
      - String.length (Journal.binary_header ~version:Journal.format_version)
    in
    Alcotest.(check bool) "buffered frame bytes fit the cap" true
      (buffered <= cap))

let test_record_frame_needs_binary () =
  (* record_frame is the binary fast path; a JSONL journal must reject
     raw frame bytes loudly rather than journal garbage. *)
  let journal = Journal.create ~clock:(fun () -> 0.) () in
  Alcotest.check_raises "JSONL journal rejects record_frame"
    (Invalid_argument "Journal.record_frame: JSONL journal") (fun () ->
      Journal.record_frame journal ~node:"n" ~dir:"input" ~emit:(fun _ -> ()));
  (* Disabled journal: no dispatch, no emit. *)
  Journal.record_frame Journal.noop ~node:"n" ~dir:"input" ~emit:(fun _ ->
      Alcotest.fail "emit ran on a disabled journal")

let test_journal_dropped_counter_wired () =
  (* Through the transport: evictions land on the registry's
     journal.dropped counter. *)
  let cluster =
    Cluster.create
      ~servers:[ Cluster.server_spec ~name:"s1" ~items:[ ("k", Value.Int 0) ] () ]
      ~domains:[ ("d", []) ] ()
  in
  let transport = Cluster.transport cluster in
  let reg = Transport.enable_metrics transport in
  let journal = Transport.enable_journal ~max_buffer_bytes:512 transport in
  let config =
    Manager.config Cloudtx_core.Scheme.Deferred Cloudtx_core.Consistency.View
  in
  let txn =
    Transaction.make ~id:"t1" ~subject:"s"
      [
        Query.make ~id:"q1" ~server:"s1"
          ~writes:[ ("k", Value.Set (Value.Int 1)) ]
          ();
      ]
  in
  ignore (Manager.run_one cluster config txn);
  Alcotest.(check bool) "the run overflowed the cap" true
    (Journal.dropped journal > 0);
  Alcotest.(check int) "journal.dropped counter tracks evictions"
    (Journal.dropped journal)
    (Registry.counter_total reg "journal.dropped")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span ordering" `Quick test_span_ordering;
          Alcotest.test_case "finish idempotent" `Quick test_finish_idempotent;
          Alcotest.test_case "instants and open spans" `Quick test_instant_and_open;
          Alcotest.test_case "disabled fast path" `Quick test_disabled_tracer;
        ] );
      ( "registry",
        [
          Alcotest.test_case "label canonicalization" `Quick
            test_label_canonicalization;
          Alcotest.test_case "cells" `Quick test_registry_cells;
          Alcotest.test_case "series sorted" `Quick test_registry_series_sorted;
          Alcotest.test_case "disabled fast path" `Quick test_disabled_registry;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "exact percentiles" `Quick
            test_histogram_percentiles_exact;
          Alcotest.test_case "extremes" `Quick test_histogram_extremes;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome well-formed" `Quick
            test_chrome_export_well_formed;
          Alcotest.test_case "jsonl" `Quick test_jsonl_export;
          Alcotest.test_case "sim trace jsonl" `Quick test_sim_trace_jsonl;
          Alcotest.test_case "registry json" `Quick test_registry_json;
          Alcotest.test_case "number rendering" `Quick test_json_number_rendering;
          Alcotest.test_case "prometheus text format" `Quick
            test_prometheus_export;
          Alcotest.test_case "prometheus corner cases" `Quick
            test_prometheus_empty_histogram_sum;
          Alcotest.test_case "prometheus backend consistency" `Quick
            test_prometheus_backend_consistency;
          Alcotest.test_case "sketch histogram backend" `Quick
            test_histogram_sketch_backend;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "transport tracing" `Quick test_transport_tracing;
          Alcotest.test_case "policy staleness gauges" `Quick
            test_policy_staleness_gauges;
          Alcotest.test_case "wait-die kill links spans" `Quick
            test_wait_die_kill_links_spans;
        ] );
      ( "journal",
        [
          Alcotest.test_case "buffer cap drops oldest" `Quick
            test_journal_buffer_cap;
          Alcotest.test_case "cap never affects the file" `Quick
            test_journal_cap_never_affects_file;
          Alcotest.test_case "binary cap charges encoded bytes" `Quick
            test_binary_cap_charges_encoded_bytes;
          Alcotest.test_case "record_frame needs a binary journal" `Quick
            test_record_frame_needs_binary;
          Alcotest.test_case "dropped counter wired" `Quick
            test_journal_dropped_counter_wired;
        ] );
    ]
