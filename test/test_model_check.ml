(* Model checking the commit-protocol state machines.

   The {!Cloudtx_txn.Tpc} machines are pure: given the votes, the only
   runtime nondeterminism is the order in which in-flight messages are
   delivered.  This suite explores that nondeterminism directly —
   exhaustively for small configurations, by seeded random sampling for
   larger ones — and checks the textbook correctness properties on every
   reachable terminal state:

   - AC1 (agreement): no two participants settle different decisions;
   - AC2 (validity): commit iff every participant voted YES;
   - AC3 (stability): the coordinator decides exactly once;
   - termination: with every message delivered, every machine finishes.

   {!Cloudtx_core.Validation} is checked for reply-order invariance: the
   resolution of a voting round must not depend on arrival order. *)

module Tpc = Cloudtx_txn.Tpc
module Validation = Cloudtx_core.Validation
module Policy = Cloudtx_policy.Policy
module Splitmix = Cloudtx_sim.Splitmix

(* ------------------------------------------------------------------ *)
(* 2PC delivery-order exploration                                      *)
(* ------------------------------------------------------------------ *)

type flight = { src : [ `Coordinator | `Node of string ]; dst : [ `Coordinator | `Node of string ]; msg : Tpc.msg }

type verdict = {
  outcome : bool;
  applied : (string * bool) list;
  decided_times : int;
}

(* Run one complete instance delivering in-flight messages according to
   [choose], which picks an index into the current flight list. *)
let run_once variant ~votes ~choose =
  let names = List.map fst votes in
  let coord = Tpc.coordinator ~txn:"t" ~participants:names variant in
  let parts = List.map (fun n -> (n, Tpc.participant ~txn:"t" ~name:n variant)) names in
  let flight = ref [] in
  let applied = ref [] in
  let decided_times = ref 0 in
  let outcome = ref None in
  let absorb src actions =
    List.iter
      (fun a ->
        match a with
        | Tpc.Send { dst; msg } -> flight := !flight @ [ { src; dst; msg } ]
        | Tpc.Apply commit -> (
          match src with
          | `Node n -> applied := (n, commit) :: !applied
          | `Coordinator -> assert false)
        | Tpc.Outcome o ->
          incr decided_times;
          outcome := Some o
        | Tpc.Force_log _ | Tpc.Write_log _ | Tpc.Done -> ())
      actions
  in
  absorb `Coordinator (Tpc.coord_start coord);
  let steps = ref 0 in
  while !flight <> [] do
    incr steps;
    if !steps > 1000 then failwith "model check: no termination";
    let i = choose (List.length !flight) in
    let m = List.nth !flight i in
    flight := List.filteri (fun j _ -> j <> i) !flight;
    match (m.dst, m.msg) with
    | `Node n, Tpc.Vote_request ->
      let p = List.assoc n parts in
      absorb (`Node n) (Tpc.part_on_vote_request p ~vote:(List.assoc n votes))
    | `Node n, Tpc.Decision commit ->
      let p = List.assoc n parts in
      absorb (`Node n) (Tpc.part_on_decision p ~commit)
    | `Coordinator, Tpc.Vote yes ->
      let from = match m.src with `Node n -> n | `Coordinator -> assert false in
      absorb `Coordinator (Tpc.coord_on_vote coord ~from ~yes)
    | `Coordinator, Tpc.Ack ->
      let from = match m.src with `Node n -> n | `Coordinator -> assert false in
      absorb `Coordinator (Tpc.coord_on_ack coord ~from)
    | `Node _, (Tpc.Vote _ | Tpc.Ack) | `Coordinator, (Tpc.Vote_request | Tpc.Decision _)
      ->
      assert false
  done;
  match !outcome with
  | None -> failwith "model check: protocol ended without a decision"
  | Some o -> { outcome = o; applied = !applied; decided_times = !decided_times }

let check_verdict ~votes v =
  let expect = List.for_all snd votes in
  (* AC2: validity. *)
  Alcotest.(check bool) "outcome = all-yes" expect v.outcome;
  (* AC3: single decision. *)
  Alcotest.(check int) "decided once" 1 v.decided_times;
  (* AC1: agreement — every applied decision equals the outcome, except a
     NO voter's unilateral abort under a global abort (same decision). *)
  List.iter
    (fun (n, commit) ->
      if commit <> v.outcome then
        Alcotest.failf "participant %s applied %b against outcome %b" n commit
          v.outcome)
    v.applied;
  (* Termination / completeness: every participant settled exactly once. *)
  let settled = List.sort_uniq compare (List.map fst v.applied) in
  Alcotest.(check int) "every participant settled once"
    (List.length votes) (List.length v.applied);
  Alcotest.(check int) "no double-settle" (List.length votes)
    (List.length settled)

(* Enumerate every delivery order exhaustively with a DFS over choice
   prefixes, replaying from scratch per path. Returns explored count. *)
let explore_exhaustive variant ~votes =
  let explored = ref 0 in
  (* A path is a list of chosen indices; extend until a run completes
     without consulting beyond the path. *)
  let rec go path =
    (* Replay with the fixed prefix; the first out-of-prefix choice point
       records the branching factor so we can enumerate siblings. *)
    let step = ref 0 in
    let pending_branch = ref None in
    let choose n =
      let k = !step in
      incr step;
      if k < List.length path then List.nth path k
      else begin
        if !pending_branch = None then pending_branch := Some (k, n);
        0
      end
    in
    let v = run_once variant ~votes ~choose in
    match !pending_branch with
    | None ->
      incr explored;
      check_verdict ~votes v
    | Some (_, n) ->
      (* The run made it to the end taking 0 at the first free choice;
         its verdict is checked when the path fully covers the run. *)
      for i = 0 to n - 1 do
        go (path @ [ i ])
      done
  in
  go [];
  !explored

let test_exhaustive_n2_commit () =
  let votes = [ ("p1", true); ("p2", true) ] in
  List.iter
    (fun variant ->
      let n = explore_exhaustive variant ~votes in
      (* Presumed-commit skips commit acks, so its state space is the
         smallest; basic/PrA interleave vote and ack deliveries. *)
      let minimum = match variant with Tpc.Presumed_commit -> 4 | _ -> 24 in
      Alcotest.(check bool)
        (Printf.sprintf "%s explored >= %d orders (got %d)"
           (Tpc.variant_name variant) minimum n)
        true (n >= minimum))
    [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]

let test_exhaustive_n2_abort () =
  List.iter
    (fun votes ->
      List.iter
        (fun variant -> ignore (explore_exhaustive variant ~votes))
        [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ])
    [
      [ ("p1", false); ("p2", true) ];
      [ ("p1", true); ("p2", false) ];
      [ ("p1", false); ("p2", false) ];
    ]

let test_sampled_n4 () =
  (* n = 4 with mixed votes: 20k seeded random delivery orders per
     variant. *)
  let votes = [ ("p1", true); ("p2", false); ("p3", true); ("p4", true) ] in
  List.iter
    (fun variant ->
      let rng = Splitmix.create 1234L in
      for _ = 1 to 20_000 do
        let v = run_once variant ~votes ~choose:(fun n -> Splitmix.int rng n) in
        check_verdict ~votes v
      done)
    [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]

let test_sampled_n5_all_yes () =
  let votes = List.init 5 (fun i -> (Printf.sprintf "p%d" i, true)) in
  let rng = Splitmix.create 77L in
  for _ = 1 to 10_000 do
    let v = run_once Tpc.Basic ~votes ~choose:(fun n -> Splitmix.int rng n) in
    check_verdict ~votes v
  done

(* ------------------------------------------------------------------ *)
(* Validation order-invariance                                         *)
(* ------------------------------------------------------------------ *)

let policy_at ~domain ~version =
  let rec bump p = if p.Policy.version >= version then p else bump (Policy.amend p []) in
  bump (Policy.create ~domain [])

let resolution_label = function
  | Validation.Abort_integrity -> "abort-integrity"
  | Validation.Abort_proof -> "abort-proof"
  | Validation.All_consistent_true -> "ok"
  | Validation.Need_update updates ->
    "update:" ^ String.concat "," (List.sort compare (List.map fst updates))

let prop_validation_order_invariant =
  (* Random reply sets delivered in random orders resolve identically. *)
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 5 in
      let* replies =
        flatten_l
          (List.init n (fun i ->
               let* integrity = bool in
               let* version = 1 -- 3 in
               return (Printf.sprintf "p%d" i, integrity, version)))
      in
      let* seed = map Int64.of_int big_nat in
      return (replies, seed))
  in
  QCheck.Test.make ~name:"validation resolution is order-invariant" ~count:300
    (QCheck.make gen)
    (fun (replies, seed) ->
      let participants = List.map (fun (p, _, _) -> p) replies in
      let resolve order =
        let v = Validation.create ~participants ~with_integrity:true () in
        List.iter
          (fun (p, integrity, version) ->
            ignore
              (Validation.add_reply v ~from:p ~integrity ~proofs:[]
                 ~policies:[ policy_at ~domain:"d" ~version ]))
          order;
        resolution_label (Validation.resolve v)
      in
      let base = resolve replies in
      (* A few seeded shuffles. *)
      let rng = Splitmix.create seed in
      let shuffle l =
        let arr = Array.of_list l in
        for i = Array.length arr - 1 downto 1 do
          let j = Splitmix.int rng (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list arr
      in
      List.for_all
        (fun _ -> String.equal base (resolve (shuffle replies)))
        [ 1; 2; 3 ])

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "model_check"
    [
      ( "tpc",
        [
          Alcotest.test_case "exhaustive n=2 commit" `Quick test_exhaustive_n2_commit;
          Alcotest.test_case "exhaustive n=2 aborts" `Quick test_exhaustive_n2_abort;
          Alcotest.test_case "sampled n=4 mixed votes" `Slow test_sampled_n4;
          Alcotest.test_case "sampled n=5 all yes" `Slow test_sampled_n5_all_yes;
        ] );
      ("validation", [ qc prop_validation_order_invariant ]);
    ]
