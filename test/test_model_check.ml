(* Model checking the commit-protocol state machines.

   The {!Cloudtx_txn.Tpc} machines are pure: given the votes, the only
   runtime nondeterminism is the order in which in-flight messages are
   delivered.  This suite explores that nondeterminism directly —
   exhaustively for small configurations, by seeded random sampling for
   larger ones — and checks the textbook correctness properties on every
   reachable terminal state:

   - AC1 (agreement): no two participants settle different decisions;
   - AC2 (validity): commit iff every participant voted YES;
   - AC3 (stability): the coordinator decides exactly once;
   - termination: with every message delivered, every machine finishes.

   {!Cloudtx_core.Validation} is checked for reply-order invariance: the
   resolution of a voting round must not depend on arrival order.

   The sans-IO {!Cloudtx_protocol.Tm_machine} / {!Cloudtx_protocol.Ps_machine}
   pair is model-checked the same way over the {e full} 2PV/2PVC protocol —
   proof validation, Update re-polls, master version retrievals and the
   decision phase included — asserting, at every reachable leaf, AC1-AC3,
   termination, delivery-order independence of the outcome, and that every
   committed run satisfies {!Cloudtx_core.Trusted.check} (the phi/psi
   trusted-transaction soundness obligation of Section V). *)

module Tpc = Cloudtx_txn.Tpc
module Validation = Cloudtx_core.Validation
module Policy = Cloudtx_policy.Policy
module Proof = Cloudtx_policy.Proof
module Splitmix = Cloudtx_sim.Splitmix
module Tm = Cloudtx_protocol.Tm_machine
module Ps = Cloudtx_protocol.Ps_machine
module Msg = Cloudtx_protocol.Message
module Scheme = Cloudtx_protocol.Scheme
module Consistency = Cloudtx_protocol.Consistency
module View = Cloudtx_protocol.View
module Outcome = Cloudtx_protocol.Outcome
module Trusted = Cloudtx_core.Trusted
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Value = Cloudtx_store.Value

(* ------------------------------------------------------------------ *)
(* 2PC delivery-order exploration                                      *)
(* ------------------------------------------------------------------ *)

type flight = { src : [ `Coordinator | `Node of string ]; dst : [ `Coordinator | `Node of string ]; msg : Tpc.msg }

type verdict = {
  outcome : bool;
  applied : (string * bool) list;
  decided_times : int;
}

(* Run one complete instance delivering in-flight messages according to
   [choose], which picks an index into the current flight list. *)
let run_once variant ~votes ~choose =
  let names = List.map fst votes in
  let coord = Tpc.coordinator ~txn:"t" ~participants:names variant in
  let parts = List.map (fun n -> (n, Tpc.participant ~txn:"t" ~name:n variant)) names in
  let flight = ref [] in
  let applied = ref [] in
  let decided_times = ref 0 in
  let outcome = ref None in
  let absorb src actions =
    List.iter
      (fun a ->
        match a with
        | Tpc.Send { dst; msg } -> flight := !flight @ [ { src; dst; msg } ]
        | Tpc.Apply commit -> (
          match src with
          | `Node n -> applied := (n, commit) :: !applied
          | `Coordinator -> assert false)
        | Tpc.Outcome o ->
          incr decided_times;
          outcome := Some o
        | Tpc.Force_log _ | Tpc.Write_log _ | Tpc.Done -> ())
      actions
  in
  absorb `Coordinator (Tpc.coord_start coord);
  let steps = ref 0 in
  while !flight <> [] do
    incr steps;
    if !steps > 1000 then failwith "model check: no termination";
    let i = choose (List.length !flight) in
    let m = List.nth !flight i in
    flight := List.filteri (fun j _ -> j <> i) !flight;
    match (m.dst, m.msg) with
    | `Node n, Tpc.Vote_request ->
      let p = List.assoc n parts in
      absorb (`Node n) (Tpc.part_on_vote_request p ~vote:(List.assoc n votes))
    | `Node n, Tpc.Decision commit ->
      let p = List.assoc n parts in
      absorb (`Node n) (Tpc.part_on_decision p ~commit)
    | `Coordinator, Tpc.Vote yes ->
      let from = match m.src with `Node n -> n | `Coordinator -> assert false in
      absorb `Coordinator (Tpc.coord_on_vote coord ~from ~yes)
    | `Coordinator, Tpc.Ack ->
      let from = match m.src with `Node n -> n | `Coordinator -> assert false in
      absorb `Coordinator (Tpc.coord_on_ack coord ~from)
    | `Node _, (Tpc.Vote _ | Tpc.Ack) | `Coordinator, (Tpc.Vote_request | Tpc.Decision _)
      ->
      assert false
  done;
  match !outcome with
  | None -> failwith "model check: protocol ended without a decision"
  | Some o -> { outcome = o; applied = !applied; decided_times = !decided_times }

let check_verdict ~votes v =
  let expect = List.for_all snd votes in
  (* AC2: validity. *)
  Alcotest.(check bool) "outcome = all-yes" expect v.outcome;
  (* AC3: single decision. *)
  Alcotest.(check int) "decided once" 1 v.decided_times;
  (* AC1: agreement — every applied decision equals the outcome, except a
     NO voter's unilateral abort under a global abort (same decision). *)
  List.iter
    (fun (n, commit) ->
      if commit <> v.outcome then
        Alcotest.failf "participant %s applied %b against outcome %b" n commit
          v.outcome)
    v.applied;
  (* Termination / completeness: every participant settled exactly once. *)
  let settled = List.sort_uniq compare (List.map fst v.applied) in
  Alcotest.(check int) "every participant settled once"
    (List.length votes) (List.length v.applied);
  Alcotest.(check int) "no double-settle" (List.length votes)
    (List.length settled)

(* Enumerate every delivery order exhaustively with a DFS over choice
   prefixes, replaying from scratch per path. Returns explored count. *)
let explore_exhaustive variant ~votes =
  let explored = ref 0 in
  (* A path is a list of chosen indices; extend until a run completes
     without consulting beyond the path. *)
  let rec go path =
    (* Replay with the fixed prefix; the first out-of-prefix choice point
       records the branching factor so we can enumerate siblings. *)
    let step = ref 0 in
    let pending_branch = ref None in
    let choose n =
      let k = !step in
      incr step;
      if k < List.length path then List.nth path k
      else begin
        if !pending_branch = None then pending_branch := Some (k, n);
        0
      end
    in
    let v = run_once variant ~votes ~choose in
    match !pending_branch with
    | None ->
      incr explored;
      check_verdict ~votes v
    | Some (_, n) ->
      (* The run made it to the end taking 0 at the first free choice;
         its verdict is checked when the path fully covers the run. *)
      for i = 0 to n - 1 do
        go (path @ [ i ])
      done
  in
  go [];
  !explored

let test_exhaustive_n2_commit () =
  let votes = [ ("p1", true); ("p2", true) ] in
  List.iter
    (fun variant ->
      let n = explore_exhaustive variant ~votes in
      (* Presumed-commit skips commit acks, so its state space is the
         smallest; basic/PrA interleave vote and ack deliveries. *)
      let minimum = match variant with Tpc.Presumed_commit -> 4 | _ -> 24 in
      Alcotest.(check bool)
        (Printf.sprintf "%s explored >= %d orders (got %d)"
           (Tpc.variant_name variant) minimum n)
        true (n >= minimum))
    [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]

let test_exhaustive_n2_abort () =
  List.iter
    (fun votes ->
      List.iter
        (fun variant -> ignore (explore_exhaustive variant ~votes))
        [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ])
    [
      [ ("p1", false); ("p2", true) ];
      [ ("p1", true); ("p2", false) ];
      [ ("p1", false); ("p2", false) ];
    ]

let test_sampled_n4 () =
  (* n = 4 with mixed votes: 20k seeded random delivery orders per
     variant. *)
  let votes = [ ("p1", true); ("p2", false); ("p3", true); ("p4", true) ] in
  List.iter
    (fun variant ->
      let rng = Splitmix.create 1234L in
      for _ = 1 to 20_000 do
        let v = run_once variant ~votes ~choose:(fun n -> Splitmix.int rng n) in
        check_verdict ~votes v
      done)
    [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]

let test_sampled_n5_all_yes () =
  let votes = List.init 5 (fun i -> (Printf.sprintf "p%d" i, true)) in
  let rng = Splitmix.create 77L in
  for _ = 1 to 10_000 do
    let v = run_once Tpc.Basic ~votes ~choose:(fun n -> Splitmix.int rng n) in
    check_verdict ~votes v
  done

(* ------------------------------------------------------------------ *)
(* Full 2PV / 2PVC: Tm_machine x Ps_machine delivery-order exploration  *)
(* ------------------------------------------------------------------ *)

let policy_at ~domain ~version =
  let rec bump p = if p.Policy.version >= version then p else bump (Policy.amend p []) in
  bump (Policy.create ~domain [])

(* The sans-IO split makes the whole protocol explorable: the harness
   below binds a {!Tm_machine} and one {!Ps_machine} per server to a pure
   fake of everything the drivers normally supply — a store that always
   executes, a policy replica reduced to a version integer, a proof
   evaluator reduced to a truth bit per server, and a master frozen at one
   version.  Every message the machines emit lands in an in-flight pool
   whose delivery order [choose] controls, so the exploration covers full
   2PVC runs with validation, Update re-polls and master retrievals —
   not just the 2PC kernel above. *)

type world = {
  w_versions : int array;  (** Initial replica version of domain "d", per server. *)
  w_master : int;  (** The master's (frozen) latest version. *)
  w_proof_ok : bool array;  (** Truth value of every proof a server evaluates. *)
  w_integrity : bool array;  (** The server's 2PC integrity vote. *)
  w_die_at : int option;  (** Execution reports a wait-die kill at this query. *)
  w_queries : int;  (** u; query [i] targets server [i mod n]. *)
}

let world ?(master = 1) ?die_at ?proof_ok ?integrity ~queries versions =
  let n = Array.length versions in
  {
    w_versions = versions;
    w_master = master;
    w_proof_ok = Option.value proof_ok ~default:(Array.make n true);
    w_integrity = Option.value integrity ~default:(Array.make n true);
    w_die_at = die_at;
    w_queries = queries;
  }

let pname i = Printf.sprintf "p%d" (i + 1)

let pindex name =
  int_of_string (String.sub name 1 (String.length name - 1)) - 1

(* Distinct servers the world's transaction involves. *)
let involved w =
  let n = Array.length w.w_versions in
  List.sort_uniq compare (List.init w.w_queries (fun i -> i mod n))

(* The outcome every delivery order must produce (AC2's analogue for
   2PVC): commit iff nothing died, every involved proof holds, every
   involved vote is YES, and the scheme's version condition is met —
   Incremental Punctual cannot reconcile stale replicas, the validating
   schemes converge via Update rounds. *)
let expected_commit w scheme level =
  let inv = involved w in
  let all f = List.for_all f inv in
  w.w_die_at = None
  && all (fun i -> w.w_proof_ok.(i))
  && all (fun i -> w.w_integrity.(i))
  &&
  match (scheme, level) with
  | Scheme.Incremental_punctual, Consistency.View ->
    all (fun i -> w.w_versions.(i) = w.w_versions.(List.hd inv))
  | Scheme.Incremental_punctual, Consistency.Global ->
    all (fun i -> w.w_versions.(i) = w.w_master)
  | (Scheme.Deferred | Scheme.Punctual | Scheme.Continuous), _ -> true

type full_verdict = {
  f_committed : bool;
  f_reason : string;
  f_finishes : int;
  f_applied : (string * bool) list;  (** (server, decision applied). *)
  f_view : View.t;
}

let run_full w ~scheme ~level ~master_mode ~choose =
  let n = Array.length w.w_versions in
  let versions = Array.copy w.w_versions in
  let queries =
    List.init w.w_queries (fun i ->
        Query.make
          ~id:(Printf.sprintf "t-q%d" (i + 1))
          ~server:(pname (i mod n))
          ~writes:[ (Printf.sprintf "k%d" i, Value.Set (Value.Int i)) ]
          ())
  in
  let txn = Transaction.make ~id:"t" ~subject:"alice" queries in
  let cfg = Tm.config ~master_mode scheme level in
  let tm = Tm.create cfg txn ~submitted_at:0. in
  let parts = Array.init n (fun i -> Ps.create ~name:(pname i) ()) in
  let flight = ref [] in
  let applied = ref [] in
  let finishes = ref 0 in
  let committed = ref false in
  let reason = ref "" in
  let post src dst msg = flight := !flight @ [ (src, dst, msg) ] in
  let fake_proof i ~query_id =
    {
      Proof.query_id;
      server = pname i;
      domain = "d";
      policy_version = versions.(i);
      evaluated_at = 0.;
      credential_ids = [];
      request = { Proof.subject = "alice"; action = "write"; items = [] };
      result = w.w_proof_ok.(i);
      failures = (if w.w_proof_ok.(i) then [] else [ Proof.Denied "modelled" ]);
    }
  in
  let rec ps_perform i a =
    match a with
    | Ps.Send { dst; msg; _ } -> post (pname i) dst msg
    | Ps.Begin_work _ -> ()
    | Ps.Exec { txn; query; evaluate; reply_to; _ } ->
      let result =
        match w.w_die_at with
        | Some k when query.Query.id = Printf.sprintf "t-q%d" (k + 1) -> Ps.Die
        | Some _ | None -> Ps.Executed []
      in
      ps_dispatch i (Ps.Exec_result { txn; query; evaluate; reply_to; result })
    | Ps.Eval { txn; queries; with_proofs; with_policies; cont; _ } ->
      let proofs =
        if with_proofs then
          List.map (fun (q : Query.t) -> fake_proof i ~query_id:q.Query.id) queries
        else []
      in
      let policies =
        if with_policies then [ policy_at ~domain:"d" ~version:versions.(i) ]
        else []
      in
      ps_dispatch i (Ps.Evaluated { txn; proofs; policies; cont })
    | Ps.Prepare { txn; _ } ->
      (* The store's prepare computes the integrity vote (proof truth is
         only logged), mirroring [Server.prepare]. *)
      ps_dispatch i (Ps.Prepared { txn; vote = w.w_integrity.(i) })
    | Ps.Check_read_only { txn; reply_to; round } ->
      (* Model transactions always write. *)
      ps_dispatch i
        (Ps.Read_only_result
           { txn; reply_to; round; read_only = false; integrity_ok = false })
    | Ps.Apply { commit; _ } -> applied := (pname i, commit) :: !applied
    | Ps.Forget _ -> ()
    | Ps.Install { policies; _ } ->
      List.iter
        (fun (p : Policy.t) ->
          if String.equal p.Policy.domain "d" then
            versions.(i) <- max versions.(i) p.Policy.version)
        policies
    | Ps.Wait_open _ | Ps.Wait_close _ | Ps.Arm_inquiry _ | Ps.Mark _ -> ()
  and ps_dispatch i input = List.iter (ps_perform i) (Ps.handle parts.(i) input) in
  let tm_perform a =
    match a with
    | Tm.Send { dst; msg } -> post (Tm.name tm) dst msg
    | Tm.Arm_watchdog _ | Tm.Arm_retry _ ->
      (* vote_timeout and decision_retry are 0: timers are never armed. *)
      assert false
    | Tm.Force_log | Tm.Mark _ | Tm.Obs _ -> ()
    | Tm.Finish { committed = c; reason = r; _ } ->
      incr finishes;
      committed := c;
      reason := Outcome.reason_name r
  in
  List.iter tm_perform (Tm.start tm);
  let steps = ref 0 in
  while !flight <> [] do
    incr steps;
    if !steps > 10_000 then failwith "full 2pvc model check: no termination";
    let k = choose (List.length !flight) in
    let src, dst, msg = List.nth !flight k in
    flight := List.filteri (fun j _ -> j <> k) !flight;
    if String.equal dst "master" then (
      match msg with
      | Msg.Master_version_request { txn } ->
        post "master" src
          (Msg.Master_version_reply
             { txn; policies = [ policy_at ~domain:"d" ~version:w.w_master ] })
      | _ -> assert false)
    else if String.equal dst (Tm.name tm) then
      List.iter tm_perform (Tm.handle tm (Tm.Deliver { src; msg }))
    else ps_dispatch (pindex dst) (Ps.Deliver { src; msg })
  done;
  if !finishes = 0 then failwith "full 2pvc model check: no decision";
  {
    f_committed = !committed;
    f_reason = !reason;
    f_finishes = !finishes;
    f_applied = !applied;
    f_view = Tm.view tm;
  }

let check_full_verdict w ~scheme ~level v =
  let ctx =
    Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
  in
  (* AC3: the TM decides exactly once. *)
  if v.f_finishes <> 1 then
    Alcotest.failf "%s: decided %d times" ctx v.f_finishes;
  (* AC2 analogue: the outcome is a function of the world, never of the
     delivery order. *)
  let expect = expected_commit w scheme level in
  if v.f_committed <> expect then
    Alcotest.failf "%s: committed %b (reason %s), expected %b" ctx
      v.f_committed v.f_reason expect;
  (* AC1: every applied decision agrees with the TM's. *)
  List.iter
    (fun (server, commit) ->
      if commit <> v.f_committed then
        Alcotest.failf "%s: %s applied %b against outcome %b" ctx server commit
          v.f_committed)
    v.f_applied;
  let appliers = List.map fst v.f_applied in
  if List.length (List.sort_uniq compare appliers) <> List.length appliers then
    Alcotest.failf "%s: a server settled twice" ctx;
  if v.f_committed then begin
    (* Termination/completeness: a commit reaches every involved server. *)
    if List.length v.f_applied <> List.length (involved w) then
      Alcotest.failf "%s: commit applied at %d of %d servers" ctx
        (List.length v.f_applied)
        (List.length (involved w));
    (* Soundness: every committed leaf satisfies the scheme's own
       trusted-transaction definition (phi under view, psi under global). *)
    match
      Trusted.check scheme ~level
        ~latest:(fun _domain -> Some w.w_master)
        v.f_view
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%s: committed but untrusted: %s" ctx e
  end

(* DFS over delivery orders: run the all-zeros continuation of [prefix]
   once, record the branching factor of every free choice point, then
   recurse on each unexplored sibling.  Each leaf replays exactly once. *)
let explore_full ~run ~check =
  let explored = ref 0 in
  let rec go prefix =
    let free = ref [] in
    let step = ref 0 in
    let choose n =
      let k = !step in
      incr step;
      if k < Array.length prefix then prefix.(k)
      else begin
        free := n :: !free;
        0
      end
    in
    let v = run ~choose in
    incr explored;
    check v;
    let free = List.rev !free in
    List.iteri
      (fun j n ->
        for i = 1 to n - 1 do
          let zeros = Array.make j 0 in
          go (Array.concat [ prefix; zeros; [| i |] ])
        done)
      free
  in
  go [||];
  !explored

let full_worlds =
  [
    ("clean", world ~queries:2 [| 1; 1 |]);
    ("stale-replica", world ~queries:2 ~master:3 [| 1; 2 |]);
    ("proof-false", world ~queries:2 ~proof_ok:[| true; false |] [| 1; 1 |]);
    ("integrity-no", world ~queries:2 ~integrity:[| true; false |] [| 1; 1 |]);
    ("wait-die", world ~queries:2 ~die_at:1 [| 1; 1 |]);
    ("single-server", world ~queries:2 ~master:2 [| 2 |]);
  ]

let all_combos =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level))
        [ Consistency.View; Consistency.Global ])
    Scheme.all

let test_full_2pvc_exhaustive_n2 () =
  let total = ref 0 in
  List.iter
    (fun (wname, w) ->
      List.iter
        (fun (scheme, level) ->
          let explored =
            explore_full
              ~run:(run_full w ~scheme ~level ~master_mode:`Every_round)
              ~check:(check_full_verdict w ~scheme ~level)
          in
          if explored < 1 then
            Alcotest.failf "%s/%s/%s: nothing explored" wname
              (Scheme.name scheme) (Consistency.name level);
          total := !total + explored)
        all_combos)
    full_worlds;
  (* Sanity: the exploration is genuinely branching, not a single trace
     per configuration (48 configurations in all). *)
  Alcotest.(check bool)
    (Printf.sprintf "explored a real state space (%d leaves)" !total)
    true (!total > 2_000)

let test_full_2pvc_exhaustive_master_once () =
  (* `Once master retrieval changes the fetch pattern, not the outcome. *)
  let w = List.assoc "stale-replica" full_worlds in
  List.iter
    (fun scheme ->
      ignore
        (explore_full
           ~run:(run_full w ~scheme ~level:Consistency.Global ~master_mode:`Once)
           ~check:(check_full_verdict w ~scheme ~level:Consistency.Global)))
    Scheme.all

let test_full_2pvc_sampled_n4 () =
  (* Four servers, four queries, skewed replicas and a mixed-vote world:
     seeded random delivery orders across every scheme x level. *)
  let worlds =
    [
      world ~queries:4 ~master:3 [| 1; 2; 3; 1 |];
      world ~queries:4 ~master:2
        ~integrity:[| true; true; false; true |]
        [| 2; 2; 2; 2 |];
      world ~queries:4 ~master:2 ~proof_ok:[| true; true; true; false |]
        [| 1; 1; 2; 2 |];
    ]
  in
  List.iter
    (fun w ->
      List.iter
        (fun (scheme, level) ->
          let rng = Splitmix.create 4242L in
          for _ = 1 to 400 do
            let v =
              run_full w ~scheme ~level ~master_mode:`Every_round
                ~choose:(fun n -> Splitmix.int rng n)
            in
            check_full_verdict w ~scheme ~level v
          done)
        all_combos)
    worlds

(* ------------------------------------------------------------------ *)
(* Validation order-invariance                                         *)
(* ------------------------------------------------------------------ *)

let resolution_label = function
  | Validation.Abort_integrity -> "abort-integrity"
  | Validation.Abort_proof -> "abort-proof"
  | Validation.All_consistent_true -> "ok"
  | Validation.Need_update updates ->
    "update:" ^ String.concat "," (List.sort compare (List.map fst updates))

let prop_validation_order_invariant =
  (* Random reply sets delivered in random orders resolve identically. *)
  let gen =
    QCheck.Gen.(
      let* n = 2 -- 5 in
      let* replies =
        flatten_l
          (List.init n (fun i ->
               let* integrity = bool in
               let* version = 1 -- 3 in
               return (Printf.sprintf "p%d" i, integrity, version)))
      in
      let* seed = map Int64.of_int big_nat in
      return (replies, seed))
  in
  QCheck.Test.make ~name:"validation resolution is order-invariant" ~count:300
    (QCheck.make gen)
    (fun (replies, seed) ->
      let participants = List.map (fun (p, _, _) -> p) replies in
      let resolve order =
        let v = Validation.create ~participants ~with_integrity:true () in
        List.iter
          (fun (p, integrity, version) ->
            ignore
              (Validation.add_reply v ~from:p ~integrity ~proofs:[]
                 ~policies:[ policy_at ~domain:"d" ~version ]))
          order;
        resolution_label (Validation.resolve v)
      in
      let base = resolve replies in
      (* A few seeded shuffles. *)
      let rng = Splitmix.create seed in
      let shuffle l =
        let arr = Array.of_list l in
        for i = Array.length arr - 1 downto 1 do
          let j = Splitmix.int rng (i + 1) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp
        done;
        Array.to_list arr
      in
      List.for_all
        (fun _ -> String.equal base (resolve (shuffle replies)))
        [ 1; 2; 3 ])

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "model_check"
    [
      ( "tpc",
        [
          Alcotest.test_case "exhaustive n=2 commit" `Quick test_exhaustive_n2_commit;
          Alcotest.test_case "exhaustive n=2 aborts" `Quick test_exhaustive_n2_abort;
          Alcotest.test_case "sampled n=4 mixed votes" `Slow test_sampled_n4;
          Alcotest.test_case "sampled n=5 all yes" `Slow test_sampled_n5_all_yes;
        ] );
      ( "2pvc",
        [
          Alcotest.test_case "exhaustive n=2, all schemes and worlds" `Quick
            test_full_2pvc_exhaustive_n2;
          Alcotest.test_case "exhaustive n=2, master fetched once" `Quick
            test_full_2pvc_exhaustive_master_once;
          Alcotest.test_case "sampled n=4, skewed and mixed worlds" `Slow
            test_full_2pvc_sampled_n4;
        ] );
      ("validation", [ qc prop_validation_order_invariant ]);
    ]
