(* Trace-driven regression checks: run real workloads with tracing on and
   assert structural invariants of the span tree the drivers emit —
   every span's parent exists, a committed transaction's [2pvc.commit]
   phase is preceded by its [2pvc.prepare], commit-phase aborts carry a
   prepare too, and the number of [proof_eval] spans on a fresh run equals
   the Table I closed form (and the TM's own proof counter). *)

module Scenario = Cloudtx_workload.Scenario
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Complexity = Cloudtx_core.Complexity
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Transport = Cloudtx_sim.Transport
module Tracer = Cloudtx_obs.Tracer
module Value = Cloudtx_store.Value

let all_combos =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level))
        [ Consistency.View; Consistency.Global ])
    Scheme.all

let combo_name scheme level =
  Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)

(* One committed transaction over [n] servers with tracing enabled;
   returns the outcome and the recorded spans. *)
let traced_run ?(n = 2) ?(u = 2) scheme level =
  let scenario = Scenario.retail ~seed:11L ~n_servers:n ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let tracer = Transport.enable_tracing (Cluster.transport cluster) in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
      ~queries:u ~writes:true ()
  in
  let outcome =
    Manager.run_one cluster (Manager.config scheme level) txn
  in
  (outcome, Tracer.spans tracer)

let find_all name spans = List.filter (fun s -> s.Tracer.name = name) spans

let parent_of spans (s : Tracer.span) =
  List.find_opt (fun (p : Tracer.span) -> p.Tracer.id = s.Tracer.parent) spans

(* ------------------------------------------------------------------ *)
(* Structural well-formedness                                          *)
(* ------------------------------------------------------------------ *)

let test_span_tree_well_formed () =
  List.iter
    (fun (scheme, level) ->
      let ctx = combo_name scheme level in
      let outcome, spans = traced_run scheme level in
      Alcotest.(check bool) (ctx ^ ": committed") true outcome.Outcome.committed;
      (* Every non-root span's parent is a recorded span. *)
      List.iter
        (fun (s : Tracer.span) ->
          if s.Tracer.parent <> Tracer.no_span && parent_of spans s = None then
            Alcotest.failf "%s: span %s has a dangling parent" ctx s.Tracer.name)
        spans;
      (* No protocol span is left open once the run quiesces. *)
      List.iter
        (fun (s : Tracer.span) ->
          if Float.is_nan s.Tracer.finish then
            Alcotest.failf "%s: span %s never finished" ctx s.Tracer.name)
        spans;
      (* Exactly one txn span, carrying the outcome. *)
      (match find_all "txn" spans with
      | [ t ] ->
        Alcotest.(check (option string))
          (ctx ^ ": txn outcome attr")
          (Some "commit")
          (List.assoc_opt "outcome" t.Tracer.attrs)
      | l -> Alcotest.failf "%s: %d txn spans" ctx (List.length l));
      (* query spans hang off the txn span, one per query. *)
      let queries = find_all "query" spans in
      Alcotest.(check int) (ctx ^ ": query spans") 2 (List.length queries);
      List.iter
        (fun q ->
          match parent_of spans q with
          | Some p when p.Tracer.name = "txn" -> ()
          | _ -> Alcotest.failf "%s: query span not under txn" ctx)
        queries)
    all_combos

(* ------------------------------------------------------------------ *)
(* Commit implies prepare                                              *)
(* ------------------------------------------------------------------ *)

let check_phase_ordering ~ctx spans ~decision_name =
  List.iter
    (fun (d : Tracer.span) ->
      let txn = parent_of spans d in
      (match txn with
      | Some t when t.Tracer.name = "txn" -> ()
      | _ -> Alcotest.failf "%s: %s not under txn" ctx decision_name);
      let txn = Option.get txn in
      let prepares =
        List.filter
          (fun (p : Tracer.span) ->
            p.Tracer.name = "2pvc.prepare" && p.Tracer.parent = txn.Tracer.id)
          spans
      in
      match prepares with
      | [] -> Alcotest.failf "%s: %s without a 2pvc.prepare" ctx decision_name
      | ps ->
        List.iter
          (fun (p : Tracer.span) ->
            if not (p.Tracer.start <= d.Tracer.start) then
              Alcotest.failf "%s: 2pvc.prepare starts after %s" ctx
                decision_name)
          ps)
    (find_all decision_name spans)

let test_commit_preceded_by_prepare () =
  List.iter
    (fun (scheme, level) ->
      let ctx = combo_name scheme level in
      let _, spans = traced_run scheme level in
      Alcotest.(check int)
        (ctx ^ ": one commit phase")
        1
        (List.length (find_all "2pvc.commit" spans));
      check_phase_ordering ~ctx spans ~decision_name:"2pvc.commit")
    all_combos

let test_commit_phase_abort_preceded_by_prepare () =
  (* Drive a balance negative so the participant votes NO: the abort is
     decided inside the commit phase and must still carry its prepare. *)
  let scenario = Scenario.retail ~seed:12L ~n_servers:2 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let tracer = Transport.enable_tracing (Cluster.transport cluster) in
  let q =
    Cloudtx_txn.Query.make ~id:"t1-q1" ~server:"server-1"
      ~writes:[ ("s1-k1", Value.Set (Value.Int (-5))) ]
      ()
  in
  let txn =
    Cloudtx_txn.Transaction.make ~id:"t1" ~subject:"clerk-1"
      ~credentials:(scenario.Scenario.credentials_of "clerk-1")
      [ q ]
  in
  let outcome =
    Manager.run_one cluster
      (Manager.config Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  let spans = Tracer.spans tracer in
  Alcotest.(check int) "one abort phase" 1
    (List.length (find_all "2pvc.abort" spans));
  check_phase_ordering ~ctx:"deferred/view abort" spans
    ~decision_name:"2pvc.abort"

(* ------------------------------------------------------------------ *)
(* Measured proof complexity equals Table I                            *)
(* ------------------------------------------------------------------ *)

let test_proof_eval_count_matches_table1 () =
  (* Fresh replicas, one voting round: the measured proof evaluations on
     the trace must equal both the TM's counter and the Table I closed
     form at r = 1. *)
  List.iter
    (fun (scheme, level) ->
      let ctx = combo_name scheme level in
      let outcome, spans = traced_run ~n:2 ~u:2 scheme level in
      Alcotest.(check int)
        (ctx ^ ": one voting round")
        1 outcome.Outcome.commit_rounds;
      let measured = List.length (find_all "proof_eval" spans) in
      Alcotest.(check int)
        (ctx ^ ": tracer agrees with the TM's proof counter")
        outcome.Outcome.proofs_evaluated measured;
      let analytic = Complexity.proofs scheme level ~n:2 ~u:2 ~r:1 in
      Alcotest.(check int)
        (ctx ^ ": measured proofs = Table I closed form")
        analytic measured)
    all_combos

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "trace_invariants"
    [
      ( "structure",
        [
          Alcotest.test_case "span tree well-formed" `Quick
            test_span_tree_well_formed;
        ] );
      ( "phases",
        [
          Alcotest.test_case "commit preceded by prepare" `Quick
            test_commit_preceded_by_prepare;
          Alcotest.test_case "commit-phase abort preceded by prepare" `Quick
            test_commit_phase_abort_preceded_by_prepare;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "proof_eval spans match Table I" `Quick
            test_proof_eval_count_matches_table1;
        ] );
    ]
