(* Gray-failure resilience: the adaptive timeout policy (backoff
   determinism, budget exhaustion as a clean abort), per-server circuit
   breakers and admission control, the Watchtower rules they feed, and
   the gray-fault chaos campaign.

   The last group pins byte-level compatibility: under the default
   [Fixed] policy a chaos run's journal must stay byte-identical (past
   the version header) to a capture committed before the policy layer
   existed, and that v3 capture must still audit clean. *)

module Manager = Cloudtx_core.Manager
module Cluster = Cloudtx_core.Cluster
module Participant = Cloudtx_core.Participant
module Outcome = Cloudtx_core.Outcome
module Resilience = Cloudtx_core.Resilience
module Audit = Cloudtx_core.Audit
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Timeout_policy = Cloudtx_protocol.Timeout_policy
module Transport = Cloudtx_sim.Transport
module Latency = Cloudtx_sim.Latency
module Scenario = Cloudtx_workload.Scenario
module Monitor = Cloudtx_obs.Monitor
module Slo = Cloudtx_obs.Slo
module Plan = Cloudtx_chaos.Plan
module Campaign = Cloudtx_chaos.Campaign

let adaptive_of = function
  | Timeout_policy.Adaptive a -> a
  | Timeout_policy.Fixed -> Alcotest.fail "expected an adaptive policy"

(* ------------------------------------------------------------------ *)
(* Adaptive policy: deterministic jittered backoff                     *)
(* ------------------------------------------------------------------ *)

let test_backoff_deterministic () =
  let a = adaptive_of (Timeout_policy.adaptive ()) in
  let name_hash = Timeout_policy.hash_name "tm-t1" in
  for epoch = 1 to 5 do
    for strikes = 0 to 4 do
      let d1 = Timeout_policy.delay a ~base:10. ~name_hash ~epoch ~strikes in
      let d2 = Timeout_policy.delay a ~base:10. ~name_hash ~epoch ~strikes in
      Alcotest.(check (float 0.)) "same inputs, same delay" d1 d2;
      (* Jitter scales the nominal backoff by a factor in
         [1 - j/2, 1 + j/2). *)
      let nominal =
        Float.min a.Timeout_policy.backoff_max
          (10. *. (a.Timeout_policy.backoff_factor ** float_of_int strikes))
      in
      let j = a.Timeout_policy.jitter in
      Alcotest.(check bool)
        (Printf.sprintf "delay %g within jitter envelope of %g" d1 nominal)
        true
        (d1 >= nominal *. (1. -. (j /. 2.))
        && d1 < nominal *. (1. +. (j /. 2.)))
    done
  done;
  (* The jitter stream actually varies across epochs and machines. *)
  let d epoch name =
    Timeout_policy.delay a ~base:10.
      ~name_hash:(Timeout_policy.hash_name name)
      ~epoch ~strikes:0
  in
  Alcotest.(check bool) "distinct epochs draw distinct jitter" true
    (d 1 "tm-t1" <> d 2 "tm-t1");
  Alcotest.(check bool) "distinct machines draw distinct jitter" true
    (d 1 "tm-t1" <> d 1 "tm-t2")

let test_backoff_grows_and_caps () =
  let a =
    adaptive_of
      (Timeout_policy.adaptive ~jitter:0. ~backoff_factor:2. ~backoff_max:40.
         ())
  in
  let name_hash = Timeout_policy.hash_name "tm-t1" in
  let d strikes = Timeout_policy.delay a ~base:10. ~name_hash ~epoch:1 ~strikes in
  Alcotest.(check (float 1e-9)) "strike 0" 10. (d 0);
  Alcotest.(check (float 1e-9)) "strike 1 doubles" 20. (d 1);
  Alcotest.(check (float 1e-9)) "strike 2 doubles" 40. (d 2);
  Alcotest.(check (float 1e-9)) "strike 3 caps" 40. (d 3)

(* ------------------------------------------------------------------ *)
(* Budget exhaustion is a clean abort                                  *)
(* ------------------------------------------------------------------ *)

(* A participant fail-stops just before the commit request reaches it
   (6.5 ms with constant 1 ms links) and never comes back.  Under
   [Fixed] that is a single [Timed_out] expiry — and the decision
   retransmission loop needs the node to recover before the run can
   quiesce.  The adaptive budgets instead strike out the watchdog into
   a clean [Budget_exhausted] abort and cap retransmission, so the run
   terminates against a permanently dead node. *)
let test_budget_exhaustion_clean_abort () =
  let s =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()
  in
  let cluster = s.Scenario.cluster in
  Transport.at (Cluster.transport cluster) ~delay:6.5 (fun () ->
      Participant.crash (Cluster.participant cluster "server-2"));
  let policy =
    Timeout_policy.adaptive ~min_timeout:5. ~backoff_max:20. ~vote_budget:2
      ~retry_budget:2 ()
  in
  let config =
    Manager.config ~vote_timeout:25. ~decision_retry:10. ~timeout_policy:policy
      Scheme.Deferred Consistency.View
  in
  let result = ref None in
  let txn =
    Scenario.spread_transaction s ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  Manager.submit cluster config txn ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  match !result with
  | None -> Alcotest.fail "transaction hung against a dead participant"
  | Some o ->
    Alcotest.(check bool) "aborted" false o.Outcome.committed;
    Alcotest.(check string) "clean budget-exhausted abort" "budget-exhausted"
      (Outcome.reason_name o.Outcome.reason)

(* ------------------------------------------------------------------ *)
(* Circuit breakers and admission control                              *)
(* ------------------------------------------------------------------ *)

let servers = [ "server-1" ]

let indict r ~txn ~now =
  match Resilience.admit r ~txn ~servers ~now with
  | Ok () ->
    Resilience.note_outcome r ~txn ~servers ~now ~reason:Outcome.Timed_out
  | Error _ -> Alcotest.failf "%s: expected admission" txn

let test_breaker_lifecycle () =
  let r = Resilience.create (Resilience.config ~failure_threshold:2 ~cooldown:50. ()) in
  indict r ~txn:"t1" ~now:1.;
  Alcotest.(check (list (pair string string)))
    "one strike stays closed"
    [ ("server-1", "closed") ]
    (List.map (fun (s, st) -> (s, Resilience.state_name st)) (Resilience.states r));
  indict r ~txn:"t2" ~now:2.;
  Alcotest.(check (list (pair string string)))
    "second consecutive strike trips"
    [ ("server-1", "open") ]
    (List.map (fun (s, st) -> (s, Resilience.state_name st)) (Resilience.states r));
  (* Open and inside the cooldown: fail fast. *)
  (match Resilience.admit r ~txn:"t3" ~servers ~now:10. with
  | Error (`Breaker s) -> Alcotest.(check string) "names the server" "server-1" s
  | Ok () | Error `Admission -> Alcotest.fail "expected a breaker fast-fail");
  Alcotest.(check int) "fast-fail counted" 1 (Resilience.fail_fasts r);
  (* Past the cooldown the next admit becomes the half-open probe... *)
  (match Resilience.admit r ~txn:"t4" ~servers ~now:53. with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expected the probe to be admitted");
  Alcotest.(check (list (pair string string)))
    "probing half-open"
    [ ("server-1", "half-open") ]
    (List.map (fun (s, st) -> (s, Resilience.state_name st)) (Resilience.states r));
  (* ...and while it is outstanding everyone else still fails fast. *)
  (match Resilience.admit r ~txn:"t5" ~servers ~now:54. with
  | Error (`Breaker _) -> ()
  | Ok () | Error `Admission -> Alcotest.fail "half-open must admit one probe");
  (* A failed probe re-opens... *)
  Resilience.note_outcome r ~txn:"t4" ~servers ~now:60.
    ~reason:Outcome.Budget_exhausted;
  Alcotest.(check (list (pair string string)))
    "failed probe re-opens"
    [ ("server-1", "open") ]
    (List.map (fun (s, st) -> (s, Resilience.state_name st)) (Resilience.states r));
  (* ...and a successful probe after another cooldown closes for good. *)
  (match Resilience.admit r ~txn:"t6" ~servers ~now:111. with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expected the second probe to be admitted");
  Resilience.note_outcome r ~txn:"t6" ~servers ~now:112.
    ~reason:Outcome.Committed;
  Alcotest.(check (list (pair string string)))
    "successful probe closes"
    [ ("server-1", "closed") ]
    (List.map (fun (s, st) -> (s, Resilience.state_name st)) (Resilience.states r));
  Alcotest.(check int) "nothing left in flight" 0 (Resilience.in_flight r)

let test_admission_bound () =
  let r = Resilience.create (Resilience.config ~max_in_flight:2 ()) in
  let admit txn =
    match Resilience.admit r ~txn ~servers ~now:1. with
    | Ok () -> true
    | Error `Admission -> false
    | Error (`Breaker _) -> Alcotest.fail "no breaker should be open"
  in
  Alcotest.(check bool) "first admitted" true (admit "t1");
  Alcotest.(check bool) "second admitted" true (admit "t2");
  Alcotest.(check bool) "third rejected at the bound" false (admit "t3");
  Alcotest.(check int) "reject counted" 1 (Resilience.admission_rejects r);
  Alcotest.(check int) "two in flight" 2 (Resilience.in_flight r);
  Resilience.note_outcome r ~txn:"t1" ~servers ~now:2.
    ~reason:Outcome.Committed;
  Alcotest.(check bool) "slot freed, next admitted" true (admit "t4")

(* ------------------------------------------------------------------ *)
(* Watchtower rules                                                    *)
(* ------------------------------------------------------------------ *)

let quiet =
  {
    Slo.stuck_ms = infinity;
    staleness_versions = max_int;
    staleness_ms = infinity;
    abort_window = 0;
    abort_rate = 1.1;
    livelock_kills = max_int;
    flap_window = infinity;
    flap_transitions = max_int;
    reject_window = infinity;
    reject_count = max_int;
  }

let test_breaker_flap_rule () =
  let rules = { quiet with Slo.flap_window = 100.; flap_transitions = 3 } in
  let m = Monitor.create ~rules () in
  let transition seq time_ms to_ =
    Monitor.observe m ~seq ~time_ms
      (Monitor.Breaker_transition { server = "server-2"; from_ = "x"; to_ })
  in
  transition 1 10. "open";
  transition 2 20. "half-open";
  Alcotest.(check int) "two transitions stay quiet" 0 (Monitor.fired_total m);
  transition 3 30. "open";
  (match Monitor.open_alerts m with
  | [ a ] ->
    Alcotest.(check string) "rule" "breaker_flap" a.Slo.rule;
    Alcotest.(check string) "subject" "server-2" a.Slo.subject
  | alerts -> Alcotest.failf "expected one alert, got %d" (List.length alerts));
  (* Outside the window the streak no longer counts: the alert resolves
     on the next (lone) transition. *)
  transition 4 500. "closed";
  Alcotest.(check int) "resolved outside the window" 0
    (List.length (Monitor.open_alerts m))

let test_admission_storm_rule () =
  let rules = { quiet with Slo.reject_window = 100.; reject_count = 2 } in
  let m = Monitor.create ~rules () in
  let reject seq time_ms txn =
    Monitor.observe m ~seq ~time_ms
      (Monitor.Admission_reject
         { txn; reason = "admission-rejected"; server = None })
  in
  reject 1 10. "t1";
  Alcotest.(check int) "one reject stays quiet" 0 (Monitor.fired_total m);
  reject 2 15. "t2";
  match Monitor.open_alerts m with
  | [ a ] ->
    Alcotest.(check string) "rule" "admission_storm" a.Slo.rule;
    Alcotest.(check string) "subject" "cluster" a.Slo.subject
  | alerts -> Alcotest.failf "expected one alert, got %d" (List.length alerts)

(* ------------------------------------------------------------------ *)
(* Plan grammar v2                                                     *)
(* ------------------------------------------------------------------ *)

let gray_plan =
  {
    Plan.seed = 7L;
    horizon = 50.;
    ops =
      [
        Plan.Slow_server { server = 1; extra = 12.; at = 5.; duration = 10. };
        Plan.Latency_burst { extra = 4.; at = 8.; duration = 6. };
        Plan.Lossy_link { src = 0; dst = 2; p = 0.5; at = 3.; duration = 9. };
      ];
  }

let test_plan_v2_round_trip () =
  match Plan.of_string (Plan.to_string gray_plan) with
  | Error e -> Alcotest.fail e
  | Ok back ->
    Alcotest.(check string) "gray ops and horizon round-trip"
      (Plan.to_string gray_plan) (Plan.to_string back)

let test_plan_v1_still_loads () =
  (* A pre-v2 plan file: no version, no horizon. *)
  let v1 =
    {|{"seed":"5","ops":[{"op":"drop-burst","p":0.5,"at":10,"duration":5}]}|}
  in
  match Plan.of_string v1 with
  | Error e -> Alcotest.fail e
  | Ok p ->
    Alcotest.(check (float 0.)) "v1 defaults to the standard horizon"
      Plan.fault_horizon p.Plan.horizon;
    Alcotest.(check int) "ops load" 1 (List.length p.Plan.ops)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

let test_plan_future_version_rejected () =
  let v3 = {|{"version":3,"seed":"5","horizon":100,"ops":[]}|} in
  match Plan.of_string v3 with
  | Ok _ -> Alcotest.fail "a v3 plan must be rejected"
  | Error why ->
    Alcotest.(check bool) "names the version" true (contains why "version 3")

(* ------------------------------------------------------------------ *)
(* Gray-fault chaos campaign                                           *)
(* ------------------------------------------------------------------ *)

let is_gray = function
  | Plan.Slow_server _ | Plan.Latency_burst _ | Plan.Lossy_link _ -> true
  | _ -> false

let gray_base_seed = 9000L
let gray_plans = 3

let run_gray () =
  Campaign.run
    ~policy:(Timeout_policy.adaptive ())
    ~resilience:(Resilience.config ())
    ~base_seed:gray_base_seed ~plans:gray_plans ()

let test_gray_campaign_clean () =
  (* The seed batch must actually contain gray faults, or the sweep
     proves nothing about them. *)
  let batch =
    List.init gray_plans (fun i ->
        Plan.random ~seed:(Int64.add gray_base_seed (Int64.of_int i)) ())
  in
  Alcotest.(check bool) "batch contains a gray fault" true
    (List.exists (fun p -> List.exists is_gray p.Plan.ops) batch);
  let verdict = run_gray () in
  Alcotest.(check int) "all cells x plans ran" (8 * gray_plans)
    verdict.Campaign.plans_run;
  match verdict.Campaign.failures with
  | [] -> ()
  | c :: _ ->
    Alcotest.failf "%d violation(s); first: %s seed=%Ld: %s"
      (List.length verdict.Campaign.failures)
      (Campaign.cell_name c.Campaign.cell)
      c.Campaign.plan.Plan.seed c.Campaign.failure.Campaign.what

let test_gray_campaign_deterministic () =
  let summarize (v : Campaign.verdict) =
    String.concat "\n"
      (List.map
         (fun (c : Campaign.case) ->
           Printf.sprintf "%s seed=%Ld: %s"
             (Campaign.cell_name c.Campaign.cell)
             c.Campaign.plan.Plan.seed c.Campaign.failure.Campaign.what)
         v.Campaign.failures)
  in
  Alcotest.(check string) "same seeds, same verdicts"
    (summarize (run_gray ())) (summarize (run_gray ()))

(* ------------------------------------------------------------------ *)
(* Fixed policy: byte-exact against the pre-policy capture             *)
(* ------------------------------------------------------------------ *)

(* Committed test data: resolved relative to the sandbox (dune runtest)
   or the repo root (dune exec). *)
let data_file name =
  if Sys.file_exists name then name else Filename.concat "test" name

let read_lines path =
  let ic = open_in_bin (data_file path) in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let golden_cell = { Campaign.scheme = Scheme.Continuous; level = Consistency.Global }

let test_fixed_golden_byte_exact () =
  let golden = read_lines "golden_resilience_fixed.jsonl" in
  let plan =
    match Plan.of_string (String.concat "" (read_lines "golden_resilience_plan.json")) with
    | Ok p -> p
    | Error e -> Alcotest.failf "golden plan unreadable: %s" e
  in
  let path = Filename.temp_file "cloudtx_resilience_fixed" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Campaign.run_plan ~journal_path:path golden_cell plan with
      | Ok () -> ()
      | Error f -> Alcotest.failf "golden plan failed: %s" f.Campaign.what);
      let fresh = read_lines path in
      Alcotest.(check int) "same record count" (List.length golden)
        (List.length fresh);
      (* The header carries the bumped journal version; every record
         after it must be byte-identical to the pre-policy capture. *)
      List.iteri
        (fun i (g, f) ->
          if i > 0 && not (String.equal g f) then
            Alcotest.failf "line %d diverged from the golden capture:\n%s\n%s"
              (i + 1) g f)
        (List.combine golden fresh))

let test_golden_v3_journal_audits_clean () =
  match Audit.run ~lines:(read_lines "golden_resilience_fixed.jsonl") with
  | Ok _ -> ()
  | Error why -> Alcotest.failf "v3 capture no longer audits: %s" why

let () =
  Alcotest.run "resilience"
    [
      ( "policy",
        [
          Alcotest.test_case "backoff deterministic, jitter bounded" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "backoff grows and caps" `Quick
            test_backoff_grows_and_caps;
          Alcotest.test_case "budget exhaustion aborts cleanly" `Quick
            test_budget_exhaustion_clean_abort;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "lifecycle" `Quick test_breaker_lifecycle;
          Alcotest.test_case "admission bound" `Quick test_admission_bound;
        ] );
      ( "watchtower",
        [
          Alcotest.test_case "breaker flap rule" `Quick test_breaker_flap_rule;
          Alcotest.test_case "admission storm rule" `Quick
            test_admission_storm_rule;
        ] );
      ( "plan-v2",
        [
          Alcotest.test_case "gray ops round-trip" `Quick test_plan_v2_round_trip;
          Alcotest.test_case "v1 plans still load" `Quick test_plan_v1_still_loads;
          Alcotest.test_case "future versions rejected" `Quick
            test_plan_future_version_rejected;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "gray sweep clean across the grid" `Slow
            test_gray_campaign_clean;
          Alcotest.test_case "gray sweep deterministic" `Slow
            test_gray_campaign_deterministic;
        ] );
      ( "golden",
        [
          Alcotest.test_case "fixed policy byte-exact vs v3 capture" `Quick
            test_fixed_golden_byte_exact;
          Alcotest.test_case "v3 capture audits clean" `Quick
            test_golden_v3_journal_audits_clean;
        ] );
    ]
