(* Serializability certifier over flight-recorder journals.

   Three angles:
   - hand-crafted anomaly journals (lost update, write skew,
     non-repeatable read, dirty read) are each rejected naming the right
     anomaly with journal-seq evidence;
   - clean journals from every scheme x consistency-level cell — and a
     24-plan chaos sweep across all 8 cells — certify serializable;
   - the DSG exports and the pre-v3 fallback (version order from journal
     order) behave. *)

module Certify = Cloudtx_core.Certify
module Audit = Cloudtx_core.Audit
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Outcome = Cloudtx_core.Outcome
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Scenario = Cloudtx_workload.Scenario
module Table1 = Cloudtx_workload.Table1
module Transport = Cloudtx_sim.Transport
module Journal = Cloudtx_obs.Journal
module Dsg = Cloudtx_obs.Dsg
module Campaign = Cloudtx_chaos.Campaign
module Codec = Cloudtx_protocol.Codec
module Ps = Cloudtx_protocol.Ps_machine
module Query = Cloudtx_txn.Query
module Value = Cloudtx_store.Value

(* ------------------------------------------------------------------ *)
(* Hand-crafted journals                                               *)
(* ------------------------------------------------------------------ *)

(* The certifier reads history events, it does not replay machines, so a
   journal of just the history-bearing records (creates, Exec_result
   inputs, Apply actions) is enough to exercise it. *)
let mk_journal records =
  let header = Printf.sprintf {|{"journal":"cloudtx","version":%d}|} Codec.version in
  let lines =
    List.mapi
      (fun i (dir, payload) ->
        let seq = i + 1 in
        Printf.sprintf
          {|{"seq":%d,"time_ms":%d,"node":"s1","dir":"%s","payload":%s}|} seq
          seq dir payload)
      records
  in
  header :: lines

let create_ps = ("create", {|{"kind":"ps"}|})

let exec_result ~txn ~qid ?(reads = []) ?(writes = []) ~returns () =
  let query = Query.make ~id:qid ~server:"s1" ~reads ~writes () in
  ( "input",
    Codec.to_string
      (Codec.ps_input_to_json
         (Ps.Exec_result
            {
              txn;
              query;
              evaluate = false;
              reply_to = "tm-" ^ txn;
              result = Ps.Executed returns;
            })) )

let apply ~txn ~commit ~writes =
  ( "action",
    Codec.to_string
      (Codec.ps_action_to_json (Ps.Apply { txn; commit; forced = true; writes }))
  )

let set n = Value.Set (Value.Int n)
let v n = Some (Value.Int n)

let certify what lines =
  match Certify.run ~lines with
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: certify errored: %s" what e

let expect_anomaly what lines kind =
  let r = certify what lines in
  match r.Certify.verdict with
  | Certify.Serializable _ ->
    Alcotest.failf "%s: certified serializable, expected %s" what
      (Certify.anomaly_name kind)
  | Certify.Anomalous a ->
    Alcotest.(check string)
      (what ^ ": anomaly kind") (Certify.anomaly_name kind)
      (Certify.anomaly_name a.Certify.anomaly);
    a

(* T1 and T2 both read x's initial version, then both commit a blind
   overwrite: T1's install loses T2's.  rw+ww 2-cycle on one key. *)
let lost_update_journal () =
  mk_journal
    [
      create_ps;
      exec_result ~txn:"t1" ~qid:"q1" ~reads:[ "x" ] ~returns:[ ("x", v 0) ] ();
      exec_result ~txn:"t2" ~qid:"q2" ~reads:[ "x" ] ~returns:[ ("x", v 0) ] ();
      exec_result ~txn:"t2" ~qid:"q3" ~writes:[ ("x", set 2) ] ~returns:[] ();
      apply ~txn:"t2" ~commit:true ~writes:[ ("x", 1) ];
      exec_result ~txn:"t1" ~qid:"q4" ~writes:[ ("x", set 1) ] ~returns:[] ();
      apply ~txn:"t1" ~commit:true ~writes:[ ("x", 2) ];
    ]

let test_lost_update () =
  let a = expect_anomaly "lost update" (lost_update_journal ()) Certify.Lost_update in
  Alcotest.(check (list string))
    "implicated txns" [ "t1"; "t2" ]
    (List.sort String.compare a.Certify.txns);
  (* Evidence spans t1's stale read (seq 2) through t1's install (seq 7). *)
  Alcotest.(check (pair int int)) "seq range" (2, 7) a.Certify.seq_range;
  Alcotest.(check int) "2-cycle" 2 (List.length a.Certify.cycle)

(* T1 reads {x,y} writes y; T2 reads {x,y} writes x.  Each rw-depends on
   the other, no write conflict: the classic SI anomaly. *)
let write_skew_journal () =
  mk_journal
    [
      create_ps;
      exec_result ~txn:"t1" ~qid:"q1" ~reads:[ "x"; "y" ]
        ~returns:[ ("x", v 0); ("y", v 0) ]
        ();
      exec_result ~txn:"t2" ~qid:"q2" ~reads:[ "x"; "y" ]
        ~returns:[ ("x", v 0); ("y", v 0) ]
        ();
      exec_result ~txn:"t1" ~qid:"q3" ~writes:[ ("y", set 1) ] ~returns:[] ();
      exec_result ~txn:"t2" ~qid:"q4" ~writes:[ ("x", set 1) ] ~returns:[] ();
      apply ~txn:"t1" ~commit:true ~writes:[ ("y", 1) ];
      apply ~txn:"t2" ~commit:true ~writes:[ ("x", 1) ];
    ]

let test_write_skew () =
  let a = expect_anomaly "write skew" (write_skew_journal ()) Certify.Write_skew in
  Alcotest.(check (list string))
    "implicated txns" [ "t1"; "t2" ]
    (List.sort String.compare a.Certify.txns);
  let lo, hi = a.Certify.seq_range in
  Alcotest.(check bool) "evidence covers the reads" true (lo <= 3 && hi >= 6);
  List.iter
    (fun e -> Alcotest.(check string) "both edges rw" "rw" (Certify.kind_name e.Certify.kind))
    a.Certify.cycle

(* T1 reads x before and after T2 commits a new x: the two reads cannot
   sit in one serial position.  rw+wr 2-cycle on one key. *)
let non_repeatable_read_journal () =
  mk_journal
    [
      create_ps;
      exec_result ~txn:"t1" ~qid:"q1" ~reads:[ "x" ] ~returns:[ ("x", v 0) ] ();
      exec_result ~txn:"t2" ~qid:"q2" ~writes:[ ("x", set 5) ] ~returns:[] ();
      apply ~txn:"t2" ~commit:true ~writes:[ ("x", 1) ];
      exec_result ~txn:"t1" ~qid:"q3" ~reads:[ "x" ] ~returns:[ ("x", v 5) ] ();
      exec_result ~txn:"t1" ~qid:"q4" ~writes:[ ("z", set 1) ] ~returns:[] ();
      apply ~txn:"t1" ~commit:true ~writes:[ ("z", 1) ];
    ]

let test_non_repeatable_read () =
  let a =
    expect_anomaly "non-repeatable read"
      (non_repeatable_read_journal ())
      Certify.Non_repeatable_read
  in
  Alcotest.(check (pair int int)) "seq range" (2, 5) a.Certify.seq_range

(* T2 buffers x=99 but never commits it; T1 reads 99 anyway.  No DSG
   edge exists — the value-level check attributes the read to T2's
   uncommitted workspace. *)
let dirty_read_journal () =
  mk_journal
    [
      create_ps;
      exec_result ~txn:"t0" ~qid:"q1" ~writes:[ ("x", set 1) ] ~returns:[] ();
      apply ~txn:"t0" ~commit:true ~writes:[ ("x", 1) ];
      exec_result ~txn:"t2" ~qid:"q2" ~writes:[ ("x", set 99) ] ~returns:[] ();
      exec_result ~txn:"t1" ~qid:"q3" ~reads:[ "x" ] ~returns:[ ("x", v 99) ] ();
      apply ~txn:"t2" ~commit:false ~writes:[];
      exec_result ~txn:"t1" ~qid:"q4" ~writes:[ ("z", set 1) ] ~returns:[] ();
      apply ~txn:"t1" ~commit:true ~writes:[ ("z", 1) ];
    ]

let test_dirty_read () =
  let a = expect_anomaly "dirty read" (dirty_read_journal ()) Certify.Dirty_read in
  Alcotest.(check (list string))
    "reader and uncommitted writer" [ "t1"; "t2" ]
    (List.sort String.compare a.Certify.txns);
  (* Evidence: T2's buffered write (seq 4) to T1's read (seq 5). *)
  Alcotest.(check (pair int int)) "seq range" (4, 5) a.Certify.seq_range

let test_verdict_deterministic () =
  let lines = lost_update_journal () in
  let s1 = Certify.summary (certify "run 1" lines) in
  let s2 = Certify.summary (certify "run 2" lines) in
  Alcotest.(check string) "bit-identical summary" s1 s2;
  Alcotest.(check bool) "names the anomaly" true
    (String.length s1 > 0
    &&
    match String.index_opt s1 'A' with Some _ -> true | None -> false)

(* ------------------------------------------------------------------ *)
(* Clean journals: every cell, then a chaos sweep                      *)
(* ------------------------------------------------------------------ *)

let all_cells =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level)) [ Consistency.View; Consistency.Global ])
    Scheme.all

let lines_of journal =
  String.split_on_char '\n' (Journal.to_string journal)
  |> List.filter (fun l -> not (String.equal l ""))

let run_cell scheme level staleness =
  let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let journal = Transport.enable_journal transport in
  (match staleness with
  | Table1.Fresh -> ()
  | Table1.View_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
         (Scenario.clerk_rules_refreshed ()))
  | Table1.Global_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun _ -> infinity))
         (Scenario.clerk_rules_refreshed ())));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
  in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  (lines_of journal, outcome)

let test_every_cell_certifies_serializable () =
  List.iter
    (fun (scheme, level) ->
      let what =
        Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
      in
      let lines, outcome = run_cell scheme level (Table1.worst_for scheme level) in
      Alcotest.(check bool) (what ^ ": committed") true outcome.Outcome.committed;
      let r = certify what lines in
      match r.Certify.verdict with
      | Certify.Serializable { order; si } ->
        Alcotest.(check (list string)) (what ^ ": witness order") [ "t1" ] order;
        Alcotest.(check bool) (what ^ ": si") true si;
        Alcotest.(check int) (what ^ ": decode errors") 0 r.Certify.decode_errors
      | Certify.Anomalous a ->
        Alcotest.failf "%s: clean run flagged: %s" what (Certify.describe_anomaly a))
    all_cells

(* The fourth assertion layer: 3 plans x 8 cells = 24 chaos runs, each
   journal certified after liveness/safety/audit. *)
let test_chaos_sweep_certifies () =
  let verdict = Campaign.run ~certify:true ~plans:3 () in
  Alcotest.(check int) "24 runs" 24 verdict.Campaign.plans_run;
  match verdict.Campaign.failures with
  | [] -> ()
  | { Campaign.failure; _ } :: _ ->
    Alcotest.failf "chaos+certify failed: %s" failure.Campaign.what

(* ------------------------------------------------------------------ *)
(* Pre-v3 journals and exports                                         *)
(* ------------------------------------------------------------------ *)

(* Strip the v3 write stamps (rewrite Apply payloads as v2, downgrade
   the header): the certifier must fall back to journal order and the
   buffered write keys and still certify the clean run. *)
let downgrade_to_v2 lines =
  let module Json = Cloudtx_policy.Json in
  match lines with
  | [] -> []
  | _header :: records ->
    {|{"journal":"cloudtx","version":2}|}
    :: List.map
         (fun line ->
           match Json.parse line with
           | Error _ -> line
           | Ok j -> (
             let get name =
               match Json.member name j with Ok v -> v | Error _ -> Json.Null
             in
             match (Json.to_str (get "dir"), Json.member "payload" j) with
             | Ok "action", Ok payload -> (
               match Codec.ps_action_of_json payload with
               | Ok (Ps.Apply _ as a) ->
                 Json.to_string
                   (Json.Obj
                      [
                        ("seq", get "seq");
                        ("time_ms", get "time_ms");
                        ("node", get "node");
                        ("dir", get "dir");
                        ("payload", Codec.ps_action_to_json_at ~version:2 a);
                      ])
               | _ -> line)
             | _ -> line))
         records

let test_v2_journal_certifies () =
  let lines, _ = run_cell Scheme.Deferred Consistency.View Table1.Fresh in
  let r = certify "v2 fallback" (downgrade_to_v2 lines) in
  match r.Certify.verdict with
  | Certify.Serializable { order; _ } ->
    Alcotest.(check (list string)) "witness" [ "t1" ] order
  | Certify.Anomalous a ->
    Alcotest.failf "v2 journal flagged: %s" (Certify.describe_anomaly a)

let test_dsg_exports () =
  let r = certify "export" (lost_update_journal ()) in
  let g = Certify.to_dsg r in
  let dot = Dsg.to_dot ~name:"history" g in
  let json = Dsg.to_json g in
  Alcotest.(check bool) "dot digraph" true
    (String.length dot > 0 && String.sub dot 0 16 = "digraph history ");
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (needle ^ " in dot") true (contains dot needle);
      Alcotest.(check bool) (needle ^ " in json") true (contains json needle))
    [ "t1"; "t2"; "rw"; "ww"; "red" ]

let () =
  Alcotest.run "certify"
    [
      ( "anomalies",
        [
          Alcotest.test_case "lost update" `Quick test_lost_update;
          Alcotest.test_case "write skew" `Quick test_write_skew;
          Alcotest.test_case "non-repeatable read" `Quick test_non_repeatable_read;
          Alcotest.test_case "dirty read" `Quick test_dirty_read;
          Alcotest.test_case "deterministic verdict" `Quick test_verdict_deterministic;
        ] );
      ( "clean",
        [
          Alcotest.test_case "every cell serializable" `Quick
            test_every_cell_certifies_serializable;
          Alcotest.test_case "chaos sweep certifies" `Quick test_chaos_sweep_certifies;
        ] );
      ( "formats",
        [
          Alcotest.test_case "v2 fallback" `Quick test_v2_journal_certifies;
          Alcotest.test_case "dsg exports" `Quick test_dsg_exports;
        ] );
    ]
