(* Latency blame engine: critical-path extraction from the flight
   recorder.

   Hand-crafted journals with a known critical path pin down exact
   segment attribution (policy-fetch-, lock-wait-, retransmission- and
   proof-eval-dominated cases).  Then the load-bearing properties over
   real runs: for every scheme x level cell the live collection and the
   offline replay of the same journal render byte-identical blame JSON,
   every timeline's segments cover the end-to-end latency within the
   documented slack, and the per-phase segment totals reconcile exactly
   with the registry's phase histograms.  A chaos journal rounds it off:
   explain output over a faulted cell is bit-reproducible. *)

module Blame = Cloudtx_core.Blame
module Cp = Cloudtx_obs.Critical_path
module Journal = Cloudtx_obs.Journal
module Registry = Cloudtx_obs.Registry
module Histogram = Cloudtx_obs.Histogram
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Scenario = Cloudtx_workload.Scenario
module Transport = Cloudtx_sim.Transport
module Plan = Cloudtx_chaos.Plan
module Campaign = Cloudtx_chaos.Campaign

(* ------------------------------------------------------------------ *)
(* Hand-crafted journal building blocks                                *)
(* ------------------------------------------------------------------ *)

let header = {|{"journal":"cloudtx","version":3}|}

let record ~seq ~t ~node ~dir payload =
  Printf.sprintf {|{"seq":%d,"time_ms":%g,"node":%S,"dir":%S,"payload":%s}|} seq
    t node dir payload

(* Minimal TM create: one query against [server], submitted at
   [submitted_at] (the timeline origin). *)
let tm_create ~txn ~server ~submitted_at =
  Printf.sprintf
    {|{"kind":"tm","config":{"scheme":"deferred","level":"view","master_mode":"once","max_rounds":16,"vote_timeout":0,"decision_retry":0,"read_only_optimization":false,"snapshot_reads":false},"txn":{"id":%S,"subject":"s","queries":[{"id":"q1","server":%S,"reads":[],"writes":[],"action":null}],"credentials":[]},"submitted_at":%g}|}
    txn server submitted_at

let ps_create = {|{"kind":"ps","variant":"basic","inquiry_timeout":0}|}
let deliver ~src msg = Printf.sprintf {|{"t":"deliver","src":%S,"msg":%s}|} src msg

let master_reply ~txn =
  Printf.sprintf {|{"t":"master-version-reply","txn":%S,"policies":[]}|} txn

let exec_reply ~txn ~query_id =
  Printf.sprintf
    {|{"t":"execute-reply","txn":%S,"query_id":%S,"outcome":{"t":"executed","reads":[],"proof":null}}|}
    txn query_id

let validate_reply ~txn ~round =
  Printf.sprintf
    {|{"t":"validate-reply","txn":%S,"round":%d,"proofs":[],"policies":[]}|} txn
    round

let commit_reply ~txn ~round =
  Printf.sprintf
    {|{"t":"commit-reply","txn":%S,"round":%d,"integrity":true,"read_only":false,"proofs":[],"policies":[]}|}
    txn round

let decision_ack ~txn = Printf.sprintf {|{"t":"decision-ack","txn":%S}|} txn
let retry_fired = {|{"t":"retry-fired"}|}

let phase_open span =
  Printf.sprintf {|{"t":"obs","obs":{"t":"phase-open","span_name":%S,"reason":null}}|}
    span

let finish = {|{"t":"finish","committed":true,"reason":"committed","commit_rounds":1}|}

let wait_open ~txn ~query_id =
  Printf.sprintf {|{"t":"wait-open","txn":%S,"query_id":%S}|} txn query_id

let wait_close ~txn ~outcome =
  Printf.sprintf {|{"t":"wait-close","txn":%S,"outcome":%S,"killed_by":null}|} txn
    outcome

let eval ~txn =
  Printf.sprintf
    {|{"t":"eval","txn":%S,"subject":"s","credentials":[],"queries":[],"with_proofs":true,"with_policies":false,"cont":{"t":"to-validate-reply","reply_to":"tm","round":1}}|}
    txn

let evaluated ~txn =
  Printf.sprintf
    {|{"t":"evaluated","txn":%S,"proofs":[],"policies":[],"cont":{"t":"to-validate-reply","reply_to":"tm","round":1}}|}
    txn

let replay lines =
  match Blame.of_lines ~keep_timelines:true lines with
  | Ok t -> t
  | Error why -> Alcotest.failf "replay rejected: %s" why

let the_timeline t ~txn =
  match Blame.find t ~txn with
  | Some tl -> tl
  | None -> Alcotest.failf "timeline %s missing" txn

(* Assert the exact segment sequence: (kind, start, end, phase). *)
let check_segments what expected (tl : Cp.timeline) =
  let show (s : Cp.segment) =
    Printf.sprintf "%s [%g, %g] %s" (Cp.kind_name s.Cp.kind) s.Cp.start_ms
      s.Cp.end_ms s.Cp.phase
  in
  let want =
    List.map
      (fun (kind, s0, s1, phase) ->
        Printf.sprintf "%s [%g, %g] %s" (Cp.kind_name kind) s0 s1 phase)
      expected
  in
  Alcotest.(check (list string))
    (what ^ ": segments")
    want
    (List.map show tl.Cp.segments);
  Alcotest.(check bool) (what ^ ": covered") true (Cp.covered tl)

let check_dominant what kind ms tl =
  match Cp.dominant tl with
  | None -> Alcotest.fail (what ^ ": no dominant segment")
  | Some (k, total) ->
    Alcotest.(check string) (what ^ ": dominant kind") (Cp.kind_name kind)
      (Cp.kind_name k);
    Alcotest.(check (float 1e-9)) (what ^ ": dominant ms") ms total

(* ------------------------------------------------------------------ *)
(* Exact attribution: policy-fetch-dominated                           *)
(* ------------------------------------------------------------------ *)

let test_policy_fetch_dominated () =
  let tm = "tm" and txn = "t1" in
  let lines =
    [
      header;
      record ~seq:1 ~t:0. ~node:tm ~dir:"create"
        (tm_create ~txn ~server:"srv-1" ~submitted_at:0.);
      record ~seq:2 ~t:10. ~node:tm ~dir:"input"
        (deliver ~src:"master" (master_reply ~txn));
      record ~seq:3 ~t:12. ~node:tm ~dir:"input"
        (deliver ~src:"srv-1" (exec_reply ~txn ~query_id:"q1"));
      record ~seq:4 ~t:12. ~node:tm ~dir:"action" (phase_open "2pvc.prepare");
      record ~seq:5 ~t:14. ~node:tm ~dir:"input"
        (deliver ~src:"srv-1" (commit_reply ~txn ~round:1));
      record ~seq:6 ~t:14. ~node:tm ~dir:"action" (phase_open "2pvc.commit");
      record ~seq:7 ~t:15. ~node:tm ~dir:"input"
        (deliver ~src:"srv-1" (decision_ack ~txn));
      record ~seq:8 ~t:15. ~node:tm ~dir:"action" finish;
    ]
  in
  let t = replay lines in
  Alcotest.(check int) "one finished txn" 1 (Blame.finished t);
  Alcotest.(check int) "no decode errors" 0 (Blame.decode_errors t);
  let tl = the_timeline t ~txn in
  check_segments "policy-fetch"
    [
      (Cp.Policy_fetch, 0., 10., "execute");
      (Cp.Exec, 10., 12., "execute");
      (Cp.Vote_round, 12., 14., "commit");
      (Cp.Decide, 14., 15., "decide");
    ]
    tl;
  Alcotest.(check (float 1e-9)) "total is end-to-end" 15. (Cp.total_ms tl);
  check_dominant "policy-fetch" Cp.Policy_fetch 10. tl;
  Alcotest.(check (list (pair string (float 1e-9))))
    "per-phase totals"
    [ ("execute", 12.); ("commit", 2.); ("decide", 1.) ]
    (Cp.by_phase tl)

(* ------------------------------------------------------------------ *)
(* Exact attribution: lock-wait carved out of the execute round-trip   *)
(* ------------------------------------------------------------------ *)

let test_lock_wait_dominated () =
  let tm = "tm" and srv = "srv-1" and txn = "t1" in
  let lines =
    [
      header;
      record ~seq:1 ~t:0. ~node:tm ~dir:"create"
        (tm_create ~txn ~server:srv ~submitted_at:0.);
      record ~seq:2 ~t:0. ~node:srv ~dir:"create" ps_create;
      record ~seq:3 ~t:1. ~node:srv ~dir:"action" (wait_open ~txn ~query_id:"q1");
      record ~seq:4 ~t:9. ~node:srv ~dir:"action" (wait_close ~txn ~outcome:"granted");
      record ~seq:5 ~t:10. ~node:tm ~dir:"input"
        (deliver ~src:srv (exec_reply ~txn ~query_id:"q1"));
      record ~seq:6 ~t:10. ~node:tm ~dir:"action" (phase_open "2pvc.prepare");
      record ~seq:7 ~t:11. ~node:tm ~dir:"input"
        (deliver ~src:srv (commit_reply ~txn ~round:1));
      record ~seq:8 ~t:11. ~node:tm ~dir:"action" (phase_open "2pvc.commit");
      record ~seq:9 ~t:12. ~node:tm ~dir:"input"
        (deliver ~src:srv (decision_ack ~txn));
      record ~seq:10 ~t:12. ~node:tm ~dir:"action" finish;
    ]
  in
  let tl = the_timeline (replay lines) ~txn in
  check_segments "lock-wait"
    [
      (Cp.Exec, 0., 1., "execute");
      (Cp.Lock_wait, 1., 9., "execute");
      (Cp.Exec, 9., 10., "execute");
      (Cp.Vote_round, 10., 11., "commit");
      (Cp.Decide, 11., 12., "decide");
    ]
    tl;
  check_dominant "lock-wait" Cp.Lock_wait 8. tl;
  (match tl.Cp.segments with
  | _ :: (w : Cp.segment) :: _ ->
    Alcotest.(check string) "wait outcome carried as detail" "granted"
      w.Cp.detail
  | _ -> Alcotest.fail "expected the lock-wait segment second")

(* ------------------------------------------------------------------ *)
(* Exact attribution: retransmission stall (plus submit queueing)      *)
(* ------------------------------------------------------------------ *)

let test_retransmission_dominated () =
  let tm = "tm" and txn = "t1" in
  let lines =
    [
      header;
      (* Created 1 ms after submission: the difference is queueing. *)
      record ~seq:1 ~t:1. ~node:tm ~dir:"create"
        (tm_create ~txn ~server:"srv-1" ~submitted_at:0.);
      record ~seq:2 ~t:2. ~node:tm ~dir:"input"
        (deliver ~src:"srv-1" (exec_reply ~txn ~query_id:"q1"));
      record ~seq:3 ~t:2. ~node:tm ~dir:"action" (phase_open "2pvc.prepare");
      record ~seq:4 ~t:10. ~node:tm ~dir:"input" retry_fired;
      record ~seq:5 ~t:11. ~node:tm ~dir:"input"
        (deliver ~src:"srv-1" (commit_reply ~txn ~round:2));
      record ~seq:6 ~t:11. ~node:tm ~dir:"action" (phase_open "2pvc.commit");
      record ~seq:7 ~t:12. ~node:tm ~dir:"input"
        (deliver ~src:"srv-1" (decision_ack ~txn));
      record ~seq:8 ~t:12. ~node:tm ~dir:"action" finish;
    ]
  in
  let tl = the_timeline (replay lines) ~txn in
  check_segments "retransmission"
    [
      (Cp.Queueing, 0., 1., "execute");
      (Cp.Exec, 1., 2., "execute");
      (Cp.Retry_stall, 2., 10., "commit");
      (Cp.Vote_round, 10., 11., "commit");
      (Cp.Decide, 11., 12., "decide");
    ]
    tl;
  check_dominant "retransmission" Cp.Retry_stall 8. tl

(* ------------------------------------------------------------------ *)
(* Exact attribution: proof evaluation carved out of a 2PV round       *)
(* ------------------------------------------------------------------ *)

let test_proof_eval_carved () =
  let tm = "tm" and srv = "srv-1" and txn = "t1" in
  let lines =
    [
      header;
      record ~seq:1 ~t:0. ~node:tm ~dir:"create"
        (tm_create ~txn ~server:srv ~submitted_at:0.);
      record ~seq:2 ~t:0. ~node:srv ~dir:"create" ps_create;
      record ~seq:3 ~t:1. ~node:tm ~dir:"input"
        (deliver ~src:srv (exec_reply ~txn ~query_id:"q1"));
      record ~seq:4 ~t:3. ~node:srv ~dir:"action" (eval ~txn);
      record ~seq:5 ~t:7. ~node:srv ~dir:"input" (evaluated ~txn);
      record ~seq:6 ~t:8. ~node:tm ~dir:"input"
        (deliver ~src:srv (validate_reply ~txn ~round:1));
      record ~seq:7 ~t:8. ~node:tm ~dir:"action" (phase_open "2pvc.prepare");
      record ~seq:8 ~t:9. ~node:tm ~dir:"input"
        (deliver ~src:srv (commit_reply ~txn ~round:1));
      record ~seq:9 ~t:9. ~node:tm ~dir:"action" (phase_open "2pvc.commit");
      record ~seq:10 ~t:10. ~node:tm ~dir:"input"
        (deliver ~src:srv (decision_ack ~txn));
      record ~seq:11 ~t:10. ~node:tm ~dir:"action" finish;
    ]
  in
  let tl = the_timeline (replay lines) ~txn in
  check_segments "proof-eval"
    [
      (Cp.Exec, 0., 1., "execute");
      (Cp.Validate_round, 1., 3., "execute");
      (Cp.Proof_eval, 3., 7., "execute");
      (Cp.Validate_round, 7., 8., "execute");
      (Cp.Vote_round, 8., 9., "commit");
      (Cp.Decide, 9., 10., "decide");
    ]
    tl;
  check_dominant "proof-eval" Cp.Proof_eval 4. tl

(* ------------------------------------------------------------------ *)
(* Live = offline, coverage, registry reconciliation — all 8 cells     *)
(* ------------------------------------------------------------------ *)

let all_cells =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> (scheme, level)) [ Consistency.View; Consistency.Global ])
    Scheme.all

(* One committed transaction per cell, with the blame collector riding
   the journal's observer list live, next to the metrics fabric. *)
let run_cell scheme level =
  let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let journal = Transport.enable_journal transport in
  let reg = Transport.enable_metrics transport in
  let live = Blame.attach ~keep_timelines:true journal in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
  in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  (journal, reg, live, outcome)

let with_temp_journal contents f =
  let path = Filename.temp_file "cloudtx_blame" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_live_equals_offline_all_cells () =
  List.iter
    (fun (scheme, level) ->
      let what =
        Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
      in
      let journal, _reg, live, outcome = run_cell scheme level in
      Alcotest.(check bool) (what ^ ": committed") true outcome.Outcome.committed;
      let offline =
        with_temp_journal (Journal.to_string journal) (fun path ->
            match Blame.of_file ~keep_timelines:true path with
            | Ok t -> t
            | Error why -> Alcotest.failf "%s: offline replay failed: %s" what why)
      in
      Alcotest.(check string)
        (what ^ ": live = offline blame JSON")
        (Blame.to_json live) (Blame.to_json offline);
      Alcotest.(check int) (what ^ ": finished") 1 (Blame.finished live);
      List.iter
        (fun tl ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s segments cover end-to-end latency" what
               tl.Cp.txn)
            true (Cp.covered tl))
        (Blame.timelines live))
    all_cells

let hist_sum what reg name labels =
  match Registry.histogram reg name labels with
  | Some h -> Histogram.sum h
  | None -> Alcotest.failf "%s: histogram %s missing" what name

let test_registry_reconciliation_all_cells () =
  List.iter
    (fun (scheme, level) ->
      let what =
        Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
      in
      let _journal, reg, live, outcome = run_cell scheme level in
      Alcotest.(check bool) (what ^ ": committed") true outcome.Outcome.committed;
      let tl = the_timeline live ~txn:"t1" in
      let labels =
        [ ("scheme", Scheme.name scheme); ("consistency", Consistency.name level) ]
      in
      let phase name =
        match List.assoc_opt name (Cp.by_phase tl) with Some v -> v | None -> 0.
      in
      Alcotest.(check (float 1e-9))
        (what ^ ": segment total = txn_latency_ms")
        (hist_sum what reg "txn_latency_ms" labels)
        (Cp.total_ms tl);
      Alcotest.(check (float 1e-9))
        (what ^ ": execute segments = phase_execute_ms")
        (hist_sum what reg "phase_execute_ms" labels)
        (phase "execute");
      Alcotest.(check (float 1e-9))
        (what ^ ": commit segments = phase_commit_ms")
        (hist_sum what reg "phase_commit_ms" labels)
        (phase "commit");
      Alcotest.(check (float 1e-9))
        (what ^ ": decide segments = phase_decide_ms")
        (hist_sum what reg "phase_decide_ms" labels)
        (phase "decide"))
    all_cells

(* ------------------------------------------------------------------ *)
(* Observer fan-out: two collectors on one journal agree               *)
(* ------------------------------------------------------------------ *)

let test_observer_fan_out () =
  let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let journal = Transport.enable_journal (Cluster.transport cluster) in
  let seen = ref 0 in
  Journal.add_observer journal (fun ~seq:_ ~time_ms:_ ~node:_ ~dir:_ ~payload:_ ->
      incr seen);
  let a = Blame.attach journal in
  let b = Blame.attach journal in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
  in
  let outcome =
    Manager.run_one cluster
      (Manager.config Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  Alcotest.(check bool) "first observer saw records" true (!seen > 0);
  Alcotest.(check string) "both collectors agree byte-for-byte"
    (Blame.to_json a) (Blame.to_json b)

(* ------------------------------------------------------------------ *)
(* Chaos journal: explain over a faulted cell is bit-reproducible      *)
(* ------------------------------------------------------------------ *)

let chaos_cell = { Campaign.scheme = Scheme.Continuous; level = Consistency.Global }

(* A seed whose plan includes a crash or partition op, so the journal
   exercises recovery/stall segments. *)
let crashy_plan () =
  let is_faulty = function
    | Plan.Crash_server _ | Plan.Crash_coordinator _ | Plan.Isolate_coordinator _
    | Plan.Partition _ ->
      true
    | Plan.Drop_burst _ | Plan.Duplicate_burst _ | Plan.Reorder_burst _
    | Plan.Slow_server _ | Plan.Latency_burst _ | Plan.Lossy_link _ ->
      false
  in
  let rec scan seed =
    if seed > 4400 then Alcotest.fail "no crash/partition plan in seed range"
    else
      let plan = Plan.random ~seed:(Int64.of_int seed) () in
      if List.exists is_faulty plan.Plan.ops then plan else scan (seed + 1)
  in
  scan 4300

let test_chaos_explain_reproducible () =
  let plan = crashy_plan () in
  let blame_of_run () =
    let path = Filename.temp_file "cloudtx_blame_chaos" ".jsonl" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        (match Campaign.run_plan ~journal_path:path chaos_cell plan with
        | Ok () -> ()
        | Error f -> Alcotest.failf "chaos plan failed: %s" f.Campaign.what);
        match Blame.of_file ~keep_timelines:true path with
        | Ok t -> t
        | Error why -> Alcotest.failf "chaos journal unreadable: %s" why)
  in
  let a = blame_of_run () in
  Alcotest.(check bool) "some transactions finished" true (Blame.finished a > 0);
  Alcotest.(check int) "no coverage violations" 0
    (List.length (Blame.uncovered a));
  (match Blame.slowest a with
  | None -> Alcotest.fail "no slowest timeline"
  | Some tl ->
    Alcotest.(check bool) "slowest has segments" true (tl.Cp.segments <> []));
  let b = blame_of_run () in
  Alcotest.(check string) "same plan, bit-identical blame" (Blame.to_json a)
    (Blame.to_json b)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "blame"
    [
      ( "attribution",
        [
          Alcotest.test_case "policy-fetch-dominated journal" `Quick
            test_policy_fetch_dominated;
          Alcotest.test_case "lock-wait carved from execute round-trip" `Quick
            test_lock_wait_dominated;
          Alcotest.test_case "retransmission stall and submit queueing" `Quick
            test_retransmission_dominated;
          Alcotest.test_case "proof evaluation carved from 2PV round" `Quick
            test_proof_eval_carved;
        ] );
      ( "cells",
        [
          Alcotest.test_case "live = offline blame JSON, all 8 cells" `Slow
            test_live_equals_offline_all_cells;
          Alcotest.test_case "segment totals reconcile with phase histograms"
            `Slow test_registry_reconciliation_all_cells;
          Alcotest.test_case "observer fan-out: collectors agree" `Quick
            test_observer_fan_out;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "chaos explain is bit-reproducible" `Slow
            test_chaos_explain_reproducible;
        ] );
    ]
