(* Unit tests for queries, transactions, and the 2PC state machines. *)

module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Tpc = Cloudtx_txn.Tpc
module Tpc_run = Cloudtx_txn.Tpc_run
module Value = Cloudtx_store.Value

(* ------------------------------------------------------------------ *)
(* Query / Transaction                                                 *)
(* ------------------------------------------------------------------ *)

let test_query_items_and_action () =
  let q =
    Query.make ~id:"q" ~server:"s" ~reads:[ "b"; "a" ]
      ~writes:[ ("a", Value.Set (Value.Int 1)); ("c", Value.Set (Value.Int 2)) ]
      ()
  in
  Alcotest.(check (list string)) "items deduped sorted" [ "a"; "b"; "c" ]
    (Query.items q);
  Alcotest.(check string) "write action" "write" (Query.action q);
  let r = Query.make ~id:"q" ~server:"s" ~reads:[ "a" ] () in
  Alcotest.(check string) "read action" "read" (Query.action r)

(* A read-modify-write query touches each key once: m(q) (Table I item
   counts) and read/write-set extraction must agree. *)
let test_query_touches_rmw () =
  let q =
    Query.make ~id:"q" ~server:"s" ~reads:[ "x"; "y" ]
      ~writes:[ ("x", Value.Set (Value.Int 1)) ]
      ()
  in
  Alcotest.(check (list string)) "touches dedups rmw" [ "x"; "y" ]
    (Query.touches q);
  Alcotest.(check (list string)) "items = touches" (Query.touches q)
    (Query.items q);
  Alcotest.(check (list string)) "read_set" [ "x"; "y" ] (Query.read_set q);
  Alcotest.(check (list string)) "write_set" [ "x" ] (Query.write_set q);
  Alcotest.(check int) "Table I item count" 2 (List.length (Query.touches q))

let test_transaction_participants () =
  let q server i = Query.make ~id:(Printf.sprintf "q%d" i) ~server ~reads:[ "k" ] () in
  let t =
    Transaction.make ~id:"t" ~subject:"bob"
      [ q "s1" 1; q "s2" 2; q "s1" 3; q "s3" 4 ]
  in
  Alcotest.(check (list string)) "participants in first-use order"
    [ "s1"; "s2"; "s3" ]
    (Transaction.participants t);
  Alcotest.(check int) "u" 4 (Transaction.query_count t)

(* ------------------------------------------------------------------ *)
(* 2PC runs                                                            *)
(* ------------------------------------------------------------------ *)

let names n = List.init n (fun i -> Printf.sprintf "p%d" (i + 1))
let all_yes n = List.map (fun p -> (p, true)) (names n)

let test_basic_commit () =
  let stats = Tpc_run.run Tpc.Basic ~votes:(all_yes 3) in
  Alcotest.(check bool) "commits" true stats.Tpc_run.outcome;
  (* Voting 2n + decision 2n = 4n messages. *)
  Alcotest.(check int) "messages" 12 stats.Tpc_run.messages;
  (* Log complexity 2n+1: each participant forces prepared+commit, the
     coordinator forces the decision. *)
  Alcotest.(check int) "participant forces" 6 stats.Tpc_run.participants_forced;
  Alcotest.(check int) "coordinator forces" 1 stats.Tpc_run.coordinator_forced;
  Alcotest.(check (list string)) "coordinator log" [ "commit"; "end" ]
    stats.Tpc_run.coordinator_log;
  List.iter
    (fun (_, applied) -> Alcotest.(check bool) "applied commit" true applied)
    stats.Tpc_run.applied

let test_basic_abort_on_no () =
  let votes = [ ("p1", true); ("p2", false); ("p3", true) ] in
  let stats = Tpc_run.run Tpc.Basic ~votes in
  Alcotest.(check bool) "aborts" false stats.Tpc_run.outcome;
  List.iter
    (fun (_, applied) -> Alcotest.(check bool) "applied abort" false applied)
    stats.Tpc_run.applied;
  (* The NO voter applies abort exactly once (unilateral). *)
  Alcotest.(check int) "every participant settles" 3
    (List.length stats.Tpc_run.applied)

let test_presumed_abort_cheap_abort () =
  let votes = [ ("p1", false); ("p2", true) ] in
  let basic = Tpc_run.run Tpc.Basic ~votes in
  let pra = Tpc_run.run Tpc.Presumed_abort ~votes in
  Alcotest.(check bool) "both abort" true
    ((not basic.Tpc_run.outcome) && not pra.Tpc_run.outcome);
  (* PrA: no forced abort records, no abort acks. *)
  Alcotest.(check bool) "PrA fewer forces" true
    (pra.Tpc_run.participants_forced < basic.Tpc_run.participants_forced
    || pra.Tpc_run.coordinator_forced < basic.Tpc_run.coordinator_forced);
  Alcotest.(check bool) "PrA fewer messages" true
    (pra.Tpc_run.messages < basic.Tpc_run.messages)

let test_presumed_abort_commit_same_as_basic () =
  let basic = Tpc_run.run Tpc.Basic ~votes:(all_yes 3) in
  let pra = Tpc_run.run Tpc.Presumed_abort ~votes:(all_yes 3) in
  Alcotest.(check int) "same messages" basic.Tpc_run.messages pra.Tpc_run.messages;
  Alcotest.(check int) "same participant forces" basic.Tpc_run.participants_forced
    pra.Tpc_run.participants_forced

let test_presumed_commit_cheap_commit () =
  let basic = Tpc_run.run Tpc.Basic ~votes:(all_yes 3) in
  let prc = Tpc_run.run Tpc.Presumed_commit ~votes:(all_yes 3) in
  Alcotest.(check bool) "both commit" true
    (basic.Tpc_run.outcome && prc.Tpc_run.outcome);
  (* PrC: participants do not force the commit decision and do not ack. *)
  Alcotest.(check int) "participants force only prepare" 3
    prc.Tpc_run.participants_forced;
  Alcotest.(check bool) "fewer messages (no commit acks)" true
    (prc.Tpc_run.messages < basic.Tpc_run.messages);
  (* Coordinator forces the collecting record up front. *)
  Alcotest.(check bool) "collecting logged first" true
    (match prc.Tpc_run.coordinator_log with
    | "collecting" :: _ -> true
    | _ -> false)

let test_presumed_commit_abort_is_heavy () =
  let votes = [ ("p1", false); ("p2", true) ] in
  let prc = Tpc_run.run Tpc.Presumed_commit ~votes in
  Alcotest.(check bool) "aborts" false prc.Tpc_run.outcome;
  (* Abort under PrC needs the forced abort at the coordinator plus the
     collecting record. *)
  Alcotest.(check int) "coordinator forces" 2 prc.Tpc_run.coordinator_forced

let test_log_complexity_formula () =
  (* 2n+1 forced writes for basic 2PC commits, for several n. *)
  List.iter
    (fun n ->
      let stats = Tpc_run.run Tpc.Basic ~votes:(all_yes n) in
      Alcotest.(check int)
        (Printf.sprintf "2n+1 for n=%d" n)
        ((2 * n) + 1)
        (stats.Tpc_run.participants_forced + stats.Tpc_run.coordinator_forced))
    [ 1; 2; 5; 9 ]

(* ------------------------------------------------------------------ *)
(* Machine-level guards                                                *)
(* ------------------------------------------------------------------ *)

let test_coordinator_guards () =
  Alcotest.check_raises "no participants"
    (Invalid_argument "Tpc.coordinator: no participants") (fun () ->
      ignore (Tpc.coordinator ~txn:"t" ~participants:[] Tpc.Basic));
  let c = Tpc.coordinator ~txn:"t" ~participants:[ "p1"; "p2" ] Tpc.Basic in
  ignore (Tpc.coord_start c);
  ignore (Tpc.coord_on_vote c ~from:"p1" ~yes:true);
  Alcotest.check_raises "duplicate vote"
    (Invalid_argument "Tpc.coord_on_vote: duplicate vote from p1") (fun () ->
      ignore (Tpc.coord_on_vote c ~from:"p1" ~yes:true));
  Alcotest.check_raises "unknown participant"
    (Invalid_argument "Tpc.coord_on_vote: unknown participant zz") (fun () ->
      ignore (Tpc.coord_on_vote c ~from:"zz" ~yes:true));
  Alcotest.(check bool) "undecided" true (Tpc.coord_outcome c = None);
  ignore (Tpc.coord_on_vote c ~from:"p2" ~yes:true);
  Alcotest.(check bool) "decided" true (Tpc.coord_outcome c = Some true)

let test_participant_guards () =
  let p = Tpc.participant ~txn:"t" ~name:"p1" Tpc.Basic in
  Alcotest.check_raises "decision before vote"
    (Invalid_argument "Tpc.part_on_decision: decision before vote") (fun () ->
      ignore (Tpc.part_on_decision p ~commit:true));
  ignore (Tpc.part_on_vote_request p ~vote:false);
  (* Duplicate decisions after unilateral abort are tolerated. *)
  Alcotest.(check int) "late decision is no-op" 0
    (List.length (Tpc.part_on_decision p ~commit:false))

let test_presumptions () =
  Alcotest.(check bool) "basic presumes abort" true
    (Tpc.coord_presumption Tpc.Basic = `Abort);
  Alcotest.(check bool) "PrC presumes commit-if-collecting" true
    (Tpc.coord_presumption Tpc.Presumed_commit = `Commit_if_collecting);
  Alcotest.(check bool) "prepared participant asks" true
    (Tpc.part_presumption Tpc.Basic ~prepared:true = `Ask);
  Alcotest.(check bool) "unprepared participant aborts" true
    (Tpc.part_presumption Tpc.Presumed_commit ~prepared:false = `Abort)

let () =
  Alcotest.run "txn"
    [
      ( "model",
        [
          Alcotest.test_case "query items/action" `Quick test_query_items_and_action;
          Alcotest.test_case "query touches rmw dedup" `Quick
            test_query_touches_rmw;
          Alcotest.test_case "participants" `Quick test_transaction_participants;
        ] );
      ( "tpc",
        [
          Alcotest.test_case "basic commit" `Quick test_basic_commit;
          Alcotest.test_case "abort on NO" `Quick test_basic_abort_on_no;
          Alcotest.test_case "PrA cheap abort" `Quick test_presumed_abort_cheap_abort;
          Alcotest.test_case "PrA commit = basic" `Quick
            test_presumed_abort_commit_same_as_basic;
          Alcotest.test_case "PrC cheap commit" `Quick test_presumed_commit_cheap_commit;
          Alcotest.test_case "PrC heavy abort" `Quick
            test_presumed_commit_abort_is_heavy;
          Alcotest.test_case "log complexity 2n+1" `Quick test_log_complexity_formula;
        ] );
      ( "guards",
        [
          Alcotest.test_case "coordinator" `Quick test_coordinator_guards;
          Alcotest.test_case "participant" `Quick test_participant_guards;
          Alcotest.test_case "presumptions" `Quick test_presumptions;
        ] );
    ]
