(* Unit and property tests for the discrete-event simulator. *)

module Splitmix = Cloudtx_sim.Splitmix
module Event_heap = Cloudtx_sim.Event_heap
module Engine = Cloudtx_sim.Engine
module Latency = Cloudtx_sim.Latency
module Network = Cloudtx_sim.Network
module Transport = Cloudtx_sim.Transport
module Trace = Cloudtx_sim.Trace
module Counter = Cloudtx_metrics.Counter

(* ------------------------------------------------------------------ *)
(* Splitmix                                                            *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Splitmix.create 99L and b = Splitmix.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix.next_int64 a)
      (Splitmix.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Splitmix.create 1L and b = Splitmix.create 2L in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Splitmix.next_int64 a) (Splitmix.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_split_independence () =
  (* The split stream must not mirror the parent. *)
  let parent = Splitmix.create 7L in
  let child = Splitmix.split parent in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Splitmix.next_int64 parent) (Splitmix.next_int64 child) then
      incr matches
  done;
  Alcotest.(check bool) "independent" true (!matches < 5)

let test_rng_errors () =
  let rng = Splitmix.create 1L in
  Alcotest.check_raises "int bound"
    (Invalid_argument "Splitmix.int: bound must be positive") (fun () ->
      ignore (Splitmix.int rng 0));
  Alcotest.check_raises "uniform"
    (Invalid_argument "Splitmix.uniform: lo must be < hi") (fun () ->
      ignore (Splitmix.uniform rng ~lo:2. ~hi:1.));
  Alcotest.check_raises "exponential"
    (Invalid_argument "Splitmix.exponential: mean must be positive") (fun () ->
      ignore (Splitmix.exponential rng ~mean:0.));
  Alcotest.check_raises "choice"
    (Invalid_argument "Splitmix.choice: empty array") (fun () ->
      ignore (Splitmix.choice rng [||]))

let prop_float_range =
  QCheck.Test.make ~name:"float in [0,1)" ~count:500 QCheck.int64 (fun seed ->
      let rng = Splitmix.create seed in
      let x = Splitmix.float rng in
      x >= 0. && x < 1.)

let prop_int_range =
  QCheck.Test.make ~name:"int in [0,bound)" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Splitmix.create seed in
      let x = Splitmix.int rng bound in
      x >= 0 && x < bound)

let prop_exponential_nonneg =
  QCheck.Test.make ~name:"exponential nonnegative" ~count:200 QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      Splitmix.exponential rng ~mean:5. >= 0.)

(* ------------------------------------------------------------------ *)
(* Event_heap                                                          *)
(* ------------------------------------------------------------------ *)

let test_heap_ordering () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:3. ~seq:0 "c";
  Event_heap.push h ~time:1. ~seq:1 "a";
  Event_heap.push h ~time:2. ~seq:2 "b";
  let pop () =
    match Event_heap.pop h with Some (_, _, v) -> v | None -> "EMPTY"
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ p1; p2; p3 ];
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Event_heap.create () in
  List.iteri (fun i v -> Event_heap.push h ~time:5. ~seq:i v) [ "x"; "y"; "z" ];
  let pop () =
    match Event_heap.pop h with Some (_, _, v) -> v | None -> "EMPTY"
  in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string)) "FIFO at same time" [ "x"; "y"; "z" ]
    [ p1; p2; p3 ]

let test_heap_peek () =
  let h = Event_heap.create () in
  Alcotest.(check (option (float 0.))) "peek empty" None (Event_heap.peek_time h);
  Event_heap.push h ~time:4.2 ~seq:0 ();
  Alcotest.(check (option (float 1e-9))) "peek" (Some 4.2) (Event_heap.peek_time h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in (time, seq) order" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_range 0. 1000.))
    (fun times ->
      let h = Event_heap.create () in
      List.iteri (fun i time -> Event_heap.push h ~time ~seq:i i) times;
      let rec drain acc =
        match Event_heap.pop h with
        | None -> List.rev acc
        | Some (time, seq, _) -> drain ((time, seq) :: acc)
      in
      let out = drain [] in
      let rec sorted = function
        | (t1, s1) :: ((t2, s2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && s1 < s2)) && sorted rest
        | [ _ ] | [] -> true
      in
      List.length out = List.length times && sorted out)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order_and_time () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10. (fun () -> log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~delay:5. (fun () -> log := ("a", Engine.now e) :: !log);
  Engine.schedule e ~delay:20. (fun () -> log := ("c", Engine.now e) :: !log);
  Alcotest.(check int) "pending" 3 (Engine.pending e);
  let reason = Engine.run e in
  Alcotest.(check bool) "quiescent" true (reason = `Quiescent);
  Alcotest.(check (list (pair string (float 1e-9))))
    "execution order with clock"
    [ ("a", 5.); ("b", 10.); ("c", 20.) ]
    (List.rev !log);
  Alcotest.(check int) "steps" 3 (Engine.steps e)

let test_engine_cascading () =
  let e = Engine.create () in
  let hits = ref 0 in
  let rec ping n =
    if n > 0 then
      Engine.schedule e ~delay:1. (fun () ->
          incr hits;
          ping (n - 1))
  in
  ping 5;
  ignore (Engine.run e);
  Alcotest.(check int) "cascade depth" 5 !hits;
  Alcotest.(check (float 1e-9)) "clock advanced" 5. (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> incr hits))
    [ 1.; 2.; 50. ];
  let reason = Engine.run ~until:10. e in
  Alcotest.(check bool) "time limited" true (reason = `Time_limit);
  Alcotest.(check int) "only early events ran" 2 !hits;
  ignore (Engine.run e);
  Alcotest.(check int) "rest ran" 3 !hits

let test_engine_max_steps () =
  let e = Engine.create () in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1. (fun () -> ())
  done;
  let reason = Engine.run ~max_steps:4 e in
  Alcotest.(check bool) "step limited" true (reason = `Step_limit);
  Alcotest.(check int) "pending remain" 6 (Engine.pending e)

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let ran_at = ref (-1.) in
  Engine.schedule e ~delay:5. (fun () ->
      Engine.schedule e ~delay:(-10.) (fun () -> ran_at := Engine.now e));
  ignore (Engine.run e);
  Alcotest.(check (float 1e-9)) "clamped to now" 5. !ran_at

(* ------------------------------------------------------------------ *)
(* Latency / Network                                                   *)
(* ------------------------------------------------------------------ *)

let prop_latency_nonneg =
  QCheck.Test.make ~name:"latency samples nonnegative" ~count:300 QCheck.int64
    (fun seed ->
      let rng = Splitmix.create seed in
      Latency.sample Latency.lan rng >= 0.
      && Latency.sample Latency.wan rng >= 0.
      && Latency.sample (Latency.Constant 3.) rng = 3.)

let test_network_partition () =
  let rng = Splitmix.create 3L in
  let net = Network.create ~latency:(Latency.Constant 1.) ~rng () in
  Alcotest.(check bool) "initially connected" true
    (match Network.fate net ~src:"a" ~dst:"b" with
    | `Deliver_each _ -> true
    | `Lost -> false);
  Network.partition net "a" "b";
  Alcotest.(check bool) "partitioned symmetric" true
    (Network.partitioned net "b" "a");
  Alcotest.(check bool) "lost" true
    (Network.fate net ~src:"b" ~dst:"a" = `Lost);
  Network.heal net "a" "b";
  Alcotest.(check bool) "healed" false (Network.partitioned net "a" "b")

let test_network_self_delivery () =
  let rng = Splitmix.create 3L in
  let net = Network.create ~drop:1.0 ~latency:(Latency.Constant 9.) ~rng () in
  (* Even with 100% drop, self-messages are instant and reliable. *)
  Alcotest.(check bool) "self" true
    (Network.fate net ~src:"a" ~dst:"a" = `Deliver_each [ 0. ])

let test_network_link_override () =
  let rng = Splitmix.create 3L in
  let net = Network.create ~latency:(Latency.Constant 1.) ~rng () in
  Network.set_link net "east" "west" (Latency.Constant 25.);
  Alcotest.(check bool) "overridden link" true
    (Network.fate net ~src:"west" ~dst:"east" = `Deliver_each [ 25. ]);
  Alcotest.(check bool) "other links unchanged" true
    (Network.fate net ~src:"east" ~dst:"east2" = `Deliver_each [ 1. ]);
  Network.clear_link net "east" "west";
  Alcotest.(check bool) "cleared" true
    (Network.fate net ~src:"east" ~dst:"west" = `Deliver_each [ 1. ])

let test_network_drop_all () =
  let rng = Splitmix.create 3L in
  let net = Network.create ~drop:1.0 ~latency:(Latency.Constant 1.) ~rng () in
  Alcotest.(check bool) "dropped" true (Network.fate net ~src:"a" ~dst:"b" = `Lost)

let test_network_duplicate_all () =
  let rng = Splitmix.create 3L in
  let net =
    Network.create ~duplicate:0.5 ~latency:(Latency.Constant 1.) ~rng ()
  in
  let max_copies = ref 0 in
  for _ = 1 to 50 do
    match Network.fate net ~src:"a" ~dst:"b" with
    | `Deliver_each delays ->
      max_copies := max !max_copies (List.length delays);
      List.iter
        (fun d -> Alcotest.(check (float 0.)) "constant latency" 1. d)
        delays
    | `Lost -> Alcotest.fail "no drop configured"
  done;
  Alcotest.(check bool) "some message was duplicated" true (!max_copies >= 2);
  Network.set_duplicate net 0.;
  Alcotest.(check bool) "default restored: single copy" true
    (Network.fate net ~src:"a" ~dst:"b" = `Deliver_each [ 1. ])

let test_network_reorder_jitter () =
  let rng = Splitmix.create 3L in
  let net = Network.create ~latency:(Latency.Constant 1.) ~rng () in
  Network.set_reorder_jitter net (Some (Latency.Uniform { lo = 0.; hi = 10. }));
  let saw_jitter = ref false in
  for _ = 1 to 20 do
    match Network.fate net ~src:"a" ~dst:"b" with
    | `Deliver_each [ d ] ->
      Alcotest.(check bool) "at least base latency" true (d >= 1.);
      if d > 1. then saw_jitter := true
    | _ -> Alcotest.fail "expected one copy"
  done;
  Alcotest.(check bool) "jitter applied" true !saw_jitter;
  Network.set_reorder_jitter net None;
  Alcotest.(check bool) "jitter cleared" true
    (Network.fate net ~src:"a" ~dst:"b" = `Deliver_each [ 1. ])

let test_network_defaults_identical_draws () =
  (* Same seed, with and without the (disabled) fault knobs: identical
     RNG draw order, so existing runs stay bit-identical. *)
  let draws seed knobs =
    let rng = Splitmix.create seed in
    let net =
      if knobs then
        Network.create ~drop:0. ~duplicate:0. ~latency:Latency.lan ~rng ()
      else Network.create ~latency:Latency.lan ~rng ()
    in
    List.init 40 (fun _ ->
        match Network.fate net ~src:"a" ~dst:"b" with
        | `Deliver_each delays -> delays
        | `Lost -> [])
  in
  Alcotest.(check bool) "identical delivery schedule" true
    (draws 7L false = draws 7L true)

(* ------------------------------------------------------------------ *)
(* Transport                                                           *)
(* ------------------------------------------------------------------ *)

let make_transport () =
  Transport.create ~seed:11L ~latency:(Latency.Constant 1.)
    ~label_of:(fun s -> s)
    ()

let test_transport_delivery () =
  let t = make_transport () in
  let inbox = ref [] in
  Transport.register t "alice" (fun ~src msg -> inbox := (src, msg) :: !inbox);
  Transport.register t "bob" (fun ~src:_ _ -> ());
  Transport.send t ~src:"bob" ~dst:"alice" "hello";
  Transport.send t ~src:"bob" ~dst:"alice" "world";
  ignore (Transport.run t);
  Alcotest.(check (list (pair string string)))
    "delivered in order"
    [ ("bob", "hello"); ("bob", "world") ]
    (List.rev !inbox);
  Alcotest.(check int) "messages counted" 2
    (Counter.get (Transport.counters t) "messages");
  Alcotest.(check int) "labeled" 1
    (Counter.get (Transport.counters t) "msg:hello")

let test_transport_duplicate_registration () =
  let t = make_transport () in
  Transport.register t "x" (fun ~src:_ _ -> ());
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Transport.register: duplicate node x") (fun () ->
      Transport.register t "x" (fun ~src:_ _ -> ()))

let test_transport_crash_swallows () =
  let t = make_transport () in
  let got = ref 0 in
  Transport.register t "a" (fun ~src:_ _ -> incr got);
  Transport.register t "b" (fun ~src:_ _ -> ());
  Transport.crash t "a";
  Transport.send t ~src:"b" ~dst:"a" "m1";
  ignore (Transport.run t);
  Alcotest.(check int) "swallowed" 0 !got;
  Transport.recover t "a";
  Transport.send t ~src:"b" ~dst:"a" "m2";
  ignore (Transport.run t);
  Alcotest.(check int) "delivered after recover" 1 !got

let test_transport_unknown_destination () =
  let t = make_transport () in
  Transport.register t "a" (fun ~src:_ _ -> ());
  Transport.send t ~src:"a" ~dst:"ghost" "m";
  ignore (Transport.run t);
  let drops =
    List.filter
      (fun (e : Trace.entry) ->
        match e.Trace.kind with Trace.Drop _ -> true | _ -> false)
      (Trace.entries (Transport.trace t))
  in
  Alcotest.(check int) "traced as drop" 1 (List.length drops)

let test_trace_marks_and_messages () =
  let t = make_transport () in
  Transport.register t "a" (fun ~src:_ _ -> ());
  Transport.register t "b" (fun ~src:_ _ -> ());
  Transport.mark t ~node:"a" "proof_eval";
  Transport.send t ~src:"a" ~dst:"b" "ping";
  ignore (Transport.run t);
  let trace = Transport.trace t in
  Alcotest.(check int) "one mark" 1
    (List.length (Trace.marks ~node:"a" ~label:"proof_eval" trace));
  Alcotest.(check int) "no mark for b" 0
    (List.length (Trace.marks ~node:"b" trace));
  match Trace.messages trace with
  | [ (_, src, dst, label) ] ->
    Alcotest.(check string) "src" "a" src;
    Alcotest.(check string) "dst" "b" dst;
    Alcotest.(check string) "label" "ping" label
  | other -> Alcotest.failf "expected one message, got %d" (List.length other)

let test_trace_exporters () =
  let t = make_transport () in
  Transport.register t "node-a" (fun ~src:_ _ -> ());
  Transport.register t "node-b" (fun ~src:_ _ -> ());
  Transport.mark t ~node:"node-a" "begin";
  Transport.send t ~src:"node-a" ~dst:"node-b" "ping, with comma";
  ignore (Transport.run t);
  let trace = Transport.trace t in
  let mermaid = Trace.to_mermaid trace in
  Alcotest.(check bool) "mermaid header" true
    (String.length mermaid > 15 && String.sub mermaid 0 15 = "sequenceDiagram");
  Alcotest.(check bool) "mermaid arrow" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains mermaid "node_a->>node_b");
  let csv = Trace.to_csv trace in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "csv header" "time,kind,src,dst,label" (List.hd lines);
  (* mark + send + recv = 3 rows + header + trailing newline. *)
  Alcotest.(check int) "csv rows" 5 (List.length lines);
  Alcotest.(check bool) "comma quoted" true
    (List.exists
       (fun l ->
         let n = String.length l in
         n > 0 && String.contains l '"')
       lines)

let test_deterministic_replay () =
  (* Two transports with the same seed produce identical traces. *)
  let run () =
    let t = Transport.create ~seed:77L ~latency:Latency.lan ~label_of:Fun.id () in
    Transport.register t "a" (fun ~src:_ _ -> ());
    Transport.register t "b" (fun ~src:_ _ -> ());
    for i = 1 to 20 do
      Transport.send t ~src:"a" ~dst:"b" (Printf.sprintf "m%d" i)
    done;
    ignore (Transport.run t);
    Trace.to_string (Transport.trace t)
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independence;
          Alcotest.test_case "errors" `Quick test_rng_errors;
          qc prop_float_range;
          qc prop_int_range;
          qc prop_exponential_nonneg;
        ] );
      ( "event_heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          qc prop_heap_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "order and time" `Quick test_engine_order_and_time;
          Alcotest.test_case "cascading" `Quick test_engine_cascading;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max steps" `Quick test_engine_max_steps;
          Alcotest.test_case "negative delay clamped" `Quick
            test_engine_negative_delay_clamped;
        ] );
      ( "network",
        [
          qc prop_latency_nonneg;
          Alcotest.test_case "partition" `Quick test_network_partition;
          Alcotest.test_case "self delivery" `Quick test_network_self_delivery;
          Alcotest.test_case "link override" `Quick test_network_link_override;
          Alcotest.test_case "drop all" `Quick test_network_drop_all;
          Alcotest.test_case "duplicate copies" `Quick test_network_duplicate_all;
          Alcotest.test_case "reorder jitter" `Quick test_network_reorder_jitter;
          Alcotest.test_case "defaults keep draws identical" `Quick
            test_network_defaults_identical_draws;
        ] );
      ( "transport",
        [
          Alcotest.test_case "delivery" `Quick test_transport_delivery;
          Alcotest.test_case "duplicate registration" `Quick
            test_transport_duplicate_registration;
          Alcotest.test_case "crash swallows" `Quick test_transport_crash_swallows;
          Alcotest.test_case "unknown destination" `Quick
            test_transport_unknown_destination;
          Alcotest.test_case "trace" `Quick test_trace_marks_and_messages;
          Alcotest.test_case "trace exporters" `Quick test_trace_exporters;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
        ] );
    ]
