(* Tests for the production-hardening extensions built on top of the
   paper's core: the classic read-only 2PC optimization, the Once master
   mode, round-bound enforcement under continuous churn, multi-domain
   deployments, priced OCSP status checks, and gossip anti-entropy. *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Participant = Cloudtx_core.Participant
module Message = Cloudtx_core.Message
module Counter = Cloudtx_metrics.Counter
module Transport = Cloudtx_sim.Transport
module Latency = Cloudtx_sim.Latency
module Scenario = Cloudtx_workload.Scenario
module Gossip = Cloudtx_workload.Gossip
module Table1 = Cloudtx_workload.Table1
module Server = Cloudtx_store.Server
module Wal = Cloudtx_store.Wal
module Value = Cloudtx_store.Value
module Rule = Cloudtx_policy.Rule
module Ca = Cloudtx_policy.Ca
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction

(* ------------------------------------------------------------------ *)
(* Read-only optimization                                              *)
(* ------------------------------------------------------------------ *)

let read_only_txn scenario =
  (* Three read-only queries on distinct servers. *)
  Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3
    ~writes:false ()

let run_ro ~optimize =
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let counters = Transport.counters (Cluster.transport cluster) in
  let before = Table1.protocol_messages counters in
  let outcome =
    Manager.run_one cluster
      (Manager.config ~read_only_optimization:optimize Scheme.Incremental_punctual
         Consistency.View)
      (read_only_txn scenario)
  in
  let after = Table1.protocol_messages counters in
  let forced =
    List.fold_left
      (fun acc name ->
        acc
        + Wal.force_count
            (Server.wal (Participant.server (Cluster.participant cluster name))))
      0 scenario.Scenario.servers
  in
  (outcome, after - before, forced)

let test_read_only_skips_decision_phase () =
  let o_base, msgs_base, forced_base = run_ro ~optimize:false in
  let o_opt, msgs_opt, forced_opt = run_ro ~optimize:true in
  Alcotest.(check bool) "both commit" true
    (o_base.Outcome.committed && o_opt.Outcome.committed);
  (* Without the optimization: 2n vote + 2n decision = 12 messages and
     2n+... forced writes; with it: vote phase only. *)
  Alcotest.(check int) "baseline messages 4n" 12 msgs_base;
  Alcotest.(check int) "optimized messages 2n" 6 msgs_opt;
  Alcotest.(check int) "baseline forces 2n" 6 forced_base;
  Alcotest.(check int) "optimized forces none" 0 forced_opt

let test_read_only_mixed_writers () =
  (* One writer among readers: only the writer sees the decision phase;
     its write still lands. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let qs =
    [
      Query.make ~id:"t1-q1" ~server:"server-1" ~reads:[ "s1-k1" ] ();
      Query.make ~id:"t1-q2" ~server:"server-2"
        ~writes:[ ("s2-k1", Value.Set (Value.Int 5)) ]
        ();
      Query.make ~id:"t1-q3" ~server:"server-3" ~reads:[ "s3-k1" ] ();
    ]
  in
  let txn =
    Transaction.make ~id:"t1" ~subject:"clerk-1"
      ~credentials:(scenario.Scenario.credentials_of "clerk-1")
      qs
  in
  let counters = Transport.counters (Cluster.transport cluster) in
  let outcome =
    Manager.run_one cluster
      (Manager.config ~read_only_optimization:true Scheme.Incremental_punctual
         Consistency.View)
      txn
  in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  (* Exactly one decision and one ack. *)
  Alcotest.(check int) "one decision" 1
    (Counter.get counters "msg:decision-commit");
  Alcotest.(check int) "one ack" 1 (Counter.get counters "msg:decision-ack");
  let server2 = Participant.server (Cluster.participant cluster "server-2") in
  Alcotest.(check bool) "write applied" true
    (Server.get server2 "s2-k1" = Some (Value.Int 5));
  (* Read-only servers released their locks. *)
  List.iter
    (fun name ->
      let server = Participant.server (Cluster.participant cluster name) in
      Alcotest.(check (list string))
        (name ^ " locks free")
        []
        (Cloudtx_store.Lock_manager.held_by (Server.locks server) ~txn:"t1"))
    [ "server-1"; "server-3" ]

let test_read_only_not_offered_when_validating () =
  (* Deferred validates at commit, so the fast path must not trigger even
     with the flag on: update rounds may need the participant. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let outcome =
    Manager.run_one cluster
      (Manager.config ~read_only_optimization:true Scheme.Deferred
         Consistency.View)
      (read_only_txn scenario)
  in
  let counters = Transport.counters (Cluster.transport cluster) in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  Alcotest.(check int) "full decision phase" 3
    (Counter.get counters "msg:decision-commit")

(* ------------------------------------------------------------------ *)
(* Master modes                                                        *)
(* ------------------------------------------------------------------ *)

let test_master_once_fetches_once () =
  (* Global worst case (master ahead of everyone), Deferred: Every_round
     fetches r=2 times, Once fetches once. *)
  let run mode =
    let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
    let cluster = scenario.Scenario.cluster in
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun _ -> infinity))
         (Scenario.clerk_rules_refreshed ()));
    let txn =
      Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
    in
    let counters = Transport.counters (Cluster.transport cluster) in
    let outcome =
      Manager.run_one cluster
        (Manager.config ~master_mode:mode Scheme.Deferred Consistency.Global)
        txn
    in
    (outcome, Counter.get counters "msg:master-version-reply")
  in
  let o_every, fetches_every = run `Every_round in
  let o_once, fetches_once = run `Once in
  Alcotest.(check bool) "both commit" true
    (o_every.Outcome.committed && o_once.Outcome.committed);
  Alcotest.(check int) "every-round fetches r" 2 fetches_every;
  Alcotest.(check int) "once fetches 1" 1 fetches_once;
  Alcotest.(check int) "same rounds" o_every.Outcome.commit_rounds
    o_once.Outcome.commit_rounds

(* ------------------------------------------------------------------ *)
(* Round bound                                                         *)
(* ------------------------------------------------------------------ *)

let test_rounds_exhausted_under_churn () =
  (* v2 reaches server-1 before the transaction; v3 is published while
     round 2 is in flight: round 2's replies disagree again, and with
     max_rounds = 2 the TM gives up. Constant 1ms latency makes the
     window deterministic: round-1 replies leave at 7ms, round-2
     re-evaluations happen at 9ms, so a v3 landing at ~8.2ms splits
     them. *)
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()
  in
  let cluster = scenario.Scenario.cluster in
  ignore
    (Cluster.publish cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
       (Scenario.clerk_rules_refreshed ()));
  Transport.at (Cluster.transport cluster) ~delay:7.2 (fun () ->
      ignore
        (Cluster.publish cluster ~domain:"retail" ~delay:`Now
           (Scenario.clerk_rules_refreshed ())));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in
  let outcome =
    Manager.run_one cluster
      (Manager.config ~max_rounds:2 Scheme.Deferred Consistency.View)
      txn
  in
  Alcotest.(check bool) "aborted" false outcome.Outcome.committed;
  Alcotest.(check string) "rounds exhausted" "rounds-exhausted"
    (Outcome.reason_name outcome.Outcome.reason)

(* ------------------------------------------------------------------ *)
(* Multi-domain deployments                                            *)
(* ------------------------------------------------------------------ *)

let req_atoms =
  [ Rule.atom "req_action" [ Rule.v "a" ]; Rule.atom "req_item" [ Rule.v "i" ] ]

let clerkish domain_role =
  [
    Rule.rule
      (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
      (Rule.atom "role" [ Rule.v "s"; Rule.c domain_role ] :: req_atoms);
  ]

let multi_domain_cluster () =
  let ca = Ca.create "ca" in
  let cluster =
    Cluster.create ~seed:3L ~cas:[ ca ]
      ~domain_of:(fun item ->
        if String.length item >= 2 && item.[0] = 'h' then "hr" else "sales")
      ~servers:
        [
          Cluster.server_spec ~name:"hr-db" ~items:[ ("h-rec", Value.Int 1) ] ();
          Cluster.server_spec ~name:"sales-db" ~items:[ ("s-rec", Value.Int 1) ] ();
        ]
      ~domains:[ ("hr", clerkish "hr_clerk"); ("sales", clerkish "sales_clerk") ]
      ()
  in
  let cred =
    Ca.issue ca ~id:"amy-roles" ~subject:"amy"
      ~facts:
        [ Rule.fact "role" [ "amy"; "hr_clerk" ]; Rule.fact "role" [ "amy"; "sales_clerk" ] ]
      ~now:0. ~ttl:1e9
  in
  let txn =
    Transaction.make ~id:"t1" ~subject:"amy" ~credentials:[ cred ]
      [
        Query.make ~id:"t1-q1" ~server:"hr-db" ~reads:[ "h-rec" ] ();
        Query.make ~id:"t1-q2" ~server:"sales-db" ~reads:[ "s-rec" ] ();
      ]
  in
  (cluster, txn)

let test_multi_domain_view_independent_versions () =
  (* The hr policy moves to v2 (hr-db has it); sales stays at v1.
     phi-consistency is per-domain, so the view commits in one round. *)
  let cluster, txn = multi_domain_cluster () in
  ignore
    (Cluster.publish cluster ~domain:"hr" ~delay:`Now (clerkish "hr_clerk"));
  ignore (Cluster.run cluster);
  let outcome =
    Manager.run_one cluster (Manager.config Scheme.Deferred Consistency.View) txn
  in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  Alcotest.(check int) "single round" 1 outcome.Outcome.commit_rounds

let test_multi_domain_targeted_updates () =
  (* The hr master moves ahead of hr-db; sales is current. The update
     round touches only the hr participant. *)
  let cluster, txn = multi_domain_cluster () in
  ignore
    (Cluster.publish cluster ~domain:"hr"
       ~delay:(`Fixed (fun _ -> infinity))
       (clerkish "hr_clerk"));
  let counters = Transport.counters (Cluster.transport cluster) in
  let outcome =
    Manager.run_one cluster (Manager.config Scheme.Deferred Consistency.Global) txn
  in
  Alcotest.(check bool) "committed" true outcome.Outcome.committed;
  Alcotest.(check int) "two rounds" 2 outcome.Outcome.commit_rounds;
  Alcotest.(check int) "exactly one update" 1
    (Counter.get counters "msg:policy-update");
  (* Proofs: 2 initial + 1 hr re-evaluation. *)
  Alcotest.(check int) "proofs" 3 outcome.Outcome.proofs_evaluated

let test_cross_domain_query_rejected () =
  (* One query touching items of two domains is a configuration error. *)
  let cluster, _ = multi_domain_cluster () in
  let ca = Option.get (Cluster.ca cluster "ca") in
  let cred = Ca.issue ca ~id:"x" ~subject:"amy" ~facts:[] ~now:0. ~ttl:1e9 in
  let txn =
    Transaction.make ~id:"t2" ~subject:"amy" ~credentials:[ cred ]
      [ Query.make ~id:"t2-q1" ~server:"hr-db" ~reads:[ "h-rec"; "s-rec" ] () ]
  in
  (* The failure surfaces when the participant evaluates the query's
     domain; with punctual proofs that is at execution. *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Manager.run_one cluster
            (Manager.config Scheme.Punctual Consistency.View)
            txn);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* OCSP pricing                                                        *)
(* ------------------------------------------------------------------ *)

let test_ocsp_latency_slows_validation () =
  let run ocsp =
    let scenario =
      Scenario.retail ?ocsp_latency:ocsp ~latency:(Latency.Constant 1.)
        ~n_servers:3 ~n_subjects:1 ()
    in
    Manager.run_one scenario.Scenario.cluster
      (Manager.config Scheme.Punctual Consistency.View)
      (Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
         ~queries:3 ())
  in
  let free = run None in
  let priced = run (Some (Latency.Constant 2.)) in
  Alcotest.(check bool) "both commit" true
    (free.Outcome.committed && priced.Outcome.committed);
  (* One 2ms status check per proof. The three execution-time checks are
     serial (queries run one after another: +6ms); the three commit-time
     re-evaluations run in parallel across servers (+2ms on the critical
     path): 8ms extra in total. *)
  let delta = Outcome.latency priced -. Outcome.latency free in
  Alcotest.(check bool)
    (Printf.sprintf "priced run ~8ms slower (got %.1f)" delta)
    true
    (delta > 7.9 && delta < 8.1)

(* ------------------------------------------------------------------ *)
(* Snapshot reads                                                      *)
(* ------------------------------------------------------------------ *)

let test_snapshot_readers_never_die () =
  (* A write storm on few keys, with concurrent pure readers: without
     snapshot reads some readers fall to wait-die; with them every reader
     commits. *)
  let module Generator = Cloudtx_workload.Generator in
  let module Experiment = Cloudtx_workload.Experiment in
  let module Splitmix = Cloudtx_sim.Splitmix in
  let run ~snapshot =
    let scenario =
      Scenario.retail ~seed:5L ~n_servers:2 ~items_per_server:2 ~n_subjects:4 ()
    in
    let rng = Splitmix.create 11L in
    let writer_params =
      { Generator.default with queries_per_txn = 2; write_ratio = 1.; zipf_s = 3. }
    in
    let reader_params = { writer_params with write_ratio = 0. } in
    let arrivals = List.init 60 (fun i -> float_of_int i *. 0.3) in
    let stats =
      Experiment.run_open scenario
        (Manager.config ~snapshot_reads:snapshot Scheme.Incremental_punctual
           Consistency.View)
        ~arrivals
        (fun ~i ->
          let params = if i mod 2 = 0 then writer_params else reader_params in
          Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
    in
    (* Count aborted pure readers. *)
    List.length
      (List.filter
         (fun (o : Outcome.t) ->
           (not o.Outcome.committed)
           && (let n = o.Outcome.txn in
               match int_of_string_opt (String.sub n 1 (String.length n - 1)) with
               | Some i -> i mod 2 = 1
               | None -> false))
         stats.Experiment.outcomes)
  in
  let without = run ~snapshot:false in
  let with_snap = run ~snapshot:true in
  Alcotest.(check bool)
    (Printf.sprintf "readers die without snapshots (%d)" without)
    true (without > 0);
  Alcotest.(check int) "no reader dies with snapshots" 0 with_snap

let test_snapshot_repeatable_read () =
  (* With Constant 1ms links, a 2-query read txn started at t=0 reads q2
     at ~3ms. A write committing in between must stay invisible. *)
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:1
      ~items_per_server:4 ~n_subjects:2 ()
  in
  let cluster = scenario.Scenario.cluster in
  let reader =
    Transaction.make ~id:"r" ~subject:"clerk-1"
      ~credentials:(scenario.Scenario.credentials_of "clerk-1")
      [
        Query.make ~id:"r-q1" ~server:"server-1" ~reads:[ "s1-k1" ] ();
        Query.make ~id:"r-q2" ~server:"server-1" ~reads:[ "s1-k1" ] ();
      ]
  in
  let writer =
    Transaction.make ~id:"w" ~subject:"clerk-2"
      ~credentials:(scenario.Scenario.credentials_of "clerk-2")
      [
        Query.make ~id:"w-q1" ~server:"server-1"
          ~writes:[ ("s1-k1", Value.Set (Value.Int 5)) ]
          ();
      ]
  in
  let results = Hashtbl.create 2 in
  let config =
    Manager.config ~snapshot_reads:true Scheme.Incremental_punctual
      Consistency.View
  in
  Manager.submit cluster config reader ~on_done:(fun o ->
      Hashtbl.replace results "r" o);
  Transport.at (Cluster.transport cluster) ~delay:1.5 (fun () ->
      Manager.submit cluster config writer ~on_done:(fun o ->
          Hashtbl.replace results "w" o));
  ignore (Cluster.run cluster);
  Alcotest.(check bool) "both committed" true
    ((Hashtbl.find results "r").Outcome.committed
    && (Hashtbl.find results "w").Outcome.committed);
  (* The write landed... *)
  let server = Participant.server (Cluster.participant cluster "server-1") in
  Alcotest.(check bool) "write visible now" true
    (Server.get server "s1-k1" = Some (Value.Int 5));
  (* ...but the reader saw the snapshot value both times (not asserted on
     reply contents here; the key property is that neither txn blocked or
     died — the reader held no locks the writer had to wait on). *)
  Alcotest.(check string) "reader committed cleanly" "committed"
    (Outcome.reason_name (Hashtbl.find results "r").Outcome.reason)

(* ------------------------------------------------------------------ *)
(* Proof-satisfiability cache                                          *)
(* ------------------------------------------------------------------ *)

let test_proof_cache_preserves_outcomes () =
  (* Identical workload with and without the cache, under policy churn
     (version bumps must miss the cache) and a tightening (the new
     version's denials must not be masked by stale entries): outcomes,
     proof counts and rounds are identical. *)
  let module Churn = Cloudtx_workload.Churn in
  let module Generator = Cloudtx_workload.Generator in
  let module Experiment = Cloudtx_workload.Experiment in
  let module Splitmix = Cloudtx_sim.Splitmix in
  let run ~cache =
    let scenario =
      Scenario.retail ~seed:99L ~proof_cache:cache ~n_servers:4 ~n_subjects:3 ()
    in
    Churn.policy_refresh scenario ~period:20. ~propagation:(0., 15.) ~count:10;
    Churn.tighten_at scenario ~time:120. ~propagation:(0., 5.);
    let rng = Splitmix.create 123L in
    let params = { Generator.default with queries_per_txn = 3; write_ratio = 0.5 } in
    let stats =
      Experiment.run_sequential scenario
        (Manager.config Scheme.Continuous Consistency.View)
        ~n:20
        (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
    in
    List.map
      (fun (o : Outcome.t) ->
        (o.Outcome.txn, o.Outcome.committed, Outcome.reason_name o.Outcome.reason,
         o.Outcome.proofs_evaluated, o.Outcome.commit_rounds))
      stats.Experiment.outcomes
  in
  let plain = run ~cache:false in
  let cached = run ~cache:true in
  List.iter2
    (fun (t1, c1, r1, p1, k1) (t2, c2, r2, p2, k2) ->
      Alcotest.(check string) "same txn" t1 t2;
      Alcotest.(check bool) (t1 ^ " same decision") c1 c2;
      Alcotest.(check string) (t1 ^ " same reason") r1 r2;
      Alcotest.(check int) (t1 ^ " same proof count") p1 p2;
      Alcotest.(check int) (t1 ^ " same rounds") k1 k2)
    plain cached

(* ------------------------------------------------------------------ *)
(* Gossip anti-entropy                                                 *)
(* ------------------------------------------------------------------ *)

let test_gossip_converges () =
  let scenario = Scenario.retail ~n_servers:5 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  (* The master's push reaches only server-3. *)
  ignore
    (Cluster.publish cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if String.equal s "server-3" then 0. else infinity))
       (Scenario.clerk_rules_refreshed ()));
  ignore (Cluster.run cluster);
  Alcotest.(check bool) "diverged before gossip" false
    (Gossip.converged scenario ~domain:"retail");
  Gossip.start scenario ~period:5. ~rounds:200;
  ignore (Cluster.run cluster);
  Alcotest.(check bool) "converged after gossip" true
    (Gossip.converged scenario ~domain:"retail");
  List.iter
    (fun (_, v) -> Alcotest.(check (option int)) "at v2" (Some 2) v)
    (Gossip.versions scenario ~domain:"retail")

let () =
  Alcotest.run "extensions"
    [
      ( "read_only",
        [
          Alcotest.test_case "skips decision phase" `Quick
            test_read_only_skips_decision_phase;
          Alcotest.test_case "mixed writers" `Quick test_read_only_mixed_writers;
          Alcotest.test_case "not offered when validating" `Quick
            test_read_only_not_offered_when_validating;
        ] );
      ( "master_mode",
        [ Alcotest.test_case "once fetches once" `Quick test_master_once_fetches_once ] );
      ( "rounds",
        [
          Alcotest.test_case "exhausted under churn" `Quick
            test_rounds_exhausted_under_churn;
        ] );
      ( "multi_domain",
        [
          Alcotest.test_case "independent versions under view" `Quick
            test_multi_domain_view_independent_versions;
          Alcotest.test_case "targeted updates under global" `Quick
            test_multi_domain_targeted_updates;
          Alcotest.test_case "cross-domain query rejected" `Quick
            test_cross_domain_query_rejected;
        ] );
      ( "ocsp",
        [
          Alcotest.test_case "status checks priced" `Quick
            test_ocsp_latency_slows_validation;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "readers never die" `Quick
            test_snapshot_readers_never_die;
          Alcotest.test_case "repeatable read" `Quick test_snapshot_repeatable_read;
        ] );
      ( "proof_cache",
        [
          Alcotest.test_case "outcomes preserved" `Quick
            test_proof_cache_preserves_outcomes;
        ] );
      ( "gossip",
        [ Alcotest.test_case "converges" `Quick test_gossip_converges ] );
    ]
