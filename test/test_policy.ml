(* Unit and property tests for the policy library: rules, inference,
   credentials, CAs, policies, versioning, replicas and proofs. *)

module Rule = Cloudtx_policy.Rule
module Infer = Cloudtx_policy.Infer
module Credential = Cloudtx_policy.Credential
module Ca = Cloudtx_policy.Ca
module Policy = Cloudtx_policy.Policy
module Admin = Cloudtx_policy.Admin
module Replica = Cloudtx_policy.Replica
module Proof = Cloudtx_policy.Proof

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

let test_rule_construction () =
  let r =
    Rule.rule
      (Rule.atom "p" [ Rule.v "x" ])
      [ Rule.atom "q" [ Rule.v "x"; Rule.c "k" ] ]
  in
  Alcotest.(check string) "pretty" "p(X) :- q(X, k)." (Rule.to_string r);
  Alcotest.(check bool) "fact is ground" true (Rule.is_ground (Rule.fact "f" [ "a" ]));
  Alcotest.(check bool) "atom with var not ground" false
    (Rule.is_ground (Rule.atom "f" [ Rule.v "x" ]))

let test_rule_range_restriction () =
  Alcotest.check_raises "unbound head var"
    (Invalid_argument "Rule.rule: head variable x not bound in body") (fun () ->
      ignore (Rule.rule (Rule.atom "p" [ Rule.v "x" ]) []))

let test_fact_rejects_vars () =
  Alcotest.(check bool) "equal" true
    (Rule.atom_equal (Rule.fact "p" [ "a" ]) (Rule.atom "p" [ Rule.c "a" ]));
  Alcotest.(check bool) "var differs from const" false
    (Rule.atom_equal (Rule.atom "p" [ Rule.v "a" ]) (Rule.atom "p" [ Rule.c "a" ]))

(* ------------------------------------------------------------------ *)
(* Inference                                                           *)
(* ------------------------------------------------------------------ *)

let test_infer_direct () =
  let rules =
    [
      Rule.rule
        (Rule.atom "permit" [ Rule.v "s" ])
        [ Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ] ];
    ]
  in
  let facts = [ Rule.fact "role" [ "bob"; "clerk" ] ] in
  Alcotest.(check bool) "derives" true
    (Infer.satisfies ~rules ~facts (Rule.fact "permit" [ "bob" ]));
  Alcotest.(check bool) "does not over-derive" false
    (Infer.satisfies ~rules ~facts (Rule.fact "permit" [ "eve" ]))

let test_infer_join () =
  (* permit(S, I) :- assigned(S, R), hosted(I, R): a join on R. *)
  let rules =
    [
      Rule.rule
        (Rule.atom "permit" [ Rule.v "s"; Rule.v "i" ])
        [
          Rule.atom "assigned" [ Rule.v "s"; Rule.v "r" ];
          Rule.atom "hosted" [ Rule.v "i"; Rule.v "r" ];
        ];
    ]
  in
  let facts =
    [
      Rule.fact "assigned" [ "bob"; "east" ];
      Rule.fact "hosted" [ "db1"; "east" ];
      Rule.fact "hosted" [ "db2"; "west" ];
    ]
  in
  Alcotest.(check bool) "same region" true
    (Infer.satisfies ~rules ~facts (Rule.fact "permit" [ "bob"; "db1" ]));
  Alcotest.(check bool) "cross region denied" false
    (Infer.satisfies ~rules ~facts (Rule.fact "permit" [ "bob"; "db2" ]))

let test_infer_transitive_closure () =
  let rules =
    [
      Rule.rule
        (Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ])
        [ Rule.atom "edge" [ Rule.v "x"; Rule.v "y" ] ];
      Rule.rule
        (Rule.atom "reach" [ Rule.v "x"; Rule.v "z" ])
        [
          Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ];
          Rule.atom "edge" [ Rule.v "y"; Rule.v "z" ];
        ];
    ]
  in
  let facts =
    [
      Rule.fact "edge" [ "a"; "b" ];
      Rule.fact "edge" [ "b"; "c" ];
      Rule.fact "edge" [ "c"; "d" ];
    ]
  in
  let db = Infer.saturate ~rules ~facts in
  Alcotest.(check bool) "a reaches d" true
    (Infer.holds db (Rule.fact "reach" [ "a"; "d" ]));
  Alcotest.(check bool) "d reaches nothing" false
    (Infer.holds db (Rule.fact "reach" [ "d"; "a" ]));
  (* 3 edges + 6 reach pairs = 9 facts. *)
  Alcotest.(check int) "fact count" 9 (Infer.size db)

let test_infer_query_bindings () =
  let facts =
    [ Rule.fact "role" [ "bob"; "clerk" ]; Rule.fact "role" [ "amy"; "boss" ] ]
  in
  let db = Infer.saturate ~rules:[] ~facts in
  let bindings = Infer.query db (Rule.atom "role" [ Rule.v "who"; Rule.c "clerk" ]) in
  Alcotest.(check int) "one binding" 1 (List.length bindings);
  Alcotest.(check (option string)) "bob" (Some "bob")
    (List.assoc_opt "who" (List.hd bindings))

let test_infer_nonground_errors () =
  let db = Infer.saturate ~rules:[] ~facts:[] in
  Alcotest.check_raises "holds nonground"
    (Invalid_argument "Infer.holds: query atom must be ground") (fun () ->
      ignore (Infer.holds db (Rule.atom "p" [ Rule.v "x" ])));
  Alcotest.check_raises "saturate nonground fact"
    (Invalid_argument "Infer: non-ground fact (variable x)") (fun () ->
      ignore (Infer.saturate ~rules:[] ~facts:[ Rule.atom "p" [ Rule.v "x" ] ]))

let prop_infer_monotone =
  (* Adding facts never invalidates a derivation. *)
  let gen_fact =
    QCheck.Gen.(
      map2
        (fun p a -> Rule.fact (Printf.sprintf "p%d" p) [ Printf.sprintf "c%d" a ])
        (0 -- 3) (0 -- 5))
  in
  QCheck.Test.make ~name:"inference is monotone" ~count:100
    QCheck.(
      pair
        (make Gen.(list_size (1 -- 10) gen_fact))
        (make Gen.(list_size (0 -- 5) gen_fact)))
    (fun (base, extra) ->
      let rules =
        [
          Rule.rule
            (Rule.atom "goal" [ Rule.v "x" ])
            [ Rule.atom "p0" [ Rule.v "x" ]; Rule.atom "p1" [ Rule.v "x" ] ];
        ]
      in
      let derived_before = Infer.facts (Infer.saturate ~rules ~facts:base) in
      let db_after = Infer.saturate ~rules ~facts:(base @ extra) in
      List.for_all (fun f -> Infer.holds db_after f) derived_before)

(* ------------------------------------------------------------------ *)
(* Negation (stratified)                                               *)
(* ------------------------------------------------------------------ *)

let test_negation_basic () =
  (* permit(S) :- role(S, clerk), not suspended(S). *)
  let rules =
    [
      Rule.rule_literals
        (Rule.atom "permit" [ Rule.v "s" ])
        [
          Rule.Pos (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ]);
          Rule.Neg (Rule.atom "suspended" [ Rule.v "s" ]);
        ];
    ]
  in
  let base = [ Rule.fact "role" [ "bob"; "clerk" ]; Rule.fact "role" [ "amy"; "clerk" ] ] in
  let with_suspension = Rule.fact "suspended" [ "amy" ] :: base in
  Alcotest.(check bool) "bob permitted" true
    (Infer.satisfies ~rules ~facts:with_suspension (Rule.fact "permit" [ "bob" ]));
  Alcotest.(check bool) "amy suspended" false
    (Infer.satisfies ~rules ~facts:with_suspension (Rule.fact "permit" [ "amy" ]));
  Alcotest.(check bool) "amy fine without suspension" true
    (Infer.satisfies ~rules ~facts:base (Rule.fact "permit" [ "amy" ]))

let test_negation_stratified_through_derivation () =
  (* suspended is itself derived; permit sits a stratum above it. *)
  let rules =
    [
      Rule.rule
        (Rule.atom "suspended" [ Rule.v "s" ])
        [ Rule.atom "flagged" [ Rule.v "s"; Rule.c "fraud" ] ];
      Rule.rule_literals
        (Rule.atom "permit" [ Rule.v "s" ])
        [
          Rule.Pos (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ]);
          Rule.Neg (Rule.atom "suspended" [ Rule.v "s" ]);
        ];
    ]
  in
  let facts =
    [
      Rule.fact "role" [ "bob"; "clerk" ];
      Rule.fact "role" [ "amy"; "clerk" ];
      Rule.fact "flagged" [ "amy"; "fraud" ];
    ]
  in
  Alcotest.(check bool) "bob permitted" true
    (Infer.satisfies ~rules ~facts (Rule.fact "permit" [ "bob" ]));
  Alcotest.(check bool) "amy denied via derived suspension" false
    (Infer.satisfies ~rules ~facts (Rule.fact "permit" [ "amy" ]))

let test_negation_unstratifiable_rejected () =
  let rules =
    [
      Rule.rule_literals
        (Rule.atom "p" [ Rule.v "x" ])
        [
          Rule.Pos (Rule.atom "base" [ Rule.v "x" ]);
          Rule.Neg (Rule.atom "p" [ Rule.v "x" ]);
        ];
    ]
  in
  Alcotest.check_raises "negation cycle"
    (Invalid_argument "Infer: rules are not stratifiable (negation cycle)")
    (fun () ->
      ignore (Infer.saturate ~rules ~facts:[ Rule.fact "base" [ "a" ] ]))

let test_negation_safety () =
  (* A negated literal may not introduce new variables. *)
  Alcotest.check_raises "unsafe negation"
    (Invalid_argument "Rule.rule: negated variable y not bound in body")
    (fun () ->
      ignore
        (Rule.rule_literals
           (Rule.atom "p" [ Rule.v "x" ])
           [
             Rule.Pos (Rule.atom "q" [ Rule.v "x" ]);
             Rule.Neg (Rule.atom "r" [ Rule.v "y" ]);
           ]))

let test_negation_in_policy () =
  (* A policy with a suspension list: the proof machinery sees denials for
     suspended subjects only. *)
  let policy =
    Policy.create ~domain:"d"
      [
        Rule.rule_literals
          (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
          [
            Rule.Pos (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ]);
            Rule.Pos (Rule.atom "req_action" [ Rule.v "a" ]);
            Rule.Pos (Rule.atom "req_item" [ Rule.v "i" ]);
            Rule.Neg (Rule.atom "suspended" [ Rule.v "s" ]);
          ];
        Rule.rule (Rule.fact "suspended" [ "amy" ]) [];
      ]
  in
  let facts subject =
    [
      Rule.fact "role" [ subject; "clerk" ];
      Rule.fact "req_action" [ "read" ];
      Rule.fact "req_item" [ "x" ];
    ]
  in
  Alcotest.(check bool) "bob permitted" true
    (Policy.permits policy ~facts:(facts "bob") ~subject:"bob" ~action:"read" ~item:"x");
  Alcotest.(check bool) "amy denied" false
    (Policy.permits policy ~facts:(facts "amy") ~subject:"amy" ~action:"read" ~item:"x")

(* ------------------------------------------------------------------ *)
(* Credentials                                                         *)
(* ------------------------------------------------------------------ *)

let cred ?(issued_at = 0.) ?(expires_at = 100.) ?(issuer = "ca") () =
  Credential.make ~id:"c1" ~subject:"bob" ~issuer ~kind:Credential.Attribute
    ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
    ~issued_at ~expires_at

let test_credential_window () =
  let c = cred () in
  Alcotest.(check bool) "valid inside" true
    (Credential.syntactically_valid c ~at:50. = Ok ());
  Alcotest.(check bool) "not yet valid" true
    (Credential.syntactically_valid c ~at:(-1.) = Error Credential.Not_yet_valid);
  Alcotest.(check bool) "expired at omega" true
    (Credential.syntactically_valid c ~at:100. = Error Credential.Expired)

let test_credential_forgery () =
  let c = cred () in
  Alcotest.(check bool) "genuine" true (Credential.signature_valid c);
  let forged = Credential.forge c ~facts:[ Rule.fact "role" [ "bob"; "admin" ] ] in
  Alcotest.(check bool) "forged" false (Credential.signature_valid forged);
  Alcotest.(check bool) "forgery caught" true
    (Credential.syntactically_valid forged ~at:50.
    = Error Credential.Bad_signature)

let test_credential_bad_interval () =
  Alcotest.check_raises "empty interval"
    (Invalid_argument "Credential.make: expires_at must follow issued_at")
    (fun () -> ignore (cred ~issued_at:10. ~expires_at:10. ()))

(* ------------------------------------------------------------------ *)
(* Certificate authorities                                             *)
(* ------------------------------------------------------------------ *)

let test_ca_lifecycle () =
  let ca = Ca.create "corp" in
  let c = Ca.issue ca ~id:"bob-role" ~subject:"bob" ~facts:[] ~now:0. ~ttl:100. in
  Alcotest.(check bool) "good" true (Ca.status ca "bob-role" ~at:10. = Ca.Good);
  Alcotest.(check bool) "unknown" true (Ca.status ca "nope" ~at:10. = Ca.Unknown);
  Alcotest.(check bool) "semantically valid" true
    (Ca.semantically_valid ca c ~at:10.);
  Ca.revoke ca "bob-role" ~at:50.;
  Alcotest.(check bool) "still good before" true
    (Ca.status ca "bob-role" ~at:49.9 = Ca.Good);
  Alcotest.(check bool) "revoked after" true
    (Ca.status ca "bob-role" ~at:50. = Ca.Revoked 50.);
  Alcotest.(check bool) "semantically invalid" false
    (Ca.semantically_valid ca c ~at:60.);
  Alcotest.(check int) "issued count" 1 (Ca.issued_count ca)

let test_ca_revoke_unknown () =
  let ca = Ca.create "corp" in
  Alcotest.check_raises "unknown id"
    (Invalid_argument "Ca.revoke: corp never issued ghost") (fun () ->
      Ca.revoke ca "ghost" ~at:1.)

let test_ca_double_revoke_keeps_earlier () =
  let ca = Ca.create "corp" in
  ignore (Ca.issue ca ~id:"x" ~subject:"s" ~facts:[] ~now:0. ~ttl:100.);
  Ca.revoke ca "x" ~at:30.;
  Ca.revoke ca "x" ~at:60.;
  Alcotest.(check bool) "earlier wins" true (Ca.status ca "x" ~at:40. = Ca.Revoked 30.)

(* ------------------------------------------------------------------ *)
(* Policies, admin, replicas                                           *)
(* ------------------------------------------------------------------ *)

let clerk_policy ?accept_capabilities () =
  Policy.create ?accept_capabilities ~domain:"app"
    [
      Rule.rule
        (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
        [
          Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ];
          Rule.atom "req_action" [ Rule.v "a" ];
          Rule.atom "req_item" [ Rule.v "i" ];
        ];
    ]

let test_policy_permits () =
  let p = clerk_policy () in
  let facts =
    [
      Rule.fact "role" [ "bob"; "clerk" ];
      Rule.fact "req_action" [ "read" ];
      Rule.fact "req_item" [ "db1" ];
    ]
  in
  Alcotest.(check bool) "grant" true
    (Policy.permits p ~facts ~subject:"bob" ~action:"read" ~item:"db1");
  Alcotest.(check bool) "deny other subject" false
    (Policy.permits p ~facts ~subject:"eve" ~action:"read" ~item:"db1")

let test_policy_capabilities_toggle () =
  let facts = [ Policy.capability_fact ~subject:"bob" ~action:"read" ~item:"db1" ] in
  let open_p = clerk_policy () in
  let closed_p = clerk_policy ~accept_capabilities:false () in
  Alcotest.(check bool) "capability accepted" true
    (Policy.permits open_p ~facts ~subject:"bob" ~action:"read" ~item:"db1");
  Alcotest.(check bool) "capability refused" false
    (Policy.permits closed_p ~facts ~subject:"bob" ~action:"read" ~item:"db1")

let test_policy_permits_all () =
  let p = clerk_policy () in
  let facts =
    [
      Rule.fact "role" [ "bob"; "clerk" ];
      Rule.fact "req_action" [ "read" ];
      Rule.fact "req_item" [ "db1" ];
      (* db2 has no req_item fact, so its goal cannot derive. *)
    ]
  in
  Alcotest.(check (list string))
    "denied items" [ "db2" ]
    (Policy.permits_all p ~facts ~subject:"bob" ~action:"read"
       ~items:[ "db1"; "db2" ])

let test_policy_versioning () =
  let p = clerk_policy () in
  Alcotest.(check int) "v1" 1 p.Policy.version;
  let p2 = Policy.amend p [] in
  Alcotest.(check int) "v2" 2 p2.Policy.version;
  Alcotest.(check bool) "flag inherited" true p2.Policy.accept_capabilities;
  let p3 = Policy.amend ~accept_capabilities:false p2 [] in
  Alcotest.(check bool) "flag overridden" false p3.Policy.accept_capabilities

let test_admin_history () =
  let a = Admin.create ~domain:"app" [] in
  Alcotest.(check int) "starts at 1" 1 (Admin.latest_version a);
  let _v2 = Admin.publish a [] in
  let v3 = Admin.publish a [] in
  Alcotest.(check int) "latest" 3 (Admin.latest_version a);
  Alcotest.(check int) "history" 3 (Admin.history_length a);
  Alcotest.(check int) "get v2" 2 ((Admin.get a 2 |> Option.get).Policy.version);
  Alcotest.(check bool) "latest body" true (Admin.latest a == v3);
  Alcotest.(check bool) "missing version" true (Admin.get a 99 = None)

let test_replica_monotone () =
  let r = Replica.create () in
  let a = Admin.create ~domain:"app" [] in
  let v1 = Admin.latest a in
  let v2 = Admin.publish a [] in
  Alcotest.(check bool) "install v2" true (Replica.install r v2 = `Installed);
  Alcotest.(check bool) "v1 is stale" true (Replica.install r v1 = `Stale);
  Alcotest.(check (option int)) "holds v2" (Some 2) (Replica.version r ~domain:"app");
  Alcotest.(check (list string)) "domains" [ "app" ] (Replica.domains r)

(* ------------------------------------------------------------------ *)
(* Policy analysis                                                     *)
(* ------------------------------------------------------------------ *)

module Analysis = Cloudtx_policy.Analysis

let analysis_probes =
  Analysis.probe_space ~subjects:[ "bob"; "eve" ] ~actions:[ "read"; "write" ]
    ~items:[ "db1" ]
    ~facts_for:(fun subject ->
      if String.equal subject "bob" then [ Rule.fact "role" [ subject; "clerk" ] ]
      else [])

let clerk_all =
  Policy.create ~domain:"d"
    [
      Rule.rule
        (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
        [
          Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ];
          Rule.atom "req_action" [ Rule.v "a" ];
          Rule.atom "req_item" [ Rule.v "i" ];
        ];
    ]

let clerk_read_only =
  Policy.create ~domain:"d"
    [
      Rule.rule
        (Rule.atom "permit" [ Rule.v "s"; Rule.c "read"; Rule.v "i" ])
        [
          Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ];
          Rule.atom "req_item" [ Rule.v "i" ];
        ];
    ]

let everyone_reads =
  Policy.create ~domain:"d"
    [
      Rule.rule
        (Rule.atom "permit" [ Rule.v "s"; Rule.c "read"; Rule.v "i" ])
        [ Rule.atom "req_subject" [ Rule.v "s" ]; Rule.atom "req_item" [ Rule.v "i" ] ];
    ]

let test_analysis_equivalent () =
  Alcotest.(check string) "same policy" "equivalent"
    (Analysis.verdict_name
       (Analysis.compare_policies ~probes:analysis_probes clerk_all clerk_all))

let test_analysis_tightened () =
  match Analysis.compare_policies ~probes:analysis_probes clerk_all clerk_read_only with
  | Analysis.Tightened lost ->
    (* Bob loses write on db1; eve had nothing to lose. *)
    Alcotest.(check int) "one lost access" 1 (List.length lost);
    let p = List.hd lost in
    Alcotest.(check string) "who" "bob" p.Analysis.subject;
    Alcotest.(check string) "what" "write" p.Analysis.action
  | v -> Alcotest.failf "expected Tightened, got %s" (Analysis.verdict_name v)

let test_analysis_relaxed_and_mixed () =
  (match Analysis.compare_policies ~probes:analysis_probes clerk_read_only everyone_reads with
  | Analysis.Relaxed gained ->
    (* Eve gains read. *)
    Alcotest.(check bool) "eve gains" true
      (List.exists (fun p -> p.Analysis.subject = "eve") gained)
  | v -> Alcotest.failf "expected Relaxed, got %s" (Analysis.verdict_name v));
  match Analysis.compare_policies ~probes:analysis_probes clerk_all everyone_reads with
  | Analysis.Mixed { lost; gained } ->
    Alcotest.(check bool) "bob loses write" true
      (List.exists
         (fun p -> p.Analysis.subject = "bob" && p.Analysis.action = "write")
         lost);
    Alcotest.(check bool) "eve gains read" true
      (List.exists (fun p -> p.Analysis.subject = "eve") gained)
  | v -> Alcotest.failf "expected Mixed, got %s" (Analysis.verdict_name v)

(* ------------------------------------------------------------------ *)
(* Proofs of authorization                                             *)
(* ------------------------------------------------------------------ *)

let proof_env ?(cas = []) ?(servers = []) ?(context = []) () =
  {
    Proof.find_ca = (fun n -> List.assoc_opt n cas);
    trusted_server = (fun n -> List.mem n servers);
    context = (fun () -> context);
  }

let request = { Proof.subject = "bob"; action = "read"; items = [ "db1" ] }

let test_proof_grant () =
  let ca = Ca.create "corp" in
  let c =
    Ca.issue ca ~id:"bob-role" ~subject:"bob"
      ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
      ~now:0. ~ttl:100.
  in
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[ c ]
      ~env:(proof_env ~cas:[ ("corp", ca) ] ())
      ~at:10. request
  in
  Alcotest.(check bool) "granted" true p.Proof.result;
  Alcotest.(check int) "no failures" 0 (List.length p.Proof.failures);
  Alcotest.(check int) "version recorded" 1 p.Proof.policy_version;
  Alcotest.(check string) "domain recorded" "app" p.Proof.domain

let test_proof_denied_without_role () =
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[] ~env:(proof_env ()) ~at:10. request
  in
  Alcotest.(check bool) "denied" false p.Proof.result;
  Alcotest.(check bool) "denied item named" true
    (List.exists
       (function Proof.Denied "db1" -> true | _ -> false)
       p.Proof.failures)

let test_proof_revoked_credential () =
  let ca = Ca.create "corp" in
  let c =
    Ca.issue ca ~id:"bob-role" ~subject:"bob"
      ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
      ~now:0. ~ttl:100.
  in
  Ca.revoke ca "bob-role" ~at:5.;
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[ c ]
      ~env:(proof_env ~cas:[ ("corp", ca) ] ())
      ~at:10. request
  in
  Alcotest.(check bool) "revocation invalidates" false p.Proof.result;
  Alcotest.(check bool) "revoked failure" true
    (List.exists
       (function Proof.Revoked "bob-role" -> true | _ -> false)
       p.Proof.failures)

let test_proof_expired_credential_fails_whole_proof () =
  (* Strictness: even with context facts that would grant on their own, an
     invalid presented credential makes the proof FALSE. *)
  let ca = Ca.create "corp" in
  let stale = Ca.issue ca ~id:"old" ~subject:"bob" ~facts:[] ~now:0. ~ttl:1. in
  let context = [ Rule.fact "role" [ "bob"; "clerk" ] ] in
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[ stale ]
      ~env:(proof_env ~cas:[ ("corp", ca) ] ~context ())
      ~at:10. request
  in
  Alcotest.(check bool) "strict" false p.Proof.result

let test_proof_untrusted_issuer () =
  let c =
    Credential.make ~id:"x" ~subject:"bob" ~issuer:"shady"
      ~kind:Credential.Attribute
      ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
      ~issued_at:0. ~expires_at:100.
  in
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[ c ] ~env:(proof_env ()) ~at:10. request
  in
  Alcotest.(check bool) "untrusted" false p.Proof.result;
  Alcotest.(check bool) "failure kind" true
    (List.exists
       (function Proof.Untrusted_issuer "x" -> true | _ -> false)
       p.Proof.failures)

let test_proof_capability_from_server () =
  (* Bob's read credential: issued by a trusted cloud server, it grants
     via the capability rule without any role fact. *)
  let access =
    Credential.make ~id:"bob-read" ~subject:"bob" ~issuer:"s2"
      ~kind:(Credential.Access { action = "read"; item = "db1" })
      ~facts:[] ~issued_at:0. ~expires_at:100.
  in
  let env = proof_env ~servers:[ "s2" ] () in
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[ access ] ~env ~at:10. request
  in
  Alcotest.(check bool) "capability grants" true p.Proof.result;
  (* Same credential under a policy that stopped accepting capabilities. *)
  let strict = clerk_policy ~accept_capabilities:false () in
  let p2 =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:strict ~creds:[ access ]
      ~env ~at:10. request
  in
  Alcotest.(check bool) "tightened policy refuses" false p2.Proof.result

let test_proof_context_facts () =
  let context = [ Rule.fact "role" [ "bob"; "clerk" ] ] in
  let p =
    Proof.evaluate ~query_id:"q1" ~server:"s1" ~policy:(clerk_policy ())
      ~creds:[] ~env:(proof_env ~context ()) ~at:10. request
  in
  Alcotest.(check bool) "context grants" true p.Proof.result

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "policy"
    [
      ( "rules",
        [
          Alcotest.test_case "construction" `Quick test_rule_construction;
          Alcotest.test_case "range restriction" `Quick test_rule_range_restriction;
          Alcotest.test_case "fact equality" `Quick test_fact_rejects_vars;
        ] );
      ( "inference",
        [
          Alcotest.test_case "direct" `Quick test_infer_direct;
          Alcotest.test_case "join" `Quick test_infer_join;
          Alcotest.test_case "transitive closure" `Quick
            test_infer_transitive_closure;
          Alcotest.test_case "query bindings" `Quick test_infer_query_bindings;
          Alcotest.test_case "non-ground errors" `Quick test_infer_nonground_errors;
          qc prop_infer_monotone;
        ] );
      ( "negation",
        [
          Alcotest.test_case "basic" `Quick test_negation_basic;
          Alcotest.test_case "through derivation" `Quick
            test_negation_stratified_through_derivation;
          Alcotest.test_case "unstratifiable rejected" `Quick
            test_negation_unstratifiable_rejected;
          Alcotest.test_case "safety" `Quick test_negation_safety;
          Alcotest.test_case "in policy" `Quick test_negation_in_policy;
        ] );
      ( "credentials",
        [
          Alcotest.test_case "validity window" `Quick test_credential_window;
          Alcotest.test_case "forgery" `Quick test_credential_forgery;
          Alcotest.test_case "bad interval" `Quick test_credential_bad_interval;
        ] );
      ( "ca",
        [
          Alcotest.test_case "lifecycle" `Quick test_ca_lifecycle;
          Alcotest.test_case "revoke unknown" `Quick test_ca_revoke_unknown;
          Alcotest.test_case "double revoke" `Quick
            test_ca_double_revoke_keeps_earlier;
        ] );
      ( "policy",
        [
          Alcotest.test_case "permits" `Quick test_policy_permits;
          Alcotest.test_case "capability toggle" `Quick
            test_policy_capabilities_toggle;
          Alcotest.test_case "permits_all" `Quick test_policy_permits_all;
          Alcotest.test_case "versioning" `Quick test_policy_versioning;
          Alcotest.test_case "admin history" `Quick test_admin_history;
          Alcotest.test_case "replica monotone" `Quick test_replica_monotone;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "equivalent" `Quick test_analysis_equivalent;
          Alcotest.test_case "tightened" `Quick test_analysis_tightened;
          Alcotest.test_case "relaxed and mixed" `Quick
            test_analysis_relaxed_and_mixed;
        ] );
      ( "proofs",
        [
          Alcotest.test_case "grant" `Quick test_proof_grant;
          Alcotest.test_case "deny without role" `Quick
            test_proof_denied_without_role;
          Alcotest.test_case "revoked credential" `Quick
            test_proof_revoked_credential;
          Alcotest.test_case "strictness on invalid credential" `Quick
            test_proof_expired_credential_fails_whole_proof;
          Alcotest.test_case "untrusted issuer" `Quick test_proof_untrusted_issuer;
          Alcotest.test_case "capability" `Quick test_proof_capability_from_server;
          Alcotest.test_case "context facts" `Quick test_proof_context_facts;
        ] );
    ]
