(* A two-region deployment: intra-region links are sub-millisecond, the
   region interconnect is a 25ms WAN hop, and the master policy server
   lives in the east.  Shows how topology interacts with the paper's
   consistency levels:

   - a transaction confined to the TM's region is fast under view
     consistency;
   - spanning regions costs WAN round-trips per query;
   - global consistency adds master round-trips — cheap for an east TM,
     expensive for a west one;
   - a policy update pushed only to the east propagates west by gossip.

   Run with: dune exec examples/multi_region.exe *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Transport = Cloudtx_sim.Transport
module Network = Cloudtx_sim.Network
module Latency = Cloudtx_sim.Latency
module Scenario = Cloudtx_workload.Scenario
module Gossip = Cloudtx_workload.Gossip

let wan = Latency.Constant 25.

(* server-1/2 are east, server-3/4 west; the master is east. *)
let region server =
  match server with
  | "server-1" | "server-2" | "master" -> `East
  | "server-3" | "server-4" -> `West
  | _ -> `East

let wire_topology cluster ~tms_west ~tms_east =
  let network = Transport.network (Cluster.transport cluster) in
  let nodes = [ "server-1"; "server-2"; "server-3"; "server-4"; "master" ] in
  let all = nodes @ tms_west @ tms_east in
  let region_of n =
    if List.mem n tms_west then `West
    else if List.mem n tms_east then `East
    else region n
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i < j && region_of a <> region_of b then
            Network.set_link network a b wan)
        all)
    (List.map Fun.id all)
  |> ignore

let () =
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 0.5) ~n_servers:4 ~n_subjects:1 ()
  in
  let cluster = scenario.Cloudtx_workload.Scenario.cluster in
  (* TMs t-east-* run in the east; t-west-* in the west. *)
  wire_topology cluster
    ~tms_west:[ "tm-t-west-local"; "tm-t-west-global" ]
    ~tms_east:[ "tm-t-east-local"; "tm-t-east-span"; "tm-t-east-global" ];

  let run id ~start ~queries ~level =
    let txn =
      Scenario.spread_transaction scenario ~id ~subject:"clerk-1" ~queries
        ~start ()
    in
    let o = Manager.run_one cluster (Manager.config Scheme.Deferred level) txn in
    Format.printf "  %-18s %-6s %-28s %7.1f ms (%s)@." id
      (Consistency.name level)
      (Printf.sprintf "%d queries starting at server-%d" queries (start + 1))
      (Outcome.latency o)
      (if o.Outcome.committed then "commit" else "abort")
  in
  Format.printf "topology: east = {server-1, server-2, master}, west = {server-3, server-4}@.";
  Format.printf "intra-region 0.5ms, interconnect 25ms@.@.";

  (* East TM, east-only data. *)
  run "t-east-local" ~start:0 ~queries:2 ~level:Consistency.View;
  (* East TM, data in both regions. *)
  run "t-east-span" ~start:0 ~queries:4 ~level:Consistency.View;
  (* West TM, west-only data: view consistency never crosses the WAN. *)
  run "t-west-local" ~start:2 ~queries:2 ~level:Consistency.View;
  (* Same, but global consistency must reach the east master. *)
  run "t-west-global" ~start:2 ~queries:2 ~level:Consistency.Global;
  (* An east TM pays almost nothing extra for global consistency. *)
  run "t-east-global" ~start:0 ~queries:2 ~level:Consistency.Global;

  (* Policy propagation: the master's push reaches the east only; gossip
     carries it across the interconnect. *)
  Format.printf "@.policy v2 pushed to the east replicas only...@.";
  ignore
    (Cluster.publish cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if region s = `East then 0.5 else infinity))
       (Scenario.clerk_rules_refreshed ()));
  Gossip.start scenario ~period:20. ~rounds:60;
  ignore (Cluster.run cluster);
  Format.printf "after gossip:@.";
  List.iter
    (fun (server, version) ->
      Format.printf "  %-10s v%s@." server
        (match version with Some v -> string_of_int v | None -> "?"))
    (Gossip.versions scenario ~domain:"retail");
  assert (Gossip.converged scenario ~domain:"retail")
