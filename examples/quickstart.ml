(* Quickstart: a three-server retail cluster, one clerk, one distributed
   transaction committed safely with 2PVC under the Deferred scheme.

   Run with: dune exec examples/quickstart.exe *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module View = Cloudtx_core.View
module Scenario = Cloudtx_workload.Scenario
module Proof = Cloudtx_policy.Proof
module Server = Cloudtx_store.Server

let () =
  (* 1. Build a simulated deployment: 3 data servers, clerk credentials
     issued by the corporate CA, one "retail" policy domain. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in

  (* 2. A transaction on behalf of clerk-1 touching all three servers:
     read a stock level on each, debit one. *)
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in

  (* 3. Run it under Deferred proofs of authorization with view
     consistency: all proofs evaluated at commit time by 2PVC. *)
  let config = Manager.config Scheme.Deferred Consistency.View in
  let outcome = Manager.run_one cluster config txn in

  Format.printf "outcome : %a@." Outcome.pp outcome;
  Format.printf "proofs in the transaction's view:@.";
  List.iter
    (fun p -> Format.printf "  %a@." Proof.pp p)
    (View.all outcome.Outcome.view);

  (* 4. The committed write is visible on the server that hosts it. *)
  let participant = Cluster.participant cluster "server-1" in
  let server = Cloudtx_core.Participant.server participant in
  (match Server.get server "s1-k2" with
  | Some v -> Format.printf "s1-k2 after commit = %a@." Cloudtx_store.Value.pp v
  | None -> Format.printf "s1-k2 missing?!@.");

  if not outcome.Outcome.committed then exit 1
