(* Funds transfers over 2PVC: a banking deployment where the "data
   consistency" half of safe transactions does real work (overdraft
   protection via integrity votes) and authorization distinguishes
   customers, tellers and auditors.

   Run with: dune exec examples/bank_transfer.exe *)

module Banking = Cloudtx_workload.Banking
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Splitmix = Cloudtx_sim.Splitmix

let show label (o : Outcome.t) =
  Format.printf "  %-42s -> %s (%s)@." label
    (if o.Outcome.committed then "COMMIT" else "ABORT")
    (Outcome.reason_name o.Outcome.reason)

let () =
  let bank = Banking.build ~n_branches:3 ~accounts_per_branch:4 () in
  let cluster = bank.Banking.cluster in
  let config = Manager.config Scheme.Punctual Consistency.View in
  let run txn = Manager.run_one cluster config txn in
  let balance acct =
    match Banking.balance bank acct with Some n -> n | None -> -1
  in

  Format.printf "opening: every account holds 100; total funds = %d@."
    (Banking.total_funds bank);

  (* A customer moves their own money across branches. *)
  let o1 =
    run
      (Banking.transfer bank ~id:"t1" ~by:"cust-1" ~from_acct:"acct-1-1"
         ~to_acct:"acct-2-1" ~amount:40)
  in
  show "cust-1: 40 from acct-1-1 to acct-2-1" o1;
  Format.printf "    acct-1-1 = %d, acct-2-1 = %d@." (balance "acct-1-1")
    (balance "acct-2-1");

  (* Overdraft: the source branch votes NO on integrity; 2PVC aborts and
     the credit side never applies. *)
  let o2 =
    run
      (Banking.transfer bank ~id:"t2" ~by:"cust-1" ~from_acct:"acct-1-1"
         ~to_acct:"acct-3-1" ~amount:500)
  in
  show "cust-1: overdraft of 500" o2;
  Format.printf "    acct-1-1 = %d (unchanged), acct-3-1 = %d (unchanged)@."
    (balance "acct-1-1") (balance "acct-3-1");

  (* Authorization: cust-1 cannot debit cust-2's account... *)
  let o3 =
    run
      (Banking.transfer bank ~id:"t3" ~by:"cust-1" ~from_acct:"acct-1-2"
         ~to_acct:"acct-1-1" ~amount:10)
  in
  show "cust-1: raid cust-2's account" o3;

  (* ... but a teller can. *)
  let o4 =
    run
      (Banking.transfer bank ~id:"t4" ~by:"teller-1" ~from_acct:"acct-1-2"
         ~to_acct:"acct-1-1" ~amount:10)
  in
  show "teller-1: the same move, authorized" o4;

  (* Auditors read whole branches but cannot write. *)
  let o5 = run (Banking.audit bank ~id:"t5" ~by:"auditor-1" ~branch:"branch-2") in
  show "auditor-1: read branch-2" o5;

  (* A burst of random transfers, a third of them overdrafts. *)
  let rng = Splitmix.create 99L in
  let committed = ref 0 and aborted = ref 0 in
  for i = 10 to 40 do
    let o =
      run
        (Banking.random_transfer bank rng ~id:(Printf.sprintf "t%d" i)
           ~overdraft_ratio:0.33)
    in
    if o.Outcome.committed then incr committed else incr aborted
  done;
  Format.printf
    "@.random burst: %d committed, %d aborted; total funds = %d (conserved)@."
    !committed !aborted (Banking.total_funds bank);
  assert (Banking.total_funds bank = 3 * 4 * 100)
