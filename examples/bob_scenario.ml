(* The paper's Section II motivating example (Figure 1), reproduced on the
   simulator.

   Bob, a CompuMe sales representative, reads the customers database and
   receives a server-issued "read" credential (a capability).  Then two
   things happen behind his back: his operational-region credential is
   revoked, and the company tightens its policy from P to P' — but the
   eventual-consistency model leaves the inventory database on the old
   version.  Bob then presents his read credential to the inventory
   database.

   This example shows:
   - under VIEW consistency, the anomalous access COMMITS (all involved
     servers agree on the stale version — exactly the weakness the paper
     points out in Definition 2);
   - under GLOBAL consistency, 2PVC's validation fetches the master
     version, updates the stale replica and ABORTS the transaction;
   - with the revoked credential presented, commit-time re-validation
     catches the revocation even under view consistency.

   Run with: dune exec examples/bob_scenario.exe *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Rule = Cloudtx_policy.Rule
module Ca = Cloudtx_policy.Ca
module Credential = Cloudtx_policy.Credential
module Value = Cloudtx_store.Value
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction

let req_atoms =
  [ Rule.atom "req_action" [ Rule.v "a" ]; Rule.atom "req_item" [ Rule.v "i" ] ]

(* Policy P: a sales representative assigned to the region hosting the
   item, and currently located there, may access it.  Item-region
   facts are part of the policy (ground rules). *)
let policy_p =
  [
    Rule.rule
      (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
      ([
         Rule.atom "role" [ Rule.v "s"; Rule.c "sales_rep" ];
         Rule.atom "assigned" [ Rule.v "s"; Rule.v "r" ];
         Rule.atom "region_of" [ Rule.v "i"; Rule.v "r" ];
         Rule.atom "located" [ Rule.v "s"; Rule.v "r" ];
       ]
      @ req_atoms);
    Rule.rule (Rule.fact "region_of" [ "customer-recs"; "east" ]) [];
    Rule.rule (Rule.fact "region_of" [ "inventory-recs"; "east" ]) [];
  ]

(* Policy P': after the reorganization, east-region items belong to the
   north team; old capabilities are no longer honoured
   (accept_capabilities = false at publication). *)
let policy_p' =
  [
    Rule.rule
      (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
      ([
         Rule.atom "role" [ Rule.v "s"; Rule.c "sales_rep" ];
         Rule.atom "assigned" [ Rule.v "s"; Rule.c "north" ];
         Rule.atom "located" [ Rule.v "s"; Rule.c "north" ];
       ]
      @ req_atoms);
  ]

let build_cluster ca =
  Cluster.create ~seed:5L ~latency:(Cloudtx_sim.Latency.Constant 1.) ~cas:[ ca ]
    ~context_facts:[ Rule.fact "located" [ "bob"; "east" ] ]
    ~servers:
      [
        Cluster.server_spec ~name:"customers-db"
          ~items:[ ("customer-recs", Value.Int 250) ]
          ();
        Cluster.server_spec ~name:"inventory-db"
          ~items:[ ("inventory-recs", Value.Int 40) ]
          ();
      ]
    ~domains:[ ("compume", policy_p) ]
    ()

let banner title = Format.printf "@.=== %s ===@." title
let show outcome = Format.printf "  -> %a@." Outcome.pp outcome

let () =
  (* ---- Act 1: Bob reads the customers DB and earns a capability. ---- *)
  banner "Act 1: Bob's first access (policy P, credentials valid)";
  let ca = Ca.create "compume-ca" in
  let cluster = build_cluster ca in
  let year = 1e9 in
  let bob_role =
    Ca.issue ca ~id:"bob-rep" ~subject:"bob"
      ~facts:[ Rule.fact "role" [ "bob"; "sales_rep" ] ]
      ~now:0. ~ttl:year
  in
  let bob_region =
    Ca.issue ca ~id:"bob-opregion" ~subject:"bob"
      ~facts:[ Rule.fact "assigned" [ "bob"; "east" ] ]
      ~now:0. ~ttl:year
  in
  let read_customers =
    Transaction.make ~id:"t-read" ~subject:"bob"
      ~credentials:[ bob_role; bob_region ]
      [ Query.make ~id:"t-read-q1" ~server:"customers-db" ~reads:[ "customer-recs" ] () ]
  in
  let o1 =
    Manager.run_one cluster
      (Manager.config Scheme.Punctual Consistency.View)
      read_customers
  in
  show o1;
  assert o1.Outcome.committed;
  (* The customers DB issues Bob a read credential good for the inventory
     records too — the capability of Figure 1. *)
  let read_credential =
    Credential.make ~id:"bob-read-cap" ~subject:"bob" ~issuer:"customers-db"
      ~kind:(Credential.Access { action = "read"; item = "inventory-recs" })
      ~facts:[] ~issued_at:(Cluster.now cluster) ~expires_at:year
  in
  Format.printf "  customers-db issues Bob a read credential (capability)@.";

  (* ---- Act 2: reorganization. ---- *)
  banner "Act 2: Bob is reassigned; policy P -> P' (not fully propagated)";
  Ca.revoke ca "bob-opregion" ~at:(Cluster.now cluster);
  Format.printf "  CA revokes Bob's OpRegion credential@.";
  ignore
    (Cluster.publish cluster ~domain:"compume" ~accept_capabilities:false
       ~delay:(`Fixed (fun s -> if String.equal s "customers-db" then 0. else infinity))
       policy_p');
  ignore (Cluster.run cluster);
  Format.printf
    "  P' (v2) reaches customers-db; inventory-db still enforces P (v1)@.";

  (* ---- Act 3: the anomalous access, presenting only the capability. ---- *)
  let inventory_access credentials id =
    Transaction.make ~id ~subject:"bob" ~credentials
      [
        Query.make ~id:(id ^ "-q1") ~server:"inventory-db"
          ~reads:[ "inventory-recs" ] ();
      ]
  in
  banner "Act 3a: capability access under VIEW consistency";
  let o2 =
    Manager.run_one cluster
      (Manager.config Scheme.Deferred Consistency.View)
      (inventory_access [ read_credential ] "t-cap-view")
  in
  show o2;
  Format.printf
    "  UNSAFE: the stale inventory replica honoured the old capability —@.";
  Format.printf
    "  view consistency only checks agreement among the (stale) participants.@.";
  assert o2.Outcome.committed;

  banner "Act 3b: the same access under GLOBAL consistency";
  let o3 =
    Manager.run_one cluster
      (Manager.config Scheme.Deferred Consistency.Global)
      (inventory_access [ read_credential ] "t-cap-global")
  in
  show o3;
  Format.printf
    "  SAFE: 2PVC consulted the master, pushed P' to inventory-db, and the@.";
  Format.printf "  re-evaluated proof refused the capability.@.";
  assert (not o3.Outcome.committed);

  (* ---- Act 4: presenting the revoked credential set. ---- *)
  banner "Act 4: Bob retries with his original credentials (one revoked)";
  let o4 =
    Manager.run_one cluster
      (Manager.config Scheme.Deferred Consistency.View)
      (inventory_access [ bob_role; bob_region ] "t-revoked")
  in
  show o4;
  Format.printf
    "  SAFE: commit-time re-validation asked the CA's online status service,@.";
  Format.printf
    "  saw the revocation of OpRegion, and rolled the transaction back —@.";
  Format.printf "  even under view consistency.@.";
  assert (not o4.Outcome.committed);

  Format.printf
    "@.Summary: the Figure 1 anomaly slips through stale replicas that agree@.";
  Format.printf
    "with each other (view consistency) but is stopped by global consistency@.";
  Format.printf
    "and by credential re-validation — the paper's trusted-transaction rules.@."
