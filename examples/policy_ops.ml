(* A day in the life of the policy administrator.

   Policies are authored as Datalog text, sanity-checked, semantically
   diffed against the running version, published through the master, and
   enforced by the consistency machinery — with the semantic diff
   predicting exactly which transactions the rollout will start
   rejecting.

   Run with: dune exec examples/policy_ops.exe *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Scenario = Cloudtx_workload.Scenario
module Datalog = Cloudtx_policy.Datalog
module Analysis = Cloudtx_policy.Analysis
module Codec = Cloudtx_policy.Codec
module Policy = Cloudtx_policy.Policy
module Rule = Cloudtx_policy.Rule

let parse text =
  match Datalog.parse_program text with
  | Ok rules -> rules
  | Error m -> failwith m

let () =
  (* The running v1 policy: every clerk may read and write. *)
  let v1_rules =
    parse
      {|permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I).|}
  in
  (* The proposed v2: clerk-1 is under investigation and gets suspended
     via a stratified-negation exception. *)
  let v2_text =
    {|% proposed revision: suspension list
permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I),
                   not suspended(S).
suspended(clerk-1).|}
  in
  let v2_rules = parse v2_text in
  Format.printf "proposed revision parses to:@.%s@." (Datalog.print_program v2_rules);

  (* 1. Predict the impact before publishing. *)
  let probes =
    Analysis.probe_space
      ~subjects:[ "clerk-1"; "clerk-2" ]
      ~actions:[ "read"; "write" ] ~items:[ "s1-k1" ]
      ~facts_for:(fun subject -> [ Rule.fact "role" [ subject; "clerk" ] ])
  in
  let old_p = Policy.create ~domain:"retail" v1_rules in
  let new_p = Policy.amend old_p v2_rules in
  (match Analysis.compare_policies ~probes old_p new_p with
  | Analysis.Tightened lost ->
    Format.printf "semantic diff: TIGHTENED; accesses lost:@.";
    List.iter (fun p -> Format.printf "  - %a@." Analysis.pp_probe p) lost
  | v -> Format.printf "semantic diff: %s@." (Analysis.verdict_name v));

  (* 2. The wire form that would ship to replicas. *)
  Format.printf "@.wire form (first 120 chars):@.  %s...@."
    (String.sub (Codec.policy_to_string new_p) 0 120);

  (* 3. Publish and watch enforcement. The update reaches only one replica
     directly; global consistency drags the rest forward at commit. *)
  let scenario = Scenario.retail ~n_servers:3 ~n_subjects:2 () in
  let cluster = scenario.Cloudtx_workload.Scenario.cluster in
  ignore
    (Cluster.publish cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0.5 else infinity))
       v2_rules);
  ignore (Cluster.run cluster);

  let run subject id =
    let txn =
      Scenario.spread_transaction scenario ~id ~subject ~queries:3 ()
    in
    let o =
      Manager.run_one cluster (Manager.config Scheme.Deferred Consistency.Global) txn
    in
    Format.printf "  %-8s under v2 -> %s (%s)@." subject
      (if o.Outcome.committed then "COMMIT" else "ABORT")
      (Outcome.reason_name o.Outcome.reason);
    o
  in
  Format.printf "@.enforcement under global consistency:@.";
  let o1 = run "clerk-1" "t1" in
  let o2 = run "clerk-2" "t2" in
  assert (not o1.Outcome.committed);
  assert o2.Outcome.committed;
  Format.printf
    "@.the rollout behaved exactly as the semantic diff predicted: only the@.";
  Format.printf "suspended clerk lost access.@."
