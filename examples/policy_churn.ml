(* Section VI-B's trade-off, live: which proof-of-authorization scheme to
   use as a function of transaction length versus policy-update interval.

   The paper's guidance:
   - transaction length < update interval: Deferred (short txns) or
     Punctual (longer txns, early abort detection);
   - transaction length > update interval: Continuous (long txns, avoids
     late rollbacks by repairing in place) or Incremental (short txns,
     no extra synchronization).

   This example sweeps both axes over the retail scenario and prints
   commit ratio, mean latency and proof work per scheme.

   Run with: dune exec examples/policy_churn.exe *)

module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Scenario = Cloudtx_workload.Scenario
module Generator = Cloudtx_workload.Generator
module Churn = Cloudtx_workload.Churn
module Experiment = Cloudtx_workload.Experiment
module Splitmix = Cloudtx_sim.Splitmix
module Table = Cloudtx_metrics.Table
module Sample_set = Cloudtx_metrics.Sample_set
module Running_stats = Cloudtx_metrics.Running_stats

let run_cell ~scheme ~queries ~update_period =
  (* A fresh deployment per cell keeps the runs independent. *)
  let scenario = Scenario.retail ~seed:11L ~n_servers:6 ~n_subjects:4 () in
  (* Background policy churn for the whole run. *)
  Churn.policy_refresh scenario ~period:update_period ~propagation:(0.5, 8.)
    ~count:400;
  let rng = Splitmix.create 77L in
  let params =
    { Generator.default with queries_per_txn = queries; write_ratio = 0.3 }
  in
  Experiment.run_sequential scenario
    (Manager.config scheme Consistency.View)
    ~n:60
    (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))

let () =
  Format.printf
    "Section VI-B trade-off: transaction length vs. policy-update interval@.";
  List.iter
    (fun (label, queries, update_period) ->
      let rows =
        List.map
          (fun scheme ->
            let stats = run_cell ~scheme ~queries ~update_period in
            [
              Scheme.name scheme;
              Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio stats);
              Printf.sprintf "%.2f" (Sample_set.mean stats.Experiment.latency_ms);
              Printf.sprintf "%.1f" (Running_stats.mean stats.Experiment.proofs);
              Printf.sprintf "%.1f"
                (Running_stats.mean stats.Experiment.protocol_messages);
            ])
          Scheme.all
      in
      Table.print
        ~title:
          (Printf.sprintf "%s (u=%d queries, policy update every %.0fms)" label
             queries update_period)
        ~headers:[ "scheme"; "commit"; "latency ms"; "proofs"; "messages" ]
        rows)
    [
      ("short transactions, rare updates", 3, 500.);
      ("long transactions, rare updates", 10, 500.);
      ("short transactions, frequent updates", 3, 8.);
      ("long transactions, frequent updates", 10, 8.);
    ];
  Format.printf
    "@.Reading: under rare updates every scheme commits and Deferred is@.";
  Format.printf
    "cheapest; under frequent updates Incremental aborts on version skew@.";
  Format.printf
    "while Continuous keeps committing at the cost of quadratic proof work —@.";
  Format.printf "the paper's Section VI-B decision matrix.@."
