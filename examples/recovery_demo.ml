(* Failure and recovery in 2PVC — the recovery story of Section V, in
   two acts:

   Act 1: a participant crashes after voting YES, recovers from its
   write-ahead log, and resolves the in-doubt transaction with the
   coordinator.

   Act 2: the *coordinator* crashes between the participants' forced
   prepares and its own decision, driven by a scripted chaos plan.  The
   prepared participants fire the Inquiry termination protocol; the
   restarted coordinator finds no durable decision and presumes abort.
   The act runs once per 2PC logging variant (basic, presumed-abort,
   presumed-commit) to show that the Inquiry-resolved outcome agrees
   across all three disciplines.

   Run with: dune exec examples/recovery_demo.exe *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Participant = Cloudtx_core.Participant
module Transport = Cloudtx_sim.Transport
module Trace = Cloudtx_sim.Trace
module Latency = Cloudtx_sim.Latency
module Scenario = Cloudtx_workload.Scenario
module Server = Cloudtx_store.Server
module Wal = Cloudtx_store.Wal
module Value = Cloudtx_store.Value
module Tpc = Cloudtx_txn.Tpc
module Plan = Cloudtx_chaos.Plan

let () =
  Format.printf "=== Act 1: participant crash after voting YES ===@.@.";
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()
  in
  let cluster = scenario.Cloudtx_workload.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in

  (* Crash server-2 right after it votes YES (its commit reply leaves at
     8ms with constant 1ms links), so the decision cannot reach it. *)
  Transport.at transport ~delay:8.5 (fun () ->
      Format.printf "[%6.1fms] *** server-2 crashes (fail-stop) ***@."
        (Transport.now transport);
      Participant.crash (Cluster.participant cluster "server-2"));

  let result = ref None in
  Manager.submit cluster
    (Manager.config Scheme.Deferred Consistency.View)
    txn
    ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);

  Format.printf "simulation quiescent; transaction finished? %b@."
    (!result <> None);

  (* The coordinator force-logged COMMIT and delivered it to the two live
     participants; server-2 is in doubt behind its forced prepare
     record. *)
  let server2 = Participant.server (Cluster.participant cluster "server-2") in
  (match Wal.recover_txn (Server.wal server2) ~txn:"t1" with
  | `Prepared (writes, versions) ->
    Format.printf
      "server-2 WAL: in doubt, %d buffered write(s), policy versions %s@."
      (List.length writes)
      (String.concat ","
         (List.map (fun (d, v) -> Printf.sprintf "%s=v%d" d v) versions))
  | _ -> Format.printf "server-2 WAL: unexpected state@.");

  Format.printf "@.*** server-2 restarts and replays its log ***@.";
  Participant.recover (Cluster.participant cluster "server-2");
  ignore (Cluster.run cluster);

  (match !result with
  | Some o ->
    Format.printf "transaction resolved: %a@." Outcome.pp o;
    Format.printf "server-2 applied the write: s2-k2 = %s@."
      (match Server.get server2 "s2-k2" with
      | Some v -> Value.to_string v
      | None -> "?")
  | None -> Format.printf "still unresolved?!@.");

  (* Show the termination protocol in the trace: the Inquiry and the
     re-sent decision. *)
  Format.printf "@.tail of the message trace:@.";
  let entries = Trace.entries (Transport.trace transport) in
  let n = List.length entries in
  List.iteri
    (fun i e -> if i >= n - 12 then Format.printf "  %a@." Trace.pp_entry e)
    entries

(* ------------------------------------------------------------------ *)
(* Act 2: coordinator crash between prepare and decision               *)
(* ------------------------------------------------------------------ *)

(* The chaos plan, scripted rather than drawn from a seed: fail-stop the
   coordinator at 7.5ms — after the participants force their prepare
   records (7ms with constant 1ms links) but before their YES votes reach
   the TM at 8ms, so no decision is ever logged — then restart it 12ms
   later. *)
let plan =
  {
    Plan.seed = 42L;
    horizon = Plan.fault_horizon;
    ops = [ Plan.Crash_coordinator { txn = 0; at = 7.5; restart_after = 12. } ];
  }

let run_coordinator_crash variant =
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~variant ~inquiry_timeout:10.
      ~n_servers:3 ~n_subjects:1 ()
  in
  let cluster = scenario.Cloudtx_workload.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3
      ()
  in
  let result = ref None in
  let handle =
    Manager.submit_handle cluster
      (Manager.config ~decision_retry:5. Scheme.Deferred Consistency.View)
      txn
      ~on_done:(fun o -> result := Some o)
  in
  List.iter
    (fun op ->
      match op with
      | Plan.Crash_coordinator { at; restart_after; _ } ->
        Transport.at transport ~delay:at (fun () ->
            Format.printf "  [%6.1fms] *** coordinator tm-t1 crashes ***@."
              (Transport.now transport);
            Manager.crash handle);
        Transport.at transport ~delay:(at +. restart_after) (fun () ->
            Format.printf "  [%6.1fms] *** coordinator tm-t1 restarts ***@."
              (Transport.now transport);
            Manager.restart handle)
      | _ -> ())
    plan.Plan.ops;
  ignore (Cluster.run cluster);
  let contains_inquiry line =
    let n = String.length line and m = String.length "inquiry" in
    let rec scan i =
      i + m <= n && (String.equal (String.sub line i m) "inquiry" || scan (i + 1))
    in
    scan 0
  in
  let inquiries =
    List.length
      (List.filter
         (fun e -> contains_inquiry (Format.asprintf "%a" Trace.pp_entry e))
         (Trace.entries (Transport.trace transport)))
  in
  (match !result with
  | Some o ->
    Format.printf "  %-15s -> %s (%s), %d inquiry event(s)@."
      (Tpc.variant_name variant)
      (if o.Outcome.committed then "COMMIT" else "ABORT")
      (Outcome.reason_name o.Outcome.reason)
      inquiries
  | None -> Format.printf "  %-15s -> UNRESOLVED?!@." (Tpc.variant_name variant));
  (* Every prepared participant resolved its doubt through Inquiry. *)
  List.iter
    (fun name ->
      let wal = Server.wal (Participant.server (Cluster.participant cluster name)) in
      match Wal.recover_txn wal ~txn:"t1" with
      | `Prepared _ -> Format.printf "    %s: STILL IN DOUBT?!@." name
      | _ -> ())
    scenario.Cloudtx_workload.Scenario.servers

let () =
  Format.printf
    "@.=== Act 2: coordinator crash between prepare and decision ===@.@.";
  Format.printf "chaos plan: %s@.@." (Plan.to_string plan);
  List.iter run_coordinator_crash
    [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]
