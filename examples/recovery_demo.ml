(* Failure and recovery in 2PVC: a participant crashes after voting YES,
   recovers from its write-ahead log, and resolves the in-doubt
   transaction with the coordinator — the recovery story of Section V.

   Run with: dune exec examples/recovery_demo.exe *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome
module Participant = Cloudtx_core.Participant
module Transport = Cloudtx_sim.Transport
module Trace = Cloudtx_sim.Trace
module Latency = Cloudtx_sim.Latency
module Scenario = Cloudtx_workload.Scenario
module Server = Cloudtx_store.Server
module Wal = Cloudtx_store.Wal
module Value = Cloudtx_store.Value

let () =
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1 ()
  in
  let cluster = scenario.Cloudtx_workload.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
  in

  (* Crash server-2 right after it votes YES (its commit reply leaves at
     8ms with constant 1ms links), so the decision cannot reach it. *)
  Transport.at transport ~delay:8.5 (fun () ->
      Format.printf "[%6.1fms] *** server-2 crashes (fail-stop) ***@."
        (Transport.now transport);
      Participant.crash (Cluster.participant cluster "server-2"));

  let result = ref None in
  Manager.submit cluster
    (Manager.config Scheme.Deferred Consistency.View)
    txn
    ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);

  Format.printf "simulation quiescent; transaction finished? %b@."
    (!result <> None);

  (* The coordinator force-logged COMMIT and delivered it to the two live
     participants; server-2 is in doubt behind its forced prepare
     record. *)
  let server2 = Participant.server (Cluster.participant cluster "server-2") in
  (match Wal.recover_txn (Server.wal server2) ~txn:"t1" with
  | `Prepared (writes, versions) ->
    Format.printf
      "server-2 WAL: in doubt, %d buffered write(s), policy versions %s@."
      (List.length writes)
      (String.concat ","
         (List.map (fun (d, v) -> Printf.sprintf "%s=v%d" d v) versions))
  | _ -> Format.printf "server-2 WAL: unexpected state@.");

  Format.printf "@.*** server-2 restarts and replays its log ***@.";
  Participant.recover (Cluster.participant cluster "server-2");
  ignore (Cluster.run cluster);

  (match !result with
  | Some o ->
    Format.printf "transaction resolved: %a@." Outcome.pp o;
    Format.printf "server-2 applied the write: s2-k2 = %s@."
      (match Server.get server2 "s2-k2" with
      | Some v -> Value.to_string v
      | None -> "?")
  | None -> Format.printf "still unresolved?!@.");

  (* Show the termination protocol in the trace: the Inquiry and the
     re-sent decision. *)
  Format.printf "@.tail of the message trace:@.";
  let entries = Trace.entries (Transport.trace transport) in
  let n = List.length entries in
  List.iteri
    (fun i e -> if i >= n - 12 then Format.printf "  %a@." Trace.pp_entry e)
    entries
