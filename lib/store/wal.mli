(** Write-ahead log for commit-protocol recovery.

    Models exactly what the paper's recovery discussion needs: forced
    (synchronous) versus non-forced records, so log complexity — "the
    number of times the protocol forcibly logs for recovery", 2n+1 for
    2PC/2PVC — is measurable, and replay, so crash tests can rebuild a
    participant's state.  Per Section V, a 2PVC participant "must forcibly
    log the set of (vi, pi) tuples along with its vote and truth value";
    the [Prepared] record carries those fields. *)

type record =
  | Begin_txn of { txn : string }
  | Prepared of {
      txn : string;
      writes : (string * Value.t) list;
      integrity_vote : bool;
      proof_truth : bool;
      policy_versions : (string * int) list;  (** (p_i, v_i) tuples. *)
    }
  | Decision of { txn : string; commit : bool }
  | End_txn of { txn : string }
  | Checkpoint of { active : string list }
      (** Fuzzy checkpoint: committed data is on disk; [active] names the
          transactions whose records must survive truncation. *)

type entry = { lsn : int; time : float; forced : bool; record : record }

type t

val create : unit -> t

(** [append t ~time ~forced record] returns the new record's LSN. *)
val append : t -> time:float -> forced:bool -> record -> int

(** Stable short name of a record's constructor, e.g. ["prepared"]. *)
val record_tag : record -> string

(** [set_observer t (Some f)] calls [f ~time ~forced ~tag] after every
    append; [None] (the default) disables the hook.  Lets the
    observability layer watch log writes without this module depending on
    it. *)
val set_observer :
  t -> (time:float -> forced:bool -> tag:string -> unit) option -> unit

(** Number of forced (synchronous) appends — the paper's log-complexity
    metric. *)
val force_count : t -> int

val length : t -> int

(** Entries in LSN order. *)
val entries : t -> entry list

(** [truncate_after t lsn] drops every record with LSN > [lsn]; models the
    tail lost in a crash before unforced records hit disk. *)
val truncate_after : t -> int -> unit

(** [checkpoint t ~time ~active] force-writes a [Checkpoint] record naming
    the currently active transactions; returns its LSN. *)
val checkpoint : t -> time:float -> active:string list -> int

(** [truncate_to_checkpoint t] reclaims the log prefix before the most
    recent checkpoint, keeping (a) the checkpoint itself and everything
    after it and (b) all records of the transactions the checkpoint names
    as active. No-op when no checkpoint exists. Returns records
    reclaimed. *)
val truncate_to_checkpoint : t -> int

(** Durable representation: one checksummed line per entry, LSN order.
    Append-only, so a crash can only damage the tail. *)
val serialize : t -> string

(** [load data] rebuilds a log from {!serialize} output, tolerating a torn
    tail: the first line whose checksum, JSON or schema fails to validate
    — a record cut mid-write by a crash — ends the log, and the longest
    valid prefix is recovered.  Returns the log and the number of
    lines dropped (0 = clean). *)
val load : string -> t * int

(** Analysis pass over the log, as a recovering participant would run it:
    for [txn], the last relevant state. *)
val recover_txn :
  t ->
  txn:string ->
  [ `No_trace  (** Never logged: presume per protocol variant. *)
  | `Active  (** Begin seen, no prepare: abort. *)
  | `Prepared of (string * Value.t) list * (string * int) list
    (** In doubt: must ask the coordinator. *)
  | `Committed of (string * Value.t) list
  | `Aborted
  | `Finished ]
