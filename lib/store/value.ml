type t = Int of int | Text of string

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Text x, Text y -> String.equal x y
  | Int _, Text _ | Text _, Int _ -> false

let as_int = function Int n -> Some n | Text _ -> None

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Text s -> Format.fprintf ppf "%S" s

let to_string t = Format.asprintf "%a" pp t

type update = Set of t | Add of int

let apply update prev =
  match (update, prev) with
  | Set v, _ -> Some v
  | Add k, Some (Int n) -> Some (Int (n + k))
  | Add _, (Some (Text _) | None) -> None

let pp_update ppf = function
  | Set v -> Format.fprintf ppf ":= %a" pp v
  | Add k -> Format.fprintf ppf "+= %d" k
