(** Values stored in the data servers' partitions, and the write
    operations transactions buffer against them. *)

type t =
  | Int of int
  | Text of string

val equal : t -> t -> bool

(** [as_int t] is the integer payload, or [None] for text. *)
val as_int : t -> int option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A buffered write: overwrite, or read-modify-write an integer (the
    debit/credit primitive funds transfers need). *)
type update =
  | Set of t
  | Add of int
      (** [Add k] on [Int n] yields [Int (n + k)]; on a missing or
          non-integer value it yields nothing — the item effectively
          disappears from the hypothetical state, which integrity
          constraints then reject. *)

(** [apply update prev] — the value after the update. *)
val apply : update -> t option -> t option

val pp_update : Format.formatter -> update -> unit
