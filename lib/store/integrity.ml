type lookup = string -> Value.t option

type t = { name : string; check : lookup -> bool }

let make ~name check = { name; check }

let int_at lookup key = Option.bind (lookup key) Value.as_int

let non_negative key =
  make ~name:(Printf.sprintf "non_negative(%s)" key) (fun lookup ->
      match int_at lookup key with Some n -> n >= 0 | None -> false)

let range key ~lo ~hi =
  make ~name:(Printf.sprintf "range(%s,%d,%d)" key lo hi) (fun lookup ->
      match int_at lookup key with Some n -> n >= lo && n <= hi | None -> false)

let sum_of lookup keys =
  List.fold_left
    (fun acc key ->
      match (acc, int_at lookup key) with
      | Some total, Some n -> Some (total + n)
      | None, _ | _, None -> None)
    (Some 0) keys

let sum_at_most keys ~bound =
  make ~name:(Printf.sprintf "sum_at_most(%s,%d)" (String.concat "+" keys) bound)
    (fun lookup ->
      match sum_of lookup keys with Some s -> s <= bound | None -> false)

let sum_preserved keys ~total =
  make ~name:(Printf.sprintf "sum_preserved(%s,%d)" (String.concat "+" keys) total)
    (fun lookup ->
      match sum_of lookup keys with Some s -> s = total | None -> false)

let check_all constraints lookup =
  List.filter_map
    (fun c -> if c.check lookup then None else Some c.name)
    constraints
