type record =
  | Begin_txn of { txn : string }
  | Prepared of {
      txn : string;
      writes : (string * Value.t) list;
      integrity_vote : bool;
      proof_truth : bool;
      policy_versions : (string * int) list;
    }
  | Decision of { txn : string; commit : bool }
  | End_txn of { txn : string }
  | Checkpoint of { active : string list }

type entry = { lsn : int; time : float; forced : bool; record : record }

type t = {
  mutable entries : entry list; (* newest first *)
  mutable next_lsn : int;
  mutable forces : int;
  mutable observer : (time:float -> forced:bool -> tag:string -> unit) option;
}

let create () = { entries = []; next_lsn = 0; forces = 0; observer = None }
let set_observer t obs = t.observer <- obs

let record_tag = function
  | Begin_txn _ -> "begin"
  | Prepared _ -> "prepared"
  | Decision _ -> "decision"
  | End_txn _ -> "end"
  | Checkpoint _ -> "checkpoint"

let append t ~time ~forced record =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  if forced then t.forces <- t.forces + 1;
  t.entries <- { lsn; time; forced; record } :: t.entries;
  (match t.observer with
  | None -> ()
  | Some f -> f ~time ~forced ~tag:(record_tag record));
  lsn

let force_count t = t.forces
let length t = List.length t.entries
let entries t = List.rev t.entries

let truncate_after t lsn =
  t.entries <- List.filter (fun e -> e.lsn <= lsn) t.entries

let txn_of = function
  | Begin_txn { txn } | Decision { txn; _ } | End_txn { txn } -> txn
  | Prepared { txn; _ } -> txn
  | Checkpoint _ -> ""

let checkpoint t ~time ~active = append t ~time ~forced:true (Checkpoint { active })

let truncate_to_checkpoint t =
  (* Find the newest checkpoint (entries are stored newest first). *)
  let rec find = function
    | [] -> None
    | e :: rest -> (
      match e.record with
      | Checkpoint { active } -> Some (e.lsn, active)
      | Begin_txn _ | Prepared _ | Decision _ | End_txn _ -> find rest)
  in
  match find t.entries with
  | None -> 0
  | Some (ck_lsn, active) ->
    let before = List.length t.entries in
    t.entries <-
      List.filter
        (fun e ->
          e.lsn >= ck_lsn || List.mem (txn_of e.record) active)
        t.entries;
    before - List.length t.entries

let recover_txn t ~txn =
  (* Scan oldest-to-newest, tracking the latest state transition. *)
  let state = ref `No_trace in
  let prepared = ref ([], []) in
  List.iter
    (fun e ->
      if String.equal (txn_of e.record) txn then begin
        match e.record with
        | Begin_txn _ -> if !state = `No_trace then state := `Active
        | Prepared { writes; policy_versions; _ } ->
          prepared := (writes, policy_versions);
          state := `Prepared
        | Decision { commit; _ } -> state := if commit then `Committed else `Aborted
        | End_txn _ -> state := `Finished
        | Checkpoint _ -> ()
      end)
    (entries t);
  match !state with
  | `No_trace -> `No_trace
  | `Active -> `Active
  | `Prepared ->
    let writes, versions = !prepared in
    `Prepared (writes, versions)
  | `Committed -> `Committed (fst !prepared)
  | `Aborted -> `Aborted
  | `Finished -> `Finished
