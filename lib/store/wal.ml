type record =
  | Begin_txn of { txn : string }
  | Prepared of {
      txn : string;
      writes : (string * Value.t) list;
      integrity_vote : bool;
      proof_truth : bool;
      policy_versions : (string * int) list;
    }
  | Decision of { txn : string; commit : bool }
  | End_txn of { txn : string }
  | Checkpoint of { active : string list }

type entry = { lsn : int; time : float; forced : bool; record : record }

type t = {
  mutable entries : entry list; (* newest first *)
  mutable next_lsn : int;
  mutable forces : int;
  mutable observer : (time:float -> forced:bool -> tag:string -> unit) option;
}

let create () = { entries = []; next_lsn = 0; forces = 0; observer = None }
let set_observer t obs = t.observer <- obs

let record_tag = function
  | Begin_txn _ -> "begin"
  | Prepared _ -> "prepared"
  | Decision _ -> "decision"
  | End_txn _ -> "end"
  | Checkpoint _ -> "checkpoint"

let append t ~time ~forced record =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  if forced then t.forces <- t.forces + 1;
  t.entries <- { lsn; time; forced; record } :: t.entries;
  (match t.observer with
  | None -> ()
  | Some f -> f ~time ~forced ~tag:(record_tag record));
  lsn

let force_count t = t.forces
let length t = List.length t.entries
let entries t = List.rev t.entries

let truncate_after t lsn =
  t.entries <- List.filter (fun e -> e.lsn <= lsn) t.entries

let txn_of = function
  | Begin_txn { txn } | Decision { txn; _ } | End_txn { txn } -> txn
  | Prepared { txn; _ } -> txn
  | Checkpoint _ -> ""

let checkpoint t ~time ~active = append t ~time ~forced:true (Checkpoint { active })

let truncate_to_checkpoint t =
  (* Find the newest checkpoint (entries are stored newest first). *)
  let rec find = function
    | [] -> None
    | e :: rest -> (
      match e.record with
      | Checkpoint { active } -> Some (e.lsn, active)
      | Begin_txn _ | Prepared _ | Decision _ | End_txn _ -> find rest)
  in
  match find t.entries with
  | None -> 0
  | Some (ck_lsn, active) ->
    let before = List.length t.entries in
    t.entries <-
      List.filter
        (fun e ->
          e.lsn >= ck_lsn || List.mem (txn_of e.record) active)
        t.entries;
    before - List.length t.entries

(* ------------------------------------------------------------------ *)
(* Durable representation                                              *)
(* ------------------------------------------------------------------ *)

module Json = Cloudtx_policy.Json
open Json

(* FNV-1a 32-bit: cheap per-line integrity check.  A torn write — the
   tail of the file lost or a record cut mid-line by a crash — fails the
   checksum (or the parse) and recovery keeps the longest valid prefix,
   which is exactly the on-disk prefix the force discipline guarantees. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let value_to_json = function
  | Value.Int n -> Obj [ ("int", Int n) ]
  | Value.Text s -> Obj [ ("text", String s) ]

let value_of_json j =
  match member "int" j with
  | Ok n ->
    let* n = to_int n in
    Ok (Value.Int n)
  | Error _ ->
    let* s = Result.bind (member "text" j) to_str in
    Ok (Value.Text s)

let writes_to_json writes =
  List
    (List.map
       (fun (k, v) -> Obj [ ("key", String k); ("value", value_to_json v) ])
       writes)

let writes_of_json j =
  let* l = to_list j in
  List.fold_left
    (fun acc w ->
      let* acc = acc in
      let* k = Result.bind (member "key" w) to_str in
      let* v = Result.bind (member "value" w) value_of_json in
      Ok ((k, v) :: acc))
    (Ok []) l
  |> Result.map List.rev

let record_to_json r =
  let tag = String (record_tag r) in
  match r with
  | Begin_txn { txn } -> Obj [ ("tag", tag); ("txn", String txn) ]
  | Prepared { txn; writes; integrity_vote; proof_truth; policy_versions } ->
    Obj
      [
        ("tag", tag);
        ("txn", String txn);
        ("writes", writes_to_json writes);
        ("integrity_vote", Bool integrity_vote);
        ("proof_truth", Bool proof_truth);
        ( "policy_versions",
          List
            (List.map
               (fun (d, v) -> Obj [ ("domain", String d); ("version", Int v) ])
               policy_versions) );
      ]
  | Decision { txn; commit } ->
    Obj [ ("tag", tag); ("txn", String txn); ("commit", Bool commit) ]
  | End_txn { txn } -> Obj [ ("tag", tag); ("txn", String txn) ]
  | Checkpoint { active } ->
    Obj [ ("tag", tag); ("active", List (List.map (fun a -> String a) active)) ]

let record_of_json j =
  let* tag = Result.bind (member "tag" j) to_str in
  match tag with
  | "begin" ->
    let* txn = Result.bind (member "txn" j) to_str in
    Ok (Begin_txn { txn })
  | "prepared" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* writes = Result.bind (member "writes" j) writes_of_json in
    let* integrity_vote = Result.bind (member "integrity_vote" j) to_bool in
    let* proof_truth = Result.bind (member "proof_truth" j) to_bool in
    let* versions = Result.bind (member "policy_versions" j) to_list in
    let* policy_versions =
      List.fold_left
        (fun acc v ->
          let* acc = acc in
          let* d = Result.bind (member "domain" v) to_str in
          let* n = Result.bind (member "version" v) to_int in
          Ok ((d, n) :: acc))
        (Ok []) versions
      |> Result.map List.rev
    in
    Ok (Prepared { txn; writes; integrity_vote; proof_truth; policy_versions })
  | "decision" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* commit = Result.bind (member "commit" j) to_bool in
    Ok (Decision { txn; commit })
  | "end" ->
    let* txn = Result.bind (member "txn" j) to_str in
    Ok (End_txn { txn })
  | "checkpoint" ->
    let* active = Result.bind (member "active" j) to_list in
    let* active =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          let* s = to_str a in
          Ok (s :: acc))
        (Ok []) active
      |> Result.map List.rev
    in
    Ok (Checkpoint { active })
  | other -> Error (Printf.sprintf "unknown WAL record tag %S" other)

let entry_line e =
  let payload =
    Json.to_string
      (Obj
         [
           ("lsn", Int e.lsn);
           ("time", Float e.time);
           ("forced", Bool e.forced);
           ("record", record_to_json e.record);
         ])
  in
  Printf.sprintf "%08x %s" (fnv1a payload) payload

let serialize t =
  String.concat "\n" (List.map entry_line (entries t)) ^ "\n"

let entry_of_line line =
  if String.length line < 9 || line.[8] <> ' ' then Error "malformed line"
  else
    let sum = String.sub line 0 8 in
    let payload = String.sub line 9 (String.length line - 9) in
    match int_of_string_opt ("0x" ^ sum) with
    | None -> Error "malformed checksum"
    | Some sum when sum <> fnv1a payload -> Error "checksum mismatch"
    | Some _ ->
      let* j = Json.parse payload in
      let* lsn = Result.bind (member "lsn" j) to_int in
      let* time = Result.bind (member "time" j) to_float in
      let* forced = Result.bind (member "forced" j) to_bool in
      let* record = Result.bind (member "record" j) record_of_json in
      Ok { lsn; time; forced; record }

let load data =
  let lines = String.split_on_char '\n' data in
  let t = create () in
  let dropped = ref 0 in
  let torn = ref false in
  List.iter
    (fun line ->
      if String.equal (String.trim line) "" then ()
      else if !torn then incr dropped
      else
        match entry_of_line line with
        | Ok e ->
          t.entries <- e :: t.entries;
          t.next_lsn <- max t.next_lsn (e.lsn + 1);
          if e.forced then t.forces <- t.forces + 1
        | Error _ ->
          (* First invalid line: everything from here on is the torn
             tail — keep the valid prefix only. *)
          torn := true;
          incr dropped)
    lines;
  (t, !dropped)

let recover_txn t ~txn =
  (* Scan oldest-to-newest, tracking the latest state transition. *)
  let state = ref `No_trace in
  let prepared = ref ([], []) in
  List.iter
    (fun e ->
      if String.equal (txn_of e.record) txn then begin
        match e.record with
        | Begin_txn _ -> if !state = `No_trace then state := `Active
        | Prepared { writes; policy_versions; _ } ->
          prepared := (writes, policy_versions);
          state := `Prepared
        | Decision { commit; _ } -> state := if commit then `Committed else `Aborted
        | End_txn _ -> state := `Finished
        | Checkpoint _ -> ()
      end)
    (entries t);
  match !state with
  | `No_trace -> `No_trace
  | `Active -> `Active
  | `Prepared ->
    let writes, versions = !prepared in
    `Prepared (writes, versions)
  | `Committed -> `Committed (fst !prepared)
  | `Aborted -> `Aborted
  | `Finished -> `Finished
