(** Two-phase locking with wait-die deadlock prevention.

    Shared/exclusive locks per data item.  Conflicting requests are
    resolved by transaction start timestamps: an older requester (smaller
    timestamp) is queued behind the holders, a younger requester is told to
    abort ("dies").  Wait-die admits no cycles, so the simulated cluster
    never deadlocks — important because the commit protocols under test
    assume participants eventually vote. *)

type mode = Shared | Exclusive

type t

val create : unit -> t

type outcome =
  | Granted
  | Queued  (** Older than a conflicting holder: wait for release. *)
  | Die  (** Younger than a conflicting holder: abort and restart. *)

(** [acquire t ~txn ~ts ~key mode] requests the lock.  Re-acquiring a held
    lock is idempotent; a [Shared] holder asking for [Exclusive] upgrades
    when it is the only holder, otherwise wait-die applies. *)
val acquire : t -> txn:string -> ts:float -> key:string -> mode -> outcome

type release = {
  granted : (string * string * mode) list;
      (** Requests granted by promotion, as [(txn, key, mode)]. *)
  killed : (string * string) list;
      (** Waiters removed because they are younger than a newly installed
          holder, as [(txn, key)]: wait-die is re-applied at promotion
          time, otherwise a waiter that queued behind a younger holder
          could end up waiting behind an older one — a young-waits-for-old
          edge that admits distributed deadlock. The caller must abort
          these transactions. *)
}

(** [release_all t ~txn] frees every lock held or queued by [txn],
    promotes waiters and re-applies wait-die to the rest. *)
val release_all : t -> txn:string -> release

(** Current holders of [key]. *)
val holders : t -> key:string -> (string * mode) list

(** Transactions queued on [key], oldest first. *)
val waiters : t -> key:string -> string list

(** Keys on which [txn] currently holds locks. *)
val held_by : t -> txn:string -> string list

(** [clear t] empties the whole lock table (crash of the volatile lock
    state). *)
val clear : t -> unit

(** Callbacks fired after lock-table transitions; lets the observability
    layer watch lock waits without this module depending on it. *)
type observer = {
  on_acquire : txn:string -> key:string -> mode:mode -> outcome:outcome -> unit;
  on_promoted : txn:string -> key:string -> mode:mode -> unit;
      (** A queued request was granted during some release. *)
  on_killed : txn:string -> key:string -> unit;
      (** A waiter died when wait-die was re-applied at promotion. *)
}

(** [set_observer t (Some obs)] installs the hooks; [None] (the default)
    disables them. *)
val set_observer : t -> observer option -> unit
