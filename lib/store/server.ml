module Replica = Cloudtx_policy.Replica

type workspace = {
  ts : float;
  mutable writes : (string * Value.update) list; (* oldest first; Adds compose *)
}

type t = {
  name : string;
  data : (string, Value.t) Hashtbl.t;
  versions : (string, (float * Value.t option) list) Hashtbl.t;
      (* committed version chain per key, newest first; time 0 = opening
         state. Feeds snapshot reads. *)
  replica : Replica.t;
  locks : Lock_manager.t;
  wal : Wal.t;
  constraints : Integrity.t list;
  workspaces : (string, workspace) Hashtbl.t;
}

let create ~name ?(constraints = []) ~items () =
  let data = Hashtbl.create 64 in
  let versions = Hashtbl.create 64 in
  List.iter
    (fun (k, v) ->
      Hashtbl.replace data k v;
      Hashtbl.replace versions k [ (0., Some v) ])
    items;
  {
    name;
    data;
    versions;
    replica = Replica.create ();
    locks = Lock_manager.create ();
    wal = Wal.create ();
    constraints;
    workspaces = Hashtbl.create 16;
  }

let name t = t.name
let replica t = t.replica
let wal t = t.wal
let locks t = t.locks
let get t key = Hashtbl.find_opt t.data key
let hosts t key = Hashtbl.mem t.versions key

let read_asof t key ~ts =
  match Hashtbl.find_opt t.versions key with
  | None -> None
  | Some chain -> (
    match List.find_opt (fun (at, _) -> at <= ts) chain with
    | Some (_, v) -> v
    | None -> None)

let execute_snapshot t ~reads ~ts =
  List.map
    (fun key ->
      if not (Hashtbl.mem t.versions key) then
        invalid_arg
          (Printf.sprintf "Server %s does not host data item %s" t.name key);
      (key, read_asof t key ~ts))
    reads

let vacuum t ~before =
  let reclaimed = ref 0 in
  Hashtbl.iter
    (fun key chain ->
      (* Keep versions newer than the horizon plus the first at-or-before
         one (it serves reads exactly at the horizon). *)
      let rec split kept = function
        | [] -> (List.rev kept, [])
        | (at, v) :: rest when at > before -> split ((at, v) :: kept) rest
        | (at, v) :: rest -> (List.rev (( at, v) :: kept), rest)
      in
      let keep, drop = split [] chain in
      if drop <> [] then begin
        reclaimed := !reclaimed + List.length drop;
        Hashtbl.replace t.versions key keep
      end)
    t.versions;
  !reclaimed

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.data [] |> List.sort String.compare

let begin_work t ~txn ~ts ~time =
  if not (Hashtbl.mem t.workspaces txn) then begin
    Hashtbl.add t.workspaces txn { ts; writes = [] };
    ignore (Wal.append t.wal ~time ~forced:false (Wal.Begin_txn { txn }))
  end

let workspace t txn =
  match Hashtbl.find_opt t.workspaces txn with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "Server %s: no workspace for transaction %s" t.name txn)

type exec_result =
  | Executed of (string * Value.t option) list
  | Blocked
  | Die

let overlay t ~txn key =
  let committed = Hashtbl.find_opt t.data key in
  match Hashtbl.find_opt t.workspaces txn with
  | Some w ->
    List.fold_left
      (fun acc (k, update) ->
        if String.equal k key then Value.apply update acc else acc)
      committed w.writes
  | None -> committed

let execute t ~txn ~reads ~writes =
  let w = workspace t txn in
  let check_hosted key =
    if not (hosts t key) then
      invalid_arg
        (Printf.sprintf "Server %s does not host data item %s" t.name key)
  in
  List.iter check_hosted reads;
  List.iter (fun (k, _) -> check_hosted k) writes;
  (* Acquire all locks first; partial acquisitions persist across retries
     because [Lock_manager.acquire] is idempotent for held locks. *)
  let acquire key mode = Lock_manager.acquire t.locks ~txn ~ts:w.ts ~key mode in
  let outcomes =
    List.map (fun k -> acquire k Lock_manager.Shared) reads
    @ List.map (fun (k, _) -> acquire k Lock_manager.Exclusive) writes
  in
  if List.mem Lock_manager.Die outcomes then Die
  else if List.mem Lock_manager.Queued outcomes then Blocked
  else begin
    w.writes <- w.writes @ writes;
    Executed (List.map (fun k -> (k, overlay t ~txn k)) reads)
  end

let integrity_violations t ~txn =
  Integrity.check_all t.constraints (overlay t ~txn)

(* Keys the workspace touches, in first-write order, with their resolved
   post-transaction values (unresolvable updates drop the key). *)
let resolved_writes t ~txn =
  match Hashtbl.find_opt t.workspaces txn with
  | None -> []
  | Some w ->
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (k, _) ->
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (k, overlay t ~txn k)
        end)
      w.writes

let prepare t ~txn ~time ~proof_truth ~policy_versions =
  ignore (workspace t txn);
  let vote = integrity_violations t ~txn = [] in
  let writes =
    List.filter_map
      (fun (k, v) -> Option.map (fun v -> (k, v)) v)
      (resolved_writes t ~txn)
  in
  ignore
    (Wal.append t.wal ~time ~forced:true
       (Wal.Prepared
          { txn; writes; integrity_vote = vote; proof_truth; policy_versions }));
  vote

let apply_writes t writes =
  List.iter (fun (k, v) -> Hashtbl.replace t.data k v) writes

let record_version t ~time k v =
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.versions k) in
  Hashtbl.replace t.versions k ((time, v) :: chain)

let settle t ~txn ~time ~forced ~commit =
  ignore (Wal.append t.wal ~time ~forced (Wal.Decision { txn; commit }));
  (if commit && Hashtbl.mem t.workspaces txn then
     List.iter
       (fun (k, v) ->
         record_version t ~time k v;
         match v with
         | Some v -> Hashtbl.replace t.data k v
         | None -> Hashtbl.remove t.data k)
       (resolved_writes t ~txn));
  Hashtbl.remove t.workspaces txn;
  Lock_manager.release_all t.locks ~txn

let commit ?(forced = true) t ~txn ~time = settle t ~txn ~time ~forced ~commit:true
let abort ?(forced = true) t ~txn ~time = settle t ~txn ~time ~forced ~commit:false

let finish t ~txn ~time =
  ignore (Wal.append t.wal ~time ~forced:false (Wal.End_txn { txn }))

let is_read_only t ~txn =
  match Hashtbl.find_opt t.workspaces txn with
  | Some w -> w.writes = []
  | None -> true

let forget t ~txn ~time =
  Hashtbl.remove t.workspaces txn;
  ignore (Wal.append t.wal ~time ~forced:false (Wal.End_txn { txn }));
  Lock_manager.release_all t.locks ~txn

let checkpoint t ~time =
  let active = Hashtbl.fold (fun txn _ acc -> txn :: acc) t.workspaces [] in
  ignore (Wal.checkpoint t.wal ~time ~active:(List.sort String.compare active));
  Wal.truncate_to_checkpoint t.wal

let crash t =
  Hashtbl.reset t.workspaces;
  (* Lose the unforced tail: keep records up to the last forced one. *)
  let last_forced =
    List.fold_left
      (fun acc (e : Wal.entry) -> if e.Wal.forced then e.Wal.lsn else acc)
      (-1) (Wal.entries t.wal)
  in
  Wal.truncate_after t.wal last_forced;
  (* The lock table is volatile. *)
  Lock_manager.clear t.locks

let recover t ~time =
  Lock_manager.clear t.locks;
  let in_doubt = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (e : Wal.entry) ->
      let note txn = Hashtbl.replace seen txn () in
      match e.Wal.record with
      | Wal.Begin_txn { txn } | Wal.Decision { txn; _ } | Wal.End_txn { txn } ->
        note txn
      | Wal.Prepared { txn; _ } -> note txn
      | Wal.Checkpoint _ -> ())
    (Wal.entries t.wal);
  Hashtbl.iter
    (fun txn () ->
      match Wal.recover_txn t.wal ~txn with
      | `Prepared (writes, _) ->
        (* In doubt: hold exclusive locks until the coordinator answers. *)
        List.iter
          (fun (k, _) ->
            ignore
              (Lock_manager.acquire t.locks ~txn ~ts:0. ~key:k
                 Lock_manager.Exclusive))
          writes;
        let w =
          { ts = 0.; writes = List.map (fun (k, v) -> (k, Value.Set v)) writes }
        in
        Hashtbl.replace t.workspaces txn w;
        in_doubt := txn :: !in_doubt
      | `Committed writes ->
        (* Redo: committed data survives crashes in this model, but redo is
           idempotent so re-applying is safe and covers decisions logged
           right before the crash. *)
        apply_writes t writes;
        ignore (Wal.append t.wal ~time ~forced:false (Wal.End_txn { txn }))
      | `No_trace | `Active | `Aborted | `Finished -> ())
    seen;
  List.sort String.compare !in_doubt
