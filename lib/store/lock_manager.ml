type mode = Shared | Exclusive

type request = { txn : string; ts : float; mode : mode }

type lock_state = {
  mutable holders : request list; (* all Shared, or a single Exclusive *)
  mutable queue : request list; (* oldest-ts first *)
}

type outcome = Granted | Queued | Die

type observer = {
  on_acquire : txn:string -> key:string -> mode:mode -> outcome:outcome -> unit;
  on_promoted : txn:string -> key:string -> mode:mode -> unit;
  on_killed : txn:string -> key:string -> unit;
}

type t = {
  table : (string, lock_state) Hashtbl.t;
  mutable observer : observer option;
}

let create () = { table = Hashtbl.create 64; observer = None }
let set_observer t obs = t.observer <- obs

let state t key =
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
    let s = { holders = []; queue = [] } in
    Hashtbl.add t.table key s;
    s

let compatible requested holders =
  match requested with
  | Shared -> List.for_all (fun r -> r.mode = Shared) holders
  | Exclusive -> holders = []

let insert_by_ts req queue =
  let rec go = function
    | [] -> [ req ]
    | r :: rest when r.ts <= req.ts -> r :: go rest
    | rest -> req :: rest
  in
  go queue

(* Wait-die: the requester may wait only if it is older (strictly smaller
   timestamp) than every conflicting holder; equal or younger dies.  Equal
   timestamps die to break symmetry deterministically. *)
let wait_die requester holders =
  if List.for_all (fun h -> requester.ts < h.ts) holders then Queued else Die

let acquire_locked t ~txn ~ts ~key mode =
  let s = state t key in
  let mine, others = List.partition (fun r -> String.equal r.txn txn) s.holders in
  match (mine, mode) with
  | [ held ], Shared ->
    ignore held;
    Granted
  | [ held ], Exclusive ->
    if held.mode = Exclusive then Granted
    else if others = [] then begin
      (* Upgrade: sole Shared holder becomes Exclusive. *)
      s.holders <- [ { held with mode = Exclusive } ];
      Granted
    end
    else begin
      let req = { txn; ts; mode } in
      match wait_die req others with
      | Queued ->
        s.queue <- insert_by_ts req s.queue;
        Queued
      | other -> other
    end
  | [], _ ->
    let req = { txn; ts; mode } in
    if compatible mode s.holders && s.queue = [] then begin
      s.holders <- req :: s.holders;
      Granted
    end
    else if compatible mode s.holders
            && List.for_all (fun q -> q.ts > ts) s.queue
    then begin
      (* No conflicting holder and strictly older than every waiter: jump
         the queue rather than deadlock behind a younger upgrade. *)
      s.holders <- req :: s.holders;
      Granted
    end
    else begin
      let conflicting =
        List.filter (fun h -> not (compatible mode [ h ])) s.holders
      in
      let blockers = if conflicting = [] then s.queue else conflicting in
      match wait_die req blockers with
      | Queued ->
        s.queue <- insert_by_ts req s.queue;
        Queued
      | other -> other
    end
  | _ :: _ :: _, _ -> assert false (* one request per txn per key *)

let acquire t ~txn ~ts ~key mode =
  let outcome = acquire_locked t ~txn ~ts ~key mode in
  (match t.observer with
  | None -> ()
  | Some obs -> obs.on_acquire ~txn ~key ~mode ~outcome);
  outcome

type release = {
  granted : (string * string * mode) list;
  killed : (string * string) list;
}

(* Promote queued requests that have become compatible, respecting queue
   order (no barging past an incompatible older waiter); then re-apply
   wait-die to the survivors — a waiter younger than a conflicting current
   holder would be a young-waits-for-old edge, which admits deadlock, so
   it dies now. *)
let promote key s granted killed =
  let rec go () =
    match s.queue with
    | [] -> ()
    | req :: rest ->
      (* Upgrade waiting in queue: holder already has Shared on this key. *)
      let own, others =
        List.partition (fun h -> String.equal h.txn req.txn) s.holders
      in
      let can_grant =
        match (own, req.mode) with
        | [ _ ], Exclusive -> others = []
        | [ _ ], Shared -> true
        | [], m -> compatible m s.holders
        | _ :: _ :: _, _ -> assert false
      in
      if can_grant then begin
        s.holders <- req :: List.filter (fun h -> not (String.equal h.txn req.txn)) s.holders;
        s.queue <- rest;
        granted := (req.txn, key, req.mode) :: !granted;
        go ()
      end
  in
  go ();
  let survives req =
    let conflicting =
      List.filter
        (fun h ->
          (not (String.equal h.txn req.txn)) && not (compatible req.mode [ h ]))
        s.holders
    in
    if List.for_all (fun h -> req.ts < h.ts) conflicting then true
    else begin
      killed := (req.txn, key) :: !killed;
      false
    end
  in
  s.queue <- List.filter survives s.queue

let release_all t ~txn =
  let granted = ref [] in
  let killed = ref [] in
  Hashtbl.iter
    (fun key s ->
      let before = List.length s.holders + List.length s.queue in
      s.holders <- List.filter (fun r -> not (String.equal r.txn txn)) s.holders;
      s.queue <- List.filter (fun r -> not (String.equal r.txn txn)) s.queue;
      let after = List.length s.holders + List.length s.queue in
      if after < before then promote key s granted killed)
    t.table;
  let result = { granted = List.rev !granted; killed = List.rev !killed } in
  (match t.observer with
  | None -> ()
  | Some obs ->
    List.iter
      (fun (txn, key, mode) -> obs.on_promoted ~txn ~key ~mode)
      result.granted;
    List.iter (fun (txn, key) -> obs.on_killed ~txn ~key) result.killed);
  result

let holders t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some s -> List.map (fun r -> (r.txn, r.mode)) s.holders

let waiters t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some s -> List.map (fun r -> r.txn) s.queue

let clear t = Hashtbl.reset t.table

let held_by t ~txn =
  Hashtbl.fold
    (fun key s acc ->
      if List.exists (fun r -> String.equal r.txn txn) s.holders then key :: acc
      else acc)
    t.table []
  |> List.sort String.compare
