(** Integrity constraints — the "data consistency" half of a safe
    transaction.

    A participant's YES/NO vote in 2PC (and in 2PVC's voting phase) reports
    whether applying the transaction's buffered writes would preserve these
    constraints.  Constraints read through a lookup function so they can be
    checked against a hypothetical state (committed data overlaid with a
    workspace) without mutating anything. *)

type lookup = string -> Value.t option

type t = private { name : string; check : lookup -> bool }

(** [make ~name check] wraps an arbitrary predicate. *)
val make : name:string -> (lookup -> bool) -> t

(** [non_negative key] — the integer at [key] must be >= 0 (missing or
    non-integer values violate it). *)
val non_negative : string -> t

(** [range key ~lo ~hi] — integer at [key] within [lo, hi] inclusive. *)
val range : string -> lo:int -> hi:int -> t

(** [sum_at_most keys ~bound] — the integers at [keys] must exist and sum
    to at most [bound]. *)
val sum_at_most : string list -> bound:int -> t

(** [sum_preserved keys ~total] — the integers at [keys] sum exactly to
    [total]; the classic funds-conservation constraint. *)
val sum_preserved : string list -> total:int -> t

(** [check_all constraints lookup] is the names of violated constraints
    (empty = integrity holds). *)
val check_all : t list -> lookup -> string list
