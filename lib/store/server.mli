(** A cloud data server: one partition of the application's data items,
    guarded by an authorization-policy replica, a lock manager, integrity
    constraints and a write-ahead log.

    The server exposes exactly the operations the paper's protocols need
    from a participant: execute a query (buffering writes in a per-
    transaction workspace), vote on integrity, force-log a prepare record
    with the (v_i, p_i) policy-version tuples, and apply or drop the
    workspace on decision.  Crash/recovery rebuilds in-doubt transactions
    from the forced log records. *)

type t

val create :
  name:string ->
  ?constraints:Integrity.t list ->
  items:(string * Value.t) list ->
  unit ->
  t

val name : t -> string
val replica : t -> Cloudtx_policy.Replica.t
val wal : t -> Wal.t
val locks : t -> Lock_manager.t

(** Committed value of a key. *)
val get : t -> string -> Value.t option

(** [read_asof t key ~ts] is the committed value as of simulated time
    [ts]: the newest version whose commit time is <= [ts] (the opening
    inventory counts as committed at time 0).  Powers snapshot reads:
    read-only queries served from a transaction-start snapshot without
    touching the lock table. *)
val read_asof : t -> string -> ts:float -> Value.t option

(** [execute_snapshot t ~reads ~ts] reads every key as of [ts]; no locks
    are taken and the call never blocks or dies. Unhosted keys raise
    [Invalid_argument]. *)
val execute_snapshot :
  t -> reads:string list -> ts:float -> (string * Value.t option) list

(** [vacuum t ~before] prunes version chains: snapshots older than
    [before] are no longer needed, so for each key only the newest version
    at or before that horizon (plus everything newer) is kept. Returns the
    number of versions reclaimed. *)
val vacuum : t -> before:float -> int

(** Does this server host the key? *)
val hosts : t -> string -> bool

val keys : t -> string list

(** {1 Transaction workspace} *)

(** [begin_work t ~txn ~ts] opens a workspace (idempotent). [ts] is the
    transaction start timestamp used for wait-die. *)
val begin_work : t -> txn:string -> ts:float -> time:float -> unit

type exec_result =
  | Executed of (string * Value.t option) list
      (** Reads (through the workspace overlay), in request order. *)
  | Blocked  (** Queued behind a lock; re-issue after some delay. *)
  | Die  (** Wait-die victim: the transaction must abort. *)

(** [execute t ~txn ~reads ~writes] acquires Shared locks on [reads] and
    Exclusive on write keys, then buffers [writes].  Updates compose in
    buffer order, so a transaction can debit and credit incrementally.
    Keys not hosted here raise [Invalid_argument]. *)
val execute :
  t ->
  txn:string ->
  reads:string list ->
  writes:(string * Value.update) list ->
  exec_result

(** Lookup that sees committed data overlaid with [txn]'s buffered
    writes — the hypothetical post-commit state. *)
val overlay : t -> txn:string -> Integrity.lookup

(** Violated-constraint names for [txn]'s hypothetical state (empty = the
    participant can vote YES). *)
val integrity_violations : t -> txn:string -> string list

(** [prepare t ~txn ~time ~proof_truth ~policy_versions] computes the
    integrity vote and force-writes the [Prepared] record carrying vote,
    truth value and version tuples. Returns the integrity vote. *)
val prepare :
  t ->
  txn:string ->
  time:float ->
  proof_truth:bool ->
  policy_versions:(string * int) list ->
  bool

(** [commit t ~txn ~time] writes the decision record ([forced] defaults to
    true; presumed-commit participants pass false), applies the workspace,
    releases locks; returns the promotion outcome (grants to resume,
    wait-die kills to abort). *)
val commit : ?forced:bool -> t -> txn:string -> time:float -> Lock_manager.release

(** [abort t ~txn ~time] writes the decision record ([forced] defaults to
    true; presumed-abort participants pass false), drops the workspace,
    releases locks; returns the promotion outcome. Safe to call for
    transactions with no workspace here. *)
val abort : ?forced:bool -> t -> txn:string -> time:float -> Lock_manager.release

(** [finish t ~txn ~time] writes the non-forced [End_txn] record. *)
val finish : t -> txn:string -> time:float -> unit

(** Does [txn]'s workspace buffer any writes here? A participant with no
    writes can take the read-only fast path of 2PC: vote, release, skip
    the decision phase and all forced logging. *)
val is_read_only : t -> txn:string -> bool

(** [forget t ~txn ~time] ends a read-only participation: drops the
    workspace, releases locks, writes a non-forced [End_txn] record —
    no decision record, forced or otherwise. Returns the promotion
    outcome. *)
val forget : t -> txn:string -> time:float -> Lock_manager.release

(** [checkpoint t ~time] force-writes a checkpoint naming the transactions
    with open workspaces and reclaims the log prefix before it (their
    records survive). Returns the number of records reclaimed. *)
val checkpoint : t -> time:float -> int

(** {1 Crash and recovery} *)

(** [crash t] wipes volatile state (workspaces, lock table) and loses the
    unforced tail of the log, as a fail-stop crash would. Committed data
    survives (it is "on disk"). *)
val crash : t -> unit

(** [recover t ~time] replays the log: re-applies committed-but-unfinished
    transactions, drops aborted ones, and re-acquires exclusive locks for
    in-doubt (prepared, undecided) transactions. Returns the in-doubt
    transaction ids that must be resolved with the coordinator. *)
val recover : t -> time:float -> string list
