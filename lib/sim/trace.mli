(** Append-only record of everything observable in a simulation run.

    The benchmark harness replays traces to regenerate the paper's figures:
    message sequence charts (Figures 2 and 7) come from [Send]/[Recv]
    entries, and the proof-evaluation timelines (Figures 3-6) from [Mark]
    entries tagged by the protocol layer. *)

type kind =
  | Send of { src : string; dst : string; label : string }
  | Recv of { src : string; dst : string; label : string }
  | Drop of { src : string; dst : string; label : string }
      (** Message lost by the network model. *)
  | Mark of { node : string; label : string }
      (** Protocol-level annotation, e.g. ["query_start"], ["proof_eval"],
          ["log_force:prepared"]. *)

type entry = { time : float; kind : kind }

type t

val create : unit -> t

(** [record t ~time kind] appends an entry. *)
val record : t -> time:float -> kind -> unit

(** Entries in chronological (= insertion) order. *)
val entries : t -> entry list

val length : t -> int
val clear : t -> unit

(** [marks t ~node ~label] is the times of [Mark] entries matching both
    filters ([None] matches anything). *)
val marks : ?node:string -> ?label:string -> t -> (float * string * string) list

(** [messages t] is every [Send] entry as [(time, src, dst, label)]. *)
val messages : t -> (float * string * string * string) list

val pp_entry : Format.formatter -> entry -> unit

(** Multi-line rendering of the whole trace, one entry per line. *)
val to_string : t -> string

(** {1 Exporters} *)

(** Mermaid [sequenceDiagram] source: one arrow per delivered message
    ([Send] entries whose delivery is also traced render once), notes for
    [Mark] entries, dashed arrows for drops.  Paste into any mermaid
    renderer to get the paper's Figure 2/7-style charts. *)
val to_mermaid : t -> string

(** CSV export: [time,kind,src,dst,label] with RFC-4180 quoting; header
    row included. [Mark] entries put the node in [src]. *)
val to_csv : t -> string

(** JSONL export: one JSON object per entry with [time_ms], [kind]
    ([send]/[recv]/[drop]/[mark]), [src]/[dst] where applicable and
    [label].  [Mark] entries put the node in [src]. *)
val to_jsonl : t -> string
