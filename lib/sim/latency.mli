(** One-way network latency models.

    Times are milliseconds of simulated time.  The defaults mirror the
    intra-datacenter and wide-area regimes a cloud deployment of the paper's
    system would see. *)

type t =
  | Constant of float  (** Always the same delay. *)
  | Uniform of { lo : float; hi : float }  (** Uniform in [lo, hi). *)
  | Exponential of { base : float; mean : float }
      (** [base] floor plus an exponential tail with the given mean. *)

(** [sample t rng] draws one delay; always nonnegative. *)
val sample : t -> Splitmix.t -> float

(** 0.5ms +/- jitter: same-rack cloud servers. *)
val lan : t

(** ~25ms base with heavy tail: cross-region replication links. *)
val wan : t

val pp : Format.formatter -> t -> unit
