(** Binary min-heap of timestamped events.

    Orders by [(time, seq)] where [seq] is an insertion sequence number, so
    events scheduled for the same instant pop in FIFO order — the property
    that makes simulation runs deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push h ~time ~seq v] inserts [v]. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** [pop h] removes and returns the minimum entry, or [None] when empty. *)
val pop : 'a t -> (float * int * 'a) option

(** [peek_time h] is the timestamp of the minimum entry without removing. *)
val peek_time : 'a t -> float option
