type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { base : float; mean : float }

let sample t rng =
  let raw =
    match t with
    | Constant d -> d
    | Uniform { lo; hi } -> Splitmix.uniform rng ~lo ~hi
    | Exponential { base; mean } -> base +. Splitmix.exponential rng ~mean
  in
  Float.max 0. raw

let lan = Uniform { lo = 0.3; hi = 0.8 }
let wan = Exponential { base = 20.; mean = 8. }

let pp ppf = function
  | Constant d -> Format.fprintf ppf "constant(%.2fms)" d
  | Uniform { lo; hi } -> Format.fprintf ppf "uniform(%.2f..%.2fms)" lo hi
  | Exponential { base; mean } ->
    Format.fprintf ppf "exp(base=%.2fms, mean=%.2fms)" base mean
