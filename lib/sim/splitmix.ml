type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(* Mixing function from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* Take 62 bits so the value fits a nonnegative native int; the modulo
     bias is at most bound / 2^62, negligible for simulator bounds. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t =
  (* 53 high bits -> [0, 1) double. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  if lo >= hi then invalid_arg "Splitmix.uniform: lo must be < hi";
  lo +. (float t *. (hi -. lo))

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Splitmix.exponential: mean must be positive";
  let u = float t in
  (* Guard against log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let bool t ~p =
  let p = Float.max 0. (Float.min 1. p) in
  float t < p

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.choice: empty array";
  arr.(int t (Array.length arr))
