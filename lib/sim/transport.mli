(** Message delivery fabric connecting simulated nodes.

    A ['msg Transport.t] owns the engine, network model and trace for one
    simulated cluster.  Nodes register a handler under their name; [send]
    consults the network model, records the trace entries, counts the
    message (the unit of the paper's message-complexity metric) and
    schedules the receiver's handler.

    Crashed nodes silently swallow traffic, modelling fail-stop servers for
    the recovery experiments. *)

type 'msg t

(** [create ~label_of ()] builds an empty fabric with its own engine.
    [label_of] renders a message for traces and counters; [latency]
    defaults to {!Latency.lan}; [seed] fixes all randomness. *)
val create :
  ?seed:int64 ->
  ?latency:Latency.t ->
  ?drop:float ->
  label_of:('msg -> string) ->
  unit ->
  'msg t

val engine : _ t -> Engine.t
val network : _ t -> Network.t
val trace : _ t -> Trace.t
val counters : _ t -> Cloudtx_metrics.Counter.t

(** The fabric's span tracer; {!Cloudtx_obs.Tracer.noop} until
    {!enable_tracing} is called, so instrumentation is free by default. *)
val tracer : _ t -> Cloudtx_obs.Tracer.t

(** The fabric's metrics registry; {!Cloudtx_obs.Registry.noop} until
    {!enable_metrics} is called. *)
val registry : _ t -> Cloudtx_obs.Registry.t

(** [enable_tracing t] installs (once) and returns a live tracer clocked
    by simulated time, so exported traces are deterministic.  Every
    [send]/[mark] from then on also lands in the tracer as an instant
    event, bridging the {!Trace} view into the span artifact. *)
val enable_tracing : _ t -> Cloudtx_obs.Tracer.t

(** [enable_metrics t] installs (once) and returns a live registry; also
    hooks the engine to sample queue depth ([sim.pending_events]). *)
val enable_metrics : _ t -> Cloudtx_obs.Registry.t

(** The fabric's windowed time series; [None] until
    {!enable_timeseries} is called. *)
val timeseries : _ t -> Cloudtx_obs.Timeseries.t option

(** [enable_timeseries t] installs (once) and returns a windowed
    {!Cloudtx_obs.Timeseries.t} aligned to the fabric's clock: sim-time
    starts at 0, so window 0 opens at the engine's epoch and window
    edges fall on exact multiples of [width_ms] of simulated time.
    Feeding it is the observer's job (see [Cloudtx_core.Health.attach]);
    the fabric only owns the window/clock convention. *)
val enable_timeseries :
  ?width_ms:float -> _ t -> Cloudtx_obs.Timeseries.t

(** The fabric's flight-recorder journal; {!Cloudtx_obs.Journal.noop}
    until {!enable_journal} is called. *)
val journal : _ t -> Cloudtx_obs.Journal.t

(** [enable_journal ?format ?max_buffer_bytes ?path t] installs (once)
    and returns a live journal clocked by simulated time; [format]
    selects JSONL (default) or binary encoding, and with [path] records
    are also written through to that file.  [max_buffer_bytes] caps
    the in-memory buffer (drop-oldest); evictions feed the registry's
    [journal.dropped] counter when metrics are enabled.  The protocol
    drivers record every machine step from then on. *)
val enable_journal :
  ?format:Cloudtx_obs.Journal.format ->
  ?max_buffer_bytes:int ->
  ?path:string ->
  _ t ->
  Cloudtx_obs.Journal.t

(** Simulated now, for convenience. *)
val now : _ t -> float

(** A private RNG stream split off the fabric seed, for workloads. *)
val fork_rng : _ t -> Splitmix.t

(** [register t name handler] installs the node. Raises [Invalid_argument]
    on duplicate names. Handler receives [(src, msg)]. *)
val register : 'msg t -> string -> (src:string -> 'msg -> unit) -> unit

(** [register_seq t name handler] is {!register} but the handler also
    receives the message's wire sequence number.  Every copy of one
    logical [send] (the original and any network-level duplicates) carries
    the same [seq], so receivers can deduplicate re-deliveries. *)
val register_seq :
  'msg t -> string -> (src:string -> seq:int -> 'msg -> unit) -> unit

(** [unregister t name] removes the node's handler (e.g. to swap in a
    recovery handler after a restart). In-flight messages to [name] are
    delivered to whichever handler is registered at delivery time, or
    dropped if none is. *)
val unregister : _ t -> string -> unit

val registered : _ t -> string -> bool

(** [crash t name] makes the node drop all incoming traffic (fail-stop). *)
val crash : _ t -> string -> unit

(** [recover t name] lets a crashed node receive again. *)
val recover : _ t -> string -> unit

val crashed : _ t -> string -> bool

(** [send t ~src ~dst msg] counts the message under ["messages"] and
    ["msg:<label>"], traces it, and schedules delivery per the network
    model. Unknown destinations are traced as drops. *)
val send : 'msg t -> src:string -> dst:string -> 'msg -> unit

(** [at t ~delay f] schedules local work (not a message, not counted). *)
val at : _ t -> delay:float -> (unit -> unit) -> unit

(** [mark t ~node label] records a protocol annotation in the trace. *)
val mark : _ t -> node:string -> string -> unit

(** Run the engine (see {!Engine.run}). *)
val run : ?until:float -> ?max_steps:int -> _ t -> [ `Quiescent | `Time_limit | `Step_limit ]
