type t = {
  heap : (unit -> unit) Event_heap.t;
  mutable now : float;
  mutable seq : int;
  mutable steps : int;
  mutable observer : (now:float -> pending:int -> unit) option;
}

let create () =
  { heap = Event_heap.create (); now = 0.; seq = 0; steps = 0; observer = None }

let set_observer t obs = t.observer <- obs

let now t = t.now

let schedule_at t ~time f =
  let time = Float.max time t.now in
  Event_heap.push t.heap ~time ~seq:t.seq f;
  t.seq <- t.seq + 1

let schedule t ~delay f = schedule_at t ~time:(t.now +. Float.max 0. delay) f

let steps t = t.steps
let pending t = Event_heap.size t.heap

let step t =
  match Event_heap.pop t.heap with
  | None -> false
  | Some (time, _seq, f) ->
    t.now <- time;
    t.steps <- t.steps + 1;
    (match t.observer with
    | None -> ()
    | Some obs -> obs ~now:time ~pending:(Event_heap.size t.heap));
    f ();
    true

let run ?until ?max_steps t =
  let over_time () =
    match until with
    | None -> false
    | Some limit -> (
      match Event_heap.peek_time t.heap with
      | None -> false
      | Some next -> next > limit)
  in
  let over_steps executed =
    match max_steps with None -> false | Some m -> executed >= m
  in
  let rec loop executed =
    if Event_heap.is_empty t.heap then `Quiescent
    else if over_time () then `Time_limit
    else if over_steps executed then `Step_limit
    else begin
      ignore (step t);
      loop (executed + 1)
    end
  in
  loop 0
