type kind =
  | Send of { src : string; dst : string; label : string }
  | Recv of { src : string; dst : string; label : string }
  | Drop of { src : string; dst : string; label : string }
  | Mark of { node : string; label : string }

type entry = { time : float; kind : kind }

type t = { mutable entries : entry list; mutable length : int }
(* Stored reversed; [entries] reverses on read. *)

let create () = { entries = []; length = 0 }

let record t ~time kind =
  t.entries <- { time; kind } :: t.entries;
  t.length <- t.length + 1

let entries t = List.rev t.entries
let length t = t.length

let clear t =
  t.entries <- [];
  t.length <- 0

let marks ?node ?label t =
  let matches want got = match want with None -> true | Some w -> String.equal w got in
  List.filter_map
    (fun e ->
      match e.kind with
      | Mark { node = n; label = l } when matches node n && matches label l ->
        Some (e.time, n, l)
      | Mark _ | Send _ | Recv _ | Drop _ -> None)
    (entries t)

let messages t =
  List.filter_map
    (fun e ->
      match e.kind with
      | Send { src; dst; label } -> Some (e.time, src, dst, label)
      | Recv _ | Drop _ | Mark _ -> None)
    (entries t)

let pp_entry ppf { time; kind } =
  match kind with
  | Send { src; dst; label } ->
    Format.fprintf ppf "%10.3f  %s -> %s : %s" time src dst label
  | Recv { src; dst; label } ->
    Format.fprintf ppf "%10.3f  %s => %s : %s (delivered)" time src dst label
  | Drop { src; dst; label } ->
    Format.fprintf ppf "%10.3f  %s -x %s : %s (dropped)" time src dst label
  | Mark { node; label } -> Format.fprintf ppf "%10.3f  [%s] %s" time node label

let to_string t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a@." pp_entry e))
    (entries t);
  Buffer.contents buf

(* Mermaid identifiers cannot contain '-'. *)
let mermaid_id name =
  String.map (function '-' | ' ' | ':' -> '_' | c -> c) name

let to_mermaid t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "sequenceDiagram\n";
  (* Declare participants in first-appearance order for stable columns. *)
  let seen = Hashtbl.create 8 in
  let declare name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      Buffer.add_string buf
        (Printf.sprintf "  participant %s as %s\n" (mermaid_id name) name)
    end
  in
  List.iter
    (fun e ->
      match e.kind with
      | Send { src; dst; _ } | Drop { src; dst; _ } ->
        declare src;
        declare dst
      | Mark { node; _ } -> declare node
      | Recv _ -> ())
    (entries t);
  List.iter
    (fun e ->
      match e.kind with
      | Send { src; dst; label } ->
        Buffer.add_string buf
          (Printf.sprintf "  %s->>%s: %s @%.2fms\n" (mermaid_id src)
             (mermaid_id dst) label e.time)
      | Drop { src; dst; label } ->
        Buffer.add_string buf
          (Printf.sprintf "  %s--x%s: %s (lost) @%.2fms\n" (mermaid_id src)
             (mermaid_id dst) label e.time)
      | Mark { node; label } ->
        Buffer.add_string buf
          (Printf.sprintf "  Note over %s: %s @%.2fms\n" (mermaid_id node) label
             e.time)
      | Recv _ -> ())
    (entries t);
  Buffer.contents buf

let to_jsonl t =
  let module Json = Cloudtx_obs.Json in
  let buf = Buffer.create 1024 in
  let row time kind src dst label =
    let fields =
      [ ("time_ms", Json.number time); ("kind", Json.quote kind) ]
      @ (if src = "" then [] else [ ("src", Json.quote src) ])
      @ (if dst = "" then [] else [ ("dst", Json.quote dst) ])
      @ [ ("label", Json.quote label) ]
    in
    Buffer.add_string buf (Json.obj fields);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun e ->
      match e.kind with
      | Send { src; dst; label } -> row e.time "send" src dst label
      | Recv { src; dst; label } -> row e.time "recv" src dst label
      | Drop { src; dst; label } -> row e.time "drop" src dst label
      | Mark { node; label } -> row e.time "mark" node "" label)
    (entries t);
  Buffer.contents buf

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 4) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "time,kind,src,dst,label\n";
  let row time kind src dst label =
    Buffer.add_string buf
      (Printf.sprintf "%.4f,%s,%s,%s,%s\n" time kind (csv_quote src)
         (csv_quote dst) (csv_quote label))
  in
  List.iter
    (fun e ->
      match e.kind with
      | Send { src; dst; label } -> row e.time "send" src dst label
      | Recv { src; dst; label } -> row e.time "recv" src dst label
      | Drop { src; dst; label } -> row e.time "drop" src dst label
      | Mark { node; label } -> row e.time "mark" node "" label)
    (entries t);
  Buffer.contents buf
