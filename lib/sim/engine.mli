(** Discrete-event simulation driver.

    A simulation is a heap of timestamped thunks.  [run] repeatedly pops the
    earliest event, advances the clock to its timestamp and executes it;
    executing an event may schedule further events.  Ties are broken by
    scheduling order, so a run is fully deterministic. *)

type t

val create : unit -> t

(** Current simulated time (milliseconds). Starts at 0. *)
val now : t -> float

(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays are
    clamped to 0 (the event runs "now", after already-queued events for the
    current instant). *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time]; clamped to [now]. *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** Number of events executed so far. *)
val steps : t -> int

(** Events still queued. *)
val pending : t -> int

(** [step t] executes the next event; false when the queue is empty. *)
val step : t -> bool

(** [set_observer t (Some f)] calls [f ~now ~pending] before each event
    executes ([pending] excludes the event itself); [None] (the default)
    disables the hook.  Used by the observability layer to sample queue
    depth without the engine depending on it. *)
val set_observer : t -> (now:float -> pending:int -> unit) option -> unit

(** [run ?until ?max_steps t] executes events until quiescence, until the
    clock would pass [until], or until [max_steps] events have run —
    whichever comes first.  Returns the reason it stopped. *)
val run : ?until:float -> ?max_steps:int -> t -> [ `Quiescent | `Time_limit | `Step_limit ]
