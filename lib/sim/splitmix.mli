(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through one of these
    states so that a run is a pure function of its seed: identical seeds give
    identical traces, which the tests rely on.  [split] derives an
    independent stream, letting subsystems (network latency, workload
    arrivals, policy churn) draw without perturbing each other. *)

type t

(** [create seed] is a fresh generator. Distinct seeds give independent
    streams of 2^64 period. *)
val create : int64 -> t

(** Next raw 64-bit output. Advances the state. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [uniform t ~lo ~hi] is uniform in [lo, hi); requires [lo < hi]. *)
val uniform : t -> lo:float -> hi:float -> float

(** [exponential t ~mean] draws from Exp(1/mean); requires [mean > 0]. *)
val exponential : t -> mean:float -> float

(** [bool t ~p] is true with probability [p] (clamped to [0, 1]). *)
val bool : t -> p:float -> bool

(** [split t] advances [t] and returns a generator whose stream is
    independent of [t]'s subsequent outputs. *)
val split : t -> t

(** [choice t arr] picks a uniformly random element; [arr] must be
    non-empty. *)
val choice : t -> 'a array -> 'a
