(** Network model: per-message latency, loss and partitions.

    Deciding a message's fate is separated from delivering it so the model
    can be unit-tested without an engine; {!Transport} combines the two. *)

type t

(** [create ~latency ~rng ()] builds a model. [drop] is an independent loss
    probability per message (default 0: the commit protocols in the paper
    assume reliable channels; loss is injected only in the failure tests). *)
val create : ?drop:float -> latency:Latency.t -> rng:Splitmix.t -> unit -> t

(** [set_link t a b model] overrides the latency of the (undirected) link
    between [a] and [b] — e.g. a WAN hop between regions while everything
    else stays on the LAN model. *)
val set_link : t -> string -> string -> Latency.t -> unit

(** Remove a per-link override. *)
val clear_link : t -> string -> string -> unit

(** [set_drop t p] changes the loss probability. *)
val set_drop : t -> float -> unit

(** [partition t a b] blocks traffic in both directions between [a] and
    [b]. *)
val partition : t -> string -> string -> unit

(** [heal t a b] removes the partition between [a] and [b]. *)
val heal : t -> string -> string -> unit

(** [heal_all t] removes every partition. *)
val heal_all : t -> unit

val partitioned : t -> string -> string -> bool

(** [fate t ~src ~dst] decides what happens to one message: delivered after
    the returned delay, or lost. Messages from a node to itself are
    delivered with zero delay and never lost. *)
val fate : t -> src:string -> dst:string -> [ `Deliver_after of float | `Lost ]
