(** Network model: per-message latency, loss, duplication, reordering and
    partitions.

    Deciding a message's fate is separated from delivering it so the model
    can be unit-tested without an engine; {!Transport} combines the two. *)

type t

(** [create ~latency ~rng ()] builds a model. [drop] is an independent loss
    probability per message (default 0: the commit protocols in the paper
    assume reliable channels; loss is injected only in the failure tests).
    [duplicate] is an independent per-message duplication probability —
    each extra copy gets its own latency draw, and another duplication coin
    flip, so bursts of copies are possible (default 0).  [reorder_jitter]
    adds an extra randomized delay per delivery that can invert FIFO order
    on a link (default none). *)
val create :
  ?drop:float ->
  ?duplicate:float ->
  ?reorder_jitter:Latency.t ->
  latency:Latency.t ->
  rng:Splitmix.t ->
  unit ->
  t

(** [set_link t a b model] overrides the latency of the (undirected) link
    between [a] and [b] — e.g. a WAN hop between regions while everything
    else stays on the LAN model. *)
val set_link : t -> string -> string -> Latency.t -> unit

(** Remove a per-link override. *)
val clear_link : t -> string -> string -> unit

(** [set_drop t p] changes the loss probability. *)
val set_drop : t -> float -> unit

(** [set_duplicate t p] changes the duplication probability. *)
val set_duplicate : t -> float -> unit

(** [set_reorder_jitter t model] changes the reorder jitter ([None]
    disables it). *)
val set_reorder_jitter : t -> Latency.t option -> unit

(** [set_link_drop t ~src ~dst p] sets a {e directional} loss probability
    on the [src]→[dst] link, on top of the global [drop] — the lossy-link
    gray fault (e.g. replies from one server vanish while requests get
    through).  [p <= 0.] clears it.  The coin is only flipped for links
    with an override, so runs without the fault consume the RNG stream
    identically. *)
val set_link_drop : t -> src:string -> dst:string -> float -> unit

val clear_link_drop : t -> src:string -> dst:string -> unit

(** [set_burst_extra t d] adds [d] ms to every delivery — the
    latency-burst gray fault.  Deterministic (no RNG draw); [0.] (the
    default) disables. *)
val set_burst_extra : t -> float -> unit

(** [set_slowdown t node d] adds [d] ms to every delivery [node] sends or
    receives — the slow-server gray fault.  Deterministic; [d <= 0.]
    clears. *)
val set_slowdown : t -> string -> float -> unit

val clear_slowdown : t -> string -> unit

(** [partition t a b] blocks traffic in both directions between [a] and
    [b]. *)
val partition : t -> string -> string -> unit

(** [heal t a b] removes the partition between [a] and [b]. *)
val heal : t -> string -> string -> unit

(** [heal_all t] removes every partition. *)
val heal_all : t -> unit

val partitioned : t -> string -> string -> bool

(** [fate t ~src ~dst] decides what happens to one message: each element of
    the returned list is one delivery of the message after that delay (the
    head is the "original", the rest are duplicates), or the message is
    lost entirely.  Messages from a node to itself are delivered once with
    zero delay and never lost or duplicated. *)
val fate : t -> src:string -> dst:string -> [ `Deliver_each of float list | `Lost ]
