module Pair_set = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type t = {
  latency : Latency.t;
  rng : Splitmix.t;
  mutable drop : float;
  mutable partitions : Pair_set.t;
  links : (string * string, Latency.t) Hashtbl.t;
}

let create ?(drop = 0.) ~latency ~rng () =
  { latency; rng; drop; partitions = Pair_set.empty; links = Hashtbl.create 8 }

let set_drop t p = t.drop <- p

let canonical a b = if String.compare a b <= 0 then (a, b) else (b, a)

let set_link t a b model = Hashtbl.replace t.links (canonical a b) model
let clear_link t a b = Hashtbl.remove t.links (canonical a b)

let partition t a b = t.partitions <- Pair_set.add (canonical a b) t.partitions
let heal t a b = t.partitions <- Pair_set.remove (canonical a b) t.partitions
let heal_all t = t.partitions <- Pair_set.empty
let partitioned t a b = Pair_set.mem (canonical a b) t.partitions

let fate t ~src ~dst =
  if String.equal src dst then `Deliver_after 0.
  else if partitioned t src dst then `Lost
  else if t.drop > 0. && Splitmix.bool t.rng ~p:t.drop then `Lost
  else begin
    let model =
      match Hashtbl.find_opt t.links (canonical src dst) with
      | Some link -> link
      | None -> t.latency
    in
    `Deliver_after (Latency.sample model t.rng)
  end
