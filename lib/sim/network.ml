module Pair_set = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type t = {
  latency : Latency.t;
  rng : Splitmix.t;
  mutable drop : float;
  mutable duplicate : float;
  mutable reorder_jitter : Latency.t option;
  mutable partitions : Pair_set.t;
  links : (string * string, Latency.t) Hashtbl.t;
  (* Gray-failure knobs.  All default to "absent"/0 and, critically,
     draw no RNG when unset — pre-existing seeded runs consume the RNG
     stream identically. *)
  link_drop : (string * string, float) Hashtbl.t;
      (* directional (src, dst) loss probability on top of [drop] *)
  mutable burst_extra : float;  (* global extra delay per delivery *)
  slowdowns : (string, float) Hashtbl.t;
      (* per-node extra delay, applied when the node sends or receives *)
}

let create ?(drop = 0.) ?(duplicate = 0.) ?reorder_jitter ~latency ~rng () =
  {
    latency;
    rng;
    drop;
    duplicate;
    reorder_jitter;
    partitions = Pair_set.empty;
    links = Hashtbl.create 8;
    link_drop = Hashtbl.create 8;
    burst_extra = 0.;
    slowdowns = Hashtbl.create 8;
  }

let set_drop t p = t.drop <- p
let set_duplicate t p = t.duplicate <- p
let set_reorder_jitter t model = t.reorder_jitter <- model

let canonical a b = if String.compare a b <= 0 then (a, b) else (b, a)

let set_link t a b model = Hashtbl.replace t.links (canonical a b) model
let clear_link t a b = Hashtbl.remove t.links (canonical a b)

let set_link_drop t ~src ~dst p =
  if p <= 0. then Hashtbl.remove t.link_drop (src, dst)
  else Hashtbl.replace t.link_drop (src, dst) p

let clear_link_drop t ~src ~dst = Hashtbl.remove t.link_drop (src, dst)
let set_burst_extra t d = t.burst_extra <- Float.max 0. d

let set_slowdown t node d =
  if d <= 0. then Hashtbl.remove t.slowdowns node
  else Hashtbl.replace t.slowdowns node d

let clear_slowdown t node = Hashtbl.remove t.slowdowns node

let partition t a b = t.partitions <- Pair_set.add (canonical a b) t.partitions
let heal t a b = t.partitions <- Pair_set.remove (canonical a b) t.partitions
let heal_all t = t.partitions <- Pair_set.empty
let partitioned t a b = Pair_set.mem (canonical a b) t.partitions

let fate t ~src ~dst =
  if String.equal src dst then `Deliver_each [ 0. ]
  else if partitioned t src dst then `Lost
  else if
    (* Directional lossy-link coin: drawn only when an entry exists, so
       runs without the fault consume no extra RNG. *)
    match Hashtbl.find_opt t.link_drop (src, dst) with
    | Some p -> Splitmix.bool t.rng ~p
    | None -> false
  then `Lost
  else if t.drop > 0. && Splitmix.bool t.rng ~p:t.drop then `Lost
  else begin
    let model =
      match Hashtbl.find_opt t.links (canonical src dst) with
      | Some link -> link
      | None -> t.latency
    in
    (* Deterministic additive slow-path delay: a global latency burst
       plus per-node slowdowns on either endpoint.  No RNG. *)
    let extra =
      t.burst_extra
      +. (match Hashtbl.find_opt t.slowdowns src with Some d -> d | None -> 0.)
      +. (match Hashtbl.find_opt t.slowdowns dst with Some d -> d | None -> 0.)
    in
    (* With both knobs at their defaults this draws exactly one latency
       sample, so pre-existing runs consume the RNG identically. *)
    let sample () =
      let d = Latency.sample model t.rng in
      (match t.reorder_jitter with
      | None -> d
      | Some j -> d +. Latency.sample j t.rng)
      +. extra
    in
    let first = sample () in
    let rec dups acc =
      if t.duplicate > 0. && Splitmix.bool t.rng ~p:t.duplicate then
        dups (sample () :: acc)
      else List.rev acc
    in
    `Deliver_each (first :: dups [])
  end
