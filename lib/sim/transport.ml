module Counter = Cloudtx_metrics.Counter

type 'msg t = {
  engine : Engine.t;
  network : Network.t;
  trace : Trace.t;
  counters : Counter.t;
  label_of : 'msg -> string;
  handlers : (string, src:string -> 'msg -> unit) Hashtbl.t;
  crashed : (string, unit) Hashtbl.t;
  rng : Splitmix.t;
}

let create ?(seed = 42L) ?(latency = Latency.lan) ?(drop = 0.) ~label_of () =
  let rng = Splitmix.create seed in
  let net_rng = Splitmix.split rng in
  {
    engine = Engine.create ();
    network = Network.create ~drop ~latency ~rng:net_rng ();
    trace = Trace.create ();
    counters = Counter.create ();
    label_of;
    handlers = Hashtbl.create 16;
    crashed = Hashtbl.create 4;
    rng;
  }

let engine t = t.engine
let network t = t.network
let trace t = t.trace
let counters t = t.counters
let now t = Engine.now t.engine
let fork_rng t = Splitmix.split t.rng

let register t name handler =
  if Hashtbl.mem t.handlers name then
    invalid_arg (Printf.sprintf "Transport.register: duplicate node %s" name);
  Hashtbl.add t.handlers name handler

let registered t name = Hashtbl.mem t.handlers name
let crash t name = Hashtbl.replace t.crashed name ()
let recover t name = Hashtbl.remove t.crashed name
let crashed t name = Hashtbl.mem t.crashed name

let send t ~src ~dst msg =
  let label = t.label_of msg in
  Counter.incr t.counters "messages";
  Counter.incr t.counters ("msg:" ^ label);
  Trace.record t.trace ~time:(now t) (Trace.Send { src; dst; label });
  match Hashtbl.find_opt t.handlers dst with
  | None -> Trace.record t.trace ~time:(now t) (Trace.Drop { src; dst; label })
  | Some handler -> (
    match Network.fate t.network ~src ~dst with
    | `Lost -> Trace.record t.trace ~time:(now t) (Trace.Drop { src; dst; label })
    | `Deliver_after delay ->
      Engine.schedule t.engine ~delay (fun () ->
          if Hashtbl.mem t.crashed dst then
            Trace.record t.trace ~time:(now t) (Trace.Drop { src; dst; label })
          else begin
            Trace.record t.trace ~time:(now t) (Trace.Recv { src; dst; label });
            handler ~src msg
          end))

let at t ~delay f = Engine.schedule t.engine ~delay f

let mark t ~node label =
  Trace.record t.trace ~time:(now t) (Trace.Mark { node; label })

let run ?until ?max_steps t = Engine.run ?until ?max_steps t.engine
