module Counter = Cloudtx_metrics.Counter
module Obs = Cloudtx_obs

type 'msg t = {
  engine : Engine.t;
  network : Network.t;
  trace : Trace.t;
  counters : Counter.t;
  label_of : 'msg -> string;
  handlers : (string, src:string -> seq:int -> 'msg -> unit) Hashtbl.t;
  crashed : (string, unit) Hashtbl.t;
  rng : Splitmix.t;
  mutable next_seq : int;
  mutable tracer : Obs.Tracer.t;
  mutable registry : Obs.Registry.t;
  mutable journal : Obs.Journal.t;
  mutable timeseries : Obs.Timeseries.t option;
}

let create ?(seed = 42L) ?(latency = Latency.lan) ?(drop = 0.) ~label_of () =
  let rng = Splitmix.create seed in
  let net_rng = Splitmix.split rng in
  {
    engine = Engine.create ();
    network = Network.create ~drop ~latency ~rng:net_rng ();
    trace = Trace.create ();
    counters = Counter.create ();
    label_of;
    handlers = Hashtbl.create 16;
    crashed = Hashtbl.create 4;
    rng;
    next_seq = 0;
    tracer = Obs.Tracer.noop;
    registry = Obs.Registry.noop;
    journal = Obs.Journal.noop;
    timeseries = None;
  }

let engine t = t.engine
let network t = t.network
let trace t = t.trace
let counters t = t.counters
let tracer t = t.tracer
let registry t = t.registry
let journal t = t.journal
let now t = Engine.now t.engine
let fork_rng t = Splitmix.split t.rng

let enable_tracing t =
  if not (Obs.Tracer.enabled t.tracer) then
    t.tracer <- Obs.Tracer.create ~clock:(fun () -> Engine.now t.engine) ();
  t.tracer

let enable_metrics t =
  if not (Obs.Registry.enabled t.registry) then begin
    let registry = Obs.Registry.create () in
    t.registry <- registry;
    Engine.set_observer t.engine
      (Some
         (fun ~now:_ ~pending ->
           Obs.Registry.set_gauge registry "sim.pending_events" []
             (float_of_int pending)))
  end;
  t.registry

let timeseries t = t.timeseries

let enable_timeseries ?width_ms t =
  match t.timeseries with
  | Some ts -> ts
  | None ->
    (* Sim-time starts at 0, so window 0 opens at the engine's epoch and
       every edge falls on an exact multiple of the width. *)
    let ts = Obs.Timeseries.create ?width_ms () in
    t.timeseries <- Some ts;
    ts

let enable_journal ?format ?max_buffer_bytes ?path t =
  if not (Obs.Journal.enabled t.journal) then begin
    let journal =
      Obs.Journal.create
        ~clock:(fun () -> Engine.now t.engine)
        ?format ?max_buffer_bytes ?path ()
    in
    (* The registry may be enabled after the journal: look it up at drop
       time, not at wiring time. *)
    Obs.Journal.set_on_drop journal (fun n ->
        if Obs.Registry.enabled t.registry then
          Obs.Registry.incr t.registry ~by:n "journal.dropped" []);
    t.journal <- journal
  end;
  t.journal

let register_seq t name handler =
  if Hashtbl.mem t.handlers name then
    invalid_arg (Printf.sprintf "Transport.register: duplicate node %s" name);
  Hashtbl.add t.handlers name handler

let register t name handler =
  register_seq t name (fun ~src ~seq:_ msg -> handler ~src msg)

let unregister t name = Hashtbl.remove t.handlers name
let registered t name = Hashtbl.mem t.handlers name
let crash t name = Hashtbl.replace t.crashed name ()
let recover t name = Hashtbl.remove t.crashed name
let crashed t name = Hashtbl.mem t.crashed name

(* Network events double as tracer instants so one exported artifact
   carries both the protocol spans and the wire-level view.  The instant
   lands on [src]'s track with the other endpoint under "peer". *)
let span_net t ~event ~src ~dst label =
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.instant t.tracer ~track:src
      ~attrs:[ ("peer", dst); ("label", label) ]
      event

let send t ~src ~dst msg =
  let label = t.label_of msg in
  Counter.incr t.counters "messages";
  Counter.incr t.counters ("msg:" ^ label);
  if Obs.Registry.enabled t.registry then
    Obs.Registry.incr t.registry "messages_total" [ ("type", label) ];
  Trace.record t.trace ~time:(now t) (Trace.Send { src; dst; label });
  span_net t ~event:"send" ~src ~dst label;
  match Hashtbl.find_opt t.handlers dst with
  | None ->
    Trace.record t.trace ~time:(now t) (Trace.Drop { src; dst; label });
    span_net t ~event:"drop" ~src ~dst label
  | Some _ -> (
    match Network.fate t.network ~src ~dst with
    | `Lost ->
      Trace.record t.trace ~time:(now t) (Trace.Drop { src; dst; label });
      span_net t ~event:"drop" ~src ~dst label
    | `Deliver_each delays ->
      (* Every copy of this logical send shares one wire seq, so receivers
         can recognise duplicates. Handlers are looked up at delivery time:
         a node that re-registered after a restart sees the traffic. *)
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      List.iter
        (fun delay ->
          Engine.schedule t.engine ~delay (fun () ->
              match Hashtbl.find_opt t.handlers dst with
              | Some handler when not (Hashtbl.mem t.crashed dst) ->
                Trace.record t.trace ~time:(now t)
                  (Trace.Recv { src; dst; label });
                span_net t ~event:"recv" ~src:dst ~dst:src label;
                handler ~src ~seq msg
              | _ ->
                Trace.record t.trace ~time:(now t)
                  (Trace.Drop { src; dst; label });
                span_net t ~event:"drop" ~src ~dst label))
        delays)

let at t ~delay f = Engine.schedule t.engine ~delay f

let mark t ~node label =
  Trace.record t.trace ~time:(now t) (Trace.Mark { node; label });
  if Obs.Tracer.enabled t.tracer then
    Obs.Tracer.instant t.tracer ~track:node label

let run ?until ?max_steps t = Engine.run ?until ?max_steps t.engine
