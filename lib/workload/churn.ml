module Transport = Cloudtx_sim.Transport
module Ca = Cloudtx_policy.Ca
module Credential = Cloudtx_policy.Credential
module Cluster = Cloudtx_core.Cluster

let policy_refresh (s : Scenario.t) ~period ~propagation ~count =
  if period <= 0. then invalid_arg "Churn.policy_refresh: period <= 0";
  let transport = Cluster.transport s.Scenario.cluster in
  let lo, hi = propagation in
  for i = 1 to count do
    Transport.at transport ~delay:(period *. float_of_int i) (fun () ->
        ignore
          (Cluster.publish s.Scenario.cluster ~domain:s.Scenario.domain
             ~delay:(if hi > lo then `Uniform (lo, hi) else `Now)
             (Scenario.clerk_rules_refreshed ())))
  done

let tighten_at (s : Scenario.t) ~time ~propagation =
  let transport = Cluster.transport s.Scenario.cluster in
  let lo, hi = propagation in
  Transport.at transport ~delay:time (fun () ->
      ignore
        (Cluster.publish s.Scenario.cluster ~domain:s.Scenario.domain
           ~delay:(if hi > lo then `Uniform (lo, hi) else `Now)
           Scenario.senior_write_rules))

let revoke_at (s : Scenario.t) ~subject ~time =
  let transport = Cluster.transport s.Scenario.cluster in
  let creds = s.Scenario.credentials_of subject in
  Transport.at transport ~delay:time (fun () ->
      List.iter
        (fun (c : Credential.t) ->
          Ca.revoke s.Scenario.ca c.Credential.id ~at:(Transport.now transport))
        creds)
