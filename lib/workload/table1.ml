module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Complexity = Cloudtx_core.Complexity
module Outcome = Cloudtx_core.Outcome
module Manager = Cloudtx_core.Manager
module Cluster = Cloudtx_core.Cluster
module Message = Cloudtx_core.Message
module Counter = Cloudtx_metrics.Counter
module Transport = Cloudtx_sim.Transport

type staleness = Fresh | View_worst | Global_worst

let staleness_name = function
  | Fresh -> "fresh"
  | View_worst -> "view-worst"
  | Global_worst -> "global-worst"

let worst_for scheme (level : Consistency.level) =
  match (scheme, level) with
  | (Scheme.Deferred | Scheme.Punctual), Consistency.View -> View_worst
  | (Scheme.Deferred | Scheme.Punctual), Consistency.Global -> Global_worst
  | (Scheme.Incremental_punctual | Scheme.Continuous), _ -> Fresh

let protocol_messages counters =
  List.fold_left
    (fun acc label -> acc + Counter.get counters ("msg:" ^ label))
    0 Message.protocol_labels

type measurement = { outcome : Outcome.t; messages : int; proofs : int }

let run_case ?(n_servers = 4) ?(queries = 4) scheme level staleness =
  let scenario = Scenario.retail ~n_servers ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  (match staleness with
  | Fresh -> ()
  | View_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun s -> if String.equal s "server-1" then 0. else infinity))
         (Scenario.clerk_rules_refreshed ()))
  | Global_worst ->
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun _ -> infinity))
         (Scenario.clerk_rules_refreshed ())));
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries ()
  in
  let counters = Transport.counters (Cluster.transport cluster) in
  let before = protocol_messages counters in
  let outcome = Manager.run_one cluster (Manager.config scheme level) txn in
  let after = protocol_messages counters in
  {
    outcome;
    messages = after - before;
    proofs = outcome.Outcome.proofs_evaluated;
  }

let matrix_rows ~n ~u =
  List.concat_map
    (fun scheme ->
      List.map
        (fun level ->
          let staleness = worst_for scheme level in
          let m = run_case ~n_servers:n ~queries:u scheme level staleness in
          let r = max 1 m.outcome.Outcome.commit_rounds in
          [
            Scheme.name scheme;
            Consistency.name level;
            staleness_name staleness;
            Complexity.formula scheme level `Messages;
            string_of_int (Complexity.messages scheme level ~n ~u ~r);
            string_of_int m.messages;
            Complexity.formula scheme level `Proofs;
            string_of_int (Complexity.proofs scheme level ~n ~u ~r);
            string_of_int m.proofs;
          ])
        [ Consistency.View; Consistency.Global ])
    Scheme.all
