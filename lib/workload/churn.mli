(** Background processes that perturb policy and credential state — the
    "update interval" axis of the paper's Section VI-B trade-off. *)

(** [policy_refresh scenario ~period ~propagation ~count] schedules
    [count] version bumps of the scenario's domain, one every [period]
    simulated ms starting at [period], each propagating to every server
    with an independent uniform delay drawn from [propagation].  The rule
    set stays semantically identical, so the churn stresses consistency
    machinery without changing authorizations. *)
val policy_refresh :
  Scenario.t -> period:float -> propagation:float * float -> count:int -> unit

(** [tighten_at scenario ~time ~propagation] publishes the senior-only
    write policy at the given instant; clerks' write proofs under the new
    version evaluate FALSE. *)
val tighten_at : Scenario.t -> time:float -> propagation:float * float -> unit

(** [revoke_at scenario ~subject ~time] revokes the subject's role
    credential at the CA, effective [time] (scheduled on the engine so
    the CA's online status flips exactly then). *)
val revoke_at : Scenario.t -> subject:string -> time:float -> unit
