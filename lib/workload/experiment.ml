module Running_stats = Cloudtx_metrics.Running_stats
module Sample_set = Cloudtx_metrics.Sample_set
module Counter = Cloudtx_metrics.Counter
module Transport = Cloudtx_sim.Transport
module Engine = Cloudtx_sim.Engine
module Manager = Cloudtx_core.Manager
module Message = Cloudtx_core.Message
module Outcome = Cloudtx_core.Outcome
module Cluster = Cloudtx_core.Cluster
module Transaction = Cloudtx_txn.Transaction

type stats = {
  outcomes : Outcome.t list;
  committed : int;
  aborted : int;
  latency_ms : Sample_set.t;
  proofs : Running_stats.t;
  protocol_messages : Running_stats.t;
  commit_rounds : Running_stats.t;
  restarts : int;
}

let commit_ratio stats =
  let total = stats.committed + stats.aborted in
  if total = 0 then 0. else float_of_int stats.committed /. float_of_int total

let empty () =
  {
    outcomes = [];
    committed = 0;
    aborted = 0;
    latency_ms = Sample_set.create ();
    proofs = Running_stats.create ();
    protocol_messages = Running_stats.create ();
    commit_rounds = Running_stats.create ();
    restarts = 0;
  }

let protocol_message_total counters =
  List.fold_left
    (fun acc label -> acc + Counter.get counters ("msg:" ^ label))
    0 Message.protocol_labels

let fold_outcome stats ?(messages = -1) (o : Outcome.t) =
  Sample_set.add stats.latency_ms (Outcome.latency o);
  Running_stats.add stats.proofs (float_of_int o.Outcome.proofs_evaluated);
  if messages >= 0 then
    Running_stats.add stats.protocol_messages (float_of_int messages);
  Running_stats.add stats.commit_rounds (float_of_int o.Outcome.commit_rounds);
  {
    stats with
    outcomes = o :: stats.outcomes;
    committed = (stats.committed + if o.Outcome.committed then 1 else 0);
    aborted = (stats.aborted + if o.Outcome.committed then 0 else 1);
  }

let run_sequential (scenario : Scenario.t) config ~n make =
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let engine = Transport.engine transport in
  let counters = Transport.counters transport in
  let stats = ref (empty ()) in
  for i = 0 to n - 1 do
    let txn = make ~i in
    let before = protocol_message_total counters in
    let result = ref None in
    Manager.submit cluster config txn ~on_done:(fun o -> result := Some o);
    (* Step the engine just far enough: background churn interleaves at
       its own instants, later events stay queued for the next txn. *)
    while !result = None && Engine.step engine do
      ()
    done;
    match !result with
    | None ->
      failwith
        (Printf.sprintf "Experiment: %s never completed" txn.Transaction.id)
    | Some o ->
      let after = protocol_message_total counters in
      stats := fold_outcome !stats ~messages:(after - before) o
  done;
  let s = !stats in
  { s with outcomes = List.rev s.outcomes }

let run_open ?(max_restarts = 0) (scenario : Scenario.t) config ~arrivals make =
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let results = ref [] in
  let restarts = ref 0 in
  (* On a wait-die abort, resubmit with a fresh id but the original start
     timestamp (wait-die aging). *)
  let rec submit ~ts ~attempt (txn : Transaction.t) =
    Manager.submit ?ts cluster config txn ~on_done:(fun o ->
        if
          (not o.Cloudtx_core.Outcome.committed)
          && o.Cloudtx_core.Outcome.reason = Cloudtx_core.Outcome.Wait_die
          && attempt < max_restarts
        then begin
          incr restarts;
          let original_ts =
            Option.value ~default:o.Cloudtx_core.Outcome.submitted_at ts
          in
          let retry =
            Transaction.make
              ~id:(Printf.sprintf "%s-r%d" txn.Transaction.id (attempt + 1))
              ~subject:txn.Transaction.subject
              ~credentials:txn.Transaction.credentials txn.Transaction.queries
          in
          Transport.at transport ~delay:(0.5 +. (0.5 *. float_of_int attempt))
            (fun () -> submit ~ts:(Some original_ts) ~attempt:(attempt + 1) retry)
        end
        else results := o :: !results)
  in
  List.iteri
    (fun i at ->
      Transport.at transport ~delay:at (fun () ->
          submit ~ts:None ~attempt:0 (make ~i)))
    arrivals;
  ignore (Cluster.run cluster);
  let outcomes = List.rev !results in
  let stats =
    List.fold_left (fun acc o -> fold_outcome acc o) (empty ()) outcomes
  in
  { stats with outcomes; restarts = !restarts }

let run_closed (scenario : Scenario.t) config ~clients ~total make =
  if clients <= 0 then invalid_arg "Experiment.run_closed: clients <= 0";
  let cluster = scenario.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let results = ref [] in
  let issued = ref 0 in
  let finished_at = ref 0. in
  let rec client_issue () =
    if !issued < total then begin
      let i = !issued in
      incr issued;
      Manager.submit cluster config (make ~i) ~on_done:(fun o ->
          results := o :: !results;
          finished_at := Transport.now transport;
          client_issue ())
    end
  in
  let started_at = Transport.now transport in
  for c = 0 to Stdlib.min clients total - 1 do
    (* Stagger the first submissions a hair so client c's first query does
       not collide with identical timestamps. *)
    Transport.at transport ~delay:(0.01 *. float_of_int c) client_issue
  done;
  ignore (Cluster.run cluster);
  let outcomes = List.rev !results in
  let stats =
    List.fold_left (fun acc o -> fold_outcome acc o) (empty ()) outcomes
  in
  let span = !finished_at -. started_at in
  let throughput = if span <= 0. then 0. else float_of_int total /. span *. 1000. in
  ({ stats with outcomes }, throughput)
