(** Anti-entropy gossip between policy replicas.

    The paper assumes policies replicate "very much like data" under
    eventual consistency.  {!Cluster.publish} models a master that pushes
    updates with per-server delays; this module adds the complementary
    mechanism real systems use to converge: servers periodically push
    their policies to a random peer, so an update that reached one server
    eventually reaches all, even servers the master's push missed.

    Gossip messages are [Propagate_policy] and thus excluded from the
    protocol-message metric, like the master's own pushes. *)

(** [start scenario ~period ~rounds] schedules [rounds] gossip exchanges,
    one every [period] simulated ms starting at [period]: each exchange
    picks a random ordered server pair (a, b) and pushes every policy
    currently held by [a] to [b] (monotone install at [b]). *)
val start : Scenario.t -> period:float -> rounds:int -> unit

(** [converged scenario ~domain] — do all servers hold the same version of
    the domain's policy? *)
val converged : Scenario.t -> domain:string -> bool

(** [versions scenario ~domain] — the per-server versions, for
    inspection. *)
val versions : Scenario.t -> domain:string -> (string * int option) list
