module Cluster = Cloudtx_core.Cluster
module Rule = Cloudtx_policy.Rule
module Ca = Cloudtx_policy.Ca
module Credential = Cloudtx_policy.Credential
module Transaction = Cloudtx_txn.Transaction
module Query = Cloudtx_txn.Query
module Value = Cloudtx_store.Value
module Integrity = Cloudtx_store.Integrity

type t = {
  cluster : Cluster.t;
  domain : string;
  subjects : string list;
  credentials_of : string -> Credential.t list;
  servers : string list;
  keys_of : string -> string list;
  ca : Ca.t;
}

let permit_head = Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ]

(* Request facts (req_action, req_item) bind the head's action and item
   variables; see {!Cloudtx_policy.Proof.evaluate}. *)
let request_atoms = [ Rule.atom "req_action" [ Rule.v "a" ]; Rule.atom "req_item" [ Rule.v "i" ] ]

let clerk_rules =
  [
    Rule.rule permit_head
      (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ] :: request_atoms);
  ]

let refresh_counter = ref 0

let clerk_rules_refreshed () =
  (* A second, redundant derivation path: semantically the same grants,
     but a textually fresh rule set for the version bump. The marker
     predicate changes each call so repeated refreshes stay distinct. *)
  incr refresh_counter;
  let marker = Printf.sprintf "rev%d" !refresh_counter in
  [
    Rule.rule permit_head
      (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ] :: request_atoms);
    Rule.rule
      (Rule.atom "revision" [ Rule.c marker; Rule.v "s" ])
      [ Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ] ];
  ]

let suspend_rules ~subject =
  [
    Rule.rule_literals permit_head
      (Rule.Pos (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ])
       :: Rule.Neg (Rule.atom "suspended" [ Rule.v "s" ])
       :: List.map (fun a -> Rule.Pos a) request_atoms);
    Rule.rule (Rule.fact "suspended" [ subject ]) [];
  ]

let senior_write_rules =
  [
    Rule.rule
      (Rule.atom "permit" [ Rule.v "s"; Rule.c "read"; Rule.v "i" ])
      (Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ]
      :: [ Rule.atom "req_item" [ Rule.v "i" ] ]);
    Rule.rule
      (Rule.atom "permit" [ Rule.v "s"; Rule.c "write"; Rule.v "i" ])
      (Rule.atom "role" [ Rule.v "s"; Rule.c "senior" ]
      :: [ Rule.atom "req_item" [ Rule.v "i" ] ]);
  ]

let server_name i = Printf.sprintf "server-%d" (i + 1)
let key_name si ki = Printf.sprintf "s%d-k%d" (si + 1) (ki + 1)

let retail ?(seed = 7L) ?(latency = Cloudtx_sim.Latency.lan) ?ocsp_latency
    ?proof_cache ?variant ?dedup ?inquiry_timeout ?(n_servers = 4)
    ?(items_per_server = 8) ?(n_subjects = 4) () =
  let domain = "retail" in
  let ca = Ca.create "corp-ca" in
  let keys si = List.init items_per_server (fun ki -> key_name si ki) in
  let specs =
    List.init n_servers (fun si ->
        let items = List.map (fun k -> (k, Value.Int 100)) (keys si) in
        let constraints = List.map Integrity.non_negative (keys si) in
        Cluster.server_spec ~name:(server_name si) ~constraints ~items ())
  in
  let cluster =
    Cluster.create ~seed ~latency ?ocsp_latency ?proof_cache ?variant ?dedup
      ?inquiry_timeout ~cas:[ ca ] ~servers:specs
      ~domains:[ (domain, clerk_rules) ]
      ()
  in
  let subjects = List.init n_subjects (fun i -> Printf.sprintf "clerk-%d" (i + 1)) in
  let year = 365. *. 24. *. 3600. *. 1000. in
  let creds =
    List.map
      (fun subject ->
        let cred =
          Ca.issue ca ~id:(subject ^ "-role") ~subject
            ~facts:[ Rule.fact "role" [ subject; "clerk" ] ]
            ~now:0. ~ttl:year
        in
        (subject, [ cred ]))
      subjects
  in
  let servers = List.init n_servers server_name in
  let keys_of name =
    let rec index i = function
      | [] -> invalid_arg (Printf.sprintf "Scenario.keys_of: unknown server %s" name)
      | s :: rest -> if String.equal s name then i else index (i + 1) rest
    in
    keys (index 0 servers)
  in
  {
    cluster;
    domain;
    subjects;
    credentials_of =
      (fun subject ->
        match List.assoc_opt subject creds with
        | Some cs -> cs
        | None -> invalid_arg (Printf.sprintf "Scenario: unknown subject %s" subject));
    servers;
    keys_of;
    ca;
  }

let spread_transaction t ~id ~subject ~queries ?(start = 0) ?(writes = true) () =
  if queries <= 0 then invalid_arg "Scenario.spread_transaction: queries <= 0";
  let n = List.length t.servers in
  let qs =
    List.init queries (fun i ->
        let server = List.nth t.servers ((start + i) mod n) in
        match t.keys_of server with
        | k1 :: k2 :: _ ->
          let write_list =
            if writes then [ (k2, Value.Set (Value.Int (90 - i))) ] else []
          in
          Query.make
            ~id:(Printf.sprintf "%s-q%d" id (i + 1))
            ~server ~reads:[ k1 ] ~writes:write_list ()
        | _ -> invalid_arg "Scenario.spread_transaction: server too small")
  in
  Transaction.make ~id ~subject ~credentials:(t.credentials_of subject) qs
