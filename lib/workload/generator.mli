(** Random transaction generation over a {!Scenario}. *)

module Splitmix = Cloudtx_sim.Splitmix
module Transaction = Cloudtx_txn.Transaction

type params = {
  queries_per_txn : int;
  write_ratio : float;  (** Probability a query writes (0..1). *)
  zipf_s : float;  (** Key skew within a server; 0 = uniform. *)
  spread : [ `Round_robin | `Random ];
      (** Server choice per query: rotate (maximizing participants) or
          draw uniformly. *)
}

val default : params

(** [generate scenario rng params ~id] draws the subject, the servers and
    the keys. Written values stay nonnegative so integrity votes are YES
    unless the harness makes them fail deliberately. *)
val generate : Scenario.t -> Splitmix.t -> params -> id:string -> Transaction.t

(** [arrival_times rng ~rate ~horizon] — Poisson process arrival instants
    in [0, horizon), one per event, ascending. [rate] is arrivals per
    millisecond. *)
val arrival_times : Splitmix.t -> rate:float -> horizon:float -> float list
