(** Zipf-distributed index sampler, for skewed data access.

    Cloud workloads concentrate traffic on hot items; the contention
    experiments draw keys from Zipf(s) over [0, n). *)

type t

(** [create ~n ~s] prepares the cumulative distribution over [n] ranks
    with exponent [s >= 0] ([s = 0] is uniform). Raises [Invalid_argument]
    for [n <= 0] or negative [s]. *)
val create : n:int -> s:float -> t

(** [sample t rng] draws a rank in [0, n). *)
val sample : t -> Cloudtx_sim.Splitmix.t -> int
