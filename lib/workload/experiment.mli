(** Measurement harness: run transactions over a scenario and aggregate
    the metrics the paper's evaluation reports. *)

module Running_stats = Cloudtx_metrics.Running_stats
module Sample_set = Cloudtx_metrics.Sample_set
module Manager = Cloudtx_core.Manager
module Outcome = Cloudtx_core.Outcome
module Transaction = Cloudtx_txn.Transaction

type stats = {
  outcomes : Outcome.t list;  (** In completion order, final attempts only. *)
  committed : int;
  aborted : int;
  latency_ms : Sample_set.t;
  proofs : Running_stats.t;
  protocol_messages : Running_stats.t;
      (** Per transaction, summed over {!Cloudtx_core.Message.protocol_labels}
          (only meaningful for sequential runs). *)
  commit_rounds : Running_stats.t;
  restarts : int;  (** Wait-die victims resubmitted (open runs only). *)
}

val commit_ratio : stats -> float

(** [run_sequential scenario config ~n make] runs [n] transactions one at
    a time: transaction [i] (from [make ~i]) is submitted, the engine is
    stepped until its outcome lands, then the next is submitted.
    Background churn events interleave at their scheduled instants.
    Per-transaction protocol-message counts come from counter deltas. *)
val run_sequential :
  Scenario.t -> Manager.config -> n:int -> (i:int -> Transaction.t) -> stats

(** [run_open scenario config ~arrivals make] submits transaction [i] at
    [List.nth arrivals i] (simulated ms from now) and runs to quiescence —
    a concurrent open-loop run where lock contention and wait-die are
    live. Per-transaction message counts are not attributed.

    [max_restarts] (default 0) resubmits each wait-die victim up to that
    many times with a fresh transaction id but its {e original} start
    timestamp, after a short backoff: the classic wait-die aging rule, so
    a victim grows relatively older and eventually wins its locks.  Only
    the final attempt's outcome enters the statistics; [restarts] counts
    resubmissions. *)
val run_open :
  ?max_restarts:int ->
  Scenario.t ->
  Manager.config ->
  arrivals:float list ->
  (i:int -> Transaction.t) ->
  stats

(** [run_closed scenario config ~clients ~total make] — closed-loop run:
    [clients] logical clients each keep one transaction in flight,
    submitting the next as soon as the previous completes, until [total]
    transactions have finished.  Wait-die victims count as completions
    (no restart).  Returns the stats and the throughput in transactions
    per simulated second. *)
val run_closed :
  Scenario.t ->
  Manager.config ->
  clients:int ->
  total:int ->
  (i:int -> Transaction.t) ->
  stats * float
