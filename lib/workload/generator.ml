module Splitmix = Cloudtx_sim.Splitmix
module Transaction = Cloudtx_txn.Transaction
module Query = Cloudtx_txn.Query
module Value = Cloudtx_store.Value

type params = {
  queries_per_txn : int;
  write_ratio : float;
  zipf_s : float;
  spread : [ `Round_robin | `Random ];
}

let default =
  { queries_per_txn = 4; write_ratio = 0.5; zipf_s = 0.; spread = `Round_robin }

let generate (scenario : Scenario.t) rng params ~id =
  if params.queries_per_txn <= 0 then
    invalid_arg "Generator.generate: queries_per_txn <= 0";
  let subjects = Array.of_list scenario.Scenario.subjects in
  let servers = Array.of_list scenario.Scenario.servers in
  let subject = Splitmix.choice rng subjects in
  let start = Splitmix.int rng (Array.length servers) in
  let zipfs =
    Array.map
      (fun s ->
        let keys = Array.of_list (scenario.Scenario.keys_of s) in
        (keys, Zipf.create ~n:(Array.length keys) ~s:params.zipf_s))
      servers
  in
  let queries =
    List.init params.queries_per_txn (fun i ->
        let si =
          match params.spread with
          | `Round_robin -> (start + i) mod Array.length servers
          | `Random -> Splitmix.int rng (Array.length servers)
        in
        let keys, zipf = zipfs.(si) in
        let key () = keys.(Zipf.sample zipf rng) in
        let is_write = Splitmix.bool rng ~p:params.write_ratio in
        let qid = Printf.sprintf "%s-q%d" id (i + 1) in
        if is_write then
          Query.make ~id:qid ~server:servers.(si)
            ~writes:[ (key (), Value.Set (Value.Int (Splitmix.int rng 100))) ]
            ()
        else Query.make ~id:qid ~server:servers.(si) ~reads:[ key () ] ())
  in
  Transaction.make ~id ~subject
    ~credentials:(scenario.Scenario.credentials_of subject)
    queries

let arrival_times rng ~rate ~horizon =
  if rate <= 0. then invalid_arg "Generator.arrival_times: rate <= 0";
  let rec go t acc =
    let t = t +. Splitmix.exponential rng ~mean:(1. /. rate) in
    if t >= horizon then List.rev acc else go t (t :: acc)
  in
  go 0. []
