(** Table I reproduction: engineered worst cases and measured counts.

    One place for the logic shared by the bench harness, the CLI and the
    integration tests: build a retail deployment, inject the staleness
    pattern that drives a scheme x consistency-level cell to its worst
    case, run one transaction, and report measured protocol messages and
    proof evaluations next to the paper's closed forms. *)

module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Outcome = Cloudtx_core.Outcome

type staleness =
  | Fresh  (** No churn: single-round validation (r = 1). *)
  | View_worst
      (** One participant fresh, the rest a version behind: forces the
          view-consistency extra round (r = 2). *)
  | Global_worst
      (** Master ahead of every participant: forces r = 2 with all n
          participants updated. *)

val staleness_name : staleness -> string

(** The staleness pattern that exercises a cell's Table I worst case.
    Incremental and Continuous are priced by the paper for the
    consistency-maintained regime, i.e. [Fresh]. *)
val worst_for : Scheme.t -> Consistency.level -> staleness

type measurement = {
  outcome : Outcome.t;
  messages : int;  (** Protocol messages (paper accounting). *)
  proofs : int;
}

(** [run_case scheme level staleness] builds a fresh deployment with
    [n_servers] (default 4) servers, runs one [queries]-query (default 4)
    spread transaction and measures it. *)
val run_case :
  ?n_servers:int ->
  ?queries:int ->
  Scheme.t ->
  Consistency.level ->
  staleness ->
  measurement

(** Pre-formatted rows for the full 8-cell matrix, as printed by the
    bench: scheme, level, staleness, message formula, analytic, measured,
    proof formula, analytic, measured. *)
val matrix_rows : n:int -> u:int -> string list list

(** Sum of the protocol-message counters (paper accounting: excludes
    master-version requests, query shipping and policy propagation). *)
val protocol_messages : Cloudtx_metrics.Counter.t -> int
