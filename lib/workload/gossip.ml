module Transport = Cloudtx_sim.Transport
module Splitmix = Cloudtx_sim.Splitmix
module Cluster = Cloudtx_core.Cluster
module Participant = Cloudtx_core.Participant
module Message = Cloudtx_core.Message
module Server = Cloudtx_store.Server
module Replica = Cloudtx_policy.Replica

let start (s : Scenario.t) ~period ~rounds =
  if period <= 0. then invalid_arg "Gossip.start: period <= 0";
  let cluster = s.Scenario.cluster in
  let transport = Cluster.transport cluster in
  let rng = Transport.fork_rng transport in
  let servers = Array.of_list s.Scenario.servers in
  if Array.length servers < 2 then invalid_arg "Gossip.start: need two servers";
  for i = 1 to rounds do
    Transport.at transport ~delay:(period *. float_of_int i) (fun () ->
        let a = Splitmix.int rng (Array.length servers) in
        let b =
          (* A distinct peer. *)
          let shift = 1 + Splitmix.int rng (Array.length servers - 1) in
          (a + shift) mod Array.length servers
        in
        let src = servers.(a) and dst = servers.(b) in
        let replica = Server.replica (Participant.server (Cluster.participant cluster src)) in
        List.iter
          (fun domain ->
            match Replica.get replica ~domain with
            | Some policy ->
              Transport.send transport ~src ~dst (Message.Propagate_policy { policy })
            | None -> ())
          (Replica.domains replica))
  done

let versions (s : Scenario.t) ~domain =
  List.map
    (fun name ->
      let replica =
        Server.replica (Participant.server (Cluster.participant s.Scenario.cluster name))
      in
      (name, Replica.version replica ~domain))
    s.Scenario.servers

let converged s ~domain =
  match versions s ~domain with
  | [] -> true
  | (_, first) :: rest -> List.for_all (fun (_, v) -> v = first) rest
