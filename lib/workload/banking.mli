(** Banking scenario: account partitions, funds transfers and
    owner/teller authorization.

    A second full deployment (next to {!Scenario.retail}) exercising the
    parts of the system the retail scenario does not:

    - integrity constraints that actually fail under load (overdrafts
      violate per-account non-negativity, so integrity votes say NO);
    - per-branch funds conservation for intra-branch transfers
      ({!Cloudtx_store.Integrity.sum_preserved});
    - richer policies: customers may move their own money
      ([owns(S, A)] joined against the touched account), tellers may move
      anyone's, and auditors may only read;
    - transactions whose read/write sets depend on data semantics
      (debit + credit pairs) rather than uniform random keys. *)

module Cluster = Cloudtx_core.Cluster
module Transaction = Cloudtx_txn.Transaction
module Splitmix = Cloudtx_sim.Splitmix

type t = {
  cluster : Cluster.t;
  domain : string;
  branches : string list;  (** Server names, ["branch-1"] ... *)
  accounts_of : string -> string list;  (** Accounts per branch. *)
  customers : string list;  (** ["cust-1"] ...; cust-i owns acct-i-*. *)
  tellers : string list;
  auditors : string list;
  credentials_of : string -> Cloudtx_policy.Credential.t list;
  owner_of : string -> string;  (** Account to owning customer. *)
  ca : Cloudtx_policy.Ca.t;
}

(** [build ()] creates [n_branches] branch servers, each hosting
    [accounts_per_branch] accounts with [opening_balance] (default 100).
    Customer [i] owns account [j] of branch [b] when [j mod n_customers =
    i]; every branch enforces per-account non-negativity and whole-branch
    conservation is checked by {!conserved}. *)
val build :
  ?seed:int64 ->
  ?latency:Cloudtx_sim.Latency.t ->
  ?n_branches:int ->
  ?accounts_per_branch:int ->
  ?n_customers:int ->
  ?n_tellers:int ->
  ?opening_balance:int ->
  unit ->
  t

(** [transfer t ~id ~by ~from_acct ~to_acct ~amount] — a two-query
    transaction: debit then credit (single query when both accounts share
    a branch). The issuing subject's credentials ride along. *)
val transfer :
  t ->
  id:string ->
  by:string ->
  from_acct:string ->
  to_acct:string ->
  amount:int ->
  Transaction.t

(** [audit t ~id ~by ~branch] — read-only sweep of a branch's accounts. *)
val audit : t -> id:string -> by:string -> branch:string -> Transaction.t

(** [random_transfer t rng ~id ~overdraft_ratio] draws a customer, one of
    their accounts as source, any account as sink, and an amount —
    deliberately exceeding the opening balance with probability
    [overdraft_ratio] so integrity NO-votes occur. *)
val random_transfer :
  t -> Splitmix.t -> id:string -> overdraft_ratio:float -> Transaction.t

(** Total funds across all branches (conservation check: commits must
    never change it, because every debit has a matching credit). *)
val total_funds : t -> int

(** Balance of one account. *)
val balance : t -> string -> int option
