(** Canonical simulated deployments used by the examples, tests and
    benches.

    The [retail] scenario models the paper's motivating company: several
    regional databases under one administrative domain, clerks whose
    credentials are issued by a corporate CA, and a policy that grants
    access to role-holding employees.  Policy versions can be bumped
    without changing semantics (pure staleness, the common case the
    paper's protocols must tolerate cheaply) or tightened so that stale
    replicas make genuinely unsafe decisions. *)

module Cluster = Cloudtx_core.Cluster
module Rule = Cloudtx_policy.Rule
module Credential = Cloudtx_policy.Credential
module Transaction = Cloudtx_txn.Transaction

type t = {
  cluster : Cluster.t;
  domain : string;
  subjects : string list;
  credentials_of : string -> Credential.t list;
  servers : string list;
  keys_of : string -> string list;  (** Items hosted per server. *)
  ca : Cloudtx_policy.Ca.t;
}

(** The version-1 rule set: [permit(S, A, I) :- role(S, clerk)] for both
    actions. *)
val clerk_rules : Rule.t list

(** Semantically identical rules whose publication still bumps the
    version — pure staleness churn. *)
val clerk_rules_refreshed : unit -> Rule.t list

(** Tightened rules: writes now require [role(S, senior)]. Clerks' write
    proofs evaluate FALSE under this version. *)
val senior_write_rules : Rule.t list

(** Clerk rules extended with a suspension exception
    ([not suspended(S)], stratified negation) naming [subject]: that
    clerk's proofs evaluate FALSE under the new version, everyone else is
    unaffected. *)
val suspend_rules : subject:string -> Rule.t list

(** [retail ()] builds the deployment.

    - [n_servers] data servers named ["server-1"..], each hosting
      [items_per_server] integer items ["s<i>-k<j>"] initialised to 100,
      guarded by non-negativity constraints.
    - [n_subjects] clerks ["clerk-1"..] with 1-year role credentials.
    - single domain ["retail"].
    - [variant]/[dedup]/[inquiry_timeout] are forwarded to
      {!Cluster.create} (decision-logging discipline, idempotent
      delivery, termination-protocol timer). *)
val retail :
  ?seed:int64 ->
  ?latency:Cloudtx_sim.Latency.t ->
  ?ocsp_latency:Cloudtx_sim.Latency.t ->
  ?proof_cache:bool ->
  ?variant:Cloudtx_txn.Tpc.variant ->
  ?dedup:bool ->
  ?inquiry_timeout:float ->
  ?n_servers:int ->
  ?items_per_server:int ->
  ?n_subjects:int ->
  unit ->
  t

(** A transaction whose [i]th query touches server [(start + i) mod
    n_servers] — the worst-case shape for Table I where every query lands
    on a distinct participant (when [queries <= n_servers]). Reads one key
    and optionally debits another on the same server. *)
val spread_transaction :
  t ->
  id:string ->
  subject:string ->
  queries:int ->
  ?start:int ->
  ?writes:bool ->
  unit ->
  Transaction.t
