module Cluster = Cloudtx_core.Cluster
module Participant = Cloudtx_core.Participant
module Transaction = Cloudtx_txn.Transaction
module Query = Cloudtx_txn.Query
module Splitmix = Cloudtx_sim.Splitmix
module Value = Cloudtx_store.Value
module Integrity = Cloudtx_store.Integrity
module Server = Cloudtx_store.Server
module Rule = Cloudtx_policy.Rule
module Datalog = Cloudtx_policy.Datalog
module Ca = Cloudtx_policy.Ca
module Credential = Cloudtx_policy.Credential

type t = {
  cluster : Cluster.t;
  domain : string;
  branches : string list;
  accounts_of : string -> string list;
  customers : string list;
  tellers : string list;
  auditors : string list;
  credentials_of : string -> Credential.t list;
  owner_of : string -> string;
  ca : Ca.t;
}

(* Customers move their own funds and may deposit into any account;
   tellers move anyone's; auditors read only.  Authored in the concrete
   policy syntax (which also exercises the Datalog parser on the main
   code path). *)
let bank_rules =
  let program =
    {|% the bank's access policy
      permit(S, A, I) :- role(S, customer), owns(S, I),
                         req_action(A), req_item(I).
      permit(S, deposit, I) :- role(S, customer), req_item(I).
      permit(S, A, I) :- role(S, teller), req_action(A), req_item(I).
      permit(S, read, I) :- role(S, auditor), req_item(I).|}
  in
  match Datalog.parse_program program with
  | Ok rules -> rules
  | Error m -> invalid_arg ("Banking.bank_rules: " ^ m)

let branch_name b = Printf.sprintf "branch-%d" (b + 1)
let account_name b j = Printf.sprintf "acct-%d-%d" (b + 1) (j + 1)

let build ?(seed = 19L) ?(latency = Cloudtx_sim.Latency.lan) ?(n_branches = 3)
    ?(accounts_per_branch = 6) ?(n_customers = 3) ?(n_tellers = 1)
    ?(opening_balance = 100) () =
  let domain = "bank" in
  let ca = Ca.create "bank-ca" in
  let accounts b = List.init accounts_per_branch (account_name b) in
  let specs =
    List.init n_branches (fun b ->
        let items =
          List.map (fun a -> (a, Value.Int opening_balance)) (accounts b)
        in
        let constraints = List.map Integrity.non_negative (accounts b) in
        Cluster.server_spec ~name:(branch_name b) ~constraints ~items ())
  in
  let cluster =
    Cluster.create ~seed ~latency ~cas:[ ca ] ~servers:specs
      ~domains:[ (domain, bank_rules) ]
      ()
  in
  let customers = List.init n_customers (fun i -> Printf.sprintf "cust-%d" (i + 1)) in
  let tellers = List.init n_tellers (fun i -> Printf.sprintf "teller-%d" (i + 1)) in
  let auditors = [ "auditor-1" ] in
  let owner_of account =
    (* acct-<b>-<j> belongs to cust-((j-1) mod n_customers + 1). *)
    match String.split_on_char '-' account with
    | [ "acct"; _; j ] ->
      Printf.sprintf "cust-%d" (((int_of_string j - 1) mod n_customers) + 1)
    | _ -> invalid_arg (Printf.sprintf "Banking.owner_of: bad account %s" account)
  in
  let year = 1e12 in
  let issue subject facts =
    Ca.issue ca ~id:(subject ^ "-cred") ~subject ~facts ~now:0. ~ttl:year
  in
  let all_accounts =
    List.concat (List.init n_branches (fun b -> accounts b))
  in
  let creds = Hashtbl.create 8 in
  List.iter
    (fun subject ->
      let owned =
        List.filter (fun a -> String.equal (owner_of a) subject) all_accounts
      in
      let facts =
        Rule.fact "role" [ subject; "customer" ]
        :: List.map (fun a -> Rule.fact "owns" [ subject; a ]) owned
      in
      Hashtbl.replace creds subject [ issue subject facts ])
    customers;
  List.iter
    (fun subject ->
      Hashtbl.replace creds subject
        [ issue subject [ Rule.fact "role" [ subject; "teller" ] ] ])
    tellers;
  List.iter
    (fun subject ->
      Hashtbl.replace creds subject
        [ issue subject [ Rule.fact "role" [ subject; "auditor" ] ] ])
    auditors;
  {
    cluster;
    domain;
    branches = List.init n_branches branch_name;
    accounts_of =
      (fun branch ->
        match String.split_on_char '-' branch with
        | [ "branch"; b ] -> accounts (int_of_string b - 1)
        | _ -> invalid_arg (Printf.sprintf "Banking: unknown branch %s" branch));
    customers;
    tellers;
    auditors;
    credentials_of =
      (fun subject ->
        match Hashtbl.find_opt creds subject with
        | Some cs -> cs
        | None -> invalid_arg (Printf.sprintf "Banking: unknown subject %s" subject));
    owner_of;
    ca;
  }

let branch_of_account account =
  match String.split_on_char '-' account with
  | [ "acct"; b; _ ] -> Printf.sprintf "branch-%s" b
  | _ -> invalid_arg (Printf.sprintf "Banking: bad account %s" account)

let transfer t ~id ~by ~from_acct ~to_acct ~amount =
  if amount <= 0 then invalid_arg "Banking.transfer: amount must be positive";
  let from_branch = branch_of_account from_acct in
  let to_branch = branch_of_account to_acct in
  (* Debit (requires authority over the source account) and credit
     (authorized as a deposit), possibly at the same branch. *)
  let queries =
    [
      Query.make ~id:(id ^ "-q1") ~server:from_branch ~reads:[ from_acct ]
        ~writes:[ (from_acct, Value.Add (-amount)) ]
        ();
      Query.make ~id:(id ^ "-q2") ~server:to_branch
        ~writes:[ (to_acct, Value.Add amount) ]
        ~action:"deposit" ();
    ]
  in
  Transaction.make ~id ~subject:by ~credentials:(t.credentials_of by) queries

let audit t ~id ~by ~branch =
  Transaction.make ~id ~subject:by ~credentials:(t.credentials_of by)
    [ Query.make ~id:(id ^ "-q1") ~server:branch ~reads:(t.accounts_of branch) () ]

let random_transfer t rng ~id ~overdraft_ratio =
  let customers = Array.of_list t.customers in
  let by = Splitmix.choice rng customers in
  let all_accounts = List.concat_map t.accounts_of t.branches in
  let owned =
    Array.of_list
      (List.filter (fun a -> String.equal (t.owner_of a) by) all_accounts)
  in
  let from_acct = Splitmix.choice rng owned in
  let to_acct = Splitmix.choice rng (Array.of_list all_accounts) in
  let to_acct =
    if String.equal to_acct from_acct then List.hd all_accounts else to_acct
  in
  let amount =
    if Splitmix.bool rng ~p:overdraft_ratio then 10_000
    else 1 + Splitmix.int rng 40
  in
  transfer t ~id ~by ~from_acct ~to_acct ~amount

let balance t account =
  let branch = branch_of_account account in
  let server = Participant.server (Cluster.participant t.cluster branch) in
  Option.bind (Server.get server account) Value.as_int

let total_funds t =
  List.fold_left
    (fun acc branch ->
      let server = Participant.server (Cluster.participant t.cluster branch) in
      List.fold_left
        (fun acc account ->
          match Option.bind (Server.get server account) Value.as_int with
          | Some n -> acc + n
          | None -> acc)
        acc (t.accounts_of branch))
    0 t.branches
