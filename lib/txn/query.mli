(** A single query q_i of a transaction.

    Per the paper's model, each query executes on one server and touches a
    set of data items m(q_i); the authorization request it induces is
    [(subject, action, m(q_i))]. *)

type t = {
  id : string;
  server : string;  (** s_i: the server this query executes on. *)
  reads : string list;
  writes : (string * Cloudtx_store.Value.update) list;
  action_override : string option;
      (** Application-level action name for authorization (e.g.
          ["deposit"]); defaults to read/write classification. *)
}

val make :
  id:string ->
  server:string ->
  ?reads:string list ->
  ?writes:(string * Cloudtx_store.Value.update) list ->
  ?action:string ->
  unit ->
  t

(** m(q): every data item the query touches (reads and write keys),
    deduplicated, sorted.  A key appearing in both [reads] and [writes]
    (a read-modify-write) counts once, so Table I item counts and
    read/write-set extraction agree. *)
val touches : t -> string list

(** Alias for {!touches} (historical name). *)
val items : t -> string list

(** The distinct keys the query reads, sorted. *)
val read_set : t -> string list

(** The distinct keys the query writes, sorted. *)
val write_set : t -> string list

(** The action named in the query's proof of authorization: the override
    if given, else ["write"] when the query writes anything and ["read"]
    otherwise. *)
val action : t -> string

val pp : Format.formatter -> t -> unit
