type t = {
  id : string;
  server : string;
  reads : string list;
  writes : (string * Cloudtx_store.Value.update) list;
  action_override : string option;
}

let make ~id ~server ?(reads = []) ?(writes = []) ?action () =
  { id; server; reads; writes; action_override = action }

let touches t =
  List.sort_uniq String.compare (t.reads @ List.map fst t.writes)

let items = touches
let read_set t = List.sort_uniq String.compare t.reads
let write_set t = List.sort_uniq String.compare (List.map fst t.writes)

let action t =
  match t.action_override with
  | Some a -> a
  | None -> if t.writes = [] then "read" else "write"

let pp ppf t =
  Format.fprintf ppf "%s@%s reads=[%s] writes=[%s]" t.id t.server
    (String.concat "," t.reads)
    (String.concat "," (List.map fst t.writes))
