type variant = Basic | Presumed_abort | Presumed_commit

let variant_name = function
  | Basic -> "basic"
  | Presumed_abort -> "presumed-abort"
  | Presumed_commit -> "presumed-commit"

type msg = Vote_request | Vote of bool | Decision of bool | Ack

let msg_label = function
  | Vote_request -> "vote-request"
  | Vote yes -> if yes then "vote-yes" else "vote-no"
  | Decision commit -> if commit then "decision-commit" else "decision-abort"
  | Ack -> "ack"

type action =
  | Send of { dst : [ `Coordinator | `Node of string ]; msg : msg }
  | Force_log of string
  | Write_log of string
  | Apply of bool
  | Outcome of bool
  | Done

let action_label = function
  | Send { msg; _ } -> "send:" ^ msg_label msg
  | Force_log tag -> "force_log:" ^ tag
  | Write_log tag -> "write_log:" ^ tag
  | Apply commit -> if commit then "apply:commit" else "apply:abort"
  | Outcome commit -> if commit then "outcome:commit" else "outcome:abort"
  | Done -> "done"

(* ------------------------------------------------------------------ *)
(* Coordinator                                                         *)
(* ------------------------------------------------------------------ *)

type cstate = C_init | C_voting | C_acking | C_done

type coordinator = {
  txn : string;
  participants : string list;
  variant : variant;
  mutable cstate : cstate;
  votes : (string, bool) Hashtbl.t;
  acks : (string, unit) Hashtbl.t;
  mutable decision : bool option;
}

let coordinator ~txn ~participants variant =
  if participants = [] then invalid_arg "Tpc.coordinator: no participants";
  {
    txn;
    participants;
    variant;
    cstate = C_init;
    votes = Hashtbl.create 8;
    acks = Hashtbl.create 8;
    decision = None;
  }

let broadcast c msg =
  List.map (fun p -> Send { dst = `Node p; msg }) c.participants

let coord_start c =
  if c.cstate <> C_init then invalid_arg "Tpc.coord_start: already started";
  c.cstate <- C_voting;
  let prelude =
    match c.variant with
    | Presumed_commit -> [ Force_log "collecting" ]
    | Basic | Presumed_abort -> []
  in
  prelude @ broadcast c Vote_request

(* Forced/non-forced decision logging and ack expectations per variant. *)
let decision_log variant commit =
  match (variant, commit) with
  | Basic, _ -> Force_log (if commit then "commit" else "abort")
  | Presumed_abort, true -> Force_log "commit"
  | Presumed_abort, false -> Write_log "abort"
  | Presumed_commit, true -> Write_log "commit"
  | Presumed_commit, false -> Force_log "abort"

let acks_expected variant commit =
  match (variant, commit) with
  | Basic, _ -> true
  | Presumed_abort, commit -> commit
  | Presumed_commit, commit -> not commit

let decide c commit =
  c.decision <- Some commit;
  let log = decision_log c.variant commit in
  let sends = broadcast c (Decision commit) in
  if acks_expected c.variant commit then begin
    c.cstate <- C_acking;
    (log :: sends) @ [ Outcome commit ]
  end
  else begin
    c.cstate <- C_done;
    (log :: sends) @ [ Outcome commit; Done ]
  end

let coord_on_vote c ~from ~yes =
  if c.cstate <> C_voting then
    invalid_arg "Tpc.coord_on_vote: not collecting votes";
  if not (List.mem from c.participants) then
    invalid_arg (Printf.sprintf "Tpc.coord_on_vote: unknown participant %s" from);
  if Hashtbl.mem c.votes from then
    invalid_arg (Printf.sprintf "Tpc.coord_on_vote: duplicate vote from %s" from);
  Hashtbl.replace c.votes from yes;
  if Hashtbl.length c.votes = List.length c.participants then begin
    let all_yes =
      List.for_all (fun p -> Hashtbl.find c.votes p) c.participants
    in
    decide c all_yes
  end
  else []

let coord_on_ack c ~from =
  if c.cstate <> C_acking then invalid_arg "Tpc.coord_on_ack: not expecting acks";
  if not (List.mem from c.participants) then
    invalid_arg (Printf.sprintf "Tpc.coord_on_ack: unknown participant %s" from);
  Hashtbl.replace c.acks from ();
  if Hashtbl.length c.acks = List.length c.participants then begin
    c.cstate <- C_done;
    [ Write_log "end"; Done ]
  end
  else []

let coord_outcome c = c.decision

let coord_presumption = function
  | Basic | Presumed_abort -> `Abort
  | Presumed_commit -> `Commit_if_collecting

(* ------------------------------------------------------------------ *)
(* Participant                                                         *)
(* ------------------------------------------------------------------ *)

type pstate = P_init | P_prepared | P_done

type participant = {
  p_txn : string;
  p_name : string;
  p_variant : variant;
  mutable pstate : pstate;
}

let participant ~txn ~name variant =
  { p_txn = txn; p_name = name; p_variant = variant; pstate = P_init }

let part_on_vote_request p ~vote =
  if p.pstate <> P_init then
    invalid_arg "Tpc.part_on_vote_request: already voted";
  if vote then begin
    p.pstate <- P_prepared;
    [ Force_log "prepared"; Send { dst = `Coordinator; msg = Vote true } ]
  end
  else begin
    (* Unilateral abort: a NO voter needs no decision message. *)
    p.pstate <- P_done;
    let log =
      match p.p_variant with
      | Presumed_abort -> []
      | Basic | Presumed_commit -> [ Write_log "abort" ]
    in
    log @ [ Send { dst = `Coordinator; msg = Vote false }; Apply false; Done ]
  end

let part_on_decision p ~commit =
  match p.pstate with
  | P_done -> [] (* duplicate decision after a NO vote or retransmission *)
  | P_init -> invalid_arg "Tpc.part_on_decision: decision before vote"
  | P_prepared ->
    p.pstate <- P_done;
    let log =
      match (p.p_variant, commit) with
      | Basic, _ -> Force_log (if commit then "commit" else "abort")
      | Presumed_abort, true -> Force_log "commit"
      | Presumed_abort, false -> Write_log "abort"
      | Presumed_commit, true -> Write_log "commit"
      | Presumed_commit, false -> Force_log "abort"
    in
    let ack =
      if acks_expected p.p_variant commit then
        [ Send { dst = `Coordinator; msg = Ack } ]
      else []
    in
    (log :: Apply commit :: ack) @ [ Done ]

let part_presumption _variant ~prepared = if prepared then `Ask else `Abort
