type t = {
  id : string;
  subject : string;
  queries : Query.t list;
  credentials : Cloudtx_policy.Credential.t list;
}

let make ~id ~subject ?(credentials = []) queries =
  { id; subject; queries; credentials }

let participants t =
  List.fold_left
    (fun acc (q : Query.t) ->
      if List.mem q.Query.server acc then acc else q.Query.server :: acc)
    [] t.queries
  |> List.rev

let query_count t = List.length t.queries

let pp ppf t =
  Format.fprintf ppf "@[<v2>transaction %s (subject %s):@ %a@]" t.id t.subject
    (Format.pp_print_list Query.pp)
    t.queries
