type stats = {
  outcome : bool;
  messages : int;
  coordinator_forced : int;
  participants_forced : int;
  coordinator_log : string list;
  participant_logs : (string * string list) list;
  applied : (string * bool) list;
}

module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry

let run ?obs variant ~votes =
  if votes = [] then invalid_arg "Tpc_run.run: no participants";
  let tracer, registry =
    match obs with
    | None -> (Tracer.noop, Registry.noop)
    | Some (tracer, registry) -> (tracer, registry)
  in
  let root =
    if Tracer.enabled tracer then begin
      let span = Tracer.start tracer ~track:"tpc" "2pc" in
      Tracer.set_attr tracer span "variant" (Tpc.variant_name variant);
      span
    end
    else Tracer.no_span
  in
  let observe_action origin action =
    if Tracer.enabled tracer then begin
      let track =
        match origin with `Coordinator -> "coordinator" | `Node n -> n
      in
      Tracer.instant tracer ~parent:root ~track (Tpc.action_label action)
    end;
    if Registry.enabled registry then
      Registry.incr registry "tpc_actions_total"
        [
          ("variant", Tpc.variant_name variant);
          ("action", Tpc.action_label action);
        ]
  in
  let names = List.map fst votes in
  let coord = Tpc.coordinator ~txn:"t1" ~participants:names variant in
  let parts =
    List.map (fun n -> (n, Tpc.participant ~txn:"t1" ~name:n variant)) names
  in
  let messages = ref 0 in
  let coord_forced = ref 0 and parts_forced = ref 0 in
  let coord_log = ref [] in
  let part_logs = Hashtbl.create 8 in
  let applied = ref [] in
  let outcome = ref None in
  (* FIFO of (origin, action) pairs keeps causal order deterministic. *)
  let queue = Queue.create () in
  let push origin actions =
    List.iter (fun a -> Queue.add (origin, a) queue) actions
  in
  push `Coordinator (Tpc.coord_start coord);
  while not (Queue.is_empty queue) do
    let origin, action = Queue.take queue in
    observe_action origin action;
    match action with
    | Tpc.Send { dst; msg } -> (
      incr messages;
      match (dst, msg) with
      | `Node n, Tpc.Vote_request ->
        let p = List.assoc n parts in
        push (`Node n) (Tpc.part_on_vote_request p ~vote:(List.assoc n votes))
      | `Node n, Tpc.Decision commit ->
        let p = List.assoc n parts in
        push (`Node n) (Tpc.part_on_decision p ~commit)
      | `Coordinator, Tpc.Vote yes ->
        let from = match origin with `Node n -> n | `Coordinator -> assert false in
        push `Coordinator (Tpc.coord_on_vote coord ~from ~yes)
      | `Coordinator, Tpc.Ack ->
        let from = match origin with `Node n -> n | `Coordinator -> assert false in
        push `Coordinator (Tpc.coord_on_ack coord ~from)
      | `Node _, (Tpc.Vote _ | Tpc.Ack) | `Coordinator, (Tpc.Vote_request | Tpc.Decision _)
        ->
        assert false)
    | Tpc.Force_log tag -> (
      match origin with
      | `Coordinator ->
        incr coord_forced;
        coord_log := tag :: !coord_log
      | `Node n ->
        incr parts_forced;
        Hashtbl.replace part_logs n
          (tag :: Option.value ~default:[] (Hashtbl.find_opt part_logs n)))
    | Tpc.Write_log tag -> (
      match origin with
      | `Coordinator -> coord_log := tag :: !coord_log
      | `Node n ->
        Hashtbl.replace part_logs n
          (tag :: Option.value ~default:[] (Hashtbl.find_opt part_logs n)))
    | Tpc.Apply commit -> (
      match origin with
      | `Node n -> applied := (n, commit) :: !applied
      | `Coordinator -> assert false)
    | Tpc.Outcome decision -> outcome := Some decision
    | Tpc.Done -> ()
  done;
  let outcome =
    match !outcome with Some o -> o | None -> failwith "2PC did not decide"
  in
  if Tracer.enabled tracer then
    Tracer.finish tracer
      ~attrs:[ ("outcome", if outcome then "commit" else "abort") ]
      root;
  {
    outcome;
    messages = !messages;
    coordinator_forced = !coord_forced;
    participants_forced = !parts_forced;
    coordinator_log = List.rev !coord_log;
    participant_logs =
      List.map
        (fun n ->
          (n, List.rev (Option.value ~default:[] (Hashtbl.find_opt part_logs n))))
        names;
    applied = List.rev !applied;
  }
