(** Two-Phase Commit — the paper's baseline atomic commit protocol
    (Figure 7), as pure coordinator/participant state machines.

    The machines emit {!action} lists instead of doing I/O, so the
    simulator interprets them over a lossy network while the unit tests
    drive them with hand-crafted message sequences.  Log records are
    tagged forced/non-forced so the paper's log-complexity metric (2n+1
    forced writes for basic 2PC) is measurable directly.

    {2 Variants}

    - {b Basic}: participant forces a [prepared] record before voting YES
      and a [decision] record before acking; coordinator forces its
      decision record and writes a non-forced [end] record after all acks.
    - {b Presumed abort} (PrA): no information means abort — the
      coordinator does not force abort decisions and participants neither
      force abort records nor ack aborts.
    - {b Presumed commit} (PrC): the coordinator forces a [collecting]
      record naming the participants before voting; commit decisions are
      then not forced and participants do not ack commits; aborts behave
      like basic.

    Per the paper (Section V, Recovery), these optimizations apply
    unchanged to 2PVC because its logging is also strictly before/after
    the voting phase. *)

type variant = Basic | Presumed_abort | Presumed_commit

val variant_name : variant -> string

(** Wire messages. [Vote_request] is the "Prepare" of Figure 7. *)
type msg =
  | Vote_request
  | Vote of bool  (** YES / NO. *)
  | Decision of bool  (** commit / abort. *)
  | Ack

val msg_label : msg -> string

(** What a machine wants done. [dst] is a node name; the coordinator
    addresses participants and vice versa ([`Coordinator]). *)
type action =
  | Send of { dst : [ `Coordinator | `Node of string ]; msg : msg }
  | Force_log of string  (** Synchronous log write with this tag. *)
  | Write_log of string  (** Non-forced log write. *)
  | Apply of bool  (** Participant: commit (true) / abort the workspace. *)
  | Outcome of bool  (** Coordinator: global decision reached. *)
  | Done  (** Machine finished; resources releasable. *)

(** Stable label for traces and counters, e.g. ["send:vote-request"]. *)
val action_label : action -> string

(** {1 Coordinator} *)

type coordinator

val coordinator :
  txn:string -> participants:string list -> variant -> coordinator

(** Kick off the voting phase. *)
val coord_start : coordinator -> action list

(** A vote arrived. Votes from unknown or duplicate senders raise
    [Invalid_argument]. *)
val coord_on_vote : coordinator -> from:string -> yes:bool -> action list

val coord_on_ack : coordinator -> from:string -> action list

(** The decision, once reached. *)
val coord_outcome : coordinator -> bool option

(** What a recovering coordinator with no decision record concludes. *)
val coord_presumption : variant -> [ `Abort | `Commit_if_collecting ]

(** {1 Participant} *)

type participant

val participant : txn:string -> name:string -> variant -> participant

(** [part_on_vote_request p ~vote] — the local vote is supplied by the
    caller (integrity check result). *)
val part_on_vote_request : participant -> vote:bool -> action list

val part_on_decision : participant -> commit:bool -> action list

(** What a recovering participant concludes for an in-doubt (prepared,
    no decision) transaction: ask the coordinator. With no prepared
    record: presume per variant. *)
val part_presumption : variant -> prepared:bool -> [ `Ask | `Abort ]
