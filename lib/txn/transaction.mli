(** A transaction T = q_1, q_2, ..., q_n submitted on behalf of a subject.

    Queries execute sequentially (the paper's simplifying assumption); the
    credentials attached at submission are the set C presented with every
    proof of authorization. *)

type t = {
  id : string;
  subject : string;
  queries : Query.t list;
  credentials : Cloudtx_policy.Credential.t list;
}

val make :
  id:string ->
  subject:string ->
  ?credentials:Cloudtx_policy.Credential.t list ->
  Query.t list ->
  t

(** Distinct servers involved, in first-use order — the 2PC/2PVC
    participant set (the paper's [n]). *)
val participants : t -> string list

(** Number of queries (the paper's [u]). *)
val query_count : t -> int

val pp : Format.formatter -> t -> unit
