(** Synchronous, network-free executor for the {!Tpc} state machines.

    Delivers every emitted message immediately, in order.  Used by unit
    tests and by the complexity benches to count messages and forced log
    writes without simulator noise. *)

type stats = {
  outcome : bool;  (** Global decision. *)
  messages : int;  (** Total protocol messages exchanged. *)
  coordinator_forced : int;
  participants_forced : int;
  coordinator_log : string list;  (** Tags, in write order. *)
  participant_logs : (string * string list) list;
  applied : (string * bool) list;
      (** What each participant applied (commit/abort). *)
}

(** [run variant ~votes] plays one complete instance where participant [p]
    votes [List.assoc p votes]. Raises [Invalid_argument] on an empty vote
    list.

    [obs] (off by default) mirrors every interpreted action into a tracer
    (instants under one ["2pc"] root span, one track per node) and a
    registry ([tpc_actions_total] by variant and action). *)
val run :
  ?obs:Cloudtx_obs.Tracer.t * Cloudtx_obs.Registry.t ->
  Tpc.variant ->
  votes:(string * bool) list ->
  stats
