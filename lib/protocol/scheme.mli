(** The four proof-of-authorization enforcement approaches (Section IV).

    Ordered from most permissive to least permissive:

    - {b Deferred} (Definition 5): no proofs during execution; everything
      is validated at commit by 2PVC.
    - {b Punctual} (Definition 6): each query's proof is evaluated locally
      when the query executes (early aborts on FALSE), and everything is
      re-validated at commit by 2PVC.
    - {b Incremental punctual} (Definition 8): per-query proofs plus a
      per-query policy-version consistency check by the TM; commit needs no
      validation (2PVC degenerates to 2PC).
    - {b Continuous} (Definition 9): at every query, 2PV re-evaluates all
      previous proofs; stale participants are updated rather than aborted.
      Commit needs no validation under view consistency; global
      consistency re-validates at commit. *)

type t = Deferred | Punctual | Incremental_punctual | Continuous

(** In permissiveness order (most permissive first). *)
val all : t list

val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

(** Does the executing server evaluate a proof when the query runs?
    (Continuous is false here: its per-query proofs — including the
    current query's — are evaluated by the 2PV it runs after each query,
    which is what makes its proof complexity u(u+1)/2.) *)
val proofs_during_execution : t -> bool

(** Does the TM enforce per-query version-consistency checks? *)
val per_query_version_check : t -> bool

(** Does the scheme run 2PV over prior participants at each query? *)
val per_query_validation : t -> bool

(** Must 2PVC re-validate proofs at commit (Section V-C)? False means the
    commit round is plain 2PC. *)
val validates_at_commit : t -> Consistency.level -> bool
