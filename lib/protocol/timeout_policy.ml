(* Pluggable timeout discipline for the TM machine.  [Fixed] preserves
   the original constant-timeout semantics bit-for-bit; [Adaptive] derives
   watchdog delays from per-peer RTT estimates (Obs.Sketch quantiles over
   journaled [Rtt_sample] inputs), applies exponential backoff with
   deterministic seeded jitter across strikes, and converts exhausted
   budgets into clean aborts instead of unbounded retry loops.  Every
   quantity that influences a delay is either journaled (RTT samples) or
   a pure function of machine state and the policy's seed, so the audit
   replay reproduces Arm_watchdog/Arm_retry delays byte-exactly. *)

type adaptive = {
  seed : int64;
  rtt_multiplier : float;
  min_timeout : float;
  backoff_factor : float;
  backoff_max : float;
  jitter : float;
  vote_budget : int;
  retry_budget : int;
}

type t = Fixed | Adaptive of adaptive

let adaptive ?(seed = 1L) ?(rtt_multiplier = 3.) ?(min_timeout = 5.)
    ?(backoff_factor = 2.) ?(backoff_max = 240.) ?(jitter = 0.2)
    ?(vote_budget = 4) ?(retry_budget = 6) () =
  if rtt_multiplier <= 0. then
    invalid_arg "Timeout_policy.adaptive: rtt_multiplier must be positive";
  if min_timeout <= 0. then
    invalid_arg "Timeout_policy.adaptive: min_timeout must be positive";
  if backoff_factor < 1. then
    invalid_arg "Timeout_policy.adaptive: backoff_factor must be >= 1";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Timeout_policy.adaptive: jitter must be in [0, 1)";
  if vote_budget < 1 then
    invalid_arg "Timeout_policy.adaptive: vote_budget must be >= 1";
  if retry_budget < 0 then
    invalid_arg "Timeout_policy.adaptive: retry_budget must be >= 0";
  Adaptive
    {
      seed;
      rtt_multiplier;
      min_timeout;
      backoff_factor;
      backoff_max;
      jitter;
      vote_budget;
      retry_budget;
    }

let name = function Fixed -> "fixed" | Adaptive _ -> "adaptive"

(* ------------------------------------------------------------------ *)
(* Deterministic jitter                                                 *)
(* ------------------------------------------------------------------ *)

(* Splitmix64 finalizer: a strong 64-bit mixer, inlined here because the
   protocol library must not depend on the simulator's RNG. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* FNV-1a over the machine name, so two TMs with the same policy seed
   still draw independent jitter streams. *)
let hash_name s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* Uniform draw in [0, 1) from (seed, salt): golden-gamma salting keeps
   nearby salts decorrelated. *)
let uniform ~seed ~salt =
  let h = mix64 (Int64.add seed (Int64.mul 0x9e3779b97f4a7c15L salt)) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

(* [delay a ~base ~name_hash ~epoch ~strikes] — the armed delay after
   [strikes] consecutive timer expiries of the wait that started at timer
   [epoch]: exponential backoff capped at [backoff_max], then a
   multiplicative jitter of at most +/- jitter/2 drawn deterministically
   from (seed, name, epoch, strikes). *)
let delay a ~base ~name_hash ~epoch ~strikes =
  let backed =
    Float.min a.backoff_max (base *. (a.backoff_factor ** float_of_int strikes))
  in
  if a.jitter = 0. then backed
  else begin
    let salt =
      Int64.add name_hash
        (Int64.of_int ((epoch * 8191) + (strikes * 131) + 7))
    in
    let u = uniform ~seed:a.seed ~salt in
    backed *. (1. +. (a.jitter *. (u -. 0.5)))
  end
