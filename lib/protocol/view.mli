(** Transaction views (Definition 1) and view instances (Definition 7).

    A view V^T collects every proof of authorization evaluated during a
    transaction's lifetime, in evaluation order.  When a proof for the same
    query is re-evaluated (commit-time revalidation, 2PV update rounds),
    both evaluations are recorded; [current] projects the latest proof per
    query — the set the consistency predicates apply to.

    Each entry carries the {e instant} t_i it belongs to: the paper's
    Definitions 8 and 9 quantify over the instants at which proofs are
    evaluated, and all (re-)evaluations of one 2PV invocation belong to the
    same instant even though the simulator timestamps them microseconds
    apart.  The TM tags entries with the query index (or the commit point),
    and {!Trusted} checks consistency per instant. *)

type t

val create : txn:string -> t
val txn : t -> string

(** [add t ~instant proof] appends an evaluation belonging to instant
    [instant] (chronological insertion order assumed). *)
val add : t -> instant:int -> Cloudtx_policy.Proof.t -> unit

(** Every evaluation ever recorded, oldest first. *)
val all : t -> Cloudtx_policy.Proof.t list

(** Definition 7 by time: evaluations with [evaluated_at <= at]. *)
val instance : t -> at:float -> Cloudtx_policy.Proof.t list

(** Distinct instants recorded, ascending. *)
val instants : t -> int list

(** [instance_at t ~instant] — the latest evaluation per query among
    entries tagged with an instant <= [instant] (ties broken by insertion
    order): the view instance V^T_{t_i}. *)
val instance_at : t -> instant:int -> Cloudtx_policy.Proof.t list

(** Latest evaluation per query id, in first-evaluation order. *)
val current : t -> Cloudtx_policy.Proof.t list

(** Number of evaluations recorded (the proof-complexity metric). *)
val evaluations : t -> int

(** Do all current proofs hold (truth values TRUE)? *)
val all_true : t -> bool
