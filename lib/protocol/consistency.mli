(** Policy consistency levels (Definitions 2 and 3).

    - {b View consistency} (φ): all proofs in a transaction's view that
      belong to the same administrative domain used the same policy
      version — the participants agree among themselves, possibly on a
      stale version.
    - {b Global consistency} (ψ): every proof used the latest version the
      domain's master knows — agreement with the authority, not just among
      participants. *)

type level = View | Global

val name : level -> string
val of_string : string -> level option
val pp : Format.formatter -> level -> unit

(** [phi_consistent proofs] — Definition 2 over the per-domain versions
    recorded in the proofs. Vacuously true for the empty view. *)
val phi_consistent : Cloudtx_policy.Proof.t list -> bool

(** [psi_consistent ~latest proofs] — Definition 3; [latest] is the master
    authority's version for a domain ([None] makes the domain's proofs
    inconsistent, as the authority must know every live domain). *)
val psi_consistent :
  latest:(string -> Cloudtx_policy.Policy.version option) ->
  Cloudtx_policy.Proof.t list ->
  bool

(** [consistent level ~latest proofs] dispatches on the level; [latest] is
    ignored for [View]. *)
val consistent :
  level ->
  latest:(string -> Cloudtx_policy.Policy.version option) ->
  Cloudtx_policy.Proof.t list ->
  bool
