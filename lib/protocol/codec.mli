(** Canonical, versioned JSON codec for the sans-IO protocol vocabulary.

    Every {!Tm_machine} / {!Ps_machine} input and emitted action — and
    everything they carry (messages, queries, transactions, proofs,
    policies, credentials, lock releases) — has an exact JSON encoding
    here, so a protocol run can be journaled as text and replayed
    byte-for-byte (the flight recorder, {!Cloudtx_core.Audit}).

    Canonical means: encoders fix the field order, rendering
    ({!Cloudtx_policy.Json.to_string}) is deterministic and
    whitespace-free, and [decode ∘ encode = id] over every constructor
    (asserted exhaustively in [test/test_protocol_codec.ml]).  Comparing
    two values therefore reduces to comparing their rendered strings.

    Decoders validate structurally and return [Error reason] on anything
    malformed; they never raise. *)

module Json = Cloudtx_policy.Json

(** Journal/codec format version; bump on any encoding change. *)
val version : int

(** Canonical rendering of an encoded value. *)
val to_string : Json.t -> string

(** {1 Carried data} *)

val value_to_json : Cloudtx_store.Value.t -> Json.t
val value_of_json : Json.t -> (Cloudtx_store.Value.t, string) result
val query_to_json : Cloudtx_txn.Query.t -> Json.t
val query_of_json : Json.t -> (Cloudtx_txn.Query.t, string) result
val transaction_to_json : Cloudtx_txn.Transaction.t -> Json.t
val transaction_of_json : Json.t -> (Cloudtx_txn.Transaction.t, string) result
val proof_to_json : Cloudtx_policy.Proof.t -> Json.t
val proof_of_json : Json.t -> (Cloudtx_policy.Proof.t, string) result

(** {1 Wire messages} *)

val message_to_json : Message.t -> Json.t
val message_of_json : Json.t -> (Message.t, string) result

(** {1 Machine configuration} *)

val config_to_json : Tm_machine.config -> Json.t
val config_of_json : Json.t -> (Tm_machine.config, string) result

(** The [timeout_policy] config field is encoded only when non-[Fixed]
    (and decoding defaults its absence to [Fixed]), so journals recorded
    under the [Fixed] policy are byte-identical to pre-v4 journals. *)

val timeout_policy_to_json : Timeout_policy.t -> Json.t
val timeout_policy_of_json : Json.t -> (Timeout_policy.t, string) result
val variant_to_json : Cloudtx_txn.Tpc.variant -> Json.t
val variant_of_json : Json.t -> (Cloudtx_txn.Tpc.variant, string) result

(** {1 Machine inputs and actions} *)

val tm_input_to_json : Tm_machine.input -> Json.t
val tm_input_of_json : Json.t -> (Tm_machine.input, string) result
val tm_action_to_json : Tm_machine.action -> Json.t
val tm_action_of_json : Json.t -> (Tm_machine.action, string) result
val ps_input_to_json : Ps_machine.input -> Json.t
val ps_input_of_json : Json.t -> (Ps_machine.input, string) result
val ps_action_to_json : Ps_machine.action -> Json.t
val ps_action_of_json : Json.t -> (Ps_machine.action, string) result

(** [ps_action_to_json_at ~version a] renders [a] as journal format
    [version] encoded it (version 2 lacked the [Apply] committed write
    versions), so the replay auditor can byte-compare replayed actions
    against journals recorded by older codecs.  For [version >= 3] this
    is {!ps_action_to_json}. *)
val ps_action_to_json_at : version:int -> Ps_machine.action -> Json.t
