(** Pure round logic shared by 2PV (Algorithm 1) and 2PVC (Algorithm 2).

    The TM-side bookkeeping of the collection/validation phases: gather one
    reply per expected participant, find the largest version of every
    unique policy (consulting the master's versions under global
    consistency), and either decide or name the out-of-date participants
    that must be sent Update messages and re-polled.

    The protocol driver ({!Manager}) owns the messaging; this module owns
    the decisions, so every branch of Algorithms 1 and 2 is unit-testable
    without a network. *)

module Policy = Cloudtx_policy.Policy
module Proof = Cloudtx_policy.Proof

type t

(** [create ~participants ~with_integrity ()] starts round 1 expecting a
    reply from every participant.  [with_integrity] selects 2PVC behaviour
    (honour YES/NO votes); 2PV passes false.  [reconcile] (default true)
    enables the version-reconciliation loop; a 2PVC running without
    validation (Section V-C: "acts like 2PC") passes false so that version
    skew between participants never triggers Update rounds. *)
val create :
  ?reconcile:bool -> participants:string list -> with_integrity:bool -> unit -> t

(** Current round number, starting at 1. *)
val round : t -> int

(** Participants whose reply the current round still awaits. *)
val awaiting : t -> string list

(** [add_master t policies] records the master's latest policies (bodies
    included); used as the version target under global consistency. *)
val add_master : t -> Policy.t list -> unit

(** [add_reply t ~from ~integrity ~proofs ~policies] records a reply.
    Replies from unexpected senders raise [Invalid_argument].  Returns
    [`Wait] until the round is complete. *)
val add_reply :
  t ->
  from:string ->
  integrity:bool ->
  proofs:Proof.t list ->
  policies:Policy.t list ->
  [ `Wait | `Round_complete ]

type resolution =
  | Abort_integrity  (** Some participant voted NO (2PVC step 3). *)
  | Abort_proof  (** Versions consistent but some proof FALSE. *)
  | All_consistent_true  (** COMMIT / CONTINUE. *)
  | Need_update of (string * Policy.t list) list
      (** Out-of-date participants and the fresh policies to send them.
          Calling this advances to the next round, expecting replies from
          exactly these participants. *)

(** [resolve t] applies steps 3-14 of Algorithm 2 (or 2-11 of
    Algorithm 1). Raises [Invalid_argument] while replies are missing. *)
val resolve : t -> resolution

(** Latest policies seen so far (per domain), for inspection. *)
val freshest : t -> Policy.t list

(** Stable label for traces and metrics, e.g. ["need_update"]. *)
val resolution_name : resolution -> string
