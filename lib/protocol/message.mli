(** Wire protocol between transaction managers, data servers and the
    master policy server.

    Message labels drive the message-complexity accounting: Table I counts
    commit/validation-protocol traffic, so the benches sum the labels
    {!protocol_labels} and treat [Execute]/[Execute_reply] (query
    shipping), [Propagate_policy] (background anti-entropy) and
    [Master_version_request] (the paper counts only the retrieval, i.e.
    the response) as outside the protocol cost. *)

module Query = Cloudtx_txn.Query
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Credential = Cloudtx_policy.Credential
module Value = Cloudtx_store.Value

type exec_outcome =
  | Executed of {
      reads : (string * Value.t option) list;
      proof : Proof.t option;  (** Present for punctual-style schemes. *)
    }
  | Exec_die  (** Wait-die victim: transaction must roll back. *)

type t =
  | Execute of {
      txn : string;
      ts : float;  (** Transaction start timestamp, for wait-die. *)
      query : Query.t;
      subject : string;
      credentials : Credential.t list;
      evaluate_proof : bool;
      snapshot : bool;
          (** Serve a read-only query from the committed state as of [ts],
              without taking locks (MVCC snapshot read). *)
    }
  | Execute_reply of { txn : string; query_id : string; outcome : exec_outcome }
  | Validate_request of { txn : string; round : int }
      (** 2PV "Prepare-to-Validate". *)
  | Validate_reply of {
      txn : string;
      round : int;
      proofs : Proof.t list;  (** This round's evaluations at the sender. *)
      policies : Policy.t list;  (** Policy copies used (version + body). *)
    }
  | Commit_request of {
      txn : string;
      round : int;
      validate : bool;
      allow_read_only : bool;
          (** Offer the read-only fast path (only meaningful when
              [validate = false]; a validating 2PVC may need to re-poll
              the participant in update rounds). *)
      expected : int;
          (** Queries the TM sent to this participant: a participant whose
              workspace holds fewer (it crashed mid-transaction and lost
              the rest) must vote NO rather than prepare a partial write
              set. *)
    }
      (** 2PVC "Prepare-to-Commit"; [validate = false] degenerates to
          plain 2PC preparation. *)
  | Commit_reply of {
      txn : string;
      round : int;
      integrity : bool;  (** The YES/NO 2PC vote. *)
      read_only : bool;
          (** The participant buffered no writes, voted READ, released its
              locks and will skip the decision phase. *)
      proofs : Proof.t list;
      policies : Policy.t list;
    }
  | Policy_update of {
      txn : string;
      round : int;  (** The round whose reply this update solicits. *)
      policies : Policy.t list;  (** Fresh bodies to install. *)
      reply_with : [ `Validate | `Commit ];
    }
  | Decision of { txn : string; commit : bool }
  | Decision_ack of { txn : string }
  | Master_version_request of { txn : string }
  | Master_version_reply of { txn : string; policies : Policy.t list }
      (** Latest policy of every domain, bodies included. *)
  | Propagate_policy of { policy : Policy.t }
      (** Admin-to-replica eventual-consistency update. *)
  | Inquiry of { txn : string }
      (** Recovering participant asks the TM how an in-doubt transaction
          was decided (2PC termination protocol). *)

(** Stable label for traces and counters. *)
val label : t -> string

(** Labels whose counts make up the paper's message-complexity metric. *)
val protocol_labels : string list

val txn_of : t -> string option
