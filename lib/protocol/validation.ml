module Policy = Cloudtx_policy.Policy
module Proof = Cloudtx_policy.Proof

type reply = {
  integrity : bool;
  proofs : Proof.t list;
  policies : Policy.t list;
}

type t = {
  participants : string list;
  with_integrity : bool;
  reconcile : bool;
  mutable round : int;
  mutable expected : string list;
  mutable received : string list; (* this round *)
  replies : (string, reply) Hashtbl.t; (* latest per participant *)
  best : (string, Policy.t) Hashtbl.t; (* freshest body per domain *)
}

let create ?(reconcile = true) ~participants ~with_integrity () =
  if participants = [] then invalid_arg "Validation.create: no participants";
  {
    participants;
    with_integrity;
    reconcile;
    round = 1;
    expected = participants;
    received = [];
    replies = Hashtbl.create 8;
    best = Hashtbl.create 4;
  }

let round t = t.round

let awaiting t =
  List.filter (fun p -> not (List.mem p t.received)) t.expected

let note_policy t (p : Policy.t) =
  match Hashtbl.find_opt t.best p.Policy.domain with
  | Some held when held.Policy.version >= p.Policy.version -> ()
  | Some _ | None -> Hashtbl.replace t.best p.Policy.domain p

let add_master t policies = List.iter (note_policy t) policies

let add_reply t ~from ~integrity ~proofs ~policies =
  if not (List.mem from t.expected) then
    invalid_arg
      (Printf.sprintf "Validation.add_reply: unexpected reply from %s" from);
  if List.mem from t.received then
    invalid_arg
      (Printf.sprintf "Validation.add_reply: duplicate reply from %s" from);
  t.received <- from :: t.received;
  (* Integrity votes are sticky: a participant that voted NO in round 1
     stays NO even if later rounds only re-validate proofs. *)
  let integrity =
    match Hashtbl.find_opt t.replies from with
    | Some prev -> prev.integrity && integrity
    | None -> integrity
  in
  Hashtbl.replace t.replies from { integrity; proofs; policies };
  List.iter (note_policy t) policies;
  if awaiting t = [] then `Round_complete else `Wait

type resolution =
  | Abort_integrity
  | Abort_proof
  | All_consistent_true
  | Need_update of (string * Policy.t list) list

let resolve t =
  (match awaiting t with
  | [] -> ()
  | missing ->
    invalid_arg
      (Printf.sprintf "Validation.resolve: still awaiting %s"
         (String.concat ", " missing)));
  let all_replies =
    List.filter_map (fun p -> Hashtbl.find_opt t.replies p) t.participants
  in
  if t.with_integrity && List.exists (fun r -> not r.integrity) all_replies
  then Abort_integrity
  else begin
    (* Who used an out-of-date version of any policy they reported? *)
    let stale_policies_of r =
      List.filter_map
        (fun (p : Policy.t) ->
          match Hashtbl.find_opt t.best p.Policy.domain with
          | Some freshest when freshest.Policy.version > p.Policy.version ->
            Some freshest
          | Some _ | None -> None)
        r.policies
    in
    let stale =
      if not t.reconcile then []
      else
        List.filter_map
          (fun name ->
            match Hashtbl.find_opt t.replies name with
            | None -> None
            | Some r -> (
              match stale_policies_of r with
              | [] -> None
              | fresh -> Some (name, fresh)))
          t.participants
    in
    match stale with
    | [] ->
      let all_true =
        List.for_all
          (fun r -> List.for_all (fun (p : Proof.t) -> p.Proof.result) r.proofs)
          all_replies
      in
      if all_true then All_consistent_true else Abort_proof
    | _ :: _ ->
      t.round <- t.round + 1;
      t.expected <- List.map fst stale;
      t.received <- [];
      Need_update stale
  end

let freshest t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.best []
  |> List.sort (fun (a : Policy.t) b -> String.compare a.Policy.domain b.Policy.domain)

let resolution_name = function
  | Abort_integrity -> "abort_integrity"
  | Abort_proof -> "abort_proof"
  | All_consistent_true -> "all_consistent_true"
  | Need_update _ -> "need_update"
