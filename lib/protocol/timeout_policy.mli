(** Pluggable timeout discipline for the TM machine.

    [Fixed] preserves the original semantics bit-for-bit: the watchdog
    always arms with [config.vote_timeout], a single expiry aborts with
    [Timed_out], and decision retransmission re-arms forever with
    [config.decision_retry].

    [Adaptive] replaces the constants with per-peer RTT estimation
    (Obs.Sketch quantiles over journaled [Rtt_sample] inputs),
    exponential backoff with deterministic seeded jitter across
    consecutive expiries ("strikes"), and capped budgets: [vote_budget]
    watchdog strikes convert into a clean [Budget_exhausted] abort, and
    decision retransmission stops re-arming after [retry_budget]
    retries (participants' Inquiry timers pull the decision from then
    on, so termination is preserved without an unbounded [Arm_retry]
    loop).

    Determinism: every delay is a pure function of the policy's [seed],
    the machine's name, the timer epoch, the strike count, and the RTT
    samples the driver journaled — so an audit replay reproduces
    [Arm_watchdog]/[Arm_retry] delays byte-exactly. *)

type adaptive = {
  seed : int64;  (** Jitter stream seed; part of the journaled config. *)
  rtt_multiplier : float;
      (** Watchdog base = [rtt_multiplier] x the slowest peer's p99 RTT. *)
  min_timeout : float;  (** Floor for the watchdog base delay (ms). *)
  backoff_factor : float;  (** Per-strike delay multiplier (>= 1). *)
  backoff_max : float;  (** Cap on any armed delay (ms). *)
  jitter : float;
      (** Multiplicative jitter amplitude in [0, 1): the armed delay is
          scaled by a deterministic factor in [1 - j/2, 1 + j/2). *)
  vote_budget : int;
      (** Consecutive watchdog strikes before a [Budget_exhausted]
          abort (>= 1). *)
  retry_budget : int;
      (** Decision retransmissions before the retry timer stops
          re-arming (>= 0). *)
}

type t = Fixed | Adaptive of adaptive

(** [adaptive ()] — an [Adaptive] policy with conservative defaults
    (x3 p99, 5 ms floor, doubling backoff capped at 240 ms, 20% jitter,
    4 vote strikes, 6 decision retries).  Raises [Invalid_argument] on
    out-of-range parameters. *)
val adaptive :
  ?seed:int64 ->
  ?rtt_multiplier:float ->
  ?min_timeout:float ->
  ?backoff_factor:float ->
  ?backoff_max:float ->
  ?jitter:float ->
  ?vote_budget:int ->
  ?retry_budget:int ->
  unit ->
  t

val name : t -> string

(** FNV-1a of a machine name — precompute once per machine and pass to
    {!delay}. *)
val hash_name : string -> int64

(** Deterministic uniform draw in [0, 1) from (seed, salt). *)
val uniform : seed:int64 -> salt:int64 -> float

(** [delay a ~base ~name_hash ~epoch ~strikes] — the delay to arm after
    [strikes] consecutive expiries of the wait that started at timer
    [epoch]: [min backoff_max (base * backoff_factor^strikes)] scaled by
    the deterministic jitter factor. *)
val delay :
  adaptive -> base:float -> name_hash:int64 -> epoch:int -> strikes:int -> float
