type t = Deferred | Punctual | Incremental_punctual | Continuous

let all = [ Deferred; Punctual; Incremental_punctual; Continuous ]

let name = function
  | Deferred -> "deferred"
  | Punctual -> "punctual"
  | Incremental_punctual -> "incremental"
  | Continuous -> "continuous"

let of_string = function
  | "deferred" -> Some Deferred
  | "punctual" -> Some Punctual
  | "incremental" | "incremental-punctual" -> Some Incremental_punctual
  | "continuous" -> Some Continuous
  | _ -> None

let pp ppf t = Format.fprintf ppf "%s" (name t)

let proofs_during_execution = function
  | Deferred | Continuous -> false
  | Punctual | Incremental_punctual -> true

let per_query_version_check = function
  | Incremental_punctual -> true
  | Deferred | Punctual | Continuous -> false

let per_query_validation = function
  | Continuous -> true
  | Deferred | Punctual | Incremental_punctual -> false

let validates_at_commit t (level : Consistency.level) =
  match (t, level) with
  | (Deferred | Punctual), _ -> true
  | Incremental_punctual, _ -> false
  | Continuous, Consistency.View -> false
  | Continuous, Consistency.Global -> true
