(* Canonical JSON codec for the sans-IO protocol vocabulary.  Encoders fix
   the field order and tag every variant with a ["t"] discriminator whose
   value matches the protocol's stable labels where one exists; decoders
   validate and never raise.  See codec.mli for the contract. *)

module Json = Cloudtx_policy.Json
module Pcodec = Cloudtx_policy.Codec
module Proof = Cloudtx_policy.Proof
module Credential = Cloudtx_policy.Credential
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Tpc = Cloudtx_txn.Tpc
module Value = Cloudtx_store.Value
module Lock_manager = Cloudtx_store.Lock_manager
open Json

let version = 4
let to_string = Json.to_string
let map_result = Pcodec.map_result

(* Variant tag: every encoded variant is {"t": tag, ...fields}. *)
let tag name fields = Obj (("t", String name) :: fields)

let tag_of j = Result.bind (member "t" j) to_str

let bad what j =
  Error (Printf.sprintf "%s: unexpected %s" what (Json.to_string j))

let opt_field j name decode =
  match member name j with
  | Error _ | Ok Null -> Ok None
  | Ok inner -> Result.map Option.some (decode inner)

let opt_to_json encode = function None -> Null | Some v -> encode v
let str_list_to_json l = List (List.map (fun s -> String s) l)

let str_list_of_json j =
  Result.bind (to_list j) (map_result to_str)

(* ------------------------------------------------------------------ *)
(* Store values and queries                                            *)
(* ------------------------------------------------------------------ *)

let value_to_json = function
  | Value.Int n -> Obj [ ("int", Int n) ]
  | Value.Text s -> Obj [ ("text", String s) ]

let value_of_json j =
  match j with
  | Obj [ ("int", Int n) ] -> Ok (Value.Int n)
  | Obj [ ("text", String s) ] -> Ok (Value.Text s)
  | _ -> bad "value" j

let update_to_json = function
  | Value.Set v -> Obj [ ("set", value_to_json v) ]
  | Value.Add n -> Obj [ ("add", Int n) ]

let update_of_json j =
  match j with
  | Obj [ ("set", v) ] -> Result.map (fun v -> Value.Set v) (value_of_json v)
  | Obj [ ("add", Int n) ] -> Ok (Value.Add n)
  | _ -> bad "update" j

let write_to_json (key, update) =
  Obj [ ("key", String key); ("update", update_to_json update) ]

let write_of_json j =
  let* key = Result.bind (member "key" j) to_str in
  let* update = Result.bind (member "update" j) update_of_json in
  Ok (key, update)

let query_to_json (q : Query.t) =
  Obj
    [
      ("id", String q.Query.id);
      ("server", String q.Query.server);
      ("reads", str_list_to_json q.Query.reads);
      ("writes", List (List.map write_to_json q.Query.writes));
      ("action", opt_to_json (fun s -> String s) q.Query.action_override);
    ]

let query_of_json j =
  let* id = Result.bind (member "id" j) to_str in
  let* server = Result.bind (member "server" j) to_str in
  let* reads = Result.bind (member "reads" j) str_list_of_json in
  let* writes = Result.bind (member "writes" j) to_list in
  let* writes = map_result write_of_json writes in
  let* action = opt_field j "action" to_str in
  Ok (Query.make ~id ~server ~reads ~writes ?action ())

let transaction_to_json (txn : Transaction.t) =
  Obj
    [
      ("id", String txn.Transaction.id);
      ("subject", String txn.Transaction.subject);
      ("queries", List (List.map query_to_json txn.Transaction.queries));
      ( "credentials",
        List (List.map Pcodec.credential_to_json txn.Transaction.credentials) );
    ]

let transaction_of_json j =
  let* id = Result.bind (member "id" j) to_str in
  let* subject = Result.bind (member "subject" j) to_str in
  let* queries = Result.bind (member "queries" j) to_list in
  let* queries = map_result query_of_json queries in
  let* credentials = Result.bind (member "credentials" j) to_list in
  let* credentials = map_result Pcodec.credential_of_json credentials in
  Ok (Transaction.make ~id ~subject ~credentials queries)

(* ------------------------------------------------------------------ *)
(* Proofs                                                              *)
(* ------------------------------------------------------------------ *)

let syntactic_failure_to_string = function
  | Credential.Not_yet_valid -> "not-yet-valid"
  | Credential.Expired -> "expired"
  | Credential.Bad_signature -> "bad-signature"

let syntactic_failure_of_string = function
  | "not-yet-valid" -> Ok Credential.Not_yet_valid
  | "expired" -> Ok Credential.Expired
  | "bad-signature" -> Ok Credential.Bad_signature
  | other -> Error (Printf.sprintf "syntactic failure %S unknown" other)

let failure_to_json = function
  | Proof.Syntactic (id, why) ->
    tag "syntactic"
      [
        ("credential", String id); ("why", String (syntactic_failure_to_string why));
      ]
  | Proof.Revoked id -> tag "revoked" [ ("credential", String id) ]
  | Proof.Untrusted_issuer id -> tag "untrusted-issuer" [ ("credential", String id) ]
  | Proof.Denied item -> tag "denied" [ ("item", String item) ]

let failure_of_json j =
  let* t = tag_of j in
  match t with
  | "syntactic" ->
    let* id = Result.bind (member "credential" j) to_str in
    let* why = Result.bind (member "why" j) to_str in
    let* why = syntactic_failure_of_string why in
    Ok (Proof.Syntactic (id, why))
  | "revoked" ->
    let* id = Result.bind (member "credential" j) to_str in
    Ok (Proof.Revoked id)
  | "untrusted-issuer" ->
    let* id = Result.bind (member "credential" j) to_str in
    Ok (Proof.Untrusted_issuer id)
  | "denied" ->
    let* item = Result.bind (member "item" j) to_str in
    Ok (Proof.Denied item)
  | other -> Error (Printf.sprintf "proof failure %S unknown" other)

let request_to_json (r : Proof.request) =
  Obj
    [
      ("subject", String r.Proof.subject);
      ("action", String r.Proof.action);
      ("items", str_list_to_json r.Proof.items);
    ]

let request_of_json j =
  let* subject = Result.bind (member "subject" j) to_str in
  let* action = Result.bind (member "action" j) to_str in
  let* items = Result.bind (member "items" j) str_list_of_json in
  Ok { Proof.subject; action; items }

let proof_to_json (p : Proof.t) =
  Obj
    [
      ("query_id", String p.Proof.query_id);
      ("server", String p.Proof.server);
      ("domain", String p.Proof.domain);
      ("policy_version", Int p.Proof.policy_version);
      ("evaluated_at", Float p.Proof.evaluated_at);
      ("credential_ids", str_list_to_json p.Proof.credential_ids);
      ("request", request_to_json p.Proof.request);
      ("result", Bool p.Proof.result);
      ("failures", List (List.map failure_to_json p.Proof.failures));
    ]

let proof_of_json j =
  let* query_id = Result.bind (member "query_id" j) to_str in
  let* server = Result.bind (member "server" j) to_str in
  let* domain = Result.bind (member "domain" j) to_str in
  let* policy_version = Result.bind (member "policy_version" j) to_int in
  let* evaluated_at = Result.bind (member "evaluated_at" j) to_float in
  let* credential_ids = Result.bind (member "credential_ids" j) str_list_of_json in
  let* request = Result.bind (member "request" j) request_of_json in
  let* result = Result.bind (member "result" j) to_bool in
  let* failures = Result.bind (member "failures" j) to_list in
  let* failures = map_result failure_of_json failures in
  Ok
    {
      Proof.query_id;
      server;
      domain;
      policy_version;
      evaluated_at;
      credential_ids;
      request;
      result;
      failures;
    }

let proofs_to_json proofs = List (List.map proof_to_json proofs)

let proofs_of_json j = Result.bind (to_list j) (map_result proof_of_json)

let policies_to_json policies = List (List.map Pcodec.policy_to_json policies)

let policies_of_json j =
  Result.bind (to_list j) (map_result Pcodec.policy_of_json)

let credentials_to_json creds = List (List.map Pcodec.credential_to_json creds)

let credentials_of_json j =
  Result.bind (to_list j) (map_result Pcodec.credential_of_json)

(* (key, value option) read sets. *)
let reads_to_json reads =
  List
    (List.map
       (fun (key, v) ->
         Obj [ ("key", String key); ("value", opt_to_json value_to_json v) ])
       reads)

let reads_of_json j =
  Result.bind (to_list j)
    (map_result (fun entry ->
         let* key = Result.bind (member "key" entry) to_str in
         let* value = opt_field entry "value" value_of_json in
         Ok (key, value)))

let reply_with_to_json = function
  | `Validate -> String "validate"
  | `Commit -> String "commit"

let reply_with_of_json j =
  let* s = to_str j in
  match s with
  | "validate" -> Ok `Validate
  | "commit" -> Ok `Commit
  | other -> Error (Printf.sprintf "reply_with %S unknown" other)

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)
(* ------------------------------------------------------------------ *)

let exec_outcome_to_json = function
  | Message.Executed { reads; proof } ->
    tag "executed"
      [ ("reads", reads_to_json reads); ("proof", opt_to_json proof_to_json proof) ]
  | Message.Exec_die -> tag "die" []

let exec_outcome_of_json j =
  let* t = tag_of j in
  match t with
  | "executed" ->
    let* reads = Result.bind (member "reads" j) reads_of_json in
    let* proof = opt_field j "proof" proof_of_json in
    Ok (Message.Executed { reads; proof })
  | "die" -> Ok Message.Exec_die
  | other -> Error (Printf.sprintf "exec outcome %S unknown" other)

let message_to_json = function
  | Message.Execute { txn; ts; query; subject; credentials; evaluate_proof; snapshot }
    ->
    tag "execute"
      [
        ("txn", String txn);
        ("ts", Float ts);
        ("query", query_to_json query);
        ("subject", String subject);
        ("credentials", credentials_to_json credentials);
        ("evaluate_proof", Bool evaluate_proof);
        ("snapshot", Bool snapshot);
      ]
  | Message.Execute_reply { txn; query_id; outcome } ->
    tag "execute-reply"
      [
        ("txn", String txn);
        ("query_id", String query_id);
        ("outcome", exec_outcome_to_json outcome);
      ]
  | Message.Validate_request { txn; round } ->
    tag "validate-request" [ ("txn", String txn); ("round", Int round) ]
  | Message.Validate_reply { txn; round; proofs; policies } ->
    tag "validate-reply"
      [
        ("txn", String txn);
        ("round", Int round);
        ("proofs", proofs_to_json proofs);
        ("policies", policies_to_json policies);
      ]
  | Message.Commit_request { txn; round; validate; allow_read_only; expected }
    ->
    tag "commit-request"
      [
        ("txn", String txn);
        ("round", Int round);
        ("validate", Bool validate);
        ("allow_read_only", Bool allow_read_only);
        ("expected", Int expected);
      ]
  | Message.Commit_reply { txn; round; integrity; read_only; proofs; policies } ->
    tag "commit-reply"
      [
        ("txn", String txn);
        ("round", Int round);
        ("integrity", Bool integrity);
        ("read_only", Bool read_only);
        ("proofs", proofs_to_json proofs);
        ("policies", policies_to_json policies);
      ]
  | Message.Policy_update { txn; round; policies; reply_with } ->
    tag "policy-update"
      [
        ("txn", String txn);
        ("round", Int round);
        ("policies", policies_to_json policies);
        ("reply_with", reply_with_to_json reply_with);
      ]
  | Message.Decision { txn; commit } ->
    tag "decision" [ ("txn", String txn); ("commit", Bool commit) ]
  | Message.Decision_ack { txn } -> tag "decision-ack" [ ("txn", String txn) ]
  | Message.Master_version_request { txn } ->
    tag "master-version-request" [ ("txn", String txn) ]
  | Message.Master_version_reply { txn; policies } ->
    tag "master-version-reply"
      [ ("txn", String txn); ("policies", policies_to_json policies) ]
  | Message.Propagate_policy { policy } ->
    tag "propagate-policy" [ ("policy", Pcodec.policy_to_json policy) ]
  | Message.Inquiry { txn } -> tag "inquiry" [ ("txn", String txn) ]

let message_of_json j =
  let* t = tag_of j in
  let txn () = Result.bind (member "txn" j) to_str in
  let round () = Result.bind (member "round" j) to_int in
  match t with
  | "execute" ->
    let* txn = txn () in
    let* ts = Result.bind (member "ts" j) to_float in
    let* query = Result.bind (member "query" j) query_of_json in
    let* subject = Result.bind (member "subject" j) to_str in
    let* credentials = Result.bind (member "credentials" j) credentials_of_json in
    let* evaluate_proof = Result.bind (member "evaluate_proof" j) to_bool in
    let* snapshot = Result.bind (member "snapshot" j) to_bool in
    Ok
      (Message.Execute
         { txn; ts; query; subject; credentials; evaluate_proof; snapshot })
  | "execute-reply" ->
    let* txn = txn () in
    let* query_id = Result.bind (member "query_id" j) to_str in
    let* outcome = Result.bind (member "outcome" j) exec_outcome_of_json in
    Ok (Message.Execute_reply { txn; query_id; outcome })
  | "validate-request" ->
    let* txn = txn () in
    let* round = round () in
    Ok (Message.Validate_request { txn; round })
  | "validate-reply" ->
    let* txn = txn () in
    let* round = round () in
    let* proofs = Result.bind (member "proofs" j) proofs_of_json in
    let* policies = Result.bind (member "policies" j) policies_of_json in
    Ok (Message.Validate_reply { txn; round; proofs; policies })
  | "commit-request" ->
    let* txn = txn () in
    let* round = round () in
    let* validate = Result.bind (member "validate" j) to_bool in
    let* allow_read_only = Result.bind (member "allow_read_only" j) to_bool in
    let* expected = Result.bind (member "expected" j) to_int in
    Ok (Message.Commit_request { txn; round; validate; allow_read_only; expected })
  | "commit-reply" ->
    let* txn = txn () in
    let* round = round () in
    let* integrity = Result.bind (member "integrity" j) to_bool in
    let* read_only = Result.bind (member "read_only" j) to_bool in
    let* proofs = Result.bind (member "proofs" j) proofs_of_json in
    let* policies = Result.bind (member "policies" j) policies_of_json in
    Ok (Message.Commit_reply { txn; round; integrity; read_only; proofs; policies })
  | "policy-update" ->
    let* txn = txn () in
    let* round = round () in
    let* policies = Result.bind (member "policies" j) policies_of_json in
    let* reply_with = Result.bind (member "reply_with" j) reply_with_of_json in
    Ok (Message.Policy_update { txn; round; policies; reply_with })
  | "decision" ->
    let* txn = txn () in
    let* commit = Result.bind (member "commit" j) to_bool in
    Ok (Message.Decision { txn; commit })
  | "decision-ack" ->
    let* txn = txn () in
    Ok (Message.Decision_ack { txn })
  | "master-version-request" ->
    let* txn = txn () in
    Ok (Message.Master_version_request { txn })
  | "master-version-reply" ->
    let* txn = txn () in
    let* policies = Result.bind (member "policies" j) policies_of_json in
    Ok (Message.Master_version_reply { txn; policies })
  | "propagate-policy" ->
    let* policy = Result.bind (member "policy" j) Pcodec.policy_of_json in
    Ok (Message.Propagate_policy { policy })
  | "inquiry" ->
    let* txn = txn () in
    Ok (Message.Inquiry { txn })
  | other -> Error (Printf.sprintf "message tag %S unknown" other)

(* ------------------------------------------------------------------ *)
(* TM configuration                                                    *)
(* ------------------------------------------------------------------ *)

let master_mode_to_json = function
  | `Once -> String "once"
  | `Every_round -> String "every-round"

let master_mode_of_json j =
  let* s = to_str j in
  match s with
  | "once" -> Ok `Once
  | "every-round" -> Ok `Every_round
  | other -> Error (Printf.sprintf "master mode %S unknown" other)

let timeout_policy_to_json = function
  | Timeout_policy.Fixed -> Obj [ ("kind", String "fixed") ]
  | Timeout_policy.Adaptive a ->
    Obj
      [
        ("kind", String "adaptive");
        ("seed", String (Int64.to_string a.Timeout_policy.seed));
        ("rtt_multiplier", Float a.Timeout_policy.rtt_multiplier);
        ("min_timeout", Float a.Timeout_policy.min_timeout);
        ("backoff_factor", Float a.Timeout_policy.backoff_factor);
        ("backoff_max", Float a.Timeout_policy.backoff_max);
        ("jitter", Float a.Timeout_policy.jitter);
        ("vote_budget", Int a.Timeout_policy.vote_budget);
        ("retry_budget", Int a.Timeout_policy.retry_budget);
      ]

let timeout_policy_of_json j =
  let* kind = Result.bind (member "kind" j) to_str in
  match kind with
  | "fixed" -> Ok Timeout_policy.Fixed
  | "adaptive" ->
    let* seed_s = Result.bind (member "seed" j) to_str in
    let* seed =
      match Int64.of_string_opt seed_s with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "timeout policy seed %S not an int64" seed_s)
    in
    let* rtt_multiplier = Result.bind (member "rtt_multiplier" j) to_float in
    let* min_timeout = Result.bind (member "min_timeout" j) to_float in
    let* backoff_factor = Result.bind (member "backoff_factor" j) to_float in
    let* backoff_max = Result.bind (member "backoff_max" j) to_float in
    let* jitter = Result.bind (member "jitter" j) to_float in
    let* vote_budget = Result.bind (member "vote_budget" j) to_int in
    let* retry_budget = Result.bind (member "retry_budget" j) to_int in
    Ok
      (Timeout_policy.Adaptive
         {
           Timeout_policy.seed;
           rtt_multiplier;
           min_timeout;
           backoff_factor;
           backoff_max;
           jitter;
           vote_budget;
           retry_budget;
         })
  | other -> Error (Printf.sprintf "timeout policy kind %S unknown" other)

let config_to_json (cfg : Tm_machine.config) =
  Obj
    ([
       ("scheme", String (Scheme.name cfg.Tm_machine.scheme));
       ("level", String (Consistency.name cfg.Tm_machine.level));
       ("master_mode", master_mode_to_json cfg.Tm_machine.master_mode);
       ("max_rounds", Int cfg.Tm_machine.max_rounds);
       ("vote_timeout", Float cfg.Tm_machine.vote_timeout);
       ("decision_retry", Float cfg.Tm_machine.decision_retry);
       ("read_only_optimization", Bool cfg.Tm_machine.read_only_optimization);
       ("snapshot_reads", Bool cfg.Tm_machine.snapshot_reads);
     ]
    @
    (* Omitted for Fixed, so pre-v4 journal bytes are reproduced
       exactly; decoders default an absent field to Fixed. *)
    match cfg.Tm_machine.timeout_policy with
    | Timeout_policy.Fixed -> []
    | p -> [ ("timeout_policy", timeout_policy_to_json p) ])

let scheme_of_json j =
  let* s = to_str j in
  match Scheme.of_string s with
  | Some scheme -> Ok scheme
  | None -> Error (Printf.sprintf "scheme %S unknown" s)

let level_of_json j =
  let* s = to_str j in
  match Consistency.of_string s with
  | Some level -> Ok level
  | None -> Error (Printf.sprintf "consistency level %S unknown" s)

let config_of_json j =
  let* scheme = Result.bind (member "scheme" j) scheme_of_json in
  let* level = Result.bind (member "level" j) level_of_json in
  let* master_mode = Result.bind (member "master_mode" j) master_mode_of_json in
  let* max_rounds = Result.bind (member "max_rounds" j) to_int in
  let* vote_timeout = Result.bind (member "vote_timeout" j) to_float in
  let* decision_retry = Result.bind (member "decision_retry" j) to_float in
  let* read_only_optimization =
    Result.bind (member "read_only_optimization" j) to_bool
  in
  let* snapshot_reads = Result.bind (member "snapshot_reads" j) to_bool in
  let* timeout_policy =
    match opt_field j "timeout_policy" timeout_policy_of_json with
    | Ok (Some p) -> Ok p
    | Ok None -> Ok Timeout_policy.Fixed
    | Error e -> Error e
  in
  Ok
    {
      Tm_machine.scheme;
      level;
      master_mode;
      max_rounds;
      vote_timeout;
      decision_retry;
      read_only_optimization;
      snapshot_reads;
      timeout_policy;
    }

let variant_to_json = function
  | Tpc.Basic -> String "basic"
  | Tpc.Presumed_abort -> String "presumed-abort"
  | Tpc.Presumed_commit -> String "presumed-commit"

let variant_of_json j =
  let* s = to_str j in
  match s with
  | "basic" -> Ok Tpc.Basic
  | "presumed-abort" -> Ok Tpc.Presumed_abort
  | "presumed-commit" -> Ok Tpc.Presumed_commit
  | other -> Error (Printf.sprintf "2PC variant %S unknown" other)

let reason_to_json r = String (Outcome.reason_name r)

let reason_of_json j =
  let* s = to_str j in
  match s with
  | "committed" -> Ok Outcome.Committed
  | "integrity-violation" -> Ok Outcome.Integrity_violation
  | "proof-failure" -> Ok Outcome.Proof_failure
  | "version-inconsistency" -> Ok Outcome.Version_inconsistency
  | "wait-die" -> Ok Outcome.Wait_die
  | "rounds-exhausted" -> Ok Outcome.Rounds_exhausted
  | "timed-out" -> Ok Outcome.Timed_out
  | "coordinator-crash" -> Ok Outcome.Coordinator_crash
  | "budget-exhausted" -> Ok Outcome.Budget_exhausted
  | "breaker-open" -> Ok Outcome.Breaker_open
  | "admission-rejected" -> Ok Outcome.Admission_rejected
  | other -> Error (Printf.sprintf "outcome reason %S unknown" other)

(* ------------------------------------------------------------------ *)
(* TM inputs and actions                                               *)
(* ------------------------------------------------------------------ *)

let tm_input_to_json = function
  | Tm_machine.Deliver { src; msg } ->
    tag "deliver" [ ("src", String src); ("msg", message_to_json msg) ]
  | Tm_machine.Watchdog_fired { epoch } -> tag "watchdog-fired" [ ("epoch", Int epoch) ]
  | Tm_machine.Retry_fired -> tag "retry-fired" []
  | Tm_machine.Rtt_sample { peer; ms } ->
    tag "rtt-sample" [ ("peer", String peer); ("ms", Float ms) ]

let tm_input_of_json j =
  let* t = tag_of j in
  match t with
  | "deliver" ->
    let* src = Result.bind (member "src" j) to_str in
    let* msg = Result.bind (member "msg" j) message_of_json in
    Ok (Tm_machine.Deliver { src; msg })
  | "watchdog-fired" ->
    let* epoch = Result.bind (member "epoch" j) to_int in
    Ok (Tm_machine.Watchdog_fired { epoch })
  | "retry-fired" -> Ok Tm_machine.Retry_fired
  | "rtt-sample" ->
    let* peer = Result.bind (member "peer" j) to_str in
    let* ms = Result.bind (member "ms" j) to_float in
    Ok (Tm_machine.Rtt_sample { peer; ms })
  | other -> Error (Printf.sprintf "TM input tag %S unknown" other)

let obs_to_json = function
  | Tm_machine.Query_open { index; server } ->
    tag "query-open" [ ("index", Int index); ("server", String server) ]
  | Tm_machine.Query_close { outcome } ->
    tag "query-close" [ ("outcome", String outcome) ]
  | Tm_machine.Round_open { parent; span_name; round; query } ->
    tag "round-open"
      [
        ("parent", String (match parent with `Txn -> "txn" | `Phase -> "phase"));
        ("span_name", String span_name);
        ("round", Int round);
        ("query", opt_to_json (fun q -> Int q) query);
      ]
  | Tm_machine.Round_close { resolution } ->
    tag "round-close" [ ("resolution", opt_to_json (fun r -> String r) resolution) ]
  | Tm_machine.Phase_open { span_name; reason } ->
    tag "phase-open"
      [
        ("span_name", String span_name);
        ("reason", opt_to_json (fun r -> String r) reason);
      ]
  | Tm_machine.Phase_close -> tag "phase-close" []
  | Tm_machine.Txn_close { outcome; reason } ->
    tag "txn-close" [ ("outcome", String outcome); ("reason", String reason) ]

let obs_of_json j =
  let* t = tag_of j in
  match t with
  | "query-open" ->
    let* index = Result.bind (member "index" j) to_int in
    let* server = Result.bind (member "server" j) to_str in
    Ok (Tm_machine.Query_open { index; server })
  | "query-close" ->
    let* outcome = Result.bind (member "outcome" j) to_str in
    Ok (Tm_machine.Query_close { outcome })
  | "round-open" ->
    let* parent = Result.bind (member "parent" j) to_str in
    let* parent =
      match parent with
      | "txn" -> Ok `Txn
      | "phase" -> Ok `Phase
      | other -> Error (Printf.sprintf "round parent %S unknown" other)
    in
    let* span_name = Result.bind (member "span_name" j) to_str in
    let* round = Result.bind (member "round" j) to_int in
    let* query = opt_field j "query" to_int in
    Ok (Tm_machine.Round_open { parent; span_name; round; query })
  | "round-close" ->
    let* resolution = opt_field j "resolution" to_str in
    Ok (Tm_machine.Round_close { resolution })
  | "phase-open" ->
    let* span_name = Result.bind (member "span_name" j) to_str in
    let* reason = opt_field j "reason" to_str in
    Ok (Tm_machine.Phase_open { span_name; reason })
  | "phase-close" -> Ok Tm_machine.Phase_close
  | "txn-close" ->
    let* outcome = Result.bind (member "outcome" j) to_str in
    let* reason = Result.bind (member "reason" j) to_str in
    Ok (Tm_machine.Txn_close { outcome; reason })
  | other -> Error (Printf.sprintf "TM obs tag %S unknown" other)

let tm_action_to_json = function
  | Tm_machine.Send { dst; msg } ->
    tag "send" [ ("dst", String dst); ("msg", message_to_json msg) ]
  | Tm_machine.Arm_watchdog { epoch; delay } ->
    tag "arm-watchdog" [ ("epoch", Int epoch); ("delay", Float delay) ]
  | Tm_machine.Arm_retry { delay } -> tag "arm-retry" [ ("delay", Float delay) ]
  | Tm_machine.Force_log -> tag "force-log" []
  | Tm_machine.Mark label -> tag "mark" [ ("label", String label) ]
  | Tm_machine.Obs o -> tag "obs" [ ("obs", obs_to_json o) ]
  | Tm_machine.Finish { committed; reason; commit_rounds } ->
    tag "finish"
      [
        ("committed", Bool committed);
        ("reason", reason_to_json reason);
        ("commit_rounds", Int commit_rounds);
      ]

let tm_action_of_json j =
  let* t = tag_of j in
  match t with
  | "send" ->
    let* dst = Result.bind (member "dst" j) to_str in
    let* msg = Result.bind (member "msg" j) message_of_json in
    Ok (Tm_machine.Send { dst; msg })
  | "arm-watchdog" ->
    let* epoch = Result.bind (member "epoch" j) to_int in
    let* delay = Result.bind (member "delay" j) to_float in
    Ok (Tm_machine.Arm_watchdog { epoch; delay })
  | "arm-retry" ->
    let* delay = Result.bind (member "delay" j) to_float in
    Ok (Tm_machine.Arm_retry { delay })
  | "force-log" -> Ok Tm_machine.Force_log
  | "mark" ->
    let* label = Result.bind (member "label" j) to_str in
    Ok (Tm_machine.Mark label)
  | "obs" ->
    let* o = Result.bind (member "obs" j) obs_of_json in
    Ok (Tm_machine.Obs o)
  | "finish" ->
    let* committed = Result.bind (member "committed" j) to_bool in
    let* reason = Result.bind (member "reason" j) reason_of_json in
    let* commit_rounds = Result.bind (member "commit_rounds" j) to_int in
    Ok (Tm_machine.Finish { committed; reason; commit_rounds })
  | other -> Error (Printf.sprintf "TM action tag %S unknown" other)

(* ------------------------------------------------------------------ *)
(* PS inputs and actions                                               *)
(* ------------------------------------------------------------------ *)

let eval_cont_to_json = function
  | Ps_machine.To_execute_reply { reply_to; query_id; reads } ->
    tag "to-execute-reply"
      [
        ("reply_to", String reply_to);
        ("query_id", String query_id);
        ("reads", reads_to_json reads);
      ]
  | Ps_machine.To_validate_reply { reply_to; round } ->
    tag "to-validate-reply" [ ("reply_to", String reply_to); ("round", Int round) ]
  | Ps_machine.To_commit_reply { reply_to; round } ->
    tag "to-commit-reply" [ ("reply_to", String reply_to); ("round", Int round) ]
  | Ps_machine.To_update_reply { reply_to; round; reply_with } ->
    tag "to-update-reply"
      [
        ("reply_to", String reply_to);
        ("round", Int round);
        ("reply_with", reply_with_to_json reply_with);
      ]
  | Ps_machine.To_read_only_reply { reply_to; round; vote } ->
    tag "to-read-only-reply"
      [ ("reply_to", String reply_to); ("round", Int round); ("vote", Bool vote) ]

let eval_cont_of_json j =
  let* t = tag_of j in
  let reply_to () = Result.bind (member "reply_to" j) to_str in
  let round () = Result.bind (member "round" j) to_int in
  match t with
  | "to-execute-reply" ->
    let* reply_to = reply_to () in
    let* query_id = Result.bind (member "query_id" j) to_str in
    let* reads = Result.bind (member "reads" j) reads_of_json in
    Ok (Ps_machine.To_execute_reply { reply_to; query_id; reads })
  | "to-validate-reply" ->
    let* reply_to = reply_to () in
    let* round = round () in
    Ok (Ps_machine.To_validate_reply { reply_to; round })
  | "to-commit-reply" ->
    let* reply_to = reply_to () in
    let* round = round () in
    Ok (Ps_machine.To_commit_reply { reply_to; round })
  | "to-update-reply" ->
    let* reply_to = reply_to () in
    let* round = round () in
    let* reply_with = Result.bind (member "reply_with" j) reply_with_of_json in
    Ok (Ps_machine.To_update_reply { reply_to; round; reply_with })
  | "to-read-only-reply" ->
    let* reply_to = reply_to () in
    let* round = round () in
    let* vote = Result.bind (member "vote" j) to_bool in
    Ok (Ps_machine.To_read_only_reply { reply_to; round; vote })
  | other -> Error (Printf.sprintf "eval continuation tag %S unknown" other)

let exec_result_to_json = function
  | Ps_machine.Executed reads -> tag "executed" [ ("reads", reads_to_json reads) ]
  | Ps_machine.Blocked -> tag "blocked" []
  | Ps_machine.Die -> tag "die" []

let exec_result_of_json j =
  let* t = tag_of j in
  match t with
  | "executed" ->
    let* reads = Result.bind (member "reads" j) reads_of_json in
    Ok (Ps_machine.Executed reads)
  | "blocked" -> Ok Ps_machine.Blocked
  | "die" -> Ok Ps_machine.Die
  | other -> Error (Printf.sprintf "exec result tag %S unknown" other)

let mode_to_json = function
  | Lock_manager.Shared -> String "shared"
  | Lock_manager.Exclusive -> String "exclusive"

let mode_of_json j =
  let* s = to_str j in
  match s with
  | "shared" -> Ok Lock_manager.Shared
  | "exclusive" -> Ok Lock_manager.Exclusive
  | other -> Error (Printf.sprintf "lock mode %S unknown" other)

let release_to_json (r : Lock_manager.release) =
  Obj
    [
      ( "granted",
        List
          (List.map
             (fun (txn, key, mode) ->
               Obj
                 [
                   ("txn", String txn); ("key", String key); ("mode", mode_to_json mode);
                 ])
             r.Lock_manager.granted) );
      ( "killed",
        List
          (List.map
             (fun (txn, key) -> Obj [ ("txn", String txn); ("key", String key) ])
             r.Lock_manager.killed) );
    ]

let release_of_json j =
  let* granted = Result.bind (member "granted" j) to_list in
  let* granted =
    map_result
      (fun entry ->
        let* txn = Result.bind (member "txn" entry) to_str in
        let* key = Result.bind (member "key" entry) to_str in
        let* mode = Result.bind (member "mode" entry) mode_of_json in
        Ok (txn, key, mode))
      granted
  in
  let* killed = Result.bind (member "killed" j) to_list in
  let* killed =
    map_result
      (fun entry ->
        let* txn = Result.bind (member "txn" entry) to_str in
        let* key = Result.bind (member "key" entry) to_str in
        Ok (txn, key))
      killed
  in
  Ok { Lock_manager.granted; killed }

let policy_versions_to_json versions =
  List
    (List.map
       (fun (domain, v) -> Obj [ ("domain", String domain); ("version", Int v) ])
       versions)

let policy_versions_of_json j =
  Result.bind (to_list j)
    (map_result (fun entry ->
         let* domain = Result.bind (member "domain" entry) to_str in
         let* v = Result.bind (member "version" entry) to_int in
         Ok (domain, v)))

let ps_input_to_json = function
  | Ps_machine.Deliver { src; msg } ->
    tag "deliver" [ ("src", String src); ("msg", message_to_json msg) ]
  | Ps_machine.Exec_result { txn; query; evaluate; reply_to; result } ->
    tag "exec-result"
      [
        ("txn", String txn);
        ("query", query_to_json query);
        ("evaluate", Bool evaluate);
        ("reply_to", String reply_to);
        ("result", exec_result_to_json result);
      ]
  | Ps_machine.Evaluated { txn; proofs; policies; cont } ->
    tag "evaluated"
      [
        ("txn", String txn);
        ("proofs", proofs_to_json proofs);
        ("policies", policies_to_json policies);
        ("cont", eval_cont_to_json cont);
      ]
  | Ps_machine.Prepared { txn; vote } ->
    tag "prepared" [ ("txn", String txn); ("vote", Bool vote) ]
  | Ps_machine.Read_only_result { txn; reply_to; round; read_only; integrity_ok } ->
    tag "read-only-result"
      [
        ("txn", String txn);
        ("reply_to", String reply_to);
        ("round", Int round);
        ("read_only", Bool read_only);
        ("integrity_ok", Bool integrity_ok);
      ]
  | Ps_machine.Release { by; release } ->
    tag "release"
      [
        ("by", opt_to_json (fun s -> String s) by);
        ("release", release_to_json release);
      ]
  | Ps_machine.Inquiry_fired { txn; epoch } ->
    tag "inquiry-fired" [ ("txn", String txn); ("epoch", Int epoch) ]
  | Ps_machine.Recovered { decided; in_doubt } ->
    tag "recovered"
      [
        ("decided", str_list_to_json decided);
        ( "in_doubt",
          List
            (List.map
               (fun (txn, vote, writes) ->
                 Obj
                   [
                     ("txn", String txn);
                     ("vote", Bool vote);
                     ("writes", str_list_to_json writes);
                   ])
               in_doubt) );
      ]

let ps_input_of_json j =
  let* t = tag_of j in
  match t with
  | "deliver" ->
    let* src = Result.bind (member "src" j) to_str in
    let* msg = Result.bind (member "msg" j) message_of_json in
    Ok (Ps_machine.Deliver { src; msg })
  | "exec-result" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* query = Result.bind (member "query" j) query_of_json in
    let* evaluate = Result.bind (member "evaluate" j) to_bool in
    let* reply_to = Result.bind (member "reply_to" j) to_str in
    let* result = Result.bind (member "result" j) exec_result_of_json in
    Ok (Ps_machine.Exec_result { txn; query; evaluate; reply_to; result })
  | "evaluated" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* proofs = Result.bind (member "proofs" j) proofs_of_json in
    let* policies = Result.bind (member "policies" j) policies_of_json in
    let* cont = Result.bind (member "cont" j) eval_cont_of_json in
    Ok (Ps_machine.Evaluated { txn; proofs; policies; cont })
  | "prepared" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* vote = Result.bind (member "vote" j) to_bool in
    Ok (Ps_machine.Prepared { txn; vote })
  | "read-only-result" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* reply_to = Result.bind (member "reply_to" j) to_str in
    let* round = Result.bind (member "round" j) to_int in
    let* read_only = Result.bind (member "read_only" j) to_bool in
    let* integrity_ok = Result.bind (member "integrity_ok" j) to_bool in
    Ok (Ps_machine.Read_only_result { txn; reply_to; round; read_only; integrity_ok })
  | "release" ->
    let* by = opt_field j "by" to_str in
    let* release = Result.bind (member "release" j) release_of_json in
    Ok (Ps_machine.Release { by; release })
  | "inquiry-fired" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* epoch = Result.bind (member "epoch" j) to_int in
    Ok (Ps_machine.Inquiry_fired { txn; epoch })
  | "recovered" ->
    let* decided = Result.bind (member "decided" j) str_list_of_json in
    let* in_doubt = Result.bind (member "in_doubt" j) to_list in
    let* in_doubt =
      map_result
        (fun entry ->
          let* txn = Result.bind (member "txn" entry) to_str in
          let* vote = Result.bind (member "vote" entry) to_bool in
          (* Absent before codec v3: WAL prepared-record write keys. *)
          let* writes = opt_field entry "writes" str_list_of_json in
          Ok (txn, vote, Option.value ~default:[] writes))
        in_doubt
    in
    Ok (Ps_machine.Recovered { decided; in_doubt })
  | other -> Error (Printf.sprintf "PS input tag %S unknown" other)

let ps_action_to_json = function
  | Ps_machine.Send { dst; msg; after_proofs; credentials } ->
    tag "send"
      [
        ("dst", String dst);
        ("msg", message_to_json msg);
        ("after_proofs", Int after_proofs);
        ("credentials", credentials_to_json credentials);
      ]
  | Ps_machine.Begin_work { txn; ts } ->
    tag "begin-work" [ ("txn", String txn); ("ts", Float ts) ]
  | Ps_machine.Exec { txn; ts; query; evaluate; reply_to; snapshot } ->
    tag "exec"
      [
        ("txn", String txn);
        ("ts", Float ts);
        ("query", query_to_json query);
        ("evaluate", Bool evaluate);
        ("reply_to", String reply_to);
        ("snapshot", Bool snapshot);
      ]
  | Ps_machine.Eval { txn; subject; credentials; queries; with_proofs; with_policies; cont }
    ->
    tag "eval"
      [
        ("txn", String txn);
        ("subject", String subject);
        ("credentials", credentials_to_json credentials);
        ("queries", List (List.map query_to_json queries));
        ("with_proofs", Bool with_proofs);
        ("with_policies", Bool with_policies);
        ("cont", eval_cont_to_json cont);
      ]
  | Ps_machine.Check_read_only { txn; reply_to; round } ->
    tag "check-read-only"
      [ ("txn", String txn); ("reply_to", String reply_to); ("round", Int round) ]
  | Ps_machine.Prepare { txn; proof_truth; policy_versions } ->
    tag "prepare"
      [
        ("txn", String txn);
        ("proof_truth", Bool proof_truth);
        ("policy_versions", policy_versions_to_json policy_versions);
      ]
  | Ps_machine.Apply { txn; commit; forced; writes } ->
    tag "apply"
      [
        ("txn", String txn);
        ("commit", Bool commit);
        ("forced", Bool forced);
        ( "writes",
          List
            (List.map
               (fun (key, v) ->
                 Obj [ ("key", String key); ("version", Int v) ])
               writes) );
      ]
  | Ps_machine.Forget { txn } -> tag "forget" [ ("txn", String txn) ]
  | Ps_machine.Install { policies; announce } ->
    tag "install"
      [ ("policies", policies_to_json policies); ("announce", Bool announce) ]
  | Ps_machine.Wait_open { txn; query_id } ->
    tag "wait-open" [ ("txn", String txn); ("query_id", String query_id) ]
  | Ps_machine.Wait_close { txn; outcome; killed_by } ->
    tag "wait-close"
      [
        ("txn", String txn);
        ("outcome", String outcome);
        ("killed_by", opt_to_json (fun s -> String s) killed_by);
      ]
  | Ps_machine.Arm_inquiry { txn; epoch; delay } ->
    tag "arm-inquiry"
      [ ("txn", String txn); ("epoch", Int epoch); ("delay", Float delay) ]
  | Ps_machine.Mark label -> tag "mark" [ ("label", String label) ]

let ps_action_of_json j =
  let* t = tag_of j in
  match t with
  | "send" ->
    let* dst = Result.bind (member "dst" j) to_str in
    let* msg = Result.bind (member "msg" j) message_of_json in
    let* after_proofs = Result.bind (member "after_proofs" j) to_int in
    let* credentials = Result.bind (member "credentials" j) credentials_of_json in
    Ok (Ps_machine.Send { dst; msg; after_proofs; credentials })
  | "begin-work" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* ts = Result.bind (member "ts" j) to_float in
    Ok (Ps_machine.Begin_work { txn; ts })
  | "exec" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* ts = Result.bind (member "ts" j) to_float in
    let* query = Result.bind (member "query" j) query_of_json in
    let* evaluate = Result.bind (member "evaluate" j) to_bool in
    let* reply_to = Result.bind (member "reply_to" j) to_str in
    let* snapshot = Result.bind (member "snapshot" j) to_bool in
    Ok (Ps_machine.Exec { txn; ts; query; evaluate; reply_to; snapshot })
  | "eval" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* subject = Result.bind (member "subject" j) to_str in
    let* credentials = Result.bind (member "credentials" j) credentials_of_json in
    let* queries = Result.bind (member "queries" j) to_list in
    let* queries = map_result query_of_json queries in
    let* with_proofs = Result.bind (member "with_proofs" j) to_bool in
    let* with_policies = Result.bind (member "with_policies" j) to_bool in
    let* cont = Result.bind (member "cont" j) eval_cont_of_json in
    Ok
      (Ps_machine.Eval
         { txn; subject; credentials; queries; with_proofs; with_policies; cont })
  | "check-read-only" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* reply_to = Result.bind (member "reply_to" j) to_str in
    let* round = Result.bind (member "round" j) to_int in
    Ok (Ps_machine.Check_read_only { txn; reply_to; round })
  | "prepare" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* proof_truth = Result.bind (member "proof_truth" j) to_bool in
    let* policy_versions =
      Result.bind (member "policy_versions" j) policy_versions_of_json
    in
    Ok (Ps_machine.Prepare { txn; proof_truth; policy_versions })
  | "apply" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* commit = Result.bind (member "commit" j) to_bool in
    let* forced = Result.bind (member "forced" j) to_bool in
    (* Absent before codec v3: per-key committed write versions. *)
    let* writes =
      opt_field j "writes" (fun entries ->
          Result.bind (to_list entries)
            (map_result (fun entry ->
                 let* key = Result.bind (member "key" entry) to_str in
                 let* v = Result.bind (member "version" entry) to_int in
                 Ok (key, v))))
    in
    Ok
      (Ps_machine.Apply
         { txn; commit; forced; writes = Option.value ~default:[] writes })
  | "forget" ->
    let* txn = Result.bind (member "txn" j) to_str in
    Ok (Ps_machine.Forget { txn })
  | "install" ->
    let* policies = Result.bind (member "policies" j) policies_of_json in
    let* announce = Result.bind (member "announce" j) to_bool in
    Ok (Ps_machine.Install { policies; announce })
  | "wait-open" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* query_id = Result.bind (member "query_id" j) to_str in
    Ok (Ps_machine.Wait_open { txn; query_id })
  | "wait-close" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* outcome = Result.bind (member "outcome" j) to_str in
    let* killed_by = opt_field j "killed_by" to_str in
    Ok (Ps_machine.Wait_close { txn; outcome; killed_by })
  | "arm-inquiry" ->
    let* txn = Result.bind (member "txn" j) to_str in
    let* epoch = Result.bind (member "epoch" j) to_int in
    let* delay = Result.bind (member "delay" j) to_float in
    Ok (Ps_machine.Arm_inquiry { txn; epoch; delay })
  | "mark" ->
    let* label = Result.bind (member "label" j) to_str in
    Ok (Ps_machine.Mark label)
  | other -> Error (Printf.sprintf "PS action tag %S unknown" other)

(* Render as journal format [version] encoded it, so the replay auditor
   can byte-compare against journals recorded by older codecs.  The only
   action whose encoding changed since v2 is [Apply] (v3 added the
   committed write versions). *)
let ps_action_to_json_at ~version:v a =
  match a with
  | Ps_machine.Apply { txn; commit; forced; writes = _ } when v <= 2 ->
    tag "apply"
      [ ("txn", String txn); ("commit", Bool commit); ("forced", Bool forced) ]
  | a -> ps_action_to_json a
