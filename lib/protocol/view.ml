module Proof = Cloudtx_policy.Proof

type t = {
  txn : string;
  mutable entries : (int * Proof.t) list; (* newest first *)
}

let create ~txn = { txn; entries = [] }
let txn t = t.txn
let add t ~instant p = t.entries <- (instant, p) :: t.entries
let all t = List.rev_map snd t.entries

let instance t ~at =
  List.filter (fun (p : Proof.t) -> p.Proof.evaluated_at <= at) (all t)

let instants t =
  List.sort_uniq compare (List.map fst t.entries)

(* Latest entry per query among a newest-first entry list. *)
let latest_per_query entries =
  let seen = Hashtbl.create 8 in
  let latest =
    List.filter
      (fun (_, (p : Proof.t)) ->
        if Hashtbl.mem seen p.Proof.query_id then false
        else begin
          Hashtbl.add seen p.Proof.query_id ();
          true
        end)
      entries
  in
  List.rev_map snd latest

let instance_at t ~instant =
  latest_per_query (List.filter (fun (e, _) -> e <= instant) t.entries)

let current t = latest_per_query t.entries
let evaluations t = List.length t.entries
let all_true t = List.for_all (fun (p : Proof.t) -> p.Proof.result) (current t)
