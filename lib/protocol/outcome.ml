type reason =
  | Committed
  | Integrity_violation
  | Proof_failure
  | Version_inconsistency
  | Wait_die
  | Rounds_exhausted
  | Timed_out
  | Coordinator_crash
  | Budget_exhausted
  | Breaker_open
  | Admission_rejected

let reason_name = function
  | Committed -> "committed"
  | Integrity_violation -> "integrity-violation"
  | Proof_failure -> "proof-failure"
  | Version_inconsistency -> "version-inconsistency"
  | Wait_die -> "wait-die"
  | Rounds_exhausted -> "rounds-exhausted"
  | Timed_out -> "timed-out"
  | Coordinator_crash -> "coordinator-crash"
  | Budget_exhausted -> "budget-exhausted"
  | Breaker_open -> "breaker-open"
  | Admission_rejected -> "admission-rejected"

let pp_reason ppf r = Format.fprintf ppf "%s" (reason_name r)

type t = {
  txn : string;
  scheme : Scheme.t;
  level : Consistency.level;
  committed : bool;
  reason : reason;
  submitted_at : float;
  finished_at : float;
  commit_rounds : int;
  proofs_evaluated : int;
  view : View.t;
}

let latency t = t.finished_at -. t.submitted_at

let pp ppf t =
  Format.fprintf ppf "%s [%a/%a] %s (%a) in %.2fms, %d proofs, %d rounds"
    t.txn Scheme.pp t.scheme Consistency.pp t.level
    (if t.committed then "COMMIT" else "ABORT")
    pp_reason t.reason (latency t) t.proofs_evaluated t.commit_rounds
