module Transaction = Cloudtx_txn.Transaction
module Query = Cloudtx_txn.Query
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Sketch = Cloudtx_obs.Sketch

type master_mode = [ `Once | `Every_round ]

type config = {
  scheme : Scheme.t;
  level : Consistency.level;
  master_mode : master_mode;
  max_rounds : int;
  vote_timeout : float;
  decision_retry : float;
  read_only_optimization : bool;
  snapshot_reads : bool;
  timeout_policy : Timeout_policy.t;
}

let config ?(master_mode = `Every_round) ?(max_rounds = 16) ?(vote_timeout = 0.)
    ?(decision_retry = 0.) ?(read_only_optimization = false)
    ?(snapshot_reads = false) ?(timeout_policy = Timeout_policy.Fixed) scheme
    level =
  {
    scheme;
    level;
    master_mode;
    max_rounds;
    vote_timeout;
    decision_retry;
    read_only_optimization;
    snapshot_reads;
    timeout_policy;
  }

type awaiting_master =
  | No_fetch
  | Exec_check of Proof.t  (** Incremental global: current query's proof. *)
  | Query_prefetch  (** Continuous global: before Validate requests. *)
  | Commit_resolve  (** 2PVC: before resolving the completed round. *)

type phase =
  | Executing
  | Query_validating  (** Continuous per-query 2PV. *)
  | Committing
  | Deciding
  | Finished

type obs =
  | Query_open of { index : int; server : string }
  | Query_close of { outcome : string }
  | Round_open of {
      parent : [ `Txn | `Phase ];
      span_name : string;
      round : int;
      query : int option;
    }
  | Round_close of { resolution : string option }
  | Phase_open of { span_name : string; reason : string option }
  | Phase_close
  | Txn_close of { outcome : string; reason : string }

type action =
  | Send of { dst : string; msg : Message.t }
  | Arm_watchdog of { epoch : int; delay : float }
  | Arm_retry of { delay : float }
  | Force_log
  | Mark of string
  | Obs of obs
  | Finish of { committed : bool; reason : Outcome.reason; commit_rounds : int }

type input =
  | Deliver of { src : string; msg : Message.t }
  | Watchdog_fired of { epoch : int }
  | Retry_fired
  | Rtt_sample of { peer : string; ms : float }

type t = {
  cfg : config;
  txn : Transaction.t;
  name : string;
  name_hash : int64; (* jitter stream key, precomputed *)
  view : View.t;
  submitted_at : float;
  queries : Query.t array;
  rtt : (string, Sketch.t) Hashtbl.t; (* per-peer RTT estimates *)
  mutable strikes : int; (* consecutive watchdog expiries of this wait *)
  mutable retries : int; (* decision retransmissions so far *)
  mutable out : action list; (* reversed accumulator for the current step *)
  mutable qidx : int;
  mutable phase : phase;
  mutable awaiting_master : awaiting_master;
  mutable watchdog_epoch : int; (* guards stale watchdog timers *)
  mutable validation : Validation.t option;
  mutable commit_validates : bool;
  mutable master_fetched_round : int;
  mutable versions_seen : (string * int) list; (* incremental view *)
  mutable decision : bool option;
  mutable reason : Outcome.reason;
  mutable commit_rounds : int;
  mutable decision_targets : string list;
  mutable acked : string list;
  mutable read_only : string list; (* voted READ; skip the decision phase *)
}

let create cfg txn ~submitted_at =
  if txn.Transaction.queries = [] then
    invalid_arg "Tm_machine.create: transaction has no queries";
  {
    cfg;
    txn;
    name = "tm-" ^ txn.Transaction.id;
    name_hash = Timeout_policy.hash_name ("tm-" ^ txn.Transaction.id);
    view = View.create ~txn:txn.Transaction.id;
    submitted_at;
    queries = Array.of_list txn.Transaction.queries;
    rtt = Hashtbl.create 8;
    strikes = 0;
    retries = 0;
    out = [];
    qidx = 0;
    phase = Executing;
    awaiting_master = No_fetch;
    watchdog_epoch = 0;
    validation = None;
    commit_validates = false;
    master_fetched_round = 0;
    versions_seen = [];
    decision = None;
    reason = Outcome.Committed;
    commit_rounds = 0;
    decision_targets = [];
    acked = [];
    read_only = [];
  }

let name s = s.name
let view s = s.view
let decision s = s.decision
let phase s = s.phase
let submitted_at s = s.submitted_at
let reason s = s.reason
let commit_rounds s = s.commit_rounds
let decision_targets s = s.decision_targets

let emit s a = s.out <- a :: s.out
let send s ~dst msg = emit s (Send { dst; msg })
let mark s label = emit s (Mark label)
let obs s o = emit s (Obs o)

(* Adaptive watchdog base: [rtt_multiplier] x the slowest peer's p99 RTT,
   floored at [min_timeout].  Before any sample arrives, fall back to the
   configured [vote_timeout] (or the floor when timers were disabled). *)
let watchdog_base s (a : Timeout_policy.adaptive) =
  let worst = ref 0. in
  Hashtbl.iter
    (fun _ sk ->
      if Sketch.count sk > 0 then
        worst := Float.max !worst (Sketch.percentile sk 99.))
    s.rtt;
  if !worst > 0. then Float.max a.min_timeout (a.rtt_multiplier *. !worst)
  else if s.cfg.vote_timeout > 0. then s.cfg.vote_timeout
  else a.min_timeout

(* Bump the epoch (invalidating older timers) and arm with the policy's
   delay: the fixed constant, or the backed-off jittered RTT estimate. *)
let rearm_watchdog s =
  s.watchdog_epoch <- s.watchdog_epoch + 1;
  let delay =
    match s.cfg.timeout_policy with
    | Timeout_policy.Fixed -> s.cfg.vote_timeout
    | Timeout_policy.Adaptive a ->
      Timeout_policy.delay a ~base:(watchdog_base s a) ~name_hash:s.name_hash
        ~epoch:s.watchdog_epoch ~strikes:s.strikes
  in
  emit s (Arm_watchdog { epoch = s.watchdog_epoch; delay })

(* Every point where the TM starts waiting on remote replies arms a timer;
   any progress that starts a new wait re-arms it (resetting the adaptive
   strike count), and reaching a decision defuses it.  Under [Fixed] with
   [vote_timeout] = 0 the TM blocks indefinitely, the paper's implicit
   assumption; [Adaptive] always arms. *)
let arm_watchdog s =
  match s.cfg.timeout_policy with
  | Timeout_policy.Fixed -> if s.cfg.vote_timeout > 0. then rearm_watchdog s
  | Timeout_policy.Adaptive _ ->
    s.strikes <- 0;
    rearm_watchdog s

(* Distinct servers of queries 0..k inclusive, in first-use order. *)
let servers_upto s k =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for i = 0 to k do
    let server = s.queries.(i).Query.server in
    if not (Hashtbl.mem seen server) then begin
      Hashtbl.add seen server ();
      out := server :: !out
    end
  done;
  List.rev !out

let all_servers s = servers_upto s (Array.length s.queries - 1)

let send_execute s =
  arm_watchdog s;
  let q = s.queries.(s.qidx) in
  obs s (Query_open { index = s.qidx; server = q.Query.server });
  send s ~dst:q.Query.server
    (Message.Execute
       {
         txn = s.txn.Transaction.id;
         ts = s.submitted_at;
         query = q;
         subject = s.txn.Transaction.subject;
         credentials = s.txn.Transaction.credentials;
         evaluate_proof = Scheme.proofs_during_execution s.cfg.scheme;
         snapshot = s.cfg.snapshot_reads && q.Query.writes = [];
       })

let fetch_master s what =
  s.awaiting_master <- what;
  send s ~dst:"master"
    (Message.Master_version_request { txn = s.txn.Transaction.id })

let finish s =
  s.phase <- Finished;
  mark s "txn_end";
  let committed =
    match s.decision with Some true -> true | Some false | None -> false
  in
  obs s (Round_close { resolution = None });
  obs s Phase_close;
  obs s
    (Txn_close
       {
         outcome = (if committed then "commit" else "abort");
         reason = Outcome.reason_name s.reason;
       });
  emit s
    (Finish { committed; reason = s.reason; commit_rounds = s.commit_rounds })

let arm_decision_retry s =
  match s.cfg.timeout_policy with
  | Timeout_policy.Fixed ->
    if s.cfg.decision_retry > 0. then
      emit s (Arm_retry { delay = s.cfg.decision_retry })
  | Timeout_policy.Adaptive a ->
    let base =
      if s.cfg.decision_retry > 0. then s.cfg.decision_retry else a.min_timeout
    in
    emit s
      (Arm_retry
         {
           delay =
             Timeout_policy.delay a ~base ~name_hash:s.name_hash
               ~epoch:s.watchdog_epoch ~strikes:s.retries;
         })

let decide s ~commit ~reason ~targets =
  s.decision <- Some commit;
  s.reason <- reason;
  s.phase <- Deciding;
  s.retries <- 0;
  obs s (Round_close { resolution = None });
  obs s Phase_close;
  obs s
    (Phase_open
       {
         span_name = (if commit then "2pvc.commit" else "2pvc.abort");
         reason = Some (Outcome.reason_name reason);
       });
  (* Read-only voters released at vote time and take no decision. *)
  let targets = List.filter (fun p -> not (List.mem p s.read_only)) targets in
  if targets <> [] then begin
    mark s
      (Printf.sprintf "log_force:tm_decision:%s"
         (if commit then "commit" else "abort"));
    emit s Force_log
  end;
  s.decision_targets <- targets;
  s.acked <- [];
  if targets = [] then finish s
  else begin
    List.iter
      (fun dst ->
        send s ~dst (Message.Decision { txn = s.txn.Transaction.id; commit }))
      targets;
    arm_decision_retry s
  end

(* Abort during execution: tell every server that has (or may have) a
   workspace, including the one that just reported. *)
let abort_now s reason =
  decide s ~commit:false ~reason ~targets:(servers_upto s s.qidx)

let on_watchdog s ~epoch =
  if s.watchdog_epoch = epoch && s.decision = None then begin
    match s.cfg.timeout_policy with
    | Timeout_policy.Adaptive a when s.strikes + 1 < a.vote_budget ->
      (* Strike within budget: back off and keep waiting — the peer may
         be slow, not dead.  No resend (the request is still in flight or
         lost; either way the next expiry escalates). *)
      s.strikes <- s.strikes + 1;
      mark s (Printf.sprintf "watchdog:strike:%d" s.strikes);
      rearm_watchdog s
    | policy ->
      s.validation <- None;
      s.awaiting_master <- No_fetch;
      let reason =
        match policy with
        | Timeout_policy.Fixed -> Outcome.Timed_out
        | Timeout_policy.Adaptive _ -> Outcome.Budget_exhausted
      in
      (* Past the last query (commit phase) every server is a target. *)
      let k = min s.qidx (Array.length s.queries - 1) in
      decide s ~commit:false ~reason ~targets:(servers_upto s k)
  end

let on_retry s =
  if s.phase = Deciding then begin
    let budget_left =
      match s.cfg.timeout_policy with
      | Timeout_policy.Fixed -> true
      | Timeout_policy.Adaptive a ->
        s.retries <- s.retries + 1;
        s.retries <= a.retry_budget
    in
    if budget_left then begin
      let commit = Option.get s.decision in
      List.iter
        (fun dst ->
          if not (List.mem dst s.acked) then
            send s ~dst
              (Message.Decision { txn = s.txn.Transaction.id; commit }))
        s.decision_targets;
      arm_decision_retry s
    end
    else begin
      (* Budget spent: stop retransmitting and release the client.  The
         decision is forced-logged, so presumed abort lets the
         coordinator forget un-acked targets — their Inquiry timers pull
         the decision from the (still-answering) finished machine, and
         termination holds without an unbounded Arm_retry loop. *)
      mark s "retry:budget-exhausted";
      finish s
    end
  end

let on_rtt s ~peer ~ms =
  match s.cfg.timeout_policy with
  | Timeout_policy.Fixed -> () (* not journaled under Fixed; ignore *)
  | Timeout_policy.Adaptive _ ->
    let sk =
      match Hashtbl.find_opt s.rtt peer with
      | Some sk -> sk
      | None ->
        let sk = Sketch.create () in
        Hashtbl.add s.rtt peer sk;
        sk
    in
    Sketch.observe sk ms

let advance s next =
  s.qidx <- s.qidx + 1;
  if s.qidx < Array.length s.queries then begin
    s.phase <- Executing;
    send_execute s
  end
  else next ()

let start_commit s =
  s.phase <- Committing;
  obs s (Round_close { resolution = None });
  obs s (Phase_open { span_name = "2pvc.prepare"; reason = None });
  let validate = Scheme.validates_at_commit s.cfg.scheme s.cfg.level in
  s.commit_validates <- validate;
  s.master_fetched_round <- 0;
  (* Without validation, 2PVC "acts like 2PC" (Section V-C): integrity
     votes only, no version reconciliation. *)
  let v =
    Validation.create ~reconcile:validate ~participants:(all_servers s)
      ~with_integrity:true ()
  in
  s.validation <- Some v;
  let allow_read_only = s.cfg.read_only_optimization && not validate in
  let queries_on dst =
    Array.fold_left
      (fun acc (q : Query.t) ->
        if String.equal q.Query.server dst then acc + 1 else acc)
      0 s.queries
  in
  List.iter
    (fun dst ->
      send s ~dst
        (Message.Commit_request
           {
             txn = s.txn.Transaction.id;
             round = Validation.round v;
             validate;
             allow_read_only;
             expected = queries_on dst;
           }))
    (all_servers s);
  arm_watchdog s

let validation s =
  match s.validation with
  | Some v -> v
  | None -> invalid_arg "Tm_machine: no validation in progress"

let send_policy_updates s ~reply_with updates =
  let v = validation s in
  List.iter
    (fun (dst, policies) ->
      send s ~dst
        (Message.Policy_update
           {
             txn = s.txn.Transaction.id;
             round = Validation.round v;
             policies;
             reply_with;
           }))
    updates

(* Continuous: 2PV over the servers involved so far (Section V-A's use of
   2PV during execution). *)
let start_query_validation s =
  arm_watchdog s;
  s.phase <- Query_validating;
  let v =
    Validation.create ~participants:(servers_upto s s.qidx)
      ~with_integrity:false ()
  in
  s.validation <- Some v;
  obs s
    (Round_open
       {
         parent = `Txn;
         span_name = "2pv.round";
         round = Validation.round v;
         query = Some s.qidx;
       });
  match s.cfg.level with
  | Consistency.Global -> fetch_master s Query_prefetch
  | Consistency.View ->
    List.iter
      (fun dst ->
        send s ~dst
          (Message.Validate_request
             { txn = s.txn.Transaction.id; round = Validation.round v }))
      (servers_upto s s.qidx)

let send_validate_requests s =
  let v = validation s in
  List.iter
    (fun dst ->
      send s ~dst
        (Message.Validate_request
           { txn = s.txn.Transaction.id; round = Validation.round v }))
    (Validation.awaiting v)

let resolve_query_validation s =
  let v = validation s in
  mark s (Printf.sprintf "sync:%s" s.txn.Transaction.id);
  let res = Validation.resolve v in
  obs s (Round_close { resolution = Some (Validation.resolution_name res) });
  (match res with
  | Validation.Need_update _ ->
    obs s
      (Round_open
         {
           parent = `Txn;
           span_name = "2pv.round";
           round = Validation.round v;
           query = Some s.qidx;
         })
  | _ -> ());
  match res with
  | Validation.All_consistent_true ->
    s.validation <- None;
    advance s (fun () -> start_commit s)
  | Validation.Abort_proof ->
    s.validation <- None;
    abort_now s Outcome.Proof_failure
  | Validation.Abort_integrity -> assert false (* with_integrity = false *)
  | Validation.Need_update updates ->
    if Validation.round v > s.cfg.max_rounds then begin
      s.validation <- None;
      abort_now s Outcome.Rounds_exhausted
    end
    else begin
      send_policy_updates s ~reply_with:`Validate updates;
      arm_watchdog s
    end

let resolve_commit s =
  let v = validation s in
  mark s (Printf.sprintf "sync:%s" s.txn.Transaction.id);
  s.commit_rounds <- Validation.round v;
  let res = Validation.resolve v in
  obs s (Round_close { resolution = Some (Validation.resolution_name res) });
  (match res with
  | Validation.Need_update _ ->
    obs s
      (Round_open
         {
           parent = `Phase;
           span_name = "2pvc.validate";
           round = Validation.round v;
           query = None;
         })
  | _ -> ());
  match res with
  | Validation.Abort_integrity ->
    decide s ~commit:false ~reason:Outcome.Integrity_violation
      ~targets:(all_servers s)
  | Validation.Abort_proof ->
    decide s ~commit:false ~reason:Outcome.Proof_failure
      ~targets:(all_servers s)
  | Validation.All_consistent_true ->
    decide s ~commit:true ~reason:Outcome.Committed ~targets:(all_servers s)
  | Validation.Need_update updates ->
    if Validation.round v > s.cfg.max_rounds then
      decide s ~commit:false ~reason:Outcome.Rounds_exhausted
        ~targets:(all_servers s)
    else begin
      send_policy_updates s ~reply_with:`Commit updates;
      arm_watchdog s
    end

(* A 2PVC round is complete: consult the master first when global
   consistency demands it, then resolve. *)
let commit_round_complete s =
  let v = validation s in
  let need_fetch =
    s.cfg.level = Consistency.Global && s.commit_validates
    &&
    match s.cfg.master_mode with
    | `Once -> s.master_fetched_round = 0
    | `Every_round -> s.master_fetched_round < Validation.round v
  in
  if need_fetch then fetch_master s Commit_resolve else resolve_commit s

(* Incremental Punctual under view consistency: the version of every proof
   must match what previous queries of the same domain reported
   (Section V-C; we abort on any mismatch since either direction is
   phi-inconsistent). *)
let incremental_view_check s (proof : Proof.t) =
  match List.assoc_opt proof.Proof.domain s.versions_seen with
  | None ->
    s.versions_seen <-
      (proof.Proof.domain, proof.Proof.policy_version) :: s.versions_seen;
    true
  | Some v -> v = proof.Proof.policy_version

let on_execute_reply s (outcome : Message.exec_outcome) =
  obs s
    (Query_close
       {
         outcome =
           (match outcome with
           | Message.Exec_die -> "die"
           | Message.Executed { proof = Some p; _ } ->
             if p.Proof.result then "executed" else "proof_false"
           | Message.Executed { proof = None; _ } -> "executed");
       });
  match outcome with
  | Message.Exec_die -> abort_now s Outcome.Wait_die
  | Message.Executed { proof; _ } -> (
    Option.iter (View.add s.view ~instant:s.qidx) proof;
    let proof_ok = match proof with Some p -> p.Proof.result | None -> true in
    match s.cfg.scheme with
    | Scheme.Deferred -> advance s (fun () -> start_commit s)
    | Scheme.Punctual ->
      if proof_ok then advance s (fun () -> start_commit s)
      else abort_now s Outcome.Proof_failure
    | Scheme.Incremental_punctual ->
      if not proof_ok then abort_now s Outcome.Proof_failure
      else begin
        let p = Option.get proof in
        match s.cfg.level with
        | Consistency.View ->
          if incremental_view_check s p then advance s (fun () -> start_commit s)
          else abort_now s Outcome.Version_inconsistency
        | Consistency.Global -> fetch_master s (Exec_check p)
      end
    | Scheme.Continuous -> start_query_validation s)

let on_master_reply s (policies : Policy.t list) =
  let what = s.awaiting_master in
  s.awaiting_master <- No_fetch;
  match what with
  | No_fetch ->
    (* A duplicated master reply (each copy is a distinct wire send, so
       driver dedup cannot catch it): the fetch it answered is already
       resolved. *)
    mark s "dup:master-reply"
  | Exec_check proof ->
    let master_version =
      List.find_map
        (fun (p : Policy.t) ->
          if String.equal p.Policy.domain proof.Proof.domain then
            Some p.Policy.version
          else None)
        policies
    in
    if master_version = Some proof.Proof.policy_version then
      advance s (fun () -> start_commit s)
    else abort_now s Outcome.Version_inconsistency
  | Query_prefetch ->
    Validation.add_master (validation s) policies;
    send_validate_requests s
  | Commit_resolve ->
    let v = validation s in
    Validation.add_master v policies;
    s.master_fetched_round <- Validation.round v;
    resolve_commit s

let on_ack s ~from =
  if not (List.mem from s.acked) then begin
    s.acked <- from :: s.acked;
    if List.length s.acked = List.length s.decision_targets then begin
      mark s "log:end";
      finish s
    end
  end

let dispatch s ~src msg =
  match (s.phase, msg) with
  | Executing, Message.Execute_reply { query_id; outcome; _ } ->
    (* A re-delivered reply for an already-answered query must not be
       mistaken for the current query's answer. *)
    if String.equal query_id s.queries.(s.qidx).Query.id then
      on_execute_reply s outcome
    else mark s ("stale:execute-reply:" ^ query_id)
  | Query_validating, Message.Validate_reply { round; proofs; policies; _ } ->
    let v = validation s in
    if round <> Validation.round v then () (* stale; drop *)
    else begin
      (* All evaluations of this per-query 2PV belong to the current
         query's instant t_i. *)
      List.iter (View.add s.view ~instant:s.qidx) proofs;
      match
        Validation.add_reply v ~from:src ~integrity:true ~proofs ~policies
      with
      | `Wait -> ()
      | `Round_complete -> resolve_query_validation s
    end
  | ( Committing,
      Message.Commit_reply { round; integrity; read_only; proofs; policies; _ }
    ) ->
    let v = validation s in
    if round <> Validation.round v then ()
    else begin
      if read_only && not (List.mem src s.read_only) then
        s.read_only <- src :: s.read_only;
      (* Commit-time revalidations all belong to the commit instant. *)
      List.iter (View.add s.view ~instant:(Array.length s.queries)) proofs;
      match Validation.add_reply v ~from:src ~integrity ~proofs ~policies with
      | `Wait -> ()
      | `Round_complete -> commit_round_complete s
    end
  | ( (Executing | Query_validating | Committing),
      Message.Master_version_reply { policies; _ } ) ->
    on_master_reply s policies
  | Deciding, Message.Decision_ack _ -> on_ack s ~from:src
  | (Deciding | Finished), Message.Inquiry _ -> (
    match s.decision with
    | Some commit ->
      send s ~dst:src (Message.Decision { txn = s.txn.Transaction.id; commit })
    | None -> ())
  | Finished, Message.Decision_ack _ -> () (* late ack after inquiry resend *)
  | ( (Deciding | Finished),
      ( Message.Validate_reply _ | Message.Commit_reply _
      | Message.Master_version_reply _ | Message.Execute_reply _ ) ) ->
    (* Stragglers from a round the vote timeout already aborted. *)
    ()
  | (Executing | Committing), Message.Validate_reply _ ->
    (* Re-delivered reply from a per-query 2PV round that already
       resolved (the round moved on, so the round check can't filter). *)
    mark s "stale:validate-reply"
  | (Executing | Query_validating | Committing), Message.Inquiry _ ->
    (* In-doubt probe before any decision exists: stay silent, the
       participant's inquiry timer re-probes. *)
    mark s "inquiry:undecided"
  | _, msg ->
    invalid_arg
      (Printf.sprintf "TM %s: unexpected %s in this phase" s.name
         (Message.label msg))

let step s f =
  s.out <- [];
  f s;
  let actions = List.rev s.out in
  s.out <- [];
  actions

let start s = step s send_execute

let handle s input =
  step s (fun s ->
      match input with
      | Deliver { src; msg } -> dispatch s ~src msg
      | Watchdog_fired { epoch } -> on_watchdog s ~epoch
      | Retry_fired -> on_retry s
      | Rtt_sample { peer; ms } -> on_rtt s ~peer ~ms)
