(** Compact binary codec for flight-recorder journal payloads.

    {!Codec} is the canonical JSON vocabulary; this module is its
    byte-for-byte-equivalent binary twin, used by binary journals
    ([Cloudtx_obs.Journal.Binary]).  Design points:

    - {b Allocation-lean encode.}  Every [emit_*] writes directly into a
      caller-supplied [Cloudtx_obs.Wbuf.t] (the journal's reused frame
      writer) — no intermediate JSON tree, no intermediate strings.
    - {b Self-describing payloads.}  A journal payload starts with a
      kind tag byte (0 create-tm, 1 create-ps, 2 tm-input, 3 tm-action,
      4 ps-input, 5 ps-action; since v4, 6 is create-tm with a
      non-[Fixed] timeout policy appended after the config — kind 0
      keeps the v3 layout byte-for-byte), so a binary journal decodes
      without tracking per-node machine kinds.
    - {b Canonical JSON on decode.}  {!payload_to_json} re-renders a
      decoded payload through {!Codec}, so a binary record converts to
      exactly the canonical JSON a JSONL journal would have recorded —
      the byte-exact audit contract across formats.

    Wire grammar (composed inside the journal's checksummed frames; see
    DESIGN.md): variant tags are single bytes in declaration order,
    fixed forever within a journal format version; ints are
    zigzag-LEB128 varints; strings are varint-length-prefixed bytes;
    floats are IEEE-754 binary64 little-endian (bit-exact, so float
    rendering round-trips); options are a presence byte; lists are a
    varint count followed by the elements.  Scheme and consistency-level
    names travel as strings (their [of_string] is the decoder).

    Decoders validate exactly as {!Codec}'s JSON decoders do (policies
    and credentials rebuild through [of_wire], rules re-check range
    restriction) and never raise. *)

module Wbuf = Cloudtx_obs.Wbuf
module Json = Cloudtx_policy.Json

(** One journal record payload, tagged with what it is. *)
type payload =
  | Create_tm of {
      config : Tm_machine.config;
      txn : Cloudtx_txn.Transaction.t;
      submitted_at : float;
    }
  | Create_ps of { variant : Cloudtx_txn.Tpc.variant; inquiry_timeout : float }
  | Tm_input of Tm_machine.input
  | Tm_action of Tm_machine.action
  | Ps_input of Ps_machine.input
  | Ps_action of Ps_machine.action

(** {1 Hot-path emitters}

    Each writes one complete payload (kind tag included) into [b].
    These are what the Manager/Participant drivers call for binary
    journals, via [Journal.record_frame]. *)

val emit_create_tm :
  Wbuf.t ->
  config:Tm_machine.config ->
  txn:Cloudtx_txn.Transaction.t ->
  submitted_at:float ->
  unit

val emit_create_ps :
  Wbuf.t -> variant:Cloudtx_txn.Tpc.variant -> inquiry_timeout:float -> unit

val emit_tm_input_payload : Wbuf.t -> Tm_machine.input -> unit
val emit_tm_action_payload : Wbuf.t -> Tm_machine.action -> unit
val emit_ps_input_payload : Wbuf.t -> Ps_machine.input -> unit
val emit_ps_action_payload : Wbuf.t -> Ps_machine.action -> unit

(** {1 Whole payloads} *)

val emit_payload : Wbuf.t -> payload -> unit
val payload_to_string : payload -> string

(** Decode one payload; trailing bytes are an error (frames delimit
    payloads exactly). *)
val payload_of_string : string -> (payload, string) result

(** {1 JSON bridge} *)

(** Canonical JSON for a payload — byte-identical (once rendered with
    [Codec.to_string]) to what the drivers record in a JSONL journal. *)
val payload_to_json : payload -> Json.t

type node_kind = Tm | Ps

(** Decode a JSONL record's payload into a typed {!payload} (for
    JSONL→binary conversion).  [dir] is the record's envelope dir;
    [kind] resolves whether an input/action belongs to a TM or PS node
    (the converter tracks this from create records). *)
val payload_of_json :
  dir:string -> kind:node_kind -> Json.t -> (payload, string) result
