(** Result of running one transaction under a scheme. *)

type reason =
  | Committed
  | Integrity_violation  (** A participant voted NO. *)
  | Proof_failure  (** A proof of authorization evaluated FALSE. *)
  | Version_inconsistency
      (** Incremental Punctual's per-query consistency check failed. *)
  | Wait_die  (** Lock-manager victim; would be restarted in production. *)
  | Rounds_exhausted  (** Validation never converged within the bound. *)
  | Timed_out  (** A voting round went unanswered (participant failure). *)
  | Coordinator_crash
      (** The coordinator crashed before logging a decision; its restart
          presumes abort (Section V's Presumed Abort discipline). *)
  | Budget_exhausted
      (** The adaptive timeout policy's vote budget ran out: the TM
          struck out [vote_budget] consecutive watchdog expiries and
          converted the stall into a clean abort. *)
  | Breaker_open
      (** Failed fast at submit: a circuit breaker for one of the
          transaction's servers was open ({!Cloudtx_core.Resilience}). *)
  | Admission_rejected
      (** Rejected at submit by the manager's admission control: the
          in-flight transaction bound was reached. *)

val reason_name : reason -> string
val pp_reason : Format.formatter -> reason -> unit

type t = {
  txn : string;
  scheme : Scheme.t;
  level : Consistency.level;
  committed : bool;
  reason : reason;
  submitted_at : float;
  finished_at : float;
  commit_rounds : int;  (** Voting rounds of the commit-time 2PVC/2PC. *)
  proofs_evaluated : int;  (** Across all servers, all rounds. *)
  view : View.t;  (** Every proof evaluation recorded by the TM. *)
}

(** End-to-end latency in simulated milliseconds. *)
val latency : t -> float

val pp : Format.formatter -> t -> unit
