(* Compact binary codec for the journal payload vocabulary.  One byte
   tag per variant (tags are positional, fixed forever within a journal
   format version), zigzag-varint ints, varint-length strings, IEEE-754
   little-endian floats.  Encoders write straight into a caller-supplied
   [Cloudtx_obs.Wbuf.t] — the journal's reused frame writer — with no
   intermediate JSON or string copies, which is what makes the binary
   journal's hot path allocation-lean.  Decoders rebuild the typed value
   and never raise; [payload_to_json] then re-renders through {!Codec},
   so a decoded binary record produces byte-identical canonical JSON to
   what a JSONL journal would have recorded.  See codec_bin.mli. *)

module Wbuf = Cloudtx_obs.Wbuf
module Json = Cloudtx_policy.Json
module Pcodec = Cloudtx_policy.Codec
module Proof = Cloudtx_policy.Proof
module Credential = Cloudtx_policy.Credential
module Policy = Cloudtx_policy.Policy
module Rule = Cloudtx_policy.Rule
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Tpc = Cloudtx_txn.Tpc
module Value = Cloudtx_store.Value
module Lock_manager = Cloudtx_store.Lock_manager

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                     *)
(* ------------------------------------------------------------------ *)

let add_tag b n = Wbuf.u8 b n

(* Unsigned LEB128. *)
let add_varint b n = Wbuf.varint b n

(* Zigzag, so negative ints stay short. *)
let add_int b n = Wbuf.varint b ((n lsl 1) lxor (n asr 62))
let add_bool b v = Wbuf.char b (if v then '\001' else '\000')
let add_f64 b f = Wbuf.f64_le b f

let add_str b s = Wbuf.lstr b s

let add_opt emit b = function
  | None -> add_tag b 0
  | Some v ->
    add_tag b 1;
    emit b v

(* Top-level recursion instead of [List.iter (emit b)]: the partial
   application would allocate a closure per list, and lists are
   everywhere in the payload vocabulary (hot-path emitters must not
   allocate). *)
let rec emit_each emit b = function
  | [] -> ()
  | x :: tl ->
    emit b x;
    emit_each emit b tl

(* Specialised [add_list add_str]: the per-element call through the
   [emit] closure cannot devirtualise in classic mode, and string lists
   (read sets, proof items, credential ids) are the hottest list
   shape. *)
let rec add_str_each b = function
  | [] -> ()
  | s :: tl ->
    add_str b s;
    add_str_each b tl

let add_str_list b l =
  add_varint b (List.length l);
  add_str_each b l

let add_list emit b l =
  add_varint b (List.length l);
  emit_each emit b l

type reader = { s : string; limit : int; mutable pos : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let byte r =
  if r.pos >= r.limit then corrupt "unexpected end of payload"
  else begin
    let c = Char.code (String.unsafe_get r.s r.pos) in
    r.pos <- r.pos + 1;
    c
  end

let read_varint r =
  let n = ref 0 and shift = ref 0 in
  let fin = ref (-1) in
  while !fin < 0 do
    if !shift > 56 then corrupt "varint too wide";
    let b = byte r in
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := 0
  done;
  !n

let read_int r =
  let u = read_varint r in
  (u lsr 1) lxor (-(u land 1))

let read_bool r =
  match byte r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "bool: bad byte %d" n

let read_f64 r =
  if r.pos + 8 > r.limit then corrupt "unexpected end of payload in float";
  let v = Bytes.get_int64_le (Bytes.unsafe_of_string r.s) r.pos in
  r.pos <- r.pos + 8;
  Int64.float_of_bits v

let read_str r =
  let len = read_varint r in
  if r.pos + len > r.limit then corrupt "unexpected end of payload in string";
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let read_opt f r =
  match byte r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> corrupt "option: bad byte %d" n

let read_list f r =
  let n = read_varint r in
  let acc = ref [] in
  for _ = 1 to n do
    acc := f r :: !acc
  done;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Store values and queries                                            *)
(* ------------------------------------------------------------------ *)

let emit_value b = function
  | Value.Int n ->
    add_tag b 0;
    add_int b n
  | Value.Text s ->
    add_tag b 1;
    add_str b s

let read_value r =
  match byte r with
  | 0 -> Value.Int (read_int r)
  | 1 -> Value.Text (read_str r)
  | n -> corrupt "value: bad tag %d" n

let emit_update b = function
  | Value.Set v ->
    add_tag b 0;
    emit_value b v
  | Value.Add n ->
    add_tag b 1;
    add_int b n

let read_update r =
  match byte r with
  | 0 -> Value.Set (read_value r)
  | 1 -> Value.Add (read_int r)
  | n -> corrupt "update: bad tag %d" n

let emit_write b (key, update) =
  add_str b key;
  emit_update b update

let read_write r =
  let key = read_str r in
  let update = read_update r in
  (key, update)

let emit_query b (q : Query.t) =
  add_str b q.Query.id;
  add_str b q.Query.server;
  add_str_list b q.Query.reads;
  add_list emit_write b q.Query.writes;
  add_opt add_str b q.Query.action_override

let read_query r =
  let id = read_str r in
  let server = read_str r in
  let reads = read_list read_str r in
  let writes = read_list read_write r in
  let action = read_opt read_str r in
  Query.make ~id ~server ~reads ~writes ?action ()

(* ------------------------------------------------------------------ *)
(* Policies and credentials                                            *)
(* ------------------------------------------------------------------ *)

let emit_term b = function
  | Rule.Var x ->
    add_tag b 0;
    add_str b x
  | Rule.Const c ->
    add_tag b 1;
    add_str b c

let read_term r =
  match byte r with
  | 0 -> Rule.Var (read_str r)
  | 1 -> Rule.Const (read_str r)
  | n -> corrupt "term: bad tag %d" n

let emit_atom b (a : Rule.atom) =
  add_str b a.Rule.pred;
  add_list emit_term b a.Rule.args

let read_atom r =
  let pred = read_str r in
  let args = read_list read_term r in
  Rule.atom pred args

let emit_literal b = function
  | Rule.Pos a ->
    add_tag b 0;
    emit_atom b a
  | Rule.Neg a ->
    add_tag b 1;
    emit_atom b a

let read_literal r =
  match byte r with
  | 0 -> Rule.Pos (read_atom r)
  | 1 -> Rule.Neg (read_atom r)
  | n -> corrupt "literal: bad tag %d" n

let emit_rule b (rule : Rule.t) =
  emit_atom b rule.Rule.head;
  add_list emit_literal b rule.Rule.body

let read_rule r =
  let head = read_atom r in
  let body = read_list read_literal r in
  (* Same receiving-side re-validation as the JSON decoder. *)
  try Rule.rule_literals head body
  with Invalid_argument m -> corrupt "rule: %s" m

let emit_policy b (p : Policy.t) =
  add_str b p.Policy.domain;
  add_int b p.Policy.version;
  add_bool b p.Policy.accept_capabilities;
  add_list emit_rule b p.Policy.rules

let read_policy r =
  let domain = read_str r in
  let version = read_int r in
  let accept_capabilities = read_bool r in
  let rules = read_list read_rule r in
  try Policy.of_wire ~domain ~version ~accept_capabilities rules
  with Invalid_argument m -> corrupt "policy: %s" m

let emit_cred_kind b = function
  | Credential.Attribute -> add_tag b 0
  | Credential.Access { action; item } ->
    add_tag b 1;
    add_str b action;
    add_str b item

let read_cred_kind r =
  match byte r with
  | 0 -> Credential.Attribute
  | 1 ->
    let action = read_str r in
    let item = read_str r in
    Credential.Access { action; item }
  | n -> corrupt "credential kind: bad tag %d" n

let emit_credential b (c : Credential.t) =
  add_str b c.Credential.id;
  add_str b c.Credential.subject;
  add_str b c.Credential.issuer;
  emit_cred_kind b c.Credential.kind;
  add_list emit_atom b c.Credential.facts;
  add_f64 b c.Credential.issued_at;
  add_f64 b c.Credential.expires_at;
  add_str b c.Credential.signature

let read_credential r =
  let id = read_str r in
  let subject = read_str r in
  let issuer = read_str r in
  let kind = read_cred_kind r in
  let facts = read_list read_atom r in
  let issued_at = read_f64 r in
  let expires_at = read_f64 r in
  let signature = read_str r in
  List.iter
    (fun a -> if not (Rule.is_ground a) then corrupt "credential fact must be ground")
    facts;
  try
    Credential.of_wire ~id ~subject ~issuer ~kind ~facts ~issued_at ~expires_at
      ~signature
  with Invalid_argument m -> corrupt "credential: %s" m

let emit_credentials b creds = add_list emit_credential b creds
let read_credentials r = read_list read_credential r
let emit_policies b ps = add_list emit_policy b ps
let read_policies r = read_list read_policy r

let emit_transaction b (txn : Transaction.t) =
  add_str b txn.Transaction.id;
  add_str b txn.Transaction.subject;
  add_list emit_query b txn.Transaction.queries;
  emit_credentials b txn.Transaction.credentials

let read_transaction r =
  let id = read_str r in
  let subject = read_str r in
  let queries = read_list read_query r in
  let credentials = read_credentials r in
  Transaction.make ~id ~subject ~credentials queries

(* ------------------------------------------------------------------ *)
(* Proofs                                                              *)
(* ------------------------------------------------------------------ *)

let emit_syntactic_failure b = function
  | Credential.Not_yet_valid -> add_tag b 0
  | Credential.Expired -> add_tag b 1
  | Credential.Bad_signature -> add_tag b 2

let read_syntactic_failure r =
  match byte r with
  | 0 -> Credential.Not_yet_valid
  | 1 -> Credential.Expired
  | 2 -> Credential.Bad_signature
  | n -> corrupt "syntactic failure: bad tag %d" n

let emit_failure b = function
  | Proof.Syntactic (id, why) ->
    add_tag b 0;
    add_str b id;
    emit_syntactic_failure b why
  | Proof.Revoked id ->
    add_tag b 1;
    add_str b id
  | Proof.Untrusted_issuer id ->
    add_tag b 2;
    add_str b id
  | Proof.Denied item ->
    add_tag b 3;
    add_str b item

let read_failure r =
  match byte r with
  | 0 ->
    let id = read_str r in
    let why = read_syntactic_failure r in
    Proof.Syntactic (id, why)
  | 1 -> Proof.Revoked (read_str r)
  | 2 -> Proof.Untrusted_issuer (read_str r)
  | 3 -> Proof.Denied (read_str r)
  | n -> corrupt "proof failure: bad tag %d" n

let emit_request b (req : Proof.request) =
  add_str b req.Proof.subject;
  add_str b req.Proof.action;
  add_str_list b req.Proof.items

let read_request r =
  let subject = read_str r in
  let action = read_str r in
  let items = read_list read_str r in
  { Proof.subject; action; items }

let emit_proof b (p : Proof.t) =
  add_str b p.Proof.query_id;
  add_str b p.Proof.server;
  add_str b p.Proof.domain;
  add_int b p.Proof.policy_version;
  add_f64 b p.Proof.evaluated_at;
  add_str_list b p.Proof.credential_ids;
  emit_request b p.Proof.request;
  add_bool b p.Proof.result;
  add_list emit_failure b p.Proof.failures

let read_proof r =
  let query_id = read_str r in
  let server = read_str r in
  let domain = read_str r in
  let policy_version = read_int r in
  let evaluated_at = read_f64 r in
  let credential_ids = read_list read_str r in
  let request = read_request r in
  let result = read_bool r in
  let failures = read_list read_failure r in
  {
    Proof.query_id;
    server;
    domain;
    policy_version;
    evaluated_at;
    credential_ids;
    request;
    result;
    failures;
  }

let emit_proofs b ps = add_list emit_proof b ps
let read_proofs r = read_list read_proof r

(* (key, value option) read sets. *)
let emit_reads b reads =
  add_list
    (fun b (key, v) ->
      add_str b key;
      add_opt emit_value b v)
    b reads

let read_reads r =
  read_list
    (fun r ->
      let key = read_str r in
      let v = read_opt read_value r in
      (key, v))
    r

let emit_reply_with b = function
  | `Validate -> add_tag b 0
  | `Commit -> add_tag b 1

let read_reply_with r =
  match byte r with
  | 0 -> `Validate
  | 1 -> `Commit
  | n -> corrupt "reply_with: bad tag %d" n

(* ------------------------------------------------------------------ *)
(* Wire messages                                                       *)
(* ------------------------------------------------------------------ *)

let emit_exec_outcome b = function
  | Message.Executed { reads; proof } ->
    add_tag b 0;
    emit_reads b reads;
    add_opt emit_proof b proof
  | Message.Exec_die -> add_tag b 1

let read_exec_outcome r =
  match byte r with
  | 0 ->
    let reads = read_reads r in
    let proof = read_opt read_proof r in
    Message.Executed { reads; proof }
  | 1 -> Message.Exec_die
  | n -> corrupt "exec outcome: bad tag %d" n

let emit_message b = function
  | Message.Execute { txn; ts; query; subject; credentials; evaluate_proof; snapshot }
    ->
    add_tag b 0;
    add_str b txn;
    add_f64 b ts;
    emit_query b query;
    add_str b subject;
    emit_credentials b credentials;
    add_bool b evaluate_proof;
    add_bool b snapshot
  | Message.Execute_reply { txn; query_id; outcome } ->
    add_tag b 1;
    add_str b txn;
    add_str b query_id;
    emit_exec_outcome b outcome
  | Message.Validate_request { txn; round } ->
    add_tag b 2;
    add_str b txn;
    add_int b round
  | Message.Validate_reply { txn; round; proofs; policies } ->
    add_tag b 3;
    add_str b txn;
    add_int b round;
    emit_proofs b proofs;
    emit_policies b policies
  | Message.Commit_request { txn; round; validate; allow_read_only; expected } ->
    add_tag b 4;
    add_str b txn;
    add_int b round;
    add_bool b validate;
    add_bool b allow_read_only;
    add_int b expected
  | Message.Commit_reply { txn; round; integrity; read_only; proofs; policies } ->
    add_tag b 5;
    add_str b txn;
    add_int b round;
    add_bool b integrity;
    add_bool b read_only;
    emit_proofs b proofs;
    emit_policies b policies
  | Message.Policy_update { txn; round; policies; reply_with } ->
    add_tag b 6;
    add_str b txn;
    add_int b round;
    emit_policies b policies;
    emit_reply_with b reply_with
  | Message.Decision { txn; commit } ->
    add_tag b 7;
    add_str b txn;
    add_bool b commit
  | Message.Decision_ack { txn } ->
    add_tag b 8;
    add_str b txn
  | Message.Master_version_request { txn } ->
    add_tag b 9;
    add_str b txn
  | Message.Master_version_reply { txn; policies } ->
    add_tag b 10;
    add_str b txn;
    emit_policies b policies
  | Message.Propagate_policy { policy } ->
    add_tag b 11;
    emit_policy b policy
  | Message.Inquiry { txn } ->
    add_tag b 12;
    add_str b txn

let read_message r =
  match byte r with
  | 0 ->
    let txn = read_str r in
    let ts = read_f64 r in
    let query = read_query r in
    let subject = read_str r in
    let credentials = read_credentials r in
    let evaluate_proof = read_bool r in
    let snapshot = read_bool r in
    Message.Execute { txn; ts; query; subject; credentials; evaluate_proof; snapshot }
  | 1 ->
    let txn = read_str r in
    let query_id = read_str r in
    let outcome = read_exec_outcome r in
    Message.Execute_reply { txn; query_id; outcome }
  | 2 ->
    let txn = read_str r in
    let round = read_int r in
    Message.Validate_request { txn; round }
  | 3 ->
    let txn = read_str r in
    let round = read_int r in
    let proofs = read_proofs r in
    let policies = read_policies r in
    Message.Validate_reply { txn; round; proofs; policies }
  | 4 ->
    let txn = read_str r in
    let round = read_int r in
    let validate = read_bool r in
    let allow_read_only = read_bool r in
    let expected = read_int r in
    Message.Commit_request { txn; round; validate; allow_read_only; expected }
  | 5 ->
    let txn = read_str r in
    let round = read_int r in
    let integrity = read_bool r in
    let read_only = read_bool r in
    let proofs = read_proofs r in
    let policies = read_policies r in
    Message.Commit_reply { txn; round; integrity; read_only; proofs; policies }
  | 6 ->
    let txn = read_str r in
    let round = read_int r in
    let policies = read_policies r in
    let reply_with = read_reply_with r in
    Message.Policy_update { txn; round; policies; reply_with }
  | 7 ->
    let txn = read_str r in
    let commit = read_bool r in
    Message.Decision { txn; commit }
  | 8 -> Message.Decision_ack { txn = read_str r }
  | 9 -> Message.Master_version_request { txn = read_str r }
  | 10 ->
    let txn = read_str r in
    let policies = read_policies r in
    Message.Master_version_reply { txn; policies }
  | 11 -> Message.Propagate_policy { policy = read_policy r }
  | 12 -> Message.Inquiry { txn = read_str r }
  | n -> corrupt "message: bad tag %d" n

(* ------------------------------------------------------------------ *)
(* TM configuration                                                    *)
(* ------------------------------------------------------------------ *)

let emit_master_mode b = function
  | `Once -> add_tag b 0
  | `Every_round -> add_tag b 1

let read_master_mode r =
  match byte r with
  | 0 -> `Once
  | 1 -> `Every_round
  | n -> corrupt "master mode: bad tag %d" n

let emit_config b (cfg : Tm_machine.config) =
  add_str b (Scheme.name cfg.Tm_machine.scheme);
  add_str b (Consistency.name cfg.Tm_machine.level);
  emit_master_mode b cfg.Tm_machine.master_mode;
  add_int b cfg.Tm_machine.max_rounds;
  add_f64 b cfg.Tm_machine.vote_timeout;
  add_f64 b cfg.Tm_machine.decision_retry;
  add_bool b cfg.Tm_machine.read_only_optimization;
  add_bool b cfg.Tm_machine.snapshot_reads

(* The timeout policy is NOT part of [emit_config]'s frame: a [Fixed]
   Create_tm keeps payload kind 0 and the exact v3 config bytes, and a
   non-[Fixed] one uses the self-describing kind 6 which appends the
   policy after the config — so v3 journals decode unchanged with no
   version threading through [read_config]. *)
let add_i64 b v =
  for i = 0 to 7 do
    Wbuf.u8 b
      (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
  done

let read_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte r)) (8 * i))
  done;
  !v

let emit_timeout_policy b = function
  | Timeout_policy.Fixed -> add_tag b 0
  | Timeout_policy.Adaptive a ->
    add_tag b 1;
    add_i64 b a.Timeout_policy.seed;
    add_f64 b a.Timeout_policy.rtt_multiplier;
    add_f64 b a.Timeout_policy.min_timeout;
    add_f64 b a.Timeout_policy.backoff_factor;
    add_f64 b a.Timeout_policy.backoff_max;
    add_f64 b a.Timeout_policy.jitter;
    add_int b a.Timeout_policy.vote_budget;
    add_int b a.Timeout_policy.retry_budget

let read_timeout_policy r =
  match byte r with
  | 0 -> Timeout_policy.Fixed
  | 1 ->
    let seed = read_i64 r in
    let rtt_multiplier = read_f64 r in
    let min_timeout = read_f64 r in
    let backoff_factor = read_f64 r in
    let backoff_max = read_f64 r in
    let jitter = read_f64 r in
    let vote_budget = read_int r in
    let retry_budget = read_int r in
    Timeout_policy.Adaptive
      {
        Timeout_policy.seed;
        rtt_multiplier;
        min_timeout;
        backoff_factor;
        backoff_max;
        jitter;
        vote_budget;
        retry_budget;
      }
  | n -> corrupt "timeout policy: bad tag %d" n

let read_config r =
  let scheme =
    let s = read_str r in
    match Scheme.of_string s with
    | Some scheme -> scheme
    | None -> corrupt "scheme %S unknown" s
  in
  let level =
    let s = read_str r in
    match Consistency.of_string s with
    | Some level -> level
    | None -> corrupt "consistency level %S unknown" s
  in
  let master_mode = read_master_mode r in
  let max_rounds = read_int r in
  let vote_timeout = read_f64 r in
  let decision_retry = read_f64 r in
  let read_only_optimization = read_bool r in
  let snapshot_reads = read_bool r in
  {
    Tm_machine.scheme;
    level;
    master_mode;
    max_rounds;
    vote_timeout;
    decision_retry;
    read_only_optimization;
    snapshot_reads;
    (* Kind-0 Create_tm frames carry no policy; kind 6 overrides this. *)
    timeout_policy = Timeout_policy.Fixed;
  }

let emit_variant b = function
  | Tpc.Basic -> add_tag b 0
  | Tpc.Presumed_abort -> add_tag b 1
  | Tpc.Presumed_commit -> add_tag b 2

let read_variant r =
  match byte r with
  | 0 -> Tpc.Basic
  | 1 -> Tpc.Presumed_abort
  | 2 -> Tpc.Presumed_commit
  | n -> corrupt "2PC variant: bad tag %d" n

let emit_reason b (reason : Outcome.reason) =
  add_tag b
    (match reason with
    | Outcome.Committed -> 0
    | Outcome.Integrity_violation -> 1
    | Outcome.Proof_failure -> 2
    | Outcome.Version_inconsistency -> 3
    | Outcome.Wait_die -> 4
    | Outcome.Rounds_exhausted -> 5
    | Outcome.Timed_out -> 6
    | Outcome.Coordinator_crash -> 7
    | Outcome.Budget_exhausted -> 8
    | Outcome.Breaker_open -> 9
    | Outcome.Admission_rejected -> 10)

let read_reason r =
  match byte r with
  | 0 -> Outcome.Committed
  | 1 -> Outcome.Integrity_violation
  | 2 -> Outcome.Proof_failure
  | 3 -> Outcome.Version_inconsistency
  | 4 -> Outcome.Wait_die
  | 5 -> Outcome.Rounds_exhausted
  | 6 -> Outcome.Timed_out
  | 7 -> Outcome.Coordinator_crash
  | 8 -> Outcome.Budget_exhausted
  | 9 -> Outcome.Breaker_open
  | 10 -> Outcome.Admission_rejected
  | n -> corrupt "outcome reason: bad tag %d" n

(* ------------------------------------------------------------------ *)
(* TM inputs and actions                                               *)
(* ------------------------------------------------------------------ *)

let emit_tm_input b = function
  | Tm_machine.Deliver { src; msg } ->
    add_tag b 0;
    add_str b src;
    emit_message b msg
  | Tm_machine.Watchdog_fired { epoch } ->
    add_tag b 1;
    add_int b epoch
  | Tm_machine.Retry_fired -> add_tag b 2
  | Tm_machine.Rtt_sample { peer; ms } ->
    add_tag b 3;
    add_str b peer;
    add_f64 b ms

let read_tm_input r =
  match byte r with
  | 0 ->
    let src = read_str r in
    let msg = read_message r in
    Tm_machine.Deliver { src; msg }
  | 1 -> Tm_machine.Watchdog_fired { epoch = read_int r }
  | 2 -> Tm_machine.Retry_fired
  | 3 ->
    let peer = read_str r in
    let ms = read_f64 r in
    Tm_machine.Rtt_sample { peer; ms }
  | n -> corrupt "TM input: bad tag %d" n

let emit_obs b = function
  | Tm_machine.Query_open { index; server } ->
    add_tag b 0;
    add_int b index;
    add_str b server
  | Tm_machine.Query_close { outcome } ->
    add_tag b 1;
    add_str b outcome
  | Tm_machine.Round_open { parent; span_name; round; query } ->
    add_tag b 2;
    add_tag b (match parent with `Txn -> 0 | `Phase -> 1);
    add_str b span_name;
    add_int b round;
    add_opt add_int b query
  | Tm_machine.Round_close { resolution } ->
    add_tag b 3;
    add_opt add_str b resolution
  | Tm_machine.Phase_open { span_name; reason } ->
    add_tag b 4;
    add_str b span_name;
    add_opt add_str b reason
  | Tm_machine.Phase_close -> add_tag b 5
  | Tm_machine.Txn_close { outcome; reason } ->
    add_tag b 6;
    add_str b outcome;
    add_str b reason

let read_obs r =
  match byte r with
  | 0 ->
    let index = read_int r in
    let server = read_str r in
    Tm_machine.Query_open { index; server }
  | 1 -> Tm_machine.Query_close { outcome = read_str r }
  | 2 ->
    let parent =
      match byte r with
      | 0 -> `Txn
      | 1 -> `Phase
      | n -> corrupt "round parent: bad tag %d" n
    in
    let span_name = read_str r in
    let round = read_int r in
    let query = read_opt read_int r in
    Tm_machine.Round_open { parent; span_name; round; query }
  | 3 -> Tm_machine.Round_close { resolution = read_opt read_str r }
  | 4 ->
    let span_name = read_str r in
    let reason = read_opt read_str r in
    Tm_machine.Phase_open { span_name; reason }
  | 5 -> Tm_machine.Phase_close
  | 6 ->
    let outcome = read_str r in
    let reason = read_str r in
    Tm_machine.Txn_close { outcome; reason }
  | n -> corrupt "TM obs: bad tag %d" n

let emit_tm_action b = function
  | Tm_machine.Send { dst; msg } ->
    add_tag b 0;
    add_str b dst;
    emit_message b msg
  | Tm_machine.Arm_watchdog { epoch; delay } ->
    add_tag b 1;
    add_int b epoch;
    add_f64 b delay
  | Tm_machine.Arm_retry { delay } ->
    add_tag b 2;
    add_f64 b delay
  | Tm_machine.Force_log -> add_tag b 3
  | Tm_machine.Mark label ->
    add_tag b 4;
    add_str b label
  | Tm_machine.Obs o ->
    add_tag b 5;
    emit_obs b o
  | Tm_machine.Finish { committed; reason; commit_rounds } ->
    add_tag b 6;
    add_bool b committed;
    emit_reason b reason;
    add_int b commit_rounds

let read_tm_action r =
  match byte r with
  | 0 ->
    let dst = read_str r in
    let msg = read_message r in
    Tm_machine.Send { dst; msg }
  | 1 ->
    let epoch = read_int r in
    let delay = read_f64 r in
    Tm_machine.Arm_watchdog { epoch; delay }
  | 2 -> Tm_machine.Arm_retry { delay = read_f64 r }
  | 3 -> Tm_machine.Force_log
  | 4 -> Tm_machine.Mark (read_str r)
  | 5 -> Tm_machine.Obs (read_obs r)
  | 6 ->
    let committed = read_bool r in
    let reason = read_reason r in
    let commit_rounds = read_int r in
    Tm_machine.Finish { committed; reason; commit_rounds }
  | n -> corrupt "TM action: bad tag %d" n

(* ------------------------------------------------------------------ *)
(* PS inputs and actions                                               *)
(* ------------------------------------------------------------------ *)

let emit_eval_cont b = function
  | Ps_machine.To_execute_reply { reply_to; query_id; reads } ->
    add_tag b 0;
    add_str b reply_to;
    add_str b query_id;
    emit_reads b reads
  | Ps_machine.To_validate_reply { reply_to; round } ->
    add_tag b 1;
    add_str b reply_to;
    add_int b round
  | Ps_machine.To_commit_reply { reply_to; round } ->
    add_tag b 2;
    add_str b reply_to;
    add_int b round
  | Ps_machine.To_update_reply { reply_to; round; reply_with } ->
    add_tag b 3;
    add_str b reply_to;
    add_int b round;
    emit_reply_with b reply_with
  | Ps_machine.To_read_only_reply { reply_to; round; vote } ->
    add_tag b 4;
    add_str b reply_to;
    add_int b round;
    add_bool b vote

let read_eval_cont r =
  match byte r with
  | 0 ->
    let reply_to = read_str r in
    let query_id = read_str r in
    let reads = read_reads r in
    Ps_machine.To_execute_reply { reply_to; query_id; reads }
  | 1 ->
    let reply_to = read_str r in
    let round = read_int r in
    Ps_machine.To_validate_reply { reply_to; round }
  | 2 ->
    let reply_to = read_str r in
    let round = read_int r in
    Ps_machine.To_commit_reply { reply_to; round }
  | 3 ->
    let reply_to = read_str r in
    let round = read_int r in
    let reply_with = read_reply_with r in
    Ps_machine.To_update_reply { reply_to; round; reply_with }
  | 4 ->
    let reply_to = read_str r in
    let round = read_int r in
    let vote = read_bool r in
    Ps_machine.To_read_only_reply { reply_to; round; vote }
  | n -> corrupt "eval continuation: bad tag %d" n

let emit_exec_result b = function
  | Ps_machine.Executed reads ->
    add_tag b 0;
    emit_reads b reads
  | Ps_machine.Blocked -> add_tag b 1
  | Ps_machine.Die -> add_tag b 2

let read_exec_result r =
  match byte r with
  | 0 -> Ps_machine.Executed (read_reads r)
  | 1 -> Ps_machine.Blocked
  | 2 -> Ps_machine.Die
  | n -> corrupt "exec result: bad tag %d" n

let emit_mode b = function
  | Lock_manager.Shared -> add_tag b 0
  | Lock_manager.Exclusive -> add_tag b 1

let read_mode r =
  match byte r with
  | 0 -> Lock_manager.Shared
  | 1 -> Lock_manager.Exclusive
  | n -> corrupt "lock mode: bad tag %d" n

let emit_release b (rel : Lock_manager.release) =
  add_list
    (fun b (txn, key, mode) ->
      add_str b txn;
      add_str b key;
      emit_mode b mode)
    b rel.Lock_manager.granted;
  add_list
    (fun b (txn, key) ->
      add_str b txn;
      add_str b key)
    b rel.Lock_manager.killed

let read_release r =
  let granted =
    read_list
      (fun r ->
        let txn = read_str r in
        let key = read_str r in
        let mode = read_mode r in
        (txn, key, mode))
      r
  in
  let killed =
    read_list
      (fun r ->
        let txn = read_str r in
        let key = read_str r in
        (txn, key))
      r
  in
  { Lock_manager.granted; killed }

let emit_policy_versions b versions =
  add_list
    (fun b (domain, v) ->
      add_str b domain;
      add_int b v)
    b versions

let read_policy_versions r =
  read_list
    (fun r ->
      let domain = read_str r in
      let v = read_int r in
      (domain, v))
    r

let emit_ps_input b = function
  | Ps_machine.Deliver { src; msg } ->
    add_tag b 0;
    add_str b src;
    emit_message b msg
  | Ps_machine.Exec_result { txn; query; evaluate; reply_to; result } ->
    add_tag b 1;
    add_str b txn;
    emit_query b query;
    add_bool b evaluate;
    add_str b reply_to;
    emit_exec_result b result
  | Ps_machine.Evaluated { txn; proofs; policies; cont } ->
    add_tag b 2;
    add_str b txn;
    emit_proofs b proofs;
    emit_policies b policies;
    emit_eval_cont b cont
  | Ps_machine.Prepared { txn; vote } ->
    add_tag b 3;
    add_str b txn;
    add_bool b vote
  | Ps_machine.Read_only_result { txn; reply_to; round; read_only; integrity_ok } ->
    add_tag b 4;
    add_str b txn;
    add_str b reply_to;
    add_int b round;
    add_bool b read_only;
    add_bool b integrity_ok
  | Ps_machine.Release { by; release } ->
    add_tag b 5;
    add_opt add_str b by;
    emit_release b release
  | Ps_machine.Inquiry_fired { txn; epoch } ->
    add_tag b 6;
    add_str b txn;
    add_int b epoch
  | Ps_machine.Recovered { decided; in_doubt } ->
    add_tag b 7;
    add_str_list b decided;
    add_list
      (fun b (txn, vote, writes) ->
        add_str b txn;
        add_bool b vote;
        add_str_list b writes)
      b in_doubt

let read_ps_input r =
  match byte r with
  | 0 ->
    let src = read_str r in
    let msg = read_message r in
    Ps_machine.Deliver { src; msg }
  | 1 ->
    let txn = read_str r in
    let query = read_query r in
    let evaluate = read_bool r in
    let reply_to = read_str r in
    let result = read_exec_result r in
    Ps_machine.Exec_result { txn; query; evaluate; reply_to; result }
  | 2 ->
    let txn = read_str r in
    let proofs = read_proofs r in
    let policies = read_policies r in
    let cont = read_eval_cont r in
    Ps_machine.Evaluated { txn; proofs; policies; cont }
  | 3 ->
    let txn = read_str r in
    let vote = read_bool r in
    Ps_machine.Prepared { txn; vote }
  | 4 ->
    let txn = read_str r in
    let reply_to = read_str r in
    let round = read_int r in
    let read_only = read_bool r in
    let integrity_ok = read_bool r in
    Ps_machine.Read_only_result { txn; reply_to; round; read_only; integrity_ok }
  | 5 ->
    let by = read_opt read_str r in
    let release = read_release r in
    Ps_machine.Release { by; release }
  | 6 ->
    let txn = read_str r in
    let epoch = read_int r in
    Ps_machine.Inquiry_fired { txn; epoch }
  | 7 ->
    let decided = read_list read_str r in
    let in_doubt =
      read_list
        (fun r ->
          let txn = read_str r in
          let vote = read_bool r in
          let writes = read_list read_str r in
          (txn, vote, writes))
        r
    in
    Ps_machine.Recovered { decided; in_doubt }
  | n -> corrupt "PS input: bad tag %d" n

let emit_ps_action b = function
  | Ps_machine.Send { dst; msg; after_proofs; credentials } ->
    add_tag b 0;
    add_str b dst;
    emit_message b msg;
    add_int b after_proofs;
    emit_credentials b credentials
  | Ps_machine.Begin_work { txn; ts } ->
    add_tag b 1;
    add_str b txn;
    add_f64 b ts
  | Ps_machine.Exec { txn; ts; query; evaluate; reply_to; snapshot } ->
    add_tag b 2;
    add_str b txn;
    add_f64 b ts;
    emit_query b query;
    add_bool b evaluate;
    add_str b reply_to;
    add_bool b snapshot
  | Ps_machine.Eval
      { txn; subject; credentials; queries; with_proofs; with_policies; cont } ->
    add_tag b 3;
    add_str b txn;
    add_str b subject;
    emit_credentials b credentials;
    add_list emit_query b queries;
    add_bool b with_proofs;
    add_bool b with_policies;
    emit_eval_cont b cont
  | Ps_machine.Check_read_only { txn; reply_to; round } ->
    add_tag b 4;
    add_str b txn;
    add_str b reply_to;
    add_int b round
  | Ps_machine.Prepare { txn; proof_truth; policy_versions } ->
    add_tag b 5;
    add_str b txn;
    add_bool b proof_truth;
    emit_policy_versions b policy_versions
  | Ps_machine.Apply { txn; commit; forced; writes } ->
    add_tag b 6;
    add_str b txn;
    add_bool b commit;
    add_bool b forced;
    add_list
      (fun b (key, v) ->
        add_str b key;
        add_int b v)
      b writes
  | Ps_machine.Forget { txn } ->
    add_tag b 7;
    add_str b txn
  | Ps_machine.Install { policies; announce } ->
    add_tag b 8;
    emit_policies b policies;
    add_bool b announce
  | Ps_machine.Wait_open { txn; query_id } ->
    add_tag b 9;
    add_str b txn;
    add_str b query_id
  | Ps_machine.Wait_close { txn; outcome; killed_by } ->
    add_tag b 10;
    add_str b txn;
    add_str b outcome;
    add_opt add_str b killed_by
  | Ps_machine.Arm_inquiry { txn; epoch; delay } ->
    add_tag b 11;
    add_str b txn;
    add_int b epoch;
    add_f64 b delay
  | Ps_machine.Mark label ->
    add_tag b 12;
    add_str b label

let read_ps_action r =
  match byte r with
  | 0 ->
    let dst = read_str r in
    let msg = read_message r in
    let after_proofs = read_int r in
    let credentials = read_credentials r in
    Ps_machine.Send { dst; msg; after_proofs; credentials }
  | 1 ->
    let txn = read_str r in
    let ts = read_f64 r in
    Ps_machine.Begin_work { txn; ts }
  | 2 ->
    let txn = read_str r in
    let ts = read_f64 r in
    let query = read_query r in
    let evaluate = read_bool r in
    let reply_to = read_str r in
    let snapshot = read_bool r in
    Ps_machine.Exec { txn; ts; query; evaluate; reply_to; snapshot }
  | 3 ->
    let txn = read_str r in
    let subject = read_str r in
    let credentials = read_credentials r in
    let queries = read_list read_query r in
    let with_proofs = read_bool r in
    let with_policies = read_bool r in
    let cont = read_eval_cont r in
    Ps_machine.Eval
      { txn; subject; credentials; queries; with_proofs; with_policies; cont }
  | 4 ->
    let txn = read_str r in
    let reply_to = read_str r in
    let round = read_int r in
    Ps_machine.Check_read_only { txn; reply_to; round }
  | 5 ->
    let txn = read_str r in
    let proof_truth = read_bool r in
    let policy_versions = read_policy_versions r in
    Ps_machine.Prepare { txn; proof_truth; policy_versions }
  | 6 ->
    let txn = read_str r in
    let commit = read_bool r in
    let forced = read_bool r in
    let writes =
      read_list
        (fun r ->
          let key = read_str r in
          let v = read_int r in
          (key, v))
        r
    in
    Ps_machine.Apply { txn; commit; forced; writes }
  | 7 -> Ps_machine.Forget { txn = read_str r }
  | 8 ->
    let policies = read_policies r in
    let announce = read_bool r in
    Ps_machine.Install { policies; announce }
  | 9 ->
    let txn = read_str r in
    let query_id = read_str r in
    Ps_machine.Wait_open { txn; query_id }
  | 10 ->
    let txn = read_str r in
    let outcome = read_str r in
    let killed_by = read_opt read_str r in
    Ps_machine.Wait_close { txn; outcome; killed_by }
  | 11 ->
    let txn = read_str r in
    let epoch = read_int r in
    let delay = read_f64 r in
    Ps_machine.Arm_inquiry { txn; epoch; delay }
  | 12 -> Ps_machine.Mark (read_str r)
  | n -> corrupt "PS action: bad tag %d" n

(* ------------------------------------------------------------------ *)
(* Self-describing journal payloads                                    *)
(* ------------------------------------------------------------------ *)

type payload =
  | Create_tm of {
      config : Tm_machine.config;
      txn : Transaction.t;
      submitted_at : float;
    }
  | Create_ps of { variant : Tpc.variant; inquiry_timeout : float }
  | Tm_input of Tm_machine.input
  | Tm_action of Tm_machine.action
  | Ps_input of Ps_machine.input
  | Ps_action of Ps_machine.action

(* Kind 0 keeps the v3 frame layout byte-for-byte (and is always used
   under the Fixed policy); kind 6 is the same frame with the timeout
   policy appended after the config, used only when one is set. *)
let emit_create_tm b ~config ~txn ~submitted_at =
  (match config.Tm_machine.timeout_policy with
  | Timeout_policy.Fixed -> add_tag b 0
  | _ -> add_tag b 6);
  emit_config b config;
  (match config.Tm_machine.timeout_policy with
  | Timeout_policy.Fixed -> ()
  | p -> emit_timeout_policy b p);
  emit_transaction b txn;
  add_f64 b submitted_at

let emit_create_ps b ~variant ~inquiry_timeout =
  add_tag b 1;
  emit_variant b variant;
  add_f64 b inquiry_timeout

let emit_tm_input_payload b i =
  add_tag b 2;
  emit_tm_input b i

let emit_tm_action_payload b a =
  add_tag b 3;
  emit_tm_action b a

let emit_ps_input_payload b i =
  add_tag b 4;
  emit_ps_input b i

let emit_ps_action_payload b a =
  add_tag b 5;
  emit_ps_action b a

let emit_payload b = function
  | Create_tm { config; txn; submitted_at } ->
    emit_create_tm b ~config ~txn ~submitted_at
  | Create_ps { variant; inquiry_timeout } ->
    emit_create_ps b ~variant ~inquiry_timeout
  | Tm_input i -> emit_tm_input_payload b i
  | Tm_action a -> emit_tm_action_payload b a
  | Ps_input i -> emit_ps_input_payload b i
  | Ps_action a -> emit_ps_action_payload b a

let read_payload r =
  match byte r with
  | 0 ->
    let config = read_config r in
    let txn = read_transaction r in
    let submitted_at = read_f64 r in
    Create_tm { config; txn; submitted_at }
  | 6 ->
    let config = read_config r in
    let timeout_policy = read_timeout_policy r in
    let txn = read_transaction r in
    let submitted_at = read_f64 r in
    Create_tm
      { config = { config with Tm_machine.timeout_policy }; txn; submitted_at }
  | 1 ->
    let variant = read_variant r in
    let inquiry_timeout = read_f64 r in
    Create_ps { variant; inquiry_timeout }
  | 2 -> Tm_input (read_tm_input r)
  | 3 -> Tm_action (read_tm_action r)
  | 4 -> Ps_input (read_ps_input r)
  | 5 -> Ps_action (read_ps_action r)
  | n -> corrupt "payload: bad kind tag %d" n

let payload_of_string s =
  let r = { s; limit = String.length s; pos = 0 } in
  match read_payload r with
  | p ->
    if r.pos <> r.limit then
      Error
        (Printf.sprintf "payload: %d trailing byte(s) after record"
           (r.limit - r.pos))
    else Ok p
  | exception Corrupt m -> Error m

let payload_to_string p =
  let b = Wbuf.create 128 in
  emit_payload b p;
  Wbuf.contents b

open Json

let payload_to_json = function
  | Create_tm { config; txn; submitted_at } ->
    Obj
      [
        ("kind", String "tm");
        ("config", Codec.config_to_json config);
        ("txn", Codec.transaction_to_json txn);
        ("submitted_at", Float submitted_at);
      ]
  | Create_ps { variant; inquiry_timeout } ->
    Obj
      [
        ("kind", String "ps");
        ("variant", Codec.variant_to_json variant);
        ("inquiry_timeout", Float inquiry_timeout);
      ]
  | Tm_input i -> Codec.tm_input_to_json i
  | Tm_action a -> Codec.tm_action_to_json a
  | Ps_input i -> Codec.ps_input_to_json i
  | Ps_action a -> Codec.ps_action_to_json a

type node_kind = Tm | Ps

let payload_of_json ~dir ~kind j =
  match dir with
  | "create" -> (
    match Result.bind (member "kind" j) to_str with
    | Error e -> Error e
    | Ok "tm" ->
      let* config = Result.bind (member "config" j) Codec.config_of_json in
      let* txn = Result.bind (member "txn" j) Codec.transaction_of_json in
      let* submitted_at = Result.bind (member "submitted_at" j) to_float in
      Ok (Create_tm { config; txn; submitted_at })
    | Ok "ps" ->
      let* variant = Result.bind (member "variant" j) Codec.variant_of_json in
      let* inquiry_timeout =
        Result.bind (member "inquiry_timeout" j) to_float
      in
      Ok (Create_ps { variant; inquiry_timeout })
    | Ok other -> Error (Printf.sprintf "create kind %S unknown" other))
  | "input" -> (
    match kind with
    | Tm -> Result.map (fun i -> Tm_input i) (Codec.tm_input_of_json j)
    | Ps -> Result.map (fun i -> Ps_input i) (Codec.ps_input_of_json j))
  | "action" -> (
    match kind with
    | Tm -> Result.map (fun a -> Tm_action a) (Codec.tm_action_of_json j)
    | Ps -> Result.map (fun a -> Ps_action a) (Codec.ps_action_of_json j))
  | other -> Error (Printf.sprintf "record dir %S unknown" other)
