module Proof = Cloudtx_policy.Proof

type level = View | Global

let name = function View -> "view" | Global -> "global"

let of_string = function
  | "view" -> Some View
  | "global" -> Some Global
  | _ -> None

let pp ppf l = Format.fprintf ppf "%s" (name l)

let phi_consistent proofs =
  let by_domain = Hashtbl.create 4 in
  List.for_all
    (fun (p : Proof.t) ->
      match Hashtbl.find_opt by_domain p.Proof.domain with
      | None ->
        Hashtbl.add by_domain p.Proof.domain p.Proof.policy_version;
        true
      | Some v -> v = p.Proof.policy_version)
    proofs

let psi_consistent ~latest proofs =
  List.for_all
    (fun (p : Proof.t) ->
      match latest p.Proof.domain with
      | Some v -> v = p.Proof.policy_version
      | None -> false)
    proofs

let consistent level ~latest proofs =
  match level with
  | View -> phi_consistent proofs
  | Global -> psi_consistent ~latest proofs
