(** Pure transaction-manager state machine for 2PV / 2PVC (sans-IO).

    One machine instance drives one transaction: it ships queries to their
    servers sequentially, applies the configured proof scheme during
    execution (punctual checks, Incremental Punctual's version check,
    Continuous's per-query 2PV with Update rounds), runs 2PVC (Algorithm 2)
    at commit — or plain 2PC when the scheme already established
    consistency — distributes the decision, collects acks, and answers
    recovering participants' [Inquiry] messages.

    The machine performs no IO: {!handle} maps an {!input} (a delivered
    message or a timer fire) to a list of {!action}s the driver interprets
    against its transport, clock, and observability sinks.  Drivers exist
    for the discrete-event simulator ({!Cloudtx_core.Manager}) and for the
    model-checking harness in [test/test_model_check.ml]; a real-network
    driver only needs to interpret the same vocabulary. *)

type master_mode =
  [ `Once  (** Fetch the master version once per 2PVC run. *)
  | `Every_round
    (** Re-fetch before resolving every round (the paper's default
        accounting: r retrievals). *) ]

type config = {
  scheme : Scheme.t;
  level : Consistency.level;
  master_mode : master_mode;
  max_rounds : int;
      (** Abort with [Rounds_exhausted] when validation has not converged
          after this many voting rounds. *)
  vote_timeout : float;
      (** Delay before {!action.Arm_watchdog} fires; 0 disables timers. *)
  decision_retry : float;
      (** Retransmission period for unacknowledged decisions; 0 disables. *)
  read_only_optimization : bool;
      (** Offer the classic 2PC read-only optimization on non-validating
          commits. *)
  snapshot_reads : bool;
      (** Ask servers to serve read-only queries from an MVCC snapshot. *)
  timeout_policy : Timeout_policy.t;
      (** How timer delays are derived.  {!Timeout_policy.Fixed} (the
          default) uses [vote_timeout]/[decision_retry] verbatim;
          {!Timeout_policy.Adaptive} derives them from journaled
          {!input.Rtt_sample}s with backoff, jitter and budgets. *)
}

val config :
  ?master_mode:master_mode ->
  ?max_rounds:int ->
  ?vote_timeout:float ->
  ?decision_retry:float ->
  ?read_only_optimization:bool ->
  ?snapshot_reads:bool ->
  ?timeout_policy:Timeout_policy.t ->
  Scheme.t ->
  Consistency.level ->
  config

type phase = Executing | Query_validating | Committing | Deciding | Finished

(** Observability hints.  A driver with tracing enabled maps these onto
    span opens/closes; a headless driver ignores them.  The machine emits
    them unconditionally and in the same order the simulator's original
    (pre-split) TM emitted its span operations, so a driver reproduces the
    PR-1 span tree bit-for-bit. *)
type obs =
  | Query_open of { index : int; server : string }
      (** A ["query"] span under the txn span. *)
  | Query_close of { outcome : string }
  | Round_open of {
      parent : [ `Txn | `Phase ];
      span_name : string;  (** ["2pv.round"] or ["2pvc.validate"]. *)
      round : int;
      query : int option;
    }
  | Round_close of { resolution : string option }
      (** Close the open round span, if any. *)
  | Phase_open of { span_name : string; reason : string option }
      (** ["2pvc.prepare"], ["2pvc.commit"] or ["2pvc.abort"]; drivers also
          take phase timestamps here. *)
  | Phase_close
  | Txn_close of { outcome : string; reason : string }

type action =
  | Send of { dst : string; msg : Message.t }
  | Arm_watchdog of { epoch : int; delay : float }
      (** Start a timer; deliver {!input.Watchdog_fired} with this epoch
          when it fires.  Stale epochs are ignored by the machine. *)
  | Arm_retry of { delay : float }
      (** Start a timer; deliver {!input.Retry_fired} when it fires. *)
  | Force_log
      (** The decision record hit the forced log: account one TM log
          force. *)
  | Mark of string  (** Trace marker on the TM's node. *)
  | Obs of obs
  | Finish of { committed : bool; reason : Outcome.reason; commit_rounds : int }
      (** Terminal: the transaction is decided and fully acknowledged.
          The driver builds the {!Outcome.t} (it owns the clock and proof
          counters) and surrenders the machine. *)

type input =
  | Deliver of { src : string; msg : Message.t }
  | Watchdog_fired of { epoch : int }
  | Retry_fired
  | Rtt_sample of { peer : string; ms : float }
      (** A measured round-trip to [peer], fed by the driver (and
          journaled, so replay sees the same estimates).  Emits no
          actions; ignored under {!Timeout_policy.Fixed}. *)

type t

(** [create cfg txn ~submitted_at] — a machine in the initial (Executing)
    state.  Raises [Invalid_argument] if the transaction has no queries.
    The TM's node name is ["tm-" ^ txn.id]; the master's is ["master"]. *)
val create : config -> Cloudtx_txn.Transaction.t -> submitted_at:float -> t

(** Ship the first query.  Call once, before any {!handle}. *)
val start : t -> action list

(** Advance the machine by one input.  Raises [Invalid_argument] on
    messages that are impossible in the current phase (anything a correct
    peer could not have sent). *)
val handle : t -> input -> action list

val name : t -> string
val view : t -> View.t
val decision : t -> bool option
val phase : t -> phase
val submitted_at : t -> float

(** Decision metadata, final once the machine has emitted {!action.Force_log}
    (or {!action.Finish}); drivers persist it as the coordinator's durable
    decision record so a restart can re-drive the decision phase without the
    machine. *)

val reason : t -> Outcome.reason
val commit_rounds : t -> int
val decision_targets : t -> string list
