module Query = Cloudtx_txn.Query
module Tpc = Cloudtx_txn.Tpc
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Credential = Cloudtx_policy.Credential
module Value = Cloudtx_store.Value
module Lock_manager = Cloudtx_store.Lock_manager

type eval_cont =
  | To_execute_reply of {
      reply_to : string;
      query_id : string;
      reads : (string * Value.t option) list;
    }
  | To_validate_reply of { reply_to : string; round : int }
  | To_commit_reply of { reply_to : string; round : int }
  | To_update_reply of {
      reply_to : string;
      round : int;
      reply_with : [ `Validate | `Commit ];
    }
  | To_read_only_reply of { reply_to : string; round : int; vote : bool }

type exec_result =
  | Executed of (string * Value.t option) list
  | Blocked
  | Die

type action =
  | Send of {
      dst : string;
      msg : Message.t;
      after_proofs : int;
      credentials : Credential.t list;
    }
  | Begin_work of { txn : string; ts : float }
  | Exec of {
      txn : string;
      ts : float;
      query : Query.t;
      evaluate : bool;
      reply_to : string;
      snapshot : bool;
    }
  | Eval of {
      txn : string;
      subject : string;
      credentials : Credential.t list;
      queries : Query.t list;
      with_proofs : bool;
      with_policies : bool;
      cont : eval_cont;
    }
  | Check_read_only of { txn : string; reply_to : string; round : int }
  | Prepare of {
      txn : string;
      proof_truth : bool;
      policy_versions : (string * int) list;
    }
  | Apply of {
      txn : string;
      commit : bool;
      forced : bool;
      writes : (string * int) list;
    }
  | Forget of { txn : string }
  | Install of { policies : Policy.t list; announce : bool }
  | Wait_open of { txn : string; query_id : string }
  | Wait_close of { txn : string; outcome : string; killed_by : string option }
  | Arm_inquiry of { txn : string; epoch : int; delay : float }
      (** Start a timer; deliver {!input.Inquiry_fired} with this epoch when
          it fires.  Any later activity on the transaction re-arms with a
          higher epoch, so only a quiet period triggers the inquiry. *)
  | Mark of string

type input =
  | Deliver of { src : string; msg : Message.t }
  | Exec_result of {
      txn : string;
      query : Query.t;
      evaluate : bool;
      reply_to : string;
      result : exec_result;
    }
  | Evaluated of {
      txn : string;
      proofs : Proof.t list;
      policies : Policy.t list;
      cont : eval_cont;
    }
  | Prepared of { txn : string; vote : bool }
  | Read_only_result of {
      txn : string;
      reply_to : string;
      round : int;
      read_only : bool;
      integrity_ok : bool;
    }
  | Release of { by : string option; release : Lock_manager.release }
  | Inquiry_fired of { txn : string; epoch : int }
  | Recovered of {
      decided : string list;
          (** Transactions whose decision record survived in the WAL. *)
      in_doubt : (string * bool * string list) list;
          (** Prepared-but-undecided transactions with their recorded
              integrity vote and the keys their WAL prepared record
              writes; the machine re-seeds a minimal state and runs the
              paper's Inquiry termination protocol. *)
    }

type pending = { p_query : Query.t; p_evaluate : bool; p_reply_to : string }

type after_prepare = {
  ap_reply_to : string;
  ap_round : int;
  ap_proofs : Proof.t list;
  ap_policies : Policy.t list;
}

type txn_state = {
  ts : float;
  subject : string;
  credentials : Credential.t list;
  mutable queries : Query.t list; (* executed here, oldest first *)
  mutable integrity : bool option; (* the vote, once prepared *)
  mutable pending : pending option;
  mutable after_prepare : after_prepare option;
  mutable inq_epoch : int; (* guards stale inquiry timers *)
  mutable rec_writes : string list;
      (* write keys recovered from the WAL prepared record; the executed
         queries themselves did not survive the crash *)
}

type t = {
  name : string;
  variant : Tpc.variant;
  inquiry_timeout : float;
  txns : (string, txn_state) Hashtbl.t;
  decided : (string, unit) Hashtbl.t;
      (* volatile memory of settled transactions, so re-delivered decisions
         are re-acked without re-applying; wiped by [Crashed], re-seeded
         from the WAL by [Recovered] *)
  key_ids : (string, int) Hashtbl.t;
      (* key-string interning for the hot per-key tables below: each key
         hashes once ever, then travels as an int.  Grow-only — an
         interned id is a stable identity, so it survives crash resets. *)
  commit_versions : (int, int) Hashtbl.t;
      (* per-key (by interned id) count of commits applied here; stamps
         each committed write with its position in this store's version
         order.  Wiped by [Crashed] like all volatile state, so versions
         restart per crash epoch — the journal's repeated create record
         marks the epoch. *)
  mutable out : action list; (* reversed accumulator for the current step *)
}

let create ~name ?(variant = Tpc.Basic) ?(inquiry_timeout = 0.) () =
  {
    name;
    variant;
    inquiry_timeout;
    txns = Hashtbl.create 16;
    decided = Hashtbl.create 16;
    key_ids = Hashtbl.create 64;
    commit_versions = Hashtbl.create 64;
    out = [];
  }

let name t = t.name

let queries_of t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> st.queries
  | None -> []

let reset t =
  Hashtbl.reset t.txns;
  Hashtbl.reset t.decided;
  (* [key_ids] deliberately survives: interned ids are identities, not
     state; only the per-epoch counters restart. *)
  Hashtbl.reset t.commit_versions

let key_id t key =
  match Hashtbl.find_opt t.key_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length t.key_ids in
    Hashtbl.add t.key_ids key id;
    id

let emit t a = t.out <- a :: t.out
let mark t label = emit t (Mark label)

(* Any activity on a live transaction pushes its inquiry deadline out; the
   timer only fires after [inquiry_timeout] of silence. *)
let touch t st ~txn =
  if t.inquiry_timeout > 0. then begin
    st.inq_epoch <- st.inq_epoch + 1;
    emit t (Arm_inquiry { txn; epoch = st.inq_epoch; delay = t.inquiry_timeout })
  end

let send t ~st ~after_proofs ~dst msg =
  emit t
    (Send
       {
         dst;
         msg;
         after_proofs;
         credentials = (match st with Some s -> s.credentials | None -> []);
       })

let state t ~txn ~ts ~subject ~credentials =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> st
  | None ->
    let st =
      {
        ts;
        subject;
        credentials;
        queries = [];
        integrity = None;
        pending = None;
        after_prepare = None;
        inq_epoch = 0;
        rec_writes = [];
      }
    in
    Hashtbl.add t.txns txn st;
    emit t (Begin_work { txn; ts });
    st

(* Distinct keys [st]'s workspace wrote here: the executed queries' write
   sets plus any WAL-recovered keys (the queries are lost on crash). *)
let write_keys st =
  List.sort_uniq String.compare
    (st.rec_writes @ List.concat_map Query.write_set st.queries)

(* Stamp each key this commit installs with its position in the store's
   per-key version order (1, 2, ... per crash epoch). *)
let commit_writes t st =
  List.map
    (fun key ->
      let id = key_id t key in
      let v =
        1 + Option.value ~default:0 (Hashtbl.find_opt t.commit_versions id)
      in
      Hashtbl.replace t.commit_versions id v;
      (key, v))
    (write_keys st)

let eval t ~txn st ~queries ~with_proofs ~with_policies cont =
  emit t
    (Eval
       {
         txn;
         subject = st.subject;
         credentials = st.credentials;
         queries;
         with_proofs;
         with_policies;
         cont;
       })

let versions_of policies =
  List.map (fun (p : Policy.t) -> (p.Policy.domain, p.Policy.version)) policies

let on_exec_result t ~txn ~(query : Query.t) ~evaluate ~reply_to st result =
  match result with
  | Blocked ->
    emit t (Wait_open { txn; query_id = query.Query.id });
    st.pending <- Some { p_query = query; p_evaluate = evaluate; p_reply_to = reply_to };
    mark t (Printf.sprintf "blocked:%s:%s" txn query.Query.id)
  | Die ->
    st.pending <- None;
    send t ~st:(Some st) ~after_proofs:0 ~dst:reply_to
      (Message.Execute_reply
         { txn; query_id = query.Query.id; outcome = Message.Exec_die })
  | Executed reads ->
    st.pending <- None;
    st.queries <- st.queries @ [ query ];
    if evaluate then
      eval t ~txn st ~queries:[ query ] ~with_proofs:true ~with_policies:false
        (To_execute_reply { reply_to; query_id = query.Query.id; reads })
    else
      send t ~st:(Some st) ~after_proofs:0 ~dst:reply_to
        (Message.Execute_reply
           {
             txn;
             query_id = query.Query.id;
             outcome = Message.Executed { reads; proof = None };
           })

let on_evaluated t ~txn ~proofs ~policies cont =
  let st txn =
    match Hashtbl.find_opt t.txns txn with
    | Some st -> st
    | None -> invalid_arg (Printf.sprintf "%s: evaluation for unknown %s" t.name txn)
  in
  match cont with
  | To_execute_reply { reply_to; query_id; reads } ->
    let proof = match proofs with p :: _ -> Some p | [] -> None in
    send t ~st:(Some (st txn)) ~after_proofs:1 ~dst:reply_to
      (Message.Execute_reply
         { txn; query_id; outcome = Message.Executed { reads; proof } })
  | To_validate_reply { reply_to; round } ->
    send t ~st:(Some (st txn)) ~after_proofs:(List.length proofs) ~dst:reply_to
      (Message.Validate_reply { txn; round; proofs; policies })
  | To_commit_reply { reply_to; round } -> (
    let st = st txn in
    match st.integrity with
    | Some vote ->
      send t ~st:(Some st) ~after_proofs:(List.length proofs) ~dst:reply_to
        (Message.Commit_reply
           { txn; round; integrity = vote; read_only = false; proofs; policies })
    | None ->
      let truth = List.for_all (fun (p : Proof.t) -> p.Proof.result) proofs in
      mark t (Printf.sprintf "log_force:prepared:%s" txn);
      st.after_prepare <-
        Some
          { ap_reply_to = reply_to; ap_round = round; ap_proofs = proofs;
            ap_policies = policies };
      emit t
        (Prepare { txn; proof_truth = truth; policy_versions = versions_of policies }))
  | To_update_reply { reply_to; round; reply_with } -> (
    let st = st txn in
    match reply_with with
    | `Validate ->
      send t ~st:(Some st) ~after_proofs:(List.length proofs) ~dst:reply_to
        (Message.Validate_reply { txn; round; proofs; policies })
    | `Commit ->
      let vote =
        match st.integrity with
        | Some vote -> vote
        | None -> invalid_arg "Policy_update(`Commit) before prepare"
      in
      send t ~st:(Some st) ~after_proofs:(List.length proofs) ~dst:reply_to
        (Message.Commit_reply
           { txn; round; integrity = vote; read_only = false; proofs; policies }))
  | To_read_only_reply { reply_to; round; vote } ->
    (* Read-only fast path: vote READ, release immediately, skip the
       decision phase and all forced logging. *)
    let st0 = st txn in
    send t ~st:(Some st0) ~after_proofs:0 ~dst:reply_to
      (Message.Commit_reply
         { txn; round; integrity = vote; read_only = true; proofs = []; policies });
    mark t (Printf.sprintf "read_only_release:%s" txn);
    emit t (Forget { txn });
    Hashtbl.remove t.txns txn

let on_prepared t ~txn ~vote =
  match Hashtbl.find_opt t.txns txn with
  | None -> invalid_arg (Printf.sprintf "%s: prepared for unknown %s" t.name txn)
  | Some st -> (
    st.integrity <- Some vote;
    match st.after_prepare with
    | None -> ()
    | Some { ap_reply_to; ap_round; ap_proofs; ap_policies } ->
      st.after_prepare <- None;
      send t ~st:(Some st) ~after_proofs:(List.length ap_proofs) ~dst:ap_reply_to
        (Message.Commit_reply
           {
             txn;
             round = ap_round;
             integrity = vote;
             read_only = false;
             proofs = ap_proofs;
             policies = ap_policies;
           }))

(* Lock releases may unblock parked queries of other transactions — and
   wait-die re-checks at promotion time may kill parked waiters, whose
   TMs must be told to abort. *)
let on_release t ~by (release : Lock_manager.release) =
  let killed = Hashtbl.create 4 in
  List.iter
    (fun (txn, _key) ->
      if not (Hashtbl.mem killed txn) then begin
        Hashtbl.add killed txn ();
        match Hashtbl.find_opt t.txns txn with
        | Some ({ pending = Some p; _ } as st) ->
          st.pending <- None;
          emit t (Wait_close { txn; outcome = "die"; killed_by = by });
          send t ~st:(Some st) ~after_proofs:0 ~dst:p.p_reply_to
            (Message.Execute_reply
               { txn; query_id = p.p_query.Query.id; outcome = Message.Exec_die })
        | Some { pending = None; _ } | None -> ()
      end)
    release.Lock_manager.killed;
  let retried = Hashtbl.create 4 in
  List.iter
    (fun (txn, _key, _mode) ->
      if (not (Hashtbl.mem retried txn)) && not (Hashtbl.mem killed txn) then begin
        Hashtbl.add retried txn ();
        match Hashtbl.find_opt t.txns txn with
        | Some ({ pending = Some p; _ } as st) ->
          emit t (Wait_close { txn; outcome = "granted"; killed_by = None });
          emit t
            (Exec
               {
                 txn;
                 ts = st.ts;
                 query = p.p_query;
                 evaluate = p.p_evaluate;
                 reply_to = p.p_reply_to;
                 snapshot = false;
               })
        | Some { pending = None; _ } | None -> ()
      end)
    release.Lock_manager.granted

let dispatch t ~src msg =
  match msg with
  | Message.Execute { txn; ts; query; subject; credentials; evaluate_proof; snapshot }
    ->
    if Hashtbl.mem t.decided txn then
      (* Re-delivered query for a transaction this node already settled
         (e.g. unilaterally aborted): don't resurrect a workspace. *)
      mark t (Printf.sprintf "stale:execute:%s" txn)
    else begin
      mark t (Printf.sprintf "query_start:%s:%s" txn query.Query.id);
      let st = state t ~txn ~ts ~subject ~credentials in
      touch t st ~txn;
      (* The MVCC fast path never blocks; lock-based execution reports its
         outcome back as an {!input.Exec_result}. *)
      let snapshot = snapshot && query.Query.writes = [] in
      emit t
        (Exec { txn; ts = st.ts; query; evaluate = evaluate_proof; reply_to = src; snapshot })
    end
  | Message.Validate_request { txn; round } -> (
    match Hashtbl.find_opt t.txns txn with
    | None ->
      (* Unknown (crashed away, or settled): stay silent, the TM's vote
         timeout owns this round. *)
      mark t (Printf.sprintf "stale:validate-request:%s" txn)
    | Some st ->
      touch t st ~txn;
      eval t ~txn st ~queries:st.queries ~with_proofs:true ~with_policies:true
        (To_validate_reply { reply_to = src; round }))
  | Message.Commit_request { txn; round; validate; allow_read_only; expected }
    -> (
    match Hashtbl.find_opt t.txns txn with
    | None ->
      (* No workspace here: this node cannot prepare, so vote NO rather
         than stay silent — the coordinator decides without waiting for
         its timeout. *)
      mark t (Printf.sprintf "no_workspace:%s" txn);
      send t ~st:None ~after_proofs:0 ~dst:src
        (Message.Commit_reply
           {
             txn;
             round;
             integrity = false;
             read_only = false;
             proofs = [];
             policies = [];
           })
    | Some st ->
      touch t st ~txn;
      if st.integrity = None && List.length st.queries <> expected then begin
        (* Partial workspace: a crash wiped some of this transaction's
           queries and later re-deliveries rebuilt only a subset.
           Preparing would silently commit a partial write set. *)
        mark t
          (Printf.sprintf "partial_workspace:%s:%d/%d" txn
             (List.length st.queries) expected);
        send t ~st:(Some st) ~after_proofs:0 ~dst:src
          (Message.Commit_reply
             {
               txn;
               round;
               integrity = false;
               read_only = false;
               proofs = [];
               policies = [];
             })
      end
      else if allow_read_only && not validate then
        emit t (Check_read_only { txn; reply_to = src; round })
      else
        (* Without validation: no re-evaluation, but still report the
           versions in force, which the prepared record must carry. *)
        eval t ~txn st ~queries:st.queries ~with_proofs:validate
          ~with_policies:true
          (To_commit_reply { reply_to = src; round }))
  | Message.Policy_update { txn; round; policies; reply_with } -> (
    emit t (Install { policies; announce = false });
    match Hashtbl.find_opt t.txns txn with
    | None -> mark t (Printf.sprintf "stale:policy-update:%s" txn)
    | Some st ->
      touch t st ~txn;
      eval t ~txn st ~queries:st.queries ~with_proofs:true ~with_policies:true
        (To_update_reply { reply_to = src; round; reply_with }))
  | Message.Decision { txn; commit } -> (
    match Hashtbl.find_opt t.txns txn with
    | Some st ->
      let forced =
        match (t.variant, commit) with
        | Tpc.Basic, _ -> true
        | Tpc.Presumed_abort, commit -> commit
        | Tpc.Presumed_commit, commit -> not commit
      in
      if forced then mark t (Printf.sprintf "log_force:decision:%s" txn);
      let writes = if commit then commit_writes t st else [] in
      emit t (Apply { txn; commit; forced; writes });
      Hashtbl.remove t.txns txn;
      Hashtbl.replace t.decided txn ();
      send t ~st:None ~after_proofs:0 ~dst:src (Message.Decision_ack { txn })
    | None ->
      (* Already applied (retransmission or duplicate), or no trace at all
         (an abort for a transaction the crash already erased).  Either
         way the ack — not a second apply — is what at-least-once delivery
         needs. *)
      mark t
        (Printf.sprintf "%s:%s"
           (if Hashtbl.mem t.decided txn then "dup:decision" else
              "decision:no-trace")
           txn);
      send t ~st:None ~after_proofs:0 ~dst:src (Message.Decision_ack { txn }))
  | Message.Propagate_policy { policy } ->
    emit t (Install { policies = [ policy ]; announce = true })
  | Message.Execute_reply _ | Message.Validate_reply _ | Message.Commit_reply _
  | Message.Decision_ack _ | Message.Master_version_request _
  | Message.Master_version_reply _ | Message.Inquiry _ ->
    invalid_arg (Printf.sprintf "%s: unexpected %s" t.name (Message.label msg))

let step t f =
  t.out <- [];
  f t;
  let actions = List.rev t.out in
  t.out <- [];
  actions

(* Fire only if the transaction is still live and nothing touched it since
   the timer was armed.  A prepared (in-doubt) participant probes the
   coordinator; one that never voted may abort unilaterally — it has made
   no promise, and a later [Commit_request] will find no workspace and
   vote NO. *)
let on_inquiry_fired t ~txn ~epoch =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()
  | Some st ->
    if st.inq_epoch = epoch then begin
      match st.integrity with
      | Some _ ->
        mark t (Printf.sprintf "inquiry:%s" txn);
        send t ~st:(Some st) ~after_proofs:0 ~dst:("tm-" ^ txn)
          (Message.Inquiry { txn });
        touch t st ~txn
      | None ->
        (match st.pending with
        | Some _ ->
          st.pending <- None;
          emit t (Wait_close { txn; outcome = "abort"; killed_by = None })
        | None -> ());
        mark t (Printf.sprintf "unilateral_abort:%s" txn);
        emit t (Apply { txn; commit = false; forced = false; writes = [] });
        Hashtbl.remove t.txns txn;
        Hashtbl.replace t.decided txn ()
    end

let on_recovered t ~decided ~in_doubt =
  List.iter (fun txn -> Hashtbl.replace t.decided txn ()) decided;
  List.iter
    (fun (txn, vote, writes) ->
      if not (Hashtbl.mem t.txns txn) then begin
        (* Minimal re-seeded state: the driver rebuilt the workspace from
           the WAL's prepared record; subject/credentials are gone but no
           further proof evaluation happens past prepare. *)
        let st =
          {
            ts = 0.;
            subject = "";
            credentials = [];
            queries = [];
            integrity = Some vote;
            pending = None;
            after_prepare = None;
            inq_epoch = 0;
            rec_writes = List.sort_uniq String.compare writes;
          }
        in
        Hashtbl.add t.txns txn st;
        mark t (Printf.sprintf "in_doubt:%s" txn);
        send t ~st:(Some st) ~after_proofs:0 ~dst:("tm-" ^ txn)
          (Message.Inquiry { txn });
        touch t st ~txn
      end)
    in_doubt

let handle t input =
  step t (fun t ->
      match input with
      | Deliver { src; msg } -> dispatch t ~src msg
      | Exec_result { txn; query; evaluate; reply_to; result } -> (
        match Hashtbl.find_opt t.txns txn with
        | None ->
          (* The transaction settled (unilateral abort, decision) while
             this execution was in flight. *)
          mark t (Printf.sprintf "stale:exec-result:%s" txn)
        | Some st ->
          touch t st ~txn;
          on_exec_result t ~txn ~query ~evaluate ~reply_to st result)
      | Evaluated { txn; proofs; policies; cont } -> (
        match Hashtbl.find_opt t.txns txn with
        | None -> mark t (Printf.sprintf "stale:evaluated:%s" txn)
        | Some st ->
          touch t st ~txn;
          on_evaluated t ~txn ~proofs ~policies cont)
      | Prepared { txn; vote } -> (
        match Hashtbl.find_opt t.txns txn with
        | None -> mark t (Printf.sprintf "stale:prepared:%s" txn)
        | Some st ->
          touch t st ~txn;
          on_prepared t ~txn ~vote)
      | Read_only_result { txn; reply_to; round; read_only; integrity_ok } -> (
        match Hashtbl.find_opt t.txns txn with
        | None -> mark t (Printf.sprintf "stale:read-only-result:%s" txn)
        | Some st ->
          touch t st ~txn;
          if read_only then
            eval t ~txn st ~queries:st.queries ~with_proofs:false
              ~with_policies:true
              (To_read_only_reply { reply_to; round; vote = integrity_ok })
          else
            eval t ~txn st ~queries:st.queries ~with_proofs:false
              ~with_policies:true
              (To_commit_reply { reply_to; round }))
      | Release { by; release } -> on_release t ~by release
      | Inquiry_fired { txn; epoch } -> on_inquiry_fired t ~txn ~epoch
      | Recovered { decided; in_doubt } -> on_recovered t ~decided ~in_doubt)
