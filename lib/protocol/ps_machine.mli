(** Pure participant (data-server) state machine for 2PV / 2PVC (sans-IO).

    The machine owns the protocol decisions the paper requires of a
    participant — what to evaluate, when to force-log the prepare record,
    how to vote, when a parked query retries or dies — while everything
    that touches a store, a lock table, a policy replica or a clock is
    expressed as an {!action} the driver interprets and (where needed)
    answers with a follow-up {!input}:

    + {!action.Exec} → {!input.Exec_result} (workspace execution outcome);
    + {!action.Eval} → {!input.Evaluated} (proof evaluations + policies in
      force, with the continuation echoed back verbatim);
    + {!action.Prepare} → {!input.Prepared} (the integrity vote, after the
      prepared record was force-logged);
    + {!action.Check_read_only} → {!input.Read_only_result};
    + {!action.Apply} / {!action.Forget} release locks; the driver feeds
      the resulting {!Cloudtx_store.Lock_manager.release} back as a
      {!input.Release} {e after} the current action list is fully
      interpreted, which keeps decision acks ahead of retried queries on
      the wire. *)

type eval_cont =
  | To_execute_reply of {
      reply_to : string;
      query_id : string;
      reads : (string * Cloudtx_store.Value.t option) list;
    }
  | To_validate_reply of { reply_to : string; round : int }
  | To_commit_reply of { reply_to : string; round : int }
  | To_update_reply of {
      reply_to : string;
      round : int;
      reply_with : [ `Validate | `Commit ];
    }
  | To_read_only_reply of { reply_to : string; round : int; vote : bool }

type exec_result =
  | Executed of (string * Cloudtx_store.Value.t option) list
  | Blocked
  | Die

type action =
  | Send of {
      dst : string;
      msg : Message.t;
      after_proofs : int;
      credentials : Cloudtx_policy.Credential.t list;
    }
      (** Send [msg], delayed by the status-check cost of [after_proofs]
          proof evaluations over [credentials] (zero = immediate). *)
  | Begin_work of { txn : string; ts : float }
  | Exec of {
      txn : string;
      ts : float;
      query : Cloudtx_txn.Query.t;
      evaluate : bool;
      reply_to : string;
      snapshot : bool;
    }
      (** Run [query] in [txn]'s workspace ([snapshot]: MVCC read as of
          [ts], never blocks) and answer with {!input.Exec_result},
          echoing [query], [evaluate] and [reply_to]. *)
  | Eval of {
      txn : string;
      subject : string;
      credentials : Cloudtx_policy.Credential.t list;
      queries : Cloudtx_txn.Query.t list;
      with_proofs : bool;
      with_policies : bool;
      cont : eval_cont;
    }
      (** Evaluate proofs for [queries] (when [with_proofs]) and collect
          the distinct policies in force (when [with_policies]); answer
          with {!input.Evaluated}, echoing [cont]. *)
  | Check_read_only of { txn : string; reply_to : string; round : int }
  | Prepare of {
      txn : string;
      proof_truth : bool;
      policy_versions : (string * int) list;
    }
      (** Force-log the prepared record; answer with {!input.Prepared}. *)
  | Apply of {
      txn : string;
      commit : bool;
      forced : bool;
      writes : (string * int) list;
    }
      (** Commit/abort the workspace, finish the transaction, release its
          locks.  On commit, [writes] stamps each distinct key the
          transaction wrote here with its position in this store's
          per-key version order (1, 2, ... — machine-computed, so replay
          reproduces it byte-for-byte; counters restart with each crash
          epoch).  Aborts carry [[]]. *)
  | Forget of { txn : string }
      (** Read-only release: drop the workspace without a decision. *)
  | Install of { policies : Cloudtx_policy.Policy.t list; announce : bool }
      (** Install policies into the replica ([announce]: emit the
          [policy_installed] marker for fresh installs). *)
  | Wait_open of { txn : string; query_id : string }
      (** The transaction parked on a lock: open its [lock.wait] span. *)
  | Wait_close of { txn : string; outcome : string; killed_by : string option }
      (** The park resolved ([outcome] = ["granted"] | ["die"] | ["abort"];
          [killed_by] is the transaction whose release triggered a
          wait-die kill — drivers link the victim's [lock.wait] span to
          the killer's [txn] span with it). *)
  | Arm_inquiry of { txn : string; epoch : int; delay : float }
      (** Start a timer; deliver {!input.Inquiry_fired} with this epoch
          when it fires.  Any later activity on the transaction re-arms
          with a higher epoch (stale epochs are ignored), so the inquiry
          only triggers after [delay] of coordinator silence. *)
  | Mark of string

type input =
  | Deliver of { src : string; msg : Message.t }
  | Exec_result of {
      txn : string;
      query : Cloudtx_txn.Query.t;
      evaluate : bool;
      reply_to : string;
      result : exec_result;
    }
  | Evaluated of {
      txn : string;
      proofs : Cloudtx_policy.Proof.t list;
      policies : Cloudtx_policy.Policy.t list;
      cont : eval_cont;
    }
  | Prepared of { txn : string; vote : bool }
  | Read_only_result of {
      txn : string;
      reply_to : string;
      round : int;
      read_only : bool;
      integrity_ok : bool;
    }
  | Release of {
      by : string option;
      release : Cloudtx_store.Lock_manager.release;
    }
  | Inquiry_fired of { txn : string; epoch : int }
      (** An {!action.Arm_inquiry} timer fired.  If the transaction is
          still live and untouched since: a prepared participant sends the
          paper's [Inquiry] to its coordinator (and re-arms); one that
          never voted aborts unilaterally — it made no promise, and a
          later [Commit_request] will find no workspace and vote NO. *)
  | Recovered of {
      decided : string list;
      in_doubt : (string * bool * string list) list;
    }
      (** Restart: re-seed the decided-transaction memory and the in-doubt
          transactions (with their WAL-recorded integrity votes and the
          keys their WAL prepared records write — the executed queries are
          gone) from the recovered log; sends an [Inquiry] per in-doubt
          transaction. *)

type t

(** [create ~name ()] — [name] is the server's node name; [variant]
    selects the decision-logging discipline (default
    {!Cloudtx_txn.Tpc.Basic}); [inquiry_timeout] > 0 arms a per-transaction
    inactivity timer driving the termination protocol (default 0:
    disabled, the paper's reliable-coordinator assumption). *)
val create :
  name:string ->
  ?variant:Cloudtx_txn.Tpc.variant ->
  ?inquiry_timeout:float ->
  unit ->
  t

(** Advance the machine by one input.  Raises [Invalid_argument] on
    messages a correct peer could not have sent. *)
val handle : t -> input -> action list

val name : t -> string

(** Queries executed here for [txn], oldest first. *)
val queries_of : t -> txn:string -> Cloudtx_txn.Query.t list

(** Fail-stop crash: wipe all per-transaction protocol state. *)
val reset : t -> unit
