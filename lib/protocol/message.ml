module Query = Cloudtx_txn.Query
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Credential = Cloudtx_policy.Credential
module Value = Cloudtx_store.Value

type exec_outcome =
  | Executed of {
      reads : (string * Value.t option) list;
      proof : Proof.t option;
    }
  | Exec_die

type t =
  | Execute of {
      txn : string;
      ts : float;
      query : Query.t;
      subject : string;
      credentials : Credential.t list;
      evaluate_proof : bool;
      snapshot : bool;
    }
  | Execute_reply of { txn : string; query_id : string; outcome : exec_outcome }
  | Validate_request of { txn : string; round : int }
  | Validate_reply of {
      txn : string;
      round : int;
      proofs : Proof.t list;
      policies : Policy.t list;
    }
  | Commit_request of {
      txn : string;
      round : int;
      validate : bool;
      allow_read_only : bool;
      expected : int;
          (** Queries the TM sent to this participant: a participant whose
              workspace holds fewer (it crashed mid-transaction and lost
              the rest) must vote NO rather than prepare a partial write
              set. *)
    }
  | Commit_reply of {
      txn : string;
      round : int;
      integrity : bool;
      read_only : bool;
      proofs : Proof.t list;
      policies : Policy.t list;
    }
  | Policy_update of {
      txn : string;
      round : int;
      policies : Policy.t list;
      reply_with : [ `Validate | `Commit ];
    }
  | Decision of { txn : string; commit : bool }
  | Decision_ack of { txn : string }
  | Master_version_request of { txn : string }
  | Master_version_reply of { txn : string; policies : Policy.t list }
  | Propagate_policy of { policy : Policy.t }
  | Inquiry of { txn : string }

let label = function
  | Execute _ -> "execute"
  | Execute_reply _ -> "execute-reply"
  | Validate_request _ -> "validate-request"
  | Validate_reply _ -> "validate-reply"
  | Commit_request _ -> "commit-request"
  | Commit_reply _ -> "commit-reply"
  | Policy_update _ -> "policy-update"
  | Decision { commit; _ } -> if commit then "decision-commit" else "decision-abort"
  | Decision_ack _ -> "decision-ack"
  | Master_version_request _ -> "master-version-request"
  | Master_version_reply _ -> "master-version-reply"
  | Propagate_policy _ -> "propagate-policy"
  | Inquiry _ -> "inquiry"

let protocol_labels =
  [
    "validate-request";
    "validate-reply";
    "commit-request";
    "commit-reply";
    "policy-update";
    "decision-commit";
    "decision-abort";
    "decision-ack";
    "master-version-reply";
  ]

let txn_of = function
  | Execute { txn; _ }
  | Execute_reply { txn; _ }
  | Validate_request { txn; _ }
  | Validate_reply { txn; _ }
  | Commit_request { txn; _ }
  | Commit_reply { txn; _ }
  | Policy_update { txn; _ }
  | Decision { txn; _ }
  | Decision_ack { txn; _ }
  | Master_version_request { txn; _ }
  | Master_version_reply { txn; _ }
  | Inquiry { txn } -> Some txn
  | Propagate_policy _ -> None
