(** Deterministic fault campaigns over the scheme × consistency grid.

    A campaign sweeps seeded random {!Plan}s across cells of the
    {!Cloudtx_core.Scheme} × {!Cloudtx_core.Consistency} grid.  Each plan
    runs three staggered multi-server write transactions under the
    simulator with the flight recorder enabled, injects the plan's
    faults, heals everything after the fault horizon, runs to quiescence
    and then asserts:

    {b Liveness} — every transaction reached a terminal outcome once the
    faults ended (timers, retransmission and the Inquiry termination
    protocol must unwedge every crash/partition the plan produced).

    {b Safety} — at every terminal state: participants' logged decisions
    agree with the coordinator's outcome (AC1); a commit record is
    preceded by that node's forced prepare (AC2); no participant is left
    in doubt after heals; committed transactions pass
    {!Cloudtx_core.Trusted.check} for the cell's scheme and level; and
    the run's journal replays clean under {!Cloudtx_core.Audit}.

    Determinism: a plan's seed drives both plan generation and the
    simulated run, so identical seeds give identical verdicts. *)

type cell = {
  scheme : Cloudtx_core.Scheme.t;
  level : Cloudtx_core.Consistency.level;
}

val cell_name : cell -> string

(** Parses ["scheme:level"], e.g. ["deferred:view"]. *)
val cell_of_string : string -> (cell, string) result

(** All 8 scheme × level cells. *)
val all_cells : cell list

type failure = {
  what : string;  (** The violated invariant, human-readable. *)
  journal : string list;  (** The failing run's flight-recorder lines. *)
}

(** [run_plan cell plan] — one plan in one cell.  [dedup:false] disables
    driver-side idempotent delivery (the chaos escape hatch);
    [certify:true] adds a fourth assertion layer after
    liveness/safety/audit: the run's journal must certify serializable
    ({!Cloudtx_core.Certify});
    [journal_format] selects the flight recorder's encoding (default
    JSONL) — audit/certify assertions and [failure.journal] lines are
    identical either way, because binary journals decode to the same
    canonical records;
    [journal_path] additionally writes the journal through to a file;
    [metrics_path] writes a windowed-metrics snapshot JSONL
    ({!Cloudtx_obs.Timeseries.to_jsonl}, window width [metrics_width_ms])
    built live from the run's journal stream — written whatever the
    verdict, so a failing cell still yields a flight deck;
    [variant] selects the participants' decision-logging discipline;
    [policy] is the TM timeout policy (default [Fixed], which keeps
    journals byte-identical to pre-policy captures).  Under [Adaptive] a
    fifth assertion layer checks graceful degradation: no TM fires more
    decision retries than the policy's budget allows.
    [resilience] arms per-server circuit breakers and admission control
    ({!Cloudtx_core.Resilience}) on every submit, and adds a sixth
    layer: after the heal plus one breaker cooldown, a probe
    transaction must complete without any timeout-shaped or fast-fail
    reason, every breaker must be [Closed] again, and the in-flight
    count must be zero. *)
val run_plan :
  ?dedup:bool ->
  ?certify:bool ->
  ?variant:Cloudtx_txn.Tpc.variant ->
  ?journal_format:Cloudtx_obs.Journal.format ->
  ?journal_path:string ->
  ?metrics_path:string ->
  ?metrics_width_ms:float ->
  ?policy:Cloudtx_protocol.Timeout_policy.t ->
  ?resilience:Cloudtx_core.Resilience.config ->
  cell ->
  Plan.t ->
  (unit, failure) result

type case = { cell : cell; plan : Plan.t; failure : failure }
type verdict = { plans_run : int; failures : case list }

(** [run ~plans ()] sweeps [plans] random plans (seeds [base_seed],
    [base_seed+1], …) across [cells] (default: all 8).
    [journal_path]/[metrics_path] are passed to every {!run_plan} — each
    run overwrites the same file, so they are mainly useful for
    single-run sweeps ([plans = 1] with one cell).  [horizon] scales
    every generated plan's fault windows ({!Plan.random}); [policy] and
    [resilience] are passed to every {!run_plan}. *)
val run :
  ?dedup:bool ->
  ?certify:bool ->
  ?variant:Cloudtx_txn.Tpc.variant ->
  ?journal_format:Cloudtx_obs.Journal.format ->
  ?journal_path:string ->
  ?metrics_path:string ->
  ?metrics_width_ms:float ->
  ?policy:Cloudtx_protocol.Timeout_policy.t ->
  ?resilience:Cloudtx_core.Resilience.config ->
  ?horizon:float ->
  ?cells:cell list ->
  ?base_seed:int64 ->
  plans:int ->
  unit ->
  verdict
