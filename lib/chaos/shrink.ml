(* Greedy counterexample shrinking: repeatedly delete fault ops, then
   weaken the survivors, re-running the (deterministic) failing predicate
   on every candidate.  The result is 1-minimal under deletion: removing
   any single remaining op makes the failure disappear. *)

let drop_nth ops i = List.filteri (fun j _ -> j <> i) ops

(* Candidate simplifications of one op, most aggressive first.  Each must
   strictly shrink some component so weakening terminates. *)
let weaken (op : Plan.op) =
  let halve x = Float.round (x /. 2. *. 10.) /. 10. in
  match op with
  | Plan.Crash_server { server; at; restart_after } when restart_after > 2. ->
    [ Plan.Crash_server { server; at; restart_after = halve restart_after } ]
  | Plan.Crash_coordinator { txn; at; restart_after } when restart_after > 2. ->
    [ Plan.Crash_coordinator { txn; at; restart_after = halve restart_after } ]
  | Plan.Isolate_coordinator { txn; at; heal_after } when heal_after > 2. ->
    [ Plan.Isolate_coordinator { txn; at; heal_after = halve heal_after } ]
  | Plan.Partition { a; b; at; heal_after } when heal_after > 2. ->
    [ Plan.Partition { a; b; at; heal_after = halve heal_after } ]
  | Plan.Drop_burst { p; at; duration } when duration > 2. || p > 0.15 ->
    [
      Plan.Drop_burst { p; at; duration = halve duration };
      Plan.Drop_burst { p = halve p; at; duration };
    ]
  | Plan.Duplicate_burst { p; at; duration } when duration > 2. || p > 0.15 ->
    [
      Plan.Duplicate_burst { p; at; duration = halve duration };
      Plan.Duplicate_burst { p = halve p; at; duration };
    ]
  | Plan.Reorder_burst { jitter; at; duration } when duration > 2. || jitter > 1.
    ->
    [
      Plan.Reorder_burst { jitter; at; duration = halve duration };
      Plan.Reorder_burst { jitter = halve jitter; at; duration };
    ]
  | Plan.Slow_server { server; extra; at; duration }
    when duration > 2. || extra > 1. ->
    [
      Plan.Slow_server { server; extra; at; duration = halve duration };
      Plan.Slow_server { server; extra = halve extra; at; duration };
    ]
  | Plan.Latency_burst { extra; at; duration } when duration > 2. || extra > 1.
    ->
    [
      Plan.Latency_burst { extra; at; duration = halve duration };
      Plan.Latency_burst { extra = halve extra; at; duration };
    ]
  | Plan.Lossy_link { src; dst; p; at; duration } when duration > 2. || p > 0.15
    ->
    [
      Plan.Lossy_link { src; dst; p; at; duration = halve duration };
      Plan.Lossy_link { src; dst; p = halve p; at; duration };
    ]
  | _ -> []

let replace_nth ops i op = List.mapi (fun j o -> if j = i then op else o) ops

let minimize ~fails (plan : Plan.t) =
  match fails plan with
  | None -> None
  | Some what ->
    let best = ref plan in
    let best_what = ref what in
    (* Deletion to a fixpoint: restart the scan after every success so
       the result is 1-minimal. *)
    let rec delete () =
      let ops = !best.Plan.ops in
      let n = List.length ops in
      let rec scan i =
        if i >= n then ()
        else
          let candidate = { !best with Plan.ops = drop_nth ops i } in
          match fails candidate with
          | Some w ->
            best := candidate;
            best_what := w;
            delete ()
          | None -> scan (i + 1)
      in
      scan 0
    in
    delete ();
    (* Weakening passes over the surviving ops, bounded because every
       accepted weakening strictly shrinks a component. *)
    let progress = ref true in
    let rounds = ref 0 in
    while !progress && !rounds < 16 do
      progress := false;
      incr rounds;
      List.iteri
        (fun i op ->
          List.iter
            (fun weaker ->
              if not !progress then
                let candidate =
                  { !best with Plan.ops = replace_nth !best.Plan.ops i weaker }
                in
                match fails candidate with
                | Some w ->
                  best := candidate;
                  best_what := w;
                  progress := true
                | None -> ())
            (weaken op))
        !best.Plan.ops
    done;
    Some (!best, !best_what)
