module Splitmix = Cloudtx_sim.Splitmix
module Json = Cloudtx_policy.Json
open Json

type op =
  | Crash_server of { server : int; at : float; restart_after : float }
  | Crash_coordinator of { txn : int; at : float; restart_after : float }
  | Isolate_coordinator of { txn : int; at : float; heal_after : float }
  | Partition of { a : int; b : int; at : float; heal_after : float }
  | Drop_burst of { p : float; at : float; duration : float }
  | Duplicate_burst of { p : float; at : float; duration : float }
  | Reorder_burst of { jitter : float; at : float; duration : float }
  | Slow_server of { server : int; extra : float; at : float; duration : float }
  | Latency_burst of { extra : float; at : float; duration : float }
  | Lossy_link of {
      src : int;
      dst : int;
      p : float;
      at : float;
      duration : float;
    }

type t = { seed : int64; horizon : float; ops : op list }

(* Grammar v2 added the gray-failure ops (slow-server, latency-burst,
   lossy-link) and the per-plan horizon; a version-less plan JSON is v1
   (horizon 100, old ops only) and still loads. *)
let grammar_version = 2

(* Fault windows live inside [0, horizon); the campaign heals everything
   at the horizon, so every plan's faults are finite.  This constant is
   the default horizon ([Plan.random ?horizon], [of_json] with no
   "horizon" field). *)
let fault_horizon = 100.

let op_end = function
  | Crash_server { at; restart_after; _ } -> at +. restart_after
  | Crash_coordinator { at; restart_after; _ } -> at +. restart_after
  | Isolate_coordinator { at; heal_after; _ } -> at +. heal_after
  | Partition { at; heal_after; _ } -> at +. heal_after
  | Drop_burst { at; duration; _ } -> at +. duration
  | Duplicate_burst { at; duration; _ } -> at +. duration
  | Reorder_burst { at; duration; _ } -> at +. duration
  | Slow_server { at; duration; _ } -> at +. duration
  | Latency_burst { at; duration; _ } -> at +. duration
  | Lossy_link { at; duration; _ } -> at +. duration

let random ?(horizon = fault_horizon) ~seed () =
  let rng = Splitmix.create seed in
  let n_ops = 1 + Splitmix.int rng 4 in
  (* Windows scale with the horizon: at horizon 100 these are the
     historical 0..60 start and 3..25 hold ranges. *)
  let at () = Splitmix.uniform rng ~lo:0. ~hi:(0.6 *. horizon) in
  let hold () =
    Splitmix.uniform rng ~lo:(0.03 *. horizon) ~hi:(0.25 *. horizon)
  in
  let ops =
    List.init n_ops (fun _ ->
        match Splitmix.int rng 10 with
        | 0 ->
          Crash_server
            { server = Splitmix.int rng 3; at = at (); restart_after = hold () }
        | 1 ->
          Crash_coordinator
            { txn = Splitmix.int rng 3; at = at (); restart_after = hold () }
        | 2 ->
          Isolate_coordinator
            { txn = Splitmix.int rng 3; at = at (); heal_after = hold () }
        | 3 ->
          let a = Splitmix.int rng 3 in
          Partition
            { a; b = (a + 1 + Splitmix.int rng 2) mod 3; at = at ();
              heal_after = hold () }
        | 4 ->
          Drop_burst
            { p = Splitmix.uniform rng ~lo:0.1 ~hi:0.6; at = at ();
              duration = hold () }
        | 5 ->
          Duplicate_burst
            { p = Splitmix.uniform rng ~lo:0.2 ~hi:0.7; at = at ();
              duration = hold () }
        | 6 ->
          Reorder_burst
            { jitter = Splitmix.uniform rng ~lo:1. ~hi:8.; at = at ();
              duration = hold () }
        | 7 ->
          Slow_server
            {
              server = Splitmix.int rng 3;
              extra = Splitmix.uniform rng ~lo:(0.05 *. horizon) ~hi:(0.4 *. horizon);
              at = at ();
              duration = hold ();
            }
        | 8 ->
          Latency_burst
            {
              extra = Splitmix.uniform rng ~lo:(0.02 *. horizon) ~hi:(0.2 *. horizon);
              at = at ();
              duration = hold ();
            }
        | _ ->
          let src = Splitmix.int rng 3 in
          Lossy_link
            {
              src;
              dst = (src + 1 + Splitmix.int rng 2) mod 3;
              p = Splitmix.uniform rng ~lo:0.3 ~hi:0.9;
              at = at ();
              duration = hold ();
            })
  in
  { seed; horizon; ops }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let op_to_json op =
  let tag t fields = Obj (("op", String t) :: fields) in
  match op with
  | Crash_server { server; at; restart_after } ->
    tag "crash-server"
      [ ("server", Int server); ("at", Float at);
        ("restart_after", Float restart_after) ]
  | Crash_coordinator { txn; at; restart_after } ->
    tag "crash-coordinator"
      [ ("txn", Int txn); ("at", Float at);
        ("restart_after", Float restart_after) ]
  | Isolate_coordinator { txn; at; heal_after } ->
    tag "isolate-coordinator"
      [ ("txn", Int txn); ("at", Float at); ("heal_after", Float heal_after) ]
  | Partition { a; b; at; heal_after } ->
    tag "partition"
      [ ("a", Int a); ("b", Int b); ("at", Float at);
        ("heal_after", Float heal_after) ]
  | Drop_burst { p; at; duration } ->
    tag "drop-burst"
      [ ("p", Float p); ("at", Float at); ("duration", Float duration) ]
  | Duplicate_burst { p; at; duration } ->
    tag "duplicate-burst"
      [ ("p", Float p); ("at", Float at); ("duration", Float duration) ]
  | Reorder_burst { jitter; at; duration } ->
    tag "reorder-burst"
      [ ("jitter", Float jitter); ("at", Float at);
        ("duration", Float duration) ]
  | Slow_server { server; extra; at; duration } ->
    tag "slow-server"
      [ ("server", Int server); ("extra", Float extra); ("at", Float at);
        ("duration", Float duration) ]
  | Latency_burst { extra; at; duration } ->
    tag "latency-burst"
      [ ("extra", Float extra); ("at", Float at); ("duration", Float duration) ]
  | Lossy_link { src; dst; p; at; duration } ->
    tag "lossy-link"
      [ ("src", Int src); ("dst", Int dst); ("p", Float p); ("at", Float at);
        ("duration", Float duration) ]

let op_of_json j =
  let* tag = Result.bind (member "op" j) to_str in
  let int_f k = Result.bind (member k j) to_int in
  let float_f k = Result.bind (member k j) to_float in
  match tag with
  | "crash-server" ->
    let* server = int_f "server" in
    let* at = float_f "at" in
    let* restart_after = float_f "restart_after" in
    Ok (Crash_server { server; at; restart_after })
  | "crash-coordinator" ->
    let* txn = int_f "txn" in
    let* at = float_f "at" in
    let* restart_after = float_f "restart_after" in
    Ok (Crash_coordinator { txn; at; restart_after })
  | "isolate-coordinator" ->
    let* txn = int_f "txn" in
    let* at = float_f "at" in
    let* heal_after = float_f "heal_after" in
    Ok (Isolate_coordinator { txn; at; heal_after })
  | "partition" ->
    let* a = int_f "a" in
    let* b = int_f "b" in
    let* at = float_f "at" in
    let* heal_after = float_f "heal_after" in
    Ok (Partition { a; b; at; heal_after })
  | "drop-burst" ->
    let* p = float_f "p" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Drop_burst { p; at; duration })
  | "duplicate-burst" ->
    let* p = float_f "p" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Duplicate_burst { p; at; duration })
  | "reorder-burst" ->
    let* jitter = float_f "jitter" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Reorder_burst { jitter; at; duration })
  | "slow-server" ->
    let* server = int_f "server" in
    let* extra = float_f "extra" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Slow_server { server; extra; at; duration })
  | "latency-burst" ->
    let* extra = float_f "extra" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Latency_burst { extra; at; duration })
  | "lossy-link" ->
    let* src = int_f "src" in
    let* dst = int_f "dst" in
    let* p = float_f "p" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Lossy_link { src; dst; p; at; duration })
  | other -> Error (Printf.sprintf "unknown chaos op %S" other)

let to_json t =
  Obj
    [
      ("version", Int grammar_version);
      ("seed", String (Int64.to_string t.seed));
      ("horizon", Float t.horizon);
      ("ops", List (List.map op_to_json t.ops));
    ]

let of_json j =
  (* "version" and "horizon" are absent in v1 plan files; default them
     rather than reject, so pre-v2 captures keep loading. *)
  let* version =
    match member "version" j with
    | Ok v -> to_int v
    | Error _ -> Ok 1
  in
  let* () =
    if version >= 1 && version <= grammar_version then Ok ()
    else Error (Printf.sprintf "unsupported plan grammar version %d" version)
  in
  let* seed = Result.bind (member "seed" j) to_str in
  let* seed =
    match Int64.of_string_opt seed with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad plan seed %S" seed)
  in
  let* horizon =
    match member "horizon" j with
    | Ok h -> to_float h
    | Error _ -> Ok fault_horizon
  in
  let* ops = Result.bind (member "ops" j) to_list in
  let* ops =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* op = op_of_json o in
        Ok (op :: acc))
      (Ok []) ops
    |> Result.map List.rev
  in
  Ok { seed; horizon; ops }

let to_string t = Json.to_string (to_json t)
let of_string s = Result.bind (Json.parse s) of_json

let pp_op ppf op =
  match op with
  | Crash_server { server; at; restart_after } ->
    Format.fprintf ppf "crash server#%d @%.1f for %.1f" server at restart_after
  | Crash_coordinator { txn; at; restart_after } ->
    Format.fprintf ppf "crash tm#%d @%.1f for %.1f" txn at restart_after
  | Isolate_coordinator { txn; at; heal_after } ->
    Format.fprintf ppf "isolate tm#%d @%.1f for %.1f" txn at heal_after
  | Partition { a; b; at; heal_after } ->
    Format.fprintf ppf "partition %d|%d @%.1f for %.1f" a b at heal_after
  | Drop_burst { p; at; duration } ->
    Format.fprintf ppf "drop p=%.2f @%.1f for %.1f" p at duration
  | Duplicate_burst { p; at; duration } ->
    Format.fprintf ppf "duplicate p=%.2f @%.1f for %.1f" p at duration
  | Reorder_burst { jitter; at; duration } ->
    Format.fprintf ppf "reorder j=%.1f @%.1f for %.1f" jitter at duration
  | Slow_server { server; extra; at; duration } ->
    Format.fprintf ppf "slow server#%d +%.1fms @%.1f for %.1f" server extra at
      duration
  | Latency_burst { extra; at; duration } ->
    Format.fprintf ppf "latency +%.1fms @%.1f for %.1f" extra at duration
  | Lossy_link { src; dst; p; at; duration } ->
    Format.fprintf ppf "lossy %d->%d p=%.2f @%.1f for %.1f" src dst p at
      duration

let pp ppf t =
  Format.fprintf ppf "plan(seed=%Ld)" t.seed;
  List.iter (fun op -> Format.fprintf ppf "@ %a;" pp_op op) t.ops
