module Splitmix = Cloudtx_sim.Splitmix
module Json = Cloudtx_policy.Json
open Json

type op =
  | Crash_server of { server : int; at : float; restart_after : float }
  | Crash_coordinator of { txn : int; at : float; restart_after : float }
  | Isolate_coordinator of { txn : int; at : float; heal_after : float }
  | Partition of { a : int; b : int; at : float; heal_after : float }
  | Drop_burst of { p : float; at : float; duration : float }
  | Duplicate_burst of { p : float; at : float; duration : float }
  | Reorder_burst of { jitter : float; at : float; duration : float }

type t = { seed : int64; ops : op list }

(* Fault windows live inside [0, fault_horizon); the campaign heals
   everything at the horizon, so every plan's faults are finite. *)
let fault_horizon = 100.

let op_end = function
  | Crash_server { at; restart_after; _ } -> at +. restart_after
  | Crash_coordinator { at; restart_after; _ } -> at +. restart_after
  | Isolate_coordinator { at; heal_after; _ } -> at +. heal_after
  | Partition { at; heal_after; _ } -> at +. heal_after
  | Drop_burst { at; duration; _ } -> at +. duration
  | Duplicate_burst { at; duration; _ } -> at +. duration
  | Reorder_burst { at; duration; _ } -> at +. duration

let random ~seed =
  let rng = Splitmix.create seed in
  let n_ops = 1 + Splitmix.int rng 4 in
  let at () = Splitmix.uniform rng ~lo:0. ~hi:60. in
  let hold () = Splitmix.uniform rng ~lo:3. ~hi:25. in
  let ops =
    List.init n_ops (fun _ ->
        match Splitmix.int rng 7 with
        | 0 ->
          Crash_server
            { server = Splitmix.int rng 3; at = at (); restart_after = hold () }
        | 1 ->
          Crash_coordinator
            { txn = Splitmix.int rng 3; at = at (); restart_after = hold () }
        | 2 ->
          Isolate_coordinator
            { txn = Splitmix.int rng 3; at = at (); heal_after = hold () }
        | 3 ->
          let a = Splitmix.int rng 3 in
          Partition
            { a; b = (a + 1 + Splitmix.int rng 2) mod 3; at = at ();
              heal_after = hold () }
        | 4 ->
          Drop_burst
            { p = Splitmix.uniform rng ~lo:0.1 ~hi:0.6; at = at ();
              duration = hold () }
        | 5 ->
          Duplicate_burst
            { p = Splitmix.uniform rng ~lo:0.2 ~hi:0.7; at = at ();
              duration = hold () }
        | _ ->
          Reorder_burst
            { jitter = Splitmix.uniform rng ~lo:1. ~hi:8.; at = at ();
              duration = hold () })
  in
  { seed; ops }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let op_to_json op =
  let tag t fields = Obj (("op", String t) :: fields) in
  match op with
  | Crash_server { server; at; restart_after } ->
    tag "crash-server"
      [ ("server", Int server); ("at", Float at);
        ("restart_after", Float restart_after) ]
  | Crash_coordinator { txn; at; restart_after } ->
    tag "crash-coordinator"
      [ ("txn", Int txn); ("at", Float at);
        ("restart_after", Float restart_after) ]
  | Isolate_coordinator { txn; at; heal_after } ->
    tag "isolate-coordinator"
      [ ("txn", Int txn); ("at", Float at); ("heal_after", Float heal_after) ]
  | Partition { a; b; at; heal_after } ->
    tag "partition"
      [ ("a", Int a); ("b", Int b); ("at", Float at);
        ("heal_after", Float heal_after) ]
  | Drop_burst { p; at; duration } ->
    tag "drop-burst"
      [ ("p", Float p); ("at", Float at); ("duration", Float duration) ]
  | Duplicate_burst { p; at; duration } ->
    tag "duplicate-burst"
      [ ("p", Float p); ("at", Float at); ("duration", Float duration) ]
  | Reorder_burst { jitter; at; duration } ->
    tag "reorder-burst"
      [ ("jitter", Float jitter); ("at", Float at);
        ("duration", Float duration) ]

let op_of_json j =
  let* tag = Result.bind (member "op" j) to_str in
  let int_f k = Result.bind (member k j) to_int in
  let float_f k = Result.bind (member k j) to_float in
  match tag with
  | "crash-server" ->
    let* server = int_f "server" in
    let* at = float_f "at" in
    let* restart_after = float_f "restart_after" in
    Ok (Crash_server { server; at; restart_after })
  | "crash-coordinator" ->
    let* txn = int_f "txn" in
    let* at = float_f "at" in
    let* restart_after = float_f "restart_after" in
    Ok (Crash_coordinator { txn; at; restart_after })
  | "isolate-coordinator" ->
    let* txn = int_f "txn" in
    let* at = float_f "at" in
    let* heal_after = float_f "heal_after" in
    Ok (Isolate_coordinator { txn; at; heal_after })
  | "partition" ->
    let* a = int_f "a" in
    let* b = int_f "b" in
    let* at = float_f "at" in
    let* heal_after = float_f "heal_after" in
    Ok (Partition { a; b; at; heal_after })
  | "drop-burst" ->
    let* p = float_f "p" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Drop_burst { p; at; duration })
  | "duplicate-burst" ->
    let* p = float_f "p" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Duplicate_burst { p; at; duration })
  | "reorder-burst" ->
    let* jitter = float_f "jitter" in
    let* at = float_f "at" in
    let* duration = float_f "duration" in
    Ok (Reorder_burst { jitter; at; duration })
  | other -> Error (Printf.sprintf "unknown chaos op %S" other)

let to_json t =
  Obj
    [
      ("seed", String (Int64.to_string t.seed));
      ("ops", List (List.map op_to_json t.ops));
    ]

let of_json j =
  let* seed = Result.bind (member "seed" j) to_str in
  let* seed =
    match Int64.of_string_opt seed with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "bad plan seed %S" seed)
  in
  let* ops = Result.bind (member "ops" j) to_list in
  let* ops =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* op = op_of_json o in
        Ok (op :: acc))
      (Ok []) ops
    |> Result.map List.rev
  in
  Ok { seed; ops }

let to_string t = Json.to_string (to_json t)
let of_string s = Result.bind (Json.parse s) of_json

let pp_op ppf op =
  match op with
  | Crash_server { server; at; restart_after } ->
    Format.fprintf ppf "crash server#%d @%.1f for %.1f" server at restart_after
  | Crash_coordinator { txn; at; restart_after } ->
    Format.fprintf ppf "crash tm#%d @%.1f for %.1f" txn at restart_after
  | Isolate_coordinator { txn; at; heal_after } ->
    Format.fprintf ppf "isolate tm#%d @%.1f for %.1f" txn at heal_after
  | Partition { a; b; at; heal_after } ->
    Format.fprintf ppf "partition %d|%d @%.1f for %.1f" a b at heal_after
  | Drop_burst { p; at; duration } ->
    Format.fprintf ppf "drop p=%.2f @%.1f for %.1f" p at duration
  | Duplicate_burst { p; at; duration } ->
    Format.fprintf ppf "duplicate p=%.2f @%.1f for %.1f" p at duration
  | Reorder_burst { jitter; at; duration } ->
    Format.fprintf ppf "reorder j=%.1f @%.1f for %.1f" jitter at duration

let pp ppf t =
  Format.fprintf ppf "plan(seed=%Ld)" t.seed;
  List.iter (fun op -> Format.fprintf ppf "@ %a;" pp_op op) t.ops
