module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Participant = Cloudtx_core.Participant
module Master = Cloudtx_core.Master
module Outcome = Cloudtx_core.Outcome
module Audit = Cloudtx_core.Audit
module Certify = Cloudtx_core.Certify
module Trusted = Cloudtx_core.Trusted
module Journal_io = Cloudtx_core.Journal_io
module Scenario = Cloudtx_workload.Scenario
module Transport = Cloudtx_sim.Transport
module Network = Cloudtx_sim.Network
module Latency = Cloudtx_sim.Latency
module Journal = Cloudtx_obs.Journal
module Monitor = Cloudtx_obs.Monitor
module Timeseries = Cloudtx_obs.Timeseries
module Health = Cloudtx_core.Health
module Server = Cloudtx_store.Server
module Wal = Cloudtx_store.Wal
module Tpc = Cloudtx_txn.Tpc
module Resilience = Cloudtx_core.Resilience
module Timeout_policy = Cloudtx_protocol.Timeout_policy
module Json = Cloudtx_policy.Json
module Codec = Cloudtx_protocol.Codec
module Tm = Cloudtx_protocol.Tm_machine

type cell = { scheme : Scheme.t; level : Consistency.level }

let cell_name c =
  Printf.sprintf "%s:%s" (Scheme.name c.scheme) (Consistency.name c.level)

let cell_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "cell %S: want SCHEME:LEVEL" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let level = String.sub s (i + 1) (String.length s - i - 1) in
    match (Scheme.of_string scheme, Consistency.of_string level) with
    | Some scheme, Some level -> Ok { scheme; level }
    | None, _ -> Error (Printf.sprintf "unknown scheme %S" scheme)
    | _, None -> Error (Printf.sprintf "unknown consistency level %S" level))

let all_cells =
  List.concat_map
    (fun scheme ->
      List.map (fun level -> { scheme; level }) [ Consistency.View; Consistency.Global ])
    Scheme.all

type failure = { what : string; journal : string list }

(* Run shape: three spread transactions over three servers, staggered
   starts, every query writing — the worst case for fault overlap.  The
   termination protocol and decision retransmission are always armed;
   crash-free runs at these knobs stay timer-quiet because every vote
   round completes long before the timeouts fire. *)
let n_servers = 3
let n_txns = 3
let inquiry_timeout = 30.
let vote_timeout = 60.
let decision_retry = 8.
let quiesce_steps = 400_000

exception Violation of string

let run_plan ?(dedup = true) ?(certify = false) ?variant ?journal_format
    ?journal_path ?metrics_path ?metrics_width_ms
    ?(policy = Timeout_policy.Fixed) ?resilience (cell : cell) (plan : Plan.t)
    =
  let sc =
    Scenario.retail ~seed:plan.Plan.seed ?variant ~dedup ~inquiry_timeout
      ~n_servers ~n_subjects:n_txns ()
  in
  let cluster = sc.Scenario.cluster in
  let tr = Cluster.transport cluster in
  let journal =
    Transport.enable_journal ?format:journal_format ?path:journal_path tr
  in
  (* The resilience gate (when on) shares the run's journal, so breaker
     and admission events land in the same record stream Watchtower and
     the regression tests replay. *)
  let gate =
    Option.map
      (fun rcfg ->
        (rcfg, Resilience.create ~journal ~registry:(Transport.registry tr) rcfg))
      resilience
  in
  (* Windowed metrics ride the same observer slot as the journal write-
     through: one Health bridge feeds a monitor (default SLO rules) and
     the fabric's timeseries, and the snapshot is written whatever the
     verdict — a failing cell's flight deck is exactly what you want. *)
  (match metrics_path with
  | None -> ()
  | Some _ ->
    let ts = Transport.enable_timeseries ?width_ms:metrics_width_ms tr in
    let monitor = Monitor.create ~notify:(Timeseries.note_alert ts) () in
    ignore (Health.attach ~timeseries:ts journal monitor));
  let net = Transport.network tr in
  let cfg =
    Manager.config ~vote_timeout ~decision_retry ~timeout_policy:policy
      cell.scheme cell.level
  in
  let outcomes = Array.make n_txns None in
  let handles = Array.make n_txns None in
  let txn_ids = Array.init n_txns (fun i -> Printf.sprintf "t%d" (i + 1)) in
  let submit i =
    let subject = List.nth sc.Scenario.subjects (i mod List.length sc.Scenario.subjects) in
    let txn =
      Scenario.spread_transaction sc ~id:txn_ids.(i) ~subject
        ~queries:n_servers ~start:i ()
    in
    handles.(i) <-
      Some
        (Manager.submit_handle ~dedup
           ?resilience:(Option.map snd gate)
           cluster cfg txn ~on_done:(fun o -> outcomes.(i) <- Some o))
  in
  let server_of i = List.nth sc.Scenario.servers (i mod n_servers) in
  let tm_name i = "tm-" ^ txn_ids.(i mod n_txns) in
  let crash_tm i =
    match handles.(i mod n_txns) with
    | Some h when not (Transport.crashed tr (tm_name i)) -> Manager.crash h
    | _ -> ()
  in
  let restart_tm i =
    match handles.(i mod n_txns) with
    | Some h when Transport.crashed tr (tm_name i) -> Manager.restart h
    | _ -> ()
  in
  let inject (op : Plan.op) =
    match op with
    | Plan.Crash_server { server; at; restart_after } ->
      let s = server_of server in
      Transport.at tr ~delay:at (fun () ->
          if not (Transport.crashed tr s) then
            Participant.crash (Cluster.participant cluster s));
      Transport.at tr ~delay:(at +. restart_after) (fun () ->
          if Transport.crashed tr s then
            Participant.recover (Cluster.participant cluster s))
    | Plan.Crash_coordinator { txn; at; restart_after } ->
      Transport.at tr ~delay:at (fun () -> crash_tm txn);
      Transport.at tr ~delay:(at +. restart_after) (fun () -> restart_tm txn)
    | Plan.Isolate_coordinator { txn; at; heal_after } ->
      let tm = tm_name txn in
      Transport.at tr ~delay:at (fun () ->
          List.iter (fun s -> Network.partition net tm s) sc.Scenario.servers);
      Transport.at tr ~delay:(at +. heal_after) (fun () ->
          List.iter (fun s -> Network.heal net tm s) sc.Scenario.servers)
    | Plan.Partition { a; b; at; heal_after } ->
      let sa = server_of a and sb = server_of b in
      if not (String.equal sa sb) then begin
        Transport.at tr ~delay:at (fun () -> Network.partition net sa sb);
        Transport.at tr ~delay:(at +. heal_after) (fun () ->
            Network.heal net sa sb)
      end
    | Plan.Drop_burst { p; at; duration } ->
      Transport.at tr ~delay:at (fun () -> Network.set_drop net p);
      Transport.at tr ~delay:(at +. duration) (fun () -> Network.set_drop net 0.)
    | Plan.Duplicate_burst { p; at; duration } ->
      Transport.at tr ~delay:at (fun () -> Network.set_duplicate net p);
      Transport.at tr ~delay:(at +. duration) (fun () ->
          Network.set_duplicate net 0.)
    | Plan.Reorder_burst { jitter; at; duration } ->
      Transport.at tr ~delay:at (fun () ->
          Network.set_reorder_jitter net
            (Some (Latency.Uniform { lo = 0.; hi = jitter })));
      Transport.at tr ~delay:(at +. duration) (fun () ->
          Network.set_reorder_jitter net None)
    | Plan.Slow_server { server; extra; at; duration } ->
      let s = server_of server in
      Transport.at tr ~delay:at (fun () -> Network.set_slowdown net s extra);
      Transport.at tr ~delay:(at +. duration) (fun () ->
          Network.clear_slowdown net s)
    | Plan.Latency_burst { extra; at; duration } ->
      Transport.at tr ~delay:at (fun () -> Network.set_burst_extra net extra);
      Transport.at tr ~delay:(at +. duration) (fun () ->
          Network.set_burst_extra net 0.)
    | Plan.Lossy_link { src; dst; p; at; duration } ->
      let s = server_of src and d = server_of dst in
      if not (String.equal s d) then begin
        Transport.at tr ~delay:at (fun () ->
            Network.set_link_drop net ~src:s ~dst:d p);
        Transport.at tr ~delay:(at +. duration) (fun () ->
            Network.clear_link_drop net ~src:s ~dst:d)
      end
  in
  let heal_everything () =
    Network.heal_all net;
    Network.set_drop net 0.;
    Network.set_duplicate net 0.;
    Network.set_reorder_jitter net None;
    Network.set_burst_extra net 0.;
    List.iter
      (fun s ->
        Network.clear_slowdown net s;
        List.iter
          (fun d ->
            Network.clear_link_drop net ~src:s ~dst:d;
            Network.clear_link_drop net ~src:d ~dst:s)
          sc.Scenario.servers)
      sc.Scenario.servers;
    List.iter
      (fun s ->
        if Transport.crashed tr s then
          Participant.recover (Cluster.participant cluster s))
      sc.Scenario.servers;
    for i = 0 to n_txns - 1 do
      restart_tm i
    done
  in
  let horizon =
    List.fold_left
      (fun acc op -> Float.max acc (Plan.op_end op))
      plan.Plan.horizon plan.Plan.ops
    +. 1.
  in
  (* Canonical JSONL lines whatever the journal format: binary contents
     decode through {!Journal_io}, so the audit and certify layers below
     assert the exact same records — a per-run cross-format guarantee. *)
  let journal_lines () =
    match Journal_io.of_contents (Journal.to_string journal) with
    | Ok loaded -> loaded.Journal_io.lines
    | Error m -> [ "journal decode failed: " ^ m ]
  in
  let fail what = Error { what; journal = journal_lines () } in
  let write_snapshot () =
    match (metrics_path, Transport.timeseries tr) with
    | Some path, Some ts ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Timeseries.to_jsonl ts))
    | _ -> ()
  in
  let result =
    try
    submit 0;
    for i = 1 to n_txns - 1 do
      Transport.at tr ~delay:(6. *. float_of_int i) (fun () -> submit i)
    done;
    List.iter inject plan.Plan.ops;
    Transport.at tr ~delay:horizon heal_everything;
    (match Transport.run tr ~until:(horizon +. 1.) ~max_steps:quiesce_steps with
    | `Step_limit -> raise (Violation "liveness: step budget exhausted mid-faults")
    | _ -> ());
    (match Transport.run tr ~max_steps:quiesce_steps with
    | `Step_limit ->
      raise (Violation "liveness: simulation did not quiesce after heals")
    | _ -> ());
    (* Graceful degradation (resilience gate on): after the heal and one
       full breaker cooldown, a probe transaction must sail through —
       every open breaker re-closes on its probe and no admission slot
       is left occupied.  The cooldown is measured from quiescence, not
       the horizon, because a breaker can trip on a late straggler. *)
    (match gate with
    | None -> ()
    | Some (rcfg, rt) ->
      let probe_outcome = ref None in
      let subject = List.nth sc.Scenario.subjects 0 in
      let probe =
        Scenario.spread_transaction sc ~id:"probe" ~subject
          ~queries:n_servers ~start:0 ()
      in
      Transport.at tr ~delay:(rcfg.Resilience.cooldown +. 1.) (fun () ->
          ignore
            (Manager.submit_handle ~dedup ~resilience:rt cluster cfg probe
               ~on_done:(fun o -> probe_outcome := Some o)));
      (match Transport.run tr ~max_steps:quiesce_steps with
      | `Step_limit -> raise (Violation "resilience: probe did not quiesce")
      | _ -> ());
      (match !probe_outcome with
      | None -> raise (Violation "resilience: probe never reached an outcome")
      | Some o -> (
        match o.Outcome.reason with
        | Outcome.Timed_out | Outcome.Budget_exhausted | Outcome.Breaker_open
        | Outcome.Admission_rejected ->
          raise
            (Violation
               (Printf.sprintf "resilience: post-heal probe failed with %s"
                  (Outcome.reason_name o.Outcome.reason)))
        | _ -> ()));
      List.iter
        (fun (server, st) ->
          if st <> Resilience.Closed then
            raise
              (Violation
                 (Printf.sprintf
                    "resilience: breaker for %s stuck %s after heal + probe"
                    server (Resilience.state_name st))))
        (Resilience.states rt);
      if Resilience.in_flight rt <> 0 then
        raise
          (Violation
             (Printf.sprintf "resilience: %d transactions left in flight"
                (Resilience.in_flight rt))));
    (* Liveness: every transaction reached a terminal outcome. *)
    Array.iteri
      (fun i o ->
        if o = None then
          raise
            (Violation
               (Printf.sprintf "liveness: %s never reached an outcome"
                  txn_ids.(i))))
      outcomes;
    (* Safety over terminal state. *)
    let participants =
      List.map (fun s -> (s, Cluster.participant cluster s)) sc.Scenario.servers
    in
    let decisions_for server txn =
      let wal = Server.wal (Participant.server server) in
      List.filter_map
        (fun (e : Wal.entry) ->
          match e.Wal.record with
          | Wal.Decision { txn = t; commit } when String.equal t txn ->
            Some commit
          | _ -> None)
        (Wal.entries wal)
    in
    let prepared_before_commit server txn =
      let wal = Server.wal (Participant.server server) in
      let prepared = ref false in
      let ok = ref true in
      List.iter
        (fun (e : Wal.entry) ->
          match e.Wal.record with
          | Wal.Prepared { txn = t; _ } when String.equal t txn ->
            prepared := true
          | Wal.Decision { txn = t; commit = true } when String.equal t txn ->
            if not !prepared then ok := false
          | _ -> ())
        (Wal.entries wal);
      !ok
    in
    let master = Cluster.master cluster in
    let latest domain = Master.latest master ~domain in
    Array.iteri
      (fun i o ->
        let o = Option.get o in
        let txn = txn_ids.(i) in
        List.iter
          (fun (name, p) ->
            let ds = decisions_for p txn in
            (* AC1: no participant may record a decision disagreeing with
               the coordinator's outcome. *)
            if List.exists (fun commit -> commit <> o.Outcome.committed) ds then
              raise
                (Violation
                   (Printf.sprintf
                      "AC1: %s logged %s for %s but the coordinator decided %s"
                      name
                      (if o.Outcome.committed then "abort" else "commit")
                      txn
                      (if o.Outcome.committed then "commit" else "abort")));
            (* Commit must be preceded by this node's forced prepare. *)
            if not (prepared_before_commit p txn) then
              raise
                (Violation
                   (Printf.sprintf
                      "AC2: %s committed %s without a prior prepare record"
                      name txn));
            (* Termination: nobody is left in doubt after all heals. *)
            (match
               Wal.recover_txn (Server.wal (Participant.server p)) ~txn
             with
            | `Prepared _ ->
              raise
                (Violation
                   (Printf.sprintf "termination: %s still in doubt about %s"
                      name txn))
            | _ -> ()))
          participants;
        (* A committed transaction must be trusted per the cell's scheme
           and consistency level (Definitions 5–9). *)
        if o.Outcome.committed then
          match
            Trusted.check cell.scheme ~level:cell.level ~latest o.Outcome.view
          with
          | Ok () -> ()
          | Error why ->
            raise (Violation (Printf.sprintf "untrusted commit %s: %s" txn why)))
      outcomes;
    (* Graceful degradation (adaptive policy): retransmission is
       budgeted.  Count journaled [retry-fired] timer inputs per TM and
       reject any machine that fired more than the budget (+1 covers a
       retry already armed when the budget check trips). *)
    (match policy with
    | Timeout_policy.Fixed -> ()
    | Timeout_policy.Adaptive a ->
      (* Per TM *incarnation*: a coordinator restart recreates the
         machine (a fresh [create] record) and legitimately re-earns the
         budget, so the count resets there. *)
      let current = Hashtbl.create 8 and peak = Hashtbl.create 8 in
      List.iter
        (fun line ->
          match Json.parse line with
          | Error _ -> ()
          | Ok j -> (
            let str k = Result.bind (Json.member k j) Json.to_str in
            match (str "dir", str "node") with
            | Ok "create", Ok node -> Hashtbl.replace current node 0
            | Ok "input", Ok node
              when String.length node >= 3
                   && String.equal (String.sub node 0 3) "tm-" -> (
              match
                Result.bind (Json.member "payload" j) (fun p ->
                    Result.bind (Json.member "t" p) Json.to_str)
              with
              | Ok "retry-fired" ->
                let n =
                  1 + Option.value ~default:0 (Hashtbl.find_opt current node)
                in
                Hashtbl.replace current node n;
                if n > Option.value ~default:0 (Hashtbl.find_opt peak node)
                then Hashtbl.replace peak node n
              | _ -> ())
            | _ -> ()))
        (journal_lines ());
      Hashtbl.iter
        (fun node n ->
          if n > a.Timeout_policy.retry_budget + 1 then
            raise
              (Violation
                 (Printf.sprintf
                    "resilience: %s fired %d decision retries in one \
                     incarnation (budget %d)"
                    node n a.Timeout_policy.retry_budget)))
        peak);
    (* The journal itself must replay clean. *)
    (match Audit.run ~lines:(journal_lines ()) with
    | Ok _ -> ()
    | Error why -> raise (Violation (Printf.sprintf "audit: %s" why)));
    (* Fourth assertion layer: the committed history must certify
       serializable — the safety half of the paper's "safe transactions"
       guarantee, decided from the same journal the audit replayed. *)
    (if certify then
       match Certify.run ~lines:(journal_lines ()) with
       | Ok { Certify.verdict = Certify.Serializable _; _ } -> ()
       | Ok { Certify.verdict = Certify.Anomalous a; _ } ->
         raise (Violation ("certify: " ^ Certify.describe_anomaly a))
       | Error why -> raise (Violation (Printf.sprintf "certify: %s" why)));
      Ok ()
    with
    | Violation what -> fail what
    | exn -> fail (Printf.sprintf "exception: %s" (Printexc.to_string exn))
  in
  write_snapshot ();
  (* Flush the file sink: without this a [journal_path] capture loses
     its buffered tail and truncates the last record mid-line. *)
  Journal.close journal;
  result

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

type case = { cell : cell; plan : Plan.t; failure : failure }

type verdict = {
  plans_run : int;
  failures : case list;  (** First failure per (cell, plan) pair. *)
}

let run ?dedup ?certify ?variant ?journal_format ?journal_path ?metrics_path
    ?metrics_width_ms ?policy ?resilience ?horizon ?(cells = all_cells)
    ?(base_seed = 1000L) ~plans () =
  let failures = ref [] in
  let count = ref 0 in
  let ps =
    List.init plans (fun i ->
        Plan.random ?horizon ~seed:(Int64.add base_seed (Int64.of_int i)) ())
  in
  List.iter
    (fun cell ->
      List.iter
        (fun plan ->
          incr count;
          match
            run_plan ?dedup ?certify ?variant ?journal_format ?journal_path
              ?metrics_path ?metrics_width_ms ?policy ?resilience cell plan
          with
          | Ok () -> ()
          | Error failure ->
            failures := { cell; plan; failure } :: !failures)
        ps)
    cells;
  { plans_run = !count; failures = List.rev !failures }
