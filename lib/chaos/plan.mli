(** Declarative, seeded fault plans.

    A plan is a finite schedule of fault operations injected into one
    simulated run: crash/restart a data server or a transaction's
    coordinator, partition server pairs or isolate a coordinator, and
    time-bounded network misbehaviour bursts (loss, duplication, reorder
    jitter).  Every fault is paired with its own end (restart, heal,
    burst expiry) and all windows fall inside [{!fault_horizon}], so a
    campaign can assert terminal safety and liveness after the horizon.

    Node references are small integers resolved modulo the cluster size
    at injection time, which keeps plans valid under shrinking and
    independent of concrete node names. *)

type op =
  | Crash_server of { server : int; at : float; restart_after : float }
  | Crash_coordinator of { txn : int; at : float; restart_after : float }
      (** Fail-stop transaction [txn]'s TM; its restart re-drives the
          decision phase from the forced log (or presumes abort). *)
  | Isolate_coordinator of { txn : int; at : float; heal_after : float }
      (** Partition the TM from every data server — the termination
          protocol's trigger without losing coordinator state. *)
  | Partition of { a : int; b : int; at : float; heal_after : float }
  | Drop_burst of { p : float; at : float; duration : float }
  | Duplicate_burst of { p : float; at : float; duration : float }
  | Reorder_burst of { jitter : float; at : float; duration : float }

type t = { seed : int64; ops : op list }
(** [seed] drives both the plan's own generation and the simulated run
    it is injected into, so a plan reproduces its run bit-for-bit. *)

(** All fault start times and windows fall before this simulated
    millisecond; campaigns heal everything at the horizon. *)
val fault_horizon : float

(** When this fault's own end (restart / heal / expiry) fires. *)
val op_end : op -> float

(** [random ~seed] draws 1–4 ops deterministically from [seed]. *)
val random : seed:int64 -> t

val to_json : t -> Cloudtx_policy.Json.t
val of_json : Cloudtx_policy.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
