(** Declarative, seeded fault plans.

    A plan is a finite schedule of fault operations injected into one
    simulated run: crash/restart a data server or a transaction's
    coordinator, partition server pairs or isolate a coordinator,
    time-bounded network misbehaviour bursts (loss, duplication, reorder
    jitter) — and, since grammar v2, the {e gray} faults: a slow server,
    a global latency burst, and a one-directional lossy link, which
    degrade without ever failing cleanly.  Every fault is paired with its
    own end (restart, heal, burst expiry) and all windows fall inside the
    plan's [horizon], so a campaign can assert terminal safety and
    liveness after the horizon.

    Node references are small integers resolved modulo the cluster size
    at injection time, which keeps plans valid under shrinking and
    independent of concrete node names. *)

type op =
  | Crash_server of { server : int; at : float; restart_after : float }
  | Crash_coordinator of { txn : int; at : float; restart_after : float }
      (** Fail-stop transaction [txn]'s TM; its restart re-drives the
          decision phase from the forced log (or presumes abort). *)
  | Isolate_coordinator of { txn : int; at : float; heal_after : float }
      (** Partition the TM from every data server — the termination
          protocol's trigger without losing coordinator state. *)
  | Partition of { a : int; b : int; at : float; heal_after : float }
  | Drop_burst of { p : float; at : float; duration : float }
  | Duplicate_burst of { p : float; at : float; duration : float }
  | Reorder_burst of { jitter : float; at : float; duration : float }
  | Slow_server of { server : int; extra : float; at : float; duration : float }
      (** Gray fault: [server] stays up but every message it sends or
          receives takes [extra] ms longer. *)
  | Latency_burst of { extra : float; at : float; duration : float }
      (** Gray fault: every delivery in the cluster takes [extra] ms
          longer for the window. *)
  | Lossy_link of {
      src : int;
      dst : int;
      p : float;
      at : float;
      duration : float;
    }
      (** Gray fault: the {e directional} [src]→[dst] link drops each
          message with probability [p] (the reverse direction is
          untouched — replies vanish while requests arrive, or vice
          versa). *)

type t = { seed : int64; horizon : float; ops : op list }
(** [seed] drives both the plan's own generation and the simulated run
    it is injected into, so a plan reproduces its run bit-for-bit.
    [horizon] is the fault horizon: all windows close before it and the
    campaign heals everything at it. *)

(** Plan JSON grammar version (2).  Serialized plans carry
    ["version": 2]; a version-less plan file is v1 (pre-gray-fault, no
    horizon field) and still loads with [horizon = fault_horizon]. *)
val grammar_version : int

(** The default fault horizon (100 simulated ms). *)
val fault_horizon : float

(** When this fault's own end (restart / heal / expiry) fires. *)
val op_end : op -> float

(** [random ~seed ()] draws 1–4 ops deterministically from [seed].
    [horizon] (default {!fault_horizon}) scales every window: start
    times in [0, 0.6·h), holds in [0.03·h, 0.25·h), gray-fault extra
    delays proportionally. *)
val random : ?horizon:float -> seed:int64 -> unit -> t

val to_json : t -> Cloudtx_policy.Json.t
val of_json : Cloudtx_policy.Json.t -> (t, string) result
val to_string : t -> string
val of_string : string -> (t, string) result
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
