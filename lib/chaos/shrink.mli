(** Greedy counterexample shrinking for fault plans.

    [minimize ~fails plan] returns [None] when [fails plan] is [None]
    (nothing to shrink), otherwise the smallest failing plan found and
    its failure description.  [fails] must be deterministic — plans carry
    their run seed, so re-running a candidate is exact replay.

    The search first deletes ops to a fixpoint (the result is 1-minimal:
    removing any single remaining op loses the failure), then weakens the
    survivors (shorter windows, lower probabilities, smaller jitter)
    while the failure persists. *)
val minimize :
  fails:(Plan.t -> string option) -> Plan.t -> (Plan.t * string) option
