(** Online mean / variance / extrema accumulator (Welford's algorithm).

    Used by the benchmark harness to summarize per-run measurements
    (latencies, message counts, proof counts) without storing samples. *)

type t

(** [create ()] is an empty accumulator. *)
val create : unit -> t

(** [add t x] folds the observation [x] into [t]. *)
val add : t -> float -> unit

(** Number of observations folded in so far. *)
val count : t -> int

(** Arithmetic mean; 0 when empty. *)
val mean : t -> float

(** Unbiased sample variance; 0 when fewer than two observations. *)
val variance : t -> float

(** Sample standard deviation. *)
val stddev : t -> float

(** Smallest observation; [infinity] when empty. *)
val min : t -> float

(** Largest observation; [neg_infinity] when empty. *)
val max : t -> float

(** Sum of all observations. *)
val total : t -> float

(** [merge a b] is a fresh accumulator equivalent to folding both streams. *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
