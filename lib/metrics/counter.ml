type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let add t name k =
  match Hashtbl.find_opt t name with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t name (ref k)

let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge a b =
  let out = create () in
  List.iter (fun (name, v) -> add out name v) (to_list a);
  List.iter (fun (name, v) -> add out name v) (to_list b);
  out

let pp ppf t =
  let items = to_list t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%s=%d@ " name v) items;
  Format.fprintf ppf "@]"
