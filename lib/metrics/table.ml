type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let gap = width - n in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
    | Center ->
      let left = gap / 2 in
      String.make left ' ' ^ s ^ String.make (gap - left) ' '
  end

let render ?aligns ~headers rows =
  let arity = List.length headers in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) arity))
    rows;
  let aligns =
    match aligns with
    | Some a when List.length a = arity -> a
    | Some _ -> invalid_arg "Table.render: aligns arity mismatch"
    | None -> List.map (fun _ -> Left) headers
  in
  let widths = Array.make arity 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  let rule = Array.fold_left (fun acc w -> acc + w) 0 widths + (2 * (arity - 1)) in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ?aligns ~title ~headers rows =
  print_newline ();
  print_endline ("== " ^ title ^ " ==");
  print_string (render ?aligns ~headers rows)
