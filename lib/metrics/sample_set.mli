(** Sample container with exact percentiles.

    Stores every observation (simulation scale makes this affordable) so the
    harness can report medians and tail percentiles of latency
    distributions. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** [percentile t p] with [p] in [0, 100]. Raises [Invalid_argument] when
    empty or [p] out of range. Linear interpolation between closest ranks. *)
val percentile : t -> float -> float

val median : t -> float

(** Running extrema, O(1) — [infinity] / [neg_infinity] when empty. *)
val min : t -> float

val max : t -> float

(** All observations in insertion order. *)
val to_list : t -> float list
