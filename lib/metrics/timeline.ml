type marker = [ `Query | `Proof | `Sync ]
type row = { label : string; events : (float * marker) list }

let marker_char = function `Query -> '*' | `Proof -> '!' | `Sync -> '|'

(* `Proof must stay visible when a query and its instantaneous proof land in
   the same cell, so rank markers and only overwrite with higher rank. *)
let rank = function `Query -> 1 | `Sync -> 2 | `Proof -> 3

let render ~width ~t_start ~t_end rows =
  if t_end <= t_start then invalid_arg "Timeline.render: empty interval";
  if width < 10 then invalid_arg "Timeline.render: width too small";
  let label_width =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 0 rows
  in
  let span = t_end -. t_start in
  let cell t =
    let pos =
      int_of_float (float_of_int (width - 1) *. ((t -. t_start) /. span))
    in
    max 0 (min (width - 1) pos)
  in
  let buf = Buffer.create 256 in
  let draw r =
    let line = Bytes.make width '-' in
    let ranks = Array.make width 0 in
    let place (t, m) =
      let i = cell t in
      if rank m > ranks.(i) then begin
        ranks.(i) <- rank m;
        Bytes.set line i (marker_char m)
      end
    in
    List.iter place r.events;
    Buffer.add_string buf (Table.pad Table.Left label_width r.label);
    Buffer.add_string buf " [";
    Buffer.add_bytes buf line;
    Buffer.add_string buf "]\n"
  in
  List.iter draw rows;
  Buffer.add_string buf
    (Table.pad Table.Left label_width "" ^ " alpha(T)" ^ String.make (max 1 (width - 14)) ' '
   ^ "omega(T)\n");
  Buffer.contents buf

let legend = "  * query start   ! proof of authorization   | consistency sync"
