(** Plain-text table rendering for the reproduction harness.

    Renders aligned monospace tables in the style of the paper's Table I so
    that analytic and measured values can be compared side by side. *)

type align = Left | Right | Center

(** [pad align width s] pads [s] with spaces to [width]; returns [s]
    unchanged when already wider. *)
val pad : align -> int -> string -> string

(** [render ~headers rows] lays the rows out under the headers with column
    widths fitted to content. All rows must have the same arity as
    [headers]; raises [Invalid_argument] otherwise. *)
val render : ?aligns:align list -> headers:string list -> string list list -> string

(** [print ~title ~headers rows] renders with a banner line on stdout. *)
val print : ?aligns:align list -> title:string -> headers:string list -> string list list -> unit
