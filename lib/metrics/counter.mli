(** Named integer counters.

    The evaluation section of the paper measures protocols by counting
    messages, proof evaluations, voting rounds and forced log writes.  A
    [Counter.t] is a small bag of named tallies shared by the protocol
    machinery and read out by the benchmark harness. *)

type t

val create : unit -> t

(** [incr t name] adds one to counter [name], creating it at zero first. *)
val incr : t -> string -> unit

(** [add t name k] adds [k] (which may be negative) to counter [name]. *)
val add : t -> string -> int -> unit

(** [get t name] is the current value, 0 when never touched. *)
val get : t -> string -> int

(** [reset t] zeroes every counter. *)
val reset : t -> unit

(** All (name, value) pairs, sorted by name. *)
val to_list : t -> (string * int) list

(** [merge a b] is a fresh counter bag with per-name sums. *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
