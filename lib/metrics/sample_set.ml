type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : float array option; (* cache, invalidated on add *)
  mutable running_min : float;
  mutable running_max : float;
}

let create () =
  {
    samples = Array.make 64 0.;
    len = 0;
    sorted = None;
    running_min = infinity;
    running_max = neg_infinity;
  }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- None;
  if x < t.running_min then t.running_min <- x;
  if x > t.running_max then t.running_max <- x

let count t = t.len

let mean t =
  if t.len = 0 then 0.
  else begin
    let sum = ref 0. in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.sub t.samples 0 t.len in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if t.len = 0 then invalid_arg "Sample_set.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Sample_set.percentile: out of range";
  let a = sorted t in
  let rank = p /. 100. *. float_of_int (t.len - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then a.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median t = percentile t 50.
let min t = t.running_min
let max t = t.running_max

let to_list t = Array.to_list (Array.sub t.samples 0 t.len)
