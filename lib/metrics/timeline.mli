(** ASCII timelines in the style of the paper's Figures 3-6.

    Each figure shows, per server, the instant a query arrives ([`Query]) and
    the instants proofs of authorization are evaluated ([`Proof]), between
    the transaction start alpha(T) and commit omega(T).  [render] scales
    event times onto a fixed-width character row per server. *)

type marker = [ `Query | `Proof | `Sync ]

type row = { label : string; events : (float * marker) list }

(** [render ~width ~t_start ~t_end rows] draws one line per row.  Markers:
    ['*'] query arrival, ['!'] proof evaluation, ['|'] synchronization point
    (consistency enforcement). Later markers overwrite earlier ones in the
    same cell; [`Proof] wins over [`Query]. Raises [Invalid_argument] if
    [t_end <= t_start] or [width < 10]. *)
val render : width:int -> t_start:float -> t_end:float -> row list -> string

(** Legend explaining the marker characters. *)
val legend : string
