(* Re-export: round-resolution logic lives in the sans-IO protocol core. *)
include Cloudtx_protocol.Validation
