(** Closed-form worst-case complexity — the paper's Table I.

    All formulas are in terms of [n] (participants), [u] (queries) and [r]
    (voting rounds).  Under view consistency [r] is at most 2; under global
    consistency [r] is unbounded and supplied by the caller.  The benches
    compare these analytic values against message/proof counts measured
    from simulated runs. *)

(** [rounds_bound level] — 2 under view consistency, [None] (unbounded)
    under global. *)
val rounds_bound : Consistency.level -> int option

(** [messages scheme level ~n ~u ~r] — worst-case protocol messages,
    exactly as printed in Table I. Raises [Invalid_argument] for
    non-positive [n], [u] or [r], or when [level = View] and [r > 2]. *)
val messages : Scheme.t -> Consistency.level -> n:int -> u:int -> r:int -> int

(** [proofs scheme level ~n ~u ~r] — worst-case proof evaluations. *)
val proofs : Scheme.t -> Consistency.level -> n:int -> u:int -> r:int -> int

(** The formula as printed in the paper, e.g. ["2n + 4n"] or
    ["u(u+1)/2 + ur"]. *)
val formula : Scheme.t -> Consistency.level -> [ `Messages | `Proofs ] -> string
