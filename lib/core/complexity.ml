let rounds_bound = function
  | Consistency.View -> Some 2
  | Consistency.Global -> None

let validate ~n ~u ~r level =
  if n <= 0 then invalid_arg "Complexity: n must be positive";
  if u <= 0 then invalid_arg "Complexity: u must be positive";
  if r <= 0 then invalid_arg "Complexity: r must be positive";
  match rounds_bound level with
  | Some bound when r > bound ->
    invalid_arg
      (Printf.sprintf "Complexity: r=%d exceeds the view-consistency bound %d"
         r bound)
  | Some _ | None -> ()

let messages scheme level ~n ~u ~r =
  validate ~n ~u ~r level;
  match (scheme, level) with
  (* Deferred and Punctual use full 2PVC: 2n decision-phase messages plus
     2n per voting round; under view consistency the worst case is r = 2
     (hence the paper's "2n + 4n"); global adds one master-version
     retrieval per round. *)
  | (Scheme.Deferred | Scheme.Punctual), Consistency.View -> (2 * n) + (2 * n * r)
  | (Scheme.Deferred | Scheme.Punctual), Consistency.Global ->
    (2 * n) + (2 * n * r) + r
  (* Incremental Punctual maintains consistency during execution, so 2PVC
     runs without validation (one round + decision = 4n); global adds one
     master-version retrieval per query. *)
  | Scheme.Incremental_punctual, Consistency.View -> 4 * n
  | Scheme.Incremental_punctual, Consistency.Global -> (4 * n) + u
  (* Continuous runs 2PV at every query over the participants so far:
     sum 2i = u(u+1); view commits with 2PVC sans validation (4n); global
     adds u master retrievals for the per-query 2PVs plus a validating
     2PVC (2n + 2nr + r). *)
  | Scheme.Continuous, Consistency.View -> (u * (u + 1)) + (4 * n)
  | Scheme.Continuous, Consistency.Global ->
    (u * (u + 1)) + u + (2 * n) + (2 * n * r) + r

let proofs scheme level ~n ~u ~r =
  validate ~n ~u ~r level;
  match (scheme, level) with
  (* View-consistent 2PVC: round 1 evaluates all u; a second round
     re-evaluates all but the query that supplied the freshest policy,
     for 2u - 1 in the worst case. *)
  | Scheme.Deferred, Consistency.View -> if r = 1 then u else (2 * u) - 1
  | Scheme.Deferred, Consistency.Global -> u * r
  (* Punctual adds one execution-time proof per query. *)
  | Scheme.Punctual, Consistency.View -> u + (if r = 1 then u else (2 * u) - 1)
  | Scheme.Punctual, Consistency.Global -> u + (u * r)
  (* Incremental evaluates each query's proof once; no commit validation. *)
  | Scheme.Incremental_punctual, (Consistency.View | Consistency.Global) -> u
  (* Continuous re-evaluates all previous proofs at every query:
     sum i = u(u+1)/2; global re-validates at commit for another ur. *)
  | Scheme.Continuous, Consistency.View -> u * (u + 1) / 2
  | Scheme.Continuous, Consistency.Global -> (u * (u + 1) / 2) + (u * r)

let formula scheme level what =
  match (what, scheme, level) with
  | `Messages, (Scheme.Deferred | Scheme.Punctual), Consistency.View ->
    "2n + 4n"
  | `Messages, (Scheme.Deferred | Scheme.Punctual), Consistency.Global ->
    "2n + 2nr + r"
  | `Messages, Scheme.Incremental_punctual, Consistency.View -> "4n"
  | `Messages, Scheme.Incremental_punctual, Consistency.Global -> "4n + u"
  | `Messages, Scheme.Continuous, Consistency.View -> "u(u+1) + 4n"
  | `Messages, Scheme.Continuous, Consistency.Global ->
    "u(u+1) + u + 2n + 2nr + r"
  | `Proofs, Scheme.Deferred, Consistency.View -> "2u - 1"
  | `Proofs, Scheme.Deferred, Consistency.Global -> "ur"
  | `Proofs, Scheme.Punctual, Consistency.View -> "u + 2u - 1"
  | `Proofs, Scheme.Punctual, Consistency.Global -> "u + ur"
  | `Proofs, Scheme.Incremental_punctual, (Consistency.View | Consistency.Global)
    -> "u"
  | `Proofs, Scheme.Continuous, Consistency.View -> "u(u+1)/2"
  | `Proofs, Scheme.Continuous, Consistency.Global -> "u(u+1)/2 + ur"
