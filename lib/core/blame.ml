module Json = Cloudtx_policy.Json
module Codec = Cloudtx_protocol.Codec
module Codec_bin = Cloudtx_protocol.Codec_bin
module Tm = Cloudtx_protocol.Tm_machine
module Ps = Cloudtx_protocol.Ps_machine
module Cp = Cloudtx_obs.Critical_path

type node_kind = Tm_node of string  (** transaction id *) | Ps_node

(* A server-side interval carved out of the enclosing TM round-trip gap:
   a wait-die park ([lock.wait]) or a proof evaluation ([proof.eval]).
   [i_end] is NaN until the closing record arrives; [i_used] stops an
   interval from being attributed to two gaps. *)
type interval = {
  i_server : string;
  i_start : float;
  mutable i_end : float;
  mutable i_detail : string;
  mutable i_used : bool;
}

type txn_state = {
  t_txn : string;
  t_node : string;
  mutable t_scheme : string;
  mutable t_level : string;
  mutable t_begun : float;  (** [submitted_at] (min with create time). *)
  mutable t_last : float;  (** Last record time seen on the TM node. *)
  mutable t_phase : string;  (** execute → commit → decide. *)
  mutable t_prepare : float option;
  mutable t_decided : float option;
  mutable t_pending_decision : string list;
      (** Participants sent the decision but not yet acked — the peers a
          [retry.stall] segment indicts. *)
  mutable t_segments : Cp.segment list;  (** Reverse chronological. *)
}

type t = {
  agg : Cp.agg;
  keep : bool;
  node_kinds : (string, node_kind) Hashtbl.t;
  txns : (string, txn_state) Hashtbl.t;
  waits : (string, interval list ref) Hashtbl.t;  (** txn → closed+open. *)
  evals : (string, interval list ref) Hashtbl.t;
  open_waits : (string, interval) Hashtbl.t;  (** server^NUL^txn. *)
  open_evals : (string, interval) Hashtbl.t;
  store : (string, Cp.timeline) Hashtbl.t;  (** When [keep]. *)
  mutable order : string list;  (** Finish order, reversed ([keep]). *)
  mutable violations : Cp.timeline list;  (** Coverage failures. *)
  mutable finished : int;
  mutable decode_errors : int;
}

let create ?(keep_timelines = false) ?top_k () =
  {
    agg = Cp.agg_create ?top_k ();
    keep = keep_timelines;
    node_kinds = Hashtbl.create 16;
    txns = Hashtbl.create 16;
    waits = Hashtbl.create 16;
    evals = Hashtbl.create 16;
    open_waits = Hashtbl.create 16;
    open_evals = Hashtbl.create 16;
    store = Hashtbl.create 16;
    order = [];
    violations = [];
    finished = 0;
    decode_errors = 0;
  }

let finished t = t.finished
let unfinished t = Hashtbl.length t.txns
let decode_errors t = t.decode_errors
let agg t = t.agg
let timelines t = List.rev_map (Hashtbl.find t.store) t.order
let find t ~txn = Hashtbl.find_opt t.store txn
let uncovered t = List.rev t.violations

let slowest t =
  match Cp.agg_slowest t.agg with
  | [] -> None
  | s :: _ -> Some s.Cp.slow_timeline

(* ------------------------------------------------------------------ *)
(* Server-side interval tracking                                       *)
(* ------------------------------------------------------------------ *)

let interval_key ~server ~txn = server ^ "\x00" ^ txn

let open_interval intervals opens ~server ~txn ~time_ms ~detail =
  let iv =
    { i_server = server; i_start = time_ms; i_end = Float.nan;
      i_detail = detail; i_used = false }
  in
  Hashtbl.replace opens (interval_key ~server ~txn) iv;
  (match Hashtbl.find_opt intervals txn with
  | Some l -> l := iv :: !l
  | None -> Hashtbl.replace intervals txn (ref [ iv ]))

let close_interval opens ~server ~txn ~time_ms ~detail =
  let key = interval_key ~server ~txn in
  match Hashtbl.find_opt opens key with
  | None -> ()
  | Some iv ->
    Hashtbl.remove opens key;
    iv.i_end <- time_ms;
    if detail <> "" then iv.i_detail <- detail

let drop_txn_intervals t txn =
  let drop intervals opens =
    match Hashtbl.find_opt intervals txn with
    | None -> ()
    | Some l ->
      List.iter
        (fun iv ->
          if Float.is_nan iv.i_end then
            Hashtbl.remove opens (interval_key ~server:iv.i_server ~txn))
        !l;
      Hashtbl.remove intervals txn
  in
  drop t.waits t.open_waits;
  drop t.evals t.open_evals

(* Closed, unused intervals for [txn] at [server] clipped to the gap,
   sorted by start and de-overlapped; consumed intervals are marked
   used so a later gap cannot re-attribute them. *)
let take_carves intervals ~txn ~server ~g0 ~g1 kind =
  match Hashtbl.find_opt intervals txn with
  | None -> []
  | Some l ->
    List.filter_map
      (fun iv ->
        if
          iv.i_used || iv.i_server <> server
          || Float.is_nan iv.i_end
          || iv.i_end <= g0 || iv.i_start >= g1
        then None
        else begin
          iv.i_used <- true;
          Some (Float.max iv.i_start g0, Float.min iv.i_end g1, kind, iv.i_detail)
        end)
      !l
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Gap classification (the causal-edge matching rules of DESIGN §9)    *)
(* ------------------------------------------------------------------ *)

(* What the record closing a TM-node gap blames it on.  [carve] names
   the peer server whose lock-wait / proof-eval intervals are carved
   out of the gap. *)
type classification = {
  c_kind : Cp.kind;
  c_peer : string;
  c_detail : string;
  c_carve : string option;
}

let plain kind = { c_kind = kind; c_peer = ""; c_detail = ""; c_carve = None }

(* [None] marks a transparent record — one that must not close the gap
   (an [Rtt_sample] is journaled at the same instant as the delivery it
   measures; letting it close the gap would steal the delivery's
   attribution). *)
let classify_tm_input t st payload =
  match Codec.tm_input_of_json payload with
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    Some (plain Cp.Other)
  | Ok (Tm.Rtt_sample _) -> None
  | Ok (Tm.Watchdog_fired _) -> Some (plain Cp.Timeout_stall)
  | Ok Tm.Retry_fired ->
    (* Blame the silence on the participants still owing a decision ack. *)
    Some
      {
        c_kind = Cp.Retry_stall;
        c_peer = String.concat "," (List.sort compare st.t_pending_decision);
        c_detail = "";
        c_carve = None;
      }
  | Ok (Tm.Deliver { src; msg }) -> (
    match msg with
    | Message.Master_version_reply _ ->
      Some
        { c_kind = Cp.Policy_fetch; c_peer = src; c_detail = ""; c_carve = None }
    | Message.Execute_reply { query_id; _ } ->
      Some
        { c_kind = Cp.Exec; c_peer = src; c_detail = query_id; c_carve = Some src }
    | Message.Validate_reply { round; _ } ->
      Some
        {
          c_kind = Cp.Validate_round;
          c_peer = src;
          c_detail = "round " ^ string_of_int round;
          c_carve = Some src;
        }
    | Message.Commit_reply { round; _ } ->
      Some
        {
          c_kind = Cp.Vote_round;
          c_peer = src;
          c_detail = "round " ^ string_of_int round;
          c_carve = Some src;
        }
    | Message.Decision_ack _ ->
      st.t_pending_decision <-
        List.filter (fun p -> not (String.equal p src)) st.t_pending_decision;
      Some { c_kind = Cp.Decide; c_peer = src; c_detail = ""; c_carve = None }
    | Message.Inquiry _ ->
      Some
        { c_kind = Cp.Inquiry_stall; c_peer = src; c_detail = ""; c_carve = None }
    | _ -> Some (plain Cp.Other))

(* Close the wall-clock gap [st.t_last, time_ms] on the TM's node as one
   classified segment, with the peer server's lock-wait and proof-eval
   intervals carved out (tiling preserved: carves and remainders
   partition the gap). *)
let emit_gap t st ~seq ~time_ms cls =
  let g0 = st.t_last and g1 = time_ms in
  let push kind peer detail s0 s1 =
    if s1 > s0 then
      st.t_segments <-
        {
          Cp.kind;
          peer;
          detail;
          phase = st.t_phase;
          start_ms = s0;
          end_ms = s1;
          seq;
        }
        :: st.t_segments
  in
  let carves =
    match cls.c_carve with
    | None -> []
    | Some server ->
      let waits =
        if cls.c_kind = Cp.Exec then
          take_carves t.waits ~txn:st.t_txn ~server ~g0 ~g1 Cp.Lock_wait
        else []
      in
      let evals = take_carves t.evals ~txn:st.t_txn ~server ~g0 ~g1 Cp.Proof_eval in
      List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) (waits @ evals)
  in
  let cursor =
    List.fold_left
      (fun cursor (c0, c1, kind, detail) ->
        let c0 = Float.max c0 cursor and c1 = Float.min c1 g1 in
        if c1 > c0 then begin
          push cls.c_kind cls.c_peer cls.c_detail cursor c0;
          push kind cls.c_peer detail c0 c1;
          c1
        end
        else cursor)
      g0 carves
  in
  push cls.c_kind cls.c_peer cls.c_detail cursor g1

(* ------------------------------------------------------------------ *)
(* Record handlers                                                     *)
(* ------------------------------------------------------------------ *)

let on_tm_create t ~seq ~time_ms ~node ~txn ~scheme ~level ~submitted_at =
  match Hashtbl.find_opt t.txns txn with
  | Some st ->
    (* Coordinator restart (chaos): the silence since the last record is
       a recovery gap; the timeline keeps its original origin. *)
    if time_ms > st.t_last then emit_gap t st ~seq ~time_ms (plain Cp.Recovery);
    st.t_last <- time_ms;
    st.t_scheme <- scheme;
    st.t_level <- level
  | None ->
    let begun = Float.min submitted_at time_ms in
    let st =
      {
        t_txn = txn;
        t_node = node;
        t_scheme = scheme;
        t_level = level;
        t_begun = begun;
        t_last = time_ms;
        t_phase = "execute";
        t_prepare = None;
        t_decided = None;
        t_pending_decision = [];
        t_segments = [];
      }
    in
    if time_ms > begun then
      st.t_segments <-
        [
          {
            Cp.kind = Cp.Queueing;
            peer = "";
            detail = "";
            phase = "execute";
            start_ms = begun;
            end_ms = time_ms;
            seq;
          };
        ];
    Hashtbl.replace t.txns txn st

let finish_txn t st ~time_ms ~committed ~reason =
  let tl =
    {
      Cp.txn = st.t_txn;
      node = st.t_node;
      scheme = st.t_scheme;
      level = st.t_level;
      committed;
      reason;
      begun_ms = st.t_begun;
      finished_ms = time_ms;
      segments = List.rev st.t_segments;
    }
  in
  Hashtbl.remove t.txns st.t_txn;
  drop_txn_intervals t st.t_txn;
  t.finished <- t.finished + 1;
  Cp.agg_observe t.agg tl;
  if not (Cp.covered tl) then t.violations <- tl :: t.violations;
  if t.keep then begin
    Hashtbl.replace t.store tl.Cp.txn tl;
    t.order <- tl.Cp.txn :: t.order
  end

let on_tm_action t st ~time_ms payload =
  match Codec.tm_action_of_json payload with
  | Error _ -> t.decode_errors <- t.decode_errors + 1
  | Ok (Tm.Obs (Tm.Phase_open { span_name; _ })) -> (
    (* The same clock points Manager samples for the phase histograms,
       so per-phase segment totals reconcile with the registry. *)
    match span_name with
    | "2pvc.prepare" ->
      st.t_prepare <- Some time_ms;
      st.t_phase <- "commit"
    | "2pvc.commit" | "2pvc.abort" ->
      st.t_decided <- Some time_ms;
      st.t_phase <- "decide"
    | _ -> ())
  | Ok (Tm.Send { dst; msg = Message.Decision _ }) ->
    if not (List.mem dst st.t_pending_decision) then
      st.t_pending_decision <- dst :: st.t_pending_decision
  | Ok (Tm.Finish { committed; reason; _ }) ->
    finish_txn t st ~time_ms ~committed ~reason:(Outcome.reason_name reason)
  | Ok _ -> ()

let on_tm t ~seq ~time_ms ~dir ~txn payload =
  match Hashtbl.find_opt t.txns txn with
  | None -> ()  (* Create evicted from a capped buffer: skip the txn. *)
  | Some st ->
    let cls =
      match dir with
      | "input" -> classify_tm_input t st payload
      | "create" -> Some (plain Cp.Recovery)
      | _ -> Some (plain Cp.Other)
    in
    (match cls with
    | None -> ()  (* transparent record: the gap stays open *)
    | Some cls ->
      if time_ms > st.t_last then emit_gap t st ~seq ~time_ms cls;
      st.t_last <- time_ms);
    if dir = "action" then on_tm_action t st ~time_ms payload

let on_ps_action t ~time_ms ~node payload =
  match Codec.ps_action_of_json payload with
  | Error _ -> t.decode_errors <- t.decode_errors + 1
  | Ok (Ps.Wait_open { txn; query_id }) ->
    open_interval t.waits t.open_waits ~server:node ~txn ~time_ms
      ~detail:query_id
  | Ok (Ps.Wait_close { txn; outcome; _ }) ->
    close_interval t.open_waits ~server:node ~txn ~time_ms ~detail:outcome
  | Ok (Ps.Eval { txn; _ }) ->
    open_interval t.evals t.open_evals ~server:node ~txn ~time_ms ~detail:""
  | Ok _ -> ()

let on_ps_input t ~time_ms ~node payload =
  match Codec.ps_input_of_json payload with
  | Error _ -> t.decode_errors <- t.decode_errors + 1
  | Ok (Ps.Evaluated { txn; _ }) ->
    close_interval t.open_evals ~server:node ~txn ~time_ms ~detail:""
  | Ok _ -> ()

let on_create t ~seq ~time_ms ~node payload =
  match Result.bind (Json.member "kind" payload) Json.to_str with
  | Ok "tm" -> (
    let decoded =
      match Result.bind (Json.member "txn" payload) Codec.transaction_of_json with
      | Error _ -> None
      | Ok txn -> (
        match Result.bind (Json.member "config" payload) Codec.config_of_json with
        | Error _ -> None
        | Ok cfg -> Some (txn.Cloudtx_txn.Transaction.id, cfg))
    in
    match decoded with
    | None -> t.decode_errors <- t.decode_errors + 1
    | Some (txn, cfg) ->
      let submitted_at =
        match Result.bind (Json.member "submitted_at" payload) Json.to_float with
        | Ok ts -> ts
        | Error _ -> time_ms
      in
      Hashtbl.replace t.node_kinds node (Tm_node txn);
      on_tm_create t ~seq ~time_ms ~node ~txn
        ~scheme:(Scheme.name cfg.Tm.scheme)
        ~level:(Consistency.name cfg.Tm.level)
        ~submitted_at)
  | Ok _ -> Hashtbl.replace t.node_kinds node Ps_node
  | Error _ -> t.decode_errors <- t.decode_errors + 1

let feed_json t ~seq ~time_ms ~node ~dir payload =
  match dir with
  | "create" -> on_create t ~seq ~time_ms ~node payload
  | "input" -> (
    match Hashtbl.find_opt t.node_kinds node with
    | Some (Tm_node txn) -> on_tm t ~seq ~time_ms ~dir ~txn payload
    | Some Ps_node -> on_ps_input t ~time_ms ~node payload
    | None -> (
      (* Node never created in this journal (capped buffer): classify
         by trying the participant decoder, as [Health] does. *)
      match Codec.ps_input_of_json payload with
      | Ok _ ->
        Hashtbl.replace t.node_kinds node Ps_node;
        on_ps_input t ~time_ms ~node payload
      | Error _ -> ()))
  | "action" -> (
    match Hashtbl.find_opt t.node_kinds node with
    | Some (Tm_node txn) -> on_tm t ~seq ~time_ms ~dir ~txn payload
    | Some Ps_node -> on_ps_action t ~time_ms ~node payload
    | None -> ())
  (* Driver-side resilience events: not machine steps, no latency edge. *)
  | "event" -> ()
  | _ -> t.decode_errors <- t.decode_errors + 1

let feed t ~seq ~time_ms ~node ~dir ~payload =
  match Json.parse payload with
  | Ok j -> feed_json t ~seq ~time_ms ~node ~dir j
  | Error _ -> t.decode_errors <- t.decode_errors + 1

(* Observer payloads arrive in the journal's own format: JSON text for a
   JSONL journal, [Codec_bin] bytes for a binary one. *)
let feed_bin t ~seq ~time_ms ~node ~dir ~payload =
  if String.equal dir "event" then ()
    (* Raw JSON text, not a Codec_bin payload — and no latency edge. *)
  else
    match Codec_bin.payload_of_string payload with
    | Ok p ->
      let dir =
        match p with
        | Codec_bin.Create_tm _ | Codec_bin.Create_ps _ -> "create"
        | Codec_bin.Tm_input _ | Codec_bin.Ps_input _ -> "input"
        | Codec_bin.Tm_action _ | Codec_bin.Ps_action _ -> "action"
      in
      feed_json t ~seq ~time_ms ~node ~dir (Codec_bin.payload_to_json p)
    | Error _ -> t.decode_errors <- t.decode_errors + 1

let attach ?keep_timelines ?top_k journal =
  let t = create ?keep_timelines ?top_k () in
  let feed =
    match Cloudtx_obs.Journal.format journal with
    | Cloudtx_obs.Journal.Jsonl -> feed
    | Cloudtx_obs.Journal.Binary -> feed_bin
  in
  Cloudtx_obs.Journal.add_observer journal (fun ~seq ~time_ms ~node ~dir ~payload ->
      feed t ~seq ~time_ms ~node ~dir ~payload);
  t

(* ------------------------------------------------------------------ *)
(* Offline replay                                                      *)
(* ------------------------------------------------------------------ *)

let check_header line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "line 1: bad journal header: %s" m)
  | Ok j -> (
    match Result.bind (Json.member "journal" j) Json.to_str with
    | Ok "cloudtx" -> Ok ()
    | Ok other -> Error (Printf.sprintf "line 1: journal kind %S unknown" other)
    | Error m -> Error (Printf.sprintf "line 1: bad journal header: %s" m))

let feed_line t ~lineno line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "line %d: unparseable record: %s" lineno m)
  | Ok j -> (
    let ( let* ) = Result.bind in
    let field what r =
      Result.map_error
        (fun m -> Printf.sprintf "line %d: record without %s: %s" lineno what m)
        r
    in
    let* seq = field "seq" (Result.bind (Json.member "seq" j) Json.to_int) in
    let* time_ms =
      field "time_ms" (Result.bind (Json.member "time_ms" j) Json.to_float)
    in
    let* node = field "node" (Result.bind (Json.member "node" j) Json.to_str) in
    let* dir = field "dir" (Result.bind (Json.member "dir" j) Json.to_str) in
    let* payload = field "payload" (Json.member "payload" j) in
    feed_json t ~seq ~time_ms ~node ~dir payload;
    Ok ())

let of_lines ?keep_timelines ?top_k lines =
  match lines with
  | [] -> Error "empty journal"
  | header :: records -> (
    match check_header header with
    | Error _ as e -> e
    | Ok () ->
      let t = create ?keep_timelines ?top_k () in
      let rec go lineno = function
        | [] -> Ok t
        | line :: rest -> (
          match feed_line t ~lineno line with
          | Ok () -> go (lineno + 1) rest
          | Error _ as e -> e)
      in
      go 2 records)

(* Format auto-detection via {!Journal_io}: a binary journal replays as
   the same canonical records, and a corrupt frame surfaces as the
   converter's error naming that frame. *)
let of_file ?keep_timelines ?top_k path =
  match Result.map (fun l -> l.Journal_io.lines) (Journal_io.of_file path) with
  | Error m -> Error m
  | Ok lines -> of_lines ?keep_timelines ?top_k lines

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let to_json t =
  Cp.agg_to_json
    ~extra:
      [
        ("finished", string_of_int t.finished);
        ("unfinished", string_of_int (unfinished t));
        ("decode_errors", string_of_int t.decode_errors);
        ("uncovered", string_of_int (List.length t.violations));
      ]
    t.agg

let to_markdown_lines t =
  let counters =
    Printf.sprintf
      "%d finished, %d unfinished, %d decode errors, %d coverage violations."
      t.finished (unfinished t) t.decode_errors
      (List.length t.violations)
  in
  match Cp.agg_to_markdown t.agg with
  | header :: rest -> (header :: "" :: counters :: rest)
  | [] -> [ counters ]
