module Json = Cloudtx_policy.Json
module Codec = Cloudtx_protocol.Codec
module Tm = Cloudtx_protocol.Tm_machine
module Ps = Cloudtx_protocol.Ps_machine

type report = {
  records : int;
  nodes : int;
  transactions : int;
  commits : int;
  aborts : int;
  protocol_messages : int;
  proofs : int;
  forced_logs : int;
}

let report_to_string r =
  Printf.sprintf
    "records=%d nodes=%d transactions=%d commits=%d aborts=%d \
     protocol_messages=%d proofs=%d forced_logs=%d"
    r.records r.nodes r.transactions r.commits r.aborts r.protocol_messages
    r.proofs r.forced_logs

exception Fail of string

let failf fmt = Printf.ksprintf (fun m -> raise (Fail m)) fmt

let or_fail ~seq what = function
  | Ok v -> v
  | Error m -> failf "seq %d: cannot decode %s: %s" seq what m

(* A replayed action, kept alongside its canonical rendering so matching
   a recorded action record is a string compare and the protocol checks
   see the typed value. *)
type replayed = Rtm of Tm.action | Rps of Ps.action

type tm_state = { cfg : Tm.config; txn_id : string; m : Tm.t }
type kind = Tm_node of tm_state | Ps_node of { mutable ps : Ps.t }

type node = {
  node_name : string;
  mutable kind : kind;
  mutable pending : (string * replayed) list;
      (* this input's recorded-but-unmatched actions, FIFO *)
  mutable last_seq : int;  (* seq of this node's latest replayed record *)
}

(* Everything the protocol checks accumulate about one transaction. *)
type txn_stats = {
  mutable finish : (int * bool) option;  (* TM Finish: seq, committed *)
  mutable applies : (string * int * bool) list;  (* node, seq, commit *)
  mutable prepared_nodes : string list;  (* nodes with a Prepare action *)
  mutable first_no_vote : int option;  (* seq of a Prepared{vote=false} *)
  latest : (string, int) Hashtbl.t;
      (* domain -> master version, from Master_version_reply deliveries *)
  mutable master_moved : bool;
      (* the master reported two different versions of some domain during
         this transaction — the instant-indexed (ψ, Def 8/9) checks are
         only exact against a fixed master, so they are skipped then,
         mirroring the live soundness tests (the conformance replay still
         proves the machine enforced them online) *)
}

type state = {
  nodes : (string, node) Hashtbl.t;
  txns : (string, txn_stats) Hashtbl.t;
  mutable records : int;
  mutable transactions : int;
  mutable commits : int;
  mutable aborts : int;
  mutable protocol_messages : int;
  mutable proofs : int;
  mutable forced_logs : int;
  mutable journal_version : int;
      (* from the header; replayed PS actions are rendered as that format
         version encoded them, so pre-v3 journals still byte-compare *)
}

let txn_stats st txn =
  match Hashtbl.find_opt st.txns txn with
  | Some s -> s
  | None ->
    let s =
      {
        finish = None;
        applies = [];
        prepared_nodes = [];
        first_no_vote = None;
        latest = Hashtbl.create 4;
        master_moved = false;
      }
    in
    Hashtbl.add st.txns txn s;
    s

let is_protocol msg = List.mem (Message.label msg) Message.protocol_labels

let render_tm a = Codec.to_string (Codec.tm_action_to_json a)
let render_ps ~version a = Codec.to_string (Codec.ps_action_to_json_at ~version a)

(* ------------------------------------------------------------------ *)
(* Per-record protocol checks (run when the action record is matched,   *)
(* so seq ordering of the checks follows the journal)                   *)
(* ------------------------------------------------------------------ *)

let check_tm_action st ~seq ~node (t : tm_state) = function
  | Tm.Send { msg; _ } -> if is_protocol msg then
      st.protocol_messages <- st.protocol_messages + 1
  | Tm.Force_log -> st.forced_logs <- st.forced_logs + 1
  | Tm.Finish { committed; _ } ->
    let s = txn_stats st t.txn_id in
    (match s.finish with
    | Some (prev, _) ->
      failf "seq %d (%s): AC3 violated: second decision for %s (first at seq %d)"
        seq node t.txn_id prev
    | None -> s.finish <- Some (seq, committed));
    st.transactions <- st.transactions + 1;
    if committed then begin
      st.commits <- st.commits + 1;
      (* Soundness: the replayed machine's view at commit must satisfy
         the scheme's own trusted-transaction definition, judged against
         the master versions this TM was told about. *)
      let latest domain = Hashtbl.find_opt s.latest domain in
      let instant_indexed =
        match t.cfg.Tm.scheme with
        | Scheme.Incremental_punctual | Scheme.Continuous -> true
        | Scheme.Deferred | Scheme.Punctual -> false
      in
      if not (instant_indexed && s.master_moved) then
        match
          Trusted.check t.cfg.Tm.scheme ~level:t.cfg.Tm.level ~latest
            (Tm.view t.m)
        with
        | Ok () -> ()
        | Error why ->
          failf "seq %d (%s): %s committed but untrusted: %s" seq node t.txn_id
            why
    end
    else st.aborts <- st.aborts + 1
  | Tm.Arm_watchdog _ | Tm.Arm_retry _ | Tm.Mark _ | Tm.Obs _ -> ()

let check_ps_action st ~seq ~node = function
  | Ps.Send { msg; _ } ->
    if is_protocol msg then st.protocol_messages <- st.protocol_messages + 1
  | Ps.Prepare { txn; _ } ->
    (* Server.prepare always forces the vote record to the WAL. *)
    st.forced_logs <- st.forced_logs + 1;
    let s = txn_stats st txn in
    s.prepared_nodes <- node :: s.prepared_nodes
  | Ps.Apply { txn; commit; forced; writes = _ } ->
    if forced then st.forced_logs <- st.forced_logs + 1;
    let s = txn_stats st txn in
    if List.exists (fun (n, _, _) -> String.equal n node) s.applies then
      failf "seq %d (%s): AC3 violated: node decides %s twice" seq node txn;
    if commit && not (List.mem node s.prepared_nodes) then
      failf "seq %d (%s): commit of %s not preceded by prepare on this node" seq
        node txn;
    s.applies <- (node, seq, commit) :: s.applies
  | Ps.Begin_work _ | Ps.Exec _ | Ps.Eval _ | Ps.Check_read_only _ | Ps.Forget _
  | Ps.Install _ | Ps.Wait_open _ | Ps.Wait_close _ | Ps.Arm_inquiry _
  | Ps.Mark _ -> ()

let note_tm_input st ~seq ~node (t : tm_state) = function
  | Tm.Deliver { src; msg } ->
    (* Sends from journaled nodes are counted from their action records;
       a delivery from an un-journaled sender (the master) is the only
       trace of that message, so count it here.  Assumes loss-free
       delivery for such senders. *)
    if is_protocol msg && not (Hashtbl.mem st.nodes src) then
      st.protocol_messages <- st.protocol_messages + 1;
    (match msg with
    | Message.Master_version_reply { txn; policies } ->
      if not (String.equal txn t.txn_id) then
        failf "seq %d (%s): master reply for foreign transaction %s" seq node txn;
      let s = txn_stats st txn in
      List.iter
        (fun (p : Cloudtx_policy.Policy.t) ->
          let domain = p.Cloudtx_policy.Policy.domain in
          let version = p.Cloudtx_policy.Policy.version in
          (match Hashtbl.find_opt s.latest domain with
          | Some prev when prev <> version -> s.master_moved <- true
          | _ -> ());
          Hashtbl.replace s.latest domain version)
        policies
    | _ -> ())
  | Tm.Watchdog_fired _ | Tm.Retry_fired | Tm.Rtt_sample _ -> ()

let note_ps_input st ~seq = function
  | Ps.Deliver { src; msg } ->
    if is_protocol msg && not (Hashtbl.mem st.nodes src) then
      st.protocol_messages <- st.protocol_messages + 1
  | Ps.Evaluated { proofs; _ } -> st.proofs <- st.proofs + List.length proofs
  | Ps.Prepared { txn; vote } ->
    if not vote then begin
      let s = txn_stats st txn in
      if s.first_no_vote = None then s.first_no_vote <- Some seq
    end
  | Ps.Exec_result _ | Ps.Read_only_result _ | Ps.Release _
  | Ps.Inquiry_fired _ | Ps.Recovered _ -> ()

(* ------------------------------------------------------------------ *)
(* Record replay                                                       *)
(* ------------------------------------------------------------------ *)

let handle_create st ~seq ~node_name payload =
  let kind = or_fail ~seq "create kind" Result.(bind (Json.member "kind" payload) Json.to_str) in
  match kind with
  | "tm" ->
    if Hashtbl.mem st.nodes node_name then
      failf "seq %d (%s): duplicate TM create" seq node_name;
    let cfg =
      or_fail ~seq "TM config"
        (Result.bind (Json.member "config" payload) Codec.config_of_json)
    in
    let txn =
      or_fail ~seq "transaction"
        (Result.bind (Json.member "txn" payload) Codec.transaction_of_json)
    in
    let submitted_at =
      or_fail ~seq "submitted_at"
        (Result.bind (Json.member "submitted_at" payload) Json.to_float)
    in
    let m = Tm.create cfg txn ~submitted_at in
    let t = { cfg; txn_id = txn.Cloudtx_txn.Transaction.id; m } in
    let pending = List.map (fun a -> (render_tm a, Rtm a)) (Tm.start m) in
    Hashtbl.add st.nodes node_name { node_name; kind = Tm_node t; pending; last_seq = seq }
  | "ps" ->
    let variant =
      or_fail ~seq "2PC variant"
        (Result.bind (Json.member "variant" payload) Codec.variant_of_json)
    in
    let inquiry_timeout =
      (* Optional: journals from before the termination protocol lack it. *)
      match Json.member "inquiry_timeout" payload with
      | Ok j -> ( match Json.to_float j with Ok f -> f | Error _ -> 0.)
      | Error _ -> 0.
    in
    let fresh () = Ps.create ~name:node_name ~variant ~inquiry_timeout () in
    (match Hashtbl.find_opt st.nodes node_name with
    | None ->
      Hashtbl.add st.nodes node_name
        { node_name; kind = Ps_node { ps = fresh () }; pending = []; last_seq = seq }
    | Some n -> (
      (* A repeated participant create mirrors a crash reset. *)
      if n.pending <> [] then
        failf "seq %d (%s): create while %d recorded action(s) unmatched" seq
          node_name (List.length n.pending);
      match n.kind with
      | Ps_node p -> p.ps <- fresh ()
      | Tm_node _ -> failf "seq %d (%s): participant create over a TM" seq node_name))
  | other -> failf "seq %d (%s): create kind %S unknown" seq node_name other

let node_of st ~seq name =
  match Hashtbl.find_opt st.nodes name with
  | Some n -> n
  | None -> failf "seq %d (%s): record for a node never created" seq name

let handle_input st ~seq ~node_name payload =
  let n = node_of st ~seq node_name in
  n.last_seq <- seq;
  if n.pending <> [] then
    failf
      "seq %d (%s): input record while %d recorded action(s) unmatched \
       (reordered or dropped record?)"
      seq node_name (List.length n.pending);
  match n.kind with
  | Tm_node t ->
    let input = or_fail ~seq "TM input" (Codec.tm_input_of_json payload) in
    note_tm_input st ~seq ~node:node_name t input;
    let actions =
      try Tm.handle t.m input
      with Invalid_argument m ->
        failf "seq %d (%s): replayed machine rejected input: %s" seq node_name m
    in
    n.pending <- List.map (fun a -> (render_tm a, Rtm a)) actions
  | Ps_node p ->
    let input = or_fail ~seq "PS input" (Codec.ps_input_of_json payload) in
    note_ps_input st ~seq input;
    let actions =
      try Ps.handle p.ps input
      with Invalid_argument m ->
        failf "seq %d (%s): replayed machine rejected input: %s" seq node_name m
    in
    n.pending <-
      List.map
        (fun a -> (render_ps ~version:st.journal_version a, Rps a))
        actions

let handle_action st ~seq ~node_name payload =
  let n = node_of st ~seq node_name in
  n.last_seq <- seq;
  let got = Codec.to_string payload in
  match n.pending with
  | [] ->
    failf "seq %d (%s): action record but the replayed machine emitted none"
      seq node_name
  | (expected, replayed) :: rest ->
    if not (String.equal expected got) then
      failf "seq %d (%s): action diverges\n  expected %s\n  got      %s" seq
        node_name expected got;
    n.pending <- rest;
    (match (replayed, n.kind) with
    | Rtm a, Tm_node t -> check_tm_action st ~seq ~node:node_name t a
    | Rps a, _ -> check_ps_action st ~seq ~node:node_name a
    | Rtm _, Ps_node _ -> failf "seq %d (%s): internal kind mismatch" seq node_name)

(* ------------------------------------------------------------------ *)
(* End-of-journal checks                                               *)
(* ------------------------------------------------------------------ *)

let check_final st =
  Hashtbl.iter
    (fun name n ->
      if n.pending <> [] then
        failf
          "%s: journal ends after seq %d with %d recorded action(s) unmatched \
           (truncated?)"
          name n.last_seq (List.length n.pending))
    st.nodes;
  Hashtbl.iter
    (fun txn (s : txn_stats) ->
      (* AC1: everyone who decided this transaction decided the same. *)
      (match s.applies with
      | [] -> ()
      | (_, _, first) :: _ ->
        List.iter
          (fun (node, seq, commit) ->
            if commit <> first then
              failf "seq %d (%s): AC1 violated: nodes disagree on %s" seq node txn)
          s.applies);
      (match (s.finish, s.applies) with
      | Some (fseq, committed), (_, _, applied) :: _ when committed <> applied ->
        failf "seq %d: AC1 violated: TM and participants disagree on %s" fseq txn
      | _ -> ());
      (* AC2: a commit requires unanimous YES votes. *)
      let committed =
        (match s.finish with Some (_, c) -> c | None -> false)
        || List.exists (fun (_, _, c) -> c) s.applies
      in
      match (committed, s.first_no_vote) with
      | true, Some seq ->
        failf "seq %d: AC2 violated: %s committed over a NO vote" seq txn
      | _ -> ())
    st.txns

(* ------------------------------------------------------------------ *)
(* Envelope parsing                                                    *)
(* ------------------------------------------------------------------ *)

let check_header line =
  match Json.parse line with
  | Error m -> failf "line 1: bad journal header: %s" m
  | Ok j -> (
    (match Result.bind (Json.member "journal" j) Json.to_str with
    | Ok "cloudtx" -> ()
    | Ok other -> failf "line 1: journal kind %S unknown" other
    | Error m -> failf "line 1: bad journal header: %s" m);
    match Result.bind (Json.member "version" j) Json.to_int with
    | Ok v when v >= 2 && v <= Codec.version -> v
    | Ok v ->
      failf "line 1: journal version %d unsupported (want 2..%d)" v
        Codec.version
    | Error m -> failf "line 1: bad journal header: %s" m)

let handle_line st ~lineno line =
  match Json.parse line with
  | Error m -> failf "line %d: unparseable record: %s" lineno m
  | Ok j ->
    let seq =
      match Result.bind (Json.member "seq" j) Json.to_int with
      | Ok s -> s
      | Error m -> failf "line %d: record without seq: %s" lineno m
    in
    let expected = st.records + 1 in
    if seq <> expected then
      failf "seq %d: expected seq %d — dropped or reordered record" seq expected;
    st.records <- seq;
    let node_name =
      or_fail ~seq "node" (Result.bind (Json.member "node" j) Json.to_str)
    in
    let dir = or_fail ~seq "dir" (Result.bind (Json.member "dir" j) Json.to_str) in
    let payload =
      match Json.member "payload" j with
      | Ok p -> p
      | Error m -> failf "seq %d: record without payload: %s" seq m
    in
    (match dir with
    | "create" -> handle_create st ~seq ~node_name payload
    | "input" -> handle_input st ~seq ~node_name payload
    | "action" -> handle_action st ~seq ~node_name payload
    | "event" ->
      (* Driver-side resilience events (breaker transitions, admission
         verdicts): not machine steps, nothing to replay. *)
      ()
    | other -> failf "seq %d (%s): dir %S unknown" seq node_name other)

let run ~lines =
  let st =
    {
      nodes = Hashtbl.create 16;
      txns = Hashtbl.create 16;
      records = 0;
      transactions = 0;
      commits = 0;
      aborts = 0;
      protocol_messages = 0;
      proofs = 0;
      forced_logs = 0;
      journal_version = Codec.version;
    }
  in
  try
    (match lines with
    | [] -> failf "empty journal"
    | header :: records ->
      st.journal_version <- check_header header;
      List.iteri (fun i line -> handle_line st ~lineno:(i + 2) line) records);
    check_final st;
    Ok
      {
        records = st.records;
        nodes = Hashtbl.length st.nodes;
        transactions = st.transactions;
        commits = st.commits;
        aborts = st.aborts;
        protocol_messages = st.protocol_messages;
        proofs = st.proofs;
        forced_logs = st.forced_logs;
      }
  with Fail m -> Error m

(* Auto-detects the journal format: binary journals decode to the same
   canonical JSONL lines ({!Journal_io}), so the byte-exact replay below
   runs unchanged — and its verdict cannot depend on the format. *)
let of_file path =
  match Journal_io.of_file path with
  | Error m -> Error m
  | Ok loaded -> run ~lines:loaded.Journal_io.lines
