(* Format-agnostic journal loading and conversion.  Everything that
   consumes a journal file (audit, certify, watch, the CLI) routes
   through here: binary journals decode to the same canonical JSONL
   lines a JSONL journal records — byte-identical, which is what keeps
   audit's byte-exact replay and the certifier's verdicts independent of
   the on-disk format. *)

module Journal = Cloudtx_obs.Journal
module Codec = Cloudtx_protocol.Codec
module Codec_bin = Cloudtx_protocol.Codec_bin
module Json = Cloudtx_policy.Json

type t = {
  format : Journal.format;
  version : int;
  lines : string list;
  torn_bytes : int;
}

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Loading (either format -> canonical JSONL lines)                    *)
(* ------------------------------------------------------------------ *)

let split_lines s =
  match String.trim s with
  | "" -> []
  | s ->
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")

(* Best-effort header version for a JSONL journal; consumers run their
   own strict [check_header]. *)
let jsonl_version lines =
  match lines with
  | header :: _ -> (
    match
      Result.bind (Json.parse header) (fun j ->
          Result.bind (Json.member "version" j) Json.to_int)
    with
    | Ok v -> v
    | Error _ -> 0)
  | [] -> 0

let decode_binary_contents s =
  let* { Journal.version; frames; torn_bytes } = Journal.decode_binary s in
  if version < 3 || version > Journal.format_version then
    Error (Printf.sprintf "unsupported binary journal version %d" version)
  else
    let* records =
      List.fold_left
        (fun acc (f : Journal.frame) ->
          let* acc = acc in
          if String.equal f.Journal.dir "event" then
            (* Event records (resilience breaker/admission) carry their
               JSON text as the raw frame payload in both formats. *)
            Ok
              (Journal.render_jsonl ~seq:f.Journal.seq
                 ~time_ms:f.Journal.time_ms ~node:f.Journal.node
                 ~dir:f.Journal.dir ~payload:f.Journal.payload
              :: acc)
          else
            match Codec_bin.payload_of_string f.Journal.payload with
            | Error m ->
              Error (Printf.sprintf "frame with seq %d: %s" f.Journal.seq m)
            | Ok p ->
              let payload = Codec.to_string (Codec_bin.payload_to_json p) in
              Ok
                (Journal.render_jsonl ~seq:f.Journal.seq
                   ~time_ms:f.Journal.time_ms ~node:f.Journal.node
                   ~dir:f.Journal.dir ~payload
                :: acc))
        (Ok []) frames
    in
    Ok
      {
        format = Journal.Binary;
        version;
        lines = Journal.render_header ~version :: List.rev records;
        torn_bytes;
      }

let of_contents s =
  if Journal.is_binary s then decode_binary_contents s
  else
    let lines = split_lines s in
    Ok { format = Journal.Jsonl; version = jsonl_version lines; lines; torn_bytes = 0 }

let read_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error m
  | s -> Ok s

let of_file path = Result.bind (read_file path) of_contents

(* ------------------------------------------------------------------ *)
(* Conversion                                                          *)
(* ------------------------------------------------------------------ *)

(* JSONL -> binary re-encodes every payload through the typed codec, so
   only journals the current codec fully understands convert; anything
   else (older versions, foreign payloads) errors out rather than
   silently rewriting history. *)
let jsonl_to_binary lines =
  match lines with
  | [] -> Error "empty journal"
  | header :: records ->
    let* version =
      match
        Result.bind (Json.parse header) (fun j ->
            Result.bind (Json.member "version" j) Json.to_int)
      with
      | Ok v -> Ok v
      | Error _ -> Error "journal header unreadable"
    in
    if version <> Journal.format_version then
      Error
        (Printf.sprintf
           "cannot convert a v%d journal to binary: binary journals are \
            v%d-only (older versions encode some records differently)"
           version Journal.format_version)
    else begin
      let buf = Buffer.create 4096 in
      Buffer.add_string buf (Journal.binary_header ~version);
      (* Node kinds, learned from create records, resolve whether an
         input/action payload is a TM or PS one. *)
      let kinds : (string, Codec_bin.node_kind) Hashtbl.t = Hashtbl.create 8 in
      let line_no = ref 1 in
      let convert_line line =
        incr line_no;
        let ctx m = Error (Printf.sprintf "line %d: %s" !line_no m) in
        match Json.parse line with
        | Error m -> ctx m
        | Ok j -> (
          let* seq = Result.bind (Json.member "seq" j) Json.to_int in
          let* time_ms = Result.bind (Json.member "time_ms" j) Json.to_float in
          let* node = Result.bind (Json.member "node" j) Json.to_str in
          let* dir = Result.bind (Json.member "dir" j) Json.to_str in
          let* payload = Json.member "payload" j in
          if dir = "event" then begin
            (* Pass the rendered JSON through as the raw frame payload;
               no typed re-encode (and no node kind) applies. *)
            let text = Codec.to_string payload in
            Journal.encode_frame buf ~seq ~time_ms ~node ~dir
              ~emit:(fun b -> Cloudtx_obs.Wbuf.str b text);
            Ok ()
          end
          else
          let* kind =
            if dir = "create" then begin
              let* k = Result.bind (Json.member "kind" payload) Json.to_str in
              let kind =
                if k = "tm" then Codec_bin.Tm else Codec_bin.Ps
              in
              Hashtbl.replace kinds node kind;
              Ok kind
            end
            else
              match Hashtbl.find_opt kinds node with
              | Some k -> Ok k
              | None ->
                Error
                  (Printf.sprintf "node %S has a %s record before its create"
                     node dir)
          in
          match Codec_bin.payload_of_json ~dir ~kind payload with
          | Error m -> ctx m
          | Ok p ->
            Journal.encode_frame buf ~seq ~time_ms ~node ~dir
              ~emit:(fun b -> Codec_bin.emit_payload b p);
            Ok ())
      in
      let* () =
        List.fold_left
          (fun acc line ->
            let* () = acc in
            convert_line line)
          (Ok ()) records
      in
      Ok (Buffer.contents buf)
    end

let convert ~to_ contents =
  let* loaded = of_contents contents in
  match (loaded.format, to_) with
  | Journal.Jsonl, Journal.Jsonl | Journal.Binary, Journal.Binary ->
    Ok contents
  | Journal.Binary, Journal.Jsonl ->
    Ok (String.concat "\n" loaded.lines ^ "\n")
  | Journal.Jsonl, Journal.Binary -> jsonl_to_binary loaded.lines
